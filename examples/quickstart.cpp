// Quickstart: the paper's Fig. 2 worked example, end to end.
//
// Builds the 2-bit multiplier over F_4, models its gates as polynomials,
// derives the canonical word-level polynomial Z = A·B by the RATO-guided
// Gröbner-basis reduction, then injects the Example 5.1 bug and shows the
// buggy circuit's polynomial.
//
//   $ ./quickstart

#include <cstdio>

#include "abstraction/equivalence.h"
#include "abstraction/rato.h"
#include "circuit/gate_poly.h"
#include "circuit/netlist.h"
#include "circuit/parser.h"

namespace {

gfa::Netlist make_fig2(bool with_bug) {
  using namespace gfa;
  Netlist nl(with_bug ? "fig2_buggy" : "fig2");
  const NetId a0 = nl.add_input("a0"), a1 = nl.add_input("a1");
  const NetId b0 = nl.add_input("b0"), b1 = nl.add_input("b1");
  const NetId s0 = nl.add_gate(GateType::kAnd, {a0, b0}, "s0");
  const NetId s1 = nl.add_gate(GateType::kAnd, {a0, b1}, "s1");
  const NetId s2 = nl.add_gate(GateType::kAnd, {a1, b0}, "s2");
  const NetId s3 = nl.add_gate(GateType::kAnd, {a1, b1}, "s3");
  const NetId r0 = nl.add_gate(GateType::kXor, {with_bug ? s0 : s1, s2}, "r0");
  const NetId z0 = nl.add_gate(GateType::kXor, {s0, s3}, "z0");
  const NetId z1 = nl.add_gate(GateType::kXor, {r0, s3}, "z1");
  nl.mark_output(z0);
  nl.mark_output(z1);
  nl.declare_word("A", {a0, a1});
  nl.declare_word("B", {b0, b1});
  nl.declare_word("Z", {z0, z1});
  return nl;
}

}  // namespace

int main() {
  using namespace gfa;
  // F_4 = GF(2)[x] / (x² + x + 1), the field of the paper's Fig. 2.
  const Gf2k field(Gf2Poly::from_bits(0b111));
  std::printf("Field: F_4 with P(x) = %s\n\n", field.modulus().to_string().c_str());

  const Netlist nl = make_fig2(false);
  std::printf("Circuit (netlist format):\n%s\n", write_netlist(nl).c_str());

  // The circuit ideal J: gate polynomials + word-definition polynomials
  // (the f_1 … f_10 of the paper's Example 4.2).
  const CircuitIdeal ideal = circuit_ideal(nl, &field);
  std::printf("Ideal generators J = <f_1, ..., f_%zu>:\n",
              ideal.gate_polys.size() + ideal.word_polys.size());
  for (const MPoly& f : ideal.word_polys)
    std::printf("  %s\n", f.to_string(ideal.pool).c_str());
  for (const MPoly& f : ideal.gate_polys)
    std::printf("  %s\n", f.to_string(ideal.pool).c_str());

  // Word-level abstraction (Theorem 4.2 via the §5 guided reduction).
  const WordFunction fn = extract_word_function(nl, field);
  std::printf("\nCanonical word-level polynomial:  Z = %s\n",
              fn.g.to_string(fn.pool).c_str());
  std::printf("  (substitutions: %zu, peak terms: %zu, remainder terms: %zu)\n",
              fn.stats.substitutions, fn.stats.peak_terms,
              fn.stats.remainder_terms);

  // Example 5.1: inject the bug (r0 reads s0 instead of s1) and re-abstract.
  const Netlist buggy = make_fig2(true);
  const WordFunction bad = extract_word_function(buggy, field);
  std::printf("\nWith the Example 5.1 bug injected:  Z = %s\n",
              bad.g.to_string(bad.pool).c_str());

  // Equivalence checking = coefficient matching of canonical forms.
  const EquivalenceResult eq = check_equivalence(nl, buggy, field);
  std::printf("\nEquivalence check (correct vs buggy): %s\n",
              eq.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT");
  if (!eq.equivalent) std::printf("  %s\n", eq.difference.c_str());
  return 0;
}
