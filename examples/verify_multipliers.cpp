// End-to-end equivalence verification of Galois field multipliers — the
// paper's headline flow at a chosen field size.
//
//   $ ./verify_multipliers [k]        (default k = 32)
//
// Builds the flattened Mastrovito multiplier (Spec) and the hierarchical
// four-block Montgomery multiplier (Impl, Fig. 1) over F_{2^k}, abstracts
// both to canonical word-level polynomials, and matches coefficients. The
// Impl is verified twice: flattened (one big netlist) and hierarchically
// (per-block abstraction + word-level composition, the paper's Table 2 flow).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "abstraction/equivalence.h"
#include "abstraction/hierarchy.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"

using Clock = std::chrono::steady_clock;

static double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int main(int argc, char** argv) {
  using namespace gfa;
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 32;
  if (k < 2) {
    std::fprintf(stderr, "usage: %s [k >= 2]\n", argv[0]);
    return 1;
  }
  const Gf2k field = Gf2k::make(k);
  std::printf("Field F_2^%u, P(x) = %s\n", k, field.modulus().to_string().c_str());

  auto t0 = Clock::now();
  const Netlist spec = make_mastrovito_multiplier(field);
  std::printf("Spec: Mastrovito, %zu gates (generated in %.2fs)\n",
              spec.num_logic_gates(), seconds_since(t0));

  t0 = Clock::now();
  const MontgomeryHierarchy impl = make_montgomery_hierarchy(field);
  const Netlist impl_flat = make_montgomery_multiplier_flat(field);
  std::printf(
      "Impl: Montgomery (Fig. 1): BlkA %zu, BlkB %zu, BlkMid %zu, BlkOut %zu "
      "gates (flat: %zu) (generated in %.2fs)\n",
      impl.blk_a.num_logic_gates(), impl.blk_b.num_logic_gates(),
      impl.blk_mid.num_logic_gates(), impl.blk_out.num_logic_gates(),
      impl_flat.num_logic_gates(), seconds_since(t0));

  // 1. Abstract the Spec.
  t0 = Clock::now();
  const WordFunction spec_fn = extract_word_function(spec, field);
  std::printf("\nSpec polynomial:  Z = %s   [%.2fs, peak %zu terms]\n",
              spec_fn.g.to_string(spec_fn.pool).c_str(), seconds_since(t0),
              spec_fn.stats.peak_terms);

  // 2a. Abstract the Impl flattened.
  t0 = Clock::now();
  const WordFunction impl_fn = extract_word_function(impl_flat, field);
  std::printf("Impl (flat):      Z = %s   [%.2fs, peak %zu terms]\n",
              impl_fn.g.to_string(impl_fn.pool).c_str(), seconds_since(t0),
              impl_fn.stats.peak_terms);

  // 2b. Abstract the Impl hierarchically (per block + composition).
  t0 = Clock::now();
  const HierarchicalAbstraction hier = abstract_montgomery(impl, field);
  std::printf("Impl (hierarchical): Z = %s   [%.2fs]\n",
              hier.composed.g.to_string(hier.composed.pool).c_str(),
              seconds_since(t0));
  for (const auto& [name, fn] : hier.blocks)
    std::printf("  %-8s Z = %-30s (%zu substitutions)\n", name.c_str(),
                fn.g.to_string(fn.pool).c_str(), fn.stats.substitutions);

  // 3. Coefficient matching.
  std::string why;
  const bool flat_ok = same_word_function(spec_fn, impl_fn, &why);
  std::printf("\nSpec vs Impl (flat):         %s\n",
              flat_ok ? "EQUIVALENT" : ("NOT EQUIVALENT: " + why).c_str());
  const bool hier_ok = same_word_function(spec_fn, hier.composed, &why);
  std::printf("Spec vs Impl (hierarchical): %s\n",
              hier_ok ? "EQUIVALENT" : ("NOT EQUIVALENT: " + why).c_str());
  return flat_ok && hier_ok ? 0 : 2;
}
