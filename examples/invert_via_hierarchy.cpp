// Hierarchical verification of an Itoh–Tsujii field inverter — the paper's
// hierarchy argument pushed past multipliers.
//
//   $ ./invert_via_hierarchy [k]      (default k = 32)
//
// A gate-level inverter cannot be abstracted flat: inversion is maximally
// nonlinear, so the bit-level remainder of the guided reduction is
// exponentially dense. But the Itoh–Tsujii design is a *hierarchy* of
// multiplier and Frobenius-power blocks, each of which abstracts to a tiny
// polynomial; composing them at word level proves the whole datapath equals
// the canonical inversion polynomial Z = A^{q-2} — a monomial whose exponent
// has k bits (BigUint exponents at work).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "abstraction/hierarchy.h"
#include "circuit/itoh_tsujii.h"

int main(int argc, char** argv) {
  using namespace gfa;
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 32;
  const Gf2k field = Gf2k::make(k);

  const ItohTsujiiHierarchy h = make_itoh_tsujii(field);
  std::printf(
      "Itoh–Tsujii inverter over F_2^%u: %zu block instances (%zu unique "
      "blocks, %zu gates total)\n",
      k, h.graph.instances.size(), h.blocks.size(), h.total_gates);
  for (const auto& inst : h.graph.instances)
    std::printf("  %-10s %-14s -> %s\n", inst.name.c_str(),
                inst.block->name().c_str(), inst.output_signal.c_str());

  const auto t0 = std::chrono::steady_clock::now();
  const HierarchicalAbstraction ha = abstract_hierarchy(h.graph, field);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const MPoly expect = inversion_spec(field, ha.composed.pool.id("A"));
  const bool ok = ha.composed.g == expect;
  std::printf("\ncomposed polynomial: INV = %s\n",
              ha.composed.g.to_string(ha.composed.pool).c_str());
  std::printf("expected (canonical inversion): A^(2^%u - 2) = A^%s\n", k,
              (field.order() - BigUint(2)).to_string().c_str());
  std::printf("verdict: %s   [%.3fs, %zu block abstractions]\n",
              ok ? "CORRECT — datapath inverts" : "MISMATCH",
              secs, ha.blocks.size());
  return ok ? 0 : 2;
}
