// Debugging with word-level abstraction (the paper's Example 5.1 at scale).
//
//   $ ./bug_hunt [k] [num_bugs]       (defaults k = 16, num_bugs = 8)
//
// Injects seeded single-gate defects into a Montgomery multiplier, abstracts
// each defective circuit, and reports: whether the canonical polynomial
// changed (bug detected), what the buggy polynomial looks like, and a
// concrete counterexample input found by evaluating the polynomial
// difference — information a miter-based checker cannot give.

#include <cstdio>
#include <cstdlib>

#include "abstraction/equivalence.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/sim.h"

namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

gfa::Gf2Poly random_elem(const gfa::Gf2k& field, std::uint64_t& state) {
  gfa::Gf2Poly p;
  for (unsigned i = 0; i < field.k(); ++i)
    if (splitmix(state) & 1u) p.set_coeff(i, true);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gfa;
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  const int num_bugs = argc > 2 ? std::atoi(argv[2]) : 8;
  const Gf2k field = Gf2k::make(k);

  const Netlist golden = make_montgomery_multiplier_flat(field);
  const WordFunction spec = extract_word_function(golden, field);
  std::printf("Golden Montgomery multiplier over F_2^%u: Z = %s\n\n", k,
              spec.g.to_string(spec.pool).c_str());

  int detected = 0, benign = 0;
  for (int i = 0; i < num_bugs; ++i) {
    BugDescription desc;
    const Netlist buggy = inject_random_bug(golden, 1000 + i, &desc);
    const WordFunction fn = extract_word_function(buggy, field);
    std::string why;
    if (same_word_function(spec, fn, &why)) {
      // Structurally mutated but functionally identical (e.g. an OR whose
      // inputs can never both be 1 swapped for XOR).
      std::printf("bug %d: %-40s -> functionally BENIGN\n", i, desc.text.c_str());
      ++benign;
      continue;
    }
    ++detected;
    std::printf("bug %d: %-40s -> DETECTED\n", i, desc.text.c_str());
    std::printf("        buggy polynomial has %zu terms; %s\n",
                fn.g.num_terms(), why.c_str());

    // Counterexample: sample inputs until the polynomials disagree (the
    // difference polynomial is non-zero, so this terminates fast).
    std::uint64_t state = 77 * (i + 1);
    for (int t = 0; t < 4096; ++t) {
      const auto a = random_elem(field, state);
      const auto b = random_elem(field, state);
      auto eval = [&](const WordFunction& f) {
        return f.g.eval([&](VarId v) {
          return f.pool.name(v) == "A" ? a : b;
        });
      };
      const auto good = eval(spec), bad = eval(fn);
      if (good != bad) {
        std::printf("        counterexample: A=%s B=%s -> spec %s, impl %s\n",
                    field.to_string(a).c_str(), field.to_string(b).c_str(),
                    field.to_string(good).c_str(), field.to_string(bad).c_str());
        // Confirm against the actual gate-level circuit.
        const auto sim = simulate_words(
            buggy, *buggy.find_word("Z"),
            {{buggy.find_word("A"), {a}}, {buggy.find_word("B"), {b}}})[0];
        std::printf("        gate-level simulation agrees: Z=%s\n",
                    field.to_string(sim).c_str());
        break;
      }
    }
  }
  std::printf("\n%d injected, %d detected, %d benign\n", num_bugs, detected,
              benign);
  return 0;
}
