// Reverse-engineering the word-level function of an unknown netlist.
//
//   $ ./reverse_engineer <netlist-file> <k>
//   $ ./reverse_engineer                       (demo: writes and analyzes one)
//
// The netlist must declare its words (see src/circuit/parser.h for the
// format). The tool derives the canonical polynomial Z = F(A, B, …) over
// F_{2^k} — i.e. *what arithmetic function the gates implement* — without
// being given a specification. This is the abstraction use-case the paper
// emphasizes over Lv et al. [5], which requires the spec polynomial up front.

#include <cstdio>
#include <cstdlib>

#include "abstraction/extractor.h"
#include "circuit/mastrovito.h"
#include "circuit/mutate.h"
#include "circuit/parser.h"

int main(int argc, char** argv) {
  using namespace gfa;
  Netlist nl;
  unsigned k = 0;
  if (argc >= 3) {
    try {
      nl = read_netlist_file(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    k = static_cast<unsigned>(std::atoi(argv[2]));
  } else {
    // Demo mode: emit an unlabeled 8-bit arithmetic netlist and analyze it.
    k = 8;
    const Gf2k field = Gf2k::make(k);
    Netlist secret = make_mastrovito_multiplier(field);
    secret.set_name("mystery");
    const std::string path = "mystery.net";
    write_netlist_file(secret, path);
    std::printf("demo: wrote %s (%zu gates); reverse-engineering it...\n\n",
                path.c_str(), secret.num_logic_gates());
    nl = std::move(secret);
  }
  if (k < 2) {
    std::fprintf(stderr, "usage: %s <netlist-file> <k>\n", argv[0]);
    return 1;
  }

  const std::string problem = nl.validate();
  if (!problem.empty()) {
    std::fprintf(stderr, "invalid netlist: %s\n", problem.c_str());
    return 1;
  }

  const Gf2k field = Gf2k::make(k);
  std::printf("circuit '%s': %zu gates, %zu inputs, %zu outputs\n",
              nl.name().c_str(), nl.num_logic_gates(), nl.inputs().size(),
              nl.outputs().size());
  std::printf("field F_2^%u with P(x) = %s\n\n", k,
              field.modulus().to_string().c_str());

  try {
    const WordFunction fn = extract_word_function(nl, field);
    std::printf("recovered word-level function:\n  %s = %s\n",
                fn.output_word.c_str(), fn.g.to_string(fn.pool).c_str());
    std::printf(
        "\nstats: %zu substitutions, peak %zu terms, remainder %zu terms "
        "(degree %zu), case %d\n",
        fn.stats.substitutions, fn.stats.peak_terms, fn.stats.remainder_terms,
        fn.stats.remainder_degree, fn.stats.case1 ? 1 : 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abstraction failed: %s\n", e.what());
    return 2;
  }
  return 0;
}
