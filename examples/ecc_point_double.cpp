// Verifying an ECC point-operation datapath — the workload class the paper's
// introduction motivates (NIST binary-curve cryptography).
//
//   $ ./ecc_point_double [k]          (default k = 16; 163 = NIST B-163 size)
//
// Generates the López–Dahab projective doubling datapath
//     X3 = X⁴ + b·Z⁴ ,   Z3 = X²·Z²
// as one flat netlist with two output words, abstracts *each output word* to
// its canonical polynomial, and checks both against the curve equations. A
// defect is then injected into the shared X² squarer to show that both output
// polynomials shift.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "abstraction/extractor.h"
#include "circuit/ecc.h"

int main(int argc, char** argv) {
  using namespace gfa;
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  const Gf2k field = Gf2k::make(k);
  // Curve parameter b: a fixed non-trivial constant (for NIST curves this
  // would be the standardized coefficient; any b exercises the same logic).
  const Gf2k::Elem b = field.alpha_pow(std::uint64_t{k} / 2 + 3);

  const Netlist nl = make_ld_point_double(field, b);
  std::printf("López–Dahab doubling over F_2^%u: %zu gates, words X,Z -> X3,Z3\n",
              k, nl.num_logic_gates());

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<WordFunction> fns = extract_all_word_functions(nl, field);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  bool all_ok = true;
  for (const WordFunction& fn : fns) {
    const VarId x = fn.pool.id("X"), z = fn.pool.id("Z");
    MPoly expect(&field);
    if (fn.output_word == "X3") {
      expect.add_term(Monomial(x, BigUint(4)), field.one());
      expect.add_term(Monomial(z, BigUint(4)), b);
    } else {
      expect.add_term(Monomial::from_pairs({{x, BigUint(2)}, {z, BigUint(2)}}),
                      field.one());
    }
    const bool ok = fn.g == expect;
    all_ok &= ok;
    std::printf("  %s = %s   [%s]\n", fn.output_word.c_str(),
                fn.g.to_string(fn.pool).c_str(), ok ? "matches curve equation" : "MISMATCH");
  }
  std::printf("abstraction of both outputs took %.3fs\n\n", secs);

  // Inject a defect into the shared squarer and re-abstract.
  Netlist bad = nl;
  for (NetId n = 0; n < bad.num_nets(); ++n) {
    if (bad.gate(n).type == GateType::kXor &&
        bad.gate(n).name.rfind("sx_", 0) == 0) {
      bad.mutable_gate(n).type = GateType::kOr;
      std::printf("injected bug: gate %s xor -> or (inside the shared X² squarer)\n",
                  bad.gate(n).name.c_str());
      break;
    }
  }
  const std::vector<WordFunction> bad_fns = extract_all_word_functions(bad, field);
  for (std::size_t i = 0; i < bad_fns.size(); ++i) {
    const bool changed = !(bad_fns[i].g == fns[i].g);
    std::printf("  %s: polynomial %s (now %zu terms)\n",
                bad_fns[i].output_word.c_str(),
                changed ? "CHANGED — bug visible in this output" : "unchanged",
                bad_fns[i].g.num_terms());
  }
  return all_ok ? 0 : 2;
}
