// bench_compare — diff two BENCH_*.json artifacts (bench/bench_util.h's
// JsonReporter schema: {"bench", "threads", "records": [...]}) and fail on
// wall-clock regressions.
//
//   bench_compare <baseline.json> <candidate.json> [--threshold=<pct>]
//
// Records are matched by (name, k, threads-extra, duplicate index); only the
// intersection is compared — a ladder extended by GFA_BENCH_MAX_K or a
// renamed record never produces a spurious failure. Records (and phases)
// present in only one file are reported as added/removed warnings so
// coverage drift is visible without failing the run, and zero overlap prints
// a warning (a wrong file pairing should be visible, not silently green).
// For every matched pair the tool prints the wall_ms delta plus per-phase
// deltas, and exits 1 when any record's wall_ms regressed by more than the
// threshold (default 10%). CI runs this against the committed bench/artifacts/
// baselines with a deliberately loose threshold: shared-runner noise must not
// fail the build, order-of-magnitude regressions must.
//
// Exit codes: 0 ok, 1 regression past threshold, 64 usage, 65 parse/IO error.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "util/json_reader.h"
#include "util/parse_number.h"

namespace {

using namespace gfa;

constexpr int kRegression = 1;
constexpr int kUsage = 64;
constexpr int kParseError = 65;

struct Record {
  std::string name;
  unsigned k = 0;
  double wall_ms = 0.0;
  /// The per-record "threads" extra of scaling records; 0 when absent.
  unsigned threads = 0;
  std::vector<std::pair<std::string, double>> phases;
};

struct BenchFile {
  std::string bench;
  std::vector<Record> records;
};

Result<BenchFile> load_bench(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return Status::parse_error("cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<JsonValue> doc = parse_json(buf.str());
  if (!doc.ok())
    return Status::parse_error(path + ": " +
                               std::string(doc.status().message()));
  if (!doc->is_object() || doc->find("records") == nullptr ||
      !doc->find("records")->is_array())
    return Status::parse_error(path +
                               ": not a BENCH_*.json document "
                               "(missing \"records\" array)");
  BenchFile out;
  out.bench = doc->string_or("bench", "");
  for (const JsonValue& item : doc->find("records")->items()) {
    if (!item.is_object()) continue;
    Record r;
    r.name = item.string_or("name", "");
    r.k = static_cast<unsigned>(item.u64_or("k", 0));
    r.wall_ms = item.number_or("wall_ms", 0.0);
    r.threads = static_cast<unsigned>(item.u64_or("threads", 0));
    if (const JsonValue* phases = item.find("phases");
        phases != nullptr && phases->is_object())
      for (const auto& [phase, ms] : phases->members())
        if (ms.is_number()) r.phases.emplace_back(phase, ms.as_number());
    out.records.push_back(std::move(r));
  }
  return out;
}

/// (name, k, threads, nth-duplicate) — the duplicate counter keeps repeated
/// configurations (reruns of the same point) paired in file order.
using Key = std::tuple<std::string, unsigned, unsigned, unsigned>;

std::map<Key, const Record*> index_records(const std::vector<Record>& records) {
  std::map<Key, const Record*> out;
  std::map<std::tuple<std::string, unsigned, unsigned>, unsigned> dup;
  for (const Record& r : records) {
    const unsigned nth = dup[{r.name, r.k, r.threads}]++;
    out.emplace(Key{r.name, r.k, r.threads, nth}, &r);
  }
  return out;
}

double pct_delta(double base, double cand) {
  if (base <= 0.0) return 0.0;
  return (cand - base) / base * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold", 0) == 0) {
      std::string value;
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "--threshold expects a value\n");
        return kUsage;
      }
      const Result<double> t = parse_double(value, 0.0, 1e9);
      if (!t.ok()) {
        std::fprintf(stderr, "--threshold: %s\n",
                     t.status().to_string().c_str());
        return kUsage;
      }
      threshold_pct = *t;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return kUsage;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <candidate.json>"
                 " [--threshold=<pct>]\n");
    return kUsage;
  }

  const Result<BenchFile> base = load_bench(positional[0]);
  if (!base.ok()) {
    std::fprintf(stderr, "error: %s\n", base.status().to_string().c_str());
    return kParseError;
  }
  const Result<BenchFile> cand = load_bench(positional[1]);
  if (!cand.ok()) {
    std::fprintf(stderr, "error: %s\n", cand.status().to_string().c_str());
    return kParseError;
  }
  if (!base->bench.empty() && !cand->bench.empty() &&
      base->bench != cand->bench)
    std::printf("warning: comparing different benches ('%s' vs '%s')\n",
                base->bench.c_str(), cand->bench.c_str());

  const auto base_index = index_records(base->records);
  const auto cand_index = index_records(cand->records);

  const auto label_of = [](const Key& key) {
    std::string label = std::get<0>(key) + " k=" + std::to_string(std::get<1>(key));
    if (std::get<2>(key) != 0)
      label += " threads=" + std::to_string(std::get<2>(key));
    if (std::get<3>(key) != 0)
      label += " rerun=" + std::to_string(std::get<3>(key));
    return label;
  };

  std::size_t matched = 0;
  std::size_t regressed = 0;
  std::size_t removed = 0;
  std::size_t added = 0;
  for (const auto& [key, b] : base_index) {
    const auto it = cand_index.find(key);
    if (it == cand_index.end()) {
      // Present only in the baseline: a shrunk ladder or a renamed record.
      // Worth a loud line — silently comparing a subset reads as "all
      // green" — but never a failure: coverage drift is the bench runner's
      // business, regression detection is ours.
      ++removed;
      std::printf("warning: removed %s (only in '%s')\n", label_of(key).c_str(),
                  positional[0].c_str());
      continue;
    }
    const Record* c = it->second;
    ++matched;
    const double delta = pct_delta(b->wall_ms, c->wall_ms);
    const bool bad = delta > threshold_pct;
    if (bad) ++regressed;
    std::string label = b->name + " k=" + std::to_string(b->k);
    if (b->threads != 0)
      label += " threads=" + std::to_string(b->threads);
    std::printf("%s %s: wall %.3f -> %.3f ms (%+.1f%%)\n",
                bad ? "REGRESSION" : "ok", label.c_str(), b->wall_ms,
                c->wall_ms, delta);
    for (const auto& [phase, base_ms] : b->phases) {
      const auto cp = std::find_if(
          c->phases.begin(), c->phases.end(),
          [&, p = phase](const auto& e) { return e.first == p; });
      if (cp == c->phases.end()) {
        std::printf("    %-20s %10.3f ms -> removed phase\n", phase.c_str(),
                    base_ms);
        continue;
      }
      std::printf("    %-20s %10.3f -> %10.3f ms (%+.1f%%)\n", phase.c_str(),
                  base_ms, cp->second, pct_delta(base_ms, cp->second));
    }
    for (const auto& [phase, cand_ms] : c->phases) {
      const bool in_base = std::find_if(b->phases.begin(), b->phases.end(),
                                        [&, p = phase](const auto& e) {
                                          return e.first == p;
                                        }) != b->phases.end();
      if (!in_base)
        std::printf("    %-20s added phase -> %10.3f ms\n", phase.c_str(),
                    cand_ms);
    }
  }
  for (const auto& [key, c] : cand_index) {
    if (base_index.find(key) != base_index.end()) continue;
    ++added;
    std::printf("warning: added %s (only in '%s', %.3f ms, not compared)\n",
                label_of(key).c_str(), positional[1].c_str(), c->wall_ms);
  }
  if (matched == 0) {
    std::printf(
        "warning: no overlapping records between '%s' and '%s' — nothing "
        "compared\n",
        positional[0].c_str(), positional[1].c_str());
    return 0;
  }
  std::printf(
      "%zu record(s) compared (%zu added, %zu removed), %zu regression(s) "
      "past %+.1f%%\n",
      matched, added, removed, regressed, threshold_pct);
  return regressed == 0 ? 0 : kRegression;
}
