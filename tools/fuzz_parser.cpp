// fuzz_parser — deterministic coverage-free fuzzer for the two text parsers.
//
//   fuzz_parser [--seed=<n>] [--iterations=<n>] [--seconds=<s>]
//
// Drives try_parse_netlist / try_parse_verilog (the non-throwing entry
// points) with three families of input per iteration:
//   1. generated — structurally plausible netlist/Verilog text assembled from
//      the grammar's keywords, so the deep parser paths actually execute;
//   2. mutated — a valid seed document with byte-level corruption (flips,
//      splices, truncation, token duplication);
//   3. garbage — raw random bytes.
// Any outcome is acceptable EXCEPT a crash, a sanitizer report, or an
// uncaught exception escaping the try_ wrappers: those APIs promise a Status
// for arbitrary input. Successfully parsed netlists are additionally
// round-tripped (write → reparse) and validated, which is what caught the
// recursion and overflow bugs this harness exists to guard (see DESIGN.md
// "Robustness & fault tolerance").
//
// Exit code: 0 when the run completes, 2 on the first contract violation.
// The PRNG is xorshift64 seeded from --seed, so every failure reproduces
// with `fuzz_parser --seed=<printed seed> --iterations=1` plus the printed
// iteration offset.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "circuit/parser.h"
#include "circuit/verilog.h"
#include "util/parse_number.h"

namespace {

using namespace gfa;

// xorshift64: deterministic, seed-reproducible, no global state.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
  bool chance(unsigned percent) { return below(100) < percent; }
};

const char* const kNetlistKeywords[] = {"module", "endmodule", "input",
                                        "output", "word",      "and",
                                        "xor",    "or",        "not",
                                        "buf",    "nand",      "nor",
                                        "xnor",   "const0",    "const1"};

const char* const kVerilogKeywords[] = {
    "module", "endmodule", "input", "output", "wire",  "assign", "and",
    "or",     "xor",       "not",   "buf",    "nand",  "nor",    "xnor",
    "(",      ")",         "[",     "]",      ";",     ",",      "=",
    "&",      "|",         "^",     "~",      ":",     "//",     "/*"};

std::string rand_name(Rng& rng) {
  static const char* pool[] = {"a", "b", "z", "n0", "n1", "n2", "t",
                               "s", "x", "a0", "b1", "z0", "w",  "g"};
  std::string name = pool[rng.below(sizeof(pool) / sizeof(pool[0]))];
  if (rng.chance(30)) name += std::to_string(rng.below(8));
  return name;
}

/// A structurally plausible netlist document: declared inputs, a gate soup
/// referencing mostly-known nets, outputs, words. ~Half parse cleanly.
std::string gen_netlist(Rng& rng) {
  std::string text = "module fuzz\n";
  std::vector<std::string> nets;
  const std::size_t inputs = 1 + rng.below(6);
  text += "input";
  for (std::size_t i = 0; i < inputs; ++i) {
    nets.push_back("i" + std::to_string(i));
    text += " " + nets.back();
  }
  text += "\n";
  const std::size_t gates = rng.below(40);
  for (std::size_t g = 0; g < gates; ++g) {
    const char* kw = kNetlistKeywords[2 + rng.below(13)];
    std::string out = rng.chance(80) ? "g" + std::to_string(g) : rand_name(rng);
    text += std::string(kw) + " " + out;
    const std::size_t fanins = rng.below(4);
    for (std::size_t f = 0; f < fanins; ++f) {
      text += " ";
      text += rng.chance(85) && !nets.empty()
                  ? nets[rng.below(nets.size())]
                  : rand_name(rng);
    }
    text += "\n";
    nets.push_back(std::move(out));
  }
  if (rng.chance(70) && !nets.empty())
    text += "output " + nets[rng.below(nets.size())] + "\n";
  if (rng.chance(40) && nets.size() >= 2)
    text += "word W " + nets[0] + " " + nets[1] + "\n";
  // Deep chains exercise the iterative dependency-order emitter.
  if (rng.chance(10)) {
    const std::size_t depth = 1000 + rng.below(4000);
    text += "buf c0 i0\n";
    for (std::size_t d = 1; d < depth; ++d)
      text += "buf c" + std::to_string(d) + " c" + std::to_string(d - 1) + "\n";
  }
  text += "endmodule\n";
  return text;
}

/// A plausible Verilog document; exercises ranges, expressions, comments.
std::string gen_verilog(Rng& rng) {
  std::string text = "module fuzz (input [3:0] a, input [3:0] b";
  if (rng.chance(80)) text += ", output [3:0] z";
  text += ");\n";
  const std::size_t wires = rng.below(6);
  for (std::size_t w = 0; w < wires; ++w) {
    text += "  wire ";
    if (rng.chance(40))
      text += "[" + std::to_string(rng.below(64)) + ":0] ";
    text += "w" + std::to_string(w) + ";\n";
  }
  const std::size_t assigns = rng.below(12);
  for (std::size_t i = 0; i < assigns; ++i) {
    text += "  assign z[" + std::to_string(rng.below(4)) + "] = ";
    std::string expr = "a[" + std::to_string(rng.below(4)) + "]";
    const std::size_t ops = rng.below(6);
    for (std::size_t o = 0; o < ops; ++o) {
      const char* op = rng.chance(40) ? " ^ " : rng.chance(50) ? " & " : " | ";
      std::string term = rng.chance(30) ? "~" : "";
      term += rng.chance(50) ? "a" : "b";
      term += "[" + std::to_string(rng.below(4)) + "]";
      if (rng.chance(20)) term = "(" + term + ")";
      expr += op + term;
    }
    text += expr + ";\n";
  }
  if (rng.chance(30))
    text += "  and g0 (w0, a[0], b[0]);\n";
  if (rng.chance(15)) text += "  // trailing comment\n";
  if (rng.chance(10)) text += "  /* block\n comment */\n";
  // Deeply nested parens probe the expression-depth cap.
  if (rng.chance(8)) {
    const std::size_t depth = 100 + rng.below(400);
    std::string deep = "  assign z[0] = ";
    deep.append(depth, '(');
    deep += "a[0]";
    deep.append(depth, ')');
    text += deep + ";\n";
  }
  // Absurd vector widths probe the width cap / overflow guard.
  if (rng.chance(8)) {
    static const char* widths[] = {"99999999999999999999", "2147483647",
                                   "1048577", "4294967296"};
    text += "  wire [" + std::string(widths[rng.below(4)]) + ":0] huge;\n";
  }
  text += "endmodule\n";
  return text;
}

void mutate(Rng& rng, std::string& text) {
  if (text.empty()) return;
  const std::size_t edits = 1 + rng.below(8);
  for (std::size_t e = 0; e < edits; ++e) {
    switch (rng.below(5)) {
      case 0:  // flip a byte
        text[rng.below(text.size())] =
            static_cast<char>(rng.below(256));
        break;
      case 1:  // truncate
        text.resize(rng.below(text.size()));
        break;
      case 2: {  // splice a keyword mid-stream
        const char* kw = rng.chance(50)
                             ? kNetlistKeywords[rng.below(15)]
                             : kVerilogKeywords[rng.below(28)];
        text.insert(rng.below(text.size() + 1), kw);
        break;
      }
      case 3: {  // duplicate a random slice
        const std::size_t at = rng.below(text.size());
        const std::size_t len = rng.below(text.size() - at) % 64;
        text.insert(rng.below(text.size() + 1), text.substr(at, len));
        break;
      }
      case 4:  // insert raw bytes
        for (std::size_t i = 0, n = rng.below(16); i < n; ++i)
          text.insert(text.begin() + rng.below(text.size() + 1),
                      static_cast<char>(rng.below(256)));
        break;
    }
    if (text.empty()) return;
  }
}

std::string gen_garbage(Rng& rng) {
  std::string text;
  const std::size_t n = rng.below(2048);
  text.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    text += static_cast<char>(rng.below(256));
  return text;
}

/// One input through one parser. Returns false on a contract violation
/// (the try_ API let an exception escape, or a parsed netlist fails its own
/// round-trip/validate).
bool drive_netlist(const std::string& text) {
  Result<Netlist> parsed = try_parse_netlist(text);
  if (!parsed.ok()) return true;  // a clean Status for bad input is the point
  const std::string problem = parsed->validate();
  if (!problem.empty()) {
    std::fprintf(stderr, "parsed netlist fails validate(): %s\n",
                 problem.c_str());
    return false;
  }
  Result<Netlist> again = try_parse_netlist(write_netlist(*parsed));
  if (!again.ok()) {
    std::fprintf(stderr, "round-trip reparse failed: %s\n",
                 again.status().to_string().c_str());
    return false;
  }
  return true;
}

bool drive_verilog(const std::string& text) {
  Result<Netlist> parsed = try_parse_verilog(text);
  if (!parsed.ok()) return true;
  const std::string problem = parsed->validate();
  if (!problem.empty()) {
    std::fprintf(stderr, "parsed verilog fails validate(): %s\n",
                 problem.c_str());
    return false;
  }
  Result<Netlist> again = try_parse_verilog(write_verilog(*parsed));
  if (!again.ok()) {
    std::fprintf(stderr, "verilog round-trip reparse failed: %s\n",
                 again.status().to_string().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 10000;
  double seconds = 0;  // 0 = iteration-bounded only
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string_view name = arg.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : arg.substr(eq + 1);
    if (name == "--seed") {
      gfa::Result<std::uint64_t> v = gfa::parse_u64(value);
      if (!v.ok()) { std::fprintf(stderr, "bad --seed\n"); return 64; }
      seed = *v;
    } else if (name == "--iterations") {
      gfa::Result<std::uint64_t> v = gfa::parse_u64(value);
      if (!v.ok()) { std::fprintf(stderr, "bad --iterations\n"); return 64; }
      iterations = *v;
    } else if (name == "--seconds") {
      gfa::Result<double> v = gfa::parse_double(value, 0.0, 1e9);
      if (!v.ok()) { std::fprintf(stderr, "bad --seconds\n"); return 64; }
      seconds = *v;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_parser [--seed=<n>] [--iterations=<n>]"
                   " [--seconds=<s>]\n");
      return 64;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (seconds <= 0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() >= seconds;
  };

  // --seconds makes the run time-bounded (iterations becomes a no-op upper
  // bound of "forever"); otherwise --iterations bounds it.
  Rng rng(seed);
  std::uint64_t done = 0;
  for (; seconds > 0 || done < iterations; ++done) {
    if (out_of_time()) break;
    const std::uint64_t kind = rng.below(6);
    std::string text;
    bool verilog = false;
    switch (kind) {
      case 0: text = gen_netlist(rng); break;
      case 1: text = gen_verilog(rng); verilog = true; break;
      case 2: text = gen_netlist(rng); mutate(rng, text); break;
      case 3: text = gen_verilog(rng); mutate(rng, text); verilog = true; break;
      case 4: text = gen_garbage(rng); break;
      case 5: text = gen_garbage(rng); verilog = true; break;
    }
    const bool ok = verilog ? drive_verilog(text) : drive_netlist(text);
    if (!ok) {
      std::fprintf(stderr,
                   "contract violation at seed=%llu iteration=%llu "
                   "(kind %llu, %zu bytes)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(kind), text.size());
      return 2;
    }
  }
  std::printf("fuzz_parser: %llu iterations clean (seed %llu)\n",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(seed));
  return 0;
}
