// gfa_tool — command-line front end for the library.
//
//   gfa_tool gen <arch> <k> <file>         generate a circuit
//       arch: mastrovito | montgomery | karatsuba | squarer | adder | mac
//   gfa_tool extract <file> <k>            derive Z = F(A, B, …)
//   gfa_tool verify <spec> <impl> <k>      canonical-form equivalence
//   gfa_tool sat <spec> <impl> <k> [N]     CDCL miter check (N = conflict cap)
//   gfa_tool stats <file>                  netlist statistics
//
// Circuit files may be the native netlist format (.net, see
// src/circuit/parser.h) or the structural Verilog subset (.v).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "abstraction/equivalence.h"
#include "baselines/miter.h"
#include "baselines/sat/solver.h"
#include "circuit/arith_extras.h"
#include "circuit/karatsuba.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/parser.h"
#include "circuit/verilog.h"

namespace {

using namespace gfa;

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Netlist load(const std::string& path) {
  return has_suffix(path, ".v") ? read_verilog_file(path)
                                : read_netlist_file(path);
}

void save(const Netlist& nl, const std::string& path) {
  if (has_suffix(path, ".v"))
    write_verilog_file(nl, path);
  else
    write_netlist_file(nl, path);
}

int cmd_gen(int argc, char** argv) {
  if (argc != 3) return 64;
  const std::string arch = argv[0];
  const unsigned k = static_cast<unsigned>(std::atoi(argv[1]));
  if (k < 2) return 64;
  const Gf2k field = Gf2k::make(k);
  Netlist nl;
  if (arch == "mastrovito") nl = make_mastrovito_multiplier(field);
  else if (arch == "montgomery") nl = make_montgomery_multiplier_flat(field);
  else if (arch == "karatsuba") nl = make_karatsuba_multiplier(field);
  else if (arch == "squarer") nl = make_squarer(field);
  else if (arch == "adder") nl = make_adder(field);
  else if (arch == "mac") nl = make_multiply_accumulate(field);
  else {
    std::fprintf(stderr, "unknown architecture '%s'\n", arch.c_str());
    return 64;
  }
  save(nl, argv[2]);
  std::printf("wrote %s: %zu gates over F_2^%u (P = %s)\n", argv[2],
              nl.num_logic_gates(), k, field.modulus().to_string().c_str());
  return 0;
}

int cmd_extract(int argc, char** argv) {
  if (argc != 2) return 64;
  const Netlist nl = load(argv[0]);
  const Gf2k field = Gf2k::make(static_cast<unsigned>(std::atoi(argv[1])));
  for (const WordFunction& fn : extract_all_word_functions(nl, field)) {
    std::printf("%s = %s\n", fn.output_word.c_str(),
                fn.g.to_string(fn.pool).c_str());
    std::printf("  [%zu substitutions, peak %zu terms, remainder %zu terms]\n",
                fn.stats.substitutions, fn.stats.peak_terms,
                fn.stats.remainder_terms);
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc != 3) return 64;
  const Netlist spec = load(argv[0]);
  const Netlist impl = load(argv[1]);
  const Gf2k field = Gf2k::make(static_cast<unsigned>(std::atoi(argv[2])));
  const EquivalenceResult res = check_equivalence(spec, impl, field);
  std::printf("spec: %s = %s\n", res.spec.output_word.c_str(),
              res.spec.g.to_string(res.spec.pool).c_str());
  std::printf("impl: %s = %s\n", res.impl.output_word.c_str(),
              res.impl.g.to_string(res.impl.pool).c_str());
  if (res.equivalent) {
    std::printf("EQUIVALENT\n");
    return 0;
  }
  std::printf("NOT EQUIVALENT: %s\n", res.difference.c_str());
  return 1;
}

int cmd_sat(int argc, char** argv) {
  if (argc != 3 && argc != 4) return 64;
  const Netlist spec = load(argv[0]);
  const Netlist impl = load(argv[1]);
  const std::uint64_t limit =
      argc == 4 ? std::strtoull(argv[3], nullptr, 10) : 0;
  const Netlist miter = make_miter(spec, impl);
  const Cnf cnf = tseitin_encode(miter, miter.outputs()[0]);
  sat::Solver solver;
  for (const auto& clause : cnf.clauses) solver.add_clause(clause);
  const sat::Result r = solver.solve(limit);
  std::printf("%zu clauses, %llu conflicts: %s\n", cnf.clauses.size(),
              static_cast<unsigned long long>(solver.stats().conflicts),
              r == sat::Result::kUnsat    ? "EQUIVALENT (miter UNSAT)"
              : r == sat::Result::kSat    ? "NOT EQUIVALENT (miter SAT)"
                                          : "UNKNOWN (conflict budget hit)");
  if (r == sat::Result::kSat) {
    std::printf("counterexample:");
    for (NetId n : miter.inputs())
      std::printf(" %s=%d", miter.gate(n).name.c_str(),
                  solver.model_value(static_cast<int>(n) + 1) ? 1 : 0);
    std::printf("\n");
  }
  return r == sat::Result::kUnsat ? 0 : 1;
}

int cmd_stats(int argc, char** argv) {
  if (argc != 1) return 64;
  const Netlist nl = load(argv[0]);
  const std::string problem = nl.validate();
  std::printf("module %s: %zu nets, %zu gates, %zu inputs, %zu outputs\n",
              nl.name().c_str(), nl.num_nets(), nl.num_logic_gates(),
              nl.inputs().size(), nl.outputs().size());
  for (const Word& w : nl.words())
    std::printf("  word %s: %zu bits\n", w.name.c_str(), w.bits.size());
  std::size_t by_type[16] = {};
  for (NetId n = 0; n < nl.num_nets(); ++n)
    ++by_type[static_cast<int>(nl.gate(n).type)];
  for (int t = 0; t < 16; ++t) {
    if (by_type[t] == 0) continue;
    std::printf("  %-7s %zu\n", gate_type_name(static_cast<GateType>(t)),
                by_type[t]);
  }
  std::printf("validate: %s\n", problem.empty() ? "ok" : problem.c_str());
  return problem.empty() ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gfa_tool gen <arch> <k> <file>\n"
               "  gfa_tool extract <file> <k>\n"
               "  gfa_tool verify <spec> <impl> <k>\n"
               "  gfa_tool sat <spec> <impl> <k> [conflict-limit]\n"
               "  gfa_tool stats <file>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 64;
  }
  const std::string cmd = argv[1];
  try {
    int rc = 64;
    if (cmd == "gen") rc = cmd_gen(argc - 2, argv + 2);
    else if (cmd == "extract") rc = cmd_extract(argc - 2, argv + 2);
    else if (cmd == "verify") rc = cmd_verify(argc - 2, argv + 2);
    else if (cmd == "sat") rc = cmd_sat(argc - 2, argv + 2);
    else if (cmd == "stats") rc = cmd_stats(argc - 2, argv + 2);
    if (rc == 64) usage();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
