// gfa_tool — command-line front end for the library.
//
//   gfa_tool gen <arch> <k> <file>         generate a circuit
//       arch: mastrovito | montgomery | karatsuba | squarer | adder | mac
//   gfa_tool mutate <in> <seed> <out>      inject one random gate-level bug
//   gfa_tool extract <file> <k> [--timeout=<s>]
//   gfa_tool verify <spec> <impl> <k> [--engine=<name>] [--timeout=<s>]
//                   [--report=<file>] [--memory-budget=<bytes|64K|512M|2G>]
//                   [--attempt-timeout=<s>] [--portfolio-engines=<a,b,…>]
//                   [--race] [--certify]
//                   [--isolate] [--retries=<n>] [--retry-backoff=<dur>]
//                   [--retry-seed=<n>] [--retry-budget-escalation=<f>]
//                   [--heartbeat-interval=<s>] [--stall-timeout=<s>]
//                   [--isolate-attempts]
//                   [--checkpoint=<dir>] [--checkpoint-interval=<steps>]
//                   [--resume]
//   gfa_tool compare <spec> <impl> <k> [--engines=<a,b,…>] [--timeout=<s>]
//                    [--report=<file>]
//   gfa_tool engines                       list registered engines
//   gfa_tool sat <spec> <impl> <k> [N]     legacy CDCL miter check
//   gfa_tool stats <file>                  netlist statistics
//
// Observability (any command; see DESIGN.md "Observability"):
//   --metrics            enable the metrics registry; nonzero values print
//                        after the command and embed into --report JSON
//   --trace=<file>       record phase spans, write Chrome trace-event JSON
//   --log-level=<level>  error|warn|info|debug (overrides GFA_LOG)
//
// Fault injection (test/debug builds only; see DESIGN.md "Robustness"):
//   --inject=<site[:n]>  arm a deterministic fault at the named site's nth
//                        hit (same syntax as GFA_INJECT); exits 69 when the
//                        binary was built with -DGFA_FAULT_INJECTION=OFF
//
// Flags accept both --name=value and --name value.
//
// Circuit files may be the native netlist format (.net, see
// src/circuit/parser.h) or the structural Verilog subset (.v).
//
// Exit codes (see util/status.h):
//   0  OK / EQUIVALENT             65 parse error (file or number)
//   1  NOT EQUIVALENT              66 invalid argument
//   2  internal error              69 unsupported instance
//   3  UNKNOWN verdict             70 resource budget exhausted
//   64 usage                       71 worker process crashed (--isolate)
//                                  73 certification failed (--certify)
//                                  74 cancelled
//                                  75 deadline (--timeout) exceeded

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "abstraction/extractor.h"
#include "baselines/miter.h"
#include "baselines/sat/solver.h"
#include "circuit/arith_extras.h"
#include "circuit/karatsuba.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/parser.h"
#include "circuit/verilog.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_inject.h"
#include "util/parallel_for.h"
#include "util/parse_number.h"
#include "worker/harness.h"
#include "worker/retry.h"

namespace {

using namespace gfa;

constexpr int kUsage = 64;
constexpr int kVerdictNotEquivalent = 1;
constexpr int kVerdictUnknown = 3;

/// Prints the status one-line and converts it to the documented exit code.
int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return exit_code_for(status.code());
}

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<Netlist> load(const std::string& path) {
  const gfa::obs::TraceSpan span("parse", "io");
  return has_suffix(path, ".v") ? try_read_verilog_file(path)
                                : try_read_netlist_file(path);
}

void save(const Netlist& nl, const std::string& path) {
  if (has_suffix(path, ".v"))
    write_verilog_file(nl, path);
  else
    write_netlist_file(nl, path);
}

/// `--engine=x` / `--timeout=1.5` / `--report=out.json` / `--engines=a,b` /
/// `--trace=t.json` / `--log-level=info` / boolean `--metrics`. Value flags
/// also accept the space-separated form (`--engine abstraction`). Positional
/// arguments land in `positional` in order.
struct Flags {
  std::vector<std::string> positional;
  std::string engine = "abstraction";
  std::string engines;  // compare: comma-separated subset, empty = all
  double timeout_seconds = 0;  // 0 = unbounded
  std::string report;
  std::string trace;    // Chrome trace-event output file, empty = off
  bool metrics = false;
  std::string log_level;  // empty = GFA_LOG / default
  std::uint64_t memory_budget_bytes = 0;  // 0 = unbounded
  double attempt_timeout_seconds = 0;     // portfolio per-attempt cap
  std::string portfolio_engines;  // comma-separated order, empty = default
  bool race = false;              // portfolio: race instead of escalate
  bool certify = false;           // cross-check kEquivalent by simulation
  std::string inject;             // fault site spec, empty = off
  // Worker isolation & recovery (verify only).
  bool isolate = false;           // fork the engine into a supervised child
  bool isolate_attempts = false;  // portfolio: fork each attempt
  unsigned retries = 0;           // extra isolated attempts after the first
  bool retries_set = false;       // --retries given (needs --isolate)
  double retry_backoff_seconds = 0.25;
  std::uint64_t retry_seed = 0;
  double retry_budget_escalation = 1.0;
  double heartbeat_interval_seconds = 1.0;  // worker telemetry cadence; 0 = off
  double stall_timeout_seconds = 0.0;       // 0 = stall detector off
  std::string checkpoint_dir;        // empty = checkpointing off
  std::uint64_t checkpoint_interval = 0;  // 0 = library default
  bool resume = false;               // load a matching checkpoint if present
  unsigned threads = 0;              // 0 = GFA_THREADS / hardware default
};

Result<Flags> parse_flags(int argc, char** argv) {
  Flags flags;
  const auto assign = [&](std::string_view name,
                          std::string_view value) -> Status {
    if (name == "--engine") {
      flags.engine = value;
    } else if (name == "--engines") {
      flags.engines = value;
    } else if (name == "--timeout") {
      Result<double> t = parse_double(value, 0.0, 1e9);
      if (!t.ok()) return t.status();
      flags.timeout_seconds = *t;
    } else if (name == "--report") {
      flags.report = value;
    } else if (name == "--trace") {
      flags.trace = value;
    } else if (name == "--log-level") {
      Result<obs::LogLevel> level = obs::parse_log_level(value);
      if (!level.ok()) return level.status();
      flags.log_level = value;
    } else if (name == "--memory-budget") {
      Result<std::uint64_t> bytes = parse_byte_size(value);
      if (!bytes.ok()) return bytes.status();
      flags.memory_budget_bytes = *bytes;
    } else if (name == "--attempt-timeout") {
      Result<double> t = parse_double(value, 0.0, 1e9);
      if (!t.ok()) return t.status();
      flags.attempt_timeout_seconds = *t;
    } else if (name == "--portfolio-engines") {
      flags.portfolio_engines = value;
    } else if (name == "--inject") {
      flags.inject = value;
    } else if (name == "--retries") {
      Result<unsigned> n = parse_unsigned(value, 0, 1000);
      if (!n.ok()) return n.status();
      flags.retries = *n;
      flags.retries_set = true;
    } else if (name == "--retry-backoff") {
      Result<double> d = parse_duration_seconds(value);
      if (!d.ok()) return d.status();
      flags.retry_backoff_seconds = *d;
    } else if (name == "--retry-seed") {
      Result<std::uint64_t> n = parse_u64(value);
      if (!n.ok()) return n.status();
      flags.retry_seed = *n;
    } else if (name == "--retry-budget-escalation") {
      Result<double> f = parse_double(value, 1.0, 100.0);
      if (!f.ok()) return f.status();
      flags.retry_budget_escalation = *f;
    } else if (name == "--heartbeat-interval") {
      Result<double> d = parse_double(value, 0.0, 1e9);
      if (!d.ok()) return d.status();
      flags.heartbeat_interval_seconds = *d;
    } else if (name == "--stall-timeout") {
      Result<double> d = parse_double(value, 0.0, 1e9);
      if (!d.ok()) return d.status();
      flags.stall_timeout_seconds = *d;
    } else if (name == "--checkpoint") {
      flags.checkpoint_dir = value;
    } else if (name == "--checkpoint-interval") {
      Result<std::uint64_t> n = parse_u64(value, 1);
      if (!n.ok()) return n.status();
      flags.checkpoint_interval = *n;
    } else if (name == "--threads") {
      // Same domain as GFA_THREADS; 0 and garbage are rejected here as
      // kInvalidArgument (exit 66, like a bad engine name) so the pool
      // never sees them.
      Result<unsigned> n = parse_unsigned(value, 1, 1024);
      if (!n.ok())
        return Status::invalid_argument(
            "--threads: " + std::string(n.status().message()));
      flags.threads = *n;
    } else {
      return Status::invalid_argument("unknown flag '" + std::string(name) +
                                      "'");
    }
    return Status();
  };
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional.emplace_back(arg);
      continue;
    }
    if (arg == "--metrics") {
      flags.metrics = true;
      continue;
    }
    if (arg == "--race") {
      flags.race = true;
      continue;
    }
    if (arg == "--certify") {
      flags.certify = true;
      continue;
    }
    if (arg == "--isolate") {
      flags.isolate = true;
      continue;
    }
    if (arg == "--isolate-attempts") {
      flags.isolate_attempts = true;
      continue;
    }
    if (arg == "--resume") {
      flags.resume = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    Status s;
    if (eq != std::string_view::npos) {
      s = assign(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc) {
      s = assign(arg, argv[++i]);
    } else {
      s = Status::invalid_argument("flag '" + std::string(arg) +
                                   "' expects a value");
    }
    if (!s.ok()) return s;
  }
  return flags;
}

/// Applies the observability flags to the process-wide switches.
void apply_observability_flags(const Flags& flags) {
  if (flags.threads != 0) set_parallel_thread_count(flags.threads);
  if (flags.metrics) obs::set_metrics_enabled(true);
  if (!flags.trace.empty()) obs::set_trace_enabled(true);
  if (!flags.log_level.empty())
    obs::set_log_level(*obs::parse_log_level(flags.log_level));
  else
    obs::log_level();  // resolve GFA_LOG now: a malformed value must exit 2
                       // at startup, not whenever the first message fires
}

/// With --trace, writes the accumulated spans as Chrome trace-event JSON.
void maybe_write_trace(const Flags& flags) {
  if (flags.trace.empty()) return;
  std::ofstream out(flags.trace);
  if (!out) {
    GFA_LOG_WARN("gfa_tool",
                 "cannot write trace file '" << flags.trace << "'");
    return;
  }
  obs::Tracer::instance().write_chrome_trace(out);
}

/// With --metrics, prints every nonzero metric after the command's output.
void maybe_print_metrics(const Flags& flags) {
  if (!flags.metrics) return;
  std::printf("-- metrics --\n");
  for (const auto& [name, value] : obs::Metrics::instance().snapshot()) {
    if (value == 0) continue;
    std::printf("%-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
}

engine::RunOptions run_options_from(const Flags& flags) {
  engine::RunOptions options;
  if (flags.timeout_seconds > 0)
    options.control.deadline = Deadline::after(flags.timeout_seconds);
  options.memory_budget_bytes =
      static_cast<std::size_t>(flags.memory_budget_bytes);
  options.attempt_timeout_seconds = flags.attempt_timeout_seconds;
  options.portfolio_race = flags.race;
  options.certify = flags.certify;
  options.isolate_attempts = flags.isolate_attempts;
  options.checkpoint_dir = flags.checkpoint_dir;
  options.checkpoint_interval = flags.checkpoint_interval;
  options.checkpoint_resume = flags.resume;
  std::string_view rest = flags.portfolio_engines;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view name = rest.substr(0, comma);
    if (!name.empty()) options.portfolio_engines.emplace_back(name);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
  }
  return options;
}

/// Arms --inject (same spec syntax as GFA_INJECT). A binary compiled with
/// -DGFA_FAULT_INJECTION=OFF reports kUnsupported — exit 69 — rather than
/// silently running without the fault.
Status apply_inject_flag(const Flags& flags) {
  if (flags.inject.empty()) return Status();
  return fault::arm_spec(flags.inject);
}

/// Writes the report file when --report was given; warns on I/O failure
/// without changing the exit code (the verdict already happened).
void maybe_write_report(const Flags& flags, const std::string& tool, unsigned k,
                        const std::vector<engine::EngineRun>& runs) {
  if (flags.report.empty()) return;
  std::ofstream out(flags.report);
  if (!out) {
    GFA_LOG_WARN("gfa_tool",
                 "cannot write report file '" << flags.report << "'");
    return;
  }
  engine::write_run_report(out, tool, k, runs);
}

int cmd_gen(const Flags& flags) {
  if (flags.positional.size() != 3) return kUsage;
  const std::string& arch = flags.positional[0];
  const Result<unsigned> k = parse_unsigned(flags.positional[1], 2, 100000);
  if (!k.ok()) return fail(k.status());
  const Result<Gf2k> field = Gf2k::try_make(*k);
  if (!field.ok()) return fail(field.status());
  Netlist nl;
  if (arch == "mastrovito") nl = make_mastrovito_multiplier(*field);
  else if (arch == "montgomery") nl = make_montgomery_multiplier_flat(*field);
  else if (arch == "karatsuba") nl = make_karatsuba_multiplier(*field);
  else if (arch == "squarer") nl = make_squarer(*field);
  else if (arch == "adder") nl = make_adder(*field);
  else if (arch == "mac") nl = make_multiply_accumulate(*field);
  else
    return fail(Status::invalid_argument("unknown architecture '" + arch +
                                         "'"));
  save(nl, flags.positional[2]);
  std::printf("wrote %s: %zu gates over F_2^%u (P = %s)\n",
              flags.positional[2].c_str(), nl.num_logic_gates(), *k,
              field->modulus().to_string().c_str());
  return 0;
}

int cmd_mutate(const Flags& flags) {
  if (flags.positional.size() != 3) return kUsage;
  const Result<Netlist> nl = load(flags.positional[0]);
  if (!nl.ok()) return fail(nl.status());
  const Result<std::uint64_t> seed = parse_u64(flags.positional[1]);
  if (!seed.ok()) return fail(seed.status());
  BugDescription desc;
  const Netlist buggy = inject_random_bug(*nl, *seed, &desc);
  save(buggy, flags.positional[2]);
  std::printf("wrote %s: injected bug [%s]\n", flags.positional[2].c_str(),
              desc.text.c_str());
  return 0;
}

int cmd_extract(const Flags& flags) {
  if (flags.positional.size() != 2) return kUsage;
  const Result<Netlist> nl = load(flags.positional[0]);
  if (!nl.ok()) return fail(nl.status());
  const Result<unsigned> k = parse_unsigned(flags.positional[1], 2, 100000);
  if (!k.ok()) return fail(k.status());
  const Result<Gf2k> field = Gf2k::try_make(*k);
  if (!field.ok()) return fail(field.status());
  const engine::RunOptions run = run_options_from(flags);
  ExtractionOptions options;
  options.control = &run.control;
  const Result<std::vector<WordFunction>> fns =
      try_extract_all_word_functions(*nl, *field, options);
  if (!fns.ok()) return fail(fns.status());
  for (const WordFunction& fn : *fns) {
    std::printf("%s = %s\n", fn.output_word.c_str(),
                fn.g.to_string(fn.pool).c_str());
    std::printf("  [%zu substitutions, peak %zu terms, remainder %zu terms]\n",
                fn.stats.substitutions, fn.stats.peak_terms,
                fn.stats.remainder_terms);
  }
  return 0;
}

/// Builds the request one isolated `verify` run ships to its forked worker:
/// the circuit *paths* (the child parses them itself — a parse crash then
/// stays inside the sandbox too) plus every engine limit the flags carry.
worker::WorkerRequest worker_request_from(const Flags& flags, unsigned k) {
  worker::WorkerRequest req;
  req.spec_path = flags.positional[0];
  req.impl_path = flags.positional[1];
  req.k = k;
  req.engine = flags.engine;
  req.timeout_seconds = flags.timeout_seconds;
  req.memory_budget_bytes = flags.memory_budget_bytes;
  req.attempt_timeout_seconds = flags.attempt_timeout_seconds;
  req.portfolio_race = flags.race;
  req.certify = flags.certify;
  std::string_view rest = flags.portfolio_engines;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view name = rest.substr(0, comma);
    if (!name.empty()) req.portfolio_engines.emplace_back(name);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
  }
  req.checkpoint_dir = flags.checkpoint_dir;
  req.checkpoint_interval = flags.checkpoint_interval;
  req.checkpoint_resume = flags.resume;
  req.heartbeat_interval_seconds = flags.heartbeat_interval_seconds;
  req.stall_timeout_seconds = flags.stall_timeout_seconds;
  return req;
}

Status check_verify_flags(const Flags& flags) {
  if (flags.retries_set && !flags.isolate)
    return Status::invalid_argument(
        "--retries only applies to isolated runs; add --isolate");
  if (flags.resume && flags.checkpoint_dir.empty())
    return Status::invalid_argument(
        "--resume needs --checkpoint=<dir> to know where checkpoints live");
  if (flags.isolate && flags.isolate_attempts)
    return Status::invalid_argument(
        "--isolate already forks the whole run; drop --isolate-attempts");
  if (flags.stall_timeout_seconds > 0 && !flags.isolate)
    return Status::invalid_argument(
        "--stall-timeout watches a worker's heartbeat stream; add --isolate");
  if (flags.stall_timeout_seconds > 0 &&
      flags.heartbeat_interval_seconds <= 0)
    return Status::invalid_argument(
        "--stall-timeout needs heartbeats; --heartbeat-interval=0 disables "
        "them");
  return Status();
}

int cmd_verify(const Flags& flags) {
  if (flags.positional.size() != 3) return kUsage;
  if (const Status s = check_verify_flags(flags); !s.ok()) return fail(s);
  const Result<unsigned> k = parse_unsigned(flags.positional[2], 2, 100000);
  if (!k.ok()) return fail(k.status());

  engine::EngineRun run;
  if (flags.isolate) {
    worker::RetryPolicy policy;
    policy.max_attempts = flags.retries + 1;
    policy.backoff_seconds = flags.retry_backoff_seconds;
    policy.jitter_seed = flags.retry_seed;
    policy.budget_escalation = flags.retry_budget_escalation;
    run = worker::run_isolated_with_retry(worker_request_from(flags, *k),
                                          policy);
  } else {
    const Result<Netlist> spec = load(flags.positional[0]);
    if (!spec.ok()) return fail(spec.status());
    const Result<Netlist> impl = load(flags.positional[1]);
    if (!impl.ok()) return fail(impl.status());
    const Result<Gf2k> field = Gf2k::try_make(*k);
    if (!field.ok()) return fail(field.status());
    const Result<const engine::EquivEngine*> eng =
        engine::EngineRegistry::global().require(flags.engine);
    if (!eng.ok()) return fail(eng.status());
    engine::RunOptions options = run_options_from(flags);
    if (flags.isolate_attempts) {
      // The portfolio forks each attempt; its workers re-read the circuits
      // from disk, so hand the paths through.
      options.worker_spec_path = flags.positional[0];
      options.worker_impl_path = flags.positional[1];
    }
    run = engine::run_engine(**eng, *spec, *impl, *field, options);
  }
  maybe_write_report(flags, "verify", *k, {run});
  if (!run.status.ok()) return fail(run.status);
  for (const auto& [key, value] : run.stats)
    std::printf("  %s = %g\n", key.c_str(), value);
  switch (run.verdict) {
    case engine::Verdict::kEquivalent:
      std::printf("EQUIVALENT [engine %s, %.2f ms]\n", run.engine.c_str(),
                  run.wall_ms);
      return 0;
    case engine::Verdict::kNotEquivalent:
      std::printf("NOT EQUIVALENT [engine %s, %.2f ms]%s%s\n",
                  run.engine.c_str(), run.wall_ms,
                  run.detail.empty() ? "" : ": ", run.detail.c_str());
      if (!run.counterexample.empty()) {
        std::printf("counterexample%s:",
                    run.counterexample.replayed ? " (replayed)" : "");
        for (const auto& [name, elem] : run.counterexample.inputs)
          std::printf(" %s=%s", name.c_str(), elem.c_str());
        std::printf(" -> %s: spec=%s, impl=%s\n",
                    run.counterexample.output_word.c_str(),
                    run.counterexample.expected.c_str(),
                    run.counterexample.actual.c_str());
      }
      return kVerdictNotEquivalent;
    case engine::Verdict::kUnknown:
      break;
  }
  std::printf("UNKNOWN [engine %s, %.2f ms]%s%s\n", run.engine.c_str(),
              run.wall_ms, run.detail.empty() ? "" : ": ",
              run.detail.c_str());
  return kVerdictUnknown;
}

int cmd_compare(const Flags& flags) {
  if (flags.positional.size() != 3) return kUsage;
  const Result<Netlist> spec = load(flags.positional[0]);
  if (!spec.ok()) return fail(spec.status());
  const Result<Netlist> impl = load(flags.positional[1]);
  if (!impl.ok()) return fail(impl.status());
  const Result<unsigned> k = parse_unsigned(flags.positional[2], 2, 100000);
  if (!k.ok()) return fail(k.status());
  const Result<Gf2k> field = Gf2k::try_make(*k);
  if (!field.ok()) return fail(field.status());

  const engine::EngineRegistry& registry = engine::EngineRegistry::global();
  std::vector<const engine::EquivEngine*> engines;
  if (flags.engines.empty()) {
    engines = registry.engines();
  } else {
    std::string_view rest = flags.engines;
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view name = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      Result<const engine::EquivEngine*> eng = registry.require(name);
      if (!eng.ok()) return fail(eng.status());
      engines.push_back(*eng);
    }
  }

  std::vector<engine::EngineRun> runs;
  runs.reserve(engines.size());
  for (const engine::EquivEngine* eng : engines) {
    // Fresh deadline per engine: --timeout bounds each method individually
    // (the paper's per-method timeout), not the whole batch.
    const engine::RunOptions options = run_options_from(flags);
    runs.push_back(engine::run_engine(*eng, *spec, *impl, *field, options));
  }
  maybe_write_report(flags, "compare", *k, runs);

  std::printf("%-18s %-16s %10s  %s\n", "engine", "verdict", "wall_ms",
              "detail");
  bool saw_equivalent = false, saw_not_equivalent = false;
  for (const engine::EngineRun& run : runs) {
    const char* verdict = run.status.ok()
                              ? engine::verdict_name(run.verdict)
                              : status_code_name(run.status.code());
    std::printf("%-18s %-16s %10.2f  %s\n", run.engine.c_str(), verdict,
                run.wall_ms, run.detail.c_str());
    if (run.status.ok() && run.verdict == engine::Verdict::kEquivalent)
      saw_equivalent = true;
    if (run.status.ok() && run.verdict == engine::Verdict::kNotEquivalent)
      saw_not_equivalent = true;
  }
  if (saw_equivalent && saw_not_equivalent) {
    std::fprintf(stderr,
                 "CONTRADICTION: engines disagree on a definitive verdict\n");
    return kVerdictNotEquivalent;
  }
  if (saw_not_equivalent) return kVerdictNotEquivalent;
  if (saw_equivalent) return 0;
  return kVerdictUnknown;  // nobody reached a definitive verdict
}

int cmd_engines(const Flags& flags) {
  if (!flags.positional.empty()) return kUsage;
  for (const engine::EquivEngine* eng :
       engine::EngineRegistry::global().engines())
    std::printf("%-18s %s\n", eng->name().c_str(),
                eng->description().c_str());
  return 0;
}

int cmd_sat(const Flags& flags) {
  if (flags.positional.size() != 3 && flags.positional.size() != 4)
    return kUsage;
  const Result<Netlist> spec = load(flags.positional[0]);
  if (!spec.ok()) return fail(spec.status());
  const Result<Netlist> impl = load(flags.positional[1]);
  if (!impl.ok()) return fail(impl.status());
  std::uint64_t limit = 0;
  if (flags.positional.size() == 4) {
    const Result<std::uint64_t> parsed = parse_u64(flags.positional[3]);
    if (!parsed.ok()) return fail(parsed.status());
    limit = *parsed;
  }
  const Netlist miter = make_miter(*spec, *impl);
  const Cnf cnf = tseitin_encode(miter, miter.outputs()[0]);
  sat::Solver solver;
  for (const auto& clause : cnf.clauses) solver.add_clause(clause);
  const sat::Result r = solver.solve(limit);
  std::printf("%zu clauses, %llu conflicts: %s\n", cnf.clauses.size(),
              static_cast<unsigned long long>(solver.stats().conflicts),
              r == sat::Result::kUnsat    ? "EQUIVALENT (miter UNSAT)"
              : r == sat::Result::kSat    ? "NOT EQUIVALENT (miter SAT)"
                                          : "UNKNOWN (conflict budget hit)");
  if (r == sat::Result::kSat) {
    std::printf("counterexample:");
    for (NetId n : miter.inputs())
      std::printf(" %s=%d", miter.gate(n).name.c_str(),
                  solver.model_value(static_cast<int>(n) + 1) ? 1 : 0);
    std::printf("\n");
  }
  return r == sat::Result::kUnsat ? 0
         : r == sat::Result::kSat ? kVerdictNotEquivalent
                                  : kVerdictUnknown;
}

int cmd_stats(const Flags& flags) {
  if (flags.positional.size() != 1) return kUsage;
  const Result<Netlist> loaded = load(flags.positional[0]);
  if (!loaded.ok()) return fail(loaded.status());
  const Netlist& nl = *loaded;
  const std::string problem = nl.validate();
  std::printf("module %s: %zu nets, %zu gates, %zu inputs, %zu outputs\n",
              nl.name().c_str(), nl.num_nets(), nl.num_logic_gates(),
              nl.inputs().size(), nl.outputs().size());
  for (const Word& w : nl.words())
    std::printf("  word %s: %zu bits\n", w.name.c_str(), w.bits.size());
  std::size_t by_type[16] = {};
  for (NetId n = 0; n < nl.num_nets(); ++n)
    ++by_type[static_cast<int>(nl.gate(n).type)];
  for (int t = 0; t < 16; ++t) {
    if (by_type[t] == 0) continue;
    std::printf("  %-7s %zu\n", gate_type_name(static_cast<GateType>(t)),
                by_type[t]);
  }
  std::printf("validate: %s\n", problem.empty() ? "ok" : problem.c_str());
  return problem.empty() ? 0 : kVerdictNotEquivalent;
}

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gfa_tool gen <arch> <k> <file>\n"
      "  gfa_tool mutate <in> <seed> <out>\n"
      "  gfa_tool extract <file> <k> [--timeout=<s>]\n"
      "  gfa_tool verify <spec> <impl> <k> [--engine=<name>] [--timeout=<s>]"
      " [--report=<file>]\n"
      "          [--memory-budget=<bytes|64K|512M|2G>] [--attempt-timeout=<s>]"
      " [--portfolio-engines=<a,b,...>] [--race] [--certify]\n"
      "          [--isolate] [--retries=<n>] [--retry-backoff=<dur>]"
      " [--retry-seed=<n>] [--retry-budget-escalation=<f>]\n"
      "          [--heartbeat-interval=<s>] [--stall-timeout=<s>]\n"
      "          [--isolate-attempts] [--checkpoint=<dir>]"
      " [--checkpoint-interval=<steps>] [--resume]\n"
      "  gfa_tool compare <spec> <impl> <k> [--engines=<a,b,...>]"
      " [--timeout=<s>] [--report=<file>]\n"
      "  gfa_tool engines\n"
      "  gfa_tool sat <spec> <impl> <k> [conflict-limit]\n"
      "  gfa_tool stats <file>\n"
      "observability flags (any command):\n"
      "  --threads=<n>          thread-pool size, 1..1024 (default:"
      " GFA_THREADS or all cores)\n"
      "  --metrics              collect + print engine metrics\n"
      "  --trace=<file>         write Chrome trace-event JSON\n"
      "  --log-level=<level>    error|warn|info|debug (default: GFA_LOG or"
      " warn)\n"
      "fault injection (requires a -DGFA_FAULT_INJECTION=ON build):\n"
      "  --inject=<site[:n]>    arm a deterministic fault at the site's nth"
      " hit\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return kUsage;
  }
  const std::string cmd = argv[1];
  const Result<Flags> flags = parse_flags(argc - 2, argv + 2);
  if (!flags.ok()) return fail(flags.status());
  apply_observability_flags(*flags);
  if (const Status s = apply_inject_flag(*flags); !s.ok()) return fail(s);
  try {
    int rc = kUsage;
    if (cmd == "gen") rc = cmd_gen(*flags);
    else if (cmd == "mutate") rc = cmd_mutate(*flags);
    else if (cmd == "extract") rc = cmd_extract(*flags);
    else if (cmd == "verify") rc = cmd_verify(*flags);
    else if (cmd == "compare") rc = cmd_compare(*flags);
    else if (cmd == "engines") rc = cmd_engines(*flags);
    else if (cmd == "sat") rc = cmd_sat(*flags);
    else if (cmd == "stats") rc = cmd_stats(*flags);
    if (rc == kUsage) usage();
    maybe_print_metrics(*flags);
    maybe_write_trace(*flags);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    maybe_write_trace(*flags);
    return 2;
  }
}
