// gfa_serve — fault-tolerant verification daemon (see src/service/service.h).
//
//   gfa_serve --socket=<path> [options]
//
// Options:
//   --socket=<path>              Unix-domain socket to listen on (required)
//   --pool-size=<n>              concurrent verification workers (default 2)
//   --queue-depth=<n>            jobs waiting beyond the pool before new ones
//                                are rejected as overloaded (default 16)
//   --cache-dir=<dir>            persist canonical forms under this directory
//                                (default: in-memory cache only)
//   --cache-max-bytes=<size>     LRU bound on the cache (default 64M;
//                                accepts 64K/512M/2G suffixes)
//   --no-cache                   disable the canonical-form cache entirely
//   --default-timeout=<s>        per-job wall-clock limit for jobs that do
//                                not ask for one (default: none)
//   --max-timeout=<s>            hard cap on any job's requested limit
//   --default-memory-budget=<b>  per-job memory budget default
//   --max-memory-budget=<b>      hard cap on any job's requested budget
//   --retries=<n>                extra forked attempts after a crashed
//                                worker (default 1)
//   --heartbeat-interval=<s>     worker telemetry cadence (default 1, 0=off)
//   --stall-timeout=<s>          classify a silent worker as crashed after
//                                this long (default 0 = off)
//   --quarantine-strikes=<n>     worker crashes before an identical job
//                                fast-fails without forking (default 3,
//                                0 = never quarantine)
//   --quarantine-ttl=<s>         forget a job's strike record this long
//                                after its last crash (default 0 = keep it
//                                until clear-quarantine)
//   --no-certify                 skip the random-simulation cross-check of
//                                kEquivalent answers (cache hits and forked
//                                workers alike)
//   --metrics                    enable the metrics registry (status replies
//                                then embed a full snapshot)
//   --log-level=<level>          error|warn|info|debug
//   --inject=<site[:n]>          arm a deterministic fault (test builds)
//
// Once listening, prints exactly one readiness line to stdout:
//   listening on <socket>
// SIGTERM or SIGINT triggers a graceful drain: stop accepting (the socket
// file disappears), finish every queued and in-flight job, flush, exit 0.

#include <signal.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "util/fault_inject.h"
#include "util/parse_number.h"
#include "util/status.h"

namespace {

using namespace gfa;

constexpr int kUsage = 64;

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return exit_code_for(status.code());
}

int usage() {
  std::fprintf(stderr,
               "usage: gfa_serve --socket=<path> [--pool-size=<n>] "
               "[--queue-depth=<n>]\n"
               "                 [--cache-dir=<dir>] [--cache-max-bytes=<size>] "
               "[--no-cache]\n"
               "                 [--default-timeout=<s>] [--max-timeout=<s>]\n"
               "                 [--default-memory-budget=<b>] "
               "[--max-memory-budget=<b>]\n"
               "                 [--retries=<n>] [--heartbeat-interval=<s>] "
               "[--stall-timeout=<s>]\n"
               "                 [--quarantine-strikes=<n>] "
               "[--quarantine-ttl=<s>] [--no-certify]\n"
               "                 [--metrics] [--log-level=<level>] "
               "[--inject=<site[:n]>]\n");
  return kUsage;
}

service::Server* g_server = nullptr;

void on_shutdown_signal(int) {
  // Async-signal-safe by contract: one pipe write, handled by the accept
  // loop. A second signal during the drain is simply absorbed.
  if (g_server != nullptr) g_server->notify_drain_from_signal();
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions options;
  options.max_attempts = 2;  // --retries=1 by default: one re-fork per crash
  std::string log_level;
  std::string inject;
  bool metrics = false;

  const auto assign = [&](std::string_view name,
                          std::string_view value) -> Status {
    if (name == "--socket") {
      options.socket_path = value;
    } else if (name == "--pool-size") {
      Result<unsigned> n = parse_unsigned(value, 1, 256);
      if (!n.ok()) return n.status();
      options.pool_size = *n;
    } else if (name == "--queue-depth") {
      Result<unsigned> n = parse_unsigned(value, 1, 1u << 20);
      if (!n.ok()) return n.status();
      options.queue_depth = *n;
    } else if (name == "--cache-dir") {
      options.cache_dir = value;
    } else if (name == "--cache-max-bytes") {
      Result<std::uint64_t> bytes = parse_byte_size(value);
      if (!bytes.ok()) return bytes.status();
      options.cache_max_bytes = *bytes;
    } else if (name == "--default-timeout") {
      Result<double> t = parse_double(value, 0.0, 1e9);
      if (!t.ok()) return t.status();
      options.default_timeout_seconds = *t;
    } else if (name == "--max-timeout") {
      Result<double> t = parse_double(value, 0.0, 1e9);
      if (!t.ok()) return t.status();
      options.max_timeout_seconds = *t;
    } else if (name == "--default-memory-budget") {
      Result<std::uint64_t> bytes = parse_byte_size(value);
      if (!bytes.ok()) return bytes.status();
      options.default_memory_budget_bytes = *bytes;
    } else if (name == "--max-memory-budget") {
      Result<std::uint64_t> bytes = parse_byte_size(value);
      if (!bytes.ok()) return bytes.status();
      options.max_memory_budget_bytes = *bytes;
    } else if (name == "--retries") {
      Result<unsigned> n = parse_unsigned(value, 0, 100);
      if (!n.ok()) return n.status();
      options.max_attempts = *n + 1;
    } else if (name == "--heartbeat-interval") {
      Result<double> d = parse_double(value, 0.0, 1e9);
      if (!d.ok()) return d.status();
      options.heartbeat_interval_seconds = *d;
    } else if (name == "--stall-timeout") {
      Result<double> d = parse_double(value, 0.0, 1e9);
      if (!d.ok()) return d.status();
      options.stall_timeout_seconds = *d;
    } else if (name == "--quarantine-strikes") {
      Result<unsigned> n = parse_unsigned(value, 0, 1000);
      if (!n.ok()) return n.status();
      options.quarantine_strikes = *n;
    } else if (name == "--quarantine-ttl") {
      Result<double> d = parse_double(value, 0.0, 1e9);
      if (!d.ok()) return d.status();
      options.quarantine_ttl_seconds = *d;
    } else if (name == "--log-level") {
      Result<obs::LogLevel> level = obs::parse_log_level(value);
      if (!level.ok()) return level.status();
      log_level = value;
    } else if (name == "--inject") {
      inject = value;
    } else {
      return Status::invalid_argument("unknown flag '" + std::string(name) +
                                      "'");
    }
    return Status();
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics") {
      metrics = true;
      continue;
    }
    if (arg == "--no-cache") {
      options.cache_enabled = false;
      continue;
    }
    if (arg == "--no-certify") {
      options.certify = false;
      continue;
    }
    if (arg.rfind("--", 0) != 0) return usage();
    const std::size_t eq = arg.find('=');
    Status s;
    if (eq != std::string_view::npos) {
      s = assign(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc) {
      s = assign(arg, argv[++i]);
    } else {
      return usage();
    }
    if (!s.ok()) return fail(s);
  }
  if (options.socket_path.empty()) return usage();

  if (!log_level.empty())
    obs::set_log_level(*obs::parse_log_level(log_level));
  if (metrics) obs::set_metrics_enabled(true);
  if (!inject.empty()) {
    if (Status s = fault::arm_spec(inject); !s.ok()) return fail(s);
  }

  const std::string socket_path = options.socket_path;
  service::Server server(std::move(options));
  if (Status s = server.start(); !s.ok()) return fail(s);

  g_server = &server;
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // The readiness line scripts wait for (CI's service-smoke job greps it).
  const service::ServiceSnapshot snap = server.snapshot();
  std::printf("listening on %s (pool %u, queue %zu)\n", socket_path.c_str(),
              snap.pool_size, snap.queue_capacity);
  std::fflush(stdout);
  const int code = server.serve();
  g_server = nullptr;
  return code;
}
