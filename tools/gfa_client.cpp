// gfa_client — submit verification jobs to a running gfa_serve.
//
//   gfa_client status --socket=<path>
//       print the server's JSON health snapshot (pool, queue, jobs, cache,
//       quarantine)
//
//   gfa_client clear-quarantine --socket=<path>
//       drop every quarantined job fingerprint so crashed jobs may run
//       again (e.g. after deploying a fixed engine); prints how many were
//       being tracked
//
//   gfa_client verify <spec> <impl> <k> --socket=<path>
//       [--engine=<name>] [--timeout=<s>] [--memory-budget=<size>]
//       [--no-cache]
//       one synchronous job; exit codes match gfa_tool verify
//       (0 equivalent, 1 not equivalent, 3 unknown, else the failure code)
//
//   gfa_client batch <jobs-file> --socket=<path> [--report=<file>]
//       [--timeout=<s>] [--no-cache]
//       pipeline many jobs from a file (one per line:
//       `<spec> <impl> <k> [engine]`, '#' comments and blank lines skipped),
//       print one line per outcome, and exit with the worst result across
//       the batch: any failed job's exit code, else 1 if any pair was not
//       equivalent, else 3 if any verdict is unknown, else 0. --report
//       writes a JSON summary of every job.
//
// --timeout here is the client-side wait per response, not the job's compute
// budget — ask the server for that via its --default/--max flags.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "service/client.h"
#include "util/json_writer.h"
#include "util/parse_number.h"
#include "util/status.h"

namespace {

using namespace gfa;

constexpr int kUsage = 64;

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return exit_code_for(status.code());
}

int usage() {
  std::fprintf(stderr,
               "usage: gfa_client status --socket=<path>\n"
               "       gfa_client clear-quarantine --socket=<path>\n"
               "       gfa_client verify <spec> <impl> <k> --socket=<path>\n"
               "                  [--engine=<name>] [--timeout=<s>]\n"
               "                  [--memory-budget=<size>] [--no-cache]\n"
               "       gfa_client batch <jobs-file> --socket=<path>\n"
               "                  [--report=<file>] [--timeout=<s>] "
               "[--no-cache]\n");
  return kUsage;
}

struct Flags {
  std::vector<std::string> positional;
  std::string socket;
  std::string engine = "abstraction";
  std::string report;
  double timeout_seconds = 0.0;
  std::uint64_t memory_budget_bytes = 0;
  bool no_cache = false;
};

Result<Flags> parse_flags(int argc, char** argv) {
  Flags flags;
  const auto assign = [&](std::string_view name,
                          std::string_view value) -> Status {
    if (name == "--socket") {
      flags.socket = value;
    } else if (name == "--engine") {
      flags.engine = value;
    } else if (name == "--report") {
      flags.report = value;
    } else if (name == "--timeout") {
      Result<double> t = parse_double(value, 0.0, 1e9);
      if (!t.ok()) return t.status();
      flags.timeout_seconds = *t;
    } else if (name == "--memory-budget") {
      Result<std::uint64_t> bytes = parse_byte_size(value);
      if (!bytes.ok()) return bytes.status();
      flags.memory_budget_bytes = *bytes;
    } else {
      return Status::invalid_argument("unknown flag '" + std::string(name) +
                                      "'");
    }
    return Status();
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--no-cache") {
      flags.no_cache = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      flags.positional.emplace_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    Status s;
    if (eq != std::string_view::npos) {
      s = assign(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc) {
      s = assign(arg, argv[++i]);
    } else {
      return Status::invalid_argument("flag '" + std::string(arg) +
                                      "' is missing its value");
    }
    if (!s.ok()) return s;
  }
  return flags;
}

void print_outcome(const service::BatchOutcome& o) {
  const service::JobResponse& r = o.response;
  std::string cache_note = r.cache.empty() ? "" : " [cache=" + r.cache + "]";
  if (r.status.ok()) {
    std::printf("job %llu: %s %s vs %s (%.1f ms)%s\n",
                static_cast<unsigned long long>(r.id),
                engine::verdict_name(r.verdict), o.request.spec_path.c_str(),
                o.request.impl_path.c_str(), r.wall_ms, cache_note.c_str());
  } else {
    std::printf("job %llu: FAILED %s vs %s: %s%s\n",
                static_cast<unsigned long long>(r.id),
                o.request.spec_path.c_str(), o.request.impl_path.c_str(),
                r.status.to_string().c_str(), cache_note.c_str());
  }
}

void write_batch_report(const std::string& path,
                        const std::vector<service::BatchOutcome>& outcomes) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write report file '%s'\n",
                 path.c_str());
    return;
  }
  JsonWriter w(out);
  w.begin_object();
  w.member("tool", "gfa_client");
  w.key("jobs");
  w.begin_array();
  for (const service::BatchOutcome& o : outcomes) {
    w.begin_object();
    w.member("id", o.response.id);
    w.member("spec", o.request.spec_path);
    w.member("impl", o.request.impl_path);
    w.member("k", o.request.k);
    w.member("engine", o.request.engine);
    w.member("status", status_code_name(o.response.status.code()));
    if (!o.response.status.ok())
      w.member("message", o.response.status.message());
    w.member("verdict", engine::verdict_name(o.response.verdict));
    if (!o.response.detail.empty()) w.member("detail", o.response.detail);
    if (!o.response.counterexample.empty()) {
      w.key("counterexample");
      w.begin_object();
      w.key("inputs");
      w.begin_object();
      for (const auto& [name, elem] : o.response.counterexample.inputs)
        w.member(name, elem);
      w.end_object();
      w.member("output_word", o.response.counterexample.output_word);
      w.member("expected", o.response.counterexample.expected);
      w.member("actual", o.response.counterexample.actual);
      w.member("replayed", o.response.counterexample.replayed);
      w.end_object();
    }
    w.member("wall_ms", o.response.wall_ms);
    if (!o.response.cache.empty()) w.member("cache", o.response.cache);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

int cmd_status(const Flags& flags) {
  Result<service::ServiceClient> client =
      service::ServiceClient::connect(flags.socket);
  if (!client.ok()) return fail(client.status());
  const Result<std::string> snapshot =
      client->status_json(flags.timeout_seconds);
  if (!snapshot.ok()) return fail(snapshot.status());
  std::printf("%s\n", snapshot->c_str());
  return 0;
}

int cmd_clear_quarantine(const Flags& flags) {
  Result<service::ServiceClient> client =
      service::ServiceClient::connect(flags.socket);
  if (!client.ok()) return fail(client.status());
  service::JobRequest req;
  req.op = "clear-quarantine";
  const Result<service::JobResponse> resp =
      client->call(std::move(req), flags.timeout_seconds);
  if (!resp.ok()) return fail(resp.status());
  if (!resp->status.ok()) return fail(resp->status);
  const auto it = resp->stats.find("cleared");
  std::printf("cleared %llu quarantined fingerprint(s)\n",
              static_cast<unsigned long long>(
                  it == resp->stats.end() ? 0.0 : it->second));
  return 0;
}

int cmd_verify(const Flags& flags) {
  if (flags.positional.size() != 3) return usage();
  const Result<unsigned> k = parse_unsigned(flags.positional[2], 2, 100000);
  if (!k.ok()) return fail(k.status());
  Result<service::ServiceClient> client =
      service::ServiceClient::connect(flags.socket);
  if (!client.ok()) return fail(client.status());
  service::JobRequest req;
  req.spec_path = flags.positional[0];
  req.impl_path = flags.positional[1];
  req.k = *k;
  req.engine = flags.engine;
  req.memory_budget_bytes = flags.memory_budget_bytes;
  req.no_cache = flags.no_cache;
  const Result<service::JobResponse> resp =
      client->call(std::move(req), flags.timeout_seconds);
  if (!resp.ok()) return fail(resp.status());
  service::BatchOutcome outcome;
  outcome.request.spec_path = flags.positional[0];
  outcome.request.impl_path = flags.positional[1];
  outcome.response = *resp;
  print_outcome(outcome);
  if (!resp->status.ok()) return exit_code_for(resp->status.code());
  if (resp->verdict == engine::Verdict::kNotEquivalent) {
    if (!resp->detail.empty()) std::printf("%s\n", resp->detail.c_str());
    if (!resp->counterexample.empty()) {
      std::printf("counterexample%s:",
                  resp->counterexample.replayed ? " (replayed)" : "");
      for (const auto& [name, elem] : resp->counterexample.inputs)
        std::printf(" %s=%s", name.c_str(), elem.c_str());
      std::printf(" -> %s: spec=%s, impl=%s\n",
                  resp->counterexample.output_word.c_str(),
                  resp->counterexample.expected.c_str(),
                  resp->counterexample.actual.c_str());
    }
    return 1;
  }
  return resp->verdict == engine::Verdict::kUnknown ? 3 : 0;
}

int cmd_batch(const Flags& flags) {
  if (flags.positional.size() != 1) return usage();
  std::ifstream in(flags.positional[0]);
  if (!in)
    return fail(Status::invalid_argument("cannot open jobs file '" +
                                         flags.positional[0] + "'"));
  std::vector<service::JobRequest> requests;
  std::string line;
  unsigned line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    service::JobRequest req;
    std::string k_text;
    if (!(fields >> req.spec_path)) continue;  // blank / comment-only line
    if (!(fields >> req.impl_path >> k_text))
      return fail(Status::invalid_argument(
          "jobs file line " + std::to_string(line_no) +
          ": expected `<spec> <impl> <k> [engine]`"));
    const Result<unsigned> k = parse_unsigned(k_text, 2, 100000);
    if (!k.ok())
      return fail(Status::invalid_argument(
          "jobs file line " + std::to_string(line_no) + ": " +
          std::string(k.status().message())));
    req.k = *k;
    if (!(fields >> req.engine)) req.engine = flags.engine;
    req.no_cache = flags.no_cache;
    requests.push_back(std::move(req));
  }
  if (requests.empty())
    return fail(Status::invalid_argument("jobs file '" + flags.positional[0] +
                                         "' contains no jobs"));

  Result<service::ServiceClient> client =
      service::ServiceClient::connect(flags.socket);
  if (!client.ok()) return fail(client.status());
  const Result<std::vector<service::BatchOutcome>> outcomes =
      service::run_batch(*client, std::move(requests), flags.timeout_seconds);
  if (!outcomes.ok()) return fail(outcomes.status());
  for (const service::BatchOutcome& o : *outcomes) print_outcome(o);
  if (!flags.report.empty()) write_batch_report(flags.report, *outcomes);
  const int code = service::batch_exit_code(*outcomes);
  std::printf("batch: %zu jobs, exit %d\n", outcomes->size(), code);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> flags = parse_flags(argc, argv);
  if (!flags.ok()) return fail(flags.status());
  if (flags->positional.empty()) return usage();
  if (flags->socket.empty()) return usage();
  const std::string command = flags->positional.front();
  flags->positional.erase(flags->positional.begin());
  if (command == "status") return cmd_status(*flags);
  if (command == "clear-quarantine") return cmd_clear_quarantine(*flags);
  if (command == "verify") return cmd_verify(*flags);
  if (command == "batch") return cmd_batch(*flags);
  return usage();
}
