// Ablations of the design choices DESIGN.md calls out:
//
//   1. Word-lift fast path: the bilinear Cᵀ·Q·C matrix triple product versus
//      the general monomial-by-monomial expansion, on the same Mastrovito
//      remainder (O(k³) vs O(k⁴) field multiplications).
//   2. Shared vs per-call Frobenius basis-change construction (the O(k³)
//      Gauss–Jordan inversion amortized across the four Montgomery blocks).
//   3. Hierarchical versus flattened verification of the same Montgomery
//      multiplier (the paper's Table 2-vs-Table 1 flow distinction).

#include <benchmark/benchmark.h>

#include "abstraction/f4_reduction.h"
#include "abstraction/hierarchy.h"
#include "abstraction/rato.h"
#include "abstraction/rewriter.h"
#include "abstraction/word_lift.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "bench_util.h"

namespace {

// Rebuilds the Mastrovito remainder r = Σ α^{i+j} a_i b_j over a fresh pool.
struct RemainderFixture {
  gfa::Gf2k field;
  gfa::VarPool pool;
  std::vector<gfa::WordLift::WordBinding> bindings;
  gfa::BitPoly remainder;

  explicit RemainderFixture(unsigned k) : field(gfa::Gf2k::make(k)), remainder(&field) {
    gfa::WordLift::WordBinding ba, bb;
    for (unsigned i = 0; i < k; ++i)
      ba.bit_vars.push_back(pool.intern("a" + std::to_string(i), gfa::VarKind::kBit));
    for (unsigned i = 0; i < k; ++i)
      bb.bit_vars.push_back(pool.intern("b" + std::to_string(i), gfa::VarKind::kBit));
    ba.word_var = pool.intern("A", gfa::VarKind::kWord);
    bb.word_var = pool.intern("B", gfa::VarKind::kWord);
    for (unsigned i = 0; i < k; ++i)
      for (unsigned j = 0; j < k; ++j)
        remainder.add_term({ba.bit_vars[i], bb.bit_vars[j]},
                           field.alpha_pow(std::uint64_t{i} + j));
    bindings = {ba, bb};
  }
};

void BM_LiftBilinearFastPath(benchmark::State& state) {
  RemainderFixture fx(static_cast<unsigned>(state.range(0)));
  const gfa::WordLift lift(&fx.field);
  for (auto _ : state)
    benchmark::DoNotOptimize(lift.lift(fx.remainder, fx.bindings, fx.pool));
}

void BM_LiftGeneralPath(benchmark::State& state) {
  // Force the general path by adding one cubic monomial: the lift dispatches
  // on max monomial size, so the whole (otherwise identical) remainder now
  // takes the O(k⁴) expansion route.
  RemainderFixture fx(static_cast<unsigned>(state.range(0)));
  fx.remainder.add_term({fx.bindings[0].bit_vars[0], fx.bindings[0].bit_vars[1],
                         fx.bindings[1].bit_vars[0]},
                        fx.field.one());
  const gfa::WordLift lift(&fx.field);
  for (auto _ : state)
    benchmark::DoNotOptimize(lift.lift(fx.remainder, fx.bindings, fx.pool));
}

void BM_WordLiftConstruction(benchmark::State& state) {
  // The O(k³) Gauss–Jordan inversion that shared_lift amortizes.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const gfa::WordLift lift(&field);
    benchmark::DoNotOptimize(lift.matrix().size());
  }
}

void BM_EngineIndexed(benchmark::State& state) {
  // Per-variable substitution through the occurrence index.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist nl = make_mastrovito_multiplier(field);
  const gfa::WordLift lift(&field);
  gfa::ExtractionOptions options;
  options.shared_lift = &lift;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gfa::extract_word_function(nl, field, options).g.num_terms());
}

void BM_EngineF4Batch(benchmark::State& state) {
  // Level-synchronous batch reduction (the paper's F4-style tool).
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist nl = make_mastrovito_multiplier(field);
  const gfa::WordLift lift(&field);
  gfa::ExtractionOptions options;
  options.shared_lift = &lift;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gfa::extract_word_function_f4(nl, field, options).g.num_terms());
}

void BM_VerifyHierarchical(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  for (auto _ : state) {
    const gfa::HierarchicalAbstraction ha = abstract_montgomery(h, field);
    benchmark::DoNotOptimize(ha.composed.g.num_terms());
  }
}

void BM_VerifyFlattened(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist flat = make_montgomery_multiplier_flat(field);
  for (auto _ : state) {
    const gfa::WordFunction fn = gfa::extract_word_function(flat, field);
    benchmark::DoNotOptimize(fn.g.num_terms());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("table", "Ablations (DESIGN.md design choices)");
  for (unsigned k : gfa::bench::ladder({8, 16, 24, 32}, 32)) {
    benchmark::RegisterBenchmark("Ablation/LiftBilinear", BM_LiftBilinearFastPath)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/LiftGeneral", BM_LiftGeneralPath)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  for (unsigned k : gfa::bench::ladder({32, 64, 128}, 128)) {
    benchmark::RegisterBenchmark("Ablation/WordLiftBuild", BM_WordLiftConstruction)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  for (unsigned k : gfa::bench::ladder({16, 32, 64}, 64)) {
    benchmark::RegisterBenchmark("Ablation/VerifyHierarchical", BM_VerifyHierarchical)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/VerifyFlattened", BM_VerifyFlattened)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/EngineIndexed", BM_EngineIndexed)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/EngineF4Batch", BM_EngineF4Batch)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
