// Ablations of the design choices DESIGN.md calls out:
//
//   1. Word-lift fast path: the bilinear Cᵀ·Q·C matrix triple product versus
//      the general monomial-by-monomial expansion, on the same Mastrovito
//      remainder (O(k³) vs O(k⁴) field multiplications).
//   2. Shared vs per-call Frobenius basis-change construction (the O(k³)
//      Gauss–Jordan inversion amortized across the four Montgomery blocks).
//   3. Hierarchical versus flattened verification of the same Montgomery
//      multiplier (the paper's Table 2-vs-Table 1 flow distinction).
//   4. Polynomial representation tiering: the packed tier (PackedMono keys,
//      open-addressed term arena) versus the frozen legacy vector tier on
//      the same reduction chain. `--poly-repr={packed,vector}` restricts the
//      run to one side; by default both run and the packed-over-vector
//      speedup lands in BENCH_ablation_poly_repr.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>

#include "abstraction/f4_reduction.h"
#include "abstraction/hierarchy.h"
#include "abstraction/rato.h"
#include "abstraction/rewriter.h"
#include "abstraction/word_lift.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "bench_util.h"

namespace {

// Rebuilds the Mastrovito remainder r = Σ α^{i+j} a_i b_j over a fresh pool.
struct RemainderFixture {
  gfa::Gf2k field;
  gfa::VarPool pool;
  std::vector<gfa::WordLift::WordBinding> bindings;
  gfa::BitPoly remainder;

  explicit RemainderFixture(unsigned k) : field(gfa::Gf2k::make(k)), remainder(&field) {
    gfa::WordLift::WordBinding ba, bb;
    for (unsigned i = 0; i < k; ++i)
      ba.bit_vars.push_back(pool.intern("a" + std::to_string(i), gfa::VarKind::kBit));
    for (unsigned i = 0; i < k; ++i)
      bb.bit_vars.push_back(pool.intern("b" + std::to_string(i), gfa::VarKind::kBit));
    ba.word_var = pool.intern("A", gfa::VarKind::kWord);
    bb.word_var = pool.intern("B", gfa::VarKind::kWord);
    for (unsigned i = 0; i < k; ++i)
      for (unsigned j = 0; j < k; ++j)
        remainder.add_term({ba.bit_vars[i], bb.bit_vars[j]},
                           field.alpha_pow(std::uint64_t{i} + j));
    bindings = {ba, bb};
  }
};

void BM_LiftBilinearFastPath(benchmark::State& state) {
  RemainderFixture fx(static_cast<unsigned>(state.range(0)));
  const gfa::WordLift lift(&fx.field);
  for (auto _ : state)
    benchmark::DoNotOptimize(lift.lift(fx.remainder, fx.bindings, fx.pool));
}

void BM_LiftGeneralPath(benchmark::State& state) {
  // Force the general path by adding one cubic monomial: the lift dispatches
  // on max monomial size, so the whole (otherwise identical) remainder now
  // takes the O(k⁴) expansion route.
  RemainderFixture fx(static_cast<unsigned>(state.range(0)));
  fx.remainder.add_term({fx.bindings[0].bit_vars[0], fx.bindings[0].bit_vars[1],
                         fx.bindings[1].bit_vars[0]},
                        fx.field.one());
  const gfa::WordLift lift(&fx.field);
  for (auto _ : state)
    benchmark::DoNotOptimize(lift.lift(fx.remainder, fx.bindings, fx.pool));
}

void BM_WordLiftConstruction(benchmark::State& state) {
  // The O(k³) Gauss–Jordan inversion that shared_lift amortizes.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const gfa::WordLift lift(&field);
    benchmark::DoNotOptimize(lift.matrix().size());
  }
}

void BM_EngineIndexed(benchmark::State& state) {
  // Per-variable substitution through the occurrence index.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist nl = make_mastrovito_multiplier(field);
  const gfa::WordLift lift(&field);
  gfa::ExtractionOptions options;
  options.shared_lift = &lift;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gfa::extract_word_function(nl, field, options).g.num_terms());
}

void BM_EngineF4Batch(benchmark::State& state) {
  // Level-synchronous batch reduction (the paper's F4-style tool).
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist nl = make_mastrovito_multiplier(field);
  const gfa::WordLift lift(&field);
  gfa::ExtractionOptions options;
  options.shared_lift = &lift;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gfa::extract_word_function_f4(nl, field, options).g.num_terms());
}

void BM_ReductionChainRepr(benchmark::State& state, gfa::PolyRepr repr) {
  // The same RATO reduction chain under either monomial representation; the
  // word-level endgame past the chain is identical, so the delta is the
  // representation ablation in isolation.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist nl = make_mastrovito_multiplier(field);
  const gfa::WordLift lift(&field);
  gfa::ExtractionOptions options;
  options.shared_lift = &lift;
  options.poly_repr = repr;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gfa::extract_word_function(nl, field, options).g.num_terms());
}

/// Measures one extraction and returns (reduction-chain phase ms, wall ms).
std::pair<double, double> measure_chain(const gfa::Netlist& nl,
                                        const gfa::Gf2k& field,
                                        const gfa::ExtractionOptions& options,
                                        gfa::bench::BenchRecord& rec) {
  gfa::obs::Tracer::instance().clear();
  const auto t0 = std::chrono::steady_clock::now();
  const gfa::WordFunction fn = gfa::extract_word_function(nl, field, options);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  rec.k = field.k();
  rec.wall_ms = wall_ms;
  rec.peak_terms = fn.stats.peak_terms;
  rec.substitutions = fn.stats.substitutions;
  rec.phases = gfa::bench::drain_phase_times();
  double chain_ms = wall_ms;
  for (const auto& [phase, ms] : rec.phases)
    if (phase == "reduction_chain") chain_ms = ms;
  return {chain_ms, wall_ms};
}

void BM_VerifyHierarchical(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  for (auto _ : state) {
    const gfa::HierarchicalAbstraction ha = abstract_montgomery(h, field);
    benchmark::DoNotOptimize(ha.composed.g.num_terms());
  }
}

void BM_VerifyFlattened(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist flat = make_montgomery_multiplier_flat(field);
  for (auto _ : state) {
    const gfa::WordFunction fn = gfa::extract_word_function(flat, field);
    benchmark::DoNotOptimize(fn.g.num_terms());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --poly-repr={packed,vector} restricts the representation ablation to one
  // tier (the CI release job runs each side in isolation); strip the flag
  // before Google Benchmark sees argv.
  std::string repr_filter;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--poly-repr=", 12) != 0) continue;
    repr_filter = argv[i] + 12;
    if (repr_filter != "packed" && repr_filter != "vector") {
      std::fprintf(stderr, "--poly-repr must be 'packed' or 'vector', got '%s'\n",
                   repr_filter.c_str());
      return 2;
    }
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    --i;
  }
  const bool run_packed = repr_filter != "vector";
  const bool run_vector = repr_filter != "packed";

  gfa::obs::set_trace_enabled(true);
  benchmark::AddCustomContext("table", "Ablations (DESIGN.md design choices)");
  for (unsigned k : gfa::bench::ladder({8, 16, 24, 32}, 32)) {
    benchmark::RegisterBenchmark("Ablation/LiftBilinear", BM_LiftBilinearFastPath)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/LiftGeneral", BM_LiftGeneralPath)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  for (unsigned k : gfa::bench::ladder({32, 64, 128}, 128)) {
    benchmark::RegisterBenchmark("Ablation/WordLiftBuild", BM_WordLiftConstruction)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  for (unsigned k : gfa::bench::ladder({16, 32, 64}, 64)) {
    benchmark::RegisterBenchmark("Ablation/VerifyHierarchical", BM_VerifyHierarchical)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/VerifyFlattened", BM_VerifyFlattened)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/EngineIndexed", BM_EngineIndexed)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    benchmark::RegisterBenchmark("Ablation/EngineF4Batch", BM_EngineF4Batch)
        ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  const std::vector<unsigned> repr_sizes = gfa::bench::ladder({32, 64, 128}, 163);
  for (unsigned k : repr_sizes) {
    if (run_packed)
      benchmark::RegisterBenchmark("Ablation/ChainPacked", BM_ReductionChainRepr,
                                   gfa::PolyRepr::kPacked)
          ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
    if (run_vector)
      benchmark::RegisterBenchmark("Ablation/ChainVector", BM_ReductionChainRepr,
                                   gfa::PolyRepr::kVector)
          ->Arg(static_cast<int>(k))->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Representation-tiering artifact: one timed extraction per (k, repr) with
  // the per-phase breakdown, and on each packed record the reduction-chain
  // speedup over the vector tier measured in the same process. This is the
  // committed evidence for the packed tier's win (bench/artifacts/).
  gfa::bench::JsonReporter reporter("ablation_poly_repr");
  for (unsigned k : repr_sizes) {
    const gfa::Gf2k field = gfa::Gf2k::make(k);
    const gfa::Netlist nl = make_mastrovito_multiplier(field);
    const gfa::WordLift lift(&field);
    gfa::ExtractionOptions options;
    options.shared_lift = &lift;
    double vector_chain_ms = 0;
    if (run_vector) {
      gfa::bench::BenchRecord rec;
      rec.name = "Ablation/PolyRepr/vector";
      options.poly_repr = gfa::PolyRepr::kVector;
      vector_chain_ms = measure_chain(nl, field, options, rec).first;
      reporter.add(rec);
    }
    if (run_packed) {
      gfa::bench::BenchRecord rec;
      rec.name = "Ablation/PolyRepr/packed";
      options.poly_repr = gfa::PolyRepr::kPacked;
      const double packed_chain_ms = measure_chain(nl, field, options, rec).first;
      if (run_vector && packed_chain_ms > 0)
        rec.extra = {{"chain_speedup_vs_vector", vector_chain_ms / packed_chain_ms}};
      reporter.add(rec);
    }
  }
  reporter.write();
  return 0;
}
