#pragma once
// Shared helpers for the benchmark binaries.
//
// Every bench models one table or figure of the paper's evaluation (see
// DESIGN.md's per-experiment index). Field-size ladders default to
// laptop-scale runs; set GFA_BENCH_MAX_K to extend them up to the full NIST
// set (233, 283, 409, 571) when you have the time budget of the paper's
// 24-hour runs.
//
// Each bench binary also writes a machine-readable BENCH_<name>.json next to
// its working directory via JsonReporter, so the performance trajectory of
// the repo is recorded run over run (k, wall time, peak terms, substitutions,
// plus bench-specific extras such as kernel-vs-generic speedups).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "abstraction/extractor.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/parallel_for.h"
#include "util/parse_number.h"

namespace gfa::bench {

/// The NIST ECC field sizes of the paper's Tables 1 and 2.
inline const std::vector<unsigned>& nist_sizes() {
  static const std::vector<unsigned> kSizes = {163, 233, 283, 409, 571};
  return kSizes;
}

/// Parses GFA_BENCH_MAX_K; exits with a diagnostic on a malformed value
/// rather than silently benching nothing (atoi's 0 on garbage).
inline unsigned max_k_from_env(unsigned default_max) {
  const char* env = std::getenv("GFA_BENCH_MAX_K");
  if (env == nullptr) return default_max;
  const Result<unsigned> v = parse_unsigned(env, 1, 1000000);
  if (!v.ok()) {
    std::fprintf(stderr,
                 "GFA_BENCH_MAX_K must be a positive integer, got '%s' (%s)\n",
                 env, v.status().to_string().c_str());
    std::exit(2);
  }
  return *v;
}

/// Returns `base` extended by every NIST size <= GFA_BENCH_MAX_K
/// (default `default_max`).
inline std::vector<unsigned> ladder(std::vector<unsigned> base,
                                    unsigned default_max) {
  const unsigned max_k = max_k_from_env(default_max);
  std::vector<unsigned> out;
  for (unsigned k : base)
    if (k <= max_k) out.push_back(k);
  for (unsigned k : nist_sizes())
    if (k <= max_k && (out.empty() || k > out.back())) out.push_back(k);
  return out;
}

/// One measured configuration of a bench.
struct BenchRecord {
  std::string name;              // e.g. "Table1/Mastrovito" or "mul"
  unsigned k = 0;                // field size
  double wall_ms = 0.0;          // wall-clock time of the measured work
  std::size_t peak_terms = 0;    // extraction memory proxy (0 if n/a)
  std::size_t substitutions = 0; // RATO substitution count (0 if n/a)
  /// Bench-specific numeric extras, e.g. {"speedup", 32.5}.
  std::vector<std::pair<std::string, double>> extra;
  /// Elapsed per-phase milliseconds (from the obs tracer), e.g.
  /// {"reduction_chain", 812.4} — written as a "phases" object so
  /// BENCH_*.json records where the time went, not just the total.
  std::vector<std::pair<std::string, double>> phases;
};

/// Folds the tracer's span buffer into BenchRecord::phases (total ms per
/// phase name) and clears the buffer so the next measurement starts clean.
/// Call with tracing enabled (set_trace_enabled(true)) around the measured
/// region.
inline std::vector<std::pair<std::string, double>> drain_phase_times() {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, total] : obs::Tracer::instance().aggregate())
    out.emplace_back(name, total.total_ms);
  obs::Tracer::instance().clear();
  return out;
}

/// Accumulates records and writes BENCH_<name>.json on destruction or on an
/// explicit write(). The file is one object: a header ("bench", "threads" —
/// the pool width the ladder ran at) plus the "records" array; scaling
/// records carry their own per-record "threads" extra.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_(bench_name), path_("BENCH_" + std::move(bench_name) + ".json") {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    try {
      write();
    } catch (...) {
      // Never throw out of a destructor; the bench results already printed.
    }
  }

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  void write() const {
    std::ofstream out(path_);
    if (!out) {
      GFA_LOG_WARN("bench", "cannot write " << path_);
      return;
    }
    JsonWriter w(out);
    w.begin_object();
    w.member("bench", bench_);
    w.member("threads", parallel_thread_count());
    // /proc-sampled process peak across the whole ladder — the memory
    // trajectory next to the per-record peak_terms proxy.
    obs::sample_rss_bytes();
    w.member("peak_rss_bytes", obs::peak_rss_bytes());
    w.key("records");
    w.begin_array();
    for (const BenchRecord& r : records_) {
      w.begin_object();
      w.member("name", r.name);
      w.member("k", r.k);
      w.member("wall_ms", r.wall_ms);
      w.member("peak_terms", static_cast<std::uint64_t>(r.peak_terms));
      w.member("substitutions", static_cast<std::uint64_t>(r.substitutions));
      for (const auto& [key, value] : r.extra) w.member(key, value);
      if (!r.phases.empty()) {
        w.key("phases");
        w.begin_object();
        for (const auto& [phase, ms] : r.phases) w.member(phase, ms);
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << "\n";
  }

  const std::string& path() const { return path_; }

 private:
  std::string bench_;
  std::string path_;
  std::vector<BenchRecord> records_;
};

/// Scaling section: re-extracts one circuit at pool widths 1/2/4/8 and adds
/// one record per width (the per-record "threads" extra plus the usual
/// "phases" object, so reduction_chain ms vs width is directly readable from
/// BENCH_*.json). The sharded chain's determinism contract is enforced here:
/// a canonical polynomial that differs across widths aborts the bench.
/// Restores the pool width it found.
inline void add_scaling_records(JsonReporter& reporter, const std::string& name,
                                const Gf2k& field, const Netlist& netlist,
                                const ExtractionOptions& base_options) {
  const unsigned restore = parallel_thread_count();
  std::optional<MPoly> reference;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    set_parallel_thread_count(threads);
    obs::Tracer::instance().clear();
    const auto t0 = std::chrono::steady_clock::now();
    const WordFunction fn = extract_word_function(netlist, field, base_options);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    if (!reference) {
      reference = fn.g;
    } else if (!(fn.g == *reference)) {
      std::fprintf(stderr,
                   "%s: canonical polynomial at %u threads differs from the "
                   "1-thread result\n",
                   name.c_str(), threads);
      std::exit(3);
    }
    BenchRecord rec;
    rec.name = name;
    rec.k = field.k();
    rec.wall_ms = wall_ms;
    rec.peak_terms = fn.stats.peak_terms;
    rec.substitutions = fn.stats.substitutions;
    rec.extra = {{"threads", static_cast<double>(threads)},
                 {"rss_bytes", static_cast<double>(obs::sample_rss_bytes())}};
    rec.phases = drain_phase_times();
    reporter.add(rec);
  }
  set_parallel_thread_count(restore);
}

}  // namespace gfa::bench
