#pragma once
// Shared helpers for the benchmark binaries.
//
// Every bench models one table or figure of the paper's evaluation (see
// DESIGN.md's per-experiment index). Field-size ladders default to
// laptop-scale runs; set GFA_BENCH_MAX_K to extend them up to the full NIST
// set (233, 283, 409, 571) when you have the time budget of the paper's
// 24-hour runs.

#include <cstdlib>
#include <string>
#include <vector>

namespace gfa::bench {

/// The NIST ECC field sizes of the paper's Tables 1 and 2.
inline const std::vector<unsigned>& nist_sizes() {
  static const std::vector<unsigned> kSizes = {163, 233, 283, 409, 571};
  return kSizes;
}

/// Returns `base` extended by every NIST size <= GFA_BENCH_MAX_K
/// (default `default_max`).
inline std::vector<unsigned> ladder(std::vector<unsigned> base,
                                    unsigned default_max) {
  unsigned max_k = default_max;
  if (const char* env = std::getenv("GFA_BENCH_MAX_K")) {
    max_k = static_cast<unsigned>(std::atoi(env));
  }
  std::vector<unsigned> out;
  for (unsigned k : base)
    if (k <= max_k) out.push_back(k);
  for (unsigned k : nist_sizes())
    if (k <= max_k && (out.empty() || k > out.back())) out.push_back(k);
  return out;
}

}  // namespace gfa::bench
