// Paper Table 2: "Abstraction of Montgomery blocks."
//
// For each field size k, generates the hierarchical Montgomery multiplier of
// Fig. 1 (four MontMul blocks; Blk A/B absorb the constant R², Blk Out the
// constant 1 — hence the different block sizes, as in the paper) and measures
// the per-block abstraction time plus the word-level composition. The gate
// counters reproduce the table's "# of Gates" rows.
//
// Paper reference (k=163): Blk A 33K gates / 144 s, Blk B 33K / 137 s,
// Blk Mid 85K / 264 s, Blk Out 32K / 91 s, total 636 s — and scaling through
// k=571 (total 87458 s), beyond what the flattened Table 1 flow reached.

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>

#include "abstraction/hierarchy.h"
#include "abstraction/word_lift.h"
#include "circuit/montgomery.h"
#include "obs/trace.h"
#include "bench_util.h"

namespace {

gfa::bench::JsonReporter& reporter() {
  static gfa::bench::JsonReporter r("table2_montgomery");
  return r;
}

const char* kBlockNames[] = {"BlkA", "BlkB", "BlkMid", "BlkOut"};

const gfa::Netlist& block_of(const gfa::MontgomeryHierarchy& h, int which) {
  switch (which) {
    case 0: return h.blk_a;
    case 1: return h.blk_b;
    case 2: return h.blk_mid;
    default: return h.blk_out;
  }
}

struct PerField {
  gfa::Gf2k field;
  gfa::MontgomeryHierarchy hierarchy;
  gfa::WordLift lift;
  explicit PerField(unsigned k)
      : field(gfa::Gf2k::make(k)),
        hierarchy(make_montgomery_hierarchy(field)),
        lift(&field) {}
};

PerField& cached(unsigned k) {
  static std::map<unsigned, std::unique_ptr<PerField>> cache;
  auto& slot = cache[k];
  if (!slot) slot = std::make_unique<PerField>(k);
  return *slot;
}

void BM_MontgomeryBlock(benchmark::State& state) {
  PerField& pf = cached(static_cast<unsigned>(state.range(0)));
  const gfa::Netlist& blk = block_of(pf.hierarchy, static_cast<int>(state.range(1)));
  gfa::ExtractionOptions options;
  options.shared_lift = &pf.lift;
  gfa::ExtractionStats stats;
  double wall_ms = 0;
  std::vector<std::pair<std::string, double>> phases;
  for (auto _ : state) {
    gfa::obs::Tracer::instance().clear();
    const auto t0 = std::chrono::steady_clock::now();
    const gfa::WordFunction fn =
        gfa::extract_word_function(blk, pf.field, options);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    stats = fn.stats;
    phases = gfa::bench::drain_phase_times();
    benchmark::DoNotOptimize(fn.g.num_terms());
  }
  state.counters["gates"] = static_cast<double>(blk.num_logic_gates());
  state.counters["peak_terms"] = static_cast<double>(stats.peak_terms);
  gfa::bench::BenchRecord rec;
  rec.name = std::string("Table2/") + kBlockNames[state.range(1)];
  rec.k = static_cast<unsigned>(state.range(0));
  rec.wall_ms = wall_ms;
  rec.peak_terms = stats.peak_terms;
  rec.substitutions = stats.substitutions;
  rec.extra = {{"gates", static_cast<double>(blk.num_logic_gates())}};
  rec.phases = std::move(phases);
  reporter().add(rec);
}

void BM_MontgomeryTotal(benchmark::State& state) {
  // Full hierarchical flow: all four blocks + word-level composition, and the
  // final check that the composed polynomial is A·B.
  PerField& pf = cached(static_cast<unsigned>(state.range(0)));
  gfa::ExtractionOptions options;
  options.shared_lift = &pf.lift;
  bool is_ab = false;
  double wall_ms = 0;
  std::vector<std::pair<std::string, double>> phases;
  for (auto _ : state) {
    gfa::obs::Tracer::instance().clear();
    const auto t0 = std::chrono::steady_clock::now();
    const gfa::HierarchicalAbstraction ha =
        abstract_montgomery(pf.hierarchy, pf.field, options);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    phases = gfa::bench::drain_phase_times();
    const gfa::MPoly ab =
        gfa::MPoly::variable(&pf.field, ha.composed.pool.id("A")) *
        gfa::MPoly::variable(&pf.field, ha.composed.pool.id("B"));
    is_ab = ha.composed.g == ab;
    benchmark::DoNotOptimize(is_ab);
  }
  if (!is_ab) state.SkipWithError("composed polynomial is not A*B");
  const std::size_t total_gates =
      pf.hierarchy.blk_a.num_logic_gates() + pf.hierarchy.blk_b.num_logic_gates() +
      pf.hierarchy.blk_mid.num_logic_gates() +
      pf.hierarchy.blk_out.num_logic_gates();
  state.counters["gates"] = static_cast<double>(total_gates);
  gfa::bench::BenchRecord rec;
  rec.name = "Table2/TotalHierarchical";
  rec.k = static_cast<unsigned>(state.range(0));
  rec.wall_ms = wall_ms;
  rec.extra = {{"gates", static_cast<double>(total_gates)}};
  rec.phases = std::move(phases);
  reporter().add(rec);
}

}  // namespace

int main(int argc, char** argv) {
  // Record per-phase times (rato_sort / reduction_chain / case2_lift / ...)
  // into BENCH_table2_montgomery.json alongside the wall totals.
  gfa::obs::set_trace_enabled(true);
  benchmark::AddCustomContext("table", "Paper Table 2: Montgomery blocks");
  benchmark::AddCustomContext(
      "paper_reference",
      "k=163 total 636s (BlkA 144 / BlkB 137 / BlkMid 264 / BlkOut 91); "
      "k=571 total 87458s. Block gate shape: Mid >> A = B > Out");
  // k=233 joined the default ladder along with the sharded reduction chain;
  // GFA_BENCH_MAX_K still trims it for CI.
  const std::vector<unsigned> sizes = gfa::bench::ladder({16, 32, 64, 96, 128}, 233);
  for (unsigned k : sizes) {
    for (int b = 0; b < 4; ++b) {
      benchmark::RegisterBenchmark(
          (std::string("Table2/") + kBlockNames[b]).c_str(), BM_MontgomeryBlock)
          ->Args({static_cast<int>(k), b})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->MeasureProcessCPUTime();
    }
    benchmark::RegisterBenchmark("Table2/TotalHierarchical", BM_MontgomeryTotal)
        ->Args({static_cast<int>(k), 0})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Scaling section on the largest block (Blk Mid carries the paper's
  // dominant share of the chain), with the cross-width determinism check.
  if (!sizes.empty()) {
    PerField& pf = cached(sizes.back());
    gfa::ExtractionOptions options;
    options.shared_lift = &pf.lift;
    gfa::bench::add_scaling_records(reporter(), "Table2/ScalingReductionChain",
                                    pf.field, pf.hierarchy.blk_mid, options);
  }
  reporter().write();
  return 0;
}
