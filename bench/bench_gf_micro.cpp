// Microbenchmarks of the F_{2^k} substrate: field multiplication, squaring,
// inversion and GF(2)[x] products across the NIST sizes. Not a paper table;
// these calibrate the constant factors underlying Tables 1 and 2 (every
// abstraction coefficient operation is one of these).
//
// Besides the google-benchmark registrations, main() measures the tiered
// kernels (gf/gf2k_kernels.h) against the generic schoolbook-multiply +
// long-division path and writes the per-k speedups to BENCH_gf_micro.json —
// the recorded evidence that the fast path actually is one.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "gf/gf2k.h"
#include "gf/gf2k_kernels.h"
#include "bench_util.h"

namespace {

gfa::Gf2Poly pseudo_elem(const gfa::Gf2k& field, std::uint64_t seed) {
  gfa::Gf2Poly p;
  std::uint64_t s = seed;
  for (unsigned i = 0; i < field.k(); ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    if (s >> 63) p.set_coeff(i, true);
  }
  if (p.is_zero()) p = field.one();
  return p;
}

void BM_FieldMul(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  auto a = pseudo_elem(field, 1), b = pseudo_elem(field, 2);
  for (auto _ : state) {
    a = field.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}

void BM_FieldMulGeneric(benchmark::State& state) {
  // The pre-kernel path: schoolbook carry-less multiply + long division.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  auto a = pseudo_elem(field, 1), b = pseudo_elem(field, 2);
  for (auto _ : state) {
    a = gfa::Gf2Poly::mulmod(a, b, field.modulus());
    benchmark::DoNotOptimize(a);
  }
}

void BM_FieldSquare(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  auto a = pseudo_elem(field, 3);
  for (auto _ : state) {
    a = field.square(a);
    benchmark::DoNotOptimize(a);
  }
}

void BM_FieldInv(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  auto a = pseudo_elem(field, 4);
  for (auto _ : state) {
    a = field.inv(a);
    benchmark::DoNotOptimize(a);
    if (a.is_zero()) a = field.alpha();
  }
}

void BM_FieldPowQ(benchmark::State& state) {
  // a^q (k squarings): the Frobenius ladder cost in the word lift.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const auto a = pseudo_elem(field, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.pow(a, field.order()));
  }
}

void BM_Gf2PolyMul(benchmark::State& state) {
  const unsigned deg = static_cast<unsigned>(state.range(0));
  gfa::Gf2Poly a, b;
  for (unsigned i = 0; i <= deg; i += 3) a.set_coeff(i, true);
  for (unsigned i = 1; i <= deg; i += 2) b.set_coeff(i, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}

/// ns/op of `op`, run in batches until >= 20 ms have elapsed.
template <typename Fn>
double measure_ns(const Fn& op) {
  const auto start = std::chrono::steady_clock::now();
  long iters = 0;
  double elapsed = 0;
  do {
    for (int i = 0; i < 512; ++i) op();
    iters += 512;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < 0.02);
  return elapsed * 1e9 / static_cast<double>(iters);
}

/// Kernel-vs-generic speedups per op and field size -> BENCH_gf_micro.json.
void write_speedup_report() {
  gfa::bench::JsonReporter reporter("gf_micro");
  for (unsigned k : gfa::bench::ladder({16, 32, 64}, 571)) {
    const gfa::Gf2k field = gfa::Gf2k::make(k);
    gfa::Gf2Poly a = pseudo_elem(field, 1);
    const gfa::Gf2Poly b = pseudo_elem(field, 2);

    const double mul_fast = measure_ns([&] { a = field.mul(a, b); });
    a = pseudo_elem(field, 1);
    const double mul_generic =
        measure_ns([&] { a = gfa::Gf2Poly::mulmod(a, b, field.modulus()); });
    const double sq_fast = measure_ns([&] { a = field.square(a); });
    a = pseudo_elem(field, 1);
    const double sq_generic =
        measure_ns([&] { a = a.squared().mod(field.modulus()); });

    gfa::bench::BenchRecord mul_rec;
    mul_rec.name = "mul";
    mul_rec.k = k;
    mul_rec.wall_ms = mul_fast * 1e-6;
    mul_rec.extra = {{"fast_ns", mul_fast},
                     {"generic_ns", mul_generic},
                     {"speedup", mul_generic / mul_fast}};
    reporter.add(mul_rec);

    gfa::bench::BenchRecord sq_rec;
    sq_rec.name = "square";
    sq_rec.k = k;
    sq_rec.wall_ms = sq_fast * 1e-6;
    sq_rec.extra = {{"fast_ns", sq_fast},
                    {"generic_ns", sq_generic},
                    {"speedup", sq_generic / sq_fast}};
    reporter.add(sq_rec);

    std::printf("k=%-4u tier=%-11s mul %8.1f ns (generic %9.1f ns, %5.1fx)  "
                "square %8.1f ns (generic %9.1f ns, %5.1fx)\n",
                k, gfa::to_string(field.kernel_tier()), mul_fast, mul_generic,
                mul_generic / mul_fast, sq_fast, sq_generic,
                sq_generic / sq_fast);
  }
  reporter.write();
  std::printf("wrote %s\n", "BENCH_gf_micro.json");
}

}  // namespace

BENCHMARK(BM_FieldMul)->Arg(16)->Arg(64)->Arg(163)->Arg(233)->Arg(409)->Arg(571);
BENCHMARK(BM_FieldMulGeneric)->Arg(16)->Arg(64)->Arg(163)->Arg(233)->Arg(409)->Arg(571);
BENCHMARK(BM_FieldSquare)->Arg(64)->Arg(163)->Arg(233)->Arg(409)->Arg(571);
BENCHMARK(BM_FieldInv)->Arg(64)->Arg(163)->Arg(233)->Arg(571);
BENCHMARK(BM_FieldPowQ)->Arg(64)->Arg(163)->Arg(233);
BENCHMARK(BM_Gf2PolyMul)->Arg(63)->Arg(163)->Arg(571)->Arg(2048);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  write_speedup_report();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
