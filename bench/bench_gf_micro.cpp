// Microbenchmarks of the F_{2^k} substrate: field multiplication, squaring,
// inversion and GF(2)[x] products across the NIST sizes. Not a paper table;
// these calibrate the constant factors underlying Tables 1 and 2 (every
// abstraction coefficient operation is one of these).

#include <benchmark/benchmark.h>

#include "gf/gf2k.h"

namespace {

gfa::Gf2Poly pseudo_elem(const gfa::Gf2k& field, std::uint64_t seed) {
  gfa::Gf2Poly p;
  std::uint64_t s = seed;
  for (unsigned i = 0; i < field.k(); ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    if (s >> 63) p.set_coeff(i, true);
  }
  if (p.is_zero()) p = field.one();
  return p;
}

void BM_FieldMul(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  auto a = pseudo_elem(field, 1), b = pseudo_elem(field, 2);
  for (auto _ : state) {
    a = field.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}

void BM_FieldSquare(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  auto a = pseudo_elem(field, 3);
  for (auto _ : state) {
    a = field.square(a);
    benchmark::DoNotOptimize(a);
  }
}

void BM_FieldInv(benchmark::State& state) {
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  auto a = pseudo_elem(field, 4);
  for (auto _ : state) {
    a = field.inv(a);
    benchmark::DoNotOptimize(a);
    if (a.is_zero()) a = field.alpha();
  }
}

void BM_FieldPowQ(benchmark::State& state) {
  // a^q (k squarings): the Frobenius ladder cost in the word lift.
  const gfa::Gf2k field = gfa::Gf2k::make(static_cast<unsigned>(state.range(0)));
  const auto a = pseudo_elem(field, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.pow(a, field.order()));
  }
}

void BM_Gf2PolyMul(benchmark::State& state) {
  const unsigned deg = static_cast<unsigned>(state.range(0));
  gfa::Gf2Poly a, b;
  for (unsigned i = 0; i <= deg; i += 3) a.set_coeff(i, true);
  for (unsigned i = 1; i <= deg; i += 2) b.set_coeff(i, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}

}  // namespace

BENCHMARK(BM_FieldMul)->Arg(64)->Arg(163)->Arg(233)->Arg(409)->Arg(571);
BENCHMARK(BM_FieldSquare)->Arg(64)->Arg(163)->Arg(233)->Arg(409)->Arg(571);
BENCHMARK(BM_FieldInv)->Arg(64)->Arg(163)->Arg(233)->Arg(571);
BENCHMARK(BM_FieldPowQ)->Arg(64)->Arg(163)->Arg(233);
BENCHMARK(BM_Gf2PolyMul)->Arg(63)->Arg(163)->Arg(571)->Arg(2048);

BENCHMARK_MAIN();
