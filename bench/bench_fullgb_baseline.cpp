// Paper §6, second implicit table: "a full Gröbner basis of J + J_0 with an
// elimination order (SINGULAR slimgb) is infeasible beyond 32-bit circuits."
//
// For each k, drives the "full-gb" registry engine — unguided Buchberger on
// the whole circuit ideal plus vanishing polynomials for *both* circuits —
// under a reduction budget standing in for the memory explosion (running dry
// is verdict=unknown), next to the RATO-guided "abstraction" engine on the
// *same* instance, which is instantaneous. The contrast is the paper's
// motivation for §5.

#include <benchmark/benchmark.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "bench_util.h"

namespace {

constexpr std::size_t kReductionBudget = 20000;

double stat(const gfa::engine::EngineRun& run, const char* key) {
  const auto it = run.stats.find(key);
  return it == run.stats.end() ? 0.0 : it->second;
}

void BM_FullGroebner(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist spec = make_mastrovito_multiplier(field);
  const gfa::Netlist impl = make_montgomery_multiplier_flat(field);
  const gfa::engine::EquivEngine* engine =
      gfa::engine::EngineRegistry::global().find("full-gb");

  gfa::engine::EngineRun run;
  for (auto _ : state) {
    gfa::engine::RunOptions options;
    options.gb_max_reductions = kReductionBudget;
    run = gfa::engine::run_engine(*engine, spec, impl, field, options);
    benchmark::DoNotOptimize(run.wall_ms);
  }
  if (!run.status.ok())
    state.SkipWithError(run.status.to_string().c_str());
  else if (run.verdict == gfa::engine::Verdict::kNotEquivalent)
    state.SkipWithError("full GB: circuits differ (generator bug)");
  state.counters["completed"] =
      run.status.ok() && run.verdict != gfa::engine::Verdict::kUnknown ? 1 : 0;
  state.counters["spoly_reductions"] =
      stat(run, "spec_reductions") + stat(run, "impl_reductions");
  state.counters["spec_basis_size"] = stat(run, "spec_basis_size");
  state.counters["impl_basis_size"] = stat(run, "impl_basis_size");
}

void BM_GuidedExtraction(benchmark::State& state) {
  // The same instance through the §5 guided flow, for contrast.
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist spec = make_mastrovito_multiplier(field);
  const gfa::Netlist impl = make_montgomery_multiplier_flat(field);
  const gfa::engine::EquivEngine* engine =
      gfa::engine::EngineRegistry::global().find("abstraction");

  gfa::engine::EngineRun run;
  for (auto _ : state) {
    run = gfa::engine::run_engine(*engine, spec, impl, field,
                                  gfa::engine::RunOptions{});
    benchmark::DoNotOptimize(run.wall_ms);
  }
  if (!run.status.ok())
    state.SkipWithError(run.status.to_string().c_str());
  else if (run.verdict != gfa::engine::Verdict::kEquivalent)
    state.SkipWithError("abstraction: circuits differ (generator bug)");
  state.counters["completed"] = 1;
  state.counters["substitutions"] =
      stat(run, "spec_substitutions") + stat(run, "impl_substitutions");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §6 baseline: full GB with elimination order (slimgb)");
  benchmark::AddCustomContext(
      "paper_reference",
      "SINGULAR slimgb: memory explosion beyond 32-bit circuits; "
      "completed=0 marks the budget analogue of that explosion");
  for (unsigned k : gfa::bench::ladder({2, 3, 4, 5}, 5)) {
    benchmark::RegisterBenchmark("FullGb/Buchberger", BM_FullGroebner)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
    benchmark::RegisterBenchmark("FullGb/GuidedForContrast", BM_GuidedExtraction)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
