// Paper §6, second implicit table: "a full Gröbner basis of J + J_0 with an
// elimination order (SINGULAR slimgb) is infeasible beyond 32-bit circuits."
//
// For each k, runs unguided Buchberger on the whole circuit ideal plus
// vanishing polynomials under the abstraction order, with a reduction budget
// standing in for the memory explosion — next to the RATO-guided extraction
// of the *same* circuit, which is instantaneous. The contrast is the paper's
// motivation for §5.

#include <benchmark/benchmark.h>

#include "abstraction/extractor.h"
#include "baselines/full_gb.h"
#include "circuit/mastrovito.h"
#include "bench_util.h"

namespace {

constexpr std::size_t kReductionBudget = 20000;

void BM_FullGroebner(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = make_mastrovito_multiplier(field);
  gfa::BuchbergerOptions options;
  options.max_reductions = kReductionBudget;

  bool completed = false, found = false;
  std::size_t reductions = 0, max_terms = 0;
  for (auto _ : state) {
    const gfa::FullGbResult res =
        abstract_by_full_groebner(netlist, field, options);
    completed = res.completed;
    found = res.found;
    reductions = res.reductions;
    max_terms = res.max_terms_seen;
    benchmark::DoNotOptimize(res.basis_size);
  }
  state.counters["completed"] = completed ? 1 : 0;
  state.counters["found_Z_poly"] = found ? 1 : 0;
  state.counters["spoly_reductions"] = static_cast<double>(reductions);
  state.counters["max_terms"] = static_cast<double>(max_terms);
}

void BM_GuidedExtraction(benchmark::State& state) {
  // The same circuit through the §5 guided reduction, for contrast.
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = make_mastrovito_multiplier(field);
  for (auto _ : state) {
    const gfa::WordFunction fn = gfa::extract_word_function(netlist, field);
    benchmark::DoNotOptimize(fn.g.num_terms());
  }
  state.counters["completed"] = 1;
  state.counters["found_Z_poly"] = 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §6 baseline: full GB with elimination order (slimgb)");
  benchmark::AddCustomContext(
      "paper_reference",
      "SINGULAR slimgb: memory explosion beyond 32-bit circuits; "
      "completed=0 marks the budget analogue of that explosion");
  for (unsigned k : gfa::bench::ladder({2, 3, 4, 5}, 5)) {
    benchmark::RegisterBenchmark("FullGb/Buchberger", BM_FullGroebner)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
    benchmark::RegisterBenchmark("FullGb/GuidedForContrast", BM_GuidedExtraction)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
