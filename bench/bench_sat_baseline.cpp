// Paper §6, first implicit table: "AIG/SAT miter methods cannot prove
// equivalence beyond 16-bit multipliers within 24 hours."
//
// For each k, drives the "sat" and "fraig" registry engines on the
// Mastrovito-vs-Montgomery instance with a conflict budget (the 24-hour
// stand-in). The expected shape is an exponential wall within the first few
// sizes — contrast with the abstraction benches, which walk the same
// circuits to k = 163+. Counters: proved (1 = UNSAT within budget),
// conflicts, clauses.

#include <benchmark/benchmark.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "bench_util.h"

namespace {

constexpr std::uint64_t kConflictBudget = 200000;

double stat(const gfa::engine::EngineRun& run, const char* key) {
  const auto it = run.stats.find(key);
  return it == run.stats.end() ? 0.0 : it->second;
}

void BM_SatMiterEquivalence(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist spec = make_mastrovito_multiplier(field);
  const gfa::Netlist impl = make_montgomery_multiplier_flat(field);
  const gfa::engine::EquivEngine* engine =
      gfa::engine::EngineRegistry::global().find("sat");

  gfa::engine::EngineRun run;
  for (auto _ : state) {
    gfa::engine::RunOptions options;
    options.sat_conflict_limit = kConflictBudget;
    run = gfa::engine::run_engine(*engine, spec, impl, field, options);
    benchmark::DoNotOptimize(run.wall_ms);
  }
  if (!run.status.ok())
    state.SkipWithError(run.status.to_string().c_str());
  else if (run.verdict == gfa::engine::Verdict::kNotEquivalent)
    state.SkipWithError("miter SAT: circuits differ (generator bug)");
  state.counters["proved"] =
      run.verdict == gfa::engine::Verdict::kEquivalent ? 1 : 0;
  state.counters["conflicts"] = stat(run, "conflicts");
  state.counters["clauses"] = stat(run, "clauses");
}

void BM_FraigMiterEquivalence(benchmark::State& state) {
  // The ABC-style flow: structural hashing + simulation-guided fraiging
  // before the final SAT query. On these structurally dissimilar circuits it
  // finds almost no internal equivalences, so the wall stays (paper §2/§6).
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist spec = make_mastrovito_multiplier(field);
  const gfa::Netlist impl = make_montgomery_multiplier_flat(field);
  const gfa::engine::EquivEngine* engine =
      gfa::engine::EngineRegistry::global().find("fraig");

  gfa::engine::EngineRun run;
  for (auto _ : state) {
    gfa::engine::RunOptions options;
    options.sat_conflict_limit = kConflictBudget;
    run = gfa::engine::run_engine(*engine, spec, impl, field, options);
    benchmark::DoNotOptimize(run.wall_ms);
  }
  if (!run.status.ok())
    state.SkipWithError(run.status.to_string().c_str());
  else if (run.verdict == gfa::engine::Verdict::kNotEquivalent)
    state.SkipWithError("fraig: circuits differ (generator bug)");
  state.counters["proved"] =
      run.verdict == gfa::engine::Verdict::kEquivalent ? 1 : 0;
  state.counters["merges"] = stat(run, "merges");
  state.counters["sat_calls"] = stat(run, "sat_calls");
  state.counters["final_conflicts"] = stat(run, "final_conflicts");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §6 baseline: SAT miter equivalence (ABC/CSAT analogue)");
  benchmark::AddCustomContext(
      "paper_reference",
      "ABC and CSAT time out (24h) beyond 16-bit multipliers; proved=0 here "
      "marks the conflict-budget analogue of that timeout");
  for (unsigned k : gfa::bench::ladder({2, 3, 4, 5, 6, 7, 8}, 8)) {
    benchmark::RegisterBenchmark("SatBaseline/Miter", BM_SatMiterEquivalence)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
    benchmark::RegisterBenchmark("SatBaseline/Fraig", BM_FraigMiterEquivalence)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
