// Paper §6, first implicit table: "AIG/SAT miter methods cannot prove
// equivalence beyond 16-bit multipliers within 24 hours."
//
// For each k, builds the Mastrovito-vs-Montgomery miter, Tseitin-encodes it,
// and runs the CDCL solver with a conflict budget (the 24-hour stand-in).
// The expected shape is an exponential wall within the first few sizes —
// contrast with the abstraction benches, which walk the same circuits to
// k = 163+. Counters: proved (1 = UNSAT within budget), conflicts, clauses.

#include <benchmark/benchmark.h>

#include "baselines/aig/aig.h"
#include "baselines/miter.h"
#include "baselines/sat/solver.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "bench_util.h"

namespace {

constexpr std::uint64_t kConflictBudget = 200000;

void BM_SatMiterEquivalence(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist miter = make_miter(make_mastrovito_multiplier(field),
                                        make_montgomery_multiplier_flat(field));
  const gfa::Cnf cnf = tseitin_encode(miter, miter.outputs()[0]);

  gfa::sat::Result result = gfa::sat::Result::kUnknown;
  std::uint64_t conflicts = 0;
  for (auto _ : state) {
    gfa::sat::Solver solver;
    for (const auto& clause : cnf.clauses) solver.add_clause(clause);
    result = solver.solve(kConflictBudget);
    conflicts = solver.stats().conflicts;
    benchmark::DoNotOptimize(result);
  }
  if (result == gfa::sat::Result::kSat)
    state.SkipWithError("miter SAT: circuits differ (generator bug)");
  state.counters["proved"] = result == gfa::sat::Result::kUnsat ? 1 : 0;
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["clauses"] = static_cast<double>(cnf.clauses.size());
}

void BM_FraigMiterEquivalence(benchmark::State& state) {
  // The ABC-style flow: structural hashing + simulation-guided fraiging
  // before the final SAT query. On these structurally dissimilar circuits it
  // finds almost no internal equivalences, so the wall stays (paper §2/§6).
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist spec = make_mastrovito_multiplier(field);
  const gfa::Netlist impl = make_montgomery_multiplier_flat(field);

  gfa::aig::FraigOptions options;
  options.final_conflicts = kConflictBudget;
  gfa::aig::FraigResult res;
  for (auto _ : state) {
    res = gfa::aig::fraig_equivalence_check(spec, impl, options);
    benchmark::DoNotOptimize(res.status);
  }
  if (res.status == gfa::aig::FraigResult::Status::kNotEquivalent)
    state.SkipWithError("fraig: circuits differ (generator bug)");
  state.counters["proved"] =
      res.status == gfa::aig::FraigResult::Status::kEquivalent ? 1 : 0;
  state.counters["merges"] = static_cast<double>(res.merges);
  state.counters["sat_calls"] = static_cast<double>(res.sat_calls);
  state.counters["final_conflicts"] = static_cast<double>(res.final_conflicts);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §6 baseline: SAT miter equivalence (ABC/CSAT analogue)");
  benchmark::AddCustomContext(
      "paper_reference",
      "ABC and CSAT time out (24h) beyond 16-bit multipliers; proved=0 here "
      "marks the conflict-budget analogue of that timeout");
  for (unsigned k : gfa::bench::ladder({2, 3, 4, 5, 6, 7, 8}, 8)) {
    benchmark::RegisterBenchmark("SatBaseline/Miter", BM_SatMiterEquivalence)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
    benchmark::RegisterBenchmark("SatBaseline/Fraig", BM_FraigMiterEquivalence)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
