// Paper §2 related-work shape: canonical DAG representations (ROBDDs; the
// paper also cites MODDs as "infeasible beyond 32-bit vectors") blow up on
// multiplier functions.
//
// Drives the "bdd" registry engine on the Mastrovito-vs-Montgomery instance
// for growing k under a node budget, reporting the node counts of the miter
// BDD — the classic exponential multiplier series — and whether the budget
// was exhausted (kResourceExhausted, the memory-explosion stand-in).

#include <benchmark/benchmark.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "bench_util.h"

namespace {

constexpr std::size_t kNodeBudget = 4000000;

double stat(const gfa::engine::EngineRun& run, const char* key) {
  const auto it = run.stats.find(key);
  return it == run.stats.end() ? 0.0 : it->second;
}

void BM_BddMultiplier(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist spec = make_mastrovito_multiplier(field);
  const gfa::Netlist impl = make_montgomery_multiplier_flat(field);
  const gfa::engine::EquivEngine* engine =
      gfa::engine::EngineRegistry::global().find("bdd");

  gfa::engine::EngineRun run;
  for (auto _ : state) {
    gfa::engine::RunOptions options;
    options.bdd_node_limit = kNodeBudget;
    run = gfa::engine::run_engine(*engine, spec, impl, field, options);
    benchmark::DoNotOptimize(run.wall_ms);
  }
  const bool exploded =
      run.status.code() == gfa::StatusCode::kResourceExhausted;
  if (!run.status.ok() && !exploded)
    state.SkipWithError(run.status.to_string().c_str());
  else if (run.status.ok() &&
           run.verdict == gfa::engine::Verdict::kNotEquivalent)
    state.SkipWithError("miter BDD nonzero: circuits differ (generator bug)");
  state.counters["proved"] =
      run.status.ok() && run.verdict == gfa::engine::Verdict::kEquivalent ? 1
                                                                          : 0;
  state.counters["exploded"] = exploded ? 1 : 0;
  state.counters["miter_nodes"] = stat(run, "miter_nodes");
  state.counters["total_nodes"] = stat(run, "nodes");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §2 related-work shape: BDD node growth on multipliers");
  benchmark::AddCustomContext(
      "paper_reference",
      "canonical DAGs explode on multipliers (MODDs infeasible > 32-bit); "
      "expect super-exponential node growth and a budget trip "
      "(exploded=1, the kResourceExhausted analogue of memory-out)");
  for (unsigned k : gfa::bench::ladder({4, 6, 8, 10, 12, 14, 16}, 16)) {
    benchmark::RegisterBenchmark("BddBaseline/Miter", BM_BddMultiplier)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
