// Paper §2 related-work shape: canonical DAG representations (ROBDDs; the
// paper also cites MODDs as "infeasible beyond 32-bit vectors") blow up on
// multiplier functions.
//
// Builds the BDDs of the Mastrovito multiplier's output bits for growing k
// under a node budget, reporting the node count of the most significant
// output bit — the classic exponential multiplier series — and whether the
// budget was exhausted (the memory-explosion stand-in).

#include <benchmark/benchmark.h>

#include "baselines/bdd/bdd.h"
#include "circuit/mastrovito.h"
#include "bench_util.h"

namespace {

constexpr std::size_t kNodeBudget = 4000000;

void BM_BddMultiplier(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = make_mastrovito_multiplier(field);

  std::size_t top_bit_nodes = 0, total_nodes = 0;
  bool exploded = false;
  for (auto _ : state) {
    gfa::bdd::Manager manager(kNodeBudget);
    std::vector<unsigned> vars(netlist.inputs().size());
    for (unsigned i = 0; i < vars.size(); ++i) vars[i] = i;
    try {
      const auto refs = gfa::bdd::build_netlist_bdds(manager, netlist, vars);
      top_bit_nodes =
          manager.count_nodes(refs[netlist.find_word("Z")->bits[k - 1]]);
      total_nodes = manager.num_nodes();
    } catch (const gfa::bdd::BddBudgetExceeded&) {
      exploded = true;
      total_nodes = manager.num_nodes();
    }
    benchmark::DoNotOptimize(total_nodes);
  }
  state.counters["proved"] = exploded ? 0 : 1;
  state.counters["top_bit_nodes"] = static_cast<double>(top_bit_nodes);
  state.counters["total_nodes"] = static_cast<double>(total_nodes);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §2 related-work shape: BDD node growth on multipliers");
  benchmark::AddCustomContext(
      "paper_reference",
      "canonical DAGs explode on multipliers (MODDs infeasible > 32-bit); "
      "expect super-exponential top_bit_nodes growth and a budget trip");
  for (unsigned k : gfa::bench::ladder({4, 6, 8, 10, 12, 14, 16}, 16)) {
    benchmark::RegisterBenchmark("BddBaseline/Mastrovito", BM_BddMultiplier)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
