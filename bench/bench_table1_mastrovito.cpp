// Paper Table 1: "Abstraction of Mastrovito multipliers."
//
// For each field size k, generates the flattened Mastrovito multiplier and
// measures the time to derive its canonical word-level polynomial Z = A·B by
// the RATO-guided reduction. Counters report the gate count (the paper's
// "# of Gates" column) and the intermediate/remainder term counts (our memory
// proxy; the paper reports Max Mem).
//
// Paper reference (Intel Xeon, 2014): k=163: 153K gates, 4351 s; k=233: 167K,
// 5777 s; k=283: 399K, 40114 s; k=409: 508K, 72708 s; k=571: 1.6M, timeout.
// Expected shape here: superlinear but tractable growth through k=163+ —
// the method scales where SAT/BDD/full-GB baselines die (see other benches).

#include <benchmark/benchmark.h>

#include <chrono>

#include "abstraction/extractor.h"
#include "abstraction/word_lift.h"
#include "circuit/mastrovito.h"
#include "obs/trace.h"
#include "bench_util.h"

namespace {

gfa::bench::JsonReporter& reporter() {
  static gfa::bench::JsonReporter r("table1_mastrovito");
  return r;
}

void BM_MastrovitoAbstraction(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = make_mastrovito_multiplier(field);
  const gfa::WordLift lift(&field);
  gfa::ExtractionOptions options;
  options.shared_lift = &lift;

  gfa::ExtractionStats stats;
  double wall_ms = 0;
  bool is_ab = false;
  std::vector<std::pair<std::string, double>> phases;
  for (auto _ : state) {
    gfa::obs::Tracer::instance().clear();
    const auto t0 = std::chrono::steady_clock::now();
    const gfa::WordFunction fn =
        gfa::extract_word_function(netlist, field, options);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    stats = fn.stats;
    phases = gfa::bench::drain_phase_times();
    // Sanity: polynomial must be exactly A·B.
    const gfa::MPoly ab = gfa::MPoly::variable(&field, fn.pool.id("A")) *
                          gfa::MPoly::variable(&field, fn.pool.id("B"));
    is_ab = fn.g == ab;
    benchmark::DoNotOptimize(is_ab);
  }
  if (!is_ab) state.SkipWithError("extracted polynomial is not A*B");
  state.counters["gates"] = static_cast<double>(netlist.num_logic_gates());
  state.counters["peak_terms"] = static_cast<double>(stats.peak_terms);
  state.counters["remainder_terms"] = static_cast<double>(stats.remainder_terms);
  gfa::bench::BenchRecord rec;
  rec.name = "Table1/Mastrovito";
  rec.k = k;
  rec.wall_ms = wall_ms;
  rec.peak_terms = stats.peak_terms;
  rec.substitutions = stats.substitutions;
  rec.extra = {{"gates", static_cast<double>(netlist.num_logic_gates())}};
  rec.phases = std::move(phases);
  reporter().add(rec);
}

}  // namespace

int main(int argc, char** argv) {
  // Record per-phase times (rato_sort / reduction_chain / case2_lift / ...)
  // into BENCH_table1_mastrovito.json alongside the wall totals.
  gfa::obs::set_trace_enabled(true);
  benchmark::AddCustomContext("table", "Paper Table 1: Mastrovito abstraction");
  benchmark::AddCustomContext(
      "paper_reference",
      "k=163:4351s/153K gates, k=233:5777s/167K, k=283:40114s/399K, "
      "k=409:72708s/508K, k=571:TO/1.6M (24h limit, 2014 Xeon)");
  // The sharded reduction chain promoted k=233 from opt-in to the default
  // ladder (ROADMAP item 2); GFA_BENCH_MAX_K still trims it for CI.
  const std::vector<unsigned> sizes = gfa::bench::ladder({16, 32, 64, 96, 128}, 233);
  for (unsigned k : sizes) {
    benchmark::RegisterBenchmark("Table1/Mastrovito", BM_MastrovitoAbstraction)
        ->Arg(static_cast<int>(k))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Scaling section: reduction-chain time vs pool width at the ladder's top
  // k, with the cross-width determinism check.
  if (!sizes.empty()) {
    const unsigned k = sizes.back();
    const gfa::Gf2k field = gfa::Gf2k::make(k);
    const gfa::Netlist netlist = make_mastrovito_multiplier(field);
    const gfa::WordLift lift(&field);
    gfa::ExtractionOptions options;
    options.shared_lift = &lift;
    gfa::bench::add_scaling_records(reporter(), "Table1/ScalingReductionChain",
                                    field, netlist, options);
  }
  reporter().write();
  return 0;
}
