// Paper §6, third implicit comparison: the Lv et al. [5] ideal-membership
// method (spec polynomial given, verify by division) versus our abstraction
// (spec *derived*). The paper reports [5] scaling to 163-bit and failing
// beyond, while abstraction reaches 571-bit hierarchically.
//
// Both registry engines ("ideal-membership" and "abstraction") run over the
// same Mastrovito and flattened Montgomery circuits, verified against
// themselves — the correct-circuit series of the paper's tables. The
// interesting series are the peak term counts (memory shape) and times as k
// grows, plus the qualitative point that ideal membership answers only
// yes/no against a *given* spec while abstraction returns the polynomial.

#include <benchmark/benchmark.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "bench_util.h"

namespace {

double stat(const gfa::engine::EngineRun& run, const char* key) {
  const auto it = run.stats.find(key);
  return it == run.stats.end() ? 0.0 : it->second;
}

gfa::Netlist make_circuit(const gfa::Gf2k& field, bool montgomery) {
  return montgomery ? make_montgomery_multiplier_flat(field)
                    : make_mastrovito_multiplier(field);
}

void BM_IdealMembership(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const bool montgomery = state.range(1) != 0;
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = make_circuit(field, montgomery);
  const gfa::engine::EquivEngine* engine =
      gfa::engine::EngineRegistry::global().find("ideal-membership");

  gfa::engine::EngineRun run;
  for (auto _ : state) {
    run = gfa::engine::run_engine(*engine, netlist, netlist, field,
                                  gfa::engine::RunOptions{});
    benchmark::DoNotOptimize(run.wall_ms);
  }
  if (!run.status.ok())
    state.SkipWithError(run.status.to_string().c_str());
  else if (run.verdict != gfa::engine::Verdict::kEquivalent)
    state.SkipWithError("ideal membership failed on correct circuit");
  state.counters["gates"] = static_cast<double>(netlist.num_logic_gates());
  state.counters["peak_terms"] = stat(run, "peak_terms");
}

void BM_Abstraction(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const bool montgomery = state.range(1) != 0;
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = make_circuit(field, montgomery);
  const gfa::engine::EquivEngine* engine =
      gfa::engine::EngineRegistry::global().find("abstraction");

  gfa::engine::EngineRun run;
  for (auto _ : state) {
    run = gfa::engine::run_engine(*engine, netlist, netlist, field,
                                  gfa::engine::RunOptions{});
    benchmark::DoNotOptimize(run.wall_ms);
  }
  if (!run.status.ok())
    state.SkipWithError(run.status.to_string().c_str());
  else if (run.verdict != gfa::engine::Verdict::kEquivalent)
    state.SkipWithError("abstraction failed on correct circuit");
  state.counters["gates"] = static_cast<double>(netlist.num_logic_gates());
  state.counters["peak_terms"] = stat(run, "spec_peak_terms");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §6 comparison: Lv et al. [5] ideal membership vs "
               "word-level abstraction");
  benchmark::AddCustomContext(
      "paper_reference",
      "[5] verifies up to 163-bit then hits memory explosion; abstraction "
      "reaches 571-bit with hierarchy. Note [5] needs the spec given.");
  for (unsigned k : gfa::bench::ladder({16, 32, 64, 128}, 128)) {
    for (int montgomery = 0; montgomery <= 1; ++montgomery) {
      const char* arch = montgomery ? "Montgomery" : "Mastrovito";
      benchmark::RegisterBenchmark(
          (std::string("IdealMembership/") + arch).c_str(), BM_IdealMembership)
          ->Args({static_cast<int>(k), montgomery})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->MeasureProcessCPUTime();
      benchmark::RegisterBenchmark(
          (std::string("Abstraction/") + arch).c_str(), BM_Abstraction)
          ->Args({static_cast<int>(k), montgomery})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->MeasureProcessCPUTime();
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
