// Paper §6, third implicit comparison: the Lv et al. [5] ideal-membership
// method (spec polynomial given, verify by division) versus our abstraction
// (spec *derived*). The paper reports [5] scaling to 163-bit and failing
// beyond, while abstraction reaches 571-bit hierarchically.
//
// Both methods here run over the same Mastrovito and flattened Montgomery
// circuits; the interesting series are the peak term counts (memory shape)
// and times as k grows, plus the qualitative point that ideal membership
// answers only yes/no against a *given* spec while abstraction returns the
// polynomial itself.

#include <benchmark/benchmark.h>

#include "abstraction/extractor.h"
#include "abstraction/word_lift.h"
#include "baselines/ideal_membership.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "bench_util.h"

namespace {

void BM_IdealMembership(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const bool montgomery = state.range(1) != 0;
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = montgomery
                                   ? make_montgomery_multiplier_flat(field)
                                   : make_mastrovito_multiplier(field);
  bool member = false;
  std::size_t peak = 0;
  for (auto _ : state) {
    const auto res = verify_multiplier_by_ideal_membership(netlist, field);
    member = res.is_member;
    peak = res.peak_terms;
    benchmark::DoNotOptimize(res.residual_terms);
  }
  if (!member) state.SkipWithError("ideal membership failed on correct circuit");
  state.counters["gates"] = static_cast<double>(netlist.num_logic_gates());
  state.counters["peak_terms"] = static_cast<double>(peak);
}

void BM_Abstraction(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const bool montgomery = state.range(1) != 0;
  const gfa::Gf2k field = gfa::Gf2k::make(k);
  const gfa::Netlist netlist = montgomery
                                   ? make_montgomery_multiplier_flat(field)
                                   : make_mastrovito_multiplier(field);
  const gfa::WordLift lift(&field);
  gfa::ExtractionOptions options;
  options.shared_lift = &lift;
  std::size_t peak = 0;
  for (auto _ : state) {
    const gfa::WordFunction fn =
        gfa::extract_word_function(netlist, field, options);
    peak = fn.stats.peak_terms;
    benchmark::DoNotOptimize(fn.g.num_terms());
  }
  state.counters["gates"] = static_cast<double>(netlist.num_logic_gates());
  state.counters["peak_terms"] = static_cast<double>(peak);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "table", "Paper §6 comparison: Lv et al. [5] ideal membership vs "
               "word-level abstraction");
  benchmark::AddCustomContext(
      "paper_reference",
      "[5] verifies up to 163-bit then hits memory explosion; abstraction "
      "reaches 571-bit with hierarchy. Note [5] needs the spec given.");
  for (unsigned k : gfa::bench::ladder({16, 32, 64, 128}, 128)) {
    for (int montgomery = 0; montgomery <= 1; ++montgomery) {
      const char* arch = montgomery ? "Montgomery" : "Mastrovito";
      benchmark::RegisterBenchmark(
          (std::string("IdealMembership/") + arch).c_str(), BM_IdealMembership)
          ->Args({static_cast<int>(k), montgomery})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->MeasureProcessCPUTime();
      benchmark::RegisterBenchmark(
          (std::string("Abstraction/") + arch).c_str(), BM_Abstraction)
          ->Args({static_cast<int>(k), montgomery})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->MeasureProcessCPUTime();
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
