// Units for the observability layer (src/obs): the metrics registry's
// thread-safety under concurrent parallel_for increments, snapshot/delta
// semantics, the Chrome-trace tracer, and log-level parsing.
//
// The thread-safety tests run under the sanitizer CI job, so a data race in
// Metric::add / record_max would trip ASan/TSan-style diagnostics as well as
// the exact-sum assertions here.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "abstraction/bitpoly.h"
#include "abstraction/rewriter.h"
#include "gf/gf2k.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/parallel_for.h"

namespace gfa::obs {
namespace {

// Every test toggles the global enable flags; restore them so test order
// never matters (gtest may shuffle, and other suites assume "disabled").
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_was_ = metrics_enabled();
    trace_was_ = trace_enabled();
  }
  void TearDown() override {
    set_metrics_enabled(metrics_was_);
    set_trace_enabled(trace_was_);
    Metrics::instance().reset_all();
    Tracer::instance().clear();
  }

 private:
  bool metrics_was_ = false;
  bool trace_was_ = false;
};

TEST_F(ObsTest, CountersDisabledByDefaultCostNothingAndRecordNothing) {
  set_metrics_enabled(false);
  Metrics::instance().reset_all();
  const auto before = Metrics::instance().snapshot();
  GFA_COUNT("normal_form.calls", 7);
  GFA_GAUGE_MAX("normal_form.peak_terms", 1234);
  EXPECT_EQ(Metrics::instance().snapshot(), before);
}

TEST_F(ObsTest, CounterAddAndGaugeMaxSemantics) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  Metric& c = Metrics::instance().counter("test.counter");
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);

  Metric& g = Metrics::instance().gauge("test.gauge");
  g.record_max(10);
  g.record_max(5);   // lower: ignored
  g.record_max(25);  // higher: wins
  EXPECT_EQ(g.value(), 25u);
}

TEST_F(ObsTest, KnownMetricSchemaIsPreRegistered) {
  // The run-report contract promises the Buchberger pair counters appear
  // even for engines that never run Buchberger; that only works if the
  // schema is pre-registered rather than created on first touch.
  const auto snap = Metrics::instance().snapshot();
  for (const char* name :
       {"reduction_steps", "buchberger.pairs_generated",
        "buchberger.pairs_skipped", "buchberger.pairs_reduced",
        "extract.substitutions", "sat.conflicts", "bdd.cache_hits",
        "fraig.merges", "parallel.items"}) {
    EXPECT_TRUE(snap.count(name)) << "missing pre-registered metric " << name;
  }
}

TEST_F(ObsTest, ConcurrentIncrementsFromParallelForSumExactly) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  constexpr std::size_t kItems = 100000;
  // Each iteration adds its index to a counter and records it as a gauge
  // candidate; with relaxed atomics the total must still be exact and the
  // max must be the largest index.
  parallel_for(kItems, [](std::size_t i) {
    GFA_COUNT("test.race.counter", i);
    GFA_GAUGE_MAX("test.race.gauge", i);
  });
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2;
  EXPECT_EQ(Metrics::instance().counter("test.race.counter").value(), expected);
  EXPECT_EQ(Metrics::instance().gauge("test.race.gauge").value(), kItems - 1);
}

TEST_F(ObsTest, DeltaSubtractsCountersAndReportsGauges) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  Metrics::instance().counter("test.delta.c").add(10);
  Metrics::instance().gauge("test.delta.g").record_max(50);
  const auto base = Metrics::instance().snapshot();
  Metrics::instance().counter("test.delta.c").add(5);
  Metrics::instance().gauge("test.delta.g").record_max(80);
  const auto d = Metrics::instance().delta(base);
  EXPECT_EQ(d.at("test.delta.c"), 5u);   // counter: increment since base
  EXPECT_EQ(d.at("test.delta.g"), 80u);  // gauge: current peak
}

TEST_F(ObsTest, TraceSpanRecordsOnlyWhenEnabled) {
  Tracer::instance().clear();
  set_trace_enabled(false);
  { const TraceSpan s("invisible", "test"); }
  set_trace_enabled(true);
  { const TraceSpan s("visible", "test"); }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "visible");
  EXPECT_EQ(events[0].category, "test");
}

TEST_F(ObsTest, ChromeTraceOutputIsWellFormed) {
  Tracer::instance().clear();
  set_trace_enabled(true);
  {
    const TraceSpan outer("outer", "test");
    const TraceSpan inner("inner", "test");
  }
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  // Chrome's about:tracing format essentials.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, AggregateSumsPerPhaseName) {
  Tracer::instance().clear();
  set_trace_enabled(true);
  { const TraceSpan s("phase_a", "test"); }
  { const TraceSpan s("phase_a", "test"); }
  { const TraceSpan s("phase_b", "test"); }
  const auto totals = Tracer::instance().aggregate();
  ASSERT_TRUE(totals.count("phase_a"));
  ASSERT_TRUE(totals.count("phase_b"));
  EXPECT_EQ(totals.at("phase_a").count, 2u);
  EXPECT_EQ(totals.at("phase_b").count, 1u);
}

// ---------------------------------------------------------------------------
// Histograms.

TEST_F(ObsTest, HistogramBucketsAreLog2BitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST_F(ObsTest, HistogramPercentileReportsBucketUpperBounds) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  // 90 samples of 1 and 10 samples of 1000: p50 lands in bucket 1 (upper
  // bound 1), p99 in 1000's bucket (upper bound 1023).
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u + 10u * 1000u);
  EXPECT_EQ(h.percentile(0.50), 1u);
  EXPECT_EQ(h.percentile(0.90), 1u);
  EXPECT_EQ(h.percentile(0.99), 1023u);
  EXPECT_EQ(h.percentile(1.0), 1023u);
}

TEST_F(ObsTest, HistogramMacroDisabledRecordsNothing) {
  set_metrics_enabled(false);
  Metrics::instance().reset_all();
  GFA_HISTOGRAM("test.hist.disabled", 42);
  EXPECT_EQ(Metrics::instance().histogram("test.hist.disabled").count(), 0u);
}

TEST_F(ObsTest, HistogramConcurrentRecordsSumExactly) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  constexpr std::size_t kItems = 100000;
  parallel_for(kItems, [](std::size_t i) { GFA_HISTOGRAM("test.hist.race", i); });
  const Histogram& h = Metrics::instance().histogram("test.hist.race");
  EXPECT_EQ(h.count(), kItems);
  EXPECT_EQ(h.sum(),
            static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
  // Per-bucket totals are exact too: bucket b holds [2^(b-1), 2^b - 1], so
  // bucket counts for a dense 0..N-1 range are the power-of-two strides.
  std::uint64_t bucket_total = 0;
  for (unsigned b = 0; b < Histogram::kBuckets; ++b)
    bucket_total += h.bucket(b);
  EXPECT_EQ(bucket_total, kItems);
  EXPECT_EQ(h.bucket(0), 1u);   // value 0
  EXPECT_EQ(h.bucket(1), 1u);   // value 1
  EXPECT_EQ(h.bucket(2), 2u);   // values 2..3
  EXPECT_EQ(h.bucket(10), 512u);  // values 512..1023
}

TEST_F(ObsTest, HistogramsFoldIntoSnapshotsOnlyWhenNonEmpty) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  const auto empty = Metrics::instance().snapshot();
  EXPECT_FALSE(empty.count("rewriter.substitution_us.count"));
  GFA_HISTOGRAM("rewriter.substitution_us", 7);
  GFA_HISTOGRAM("rewriter.substitution_us", 9);
  const auto snap = Metrics::instance().snapshot();
  EXPECT_EQ(snap.at("rewriter.substitution_us.count"), 2u);
  EXPECT_EQ(snap.at("rewriter.substitution_us.p50"), 7u);
  EXPECT_EQ(snap.at("rewriter.substitution_us.p99"), 15u);
  // Delta subtracts .count like a counter; percentiles stay current.
  GFA_HISTOGRAM("rewriter.substitution_us", 9);
  const auto d = Metrics::instance().delta(snap);
  EXPECT_EQ(d.at("rewriter.substitution_us.count"), 1u);
  EXPECT_EQ(d.at("rewriter.substitution_us.p50"), 15u);
}

// ---------------------------------------------------------------------------
// Progress sink.

TEST_F(ObsTest, ProgressSinkGatesAndDelivers) {
  EXPECT_FALSE(progress_active());
  report_progress(Progress{});  // no sink: harmless no-op
  std::vector<std::pair<std::string, std::uint64_t>> seen;
  set_progress_sink([&](const Progress& p) {
    seen.emplace_back(p.phase, p.step);
  });
  EXPECT_TRUE(progress_active());
  Progress p;
  p.phase = "reduction_chain";
  p.step = 42;
  report_progress(p);
  set_progress_sink(nullptr);
  EXPECT_FALSE(progress_active());
  report_progress(p);  // after removal: dropped
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, "reduction_chain");
  EXPECT_EQ(seen[0].second, 42u);
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorder, RingKeepsTheLastEventsInOrder) {
  flight::clear();
  for (std::uint64_t i = 1; i <= flight::kRingSize + 40; ++i)
    flight::note("phase:step", i, i * 2);
  const std::vector<flight::Event> tail = flight::tail();
  ASSERT_EQ(tail.size(), flight::kRingSize);
  // Oldest surviving event is (total - ring + 1); strictly increasing seq.
  EXPECT_EQ(tail.front().seq, 41u);
  EXPECT_EQ(tail.back().seq, flight::kRingSize + 40);
  for (std::size_t i = 1; i < tail.size(); ++i)
    EXPECT_EQ(tail[i].seq, tail[i - 1].seq + 1);
  EXPECT_STREQ(tail.back().tag, "phase:step");
  EXPECT_EQ(tail.back().a, flight::kRingSize + 40);
  EXPECT_EQ(tail.back().b, (flight::kRingSize + 40) * 2);
  flight::clear();
  EXPECT_TRUE(flight::tail().empty());
}

TEST(FlightRecorder, LongTagsTruncateAndFormatIsReadable) {
  flight::clear();
  flight::note("a_very_long_tag_name_that_overflows", 1, 2);
  const std::vector<flight::Event> tail = flight::tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(std::strlen(tail[0].tag), flight::kTagBytes - 1);
  const std::string line = flight::format(tail[0]);
  EXPECT_NE(line.find("a_very_long_tag_name_th"), std::string::npos);
  EXPECT_NE(line.find("a=1"), std::string::npos);
  EXPECT_NE(line.find("b=2"), std::string::npos);
  flight::clear();
}

// ---------------------------------------------------------------------------
// Trace thread lanes.

TEST_F(ObsTest, SpansFromDifferentThreadsLandInDifferentLanes) {
  Tracer::instance().clear();
  set_trace_enabled(true);
  // Keep both threads alive until both spans have closed: a joined thread's
  // std::thread::id may be reused, which would collapse the dense tids.
  std::atomic<int> done{0};
  const auto body = [&done](const char* name) {
    { const TraceSpan s(name, "test"); }
    ++done;
    while (done.load() < 2) std::this_thread::yield();
  };
  std::thread t1(body, "lane_a");
  std::thread t2(body, "lane_b");
  t1.join();
  t2.join();
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

// Regression for the sharded-rewriter trace fix: the per-shard
// "reduction_chain_shard" span must open inside the parallel_for worker
// lambda, so one span is recorded per shard (stamped with the pool thread
// that ran it). The old code opened a single span on the dispatching thread,
// collapsing all shard work into one event in one lane.
TEST_F(ObsTest, ShardedSubstitutionRecordsOneSpanPerShard) {
  const unsigned restore_threads = parallel_thread_count();
  set_parallel_thread_count(4);
  Tracer::instance().clear();
  set_trace_enabled(true);

  const Gf2k field = Gf2k::make(8);
  // 200 pending occurrences of v=0 exceeds kChunkedSubstitutionMin (128), so
  // substitute() takes the chunked path with min(4, 200/64) = 3 shards.
  constexpr VarId kV = 0;
  constexpr std::size_t kPending = 200;
  std::vector<bool> substitutable(kPending + 3, true);
  BasicBackwardRewriter<BitMono> rw(field, substitutable);
  for (VarId i = 1; i <= kPending; ++i) {
    const VarId ids[2] = {kV, i};
    rw.add(BitMono::from_sorted(ids, 2), field.one());
  }
  FlatTail<BitMono> tail;
  const VarId t0 = kPending + 1, t1 = kPending + 2;
  tail.monos.push_back(BitMono::from_sorted(&t0, 1));
  tail.monos.push_back(BitMono::from_sorted(&t1, 1));
  rw.substitute(kV, tail);
  EXPECT_EQ(rw.num_terms(), 2 * kPending);

  std::size_t shard_spans = 0;
  for (const auto& e : Tracer::instance().events())
    if (e.name == "reduction_chain_shard") ++shard_spans;
  EXPECT_EQ(shard_spans, 3u);
  set_parallel_thread_count(restore_threads);
}

TEST(ObsMetrics, RssSamplingTracksAMonotonicPeak) {
  const std::uint64_t now = sample_rss_bytes();
  EXPECT_GT(now, 0u);  // /proc/self/statm exists on every CI target
  const std::uint64_t peak = peak_rss_bytes();
  EXPECT_GE(peak, now);
  // A second sample can only raise the recorded peak.
  sample_rss_bytes();
  EXPECT_GE(peak_rss_bytes(), peak);
}

TEST(ObsLog, ParseLogLevelAcceptsTheFourLevels) {
  EXPECT_EQ(*parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(*parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(*parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(*parse_log_level("debug"), LogLevel::kDebug);
}

TEST(ObsLog, ParseLogLevelRejectsGarbage) {
  EXPECT_FALSE(parse_log_level("").ok());
  EXPECT_FALSE(parse_log_level("verbose").ok());
  EXPECT_FALSE(parse_log_level("DEBUG").ok());  // levels are lowercase
  EXPECT_FALSE(parse_log_level("2").ok());
}

TEST(ObsLog, LevelGatingIsMonotonic) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  set_log_level(saved);
}

}  // namespace
}  // namespace gfa::obs
