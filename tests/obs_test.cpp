// Units for the observability layer (src/obs): the metrics registry's
// thread-safety under concurrent parallel_for increments, snapshot/delta
// semantics, the Chrome-trace tracer, and log-level parsing.
//
// The thread-safety tests run under the sanitizer CI job, so a data race in
// Metric::add / record_max would trip ASan/TSan-style diagnostics as well as
// the exact-sum assertions here.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel_for.h"

namespace gfa::obs {
namespace {

// Every test toggles the global enable flags; restore them so test order
// never matters (gtest may shuffle, and other suites assume "disabled").
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_was_ = metrics_enabled();
    trace_was_ = trace_enabled();
  }
  void TearDown() override {
    set_metrics_enabled(metrics_was_);
    set_trace_enabled(trace_was_);
    Metrics::instance().reset_all();
    Tracer::instance().clear();
  }

 private:
  bool metrics_was_ = false;
  bool trace_was_ = false;
};

TEST_F(ObsTest, CountersDisabledByDefaultCostNothingAndRecordNothing) {
  set_metrics_enabled(false);
  Metrics::instance().reset_all();
  const auto before = Metrics::instance().snapshot();
  GFA_COUNT("normal_form.calls", 7);
  GFA_GAUGE_MAX("normal_form.peak_terms", 1234);
  EXPECT_EQ(Metrics::instance().snapshot(), before);
}

TEST_F(ObsTest, CounterAddAndGaugeMaxSemantics) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  Metric& c = Metrics::instance().counter("test.counter");
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);

  Metric& g = Metrics::instance().gauge("test.gauge");
  g.record_max(10);
  g.record_max(5);   // lower: ignored
  g.record_max(25);  // higher: wins
  EXPECT_EQ(g.value(), 25u);
}

TEST_F(ObsTest, KnownMetricSchemaIsPreRegistered) {
  // The run-report contract promises the Buchberger pair counters appear
  // even for engines that never run Buchberger; that only works if the
  // schema is pre-registered rather than created on first touch.
  const auto snap = Metrics::instance().snapshot();
  for (const char* name :
       {"reduction_steps", "buchberger.pairs_generated",
        "buchberger.pairs_skipped", "buchberger.pairs_reduced",
        "extract.substitutions", "sat.conflicts", "bdd.cache_hits",
        "fraig.merges", "parallel.items"}) {
    EXPECT_TRUE(snap.count(name)) << "missing pre-registered metric " << name;
  }
}

TEST_F(ObsTest, ConcurrentIncrementsFromParallelForSumExactly) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  constexpr std::size_t kItems = 100000;
  // Each iteration adds its index to a counter and records it as a gauge
  // candidate; with relaxed atomics the total must still be exact and the
  // max must be the largest index.
  parallel_for(kItems, [](std::size_t i) {
    GFA_COUNT("test.race.counter", i);
    GFA_GAUGE_MAX("test.race.gauge", i);
  });
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2;
  EXPECT_EQ(Metrics::instance().counter("test.race.counter").value(), expected);
  EXPECT_EQ(Metrics::instance().gauge("test.race.gauge").value(), kItems - 1);
}

TEST_F(ObsTest, DeltaSubtractsCountersAndReportsGauges) {
  set_metrics_enabled(true);
  Metrics::instance().reset_all();
  Metrics::instance().counter("test.delta.c").add(10);
  Metrics::instance().gauge("test.delta.g").record_max(50);
  const auto base = Metrics::instance().snapshot();
  Metrics::instance().counter("test.delta.c").add(5);
  Metrics::instance().gauge("test.delta.g").record_max(80);
  const auto d = Metrics::instance().delta(base);
  EXPECT_EQ(d.at("test.delta.c"), 5u);   // counter: increment since base
  EXPECT_EQ(d.at("test.delta.g"), 80u);  // gauge: current peak
}

TEST_F(ObsTest, TraceSpanRecordsOnlyWhenEnabled) {
  Tracer::instance().clear();
  set_trace_enabled(false);
  { const TraceSpan s("invisible", "test"); }
  set_trace_enabled(true);
  { const TraceSpan s("visible", "test"); }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "visible");
  EXPECT_EQ(events[0].category, "test");
}

TEST_F(ObsTest, ChromeTraceOutputIsWellFormed) {
  Tracer::instance().clear();
  set_trace_enabled(true);
  {
    const TraceSpan outer("outer", "test");
    const TraceSpan inner("inner", "test");
  }
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  // Chrome's about:tracing format essentials.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, AggregateSumsPerPhaseName) {
  Tracer::instance().clear();
  set_trace_enabled(true);
  { const TraceSpan s("phase_a", "test"); }
  { const TraceSpan s("phase_a", "test"); }
  { const TraceSpan s("phase_b", "test"); }
  const auto totals = Tracer::instance().aggregate();
  ASSERT_TRUE(totals.count("phase_a"));
  ASSERT_TRUE(totals.count("phase_b"));
  EXPECT_EQ(totals.at("phase_a").count, 2u);
  EXPECT_EQ(totals.at("phase_b").count, 1u);
}

TEST(ObsLog, ParseLogLevelAcceptsTheFourLevels) {
  EXPECT_EQ(*parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(*parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(*parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(*parse_log_level("debug"), LogLevel::kDebug);
}

TEST(ObsLog, ParseLogLevelRejectsGarbage) {
  EXPECT_FALSE(parse_log_level("").ok());
  EXPECT_FALSE(parse_log_level("verbose").ok());
  EXPECT_FALSE(parse_log_level("DEBUG").ok());  // levels are lowercase
  EXPECT_FALSE(parse_log_level("2").ok());
}

TEST(ObsLog, LevelGatingIsMonotonic) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  set_log_level(saved);
}

}  // namespace
}  // namespace gfa::obs
