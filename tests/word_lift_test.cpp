#include "abstraction/word_lift.h"

#include <gtest/gtest.h>

#include "baselines/interpolation.h"
#include "test_util.h"

namespace gfa {
namespace {

class WordLiftTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WordLiftTest, ExpansionRecoversBitsFromWordValue) {
  // For every field element A, the expansion a_i = Σ_j C[i][j]·A^{2^j}
  // must reproduce A's coordinate bits.
  const Gf2k field = Gf2k::make(GetParam());
  const WordLift lift(&field);
  test::Rng rng(GetParam() * 13 + 5);
  for (int t = 0; t < 24; ++t) {
    const auto a = rng.elem(field);
    // Precompute A^{2^j}.
    std::vector<Gf2k::Elem> powers(field.k());
    powers[0] = a;
    for (unsigned j = 1; j < field.k(); ++j)
      powers[j] = field.square(powers[j - 1]);
    for (unsigned i = 0; i < field.k(); ++i) {
      Gf2k::Elem bit = field.zero();
      for (unsigned j = 0; j < field.k(); ++j)
        bit += field.mul(lift.matrix()[i][j], powers[j]);
      const Gf2k::Elem expect =
          a.coeff(i) ? field.one() : field.zero();
      EXPECT_EQ(bit, expect) << "k=" << GetParam() << " bit " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WordLiftTest,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 16, 32));

class WordLiftSmall : public ::testing::Test {
 protected:
  WordLiftSmall() : field_(Gf2k::make(3)), lift_(&field_) {
    for (unsigned i = 0; i < 3; ++i)
      abits_.push_back(pool_.intern("a" + std::to_string(i), VarKind::kBit));
    for (unsigned i = 0; i < 3; ++i)
      bbits_.push_back(pool_.intern("b" + std::to_string(i), VarKind::kBit));
    a_ = pool_.intern("A", VarKind::kWord);
    b_ = pool_.intern("B", VarKind::kWord);
  }
  std::vector<WordLift::WordBinding> bindings() {
    return {{a_, abits_}, {b_, bbits_}};
  }
  /// Checks that lifted(A, B) equals r(bits of A, bits of B) for all points.
  void expect_pointwise_equal(const BitPoly& r, const MPoly& lifted) {
    for (const auto& av : all_field_elements(field_)) {
      for (const auto& bv : all_field_elements(field_)) {
        std::vector<bool> assign(pool_.size(), false);
        for (unsigned i = 0; i < 3; ++i) {
          assign[abits_[i]] = av.coeff(i);
          assign[bbits_[i]] = bv.coeff(i);
        }
        const auto direct = r.eval(assign);
        const auto via_words = lifted.eval([&](VarId v) {
          return v == a_ ? av : bv;
        });
        ASSERT_EQ(direct, via_words)
            << "A=" << field_.to_string(av) << " B=" << field_.to_string(bv);
      }
    }
  }
  Gf2k field_;
  WordLift lift_;
  VarPool pool_;
  std::vector<VarId> abits_, bbits_;
  VarId a_, b_;
};

TEST_F(WordLiftSmall, LiftsLinearForm) {
  // r = Σ α^i·a_i is exactly the word A.
  BitPoly r(&field_);
  for (unsigned i = 0; i < 3; ++i)
    r.add_term({abits_[i]}, field_.alpha_pow(std::uint64_t{i}));
  const MPoly g = lift_.lift(r, bindings(), pool_);
  EXPECT_EQ(g, MPoly::variable(&field_, a_));
}

TEST_F(WordLiftSmall, LiftsMultiplierRemainder) {
  // r = Σ_{i,j} α^{i+j}·a_i·b_j  — the Mastrovito remainder — lifts to A·B.
  BitPoly r(&field_);
  for (unsigned i = 0; i < 3; ++i)
    for (unsigned j = 0; j < 3; ++j)
      r.add_term({std::min(abits_[i], bbits_[j]), std::max(abits_[i], bbits_[j])},
                 field_.alpha_pow(std::uint64_t{i} + j));
  const MPoly g = lift_.lift(r, bindings(), pool_);
  const MPoly ab = MPoly::variable(&field_, a_) * MPoly::variable(&field_, b_);
  EXPECT_EQ(g, ab);
}

TEST_F(WordLiftSmall, LiftsConstant) {
  BitPoly r = BitPoly::constant(&field_, field_.alpha());
  const MPoly g = lift_.lift(r, bindings(), pool_);
  EXPECT_EQ(g, MPoly::constant(&field_, field_.alpha()));
}

TEST_F(WordLiftSmall, BilinearPathPointwiseCorrect) {
  test::Rng rng(42);
  for (int t = 0; t < 5; ++t) {
    BitPoly r(&field_);
    // Random bilinear + linear + constant polynomial.
    for (unsigned i = 0; i < 3; ++i)
      for (unsigned j = 0; j < 3; ++j)
        r.add_term({std::min(abits_[i], bbits_[j]), std::max(abits_[i], bbits_[j])},
                   rng.elem(field_));
    for (unsigned i = 0; i < 3; ++i) {
      r.add_term({abits_[i]}, rng.elem(field_));
      r.add_term({bbits_[i]}, rng.elem(field_));
    }
    r.add_term({}, rng.elem(field_));
    expect_pointwise_equal(r, lift_.lift(r, bindings(), pool_));
  }
}

TEST_F(WordLiftSmall, SameWordQuadraticTerms) {
  // a_0·a_1 involves one word twice — exercises the uv == vv branch.
  BitPoly r(&field_);
  r.add_term({abits_[0], abits_[1]}, field_.one());
  expect_pointwise_equal(r, lift_.lift(r, bindings(), pool_));
}

TEST_F(WordLiftSmall, GeneralPathHandlesCubicTerms) {
  BitPoly r(&field_);
  r.add_term({abits_[0], abits_[1], bbits_[2]}, field_.alpha());
  r.add_term({abits_[2]}, field_.one());
  EXPECT_GT(r.max_monomial_size(), 2u);  // forces the general path
  expect_pointwise_equal(r, lift_.lift(r, bindings(), pool_));
}

TEST_F(WordLiftSmall, GeneralAndBilinearPathsAgree) {
  // A degree-2 polynomial routed through both paths must lift identically.
  test::Rng rng(77);
  BitPoly r(&field_);
  for (unsigned i = 0; i < 3; ++i)
    for (unsigned j = 0; j < 3; ++j)
      r.add_term({std::min(abits_[i], bbits_[j]), std::max(abits_[i], bbits_[j])},
                 rng.elem(field_));
  BitPoly r_with_cubic = r;
  r_with_cubic.add_term({abits_[0], abits_[1], abits_[2]}, field_.one());
  // lift(r + cubic) - lift(cubic) == lift(r) exercises path agreement
  // indirectly; directly compare bilinear lift to pointwise semantics too.
  const MPoly bilinear = lift_.lift(r, bindings(), pool_);
  expect_pointwise_equal(r, bilinear);
  const MPoly general = lift_.lift(r_with_cubic, bindings(), pool_);
  expect_pointwise_equal(r_with_cubic, general);
}

TEST_F(WordLiftSmall, UnboundBitThrows) {
  VarPool pool2 = pool_;
  const VarId stray = pool2.intern("stray", VarKind::kBit);
  BitPoly r(&field_);
  r.add_term({stray}, field_.one());
  EXPECT_THROW(lift_.lift(r, bindings(), pool2), std::logic_error);
}

}  // namespace
}  // namespace gfa
