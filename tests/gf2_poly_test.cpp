#include "gf2/gf2_poly.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gfa {
namespace {

TEST(Gf2Poly, ZeroProperties) {
  Gf2Poly z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(z.weight(), 0);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z + z, z);
  EXPECT_EQ(z * z, z);
}

TEST(Gf2Poly, FromBitsAndCoeffs) {
  Gf2Poly p = Gf2Poly::from_bits(0b1011);  // x^3 + x + 1
  EXPECT_EQ(p.degree(), 3);
  EXPECT_EQ(p.weight(), 3);
  EXPECT_TRUE(p.coeff(0));
  EXPECT_TRUE(p.coeff(1));
  EXPECT_FALSE(p.coeff(2));
  EXPECT_TRUE(p.coeff(3));
  EXPECT_FALSE(p.coeff(100));
  EXPECT_EQ(p.to_string(), "x^3 + x + 1");
}

TEST(Gf2Poly, FromExponentsCancelsPairs) {
  EXPECT_EQ(Gf2Poly::from_exponents({3, 3}), Gf2Poly());
  EXPECT_EQ(Gf2Poly::from_exponents({3, 1, 3}), Gf2Poly::monomial(1));
}

TEST(Gf2Poly, SetCoeffTrimsHighZeros) {
  Gf2Poly p = Gf2Poly::monomial(130);
  EXPECT_EQ(p.degree(), 130);
  p.set_coeff(130, false);
  EXPECT_TRUE(p.is_zero());
  EXPECT_TRUE(p.words().empty());
}

TEST(Gf2Poly, AdditionIsXor) {
  Gf2Poly a = Gf2Poly::from_bits(0b1101);
  Gf2Poly b = Gf2Poly::from_bits(0b0111);
  EXPECT_EQ(a + b, Gf2Poly::from_bits(0b1010));
  EXPECT_EQ(a + a, Gf2Poly());  // char 2
}

TEST(Gf2Poly, MultiplicationSmall) {
  // (x+1)(x+1) = x^2 + 1  over GF(2)
  Gf2Poly xp1 = Gf2Poly::from_bits(0b11);
  EXPECT_EQ(xp1 * xp1, Gf2Poly::from_bits(0b101));
  // (x^2+x+1)(x+1) = x^3 + 1
  EXPECT_EQ(Gf2Poly::from_bits(0b111) * xp1, Gf2Poly::from_bits(0b1001));
}

TEST(Gf2Poly, MultiplicationCrossesWordBoundaries) {
  Gf2Poly a = Gf2Poly::monomial(63);
  Gf2Poly b = Gf2Poly::monomial(63);
  EXPECT_EQ(a * b, Gf2Poly::monomial(126));
  Gf2Poly c = Gf2Poly::from_exponents({63, 0});
  EXPECT_EQ(c * c, Gf2Poly::from_exponents({126, 0}));
}

TEST(Gf2Poly, SquaredMatchesSelfProduct) {
  test::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Gf2Poly p;
    for (unsigned i = 0; i < 150; ++i)
      if (rng.next() & 1) p.set_coeff(i, true);
    EXPECT_EQ(p.squared(), p * p);
  }
}

TEST(Gf2Poly, ShiftedUp) {
  Gf2Poly p = Gf2Poly::from_bits(0b101);
  EXPECT_EQ(p.shifted_up(0), p);
  EXPECT_EQ(p.shifted_up(3), Gf2Poly::from_exponents({5, 3}));
  EXPECT_EQ(p.shifted_up(64).degree(), 66);
  EXPECT_EQ(Gf2Poly().shifted_up(17), Gf2Poly());
}

TEST(Gf2Poly, DivModIdentity) {
  test::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    Gf2Poly a, d;
    for (unsigned i = 0; i < 90; ++i)
      if (rng.next() & 1) a.set_coeff(i, true);
    for (unsigned i = 0; i < 30; ++i)
      if (rng.next() & 1) d.set_coeff(i, true);
    if (d.is_zero()) d = Gf2Poly::one();
    const auto dm = a.divmod(d);
    EXPECT_EQ(dm.quotient * d + dm.remainder, a);
    EXPECT_LT(dm.remainder.degree(), d.degree() == -1 ? 0 : d.degree());
  }
}

TEST(Gf2Poly, ModAgreesWithDivMod) {
  Gf2Poly a = Gf2Poly::from_exponents({10, 7, 2, 0});
  Gf2Poly d = Gf2Poly::from_exponents({4, 1, 0});
  EXPECT_EQ(a.mod(d), a.divmod(d).remainder);
}

TEST(Gf2Poly, GcdBasics) {
  Gf2Poly x = Gf2Poly::monomial(1);
  Gf2Poly x2 = Gf2Poly::monomial(2);
  EXPECT_EQ(Gf2Poly::gcd(x2, x), x);
  // gcd(f, 0) = f
  EXPECT_EQ(Gf2Poly::gcd(x2, Gf2Poly()), x2);
  // Coprime: x and x+1.
  EXPECT_TRUE(Gf2Poly::gcd(x, Gf2Poly::from_bits(0b11)).is_one());
}

TEST(Gf2Poly, GcdOfCommonFactor) {
  Gf2Poly f = Gf2Poly::from_bits(0b111);   // x^2+x+1 (irreducible)
  Gf2Poly g1 = Gf2Poly::from_bits(0b11);   // x+1
  Gf2Poly g2 = Gf2Poly::from_bits(0b10);   // x
  EXPECT_EQ(Gf2Poly::gcd(f * g1, f * g2), f);
}

TEST(Gf2Poly, ExtGcdBezout) {
  test::Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    Gf2Poly a, b;
    for (unsigned i = 0; i < 40; ++i) {
      if (rng.next() & 1) a.set_coeff(i, true);
      if (rng.next() & 1) b.set_coeff(i, true);
    }
    if (a.is_zero() && b.is_zero()) continue;
    const auto eg = Gf2Poly::ext_gcd(a, b);
    EXPECT_EQ(eg.s * a + eg.t * b, eg.g);
    EXPECT_EQ(eg.g, Gf2Poly::gcd(a, b));
  }
}

TEST(Gf2Poly, MulModAndFrobenius) {
  const Gf2Poly m = Gf2Poly::from_exponents({8, 4, 3, 1, 0});  // AES modulus
  const Gf2Poly a = Gf2Poly::from_bits(0x57);
  const Gf2Poly b = Gf2Poly::from_bits(0x83);
  EXPECT_EQ(Gf2Poly::mulmod(a, b, m), Gf2Poly::from_bits(0xC1));  // known AES product
  // Frobenius: a^(2^8) == a (mod m) for all a when m is irreducible of deg 8.
  EXPECT_EQ(Gf2Poly::frobenius_pow(a, 8, m), a);
}

TEST(Gf2Poly, HashDistinguishesAndAgrees) {
  Gf2Poly a = Gf2Poly::from_bits(0b1011);
  Gf2Poly b = Gf2Poly::from_bits(0b1011);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), Gf2Poly::from_bits(0b1010).hash());
}

}  // namespace
}  // namespace gfa
