// Tests for util/parse_number.h, focused on the trailing-garbage hardening:
// every accepted form is listed next to the near-miss that must be rejected
// ("2G" vs "2Gb", "500ms" vs "500msx"), so a silently-ignored suffix can
// never misconfigure a budget or a backoff again.

#include <gtest/gtest.h>

#include "util/parse_number.h"

namespace gfa {
namespace {

TEST(ParseU64, AcceptsDigitsOnly) {
  EXPECT_EQ(*parse_u64("0"), 0u);
  EXPECT_EQ(*parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("").ok());
  EXPECT_FALSE(parse_u64("12x").ok());
  EXPECT_FALSE(parse_u64(" 12").ok());
  EXPECT_FALSE(parse_u64("+12").ok());
  EXPECT_FALSE(parse_u64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(parse_u64("5", 10, 20).ok());             // below min
  EXPECT_FALSE(parse_u64("25", 10, 20).ok());            // above max
}

TEST(ParseDouble, AcceptsFiniteDecimalsWithinRange) {
  EXPECT_EQ(*parse_double("1.5", 0, 10), 1.5);
  EXPECT_EQ(*parse_double("0", 0, 10), 0.0);
  EXPECT_FALSE(parse_double("1.5x", 0, 10).ok());
  EXPECT_FALSE(parse_double("nan", 0, 10).ok());
  EXPECT_FALSE(parse_double("inf", 0, 10).ok());
  EXPECT_FALSE(parse_double("11", 0, 10).ok());
}

TEST(ParseByteSize, EachValidFormParses) {
  EXPECT_EQ(*parse_byte_size("1048576"), 1048576u);
  EXPECT_EQ(*parse_byte_size("64K"), 64ull << 10);
  EXPECT_EQ(*parse_byte_size("64k"), 64ull << 10);
  EXPECT_EQ(*parse_byte_size("512M"), 512ull << 20);
  EXPECT_EQ(*parse_byte_size("512m"), 512ull << 20);
  EXPECT_EQ(*parse_byte_size("2G"), 2ull << 30);
  EXPECT_EQ(*parse_byte_size("1T"), 1ull << 40);
}

TEST(ParseByteSize, TrailingGarbageAfterAValidSuffixIsInvalidArgument) {
  // "2Gb" and "64KB" used to silently parse as 2G / 64K; now the junk is
  // named in a kInvalidArgument.
  for (const char* bad : {"2Gb", "2GB", "64KB", "64Kb", "512MiB", "1Tx"}) {
    const Result<std::uint64_t> r = parse_byte_size(bad);
    ASSERT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  EXPECT_FALSE(parse_byte_size("").ok());
  EXPECT_FALSE(parse_byte_size("G").ok());
  EXPECT_FALSE(parse_byte_size("-5").ok());
}

TEST(ParseDuration, EachValidFormParses) {
  EXPECT_EQ(*parse_duration_seconds("1.5"), 1.5);       // bare = seconds
  EXPECT_EQ(*parse_duration_seconds("500ms"), 0.5);
  EXPECT_EQ(*parse_duration_seconds("2s"), 2.0);
  EXPECT_EQ(*parse_duration_seconds("2m"), 120.0);      // "m" is minutes...
  EXPECT_EQ(*parse_duration_seconds("1.5h"), 5400.0);
  EXPECT_EQ(*parse_duration_seconds("250ms"), 0.25);    // ..."ms" wins here
}

TEST(ParseDuration, TrailingGarbageAfterAValidSuffixIsInvalidArgument) {
  for (const char* bad : {"500msx", "1sx", "2mm", "1hh"}) {
    const Result<double> r = parse_duration_seconds(bad);
    ASSERT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  EXPECT_FALSE(parse_duration_seconds("").ok());
  EXPECT_FALSE(parse_duration_seconds("ms").ok());
  EXPECT_FALSE(parse_duration_seconds("-1s").ok());
  EXPECT_FALSE(parse_duration_seconds("3 s").ok());  // bad suffix, not junk
}

}  // namespace
}  // namespace gfa
