// The unified engine layer (src/engine/): registry lookup, cross-engine
// verdict parity on equivalent and mutated multiplier pairs, the
// budget-semantics contract (search budgets dry = Ok(kUnknown),
// representation budgets tripped = kResourceExhausted), and the acceptance
// check that a millisecond deadline stops *every* engine at the paper-scale
// k = 163 instance with kDeadlineExceeded.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "util/json_reader.h"

namespace gfa::engine {
namespace {

/// Budgets that keep every engine's unit-test run bounded: search budgets
/// (conflicts, reductions) may run dry — that is Ok(kUnknown) by contract —
/// while the fast engines still reach a definitive verdict. At k = 8 the
/// slow baselines (SAT proof, unguided Buchberger) are well past their
/// exponential wall, so their budgets shrink to keep the suite quick.
RunOptions budgeted_options(unsigned k) {
  RunOptions options;
  options.sat_conflict_limit = k >= 8 ? 2000 : 20000;
  options.gb_max_reductions = k >= 8 ? 200 : 2000;
  options.gb_max_poly_terms = k >= 8 ? 2000 : 0;
  return options;
}

TEST(EngineRegistry, GlobalHasTheSevenBuiltinsInOrder) {
  const std::vector<std::string> names = EngineRegistry::global().names();
  const std::vector<std::string> expected = {
      "abstraction", "sat",     "fraig",           "bdd",
      "full-gb",     "ideal-membership", "portfolio"};
  EXPECT_EQ(names, expected);
}

TEST(EngineRegistry, EnginesDescribeThemselves) {
  for (const EquivEngine* engine : EngineRegistry::global().engines()) {
    EXPECT_FALSE(engine->name().empty());
    EXPECT_FALSE(engine->description().empty());
    EXPECT_EQ(EngineRegistry::global().find(engine->name()), engine);
  }
}

TEST(EngineRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(EngineRegistry::global().find("no-such-engine"), nullptr);
}

TEST(EngineRegistry, RequireUnknownIsInvalidArgumentListingTheFleet) {
  const Result<const EquivEngine*> r =
      EngineRegistry::global().require("no-such-engine");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("abstraction"), std::string::npos);
  EXPECT_NE(r.status().message().find("ideal-membership"), std::string::npos);
}

TEST(EngineRegistry, VerdictNames) {
  EXPECT_STREQ(verdict_name(Verdict::kEquivalent), "equivalent");
  EXPECT_STREQ(verdict_name(Verdict::kNotEquivalent), "not-equivalent");
  EXPECT_STREQ(verdict_name(Verdict::kUnknown), "unknown");
}

class EngineParity : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineParity, AllDefinitiveVerdictsSayEquivalentOnMatchingPair) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  for (const EquivEngine* engine : EngineRegistry::global().engines()) {
    const EngineRun run =
        run_engine(*engine, spec, impl, field, budgeted_options(GetParam()));
    ASSERT_TRUE(run.status.ok())
        << engine->name() << ": " << run.status.to_string();
    if (run.verdict != Verdict::kUnknown) {
      EXPECT_EQ(run.verdict, Verdict::kEquivalent)
          << engine->name() << ": " << run.detail;
    }
  }
  // The paper's method must be definitive, not merely non-contradictory.
  const EngineRun abs = run_engine(*EngineRegistry::global().find("abstraction"),
                                   spec, impl, field, budgeted_options(GetParam()));
  EXPECT_EQ(abs.verdict, Verdict::kEquivalent);
}

TEST_P(EngineParity, DefinitiveVerdictsAgreeOnMutants) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist golden = make_montgomery_multiplier_flat(field);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    BugDescription desc;
    const Netlist impl = inject_random_bug(golden, seed, &desc);
    const EngineRun abs = run_engine(
        *EngineRegistry::global().find("abstraction"), spec, impl, field,
        budgeted_options(GetParam()));
    ASSERT_TRUE(abs.status.ok()) << abs.status.to_string();
    ASSERT_NE(abs.verdict, Verdict::kUnknown);
    for (const EquivEngine* engine : EngineRegistry::global().engines()) {
      const EngineRun run =
          run_engine(*engine, spec, impl, field, budgeted_options(GetParam()));
      ASSERT_TRUE(run.status.ok())
          << engine->name() << ": " << run.status.to_string();
      if (run.verdict != Verdict::kUnknown) {
        EXPECT_EQ(run.verdict, abs.verdict)
            << engine->name() << " disagrees on seed=" << seed
            << " bug=" << desc.text;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineParity, ::testing::Values(4u, 8u));

// ---------------------------------------------------------------------------
// Budget semantics.

TEST(EngineBudgets, SatConflictBudgetDryIsOkUnknown) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.sat_conflict_limit = 10;
  const Result<VerifyResult> r = EngineRegistry::global().find("sat")->verify(
      spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kUnknown);
  EXPECT_NE(r->detail.find("budget"), std::string::npos);
}

TEST(EngineBudgets, FullGbReductionBudgetDryIsOkUnknown) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.gb_max_reductions = 1;
  const Result<VerifyResult> r =
      EngineRegistry::global().find("full-gb")->verify(spec, impl, field,
                                                       options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kUnknown);
}

TEST(EngineBudgets, BddNodeBudgetTripIsResourceExhausted) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.bdd_node_limit = 100;
  const Result<VerifyResult> r = EngineRegistry::global().find("bdd")->verify(
      spec, impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineBudgets, AbstractionTermBudgetTripIsResourceExhausted) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.max_terms = 2;
  const Result<VerifyResult> r =
      EngineRegistry::global().find("abstraction")->verify(spec, impl, field,
                                                           options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineBudgets, MismatchedInterfacesAreInvalidArgument) {
  const Gf2k f2 = Gf2k::make(2);
  const Gf2k f3 = Gf2k::make(3);
  const Netlist a = make_mastrovito_multiplier(f2);
  const Netlist b = make_mastrovito_multiplier(f3);
  const Result<VerifyResult> r =
      EngineRegistry::global().find("sat")->verify(a, b, f2, RunOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation at the paper-scale instance. This is the
// acceptance criterion for the engine layer: a ~1 ms deadline must stop every
// engine on the k = 163 (NIST B-163) pair with kDeadlineExceeded — none of
// them can finish a 163-bit multiplier proof in a millisecond, and none may
// run away past the deadline either.

TEST(EngineDeadlines, MillisecondDeadlineStopsEveryEngineAt163) {
  const Gf2k field = Gf2k::make(163);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  for (const EquivEngine* engine : EngineRegistry::global().engines()) {
    RunOptions options;
    options.control.deadline = Deadline::after(0.001);
    const Result<VerifyResult> r = engine->verify(spec, impl, field, options);
    ASSERT_FALSE(r.ok()) << engine->name() << " ignored the deadline";
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << engine->name() << ": " << r.status().to_string();
  }
}

TEST(EngineDeadlines, CancellationWinsAndStopsEveryEngineAt163) {
  const Gf2k field = Gf2k::make(163);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  for (const EquivEngine* engine : EngineRegistry::global().engines()) {
    RunOptions options;
    options.control.deadline = Deadline::after(0.001);
    options.control.cancel.request_cancel();  // pre-fired: kCancelled wins
    const Result<VerifyResult> r = engine->verify(spec, impl, field, options);
    ASSERT_FALSE(r.ok()) << engine->name() << " ignored the cancellation";
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << engine->name() << ": " << r.status().to_string();
  }
}

TEST(EngineRun, RefutationCarriesReplayedCounterexampleIntoTheReport) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const EquivEngine* abstraction =
      EngineRegistry::global().find("abstraction");
  ASSERT_NE(abstraction, nullptr);
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Netlist buggy = inject_random_bug(spec, seed);
    const EngineRun run =
        run_engine(*abstraction, spec, buggy, field, RunOptions{});
    ASSERT_TRUE(run.status.ok()) << run.status.to_string();
    if (run.verdict != Verdict::kNotEquivalent) continue;  // benign mutation

    // The typed witness: simulator-replayed concrete field elements.
    ASSERT_FALSE(run.counterexample.empty());
    EXPECT_TRUE(run.counterexample.replayed);
    EXPECT_FALSE(run.counterexample.inputs.empty());
    EXPECT_NE(run.counterexample.expected, run.counterexample.actual);

    // And its JSON shape in the report.
    std::ostringstream out;
    write_run_report(out, "verify", 4, {run});
    const Result<JsonValue> report = parse_json(out.str());
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    const JsonValue* runs = report->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items().size(), 1u);
    const JsonValue* cex = runs->items()[0].find("counterexample");
    ASSERT_NE(cex, nullptr);
    EXPECT_TRUE(cex->bool_or("replayed", false));
    EXPECT_FALSE(cex->string_or("output_word", "").empty());
    EXPECT_FALSE(cex->string_or("expected", "").empty());
    const JsonValue* inputs = cex->find("inputs");
    ASSERT_NE(inputs, nullptr);
    EXPECT_FALSE(inputs->members().empty());
    return;
  }
  FAIL() << "no mutation seed in 1..32 produced a refutation";
}

TEST(EngineRun, TimesTheCallAndNeverThrows) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  const EngineRun run =
      run_engine(*EngineRegistry::global().find("abstraction"), spec, impl,
                 field, RunOptions{});
  EXPECT_TRUE(run.status.ok());
  EXPECT_EQ(run.engine, "abstraction");
  EXPECT_EQ(run.verdict, Verdict::kEquivalent);
  EXPECT_GE(run.wall_ms, 0.0);
  EXPECT_FALSE(run.stats.empty());
}

}  // namespace
}  // namespace gfa::engine
