#include "baselines/full_gb.h"

#include <gtest/gtest.h>

#include "abstraction/extractor.h"
#include "circuit/mastrovito.h"
#include "test_util.h"

namespace gfa {
namespace {

TEST(FullGb, Fig2MultiplierFindsZPlusAB) {
  // Paper Example 4.2: the Gröbner basis of J + J_0 under the abstraction
  // order contains g7 : Z + A·B.
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const FullGbResult res =
      abstract_by_full_groebner(test::make_fig2_multiplier(), field);
  ASSERT_TRUE(res.completed);
  ASSERT_TRUE(res.found);
  const MPoly ab = MPoly::variable(&field, res.pool.id("A")) *
                   MPoly::variable(&field, res.pool.id("B"));
  EXPECT_EQ(res.g, ab) << res.g.to_string(res.pool);
}

TEST(FullGb, BuggyFig2FindsBuggyPolynomial) {
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const FullGbResult res = abstract_by_full_groebner(
      test::make_fig2_multiplier(/*with_bug=*/true), field);
  ASSERT_TRUE(res.completed);
  ASSERT_TRUE(res.found);
  // Must agree with the guided extractor (both compute the canonical form).
  const WordFunction fast = extract_word_function(
      test::make_fig2_multiplier(/*with_bug=*/true), field);
  // Compare coefficient-by-coefficient through the pools (same names).
  for (const auto& [mono, coeff] : fast.g.terms()) {
    std::vector<std::pair<VarId, BigUint>> mapped;
    for (const auto& [v, e] : mono.factors())
      mapped.emplace_back(res.pool.id(fast.pool.name(v)), e);
    EXPECT_EQ(res.g.coeff(Monomial::from_pairs(std::move(mapped))), coeff);
  }
  EXPECT_EQ(res.g.num_terms(), fast.g.num_terms());
}

TEST(FullGb, AgreesWithExtractorOnRandomTinyCircuits) {
  const Gf2k field = Gf2k::make(2);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Netlist nl = test::make_random_word_circuit(2, seed, /*extra_gates=*/6);
    const FullGbResult res = abstract_by_full_groebner(nl, field);
    ASSERT_TRUE(res.completed) << "seed=" << seed;
    ASSERT_TRUE(res.found) << "seed=" << seed;
    const WordFunction fast = extract_word_function(nl, field);
    for (const auto& [mono, coeff] : fast.g.terms()) {
      std::vector<std::pair<VarId, BigUint>> mapped;
      for (const auto& [v, e] : mono.factors())
        mapped.emplace_back(res.pool.id(fast.pool.name(v)), e);
      EXPECT_EQ(res.g.coeff(Monomial::from_pairs(std::move(mapped))), coeff)
          << "seed=" << seed;
    }
    EXPECT_EQ(res.g.num_terms(), fast.g.num_terms()) << "seed=" << seed;
  }
}

TEST(FullGb, UnrefinedOrderAlsoWorksOnTinyCircuit) {
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const FullGbResult res = abstract_by_full_groebner(
      test::make_fig2_multiplier(), field, {}, /*use_rato=*/false);
  ASSERT_TRUE(res.completed);
  ASSERT_TRUE(res.found);
  const MPoly ab = MPoly::variable(&field, res.pool.id("A")) *
                   MPoly::variable(&field, res.pool.id("B"));
  EXPECT_EQ(res.g, ab);
}

TEST(FullGb, BudgetTripsOnLargerCircuit) {
  // The explosion the paper reports for slimgb: a 4-bit multiplier already
  // exceeds a small reduction budget.
  const Gf2k field = Gf2k::make(4);
  BuchbergerOptions opts;
  opts.max_reductions = 50;
  const FullGbResult res =
      abstract_by_full_groebner(make_mastrovito_multiplier(field), field, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_FALSE(res.found);
  EXPECT_GE(res.reductions, 50u);
}

}  // namespace
}  // namespace gfa
