#include "baselines/bdd/bdd.h"

#include <gtest/gtest.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

using bdd::kFalse;
using bdd::kTrue;
using bdd::Manager;
using bdd::NodeRef;

TEST(Bdd, TerminalRules) {
  Manager m;
  const NodeRef x = m.var(0);
  EXPECT_EQ(m.ite(kTrue, x, kFalse), x);
  EXPECT_EQ(m.ite(kFalse, x, kTrue), kTrue);
  EXPECT_EQ(m.ite(x, kTrue, kFalse), x);
  EXPECT_EQ(m.ite(x, x, x), x);
}

TEST(Bdd, CanonicityAndHashConsing) {
  Manager m;
  const NodeRef x = m.var(0), y = m.var(1);
  // x ∧ y built two ways yields the identical node.
  EXPECT_EQ(m.bdd_and(x, y), m.bdd_and(y, x));
  EXPECT_EQ(m.bdd_not(m.bdd_not(x)), x);
  EXPECT_EQ(m.bdd_or(x, y), m.bdd_not(m.bdd_and(m.bdd_not(x), m.bdd_not(y))));
  EXPECT_EQ(m.bdd_xor(x, x), kFalse);
  EXPECT_EQ(m.bdd_xor(x, kFalse), x);
}

TEST(Bdd, EvalTruthTables) {
  Manager m;
  const NodeRef x = m.var(0), y = m.var(1);
  const NodeRef f = m.bdd_xor(x, y);
  EXPECT_FALSE(m.eval(f, {false, false}));
  EXPECT_TRUE(m.eval(f, {true, false}));
  EXPECT_TRUE(m.eval(f, {false, true}));
  EXPECT_FALSE(m.eval(f, {true, true}));
  const NodeRef g = m.bdd_and(x, m.bdd_not(y));
  EXPECT_TRUE(m.eval(g, {true, false}));
  EXPECT_FALSE(m.eval(g, {true, true}));
}

TEST(Bdd, CountNodes) {
  Manager m;
  const NodeRef x = m.var(0), y = m.var(1);
  EXPECT_EQ(m.count_nodes(kTrue), 1u);
  EXPECT_EQ(m.count_nodes(x), 3u);  // node + two terminals
  const NodeRef f = m.bdd_and(x, y);
  EXPECT_EQ(m.count_nodes(f), 4u);
}

TEST(Bdd, NodeBudgetTrips) {
  Manager m(/*node_limit=*/16);
  std::vector<NodeRef> vars;
  for (unsigned i = 0; i < 16; ++i) vars.push_back(m.var(i % 8));
  EXPECT_THROW(
      {
        NodeRef acc = kFalse;
        for (unsigned i = 0; i < 8; ++i) acc = m.bdd_xor(acc, m.var(i));
        // Force growth with products of sums.
        NodeRef p = kTrue;
        for (unsigned i = 0; i < 8; ++i)
          p = m.bdd_and(p, m.bdd_or(m.var(i), m.var((i + 3) % 8)));
      },
      bdd::BddBudgetExceeded);
}

TEST(Bdd, NetlistBddsMatchSimulation) {
  const Netlist nl = test::make_random_word_circuit(3, 4, 30);
  Manager m;
  std::vector<unsigned> input_vars(nl.inputs().size());
  for (unsigned i = 0; i < input_vars.size(); ++i) input_vars[i] = i;
  const auto refs = build_netlist_bdds(m, nl, input_vars);
  // Exhaust all input assignments and compare with the simulator.
  const unsigned n = static_cast<unsigned>(nl.inputs().size());
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::uint64_t> lanes(n);
    std::vector<bool> assign(n);
    for (unsigned i = 0; i < n; ++i) {
      lanes[i] = (mask >> i) & 1;
      assign[i] = (mask >> i) & 1;
    }
    const auto sim = simulate(nl, lanes);
    for (NetId o : nl.outputs())
      ASSERT_EQ(m.eval(refs[o], assign), (sim[o] & 1) != 0) << "mask=" << mask;
  }
}

TEST(Bdd, MiterEquivalenceByCanonicity) {
  // Equivalent circuits produce pointer-identical BDDs for every output.
  const Gf2k field = Gf2k::make(4);
  const Netlist c1 = make_mastrovito_multiplier(field);
  const Netlist c2 = make_montgomery_multiplier_flat(field);
  Manager m;
  std::vector<unsigned> vars(c1.inputs().size());
  for (unsigned i = 0; i < vars.size(); ++i) vars[i] = i;
  const auto r1 = build_netlist_bdds(m, c1, vars);
  const auto r2 = build_netlist_bdds(m, c2, vars);
  const Word* z1 = c1.find_word("Z");
  const Word* z2 = c2.find_word("Z");
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_EQ(r1[z1->bits[i]], r2[z2->bits[i]]) << "output bit " << i;
}

TEST(Bdd, MiterDetectsBug) {
  const Gf2k field = Gf2k::make(3);
  const Netlist c1 = make_mastrovito_multiplier(field);
  BugDescription desc;
  Netlist c2 = c1;
  // Deterministic bug: flip the function of the net driving z0.
  const NetId z0 = c1.find_word("Z")->bits[0];
  c2 = inject_gate_type_bug(c1, z0, GateType::kXnor, &desc);
  Manager m;
  std::vector<unsigned> vars(c1.inputs().size());
  for (unsigned i = 0; i < vars.size(); ++i) vars[i] = i;
  const auto r1 = build_netlist_bdds(m, c1, vars);
  const auto r2 = build_netlist_bdds(m, c2, vars);
  EXPECT_NE(r1[c1.find_word("Z")->bits[0]], r2[c2.find_word("Z")->bits[0]]);
}

TEST(Bdd, MultiplierMiddleBitGrowsFast) {
  // The classic result: multiplier output BDDs grow super-polynomially. We
  // just check strong growth of the top output bit across k.
  std::size_t prev = 0;
  for (unsigned k : {4u, 6u, 8u}) {
    const Gf2k field = Gf2k::make(k);
    const Netlist nl = make_mastrovito_multiplier(field);
    Manager m;
    std::vector<unsigned> vars(nl.inputs().size());
    for (unsigned i = 0; i < vars.size(); ++i) vars[i] = i;
    const auto refs = build_netlist_bdds(m, nl, vars);
    const std::size_t sz = m.count_nodes(refs[nl.find_word("Z")->bits[k - 1]]);
    if (prev != 0) EXPECT_GT(sz, 2 * prev) << "k=" << k;
    prev = sz;
  }
}

}  // namespace
}  // namespace gfa
