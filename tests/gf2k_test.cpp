#include "gf/gf2k.h"

#include <gtest/gtest.h>

#include "baselines/interpolation.h"
#include "test_util.h"

namespace gfa {
namespace {

TEST(Gf2k, ConstructionFromDefaultPoly) {
  const Gf2k f = Gf2k::make(8);
  EXPECT_EQ(f.k(), 8u);
  EXPECT_EQ(f.modulus().degree(), 8);
  EXPECT_EQ(f.order(), BigUint(256));
}

TEST(Gf2k, NistFieldsConstruct) {
  for (unsigned k : {163u, 233u, 283u, 409u, 571u}) {
    const Gf2k f = Gf2k::make(k);
    EXPECT_EQ(f.k(), k);
    // Spot-check: α^{2^k} = α (Fermat for the generator image).
    EXPECT_EQ(f.frobenius(f.alpha(), k), f.alpha());
  }
}

TEST(Gf2k, F4MultiplicationTable) {
  // F_4 with P = x^2+x+1: elements {0, 1, α, α+1}; α·α = α+1, α·(α+1) = 1.
  const Gf2k f(Gf2Poly::from_bits(0b111));
  const auto alpha = f.alpha();
  const auto alpha1 = f.add(alpha, f.one());
  EXPECT_EQ(f.mul(alpha, alpha), alpha1);
  EXPECT_EQ(f.mul(alpha, alpha1), f.one());
  EXPECT_EQ(f.mul(alpha1, alpha1), alpha);
}

class FieldAxioms : public ::testing::TestWithParam<unsigned> {};

TEST_P(FieldAxioms, RandomizedLaws) {
  const Gf2k f = Gf2k::make(GetParam());
  test::Rng rng(GetParam() * 7919 + 1);
  for (int t = 0; t < 60; ++t) {
    const auto a = rng.elem(f), b = rng.elem(f), c = rng.elem(f);
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.add(a, a), f.zero());              // char 2
    EXPECT_EQ(f.mul(a, f.one()), a);
    EXPECT_EQ(f.mul(a, f.zero()), f.zero());
    EXPECT_EQ(f.square(a), f.mul(a, a));
    if (!a.is_zero()) {
      EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
      // Fermat: a^(q-1) = 1.
      EXPECT_EQ(f.pow(a, f.order() - BigUint(1)), f.one());
    }
    // Frobenius is additive: (a+b)^2 = a^2 + b^2.
    EXPECT_EQ(f.square(f.add(a, b)), f.add(f.square(a), f.square(b)));
    // a^q = a.
    EXPECT_EQ(f.pow(a, f.order()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallAndCryptoSizes, FieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 31, 32, 33, 64,
                                           67, 128, 163, 233));

TEST(Gf2k, InverseExhaustiveSmall) {
  for (unsigned k = 2; k <= 8; ++k) {
    const Gf2k f = Gf2k::make(k);
    for (const auto& a : all_field_elements(f)) {
      if (a.is_zero()) continue;
      EXPECT_EQ(f.mul(a, f.inv(a)), f.one()) << "k=" << k;
    }
  }
}

TEST(Gf2k, PowEdgeCases) {
  const Gf2k f = Gf2k::make(8);
  const auto a = f.from_bits(0x53);
  EXPECT_EQ(f.pow(a, BigUint(0)), f.one());
  EXPECT_EQ(f.pow(a, BigUint(1)), a);
  EXPECT_EQ(f.pow(f.zero(), BigUint(5)), f.zero());
  EXPECT_EQ(f.pow(a, BigUint(2)), f.square(a));
  EXPECT_EQ(f.pow(a, BigUint(5)), f.mul(f.square(f.square(a)), a));
}

TEST(Gf2k, AlphaPowMatchesRepeatedMul) {
  const Gf2k f = Gf2k::make(11);
  Gf2k::Elem cur = f.one();
  for (std::uint64_t e = 0; e < 40; ++e) {
    EXPECT_EQ(f.alpha_pow(e), cur);
    cur = f.mul(cur, f.alpha());
  }
}

TEST(Gf2k, FrobeniusIsIteratedSquare) {
  const Gf2k f = Gf2k::make(16);
  test::Rng rng(99);
  const auto a = rng.elem(f);
  EXPECT_EQ(f.frobenius(a, 0), a);
  EXPECT_EQ(f.frobenius(a, 3), f.square(f.square(f.square(a))));
  EXPECT_EQ(f.frobenius(a, 16), a);  // full orbit
}

TEST(Gf2k, ReduceExponent) {
  const Gf2k f = Gf2k::make(4);  // q = 16, q-1 = 15
  EXPECT_EQ(f.reduce_exponent(BigUint(0)), BigUint(0));
  EXPECT_EQ(f.reduce_exponent(BigUint(1)), BigUint(1));
  EXPECT_EQ(f.reduce_exponent(BigUint(15)), BigUint(15));
  EXPECT_EQ(f.reduce_exponent(BigUint(16)), BigUint(1));   // X^q = X
  EXPECT_EQ(f.reduce_exponent(BigUint(17)), BigUint(2));
  EXPECT_EQ(f.reduce_exponent(BigUint(30)), BigUint(15));
  EXPECT_EQ(f.reduce_exponent(BigUint(31)), BigUint(1));
}

TEST(Gf2k, ReduceExponentPreservesFunction) {
  // X^e and X^reduce(e) agree pointwise on the whole field.
  const Gf2k f = Gf2k::make(5);
  for (std::uint64_t e : {32ull, 33ull, 40ull, 62ull, 63ull, 100ull}) {
    const BigUint r = f.reduce_exponent(BigUint(e));
    for (const auto& a : all_field_elements(f)) {
      EXPECT_EQ(f.pow(a, BigUint(e)), f.pow(a, r)) << "e=" << e;
    }
  }
}

TEST(Gf2k, AlphaPowInverseLaw) {
  // α^a · α^{q-1-a} = 1 for several a, across two field sizes.
  for (unsigned k : {5u, 16u}) {
    const Gf2k f = Gf2k::make(k);
    const BigUint qm1 = f.order() - BigUint(1);
    for (std::uint64_t a : {1ull, 2ull, 7ull, 100ull}) {
      const auto x = f.alpha_pow(a);
      const auto y = f.pow(f.alpha(), qm1 - (BigUint(a) % qm1));
      EXPECT_EQ(f.mul(x, y), f.one()) << "k=" << k << " a=" << a;
      EXPECT_EQ(f.inv(x), y);
    }
  }
}

TEST(Gf2k, ToString) {
  const Gf2k f = Gf2k::make(4);
  EXPECT_EQ(f.to_string(f.zero()), "0");
  EXPECT_EQ(f.to_string(f.one()), "1");
  EXPECT_EQ(f.to_string(f.alpha()), "α");
  EXPECT_EQ(f.to_string(f.from_bits(0b1011)), "α^3 + α + 1");
}

TEST(Gf2k, FromBitsReduces) {
  const Gf2k f(Gf2Poly::from_bits(0b111));  // F_4
  // 0b100 = α^2 which reduces to α + 1.
  EXPECT_EQ(f.from_bits(0b100), f.add(f.alpha(), f.one()));
}

TEST(Gf2k, CheckedConstructionAcceptsIrreducible) {
  const Gf2k f(Gf2Poly::from_exponents({8, 4, 3, 1, 0}), /*check=*/true);
  EXPECT_EQ(f.k(), 8u);
}

}  // namespace
}  // namespace gfa
