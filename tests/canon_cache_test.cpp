// Tests for the service's canonical-form plumbing: the hex word codec and
// WordFunction serialization (abstraction/canon_serial.h), the CRC-guarded
// content-addressed cache (service/canon_cache.h) including the
// "cache:corrupt" fault site and LRU eviction, directory hygiene
// (worker::ensure_directory), and the checkpoint-path regression — a bad
// --checkpoint directory must be a clear kInvalidArgument, not a cryptic
// open error deep in the extractor.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "abstraction/canon_serial.h"
#include "abstraction/equivalence.h"
#include "abstraction/extractor.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "service/canon_cache.h"
#include "util/fault_inject.h"
#include "worker/checkpoint.h"

namespace gfa {
namespace {

struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

std::string temp_dir() {
  std::string tmpl = ::testing::TempDir() + "gfa_canon_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

// ---------------------------------------------------------------------------
// Hex word codec.

TEST(CanonSerial, HexCodecRoundTrips) {
  const std::vector<std::uint64_t> cases[] = {
      {},                      // zero
      {1},
      {0xdeadbeefull},
      {0xffffffffffffffffull},
      {0, 1},                  // 2^64
      {0x0123456789abcdefull, 0xfedcba9876543210ull, 7},
  };
  for (const auto& words : cases) {
    const std::string hex = hex_of_words(words);
    const Result<std::vector<std::uint64_t>> back = words_of_hex(hex);
    ASSERT_TRUE(back.ok()) << hex;
    EXPECT_EQ(*back, words) << hex;
  }
  EXPECT_EQ(hex_of_words({}), "0");
  EXPECT_EQ(hex_of_words({0x1a2b}), "1a2b");
}

TEST(CanonSerial, HexCodecRejectsGarbage) {
  EXPECT_FALSE(words_of_hex("").ok());
  EXPECT_FALSE(words_of_hex("12g4").ok());
  EXPECT_FALSE(words_of_hex("0x12").ok());
}

// ---------------------------------------------------------------------------
// Canonical-form serialization.

TEST(CanonSerial, WordFunctionRoundTripsAndStillMatches) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const WordFunction original = extract_word_function(spec, field);

  const std::string payload = encode_canon_form(original);
  const Result<WordFunction> decoded = decode_canon_form(payload, field);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();

  EXPECT_EQ(decoded->output_word, original.output_word);
  EXPECT_EQ(decoded->input_words, original.input_words);
  EXPECT_EQ(decoded->g.terms().size(), original.g.terms().size());
  // The decoded form must be interchangeable with the fresh one in the
  // coefficient match — both directions, and against the *other* circuit.
  EXPECT_TRUE(same_word_function(*decoded, original));
  const WordFunction other =
      extract_word_function(make_montgomery_multiplier_flat(field), field);
  EXPECT_TRUE(same_word_function(*decoded, other));
  // And a second round trip is bit-identical (canonical serialization).
  EXPECT_EQ(encode_canon_form(*decoded), payload);
}

TEST(CanonSerial, DecodeRejectsDamage) {
  const Gf2k field = Gf2k::make(4);
  const WordFunction fn =
      extract_word_function(make_mastrovito_multiplier(field), field);
  const std::string payload = encode_canon_form(fn);

  EXPECT_FALSE(decode_canon_form("", field).ok());
  EXPECT_FALSE(decode_canon_form("not json", field).ok());
  EXPECT_FALSE(decode_canon_form("{}", field).ok());
  // Version skew.
  std::string skewed = payload;
  const auto vpos = skewed.find("\"v\":1");
  ASSERT_NE(vpos, std::string::npos);
  skewed[vpos + 4] = '9';
  EXPECT_FALSE(decode_canon_form(skewed, field).ok());
  // A coefficient of degree >= k cannot be a canonical field element: 0x8 is
  // x^3, fine over GF(2^4) but not GF(2^2).
  const std::string high_coeff =
      R"({"v":1,"output_word":"Z","input_words":["A"],)"
      R"("terms":[{"m":[["A","1"]],"c":"8"}]})";
  EXPECT_TRUE(decode_canon_form(high_coeff, field).ok());
  EXPECT_FALSE(decode_canon_form(high_coeff, Gf2k::make(2)).ok());
  // A monomial over a variable outside the declared input words.
  const std::string stray_var =
      R"({"v":1,"output_word":"Z","input_words":["A"],)"
      R"("terms":[{"m":[["B","1"]],"c":"1"}]})";
  EXPECT_FALSE(decode_canon_form(stray_var, field).ok());
}

// ---------------------------------------------------------------------------
// Directory hygiene (shared by checkpoints and the cache).

TEST(EnsureDirectory, CreatesAndValidates) {
  const std::string dir = temp_dir();
  EXPECT_TRUE(worker::ensure_directory(dir).ok());          // already exists
  EXPECT_TRUE(worker::ensure_directory(dir + "/sub").ok()); // created now
  struct stat st;
  EXPECT_EQ(::stat((dir + "/sub").c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
}

TEST(EnsureDirectory, MissingParentIsInvalidArgument) {
  const std::string dir = temp_dir();
  const Status s = worker::ensure_directory(dir + "/no/such/parent");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("parent"), std::string::npos) << s.to_string();
}

TEST(EnsureDirectory, FileInTheWayIsInvalidArgument) {
  const std::string dir = temp_dir();
  const std::string file = dir + "/plain";
  std::ofstream(file) << "x";
  const Status s = worker::ensure_directory(file);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("not a directory"), std::string::npos)
      << s.to_string();
}

/// The regression the satellite asks for: the abstraction engine must answer
/// a bad checkpoint directory with kInvalidArgument naming the path, before
/// any extraction work happens — not a cryptic open failure afterwards.
TEST(EnsureDirectory, EngineRejectsBadCheckpointDirUpFront) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const auto engine = engine::EngineRegistry::global().require("abstraction");
  ASSERT_TRUE(engine.ok());
  engine::RunOptions options;
  options.checkpoint_dir = temp_dir() + "/missing/parent";
  const engine::EngineRun run =
      engine::run_engine(**engine, spec, spec, field, options);
  EXPECT_EQ(run.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status.message().find("parent"), std::string::npos)
      << run.status.to_string();
}

// ---------------------------------------------------------------------------
// The cache.

service::CacheKey key_of(std::uint64_t h) {
  return service::CacheKey{h, 8, 0x1234abcdull};
}

TEST(CanonCache, FrameValidatesEveryField) {
  const service::CacheKey key = key_of(42);
  const std::string framed = service::frame_entry(key, "payload");
  ASSERT_TRUE(service::unframe_entry(key, framed).ok());
  EXPECT_EQ(*service::unframe_entry(key, framed), "payload");

  // Truncation, bit rot, and a misfiled (wrong-key) entry must all fail.
  EXPECT_FALSE(service::unframe_entry(key, framed.substr(1)).ok());
  EXPECT_FALSE(
      service::unframe_entry(key, framed.substr(0, framed.size() - 1)).ok());
  std::string flipped = framed;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(service::unframe_entry(key, flipped).ok());
  EXPECT_FALSE(service::unframe_entry(key_of(43), framed).ok());
}

TEST(CanonCache, MissThenHit) {
  service::CanonCache cache({/*directory=*/"", /*max_bytes=*/1 << 20});
  ASSERT_TRUE(cache.open().ok());
  EXPECT_FALSE(cache.get(key_of(1)).has_value());
  cache.put(key_of(1), "the canonical form");
  const auto hit = cache.get(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "the canonical form");
  const service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CanonCache, InjectedCorruptionIsAMissNeverAWrongPayload) {
  Disarmer disarm;
  service::CanonCache cache({"", 1 << 20});
  ASSERT_TRUE(cache.open().ok());
  ASSERT_TRUE(fault::arm_spec("cache:corrupt").ok());
  cache.put(key_of(7), "soon to be damaged");
  // The armed fault flipped a stored byte after the CRC was computed: the
  // guard must catch it on the next get and answer "miss", counting the
  // drop. It must never return the damaged payload.
  EXPECT_FALSE(cache.get(key_of(7)).has_value());
  const service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.corrupt_dropped, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // Recompute-and-store heals it (the fault was one-shot).
  cache.put(key_of(7), "recomputed");
  ASSERT_TRUE(cache.get(key_of(7)).has_value());
  EXPECT_EQ(*cache.get(key_of(7)), "recomputed");
}

TEST(CanonCache, LruEvictionStaysUnderTheBound) {
  // Three ~100-byte framed entries under a bound that fits only two.
  service::CanonCache cache({"", 250});
  ASSERT_TRUE(cache.open().ok());
  const std::string payload(60, 'x');
  cache.put(key_of(1), payload);
  cache.put(key_of(2), payload);
  ASSERT_TRUE(cache.get(key_of(1)).has_value());  // 1 is now newer than 2
  cache.put(key_of(3), payload);                  // evicts 2, the LRU
  EXPECT_TRUE(cache.get(key_of(1)).has_value());
  EXPECT_FALSE(cache.get(key_of(2)).has_value());
  EXPECT_TRUE(cache.get(key_of(3)).has_value());
  const service::CacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 250u);
}

TEST(CanonCache, PersistsAcrossReopen) {
  const std::string dir = temp_dir() + "/cache";
  {
    service::CanonCache cache({dir, 1 << 20});
    ASSERT_TRUE(cache.open().ok());  // creates the directory
    cache.put(key_of(11), "persisted form");
  }
  service::CanonCache reopened({dir, 1 << 20});
  ASSERT_TRUE(reopened.open().ok());
  const auto hit = reopened.get(key_of(11));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "persisted form");
}

TEST(CanonCache, DamagedFileOnDiskIsDroppedOnGet) {
  const std::string dir = temp_dir() + "/cache";
  {
    service::CanonCache cache({dir, 1 << 20});
    ASSERT_TRUE(cache.open().ok());
    cache.put(key_of(21), "about to rot on disk");
  }
  // Flip one payload byte in the mirrored file, as a bad disk would.
  const std::string path =
      dir + "/" + service::key_name(key_of(21)) + ".cf";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(in));
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() - 6] ^= 0x01;
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  service::CanonCache reopened({dir, 1 << 20});
  ASSERT_TRUE(reopened.open().ok());
  EXPECT_FALSE(reopened.get(key_of(21)).has_value());
  EXPECT_EQ(reopened.stats().corrupt_dropped, 1u);
  // The damaged file is gone too: the next reopen starts clean.
  std::ifstream gone(path, std::ios::binary);
  EXPECT_FALSE(static_cast<bool>(gone));
}

TEST(CanonCache, BadCacheDirectoryIsInvalidArgument) {
  service::CanonCache cache({temp_dir() + "/no/parent/here", 1 << 20});
  const Status s = cache.open();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CanonCache, FingerprintSeparatesFields) {
  const Gf2k f8 = Gf2k::make(8);
  const Gf2k f16 = Gf2k::make(16);
  EXPECT_NE(service::cache_fingerprint(f8), service::cache_fingerprint(f16));
  EXPECT_EQ(service::cache_fingerprint(f8),
            service::cache_fingerprint(Gf2k::make(8)));
}

}  // namespace
}  // namespace gfa
