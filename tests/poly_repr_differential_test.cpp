#include <gtest/gtest.h>

#include <string>

#include "abstraction/extractor.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "gf/gf2k.h"

namespace gfa {
namespace {

// The packed tier (PackedMono keys, flat tails, recycled coefficients,
// prefetched probes) is a pure representation change: for any circuit it
// must produce the *identical* word-level polynomial — same MPoly, same
// rendering — as the legacy vector tier it replaced, which is kept frozen
// as the ablation baseline. These tests pin that equivalence on the two
// paper multiplier families across field sizes that exercise 1-word and
// multi-word coefficients.

void expect_identical_extraction(const Netlist& netlist, const Gf2k& field) {
  ExtractionOptions packed;
  packed.poly_repr = PolyRepr::kPacked;
  ExtractionOptions vector_repr;
  vector_repr.poly_repr = PolyRepr::kVector;

  const WordFunction a = extract_word_function(netlist, field, packed);
  const WordFunction b = extract_word_function(netlist, field, vector_repr);

  EXPECT_EQ(a.g, b.g);
  EXPECT_EQ(a.g.to_string(a.pool), b.g.to_string(b.pool));
  EXPECT_EQ(a.output_word, b.output_word);
  EXPECT_EQ(a.input_words, b.input_words);
  // Same chain, same peak — the tiers differ in layout, not in the terms
  // they materialize.
  EXPECT_EQ(a.stats.substitutions, b.stats.substitutions);
  EXPECT_EQ(a.stats.peak_terms, b.stats.peak_terms);
  EXPECT_EQ(a.stats.remainder_terms, b.stats.remainder_terms);
  EXPECT_EQ(a.stats.case1, b.stats.case1);
}

class PolyReprDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PolyReprDifferentialTest, MastrovitoExtractionIsReprIndependent) {
  const Gf2k field = Gf2k::make(GetParam());
  expect_identical_extraction(make_mastrovito_multiplier(field), field);
}

TEST_P(PolyReprDifferentialTest, MontgomeryExtractionIsReprIndependent) {
  const Gf2k field = Gf2k::make(GetParam());
  expect_identical_extraction(make_montgomery_multiplier_flat(field), field);
}

INSTANTIATE_TEST_SUITE_P(FieldSizes, PolyReprDifferentialTest,
                         ::testing::Values(8u, 32u, 64u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gfa
