#include "gf2/irreducible.h"

#include <gtest/gtest.h>

namespace gfa {
namespace {

TEST(Irreducible, DegreeOneIsIrreducible) {
  EXPECT_TRUE(is_irreducible(Gf2Poly::monomial(1)));
  EXPECT_TRUE(is_irreducible(Gf2Poly::from_bits(0b11)));
}

TEST(Irreducible, ConstantsAreNot) {
  EXPECT_FALSE(is_irreducible(Gf2Poly()));
  EXPECT_FALSE(is_irreducible(Gf2Poly::one()));
}

TEST(Irreducible, KnownIrreducibles) {
  EXPECT_TRUE(is_irreducible(Gf2Poly::from_bits(0b111)));        // x^2+x+1
  EXPECT_TRUE(is_irreducible(Gf2Poly::from_bits(0b1011)));       // x^3+x+1
  EXPECT_TRUE(is_irreducible(Gf2Poly::from_bits(0b1101)));       // x^3+x^2+1
  EXPECT_TRUE(is_irreducible(Gf2Poly::from_exponents({8, 4, 3, 1, 0})));  // AES
}

TEST(Irreducible, KnownReducibles) {
  EXPECT_FALSE(is_irreducible(Gf2Poly::from_bits(0b101)));   // (x+1)^2
  EXPECT_FALSE(is_irreducible(Gf2Poly::from_bits(0b110)));   // x(x+1)
  EXPECT_FALSE(is_irreducible(Gf2Poly::from_exponents({4, 0})));  // (x+1)^4? x^4+1=(x+1)^4
  // x^4 + x^2 + 1 = (x^2+x+1)^2
  EXPECT_FALSE(is_irreducible(Gf2Poly::from_exponents({4, 2, 0})));
}

TEST(Irreducible, MatchesBruteForceUpToDegree10) {
  // Brute force: f (deg d) is irreducible iff no factor of degree 1..d/2.
  auto brute = [](std::uint64_t fbits, int deg) {
    for (std::uint64_t g = 2; g < (1ull << (deg / 2 + 1)); ++g) {
      const Gf2Poly gp = Gf2Poly::from_bits(g);
      if (gp.degree() < 1) continue;
      if (Gf2Poly::from_bits(fbits).mod(gp).is_zero()) return false;
    }
    return true;
  };
  for (int deg = 2; deg <= 10; ++deg) {
    for (std::uint64_t f = (1ull << deg); f < (2ull << deg); ++f) {
      const Gf2Poly fp = Gf2Poly::from_bits(f);
      ASSERT_EQ(is_irreducible(fp), brute(f, deg))
          << "mismatch on " << fp.to_string();
    }
  }
}

TEST(Irreducible, NistPolynomialsAreIrreducible) {
  for (unsigned k : {163u, 233u, 283u, 409u, 571u}) {
    auto p = nist_polynomial(k);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->degree(), static_cast<int>(k));
    EXPECT_TRUE(is_irreducible(*p)) << "NIST k=" << k;
  }
  EXPECT_FALSE(nist_polynomial(100).has_value());
}

TEST(Irreducible, DefaultIrreducibleEveryKUpTo128) {
  for (unsigned k = 2; k <= 128; ++k) {
    const Gf2Poly p = default_irreducible(k);
    EXPECT_EQ(p.degree(), static_cast<int>(k));
    EXPECT_LE(p.weight(), 5) << "expected trinomial or pentanomial at k=" << k;
    EXPECT_TRUE(is_irreducible(p)) << "k=" << k;
  }
}

TEST(Irreducible, FindLowWeightPrefersTrinomials) {
  // k = 7 has the irreducible trinomial x^7 + x + 1.
  auto p = find_low_weight_irreducible(7);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->weight(), 3);
  // k = 8 has no irreducible trinomial; expect a pentanomial.
  auto p8 = find_low_weight_irreducible(8);
  ASSERT_TRUE(p8.has_value());
  EXPECT_EQ(p8->weight(), 5);
}

}  // namespace
}  // namespace gfa
