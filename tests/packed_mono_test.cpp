#include "abstraction/packed_mono.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "abstraction/bitpoly.h"

namespace gfa {
namespace {

PackedMono make(const std::vector<VarId>& ids) {
  return PackedMono::from_sorted(ids.data(), ids.size());
}

std::vector<VarId> ascending(std::size_t n, VarId start = 0, VarId step = 1) {
  std::vector<VarId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = start + step * VarId(i);
  return ids;
}

// ---------------------------------------------------------------------------
// Inline/spill boundary
// ---------------------------------------------------------------------------

TEST(PackedMonoTest, RoundTripsAcrossTheInlineBoundary) {
  // kMaxInline = 6: sizes up to 6 stay inline, 7+ spill. Both forms must
  // reproduce the exact id sequence.
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{6}, std::size_t{7}, std::size_t{8},
                        std::size_t{20}, std::size_t{100}}) {
    const std::vector<VarId> ids = ascending(n, 3, 17);
    const PackedMono m = make(ids);
    EXPECT_EQ(m.size(), n);
    EXPECT_EQ(m.spilled(), n > PackedMono::kMaxInline) << "n=" << n;
    EXPECT_EQ(m.ids(), ids) << "n=" << n;
    std::size_t i = 0;
    for (VarId v : m) EXPECT_EQ(v, ids[i++]);
  }
}

TEST(PackedMonoTest, LargeIdForcesSpillEvenWhenShort) {
  // Any id >= 2^20 cannot be packed into a 20-bit lane; the monomial spills
  // even with a single variable, and the choice is canonical per id set.
  const PackedMono inline_form = make({PackedMono::kMaxInlineId});
  EXPECT_FALSE(inline_form.spilled());
  EXPECT_EQ(inline_form[0], PackedMono::kMaxInlineId);

  const PackedMono spilled_form = make({PackedMono::kMaxInlineId + 1});
  EXPECT_TRUE(spilled_form.spilled());
  EXPECT_EQ(spilled_form[0], PackedMono::kMaxInlineId + 1);
  EXPECT_NE(inline_form, spilled_form);
}

TEST(PackedMonoTest, EqualIdSetsAreEqualAcrossConstructionRoutes) {
  const PackedMono a = make({1, 5, 9});
  const PackedMono b{9, 1, 5, 5};  // initializer list sorts and dedups
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(PackedMonoTest, WithoutCrossesBackToInline) {
  // A 7-variable spill dropping to 6 must return to the inline form —
  // canonicality means equality never compares across forms.
  const PackedMono seven = make(ascending(7));
  ASSERT_TRUE(seven.spilled());
  const PackedMono six = seven.without(3);
  EXPECT_FALSE(six.spilled());
  EXPECT_EQ(six, make({0, 1, 2, 4, 5, 6}));
  // Removing an absent variable is a no-op.
  EXPECT_EQ(seven.without(99), seven);
  // without() on the inline form filters in place.
  EXPECT_EQ(make({2, 4}).without(2), make({4}));
  EXPECT_EQ(make({2}).without(2), PackedMono{});
}

TEST(PackedMonoTest, MulIsSetUnionAcrossForms) {
  // Multilinear product = id-set union, whatever mix of forms the operands
  // use; results re-canonicalize (inline result from spilled operands).
  const PackedMono a = make({0, 2, 4});
  const PackedMono b = make({1, 2, 5});
  EXPECT_EQ(packed_mono_mul(a, b), make({0, 1, 2, 4, 5}));
  EXPECT_EQ(packed_mono_mul(a, PackedMono{}), a);
  EXPECT_EQ(packed_mono_mul(PackedMono{}, b), b);

  const PackedMono wide = make(ascending(10));
  ASSERT_TRUE(wide.spilled());
  EXPECT_EQ(packed_mono_mul(wide, make({3})), wide);  // subset absorbs
  const PackedMono crossing = packed_mono_mul(make({0, 1, 2}), make({3, 4, 5, 6}));
  EXPECT_TRUE(crossing.spilled());
  EXPECT_EQ(crossing, make(ascending(7)));

  const PackedMono big = make({PackedMono::kMaxInlineId + 7});
  EXPECT_EQ(packed_mono_mul(big, make({1})).size(), 2u);
  EXPECT_TRUE(packed_mono_mul(big, make({1})).spilled());
}

TEST(PackedMonoTest, OrderingMatchesVectorLexicographic) {
  // operator< must induce the same order std::vector<VarId> does, so sorted
  // renderings and checkpoint serializations agree across representations.
  const std::vector<std::vector<VarId>> sets = {
      {},        {0},         {0, 1},      {0, 5},
      {1},       {1, 2, 3},   {1, 2, 4},   ascending(7),
      ascending(8), {PackedMono::kMaxInlineId + 1}};
  for (const auto& x : sets) {
    for (const auto& y : sets) {
      EXPECT_EQ(make(x) < make(y), x < y)
          << "lex mismatch for sizes " << x.size() << " vs " << y.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Copy/move semantics and the spill pool
// ---------------------------------------------------------------------------

TEST(PackedMonoTest, CopyIsDeepForSpilledForm) {
  const std::vector<VarId> ids = ascending(12);
  PackedMono a = make(ids);
  PackedMono b = a;  // deep copy: b owns its own buffer
  PackedMono c;
  c = a;
  a = PackedMono{};  // destroys a's buffer
  EXPECT_EQ(b.ids(), ids);
  EXPECT_EQ(c.ids(), ids);
}

TEST(PackedMonoTest, MoveTransfersOwnershipAndEmptiesSource) {
  PackedMono a = make(ascending(9));
  const PackedMono moved = std::move(a);
  EXPECT_EQ(moved.size(), 9u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd reset
  PackedMono b;
  b = std::move(const_cast<PackedMono&>(moved));
  EXPECT_EQ(b.size(), 9u);
  // Self-move-assignment must not free the buffer.
  PackedMono& ref = b;
  b = std::move(ref);
  EXPECT_EQ(b.size(), 9u);
}

TEST(PackedMonoTest, SpillPoolRecyclesBuffers) {
  const SpillPoolStats before = packed_mono_pool_stats();
  {
    // First allocation warms the thread-local free list...
    PackedMono warm = make(ascending(8));
    EXPECT_GT(warm.spill_bytes(), 0u);
  }
  const SpillPoolStats mid = packed_mono_pool_stats();
  EXPECT_GT(mid.allocs, before.allocs);
  EXPECT_GT(mid.frees, before.frees);
  {
    // ... so an equal-class allocation right after is a pool hit.
    PackedMono reuse = make(ascending(8));
    const SpillPoolStats after = packed_mono_pool_stats();
    EXPECT_GT(after.pool_hits, before.pool_hits);
    EXPECT_GE(after.live_bytes, reuse.spill_bytes());
  }
  // Inline monomials never touch the pool.
  const SpillPoolStats base = packed_mono_pool_stats();
  PackedMono tiny = make({1, 2, 3});
  EXPECT_EQ(tiny.spill_bytes(), 0u);
  EXPECT_EQ(packed_mono_pool_stats().allocs, base.allocs);
}

// ---------------------------------------------------------------------------
// Hash quality — ports of the BitMonoHash regressions to the packed layout
// ---------------------------------------------------------------------------

template <typename Gen>
std::size_t max_bucket_load(std::size_t n, std::size_t buckets, unsigned shift,
                            Gen mono_of) {
  std::vector<std::size_t> load(buckets, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = mono_of(i).hash();
    ++load[(h >> shift) & (buckets - 1)];
  }
  std::size_t max = 0;
  for (std::size_t l : load) max = std::max(max, l);
  return max;
}

TEST(PackedMonoHashTest, ConsecutiveIdsSpreadAcrossAllHashBits) {
  // 65536 single-variable monomials into 1024 buckets: uniform expectation
  // 64 per bucket; 128 allows ~8σ of slack, on low and high hash bits.
  const auto single = [](std::size_t i) { return make({VarId(i)}); };
  EXPECT_LT(max_bucket_load(65536, 1024, 0, single), 128u);
  EXPECT_LT(max_bucket_load(65536, 1024, 54, single), 128u);
}

TEST(PackedMonoHashTest, QuadraticMonomialsSpreadAcrossAllHashBits) {
  // The {a_i, b_j} grid of a multiplier's partial products — exactly the
  // working set of the packed reduction chain.
  const auto pair = [](std::size_t i) {
    const VarId a = VarId(i % 256), b = VarId(256 + i / 256);
    return make({a, b});
  };
  EXPECT_LT(max_bucket_load(65536, 1024, 0, pair), 128u);
  EXPECT_LT(max_bucket_load(65536, 1024, 54, pair), 128u);
}

TEST(PackedMonoHashTest, SingleBitFlipAvalanchesHalfTheOutput) {
  std::uint64_t total_flipped = 0;
  const std::size_t trials = 4096;
  for (std::size_t i = 0; i < trials; ++i) {
    const VarId v = VarId(i);
    const std::uint64_t h1 = make({v}).hash();
    const std::uint64_t h2 = make({VarId(v ^ 1u)}).hash();
    total_flipped += __builtin_popcountll(h1 ^ h2);
  }
  const double avg = static_cast<double>(total_flipped) / trials;
  EXPECT_GT(avg, 28.0);
  EXPECT_LT(avg, 36.0);
}

TEST(PackedMonoHashTest, HashDependsOnEveryVariableSlot) {
  // Each of the six 20-bit lanes (three in w0, three in w1) must reach the
  // hash — the two words are mixed with distinct salts so lanes in w0 and
  // w1 cannot cancel.
  const std::vector<VarId> base = {1, 2, 3, 4, 5, 6};
  const PackedMono m = make(base);
  for (std::size_t slot = 0; slot < base.size(); ++slot) {
    std::vector<VarId> flipped = base;
    flipped[slot] += 10;
    std::sort(flipped.begin(), flipped.end());
    EXPECT_NE(m.hash(), make(flipped).hash()) << "slot " << slot;
  }
  EXPECT_NE(PackedMono{}.hash(), make({0}).hash());
  // Spilled hashes depend on every position too.
  EXPECT_NE(make(ascending(9)).hash(), make(ascending(9, 0, 2)).hash());
}

TEST(PackedMonoHashTest, AgreesWithFacadeHasher) {
  // BitMonoHash over the packed tier must be PackedMono::hash — the term
  // map and the polynomial facade must bucket identically.
  const PackedMono m = make({4, 7});
  EXPECT_EQ(PackedMonoHash{}(m), static_cast<std::size_t>(m.hash()));
}

}  // namespace
}  // namespace gfa
