#include "circuit/mutate.h"

#include <gtest/gtest.h>

#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

TEST(Mutate, GateTypeBugChangesFunction) {
  const Netlist nl = test::make_fig2_multiplier();
  BugDescription desc;
  const Netlist buggy =
      inject_gate_type_bug(nl, nl.find_net("r0"), GateType::kAnd, &desc);
  EXPECT_EQ(buggy.gate(buggy.find_net("r0")).type, GateType::kAnd);
  EXPECT_NE(desc.text.find("r0"), std::string::npos);
  EXPECT_NE(desc.text.find("xor -> and"), std::string::npos);
  // Original unchanged.
  EXPECT_EQ(nl.gate(nl.find_net("r0")).type, GateType::kXor);
  // Function differs on some input.
  const auto v1 = simulate(nl, {0b01, 0b10, 0b11, 0b00});
  const auto v2 = simulate(buggy, {0b01, 0b10, 0b11, 0b00});
  EXPECT_NE(v1[nl.find_net("z1")] & 0b11, v2[buggy.find_net("z1")] & 0b11);
}

TEST(Mutate, RejectsIncompatibleTypeSwap) {
  const Netlist nl = test::make_fig2_multiplier();
  EXPECT_THROW(inject_gate_type_bug(nl, nl.find_net("r0"), GateType::kNot),
               std::invalid_argument);
  EXPECT_THROW(inject_gate_type_bug(nl, nl.find_net("r0"), GateType::kXor),
               std::invalid_argument);
}

TEST(Mutate, WireBugReroutes) {
  const Netlist nl = test::make_fig2_multiplier();
  // This is exactly the paper's Example 5.1: r0's fanin s1 -> s0.
  BugDescription desc;
  const Netlist buggy = inject_wire_bug(nl, nl.find_net("r0"), 0,
                                        nl.find_net("s0"), &desc);
  EXPECT_EQ(buggy.gate(buggy.find_net("r0")).fanins[0], buggy.find_net("s0"));
  EXPECT_NE(desc.text.find("s1 -> s0"), std::string::npos);
  EXPECT_TRUE(buggy.validate().empty());
}

TEST(Mutate, WireBugRejectsIdentity) {
  const Netlist nl = test::make_fig2_multiplier();
  EXPECT_THROW(inject_wire_bug(nl, nl.find_net("r0"), 0, nl.find_net("s1")),
               std::invalid_argument);
}

TEST(Mutate, WireBugRejectsCycles) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_gate(GateType::kNot, {a}, "g1");
  const NetId g2 = nl.add_gate(GateType::kNot, {g1}, "g2");
  nl.mark_output(g2);
  EXPECT_THROW(inject_wire_bug(nl, g1, 0, g2), std::logic_error);
}

TEST(Mutate, RandomBugsAreLegalAndDeterministic) {
  const Netlist nl = test::make_fig2_multiplier();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    BugDescription d1, d2;
    const Netlist b1 = inject_random_bug(nl, seed, &d1);
    const Netlist b2 = inject_random_bug(nl, seed, &d2);
    EXPECT_TRUE(b1.validate().empty()) << d1.text;
    EXPECT_EQ(d1.text, d2.text);
    EXPECT_FALSE(d1.text.empty());
  }
}

}  // namespace
}  // namespace gfa
