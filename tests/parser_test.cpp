#include "circuit/parser.h"

#include <gtest/gtest.h>

#include "circuit/mastrovito.h"
#include "circuit/sim.h"
#include "gf/gf2k.h"
#include "test_util.h"

namespace gfa {
namespace {

constexpr const char* kMul2 = R"(
# 2-bit multiplier over F_4 (paper Fig. 2)
module mul2
input a0 a1 b0 b1
and s0 a0 b0
and s1 a0 b1
and s2 a1 b0
and s3 a1 b1
xor r0 s1 s2
xor z0 s0 s3
xor z1 r0 s3
output z0 z1
word A a0 a1
word B b0 b1
word Z z0 z1
endmodule
)";

TEST(Parser, ParsesFig2Multiplier) {
  const Netlist nl = parse_netlist(kMul2);
  EXPECT_EQ(nl.name(), "mul2");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.num_logic_gates(), 7u);
  ASSERT_NE(nl.find_word("A"), nullptr);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Parser, OutOfOrderGateDefinitions) {
  // z depends on t which is defined later in the file.
  const Netlist nl = parse_netlist(
      "input a b\nxor z t a\nand t a b\noutput z\n");
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_EQ(nl.num_logic_gates(), 2u);
}

TEST(Parser, RoundTripPreservesFunction) {
  const Gf2k field = Gf2k::make(5);
  const Netlist nl = make_mastrovito_multiplier(field);
  const Netlist back = parse_netlist(write_netlist(nl));
  EXPECT_EQ(back.name(), nl.name());
  EXPECT_EQ(back.num_logic_gates(), nl.num_logic_gates());
  // Behavioural equality on random vectors.
  test::Rng rng(21);
  std::vector<Gf2Poly> as, bs;
  for (int i = 0; i < 32; ++i) {
    as.push_back(rng.elem(field));
    bs.push_back(rng.elem(field));
  }
  const auto z1 = simulate_words(nl, *nl.find_word("Z"),
                                 {{nl.find_word("A"), as}, {nl.find_word("B"), bs}});
  const auto z2 = simulate_words(back, *back.find_word("Z"),
                                 {{back.find_word("A"), as}, {back.find_word("B"), bs}});
  EXPECT_EQ(z1, z2);
}

TEST(Parser, AcceptsAllGateTypesAndConstants) {
  const Netlist nl = parse_netlist(
      "input a b\nconst0 z0\nconst1 o1\nbuf c a\nnot d a\n"
      "and e a b\nor f a b\nxor g a b\nnand h a b\nnor i a b\nxnor j a b\n"
      "and wide a b c d\noutput wide\n");
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_EQ(nl.gate(nl.find_net("wide")).fanins.size(), 4u);
}

TEST(Parser, ErrorOnDuplicateNet) {
  EXPECT_THROW(parse_netlist("input a\nnot a a\n"), ParseError);
  EXPECT_THROW(parse_netlist("input a\nnot x a\nnot x a\n"), ParseError);
}

TEST(Parser, ErrorOnUndefinedNet) {
  EXPECT_THROW(parse_netlist("input a\nand z a ghost\noutput z\n"), ParseError);
  EXPECT_THROW(parse_netlist("input a\noutput ghost\n"), ParseError);
  EXPECT_THROW(parse_netlist("input a\nword W ghost\n"), ParseError);
}

TEST(Parser, ErrorOnCycle) {
  EXPECT_THROW(parse_netlist("input a\nand x y a\nand y x a\noutput x\n"),
               ParseError);
}

TEST(Parser, ErrorOnBadArity) {
  EXPECT_THROW(parse_netlist("input a\nnot z a a\n"), ParseError);
  EXPECT_THROW(parse_netlist("input a\nand z a\n"), ParseError);
  EXPECT_THROW(parse_netlist("input a\nconst0 z a\n"), ParseError);
}

TEST(Parser, ErrorOnUnknownDirective) {
  EXPECT_THROW(parse_netlist("wire a b c\n"), ParseError);
}

TEST(Parser, ErrorMessageCarriesLineNumber) {
  try {
    parse_netlist("input a\n\nfrob z a\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line_number, 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, FileRoundTrip) {
  const Netlist nl = parse_netlist(kMul2);
  const std::string path = ::testing::TempDir() + "/mul2.net";
  write_netlist_file(nl, path);
  const Netlist back = read_netlist_file(path);
  EXPECT_EQ(back.num_logic_gates(), nl.num_logic_gates());
  EXPECT_EQ(back.words().size(), 3u);
  EXPECT_THROW(read_netlist_file("/nonexistent/xyz.net"), std::runtime_error);
}

// A deep dependency chain declared deepest-first: emitting the first declared
// gate requires the whole chain, which must not overflow the call stack (the
// emitter is an explicit work stack; found by tools/fuzz_parser).
TEST(Parser, DeepReversedChainDoesNotOverflowTheStack) {
  const int depth = 100000;
  std::string text = "module deep\ninput a\n";
  for (int d = depth - 1; d >= 1; --d)
    text += "buf c" + std::to_string(d) + " c" + std::to_string(d - 1) + "\n";
  text += "buf c0 a\n";
  text += "output c" + std::to_string(depth - 1) + "\nendmodule\n";
  const Netlist nl = parse_netlist(text);
  EXPECT_EQ(nl.num_logic_gates(), static_cast<std::size_t>(depth));
}

TEST(Parser, CycleInReversedChainIsAParseErrorNotARunaway) {
  EXPECT_THROW(parse_netlist("module m\ninput a\n"
                             "buf x y\nbuf y x\noutput x\nendmodule\n"),
               ParseError);
}

}  // namespace
}  // namespace gfa
