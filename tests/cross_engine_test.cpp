// Cross-engine consistency: for a fleet of randomly mutated multipliers, the
// four independent verification engines — canonical-form abstraction, the
// Lv et al. ideal-membership baseline, the SAT miter, and the BDD miter —
// must return the *same* equivalent/buggy verdict on every circuit. Each
// engine has a completely different soundness argument, so agreement across
// all mutants is a strong end-to-end check of the whole repository.

#include <gtest/gtest.h>

#include "abstraction/equivalence.h"
#include "baselines/bdd/bdd.h"
#include "baselines/ideal_membership.h"
#include "baselines/miter.h"
#include "baselines/sat/solver.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "test_util.h"

namespace gfa {
namespace {

struct Verdicts {
  bool abstraction;
  bool ideal_membership;
  bool sat;
  bool bdd;
};

Verdicts all_engines(const Netlist& spec, const Netlist& impl, const Gf2k& field) {
  Verdicts v{};
  v.abstraction = check_equivalence(spec, impl, field).equivalent;
  v.ideal_membership =
      verify_multiplier_by_ideal_membership(impl, field).is_member;
  {
    const Netlist miter = make_miter(spec, impl);
    const Cnf cnf = tseitin_encode(miter, miter.outputs()[0]);
    sat::Solver solver;
    for (const auto& clause : cnf.clauses) solver.add_clause(clause);
    v.sat = solver.solve() == sat::Result::kUnsat;
  }
  {
    bdd::Manager manager;
    std::vector<unsigned> vars(spec.inputs().size());
    for (unsigned i = 0; i < vars.size(); ++i) vars[i] = i;
    const auto r1 = build_netlist_bdds(manager, spec, vars);
    const auto r2 = build_netlist_bdds(manager, impl, vars);
    v.bdd = true;
    const Word* z1 = spec.find_word("Z");
    const Word* z2 = impl.find_word("Z");
    for (std::size_t i = 0; i < z1->bits.size(); ++i)
      if (r1[z1->bits[i]] != r2[z2->bits[i]]) v.bdd = false;
  }
  return v;
}

class CrossEngine : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrossEngine, AllEnginesAgreeOnMutants) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist golden = make_montgomery_multiplier_flat(field);

  // The unmutated implementation: everyone must say equivalent.
  const Verdicts clean = all_engines(spec, golden, field);
  EXPECT_TRUE(clean.abstraction && clean.ideal_membership && clean.sat &&
              clean.bdd);

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BugDescription desc;
    const Netlist impl = inject_random_bug(golden, seed, &desc);
    const Verdicts v = all_engines(spec, impl, field);
    EXPECT_EQ(v.abstraction, v.ideal_membership)
        << "seed=" << seed << " bug=" << desc.text;
    EXPECT_EQ(v.abstraction, v.sat) << "seed=" << seed << " bug=" << desc.text;
    EXPECT_EQ(v.abstraction, v.bdd) << "seed=" << seed << " bug=" << desc.text;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossEngine, ::testing::Values(3, 4, 5));

TEST(CrossEngine, MiterRejectsMismatchedInterfaces) {
  const Gf2k f2 = Gf2k::make(2);
  const Gf2k f3 = Gf2k::make(3);
  const Netlist a = make_mastrovito_multiplier(f2);
  const Netlist b = make_mastrovito_multiplier(f3);
  EXPECT_THROW(make_miter(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace gfa
