// Cross-engine consistency: for a fleet of randomly mutated multipliers,
// every verification engine in the registry — canonical-form abstraction,
// the Lv et al. ideal-membership baseline, the SAT miter, fraiging, the BDD
// miter, and budget-capped full Gröbner — must return the *same*
// equivalent/buggy verdict on every circuit it can decide. Each engine has a
// completely different soundness argument, so agreement across all mutants
// is a strong end-to-end check of the whole repository.

#include <gtest/gtest.h>

#include "baselines/miter.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "test_util.h"

namespace gfa {
namespace {

using engine::EngineRegistry;
using engine::EngineRun;
using engine::RunOptions;
using engine::Verdict;

/// Runs the registry fleet on the pair; engines must not *fail* (non-OK
/// Status) on these well-formed instances, but may return kUnknown.
/// full-gb is excluded: unguided Buchberger on 33 pairs of circuits would
/// dominate this suite by orders of magnitude, and its verdict parity is
/// pinned separately (at sizes it completes) in engine_test.cpp. Everything
/// else runs unbudgeted, as the original hand-rolled version of this test
/// did.
std::vector<EngineRun> run_fleet(const Netlist& spec, const Netlist& impl,
                                 const Gf2k& field) {
  std::vector<EngineRun> runs;
  for (const engine::EquivEngine* e : EngineRegistry::global().engines()) {
    if (e->name() == "full-gb") continue;
    runs.push_back(engine::run_engine(*e, spec, impl, field, RunOptions{}));
  }
  return runs;
}

class CrossEngine : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrossEngine, AllEnginesAgreeOnMutants) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist golden = make_montgomery_multiplier_flat(field);

  // The unmutated implementation: every definitive engine must say
  // equivalent, and the paper's abstraction must be definitive.
  for (const EngineRun& run : run_fleet(spec, golden, field)) {
    ASSERT_TRUE(run.status.ok()) << run.engine << ": " << run.status.to_string();
    if (run.engine == "abstraction") {
      EXPECT_EQ(run.verdict, Verdict::kEquivalent);
    }
    if (run.verdict != Verdict::kUnknown) {
      EXPECT_EQ(run.verdict, Verdict::kEquivalent)
          << run.engine << ": " << run.detail;
    }
  }

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BugDescription desc;
    const Netlist impl = inject_random_bug(golden, seed, &desc);
    const std::vector<EngineRun> runs = run_fleet(spec, impl, field);
    // The abstraction verdict is the reference every other definitive
    // verdict must match.
    const EngineRun* reference = nullptr;
    for (const EngineRun& run : runs)
      if (run.engine == "abstraction") reference = &run;
    ASSERT_NE(reference, nullptr);
    ASSERT_TRUE(reference->status.ok()) << reference->status.to_string();
    ASSERT_NE(reference->verdict, Verdict::kUnknown);
    for (const EngineRun& run : runs) {
      ASSERT_TRUE(run.status.ok())
          << run.engine << ": " << run.status.to_string();
      if (run.verdict != Verdict::kUnknown) {
        EXPECT_EQ(run.verdict, reference->verdict)
            << run.engine << " disagrees: seed=" << seed
            << " bug=" << desc.text;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossEngine, ::testing::Values(3, 4, 5));

TEST(CrossEngine, MiterRejectsMismatchedInterfaces) {
  const Gf2k f2 = Gf2k::make(2);
  const Gf2k f3 = Gf2k::make(3);
  const Netlist a = make_mastrovito_multiplier(f2);
  const Netlist b = make_mastrovito_multiplier(f3);
  EXPECT_THROW(make_miter(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace gfa
