// Tests for the portfolio meta-engine (src/engine/portfolio.cpp): escalation
// order, fall-through on mem-out/unknown, skip-after-definitive, racing, the
// composed failure status, and the attempt history in the JSON report.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "engine/registry.h"
#include "engine/report.h"

namespace gfa::engine {
namespace {

const EquivEngine& portfolio() {
  return *EngineRegistry::global().find("portfolio");
}

TEST(Portfolio, IsRegisteredAndManagesItsOwnBudgets) {
  EXPECT_EQ(portfolio().name(), "portfolio");
  EXPECT_TRUE(portfolio().manages_budget());
  EXPECT_FALSE(
      EngineRegistry::global().find("abstraction")->manages_budget());
}

TEST(Portfolio, FirstAttemptMemsOutFallbackDecidesEquivalent) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.max_terms = 2;  // deterministic mem-out for the abstraction attempt
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kEquivalent);
  EXPECT_NE(r->detail.find("sat"), std::string::npos);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_EQ(r->attempts[0].engine, "abstraction");
  EXPECT_FALSE(r->attempts[0].skipped);
  EXPECT_EQ(r->attempts[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r->attempts[1].engine, "sat");
  EXPECT_TRUE(r->attempts[1].status.ok());
  EXPECT_EQ(r->attempts[1].verdict, Verdict::kEquivalent);
  EXPECT_EQ(r->stats.at("attempts_run"), 2.0);
}

TEST(Portfolio, FallbackAlsoDecidesNotEquivalentOnABuggyImpl) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl =
      inject_random_bug(make_montgomery_multiplier_flat(field), 1);
  RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.max_terms = 2;
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kNotEquivalent);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_EQ(r->attempts[0].status.code(), StatusCode::kResourceExhausted);
}

TEST(Portfolio, DefinitiveFirstAttemptSkipsTheRest) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  const Result<VerifyResult> r =
      portfolio().verify(spec, impl, field, RunOptions{});
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kEquivalent);
  ASSERT_EQ(r->attempts.size(), 3u);  // default abstraction → IM → sat
  EXPECT_FALSE(r->attempts[0].skipped);
  EXPECT_TRUE(r->attempts[1].skipped);
  EXPECT_TRUE(r->attempts[2].skipped);
  EXPECT_NE(r->attempts[1].detail.find("abstraction"), std::string::npos);
  EXPECT_EQ(r->stats.at("attempts_run"), 1.0);
  EXPECT_EQ(r->stats.at("attempts_total"), 3.0);
}

TEST(Portfolio, UnknownAttemptFallsThroughToADecider) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"full-gb", "sat"};
  options.gb_max_reductions = 1;  // full-gb runs dry: Ok(kUnknown)
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kEquivalent);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_TRUE(r->attempts[0].status.ok());
  EXPECT_EQ(r->attempts[0].verdict, Verdict::kUnknown);
}

TEST(Portfolio, AllAttemptsUndecidedIsOkUnknown) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"full-gb"};
  options.gb_max_reductions = 1;
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kUnknown);
  EXPECT_NE(r->detail.find("full-gb"), std::string::npos);
}

TEST(Portfolio, AllAttemptsFailedComposesAFailureStatus) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"abstraction", "ideal-membership"};
  options.max_terms = 2;  // both attempts mem out
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("all 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("abstraction"), std::string::npos);
}

TEST(Portfolio, RejectsItselfInTheLineup) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"portfolio"};
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Portfolio, RejectsUnknownEngineNames) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"no-such-engine"};
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Portfolio, RaceModeProducesADefinitiveVerdict) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.portfolio_race = true;
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kEquivalent);
  EXPECT_EQ(r->attempts.size(), 2u);
}

TEST(Portfolio, RaceReleasesEveryLoserBudgetLease) {
  // Regression: a cancelled race loser must unwind through its BudgetLease
  // destructors before the winner's result is reported. Any bytes an attempt
  // still held leased at retirement land in budget_leaked_bytes — which must
  // be zero. k = 32 makes the losing engines do real leased work before the
  // winner cancels them.
  const Gf2k field = Gf2k::make(32);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"abstraction", "sat", "bdd"};
  options.portfolio_race = true;
  options.memory_budget_bytes = std::size_t{1} << 30;
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, Verdict::kEquivalent);
  ASSERT_NE(r->stats.find("budget_leaked_bytes"), r->stats.end());
  EXPECT_EQ(r->stats.at("budget_leaked_bytes"), 0.0);
}

TEST(Portfolio, EscalationReportsZeroLeakedBudgetBytes) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.max_terms = 2;  // first attempt mem-outs, then sat decides
  options.memory_budget_bytes = std::size_t{1} << 30;
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->stats.at("budget_leaked_bytes"), 0.0);
}

TEST(Portfolio, PerAttemptBudgetsGivePeaksPerAttempt) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"abstraction"};
  options.memory_budget_bytes = std::size_t{1} << 30;
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r->attempts.size(), 1u);
  EXPECT_GT(r->attempts[0].budget_peak_bytes, 0u);
}

TEST(Portfolio, AttemptHistoryLandsInTheJsonReport) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.max_terms = 2;
  const EngineRun run =
      run_engine(portfolio(), spec, impl, field, options);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  std::ostringstream out;
  write_run_report(out, "verify", 4, {run});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"attempts\""), std::string::npos);
  EXPECT_NE(json.find("\"abstraction\""), std::string::npos);
  EXPECT_NE(json.find("\"sat\""), std::string::npos);
  EXPECT_NE(json.find("kResourceExhausted"), std::string::npos);
}

TEST(Portfolio, ExpiredParentDeadlineAbortsTheWholeRun) {
  const Gf2k field = Gf2k::make(32);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  RunOptions options;
  options.portfolio_engines = {"full-gb", "sat"};
  options.control.deadline = Deadline::after(0.001);
  const Result<VerifyResult> r = portfolio().verify(spec, impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("attempt"), std::string::npos);
}

}  // namespace
}  // namespace gfa::engine
