#include "abstraction/bitpoly.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "abstraction/rewriter.h"
#include "test_util.h"

namespace gfa {
namespace {

class BitPolyTest : public ::testing::Test {
 protected:
  BitPolyTest() : field_(Gf2k::make(4)) {
    x_ = pool_.intern("x", VarKind::kBit);
    y_ = pool_.intern("y", VarKind::kBit);
    z_ = pool_.intern("z", VarKind::kBit);
  }
  BitPoly var(VarId v) { return BitPoly::variable(&field_, v); }
  BitPoly one() { return BitPoly::constant(&field_, field_.one()); }
  Gf2k field_;
  VarPool pool_;
  VarId x_, y_, z_;
};

TEST_F(BitPolyTest, MonoMulIsUnion) {
  EXPECT_EQ(bitmono_mul(BitMono{0, 2}, BitMono{1, 2}), (BitMono{0, 1, 2}));
  EXPECT_EQ(bitmono_mul(BitMono{}, BitMono{3}), (BitMono{3}));
  EXPECT_EQ(bitmono_mul(BitMono{5}, BitMono{5}), (BitMono{5}));  // x² = x
  // The legacy tier's union agrees.
  EXPECT_EQ(bitmono_mul(LegacyBitMono{0, 2}, LegacyBitMono{1, 2}),
            (LegacyBitMono{0, 1, 2}));
}

TEST_F(BitPolyTest, AdditionCancels) {
  BitPoly p = var(x_) + var(y_);
  EXPECT_EQ(p.num_terms(), 2u);
  p += var(x_);
  EXPECT_EQ(p.num_terms(), 1u);
  EXPECT_EQ(p.coeff({y_}), field_.one());
  EXPECT_TRUE(p.coeff({x_}).is_zero());
}

TEST_F(BitPolyTest, MultiplicationIsMultilinear) {
  // (x + y)·(x + y) = x + y over bits (x² = x, cross terms cancel).
  const BitPoly s = var(x_) + var(y_);
  EXPECT_EQ(s * s, s);
  // (x + 1)(y + 1) = xy + x + y + 1.
  const BitPoly p = (var(x_) + one()) * (var(y_) + one());
  EXPECT_EQ(p.num_terms(), 4u);
  EXPECT_EQ(p.coeff({x_, y_}), field_.one());
  EXPECT_EQ(p.coeff({}), field_.one());
}

TEST_F(BitPolyTest, ScaledMultipliesCoefficients) {
  const auto alpha = field_.alpha();
  const BitPoly p = (var(x_) + one()).scaled(alpha);
  EXPECT_EQ(p.coeff({x_}), alpha);
  EXPECT_EQ(p.coeff({}), alpha);
  EXPECT_TRUE(p.scaled(field_.zero()).is_zero());
}

TEST_F(BitPolyTest, EvalAgreesWithStructure) {
  // p = α·x·y + y + 1.
  BitPoly p(&field_);
  p.add_term({x_, y_}, field_.alpha());
  p.add_term({y_}, field_.one());
  p.add_term({}, field_.one());
  EXPECT_EQ(p.eval({true, true, false}),
            field_.add(field_.alpha(), field_.zero()));  // α + 1 + 1
  EXPECT_EQ(p.eval({true, false, false}), field_.one());
  EXPECT_EQ(p.eval({false, true, false}), field_.zero());  // 1 + 1
}

TEST_F(BitPolyTest, MaxMonomialSize) {
  BitPoly p(&field_);
  EXPECT_EQ(p.max_monomial_size(), 0u);
  p.add_term({}, field_.one());
  EXPECT_EQ(p.max_monomial_size(), 0u);
  p.add_term({x_, y_, z_}, field_.one());
  EXPECT_EQ(p.max_monomial_size(), 3u);
}

TEST_F(BitPolyTest, ToStringDeterministic) {
  BitPoly p(&field_);
  p.add_term({y_}, field_.one());
  p.add_term({x_}, field_.alpha());
  EXPECT_EQ(p.to_string(pool_), "α*x + y");
}

TEST_F(BitPolyTest, RewriterSubstitutesOnlyMatchingTerms) {
  // r = α·x·y + z ; substitute x := z + 1 → α·y·z + α·y + z.
  BackwardRewriter rw(field_, {true, true, true});
  rw.add({x_, y_}, field_.alpha());
  rw.add({z_}, field_.one());
  rw.substitute(x_, var(z_) + one());
  EXPECT_EQ(rw.num_terms(), 3u);
  EXPECT_EQ(rw.terms().at({y_, z_}), field_.alpha());
  EXPECT_EQ(rw.terms().at({y_}), field_.alpha());
  EXPECT_EQ(rw.terms().at({z_}), field_.one());
}

TEST_F(BitPolyTest, RewriterMultilinearCancellation) {
  // α·x·y with x := y + 1 is (y+1)·y = y² + y = 0 under x² = x.
  BackwardRewriter rw(field_, {true, true, true});
  rw.add({x_, y_}, field_.alpha());
  rw.substitute(x_, var(y_) + one());
  EXPECT_EQ(rw.num_terms(), 0u);
}

TEST_F(BitPolyTest, RewriterHandlesCancellationThenReuse) {
  BackwardRewriter rw(field_, {true, true, true});
  rw.add({x_}, field_.one());
  rw.add({x_}, field_.one());  // cancels to zero
  EXPECT_EQ(rw.num_terms(), 0u);
  rw.add({x_}, field_.alpha());  // re-created after cancellation
  rw.substitute(x_, var(y_));
  EXPECT_EQ(rw.terms().at({y_}), field_.alpha());
}

TEST_F(BitPolyTest, RewriterBudget) {
  BackwardRewriter rw(field_, {true, true, true}, /*max_terms=*/1);
  rw.add({x_}, field_.one());
  EXPECT_THROW(rw.add({y_}, field_.one()), RewriteBudgetExceeded);
}

TEST_F(BitPolyTest, GateTailPolynomials) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  auto tail = [&](GateType t, std::vector<NetId> fi) {
    return gate_tail_bitpoly(field_, Netlist::Gate{t, std::move(fi), "g"});
  };
  // Evaluate each tail on all four (a, b) points against gate semantics.
  struct Case {
    GateType type;
    bool expect[4];  // index = a + 2b
  };
  const Case cases[] = {
      {GateType::kAnd, {false, false, false, true}},
      {GateType::kOr, {false, true, true, true}},
      {GateType::kXor, {false, true, true, false}},
      {GateType::kNand, {true, true, true, false}},
      {GateType::kNor, {true, false, false, false}},
      {GateType::kXnor, {true, false, false, true}},
  };
  for (const Case& c : cases) {
    const BitPoly p = tail(c.type, {a, b});
    for (int i = 0; i < 4; ++i) {
      std::vector<bool> assign(2);
      assign[a] = i & 1;
      assign[b] = i & 2;
      EXPECT_EQ(!p.eval(assign).is_zero(), c.expect[i])
          << gate_type_name(c.type) << " at " << i;
    }
  }
  EXPECT_EQ(tail(GateType::kNot, {a}), var(VarId{a}) + one());
  EXPECT_EQ(tail(GateType::kBuf, {a}), var(VarId{a}));
  EXPECT_TRUE(tail(GateType::kConst0, {}).is_zero());
  EXPECT_EQ(tail(GateType::kConst1, {}), one());
}

// Distribution regressions for BitMonoHash (the splitmix64 mixer, applied to
// the legacy vector monomials of the kVector tier). The term maps hash
// monomials over *consecutive* net ids — exactly the adversarial input for
// the old xor-whole-VarId FNV loop — so the tests bucket realistic monomial
// populations by the bits an unordered_map (or a shard selector) would
// actually consume. The packed tier's word-level hash has the same
// regressions in packed_mono_test.cpp.

/// Max bucket load over `buckets` power-of-two buckets selected by the hash
/// bits starting at `shift`.
template <typename Gen>
std::size_t max_bucket_load(std::size_t n, std::size_t buckets, unsigned shift,
                            Gen mono_of) {
  BitMonoHash hash;
  std::vector<std::size_t> load(buckets, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = hash(mono_of(i));
    ++load[(h >> shift) & (buckets - 1)];
  }
  std::size_t max = 0;
  for (std::size_t l : load) max = std::max(max, l);
  return max;
}

TEST(BitMonoHashTest, ConsecutiveIdsSpreadAcrossAllHashBits) {
  // 65536 single-variable monomials over consecutive ids into 1024 buckets:
  // uniform expectation 64 per bucket; 128 allows ~8σ of slack. Checked on
  // the low bits and on the high bits (the old hash left the top bits nearly
  // constant for small ids).
  const auto single = [](std::size_t i) { return LegacyBitMono{VarId(i)}; };
  EXPECT_LT(max_bucket_load(65536, 1024, 0, single), 128u);
  EXPECT_LT(max_bucket_load(65536, 1024, 54, single), 128u);
}

TEST(BitMonoHashTest, QuadraticMonomialsSpreadAcrossAllHashBits) {
  // The {a_i, b_j} grid of a multiplier's partial products.
  const auto pair = [](std::size_t i) {
    const VarId a = VarId(i % 256), b = VarId(256 + i / 256);
    return LegacyBitMono{a, b};
  };
  EXPECT_LT(max_bucket_load(65536, 1024, 0, pair), 128u);
  EXPECT_LT(max_bucket_load(65536, 1024, 54, pair), 128u);
}

TEST(BitMonoHashTest, SingleBitFlipAvalanchesHalfTheOutput) {
  // Flipping one input bit should flip ~32 output bits; the old single
  // multiply left most high bits untouched for small ids.
  BitMonoHash hash;
  std::uint64_t total_flipped = 0;
  const std::size_t trials = 4096;
  for (std::size_t i = 0; i < trials; ++i) {
    const VarId v = VarId(i);
    const std::uint64_t h1 = hash(LegacyBitMono{v});
    const std::uint64_t h2 = hash(LegacyBitMono{VarId(v ^ 1u)});
    total_flipped += __builtin_popcountll(h1 ^ h2);
  }
  const double avg = static_cast<double>(total_flipped) / trials;
  EXPECT_GT(avg, 28.0);
  EXPECT_LT(avg, 36.0);
}

TEST(BitMonoHashTest, HashDependsOnEveryVariable) {
  BitMonoHash hash;
  EXPECT_NE(hash(LegacyBitMono{1, 2, 3}), hash(LegacyBitMono{1, 2, 4}));
  EXPECT_NE(hash(LegacyBitMono{1, 2, 3}), hash(LegacyBitMono{0, 2, 3}));
  EXPECT_NE(hash(LegacyBitMono{}), hash(LegacyBitMono{0}));
}

}  // namespace
}  // namespace gfa
