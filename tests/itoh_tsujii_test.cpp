#include "circuit/itoh_tsujii.h"

#include <gtest/gtest.h>

#include "baselines/interpolation.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

class ItohTsujii : public ::testing::TestWithParam<unsigned> {};

TEST_P(ItohTsujii, ComposedPolynomialIsXToQMinus2) {
  // Hierarchical abstraction of the whole inverter = the canonical inversion
  // polynomial X^{q-2} — for every ladder size, including ones where flat
  // gate-level abstraction would be exponentially infeasible.
  const Gf2k field = Gf2k::make(GetParam());
  const ItohTsujiiHierarchy h = make_itoh_tsujii(field);
  const HierarchicalAbstraction ha = abstract_hierarchy(h.graph, field);
  const MPoly expect = inversion_spec(field, ha.composed.pool.id("A"));
  EXPECT_EQ(ha.composed.g, expect) << ha.composed.g.to_string(ha.composed.pool);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ItohTsujii,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 11, 16, 23, 32));

TEST(ItohTsujiiDetail, MatchesFieldInversionBySimulation) {
  // Flatten the hierarchy by hand through the simulator: evaluate each block
  // in dataflow order on concrete values and compare against field.inv().
  const Gf2k field = Gf2k::make(8);
  const ItohTsujiiHierarchy h = make_itoh_tsujii(field);
  test::Rng rng(88);
  for (int t = 0; t < 20; ++t) {
    const Gf2Poly a = rng.elem(field);
    std::map<std::string, Gf2Poly> sig{{"A", a}};
    for (const auto& inst : h.graph.instances) {
      std::vector<std::pair<const Word*, std::vector<Gf2Poly>>> ins;
      for (const auto& [word, s] : inst.inputs)
        ins.emplace_back(inst.block->find_word(word),
                         std::vector<Gf2Poly>{sig.at(s)});
      sig[inst.output_signal] =
          simulate_words(*inst.block, *inst.block->find_word("Z"), ins)[0];
    }
    const Gf2Poly expect = a.is_zero() ? field.zero() : field.inv(a);
    EXPECT_EQ(sig.at("INV"), expect) << "A=" << field.to_string(a);
  }
}

TEST(ItohTsujiiDetail, ZeroMapsToZero) {
  // X^{q-2} evaluates to 0 at 0 — the canonical form encodes the 0 ↦ 0
  // convention automatically.
  const Gf2k field = Gf2k::make(5);
  const MPoly spec = inversion_spec(field, 0);
  EXPECT_TRUE(spec.eval([&](VarId) { return field.zero(); }).is_zero());
  // And to a^{-1} everywhere else.
  for (const auto& a : all_field_elements(field)) {
    if (a.is_zero()) continue;
    EXPECT_EQ(spec.eval([&](VarId) { return a; }), field.inv(a));
  }
}

TEST(ItohTsujiiDetail, ChainLengthIsLogarithmic) {
  // The addition chain uses O(log k) multiplications.
  for (unsigned k : {8u, 16u, 32u, 64u}) {
    const Gf2k field = Gf2k::make(k);
    const ItohTsujiiHierarchy h = make_itoh_tsujii(field);
    std::size_t muls = 0;
    for (const auto& inst : h.graph.instances)
      if (inst.name.rfind("mul", 0) == 0) ++muls;
    EXPECT_LE(muls, 2 * static_cast<std::size_t>(std::bit_width(k - 1)));
    EXPECT_GE(muls, static_cast<std::size_t>(std::bit_width(k - 1)) - 1);
  }
}

TEST(ItohTsujiiDetail, BuggyChainDetected) {
  // Mutate the shared multiplier block: the composed polynomial must differ
  // from X^{q-2} (and the abstraction pinpoints that it does).
  const Gf2k field = Gf2k::make(8);
  ItohTsujiiHierarchy h = make_itoh_tsujii(field);
  Netlist& mul = *h.blocks[0];
  const NetId p00 = mul.find_net("p0_0");
  ASSERT_NE(p00, kNoNet);
  mul.mutable_gate(p00).type = GateType::kOr;
  const HierarchicalAbstraction ha = abstract_hierarchy(h.graph, field);
  const MPoly expect = inversion_spec(field, ha.composed.pool.id("A"));
  EXPECT_NE(ha.composed.g, expect);
}

}  // namespace
}  // namespace gfa
