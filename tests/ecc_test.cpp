#include "circuit/ecc.h"

#include <gtest/gtest.h>

#include "abstraction/extractor.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

TEST(ConstMultiplier, MatchesFieldScaling) {
  for (unsigned k : {3u, 8u, 16u}) {
    const Gf2k field = Gf2k::make(k);
    test::Rng rng(k);
    const auto c = rng.elem(field);
    const Netlist nl = make_const_multiplier(field, c);
    EXPECT_TRUE(nl.validate().empty());
    std::vector<Gf2Poly> as, expect;
    for (int i = 0; i < 32; ++i) {
      as.push_back(rng.elem(field));
      expect.push_back(field.mul(c, as.back()));
    }
    EXPECT_EQ(simulate_words(nl, *nl.find_word("Z"), {{nl.find_word("A"), as}}),
              expect);
  }
}

TEST(ConstMultiplier, AbstractsToScaledIdentity) {
  const Gf2k field = Gf2k::make(8);
  const auto c = field.alpha_pow(100);
  const WordFunction fn =
      extract_word_function(make_const_multiplier(field, c), field);
  MPoly expect(&field);
  expect.add_term(Monomial(fn.pool.id("A"), BigUint(1)), c);
  EXPECT_EQ(fn.g, expect);
}

TEST(ConstMultiplier, ZeroConstantGivesCase1) {
  const Gf2k field = Gf2k::make(4);
  const WordFunction fn = extract_word_function(
      make_const_multiplier(field, field.zero()), field);
  EXPECT_TRUE(fn.stats.case1);
  EXPECT_TRUE(fn.g.is_zero());
}

class LdDouble : public ::testing::TestWithParam<unsigned> {};

TEST_P(LdDouble, SimulationMatchesCurveFormulas) {
  const Gf2k field = Gf2k::make(GetParam());
  test::Rng rng(GetParam() * 3 + 1);
  const auto b = rng.elem(field);
  const Netlist nl = make_ld_point_double(field, b);
  EXPECT_TRUE(nl.validate().empty());
  std::vector<Gf2Poly> xs, zs, ex3, ez3;
  for (int i = 0; i < 32; ++i) {
    const auto x = rng.elem(field), z = rng.elem(field);
    xs.push_back(x);
    zs.push_back(z);
    const auto x2 = field.square(x), z2 = field.square(z);
    ex3.push_back(field.add(field.square(x2), field.mul(b, field.square(z2))));
    ez3.push_back(field.mul(x2, z2));
  }
  const auto got_x3 = simulate_words(
      nl, *nl.find_word("X3"), {{nl.find_word("X"), xs}, {nl.find_word("Z"), zs}});
  const auto got_z3 = simulate_words(
      nl, *nl.find_word("Z3"), {{nl.find_word("X"), xs}, {nl.find_word("Z"), zs}});
  EXPECT_EQ(got_x3, ex3);
  EXPECT_EQ(got_z3, ez3);
}

TEST_P(LdDouble, BothOutputWordsAbstractToCurveEquations) {
  // Multi-output abstraction: X3 = X⁴ + b·Z⁴ and Z3 = X²·Z² recovered as
  // canonical polynomials straight from the gates.
  const Gf2k field = Gf2k::make(GetParam());
  test::Rng rng(GetParam() * 5 + 2);
  const auto b = rng.elem(field);
  const Netlist nl = make_ld_point_double(field, b);
  const std::vector<WordFunction> fns = extract_all_word_functions(nl, field);
  ASSERT_EQ(fns.size(), 2u);

  for (const WordFunction& fn : fns) {
    const VarId x = fn.pool.id("X"), z = fn.pool.id("Z");
    MPoly expect(&field);
    if (fn.output_word == "X3") {
      expect.add_term(Monomial(x, BigUint(4)), field.one());
      expect.add_term(Monomial(z, BigUint(4)), b);
    } else {
      ASSERT_EQ(fn.output_word, "Z3");
      expect.add_term(
          Monomial::from_pairs({{x, BigUint(2)}, {z, BigUint(2)}}), field.one());
    }
    EXPECT_EQ(fn.g, expect) << fn.output_word << " = " << fn.g.to_string(fn.pool);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LdDouble, ::testing::Values(3, 5, 8, 16));

TEST(LdDouble, ExtractNamedWord) {
  const Gf2k field = Gf2k::make(5);
  const Netlist nl = make_ld_point_double(field, field.one());
  const WordFunction z3 = extract_word_function_for(nl, field, "Z3");
  EXPECT_EQ(z3.output_word, "Z3");
  EXPECT_THROW(extract_word_function_for(nl, field, "nope"),
               std::invalid_argument);
  // The single-output entry point must refuse a two-output circuit.
  EXPECT_THROW(extract_word_function(nl, field), std::invalid_argument);
}

TEST(LdDouble, BugInSharedSquarerCorruptsBothOutputs) {
  const Gf2k field = Gf2k::make(4);
  const auto b = field.alpha();
  const Netlist good = make_ld_point_double(field, b);
  Netlist bad = good;
  // sx_ cone feeds both X3 (via sx2_) and Z3 (via m_): flip one of its XORs.
  NetId victim = kNoNet;
  for (NetId n = 0; n < bad.num_nets(); ++n) {
    if (bad.gate(n).type == GateType::kXor &&
        bad.gate(n).name.rfind("sx_", 0) == 0) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kNoNet);
  bad.mutable_gate(victim).type = GateType::kOr;
  const auto good_fns = extract_all_word_functions(good, field);
  const auto bad_fns = extract_all_word_functions(bad, field);
  EXPECT_NE(good_fns[0].g, bad_fns[0].g);
  EXPECT_NE(good_fns[1].g, bad_fns[1].g);
}

}  // namespace
}  // namespace gfa
