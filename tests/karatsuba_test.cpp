#include "circuit/karatsuba.h"

#include <gtest/gtest.h>

#include "abstraction/equivalence.h"
#include "baselines/aig/aig.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

class Karatsuba : public ::testing::TestWithParam<unsigned> {};

TEST_P(Karatsuba, MatchesFieldMultiplication) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_karatsuba_multiplier(field);
  EXPECT_TRUE(nl.validate().empty());
  test::Rng rng(GetParam() + 70);
  std::vector<Gf2Poly> as, bs, expect;
  for (int i = 0; i < 64; ++i) {
    as.push_back(rng.elem(field));
    bs.push_back(rng.elem(field));
    expect.push_back(field.mul(as.back(), bs.back()));
  }
  EXPECT_EQ(simulate_words(nl, *nl.find_word("Z"),
                           {{nl.find_word("A"), as}, {nl.find_word("B"), bs}}),
            expect);
}

TEST_P(Karatsuba, AbstractsToAB) {
  const Gf2k field = Gf2k::make(GetParam());
  const WordFunction fn =
      extract_word_function(make_karatsuba_multiplier(field), field);
  const MPoly ab = MPoly::variable(&field, fn.pool.id("A")) *
                   MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, ab);
}

TEST_P(Karatsuba, EquivalentToMastrovitoAndMontgomery) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist kara = make_karatsuba_multiplier(field);
  EXPECT_TRUE(
      check_equivalence(make_mastrovito_multiplier(field), kara, field).equivalent);
  EXPECT_TRUE(
      check_equivalence(kara, make_montgomery_multiplier_flat(field), field)
          .equivalent);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Karatsuba,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 16, 24, 31, 32, 64));

TEST(KaratsubaDetail, ThresholdOneStillCorrect) {
  // Deepest recursion (threshold 1) exercises the unbalanced-split paths.
  const Gf2k field = Gf2k::make(11);
  const Netlist nl = make_karatsuba_multiplier(field, /*threshold=*/1);
  test::Rng rng(111);
  std::vector<Gf2Poly> as, bs, expect;
  for (int i = 0; i < 64; ++i) {
    as.push_back(rng.elem(field));
    bs.push_back(rng.elem(field));
    expect.push_back(field.mul(as.back(), bs.back()));
  }
  EXPECT_EQ(simulate_words(nl, *nl.find_word("Z"),
                           {{nl.find_word("A"), as}, {nl.find_word("B"), bs}}),
            expect);
}

TEST(KaratsubaDetail, FewerAndGatesThanSchoolbook) {
  // The point of Karatsuba: sub-quadratic AND (partial product) count.
  const Gf2k field = Gf2k::make(64);
  const Netlist kara = make_karatsuba_multiplier(field);
  const Netlist mast = make_mastrovito_multiplier(field);
  auto count_ands = [](const Netlist& nl) {
    std::size_t n = 0;
    for (NetId i = 0; i < nl.num_nets(); ++i)
      if (nl.gate(i).type == GateType::kAnd) ++n;
    return n;
  };
  EXPECT_LT(count_ands(kara), count_ands(mast));
  EXPECT_EQ(count_ands(mast), 64u * 64u);
}

TEST(KaratsubaDetail, StructurallyDissimilarFromMastrovito) {
  // Fraiging finds (almost) no internal equivalences between the two — the
  // property that kills structural CEC on these benchmarks.
  const Gf2k field = Gf2k::make(8);
  const aig::FraigResult res = aig::fraig_equivalence_check(
      make_mastrovito_multiplier(field), make_karatsuba_multiplier(field));
  EXPECT_EQ(res.status, aig::FraigResult::Status::kEquivalent);
  EXPECT_GT(res.sat_calls, 0u);  // nothing closed structurally
}

}  // namespace
}  // namespace gfa
