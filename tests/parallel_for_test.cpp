// Tests for the shared thread pool (util/parallel_for.h): completeness,
// nesting, exception propagation, and concurrent use through parallel_invoke.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel_for.h"

namespace gfa {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, ComputesDisjointResults) {
  const std::size_t n = 4096;
  std::vector<long> out(n, 0);
  parallel_for(n, [&](std::size_t i) { out[i] = static_cast<long>(i) * 3; });
  long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 3L * static_cast<long>(n) * (static_cast<long>(n) - 1) / 2);
}

TEST(ParallelFor, NestedCallsComplete) {
  const std::size_t outer = 16, inner = 64;
  std::atomic<int> count{0};
  parallel_for(outer, [&](std::size_t) {
    parallel_for(inner, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), static_cast<int>(outer * inner));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> count{0};
  parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelInvoke, RunsBothAndPropagates) {
  std::atomic<int> a{0}, b{0};
  parallel_invoke([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
  EXPECT_THROW(parallel_invoke([] { throw std::logic_error("x"); }, [] {}),
               std::logic_error);
}

TEST(ParallelFor, ThreadCountIsPositive) {
  EXPECT_GE(parallel_thread_count(), 1u);
}

TEST(ParallelFor, SetThreadCountResizesLivePool) {
  const unsigned before = parallel_thread_count();
  for (unsigned target : {1u, 3u, 8u, before}) {
    set_parallel_thread_count(target);
    EXPECT_EQ(parallel_thread_count(), target);
    // The resized pool still runs every index exactly once.
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  }
  EXPECT_EQ(parallel_thread_count(), before);
}

TEST(ParallelFor, SetThreadCountClampsToValidRange) {
  const unsigned before = parallel_thread_count();
  set_parallel_thread_count(0);
  EXPECT_EQ(parallel_thread_count(), 1u);
  set_parallel_thread_count(before);
  EXPECT_EQ(parallel_thread_count(), before);
}

TEST(ParallelFor, AvailableWidthIsOneInsideLoops) {
  const unsigned before = parallel_thread_count();
  set_parallel_thread_count(4);
  EXPECT_EQ(parallel_available_width(), 4u);
  std::atomic<unsigned> inner_width{99};
  parallel_for(8, [&](std::size_t) {
    inner_width.store(parallel_available_width());
  });
  EXPECT_EQ(inner_width.load(), 1u);
  set_parallel_thread_count(1);
  EXPECT_EQ(parallel_available_width(), 1u);
  set_parallel_thread_count(before);
}

// With several indices throwing, the exception that propagates must be the
// one from the lowest index, independent of thread schedule: the later
// errors (700+) are thrown from many chunks at once and will often be
// *recorded* first in wall-clock time, but index 400's chunk was claimed
// earlier off the monotonic cursor and must win the tie-break.
TEST(ParallelFor, LowestIndexErrorWinsDeterministically) {
  for (int round = 0; round < 25; ++round) {
    try {
      parallel_for(2000, [&](std::size_t i) {
        if (i == 400) throw std::runtime_error("low");
        if (i >= 700) throw std::runtime_error("high");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low") << "round " << round;
    }
  }
}

}  // namespace
}  // namespace gfa
