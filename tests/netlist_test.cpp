#include "circuit/netlist.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gfa {
namespace {

TEST(Netlist, BasicConstruction) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateType::kAnd, {a, b}, "g");
  nl.mark_output(g);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_logic_gates(), 1u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs(), std::vector<NetId>{g});
  EXPECT_EQ(nl.find_net("g"), g);
  EXPECT_EQ(nl.find_net("nope"), kNoNet);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, AutoNamesAreUnique) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_gate(GateType::kNot, {a});
  const NetId g2 = nl.add_gate(GateType::kNot, {g1});
  EXPECT_NE(nl.gate(g1).name, nl.gate(g2).name);
}

TEST(Netlist, TopologicalOrderRespectsFanins) {
  const Netlist nl = test::make_fig2_multiplier();
  const auto topo = nl.topological_order();
  std::vector<std::size_t> pos(nl.num_nets());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NetId n = 0; n < nl.num_nets(); ++n)
    for (NetId f : nl.gate(n).fanins) EXPECT_LT(pos[f], pos[n]);
}

TEST(Netlist, ReverseTopologicalLevels) {
  const Netlist nl = test::make_fig2_multiplier();
  const auto level = nl.reverse_topological_levels();
  // Outputs are at level 0.
  for (NetId o : nl.outputs()) EXPECT_EQ(level[o], 0u);
  // Every net sits strictly below all its fanins (RATO invariant).
  for (NetId n = 0; n < nl.num_nets(); ++n)
    for (NetId f : nl.gate(n).fanins) EXPECT_GT(level[f], level[n]);
}

TEST(Netlist, ValidateCatchesArityErrors) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  NetId g = nl.add_gate(GateType::kAnd, {a, a}, "g");
  nl.mutable_gate(g).fanins.pop_back();  // and with 1 fanin
  EXPECT_FALSE(nl.validate().empty());
}

TEST(Netlist, ValidateCatchesCycles) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_gate(GateType::kAnd, {a, a}, "g1");
  const NetId g2 = nl.add_gate(GateType::kAnd, {g1, a}, "g2");
  nl.mutable_gate(g1).fanins[1] = g2;  // g1 <-> g2 cycle
  EXPECT_NE(nl.validate().find("cycle"), std::string::npos);
  EXPECT_THROW(nl.topological_order(), std::logic_error);
}

TEST(Netlist, WordsRoundTrip) {
  Netlist nl;
  const NetId a0 = nl.add_input("a0");
  const NetId a1 = nl.add_input("a1");
  nl.declare_word("A", {a0, a1});
  ASSERT_NE(nl.find_word("A"), nullptr);
  EXPECT_EQ(nl.find_word("A")->bits, (std::vector<NetId>{a0, a1}));
  EXPECT_EQ(nl.find_word("B"), nullptr);
}

TEST(GateTypeNames, RoundTrip) {
  for (GateType t : {GateType::kInput, GateType::kConst0, GateType::kConst1,
                     GateType::kBuf, GateType::kNot, GateType::kAnd,
                     GateType::kOr, GateType::kXor, GateType::kNand,
                     GateType::kNor, GateType::kXnor}) {
    auto back = gate_type_from_name(gate_type_name(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(gate_type_from_name("frobnicate").has_value());
}

TEST(Netlist, NumLogicGatesExcludesSources) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_const(true, "one");
  nl.add_const(false, "zero");
  nl.add_gate(GateType::kNot, {a}, "n");
  EXPECT_EQ(nl.num_nets(), 4u);
  EXPECT_EQ(nl.num_logic_gates(), 1u);
}

}  // namespace
}  // namespace gfa
