#include "poly/monomial.h"

#include <gtest/gtest.h>

namespace gfa {
namespace {

Monomial mono(std::vector<std::pair<VarId, std::uint64_t>> pairs) {
  std::vector<std::pair<VarId, BigUint>> v;
  for (auto& [var, e] : pairs) v.emplace_back(var, BigUint(e));
  return Monomial::from_pairs(std::move(v));
}

TEST(Monomial, OneAndConstruction) {
  EXPECT_TRUE(Monomial().is_one());
  EXPECT_TRUE(Monomial(3, BigUint(0)).is_one());
  EXPECT_FALSE(Monomial(3, BigUint(1)).is_one());
  // Repeated vars merge, zero exponents drop.
  EXPECT_EQ(mono({{1, 2}, {1, 3}}), mono({{1, 5}}));
  EXPECT_EQ(mono({{1, 0}, {2, 1}}), mono({{2, 1}}));
}

TEST(Monomial, ExponentLookup) {
  const Monomial m = mono({{2, 3}, {5, 1}});
  EXPECT_EQ(m.exponent(2), BigUint(3));
  EXPECT_EQ(m.exponent(5), BigUint(1));
  EXPECT_EQ(m.exponent(3), BigUint(0));
  EXPECT_EQ(m.total_degree(), BigUint(4));
}

TEST(Monomial, Multiplication) {
  EXPECT_EQ(mono({{0, 1}, {1, 2}}) * mono({{1, 1}, {2, 4}}),
            mono({{0, 1}, {1, 3}, {2, 4}}));
  EXPECT_EQ(Monomial() * mono({{7, 2}}), mono({{7, 2}}));
}

TEST(Monomial, Divides) {
  EXPECT_TRUE(mono({{1, 1}}).divides(mono({{1, 2}, {2, 1}})));
  EXPECT_FALSE(mono({{1, 3}}).divides(mono({{1, 2}, {2, 1}})));
  EXPECT_FALSE(mono({{3, 1}}).divides(mono({{1, 2}})));
  EXPECT_TRUE(Monomial().divides(mono({{1, 1}})));
  EXPECT_TRUE(mono({{1, 1}}).divides(mono({{1, 1}})));
}

TEST(Monomial, DivideInto) {
  // (x1^2 x2^4) / (x1 x2) = x1 x2^3
  EXPECT_EQ(mono({{1, 1}, {2, 1}}).divide_into(mono({{1, 2}, {2, 4}})),
            mono({{1, 1}, {2, 3}}));
  EXPECT_EQ(mono({{1, 2}}).divide_into(mono({{1, 2}})), Monomial());
}

TEST(Monomial, LcmAndRelativelyPrime) {
  EXPECT_EQ(Monomial::lcm(mono({{1, 2}, {2, 1}}), mono({{2, 3}, {4, 1}})),
            mono({{1, 2}, {2, 3}, {4, 1}}));
  EXPECT_TRUE(Monomial::relatively_prime(mono({{1, 2}}), mono({{2, 3}})));
  EXPECT_FALSE(Monomial::relatively_prime(mono({{1, 2}, {5, 1}}), mono({{5, 9}})));
  EXPECT_TRUE(Monomial::relatively_prime(Monomial(), mono({{1, 1}})));
}

TEST(Monomial, ProductCriterionIdentity) {
  // lm(f)·lm(g) == lcm(lm(f), lm(g)) iff relatively prime.
  const Monomial a = mono({{1, 2}, {3, 1}});
  const Monomial b = mono({{2, 4}});
  EXPECT_EQ(a * b, Monomial::lcm(a, b));
  const Monomial c = mono({{3, 2}});
  EXPECT_NE(a * c, Monomial::lcm(a, c));
}

TEST(Monomial, BigExponents) {
  const Monomial m = Monomial(0, BigUint::pow2(570)) * Monomial(0, BigUint::pow2(570));
  EXPECT_EQ(m.exponent(0), BigUint::pow2(571));
}

TEST(TermOrder, LexByIdBasics) {
  const TermOrder o = TermOrder::lex_by_id(4);
  // x0 > x1 > x2 > x3; x0 beats any power of later vars.
  EXPECT_TRUE(o.greater(mono({{0, 1}}), mono({{1, 9}, {2, 9}})));
  EXPECT_TRUE(o.greater(mono({{0, 2}}), mono({{0, 1}, {1, 5}})));
  EXPECT_TRUE(o.greater(mono({{0, 1}, {1, 1}}), mono({{0, 1}})));
  EXPECT_EQ(o.compare(mono({{1, 2}}), mono({{1, 2}})), 0);
}

TEST(TermOrder, CustomPriority) {
  // Priority z > x > y with ids x=0, y=1, z=2.
  const TermOrder o(TermOrder::Type::kLex, {2, 0, 1});
  EXPECT_TRUE(o.greater(mono({{2, 1}}), mono({{0, 7}, {1, 7}})));
  EXPECT_TRUE(o.greater(mono({{0, 1}}), mono({{1, 7}})));
}

TEST(TermOrder, UnrankedVariablesComeLast) {
  const TermOrder o(TermOrder::Type::kLex, {5});
  // Var 5 is ranked; vars 0..4 unranked and ordered by id after 5.
  EXPECT_TRUE(o.greater(mono({{5, 1}}), mono({{0, 3}})));
  EXPECT_TRUE(o.greater(mono({{0, 1}}), mono({{1, 3}})));
}

TEST(TermOrder, GradedLex) {
  const TermOrder o(TermOrder::Type::kGrLex, {0, 1, 2});
  // Total degree first: x2^3 > x0^2.
  EXPECT_TRUE(o.greater(mono({{2, 3}}), mono({{0, 2}})));
  // Ties broken lexicographically: x0 x1 > x0 x2.
  EXPECT_TRUE(o.greater(mono({{0, 1}, {1, 1}}), mono({{0, 1}, {2, 1}})));
}

TEST(TermOrder, ExampleFromPaper41) {
  // lex x > y > z: x y z^2 ... the ordering used in Example 4.1.
  const TermOrder o = TermOrder::lex_by_id(3);
  EXPECT_TRUE(o.greater(mono({{0, 2}, {1, 1}}), mono({{0, 1}, {1, 2}})));
  EXPECT_TRUE(o.greater(mono({{1, 2}}), mono({{1, 1}, {2, 2}})));
}

TEST(Monomial, CanonicalOrderingIsTotal) {
  std::vector<Monomial> ms = {Monomial(), mono({{0, 1}}), mono({{0, 2}}),
                              mono({{1, 1}}), mono({{0, 1}, {1, 1}})};
  for (const auto& a : ms)
    for (const auto& b : ms) {
      const auto c1 = a <=> b;
      const auto c2 = b <=> a;
      EXPECT_EQ(c1 == std::strong_ordering::equal, a == b);
      EXPECT_EQ(c1 == std::strong_ordering::less, c2 == std::strong_ordering::greater);
    }
}

}  // namespace
}  // namespace gfa
