#include "baselines/sat/solver.h"

#include <gtest/gtest.h>

#include "baselines/miter.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

using sat::Result;
using sat::Solver;

TEST(SatSolver, TrivialCases) {
  {
    Solver s;
    EXPECT_EQ(s.solve(), Result::kSat);  // empty formula
  }
  {
    Solver s;
    s.add_clause({1});
    EXPECT_EQ(s.solve(), Result::kSat);
    EXPECT_TRUE(s.model_value(1));
  }
  {
    Solver s;
    s.add_clause({1});
    s.add_clause({-1});
    EXPECT_EQ(s.solve(), Result::kUnsat);
  }
  {
    Solver s;
    s.add_clause({});
    EXPECT_EQ(s.solve(), Result::kUnsat);
  }
}

TEST(SatSolver, NormalizesTautologiesAndDuplicates) {
  Solver s;
  s.add_clause({1, -1});     // tautology, dropped
  s.add_clause({2, 2, 2});   // collapses to unit
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(2));
}

TEST(SatSolver, UnitPropagationChain) {
  Solver s;
  s.add_clause({1});
  s.add_clause({-1, 2});
  s.add_clause({-2, 3});
  s.add_clause({-3, 4});
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int v = 1; v <= 4; ++v) EXPECT_TRUE(s.model_value(v));
}

TEST(SatSolver, RequiresConflictAnalysis) {
  // XOR-chain style instance that forces backtracking.
  Solver s;
  s.add_clause({1, 2});
  s.add_clause({-1, -2});
  s.add_clause({2, 3});
  s.add_clause({-2, -3});
  s.add_clause({1, 3});    // forces 1 != 2, 2 != 3, and 1 or 3
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_NE(s.model_value(1), s.model_value(2));
  EXPECT_NE(s.model_value(2), s.model_value(3));
}

TEST(SatSolver, PigeonholePrinciple) {
  // PHP(n+1, n): n+1 pigeons, n holes — classically UNSAT and requires real
  // search. Variables p_{i,j} = pigeon i in hole j.
  const int pigeons = 5, holes = 4;
  Solver s;
  auto var = [&](int i, int j) { return i * holes + j + 1; };
  for (int i = 0; i < pigeons; ++i) {
    std::vector<int> c;
    for (int j = 0; j < holes; ++j) c.push_back(var(i, j));
    s.add_clause(c);
  }
  for (int j = 0; j < holes; ++j)
    for (int i1 = 0; i1 < pigeons; ++i1)
      for (int i2 = i1 + 1; i2 < pigeons; ++i2)
        s.add_clause({-var(i1, j), -var(i2, j)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatSolver, RandomInstancesAgreeWithBruteForce) {
  test::Rng rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    const int nvars = 8;
    const int nclauses = 3 + static_cast<int>(rng.below(40));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < nclauses; ++c) {
      std::vector<int> cl;
      for (int l = 0; l < 3; ++l) {
        const int v = 1 + static_cast<int>(rng.below(nvars));
        cl.push_back(rng.next() & 1 ? v : -v);
      }
      clauses.push_back(cl);
    }
    bool brute_sat = false;
    for (std::uint32_t m = 0; m < (1u << nvars) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (int l : cl) {
          const bool val = (m >> (std::abs(l) - 1)) & 1;
          if (l > 0 ? val : !val) any = true;
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    Solver s;
    for (const auto& cl : clauses) s.add_clause(cl);
    const Result r = s.solve();
    ASSERT_EQ(r == Result::kSat, brute_sat) << "trial " << trial;
    if (r == Result::kSat) {
      // The returned model must satisfy every clause.
      for (const auto& cl : clauses) {
        bool any = false;
        for (int l : cl)
          if (l > 0 ? s.model_value(l) : !s.model_value(-l)) any = true;
        EXPECT_TRUE(any);
      }
    }
  }
}

TEST(SatSolver, ConflictLimitReturnsUnknown) {
  // Large pigeonhole with a tiny budget.
  const int pigeons = 8, holes = 7;
  Solver s;
  auto var = [&](int i, int j) { return i * holes + j + 1; };
  for (int i = 0; i < pigeons; ++i) {
    std::vector<int> c;
    for (int j = 0; j < holes; ++j) c.push_back(var(i, j));
    s.add_clause(c);
  }
  for (int j = 0; j < holes; ++j)
    for (int i1 = 0; i1 < pigeons; ++i1)
      for (int i2 = i1 + 1; i2 < pigeons; ++i2)
        s.add_clause({-var(i1, j), -var(i2, j)});
  EXPECT_EQ(s.solve(/*conflict_limit=*/10), Result::kUnknown);
}

TEST(Miter, EquivalentCircuitsGiveUnsat) {
  const Gf2k field = Gf2k::make(4);
  const Netlist miter = make_miter(make_mastrovito_multiplier(field),
                                   make_montgomery_multiplier_flat(field));
  EXPECT_TRUE(miter.validate().empty());
  const Cnf cnf = tseitin_encode(miter, miter.outputs()[0]);
  Solver s;
  for (const auto& c : cnf.clauses) s.add_clause(c);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Miter, BuggyCircuitGivesSatWithValidCounterexample) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  BugDescription desc;
  const Netlist impl = inject_random_bug(make_montgomery_multiplier_flat(field),
                                         /*seed=*/3, &desc);
  const Netlist miter = make_miter(spec, impl);
  const Cnf cnf = tseitin_encode(miter, miter.outputs()[0]);
  Solver s;
  for (const auto& c : cnf.clauses) s.add_clause(c);
  const Result r = s.solve();
  if (r == Result::kUnsat) {
    GTEST_SKIP() << "seed 3 bug is benign: " << desc.text;
  }
  ASSERT_EQ(r, Result::kSat);
  // Extract the counterexample input and confirm by simulation.
  std::vector<std::uint64_t> lanes(miter.inputs().size());
  for (std::size_t i = 0; i < miter.inputs().size(); ++i)
    lanes[i] = s.model_value(static_cast<int>(miter.inputs()[i]) + 1) ? 1 : 0;
  const auto values = simulate(miter, lanes);
  EXPECT_EQ(values[miter.outputs()[0]] & 1u, 1u);
}

TEST(Miter, TseitinEncodingIsConsistentWithSimulation) {
  // For arbitrary circuits: any SAT model of (output = 1) must simulate to 1.
  const Netlist nl = test::make_random_word_circuit(3, 9, 30);
  Netlist with_top = nl;
  // OR all outputs into one net so the query is single-output.
  std::vector<NetId> outs = with_top.outputs();
  NetId top = outs[0];
  for (std::size_t i = 1; i < outs.size(); ++i)
    top = with_top.add_gate(GateType::kOr, {top, outs[i]});
  const Cnf cnf = tseitin_encode(with_top, top);
  Solver s;
  for (const auto& c : cnf.clauses) s.add_clause(c);
  if (s.solve() == Result::kSat) {
    std::vector<std::uint64_t> lanes(with_top.inputs().size());
    for (std::size_t i = 0; i < with_top.inputs().size(); ++i)
      lanes[i] = s.model_value(static_cast<int>(with_top.inputs()[i]) + 1) ? 1 : 0;
    EXPECT_EQ(simulate(with_top, lanes)[top] & 1u, 1u);
  }
}

}  // namespace
}  // namespace gfa
