#include <gtest/gtest.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

class MultiplierGenerators : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiplierGenerators, MastrovitoMatchesFieldMultiplication) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_mastrovito_multiplier(field);
  EXPECT_TRUE(nl.validate().empty());
  test::Rng rng(GetParam());
  std::vector<Gf2Poly> as, bs, expect;
  for (int i = 0; i < 64; ++i) {
    as.push_back(rng.elem(field));
    bs.push_back(rng.elem(field));
    expect.push_back(field.mul(as.back(), bs.back()));
  }
  const auto got = simulate_words(
      nl, *nl.find_word("Z"),
      {{nl.find_word("A"), as}, {nl.find_word("B"), bs}});
  EXPECT_EQ(got, expect);
}

TEST_P(MultiplierGenerators, MontgomeryFlatMatchesFieldMultiplication) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_montgomery_multiplier_flat(field);
  EXPECT_TRUE(nl.validate().empty());
  test::Rng rng(GetParam() + 1000);
  std::vector<Gf2Poly> as, bs, expect;
  for (int i = 0; i < 64; ++i) {
    as.push_back(rng.elem(field));
    bs.push_back(rng.elem(field));
    expect.push_back(field.mul(as.back(), bs.back()));
  }
  const auto got = simulate_words(
      nl, *nl.find_word("Z"),
      {{nl.find_word("A"), as}, {nl.find_word("B"), bs}});
  EXPECT_EQ(got, expect);
}

TEST_P(MultiplierGenerators, MontMulBlockComputesMontgomeryProduct) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist blk = make_montmul_block(field, "mm");
  const auto r_inv = field.inv(field.alpha_pow(std::uint64_t{field.k()}));
  test::Rng rng(GetParam() + 2000);
  std::vector<Gf2Poly> xs, ys, expect;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(rng.elem(field));
    ys.push_back(rng.elem(field));
    expect.push_back(field.mul(field.mul(xs.back(), ys.back()), r_inv));
  }
  const auto got = simulate_words(
      blk, *blk.find_word("Z"),
      {{blk.find_word("X"), xs}, {blk.find_word("Y"), ys}});
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MultiplierGenerators,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 11, 16, 23, 32, 48,
                                           64));

TEST(MultiplierGenerators, MastrovitoExhaustiveTinyFields) {
  for (unsigned k = 2; k <= 5; ++k) {
    const Gf2k field = Gf2k::make(k);
    const Netlist nl = make_mastrovito_multiplier(field);
    std::vector<Gf2Poly> as, bs, expect;
    for (std::uint64_t a = 0; a < (1u << k); ++a)
      for (std::uint64_t b = 0; b < (1u << k); ++b) {
        as.push_back(field.from_bits(a));
        bs.push_back(field.from_bits(b));
        expect.push_back(field.mul(as.back(), bs.back()));
        if (as.size() == 64 || (a == (1u << k) - 1 && b == (1u << k) - 1)) {
          const auto got = simulate_words(
              nl, *nl.find_word("Z"),
              {{nl.find_word("A"), as}, {nl.find_word("B"), bs}});
          EXPECT_EQ(got, expect) << "k=" << k;
          as.clear();
          bs.clear();
          expect.clear();
        }
      }
  }
}

TEST(MultiplierGenerators, GateCountsGrowQuadratically) {
  const std::size_t g8 = make_mastrovito_multiplier(Gf2k::make(8)).num_logic_gates();
  const std::size_t g16 =
      make_mastrovito_multiplier(Gf2k::make(16)).num_logic_gates();
  const std::size_t g32 =
      make_mastrovito_multiplier(Gf2k::make(32)).num_logic_gates();
  // Roughly 4x per doubling (O(k²) architecture).
  EXPECT_GT(g16, 3 * g8);
  EXPECT_LT(g16, 6 * g8);
  EXPECT_GT(g32, 3 * g16);
  EXPECT_LT(g32, 6 * g16);
}

TEST(MultiplierGenerators, HierarchyBlockSizesMatchPaperShape) {
  // Table 2 shape: Blk Mid (two variable operands) is the largest; Blk A/B
  // (constant R²) and Blk Out (constant 1) are substantially smaller.
  const Gf2k field = Gf2k::make(16);
  const MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  const std::size_t a = h.blk_a.num_logic_gates();
  const std::size_t b = h.blk_b.num_logic_gates();
  const std::size_t mid = h.blk_mid.num_logic_gates();
  const std::size_t out = h.blk_out.num_logic_gates();
  EXPECT_EQ(a, b);
  EXPECT_GT(mid, a);
  EXPECT_GT(mid, out);
  EXPECT_LT(out, a + mid);
}

TEST(MultiplierGenerators, MontgomeryBlocksHaveWordInterface) {
  const Gf2k field = Gf2k::make(8);
  const MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  for (const Netlist* blk : {&h.blk_a, &h.blk_b, &h.blk_out}) {
    ASSERT_NE(blk->find_word("X"), nullptr);
    ASSERT_NE(blk->find_word("Z"), nullptr);
    EXPECT_EQ(blk->find_word("Y"), nullptr);  // folded constant
  }
  ASSERT_NE(h.blk_mid.find_word("Y"), nullptr);
}

}  // namespace
}  // namespace gfa
