// Tests for util/fault_inject.h, ending in the robustness acceptance sweep:
// at k = 32 (Mastrovito vs Montgomery), every engine is run with every fault
// site it owns armed to fire on its first hit, and must unwind to a clean
// non-OK Status of the right code — no crash, no leak (the CI job runs this
// under ASan+UBSan), no wrong verdict.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "engine/registry.h"
#include "util/fault_inject.h"
#include "util/resource_budget.h"

namespace gfa {
namespace {

/// Disarms on scope exit so a failing assertion cannot poison later tests.
struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

TEST(FaultInject, RegistryListsEveryDocumentedSite) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  const std::vector<std::string_view>& sites = fault::registered_sites();
  for (const char* site :
       {"budget:mpoly.terms", "budget:pair.queue", "budget:bdd.nodes",
        "budget:sat.clauses", "budget:rewriter.terms", "oom:rewriter.add",
        "oom:bdd.make", "oom:sat.learn", "cancel:checkpoint", "worker:crash",
        "worker:hang", "checkpoint:corrupt"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), std::string_view(site)),
              sites.end())
        << site;
  }
}

TEST(FaultInject, ArmRejectsUnknownSitesAndZeroCounts) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  EXPECT_EQ(fault::arm("no:such.site", 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::arm("cancel:checkpoint", 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultInject, FiresExactlyOnceOnTheNthHit) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  ASSERT_TRUE(fault::arm("cancel:checkpoint", 3).ok());
  EXPECT_TRUE(fault::enabled());
  fault::point("cancel:checkpoint");                   // hit 1
  fault::point("budget:mpoly.terms");                  // other site: no count
  fault::point("cancel:checkpoint");                   // hit 2
  EXPECT_FALSE(fault::fired());
  bool threw = false;
  try {
    fault::point("cancel:checkpoint");                 // hit 3 fires
  } catch (const StatusError& e) {
    threw = true;
    EXPECT_EQ(e.status.code(), StatusCode::kCancelled);
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(fault::fired());
  EXPECT_EQ(fault::hits(), 3u);
  fault::point("cancel:checkpoint");  // one-shot: later hits pass through
  EXPECT_FALSE(fault::enabled());     // nothing armed anymore
}

TEST(FaultInject, ConsumeFiresOnceOnTheNthHitWithoutThrowing) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  ASSERT_TRUE(fault::arm("worker:crash", 2).ok());
  EXPECT_FALSE(fault::consume("worker:crash"));   // hit 1
  EXPECT_FALSE(fault::consume("worker:hang"));    // other site: no effect
  EXPECT_TRUE(fault::consume("worker:crash"));    // hit 2 fires
  EXPECT_TRUE(fault::fired());
  EXPECT_FALSE(fault::consume("worker:crash"));   // one-shot
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultInject, ConsumeIsInertWhenNothingIsArmed) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  EXPECT_FALSE(fault::consume("worker:crash"));
  EXPECT_FALSE(fault::consume("checkpoint:corrupt"));
}

TEST(FaultInject, ArmSpecParsesSiteColonCount) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  EXPECT_TRUE(fault::arm_spec("cancel:checkpoint").ok());   // bare = :1
  EXPECT_TRUE(fault::arm_spec("oom:bdd.make:5").ok());      // last ':' splits
  EXPECT_FALSE(fault::arm_spec("oom:bdd.make:0").ok());
  EXPECT_FALSE(fault::arm_spec("oom:bdd.make:x").ok());
  EXPECT_FALSE(fault::arm_spec("").ok());
}

// ---------------------------------------------------------------------------
// The sweep. Each engine owns the sites its call graph hits; for each, arm
// the site to fire on the first hit and demand a clean unwind with the code
// the real failure would carry: kResourceExhausted for budget charges and
// allocation failures, kCancelled for the cooperative checkpoint.

struct SweepCase {
  const char* engine;
  const char* site;
};

// clang-format off
const SweepCase kSweep[] = {
    {"abstraction",      "budget:rewriter.terms"},
    {"abstraction",      "oom:rewriter.add"},
    {"abstraction",      "cancel:checkpoint"},
    {"ideal-membership", "budget:rewriter.terms"},
    {"ideal-membership", "oom:rewriter.add"},
    {"ideal-membership", "cancel:checkpoint"},
    {"sat",              "budget:sat.clauses"},
    {"sat",              "oom:sat.learn"},
    {"sat",              "cancel:checkpoint"},
    {"fraig",            "budget:sat.clauses"},
    {"fraig",            "oom:sat.learn"},
    {"fraig",            "cancel:checkpoint"},
    {"bdd",              "budget:bdd.nodes"},
    {"bdd",              "oom:bdd.make"},
    {"bdd",              "cancel:checkpoint"},
    {"full-gb",          "budget:pair.queue"},
    {"full-gb",          "budget:mpoly.terms"},
    {"full-gb",          "cancel:checkpoint"},
};
// clang-format on

StatusCode expected_code(std::string_view site) {
  return site.substr(0, 7) == "cancel:" ? StatusCode::kCancelled
                                        : StatusCode::kResourceExhausted;
}

TEST(FaultInjectSweep, EveryEngineUnwindsCleanlyFromEveryOwnedSiteAtK32) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  const Gf2k field = Gf2k::make(32);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  // A measure-only budget so the "budget:*" charge points actually execute;
  // the armed fault, not the limit, is what trips the run.
  ResourceBudget budget;

  for (const SweepCase& c : kSweep) {
    SCOPED_TRACE(std::string(c.engine) + " / " + c.site);
    const engine::EquivEngine* eng =
        engine::EngineRegistry::global().find(c.engine);
    ASSERT_NE(eng, nullptr);
    Disarmer disarm;
    ASSERT_TRUE(fault::arm(c.site, 1).ok());
    engine::RunOptions options;
    options.control.budget = &budget;
    const Result<engine::VerifyResult> r =
        eng->verify(spec, impl, field, options);
    EXPECT_TRUE(fault::fired())
        << "the engine never reached this site — fix the sweep table";
    ASSERT_FALSE(r.ok()) << "fault fired but the engine still 'succeeded'";
    EXPECT_EQ(r.status().code(), expected_code(c.site))
        << r.status().to_string();
  }
}

TEST(FaultInjectSweep, PortfolioSurvivesAFaultInItsFirstAttempt) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  // The rewriter OOM kills the abstraction attempt (and, one-shot, only that
  // attempt); the portfolio must fall through and still decide. k = 4 keeps
  // the SAT fallback proof quick.
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  Disarmer disarm;
  ASSERT_TRUE(fault::arm("oom:rewriter.add", 1).ok());
  engine::RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  const Result<engine::VerifyResult> r =
      engine::EngineRegistry::global().find("portfolio")->verify(spec, impl,
                                                                 field,
                                                                 options);
  EXPECT_TRUE(fault::fired());
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, engine::Verdict::kEquivalent);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_EQ(r->attempts[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r->attempts[1].status.ok());
}

}  // namespace
}  // namespace gfa
