#include "abstraction/hierarchy.h"

#include <gtest/gtest.h>

#include "circuit/mastrovito.h"
#include "circuit/mutate.h"
#include "test_util.h"

namespace gfa {
namespace {

class MontgomeryHierarchyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MontgomeryHierarchyTest, BlockPolynomialsMatchFig1) {
  const Gf2k field = Gf2k::make(GetParam());
  const unsigned k = field.k();
  const MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  const auto r = field.alpha_pow(std::uint64_t{k});
  const auto r_inv = field.inv(r);

  // Blk A: Mont(A, R²) = R·A — a linear polynomial with coefficient R.
  const WordFunction fa = extract_word_function(h.blk_a, field);
  MPoly expect_a(&field);
  expect_a.add_term(Monomial(fa.pool.id("X"), BigUint(1)), r);
  EXPECT_EQ(fa.g, expect_a) << fa.g.to_string(fa.pool);

  // Blk Mid: Mont(X, Y) = R⁻¹·X·Y.
  const WordFunction fm = extract_word_function(h.blk_mid, field);
  MPoly expect_m(&field);
  expect_m.add_term(Monomial::from_pairs({{fm.pool.id("X"), BigUint(1)},
                                          {fm.pool.id("Y"), BigUint(1)}}),
                    r_inv);
  EXPECT_EQ(fm.g, expect_m) << fm.g.to_string(fm.pool);

  // Blk Out: Mont(X, 1) = R⁻¹·X.
  const WordFunction fo = extract_word_function(h.blk_out, field);
  MPoly expect_o(&field);
  expect_o.add_term(Monomial(fo.pool.id("X"), BigUint(1)), r_inv);
  EXPECT_EQ(fo.g, expect_o) << fo.g.to_string(fo.pool);
}

TEST_P(MontgomeryHierarchyTest, ComposedPolynomialIsAB) {
  const Gf2k field = Gf2k::make(GetParam());
  const MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  const HierarchicalAbstraction ha = abstract_montgomery(h, field);
  const MPoly ab = MPoly::variable(&field, ha.composed.pool.id("A")) *
                   MPoly::variable(&field, ha.composed.pool.id("B"));
  EXPECT_EQ(ha.composed.g, ab) << ha.composed.g.to_string(ha.composed.pool);
  EXPECT_EQ(ha.blocks.size(), 4u);
  EXPECT_EQ(ha.composed.output_word, "G");
}

INSTANTIATE_TEST_SUITE_P(Sizes, MontgomeryHierarchyTest,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 16, 24, 32));

TEST(Hierarchy, BuggyBlockComposesToWrongPolynomial) {
  const Gf2k field = Gf2k::make(4);
  MontgomeryHierarchy h = make_montgomery_hierarchy(field);
  BugDescription desc;
  h.blk_mid = inject_random_bug(h.blk_mid, /*seed=*/5, &desc);
  const HierarchicalAbstraction ha = abstract_montgomery(h, field);
  const MPoly ab = MPoly::variable(&field, ha.composed.pool.id("A")) *
                   MPoly::variable(&field, ha.composed.pool.id("B"));
  // The random bug may rarely be benign; this seed is checked to change the
  // function (if the generator changes, pick another seed).
  EXPECT_NE(ha.composed.g, ab) << "bug was benign: " << desc.text;
}

TEST(Hierarchy, GenericGraphWithDiamond) {
  // Z = (A·B)² via one multiplier block feeding a generic square-composition:
  // mid(X=T, Y=T) where T = mid(A, B) exercises reconvergent word signals.
  const Gf2k field = Gf2k::make(3);
  const Netlist mul = make_mastrovito_multiplier(field);
  // Rename the multiplier's words to the block interface X/Y/Z.
  Netlist blk = mul;
  // make_mastrovito declares A,B,Z; build the graph with those names.
  WordSignalGraph graph;
  graph.primary_inputs = {"A", "B"};
  graph.instances = {
      {&blk, "m1", {{"A", "A"}, {"B", "B"}}, "T"},
      {&blk, "m2", {{"A", "T"}, {"B", "T"}}, "S"},
  };
  graph.output_signal = "S";
  const HierarchicalAbstraction ha = abstract_hierarchy(graph, field);
  // S = (A·B)² = A²·B².
  MPoly expect(&field);
  expect.add_term(Monomial::from_pairs({{ha.composed.pool.id("A"), BigUint(2)},
                                        {ha.composed.pool.id("B"), BigUint(2)}}),
                  field.one());
  EXPECT_EQ(ha.composed.g, expect) << ha.composed.g.to_string(ha.composed.pool);
}

TEST(Hierarchy, UndrivenSignalThrows) {
  const Gf2k field = Gf2k::make(3);
  const Netlist mul = make_mastrovito_multiplier(field);
  WordSignalGraph graph;
  graph.primary_inputs = {"A"};
  graph.instances = {{&mul, "m", {{"A", "A"}, {"B", "GHOST"}}, "T"}};
  graph.output_signal = "T";
  EXPECT_THROW(abstract_hierarchy(graph, field), std::logic_error);
}

// Compares two word functions semantically on random points (across pools).
bool same_rendering(const WordFunction& f1, const WordFunction& f2,
                    const Gf2k& field) {
  test::Rng rng(7);
  for (int t = 0; t < 24; ++t) {
    const auto a = rng.elem(field), b = rng.elem(field);
    if (test::eval_word_function(f1, field, {{"A", a}, {"B", b}}) !=
        test::eval_word_function(f2, field, {{"A", a}, {"B", b}}))
      return false;
  }
  return true;
}

TEST(Hierarchy, CompositionMatchesFlatExtraction) {
  // The composed hierarchical polynomial must equal the polynomial extracted
  // from the flattened interconnection (Abstraction Theorem end-to-end).
  for (unsigned k : {2u, 4u, 8u}) {
    const Gf2k field = Gf2k::make(k);
    const HierarchicalAbstraction ha =
        abstract_montgomery(make_montgomery_hierarchy(field), field);
    const WordFunction flat =
        extract_word_function(make_montgomery_multiplier_flat(field), field);
    EXPECT_TRUE(same_rendering(ha.composed, flat, field)) << "k=" << k;
  }
}

}  // namespace
}  // namespace gfa
