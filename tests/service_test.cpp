// Tests for the verification service (src/service/): the job wire codecs,
// socket lifecycle (stale file takeover, live-server refusal), admission
// control (queue-full -> kResourceExhausted), graceful drain (in-flight jobs
// complete, late connects refused, serve() exits 0), crash containment, and
// the concurrency soak the ISSUE asks for — 8 concurrent clients, mixed k,
// injected worker:crash and cache:corrupt mid-run, every verdict correct,
// zero daemon restarts, cache hit-rate > 0. The CI robustness job runs this
// under ASan+UBSan.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "abstraction/equivalence.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/parser.h"
#include "service/client.h"
#include "service/service.h"
#include "util/fault_inject.h"
#include "util/json_reader.h"

namespace gfa {
namespace {

using service::JobRequest;
using service::JobResponse;
using service::ServerOptions;
using service::ServiceClient;

struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

std::string temp_dir() {
  std::string tmpl = ::testing::TempDir() + "gfa_service_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// The Mastrovito/Montgomery pair for F_2^k plus a mutated (buggy) Mastrovito
/// whose non-equivalence is established by a direct in-process check, so the
/// soak asserts against ground truth rather than assumptions about seeds.
struct Instance {
  std::string dir;
  std::string spec;  // Mastrovito
  std::string impl;  // Montgomery (equivalent to spec)
  std::string bug;   // mutated Mastrovito (not equivalent to spec)
};

Instance make_instance(unsigned k) {
  Instance inst;
  inst.dir = temp_dir();
  const Gf2k field = Gf2k::make(k);
  const Netlist spec = make_mastrovito_multiplier(field);
  inst.spec = inst.dir + "/spec.net";
  inst.impl = inst.dir + "/impl.net";
  inst.bug = inst.dir + "/bug.net";
  write_netlist_file(spec, inst.spec);
  write_netlist_file(make_montgomery_multiplier_flat(field), inst.impl);
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Netlist cand = inject_random_bug(spec, seed);
    const Result<EquivalenceResult> check =
        try_check_equivalence(spec, cand, field);
    if (check.ok() && !check->equivalent) {
      write_netlist_file(cand, inst.bug);
      return inst;
    }
  }
  ADD_FAILURE() << "no functionally distinct mutation found for k=" << k;
  return inst;
}

/// An in-process daemon: start() binds and spawns the pool, serve() runs on a
/// background thread, drain_and_join() returns serve()'s exit code.
struct TestServer {
  std::unique_ptr<service::Server> server;
  std::thread thread;
  int exit_code = -1;

  Status start(ServerOptions options) {
    server = std::make_unique<service::Server>(std::move(options));
    Status s = server->start();
    if (!s.ok()) return s;
    thread = std::thread([this] { exit_code = server->serve(); });
    return {};
  }

  int drain_and_join() {
    server->request_drain();
    if (thread.joinable()) thread.join();
    return exit_code;
  }

  /// Polls the snapshot until `pred` holds (or ~10 s pass).
  template <typename Pred>
  bool wait_for(Pred pred) {
    for (int i = 0; i < 2000; ++i) {
      if (pred(server->snapshot())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  ~TestServer() {
    if (server != nullptr && thread.joinable()) {
      server->request_drain();
      thread.join();
    }
  }
};

ServerOptions base_options(const std::string& socket_path) {
  ServerOptions options;
  options.socket_path = socket_path;
  options.pool_size = 2;
  options.queue_depth = 16;
  options.cache_enabled = true;
  options.default_timeout_seconds = 60.0;
  options.max_attempts = 2;
  options.heartbeat_interval_seconds = 0.1;
  return options;
}

JobRequest verify_request(const std::string& spec, const std::string& impl,
                          unsigned k) {
  JobRequest req;
  req.op = "verify";
  req.spec_path = spec;
  req.impl_path = impl;
  req.k = k;
  return req;
}

// ---------------------------------------------------------------------------
// Wire codecs.

TEST(ServiceProtocol, RequestCodecRoundTrips) {
  JobRequest req;
  req.op = "verify";
  req.id = 99;
  req.spec_path = "/tmp/a \"q\".net";
  req.impl_path = "/tmp/b.net";
  req.k = 163;
  req.engine = "portfolio";
  req.timeout_seconds = 7.5;
  req.memory_budget_bytes = std::uint64_t{3} << 30;
  req.no_cache = true;
  const Result<JobRequest> back =
      service::decode_job_request(service::encode_job_request(req));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->op, req.op);
  EXPECT_EQ(back->id, req.id);
  EXPECT_EQ(back->spec_path, req.spec_path);
  EXPECT_EQ(back->impl_path, req.impl_path);
  EXPECT_EQ(back->k, req.k);
  EXPECT_EQ(back->engine, req.engine);
  EXPECT_EQ(back->timeout_seconds, req.timeout_seconds);
  EXPECT_EQ(back->memory_budget_bytes, req.memory_budget_bytes);
  EXPECT_EQ(back->no_cache, req.no_cache);
}

TEST(ServiceProtocol, ResponseCodecRoundTrips) {
  JobResponse resp;
  resp.op = "verify";
  resp.id = 7;
  resp.status = Status::with_code(StatusCode::kWorkerCrashed,
                                  "child died with signal 6");
  resp.verdict = engine::Verdict::kNotEquivalent;
  resp.detail = "coefficient mismatch at A^2B";
  resp.wall_ms = 123.5;
  resp.cache = "hit";
  resp.stats["worker_attempts"] = 2.0;
  resp.counterexample.inputs = {{"A", "x^2 + 1"}, {"B", "x"}};
  resp.counterexample.output_word = "Z";
  resp.counterexample.expected = "x^3 + x";
  resp.counterexample.actual = "x + 1";
  resp.counterexample.replayed = true;
  const Result<JobResponse> back =
      service::decode_job_response(service::encode_job_response(resp));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->id, resp.id);
  EXPECT_EQ(back->status.code(), StatusCode::kWorkerCrashed);
  EXPECT_EQ(back->status.message(), "child died with signal 6");
  EXPECT_EQ(back->verdict, engine::Verdict::kNotEquivalent);
  EXPECT_EQ(back->detail, resp.detail);
  EXPECT_EQ(back->wall_ms, resp.wall_ms);
  EXPECT_EQ(back->cache, resp.cache);
  EXPECT_EQ(back->stats, resp.stats);
  EXPECT_EQ(back->counterexample.inputs, resp.counterexample.inputs);
  EXPECT_EQ(back->counterexample.output_word, "Z");
  EXPECT_EQ(back->counterexample.expected, "x^3 + x");
  EXPECT_EQ(back->counterexample.actual, "x + 1");
  EXPECT_TRUE(back->counterexample.replayed);
}

TEST(ServiceProtocol, ClearQuarantineOpRoundTrips) {
  JobRequest req;
  req.op = "clear-quarantine";
  req.id = 12;
  const Result<JobRequest> back =
      service::decode_job_request(service::encode_job_request(req));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->op, "clear-quarantine");
  EXPECT_EQ(back->id, 12u);
}

TEST(ServiceProtocol, DecodeRejectsGarbage) {
  EXPECT_FALSE(service::decode_job_request("not json").ok());
  EXPECT_FALSE(service::decode_job_request("{\"op\":\"reboot\"}").ok());
  EXPECT_FALSE(service::decode_job_response("[]").ok());
}

// ---------------------------------------------------------------------------
// Socket lifecycle.

TEST(Service, StaleSocketReplacedLiveSocketRefused) {
  const std::string path = temp_dir() + "/gfa.sock";
  // Manufacture a stale socket file: bind, then close without unlinking —
  // exactly what a SIGKILLed daemon leaves behind.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(fd);
  }

  TestServer a;
  ASSERT_TRUE(a.start(base_options(path)).ok());  // takes over the stale file

  // A second server on the same path must refuse: the first one is live.
  service::Server b(base_options(path));
  const Status s = b.start();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("already listening"), std::string::npos)
      << s.to_string();

  EXPECT_EQ(a.drain_and_join(), 0);
  // The drain unlinked the socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

// ---------------------------------------------------------------------------
// Status endpoint.

TEST(Service, StatusReportsPoolQueueAndCache) {
  const std::string path = temp_dir() + "/gfa.sock";
  ServerOptions options = base_options(path);
  options.pool_size = 3;
  options.queue_depth = 5;
  TestServer srv;
  ASSERT_TRUE(srv.start(std::move(options)).ok());

  Result<ServiceClient> client = ServiceClient::connect(path);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  const Result<std::string> snapshot = client->status_json(30.0);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().to_string();

  const Result<JsonValue> doc = parse_json(*snapshot);
  ASSERT_TRUE(doc.ok()) << *snapshot;
  const JsonValue* pool = doc->find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->u64_or("size", 0), 3u);
  const JsonValue* queue = doc->find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->u64_or("capacity", 0), 5u);
  EXPECT_FALSE(doc->bool_or("draining", true));
  ASSERT_NE(doc->find("jobs"), nullptr);
  const JsonValue* cache = doc->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->bool_or("enabled", false));
  EXPECT_EQ(srv.drain_and_join(), 0);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(Service, QueueFullAnswersOverloadedImmediately) {
  Disarmer disarm;
  const Instance inst = make_instance(4);
  const std::string path = temp_dir() + "/gfa.sock";
  ServerOptions options = base_options(path);
  options.pool_size = 1;
  options.queue_depth = 1;
  options.cache_enabled = false;  // every job forks; no cache short-cuts
  options.max_attempts = 1;
  options.default_timeout_seconds = 20.0;
  options.stall_timeout_seconds = 0.5;  // reap the injected hang quickly
  TestServer srv;
  ASSERT_TRUE(srv.start(std::move(options)).ok());

  Result<ServiceClient> client = ServiceClient::connect(path);
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  // Job 1 hangs in its forked worker (consumed parent-side, so exactly this
  // attempt misbehaves), pinning the single pool slot.
  ASSERT_TRUE(fault::arm_spec("worker:hang").ok());
  const Result<std::uint64_t> id1 =
      client->send(verify_request(inst.spec, inst.impl, 4));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(srv.wait_for([](const service::ServiceSnapshot& s) {
    return s.busy == 1;
  }));

  // Job 2 fills the one queue slot.
  const Result<std::uint64_t> id2 =
      client->send(verify_request(inst.spec, inst.impl, 4));
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(srv.wait_for([](const service::ServiceSnapshot& s) {
    return s.queue_depth == 1;
  }));

  // Job 3 must be rejected *now* — admission control, not buffering.
  const Result<std::uint64_t> id3 =
      client->send(verify_request(inst.spec, inst.impl, 4));
  ASSERT_TRUE(id3.ok());

  std::map<std::uint64_t, JobResponse> responses;
  for (int i = 0; i < 3; ++i) {
    Result<JobResponse> resp = client->receive(60.0);
    ASSERT_TRUE(resp.ok()) << resp.status().to_string();
    responses[resp->id] = *resp;
  }
  // The rejection: immediate, kResourceExhausted, self-describing.
  ASSERT_TRUE(responses.count(*id3));
  EXPECT_EQ(responses[*id3].status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(responses[*id3].status.message().find("overloaded"),
            std::string::npos);
  // The hung job was contained and classified; the daemon did not die.
  ASSERT_TRUE(responses.count(*id1));
  EXPECT_FALSE(responses[*id1].status.ok());
  // The queued job ran to a correct verdict once the slot freed.
  ASSERT_TRUE(responses.count(*id2));
  EXPECT_TRUE(responses[*id2].status.ok())
      << responses[*id2].status.to_string();
  EXPECT_EQ(responses[*id2].verdict, engine::Verdict::kEquivalent);

  const service::ServiceSnapshot snap = srv.server->snapshot();
  EXPECT_EQ(snap.jobs_rejected, 1u);
  EXPECT_EQ(snap.jobs_accepted, 2u);
  EXPECT_EQ(srv.drain_and_join(), 0);
}

// ---------------------------------------------------------------------------
// Graceful drain.

TEST(Service, DrainFinishesInFlightJobsAndRefusesLateConnects) {
  const Instance inst = make_instance(4);
  const std::string path = temp_dir() + "/gfa.sock";
  TestServer srv;
  ASSERT_TRUE(srv.start(base_options(path)).ok());

  Result<ServiceClient> client = ServiceClient::connect(path);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  const Result<std::uint64_t> id =
      client->send(verify_request(inst.spec, inst.impl, 4));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(srv.wait_for([](const service::ServiceSnapshot& s) {
    return s.jobs_accepted >= 1;
  }));

  // Drain with the job still in flight: it must complete and be answered
  // over the already-open connection.
  EXPECT_EQ(srv.drain_and_join(), 0);
  const Result<JobResponse> resp = client->receive(60.0);
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  EXPECT_EQ(resp->id, *id);
  ASSERT_TRUE(resp->status.ok()) << resp->status.to_string();
  EXPECT_EQ(resp->verdict, engine::Verdict::kEquivalent);

  // Late arrivals find no socket at all.
  EXPECT_FALSE(ServiceClient::connect(path).ok());
}

// ---------------------------------------------------------------------------
// Crash containment.

TEST(Service, WorkerCrashIsContainedAndServerKeepsServing) {
  Disarmer disarm;
  const Instance inst = make_instance(4);
  const std::string path = temp_dir() + "/gfa.sock";
  ServerOptions options = base_options(path);
  options.cache_enabled = false;
  options.max_attempts = 1;  // no retry: the crash surfaces to the client
  TestServer srv;
  ASSERT_TRUE(srv.start(std::move(options)).ok());

  Result<ServiceClient> client = ServiceClient::connect(path);
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  ASSERT_TRUE(fault::arm_spec("worker:crash").ok());
  const Result<JobResponse> crashed =
      client->call(verify_request(inst.spec, inst.impl, 4), 60.0);
  ASSERT_TRUE(crashed.ok()) << crashed.status().to_string();
  EXPECT_EQ(crashed->status.code(), StatusCode::kWorkerCrashed);
  EXPECT_TRUE(fault::fired());

  // Same server, next job: clean verdict. One crashing job never takes the
  // daemon down.
  const Result<JobResponse> clean =
      client->call(verify_request(inst.spec, inst.impl, 4), 60.0);
  ASSERT_TRUE(clean.ok()) << clean.status().to_string();
  ASSERT_TRUE(clean->status.ok()) << clean->status.to_string();
  EXPECT_EQ(clean->verdict, engine::Verdict::kEquivalent);

  const service::ServiceSnapshot snap = srv.server->snapshot();
  EXPECT_EQ(snap.jobs_failed, 1u);
  EXPECT_EQ(snap.jobs_completed, 2u);
  EXPECT_EQ(srv.drain_and_join(), 0);
}

// ---------------------------------------------------------------------------
// Poison-job quarantine.

TEST(Service, QuarantinedJobFastFailsWithoutForkingUntilCleared) {
  Disarmer disarm;
  const Instance inst = make_instance(4);
  const std::string path = temp_dir() + "/gfa.sock";
  ServerOptions options = base_options(path);
  options.cache_enabled = false;
  options.max_attempts = 1;
  options.quarantine_strikes = 1;  // a single crash trips the quarantine
  TestServer srv;
  ASSERT_TRUE(srv.start(std::move(options)).ok());

  Result<ServiceClient> client = ServiceClient::connect(path);
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  // Strike one: the forked worker crashes and the fingerprint trips.
  ASSERT_TRUE(fault::arm_spec("worker:crash").ok());
  const Result<JobResponse> crashed =
      client->call(verify_request(inst.spec, inst.impl, 4), 60.0);
  ASSERT_TRUE(crashed.ok()) << crashed.status().to_string();
  EXPECT_EQ(crashed->status.code(), StatusCode::kWorkerCrashed);
  EXPECT_TRUE(fault::fired());
  fault::disarm();  // a re-run would now succeed — unless quarantined

  // The identical submission answers kWorkerCrashed without forking: no
  // worker_attempts stat, the telltale "quarantined" detail, and the fault is
  // no longer armed so an actual fork would have produced a clean verdict.
  const Result<JobResponse> blocked =
      client->call(verify_request(inst.spec, inst.impl, 4), 60.0);
  ASSERT_TRUE(blocked.ok()) << blocked.status().to_string();
  EXPECT_EQ(blocked->status.code(), StatusCode::kWorkerCrashed);
  EXPECT_EQ(blocked->detail, "quarantined");
  EXPECT_EQ(blocked->stats.count("worker_attempts"), 0u);

  // A *different* job (same spec, different impl content) is unaffected, and
  // its refutation carries the simulator-replayed counterexample.
  const Result<JobResponse> other =
      client->call(verify_request(inst.spec, inst.bug, 4), 60.0);
  ASSERT_TRUE(other.ok()) << other.status().to_string();
  ASSERT_TRUE(other->status.ok()) << other->status.to_string();
  EXPECT_EQ(other->verdict, engine::Verdict::kNotEquivalent);
  ASSERT_FALSE(other->counterexample.empty());
  EXPECT_TRUE(other->counterexample.replayed);
  EXPECT_NE(other->counterexample.expected, other->counterexample.actual);

  const service::ServiceSnapshot snap = srv.server->snapshot();
  EXPECT_EQ(snap.quarantine_tracked, 1u);
  EXPECT_EQ(snap.quarantine_active, 1u);
  EXPECT_EQ(snap.quarantine_trips, 1u);
  EXPECT_EQ(snap.quarantine_fast_fails, 1u);

  // The status op reports the same numbers over the wire.
  const Result<std::string> status_text = client->status_json(60.0);
  ASSERT_TRUE(status_text.ok()) << status_text.status().to_string();
  const Result<JsonValue> status_json = parse_json(*status_text);
  ASSERT_TRUE(status_json.ok()) << status_json.status().to_string();
  const JsonValue* quarantine = status_json->find("quarantine");
  ASSERT_NE(quarantine, nullptr);
  EXPECT_EQ(quarantine->u64_or("strikes", 0), 1u);
  EXPECT_EQ(quarantine->u64_or("active", 99), 1u);
  EXPECT_EQ(quarantine->u64_or("fast_fails", 99), 1u);

  // clear-quarantine wipes the record and the job runs (and passes) again.
  JobRequest clear;
  clear.op = "clear-quarantine";
  const Result<JobResponse> cleared = client->call(std::move(clear), 60.0);
  ASSERT_TRUE(cleared.ok()) << cleared.status().to_string();
  ASSERT_TRUE(cleared->status.ok()) << cleared->status.to_string();
  ASSERT_EQ(cleared->stats.count("cleared"), 1u);
  EXPECT_EQ(cleared->stats.at("cleared"), 1.0);

  const Result<JobResponse> healed =
      client->call(verify_request(inst.spec, inst.impl, 4), 60.0);
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
  ASSERT_TRUE(healed->status.ok()) << healed->status.to_string();
  EXPECT_EQ(healed->verdict, engine::Verdict::kEquivalent);
  EXPECT_EQ(srv.server->snapshot().quarantine_tracked, 0u);
  EXPECT_EQ(srv.drain_and_join(), 0);
}

TEST(Service, QuarantineTtlForgivesOldStrikes) {
  Disarmer disarm;
  const Instance inst = make_instance(4);
  const std::string path = temp_dir() + "/gfa.sock";
  ServerOptions options = base_options(path);
  options.cache_enabled = false;
  options.max_attempts = 1;
  options.quarantine_strikes = 1;
  options.quarantine_ttl_seconds = 0.05;
  TestServer srv;
  ASSERT_TRUE(srv.start(std::move(options)).ok());

  Result<ServiceClient> client = ServiceClient::connect(path);
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  ASSERT_TRUE(fault::arm_spec("worker:crash").ok());
  const Result<JobResponse> crashed =
      client->call(verify_request(inst.spec, inst.impl, 4), 60.0);
  ASSERT_TRUE(crashed.ok()) << crashed.status().to_string();
  EXPECT_EQ(crashed->status.code(), StatusCode::kWorkerCrashed);
  fault::disarm();

  // After the TTL the strike record is forgotten and the job really runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const Result<JobResponse> healed =
      client->call(verify_request(inst.spec, inst.impl, 4), 60.0);
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
  ASSERT_TRUE(healed->status.ok()) << healed->status.to_string();
  EXPECT_EQ(healed->verdict, engine::Verdict::kEquivalent);
  EXPECT_EQ(srv.server->snapshot().quarantine_tracked, 0u);
  EXPECT_EQ(srv.drain_and_join(), 0);
}

// ---------------------------------------------------------------------------
// The soak: 8 concurrent clients, mixed k, faults injected mid-run.

struct SoakResult {
  JobRequest request;
  Result<JobResponse> response = Result<JobResponse>(JobResponse{});
  engine::Verdict expected = engine::Verdict::kUnknown;
};

TEST(Service, SoakConcurrentClientsWithInjectedFaults) {
  Disarmer disarm;
  const Instance small = make_instance(4);
  const Instance medium = make_instance(8);
  const std::string path = temp_dir() + "/gfa.sock";
  ServerOptions options = base_options(path);
  options.pool_size = 4;
  options.queue_depth = 64;
  options.max_attempts = 2;  // injected crashes are retried transparently
  TestServer srv;
  ASSERT_TRUE(srv.start(std::move(options)).ok());

  // Job menu with ground-truth verdicts (established by make_instance).
  struct Menu {
    std::string spec, impl;
    unsigned k;
    engine::Verdict expected;
  };
  const std::vector<Menu> menu = {
      {small.spec, small.impl, 4, engine::Verdict::kEquivalent},
      {medium.spec, medium.impl, 8, engine::Verdict::kEquivalent},
      {small.spec, small.bug, 4, engine::Verdict::kNotEquivalent},
  };

  const auto run_wave = [&](std::vector<SoakResult>& results) {
    constexpr int kClients = 8;
    constexpr int kJobsPerClient = 3;
    results.assign(kClients * kJobsPerClient, SoakResult{});
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Result<ServiceClient> client = ServiceClient::connect(path);
        if (!client.ok()) {
          for (int j = 0; j < kJobsPerClient; ++j)
            results[c * kJobsPerClient + j].response =
                Result<JobResponse>(client.status());
          return;
        }
        for (int j = 0; j < kJobsPerClient; ++j) {
          const Menu& m = menu[(c + j) % menu.size()];
          SoakResult& slot = results[c * kJobsPerClient + j];
          slot.request = verify_request(m.spec, m.impl, m.k);
          slot.expected = m.expected;
          slot.response = client->call(slot.request, 120.0);
        }
      });
    }
    for (std::thread& t : clients) t.join();
  };

  const auto check_wave = [&](const std::vector<SoakResult>& results,
                              const char* wave) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SoakResult& r = results[i];
      ASSERT_TRUE(r.response.ok())
          << wave << " job " << i << ": " << r.response.status().to_string();
      ASSERT_TRUE(r.response->status.ok())
          << wave << " job " << i << ": " << r.response->status.to_string();
      EXPECT_EQ(r.response->verdict, r.expected) << wave << " job " << i;
    }
  };

  // Seed the cache with one circuit pair whose first stored entry is
  // corrupted by the armed fault. Done serially, before the waves, so no
  // concurrent clean re-put of the same key can paper over the damage: the
  // second call *must* catch the corruption, drop the entry, and recompute
  // to the correct verdict.
  Result<ServiceClient> probe = ServiceClient::connect(path);
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(fault::arm_spec("cache:corrupt").ok());
  const Result<JobResponse> seeded =
      probe->call(verify_request(small.spec, small.impl, 4), 120.0);
  ASSERT_TRUE(seeded.ok() && seeded->status.ok());
  EXPECT_EQ(seeded->verdict, engine::Verdict::kEquivalent);
  EXPECT_TRUE(fault::fired());
  const Result<JobResponse> healed =
      probe->call(verify_request(small.spec, small.impl, 4), 120.0);
  ASSERT_TRUE(healed.ok() && healed->status.ok());
  EXPECT_EQ(healed->verdict, engine::Verdict::kEquivalent);
  EXPECT_GE(srv.server->snapshot().cache.corrupt_dropped, 1u);

  // Wave 1: the medium/bug pairs are still cold, so forks happen — and one
  // of them crashes (consumed parent-side); max_attempts=2 retries it
  // transparently to the correct verdict.
  ASSERT_TRUE(fault::arm_spec("worker:crash").ok());
  std::vector<SoakResult> wave1;
  run_wave(wave1);
  check_wave(wave1, "wave1");
  EXPECT_TRUE(fault::fired());

  // Wave 2: warm cache — repeated circuits answer from the cache.
  fault::disarm();
  std::vector<SoakResult> wave2;
  run_wave(wave2);
  check_wave(wave2, "wave2");

  // Cache-hit verdicts equal cold-cache verdicts, per job type.
  for (const Menu& m : menu) {
    JobRequest cold = verify_request(m.spec, m.impl, m.k);
    cold.no_cache = true;
    const Result<JobResponse> cold_resp = probe->call(cold, 120.0);
    ASSERT_TRUE(cold_resp.ok() && cold_resp->status.ok());
    const Result<JobResponse> warm_resp =
        probe->call(verify_request(m.spec, m.impl, m.k), 120.0);
    ASSERT_TRUE(warm_resp.ok() && warm_resp->status.ok());
    EXPECT_EQ(cold_resp->verdict, warm_resp->verdict);
    EXPECT_EQ(warm_resp->verdict, m.expected);
    EXPECT_EQ(warm_resp->cache, "hit");
  }

  const service::ServiceSnapshot snap = srv.server->snapshot();
  EXPECT_GT(snap.cache.hits, 0u);               // repeated circuits hit
  EXPECT_GE(snap.cache.corrupt_dropped, 1u);    // the damage was caught
  EXPECT_EQ(snap.jobs_rejected, 0u);            // queue_depth=64 was ample
  EXPECT_EQ(snap.jobs_completed, snap.jobs_accepted);
  // Zero daemon restarts: the one server answered everything and still
  // drains cleanly.
  EXPECT_EQ(srv.drain_and_join(), 0);
}

}  // namespace
}  // namespace gfa
