#include "gf/biguint.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gfa {
namespace {

TEST(BigUint, Basics) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), -1);
  EXPECT_EQ(z.to_string(), "0");
  BigUint one(1);
  EXPECT_TRUE(one.is_one());
  EXPECT_EQ(one.bit_length(), 0);
  EXPECT_EQ(BigUint(12345).to_string(), "12345");
}

TEST(BigUint, Pow2) {
  EXPECT_EQ(BigUint::pow2(0), BigUint(1));
  EXPECT_EQ(BigUint::pow2(13), BigUint(8192));
  const BigUint big = BigUint::pow2(200);
  EXPECT_EQ(big.bit_length(), 200);
  EXPECT_TRUE(big.bit(200));
  EXPECT_FALSE(big.bit(199));
  EXPECT_FALSE(big.bit(201));
}

TEST(BigUint, AdditionMatchesUint128) {
  test::Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.next(), b = rng.next();
    const unsigned __int128 expect = (unsigned __int128)a + b;
    const BigUint sum = BigUint(a) + BigUint(b);
    EXPECT_EQ(sum.bit(64), (expect >> 64) != 0);
    EXPECT_EQ(sum.low_u64(), static_cast<std::uint64_t>(expect));
  }
}

TEST(BigUint, AdditionCarryChain) {
  // (2^128 - 1) + 1 = 2^128
  BigUint v = (BigUint::pow2(128) - BigUint(1)) + BigUint(1);
  EXPECT_EQ(v, BigUint::pow2(128));
}

TEST(BigUint, SubtractionMatchesUint128) {
  test::Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    std::uint64_t a = rng.next(), b = rng.next();
    if (a < b) std::swap(a, b);
    EXPECT_EQ(BigUint(a) - BigUint(b), BigUint(a - b));
  }
}

TEST(BigUint, SubtractionBorrowChain) {
  EXPECT_EQ(BigUint::pow2(128) - BigUint(1),
            (BigUint::pow2(64) - BigUint(1)) +
                ((BigUint::pow2(64) - BigUint(1)) << 64));
}

TEST(BigUint, MultiplicationMatchesUint128) {
  test::Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.next(), b = rng.next();
    const unsigned __int128 expect = (unsigned __int128)a * b;
    const BigUint prod = BigUint(a) * BigUint(b);
    EXPECT_EQ(prod.low_u64(), static_cast<std::uint64_t>(expect));
    BigUint hi = prod.divmod(BigUint::pow2(64)).quotient;
    EXPECT_EQ(hi.low_u64(), static_cast<std::uint64_t>(expect >> 64));
  }
}

TEST(BigUint, MultiplicationLawsLarge) {
  const BigUint a = BigUint::pow2(100) + BigUint(77);
  const BigUint b = BigUint::pow2(130) + BigUint(5);
  const BigUint c = BigUint(123456789);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a * BigUint(1), a);
  EXPECT_EQ(a * BigUint(), BigUint());
}

TEST(BigUint, DivModRoundTrip) {
  test::Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    BigUint a = BigUint(rng.next()) * BigUint(rng.next()) + BigUint(rng.next());
    BigUint d = BigUint(rng.next() | 1);
    const auto dm = a.divmod(d);
    EXPECT_EQ(dm.quotient * d + dm.remainder, a);
    EXPECT_LT(dm.remainder, d);
  }
}

TEST(BigUint, DivModSmallCases) {
  EXPECT_EQ((BigUint(7) % BigUint(3)), BigUint(1));
  EXPECT_EQ(BigUint(6).divmod(BigUint(3)).quotient, BigUint(2));
  EXPECT_EQ(BigUint(5).divmod(BigUint(8)).quotient, BigUint());
  EXPECT_EQ(BigUint(5).divmod(BigUint(8)).remainder, BigUint(5));
}

TEST(BigUint, Ordering) {
  EXPECT_LT(BigUint(1), BigUint(2));
  EXPECT_LT(BigUint(0xFFFFFFFFFFFFFFFFull), BigUint::pow2(64));
  EXPECT_GT(BigUint::pow2(128), BigUint::pow2(127) + BigUint::pow2(126));
  EXPECT_EQ(BigUint(42) <=> BigUint(42), std::strong_ordering::equal);
}

TEST(BigUint, ShiftLeft) {
  EXPECT_EQ(BigUint(1) << 200, BigUint::pow2(200));
  EXPECT_EQ(BigUint(0b101) << 63, BigUint::pow2(65) + BigUint::pow2(63));
}

TEST(BigUint, ToStringLarge) {
  // 2^100 = 1267650600228229401496703205376
  EXPECT_EQ(BigUint::pow2(100).to_string(), "1267650600228229401496703205376");
  // 10^19 boundary handling
  EXPECT_EQ(BigUint(10000000000000000000ull).to_string(), "10000000000000000000");
}

TEST(BigUint, HashConsistency) {
  EXPECT_EQ(BigUint(17).hash(), BigUint(17).hash());
  EXPECT_NE(BigUint(17).hash(), BigUint(18).hash());
}

}  // namespace
}  // namespace gfa
