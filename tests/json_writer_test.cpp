// Units for the shared streaming JSON writer (util/json_writer.h), with the
// escaping cases that motivated extracting it from bench_util.h: the old
// ad-hoc writer emitted invalid JSON for any string containing a quote,
// backslash, or control character.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <locale>
#include <sstream>

#include "util/json_writer.h"

namespace gfa {
namespace {

TEST(JsonWriterEscape, QuotesAndBackslashes) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
}

TEST(JsonWriterEscape, NamedControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::escape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonWriter::escape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonWriter::escape("a\bb"), "a\\bb");
  EXPECT_EQ(JsonWriter::escape("a\fb"), "a\\fb");
}

TEST(JsonWriterEscape, OtherControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonWriterEscape, Utf8PassesThrough) {
  // "Gröbner" in UTF-8: no bytes below 0x20, none escaped.
  const std::string s = "Gr\xc3\xb6" "bner";
  EXPECT_EQ(JsonWriter::escape(s), s);
}

TEST(JsonWriter, CompactObject) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("engine", "sat");
  w.member("wall_ms", 12.5);
  w.member("proved", true);
  w.end_object();
  EXPECT_EQ(out.str(), R"({"engine":"sat","wall_ms":12.5,"proved":true})");
}

TEST(JsonWriter, CompactNestedArray) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(1);
  w.begin_object();
  w.key("xs");
  w.begin_array();
  w.value(2u);
  w.value(std::int64_t{-3});
  w.end_array();
  w.end_object();
  w.null();
  w.end_array();
  EXPECT_EQ(out.str(), R"([1,{"xs":[2,-3]},null])");
}

TEST(JsonWriter, IndentedOutputShape) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.member("k", 8u);
  w.key("runs");
  w.begin_array();
  w.value("a");
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n  \"k\": 8,\n  \"runs\": [\n    \"a\"\n  ]\n}");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("stats");
  w.begin_object();
  w.end_object();
  w.key("runs");
  w.begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(), "{\n  \"stats\": {},\n  \"runs\": []\n}");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("a\"b", 1);
  w.end_object();
  EXPECT_EQ(out.str(), R"({"a\"b":1})");
}

TEST(JsonWriter, DoublesRoundTripAndIntegersStayExact) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(0.001);
  w.value(1.0);
  w.value(std::uint64_t{18446744073709551615ull});
  w.end_array();
  EXPECT_EQ(out.str(), "[0.001,1,18446744073709551615]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

// A numpunct facet mimicking a German-style locale: ',' decimal point, '.'
// thousands separator, groups of three. Built directly instead of by name
// ("de_DE.UTF-8") so the test runs on containers with no locales installed.
struct GermanNumpunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST(JsonWriterLocale, ImbuedStreamCannotCorruptNumbers) {
  // Regression: the report/bench streams may carry a user locale; "1,5" and
  // "1.234.567" are invalid JSON. The writer must pin the classic locale.
  std::ostringstream out;
  out.imbue(std::locale(std::locale::classic(), new GermanNumpunct));
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(1.5);
  w.value(std::int64_t{1234567});
  w.value(std::uint64_t{9876543});
  w.end_array();
  EXPECT_EQ(out.str(), "[1.5,1234567,9876543]");
}

TEST(JsonWriterLocale, GlobalLocaleCannotCorruptNumbers) {
  // Same guarantee when the *global* locale is hostile: fresh streams inherit
  // it at construction, before JsonWriter gets a chance to see them.
  const std::locale saved = std::locale::global(
      std::locale(std::locale::classic(), new GermanNumpunct));
  std::string text;
  {
    std::ostringstream out;  // inherits the hostile global locale
    JsonWriter w(out, 0);
    w.begin_object();
    w.member("wall_ms", 1234.5);
    w.member("terms", std::uint64_t{1000000});
    w.end_object();
    text = out.str();
  }
  std::locale::global(saved);
  EXPECT_EQ(text, R"({"wall_ms":1234.5,"terms":1000000})");
}

}  // namespace
}  // namespace gfa
