// Units for the shared streaming JSON writer (util/json_writer.h), with the
// escaping cases that motivated extracting it from bench_util.h: the old
// ad-hoc writer emitted invalid JSON for any string containing a quote,
// backslash, or control character.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json_writer.h"

namespace gfa {
namespace {

TEST(JsonWriterEscape, QuotesAndBackslashes) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
}

TEST(JsonWriterEscape, NamedControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::escape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonWriter::escape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonWriter::escape("a\bb"), "a\\bb");
  EXPECT_EQ(JsonWriter::escape("a\fb"), "a\\fb");
}

TEST(JsonWriterEscape, OtherControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonWriterEscape, Utf8PassesThrough) {
  // "Gröbner" in UTF-8: no bytes below 0x20, none escaped.
  const std::string s = "Gr\xc3\xb6" "bner";
  EXPECT_EQ(JsonWriter::escape(s), s);
}

TEST(JsonWriter, CompactObject) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("engine", "sat");
  w.member("wall_ms", 12.5);
  w.member("proved", true);
  w.end_object();
  EXPECT_EQ(out.str(), R"({"engine":"sat","wall_ms":12.5,"proved":true})");
}

TEST(JsonWriter, CompactNestedArray) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(1);
  w.begin_object();
  w.key("xs");
  w.begin_array();
  w.value(2u);
  w.value(std::int64_t{-3});
  w.end_array();
  w.end_object();
  w.null();
  w.end_array();
  EXPECT_EQ(out.str(), R"([1,{"xs":[2,-3]},null])");
}

TEST(JsonWriter, IndentedOutputShape) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.member("k", 8u);
  w.key("runs");
  w.begin_array();
  w.value("a");
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n  \"k\": 8,\n  \"runs\": [\n    \"a\"\n  ]\n}");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("stats");
  w.begin_object();
  w.end_object();
  w.key("runs");
  w.begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(), "{\n  \"stats\": {},\n  \"runs\": []\n}");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("a\"b", 1);
  w.end_object();
  EXPECT_EQ(out.str(), R"({"a\"b":1})");
}

TEST(JsonWriter, DoublesRoundTripAndIntegersStayExact) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(0.001);
  w.value(1.0);
  w.value(std::uint64_t{18446744073709551615ull});
  w.end_array();
  EXPECT_EQ(out.str(), "[0.001,1,18446744073709551615]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

}  // namespace
}  // namespace gfa
