#include "gf/normal_basis.h"

#include <gtest/gtest.h>

#include "abstraction/equivalence.h"
#include "abstraction/word_lift.h"
#include "baselines/interpolation.h"
#include "circuit/massey_omura.h"
#include "circuit/mastrovito.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

class NormalBasisTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(NormalBasisTest, FindsANormalElement) {
  const Gf2k field = Gf2k::make(GetParam());
  const NormalBasis nb = NormalBasis::find(field);
  // Orbit structure: basis[i+1] = basis[i]² and basis[0]^{2^k} = basis[0].
  for (unsigned i = 0; i + 1 < field.k(); ++i)
    EXPECT_EQ(nb.basis()[i + 1], field.square(nb.basis()[i]));
  EXPECT_EQ(field.square(nb.basis().back()), nb.basis()[0]);
}

TEST_P(NormalBasisTest, CoordinateRoundTrip) {
  const Gf2k field = Gf2k::make(GetParam());
  const NormalBasis nb = NormalBasis::find(field);
  test::Rng rng(GetParam() * 19);
  for (int t = 0; t < 32; ++t) {
    const auto a = rng.elem(field);
    EXPECT_EQ(nb.from_coords(nb.to_coords(a)), a);
  }
  EXPECT_TRUE(nb.to_coords(field.zero()).is_zero());
}

TEST_P(NormalBasisTest, SquaringIsCyclicShift) {
  // The normal-basis selling point: coords(a²) = coords(a) rotated by one.
  const Gf2k field = Gf2k::make(GetParam());
  const unsigned k = field.k();
  const NormalBasis nb = NormalBasis::find(field);
  test::Rng rng(GetParam() * 23);
  for (int t = 0; t < 16; ++t) {
    const auto a = rng.elem(field);
    const Gf2Poly ca = nb.to_coords(a);
    const Gf2Poly ca2 = nb.to_coords(field.square(a));
    for (unsigned i = 0; i < k; ++i)
      EXPECT_EQ(ca2.coeff((i + 1) % k), ca.coeff(i));
  }
}

TEST_P(NormalBasisTest, LambdaMatrixDefinesMultiplication) {
  const Gf2k field = Gf2k::make(GetParam());
  const unsigned k = field.k();
  const NormalBasis nb = NormalBasis::find(field);
  test::Rng rng(GetParam() * 29);
  for (int t = 0; t < 8; ++t) {
    const auto a = rng.elem(field), b = rng.elem(field);
    const Gf2Poly ca = nb.to_coords(a), cb = nb.to_coords(b);
    // z_l = Σ_{ij} λ[i][j]_l a_i b_j.
    Gf2Poly cz;
    for (unsigned i = 0; i < k; ++i) {
      if (!ca.coeff(i)) continue;
      for (unsigned j = 0; j < k; ++j)
        if (cb.coeff(j)) cz += nb.lambda()[i][j];
    }
    EXPECT_EQ(nb.from_coords(cz), field.mul(a, b));
  }
}

TEST_P(NormalBasisTest, MasseyOmuraShiftSymmetry) {
  // λ_l[i][j] = λ_0[i-l][j-l] (mod k): the one-Boolean-function property.
  const Gf2k field = Gf2k::make(GetParam());
  const unsigned k = field.k();
  const NormalBasis nb = NormalBasis::find(field);
  for (unsigned l = 0; l < k; ++l)
    for (unsigned i = 0; i < k; ++i)
      for (unsigned j = 0; j < k; ++j)
        EXPECT_EQ(nb.lambda()[i][j].coeff(l),
                  nb.lambda()[(i + k - l) % k][(j + k - l) % k].coeff(0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NormalBasisTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 11, 16));

class MasseyOmura : public ::testing::TestWithParam<unsigned> {};

TEST_P(MasseyOmura, MultipliesInNormalCoordinates) {
  const Gf2k field = Gf2k::make(GetParam());
  const NormalBasis nb = NormalBasis::find(field);
  const Netlist nl = make_massey_omura_multiplier(field, nb);
  EXPECT_TRUE(nl.validate().empty());
  test::Rng rng(GetParam() * 31);
  std::vector<Gf2Poly> ca, cb, expect;
  for (int i = 0; i < 32; ++i) {
    const auto a = rng.elem(field), b = rng.elem(field);
    ca.push_back(nb.to_coords(a));
    cb.push_back(nb.to_coords(b));
    expect.push_back(nb.to_coords(field.mul(a, b)));
  }
  // simulate_words just moves bits; the normal interpretation lives in the
  // coordinate conversion on both sides.
  EXPECT_EQ(simulate_words(nl, *nl.find_word("Z"),
                           {{nl.find_word("A"), ca}, {nl.find_word("B"), cb}}),
            expect);
}

TEST_P(MasseyOmura, AbstractsToABOverNormalBasis) {
  const Gf2k field = Gf2k::make(GetParam());
  const NormalBasis nb = NormalBasis::find(field);
  const Netlist nl = make_massey_omura_multiplier(field, nb);
  ExtractionOptions options;
  options.basis = &nb.basis();
  const WordFunction fn = extract_word_function(nl, field, options);
  const MPoly ab = MPoly::variable(&field, fn.pool.id("A")) *
                   MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, ab) << fn.g.to_string(fn.pool);
}

TEST_P(MasseyOmura, CrossRepresentationEquivalence) {
  // The headline extension: a polynomial-basis Mastrovito multiplier and a
  // normal-basis Massey–Omura multiplier — no two corresponding output bits
  // compute the same Boolean function — proven equivalent as field functions
  // by comparing canonical polynomials extracted under each circuit's basis.
  const Gf2k field = Gf2k::make(GetParam());
  const NormalBasis nb = NormalBasis::find(field);

  const WordFunction spec =
      extract_word_function(make_mastrovito_multiplier(field), field);
  ExtractionOptions nb_options;
  nb_options.basis = &nb.basis();
  const WordFunction impl = extract_word_function(
      make_massey_omura_multiplier(field, nb), field, nb_options);

  std::string why;
  EXPECT_TRUE(same_word_function(spec, impl, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MasseyOmura, ::testing::Values(2, 3, 4, 5, 6, 8, 11, 16));

TEST(MasseyOmura, WrongBasisInterpretationIsCaught) {
  // Reading a Massey–Omura circuit with the polynomial basis yields some
  // *other* polynomial — not A·B (unless the bases coincide, excluded here).
  const Gf2k field = Gf2k::make(5);
  const NormalBasis nb = NormalBasis::find(field);
  const Netlist nl = make_massey_omura_multiplier(field, nb);
  const WordFunction wrong = extract_word_function(nl, field);  // default basis
  const MPoly ab = MPoly::variable(&field, wrong.pool.id("A")) *
                   MPoly::variable(&field, wrong.pool.id("B"));
  EXPECT_NE(wrong.g, ab);
}

TEST(MasseyOmura, NormalBasisSquarerAbstracts) {
  const Gf2k field = Gf2k::make(6);
  const NormalBasis nb = NormalBasis::find(field);
  const Netlist nl = make_normal_basis_squarer(field);
  ExtractionOptions options;
  options.basis = &nb.basis();
  const WordFunction fn = extract_word_function(nl, field, options);
  MPoly expect(&field);
  expect.add_term(Monomial(fn.pool.id("A"), BigUint(2)), field.one());
  EXPECT_EQ(fn.g, expect) << fn.g.to_string(fn.pool);
}

TEST(MasseyOmura, SharedLiftBasisMismatchIsRejected) {
  const Gf2k field = Gf2k::make(4);
  const NormalBasis nb = NormalBasis::find(field);
  const WordLift poly_lift(&field);  // polynomial basis
  ExtractionOptions options;
  options.basis = &nb.basis();
  options.shared_lift = &poly_lift;
  EXPECT_THROW(extract_word_function(make_massey_omura_multiplier(field, nb),
                                     field, options),
               std::invalid_argument);
}

TEST(NormalBasisUnit, NonNormalElementRejected) {
  // 1 is never normal (its orbit is {1}); α in F_4 with x²+x+1 *is* normal.
  const Gf2k f4(Gf2Poly::from_bits(0b111));
  EXPECT_FALSE(NormalBasis::from_element(f4, f4.one()).has_value());
  EXPECT_TRUE(NormalBasis::from_element(f4, f4.alpha()).has_value());
}

}  // namespace
}  // namespace gfa
