#pragma once
// Shared helpers for the test suite.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "abstraction/extractor.h"
#include "circuit/netlist.h"
#include "gf/gf2k.h"
#include "poly/mpoly.h"

namespace gfa::test {

/// Deterministic splitmix64 stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  /// Uniform field element (any k).
  Gf2k::Elem elem(const Gf2k& field) {
    Gf2Poly p;
    for (unsigned i = 0; i < field.k(); ++i)
      if (next() & 1u) p.set_coeff(i, true);
    return p;
  }

 private:
  std::uint64_t state_;
};

/// The exact 2-bit multiplier of the paper's Fig. 2 over F_4 (P = x² + x + 1).
/// With `with_bug`, the r0 gate is fed s0 instead of s1 — the paper's
/// Example 5.1 defect.
inline Netlist make_fig2_multiplier(bool with_bug = false) {
  Netlist nl(with_bug ? "fig2_buggy" : "fig2");
  const NetId a0 = nl.add_input("a0"), a1 = nl.add_input("a1");
  const NetId b0 = nl.add_input("b0"), b1 = nl.add_input("b1");
  const NetId s0 = nl.add_gate(GateType::kAnd, {a0, b0}, "s0");
  const NetId s1 = nl.add_gate(GateType::kAnd, {a0, b1}, "s1");
  const NetId s2 = nl.add_gate(GateType::kAnd, {a1, b0}, "s2");
  const NetId s3 = nl.add_gate(GateType::kAnd, {a1, b1}, "s3");
  const NetId r0 =
      nl.add_gate(GateType::kXor, {with_bug ? s0 : s1, s2}, "r0");
  const NetId z0 = nl.add_gate(GateType::kXor, {s0, s3}, "z0");
  const NetId z1 = nl.add_gate(GateType::kXor, {r0, s3}, "z1");
  nl.mark_output(z0);
  nl.mark_output(z1);
  nl.declare_word("A", {a0, a1});
  nl.declare_word("B", {b0, b1});
  nl.declare_word("Z", {z0, z1});
  return nl;
}

/// A random 2-input-word combinational circuit: k-bit words A, B in, k-bit
/// word Z out, built from a random DAG of AND/OR/XOR/NOT gates.
inline Netlist make_random_word_circuit(unsigned k, std::uint64_t seed,
                                        std::size_t extra_gates = 24) {
  Rng rng(seed);
  Netlist nl("random_" + std::to_string(k) + "_" + std::to_string(seed));
  std::vector<NetId> a(k), b(k);
  for (unsigned i = 0; i < k; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < k; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  std::vector<NetId> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  for (std::size_t g = 0; g < extra_gates; ++g) {
    const NetId x = all[rng.below(all.size())];
    const NetId y = all[rng.below(all.size())];
    NetId n;
    switch (rng.below(4)) {
      case 0: n = nl.add_gate(GateType::kAnd, {x, y}); break;
      case 1: n = nl.add_gate(GateType::kOr, {x, y}); break;
      case 2: n = nl.add_gate(GateType::kXor, {x, y}); break;
      default: n = nl.add_gate(GateType::kNot, {x}); break;
    }
    all.push_back(n);
  }
  std::vector<NetId> z(k);
  for (unsigned i = 0; i < k; ++i) {
    // Ensure outputs are gates (not raw inputs) so the output word is found.
    const NetId x = all[rng.below(all.size())];
    const NetId y = all[rng.below(all.size())];
    z[i] = nl.add_gate(GateType::kXor, {x, y}, "z" + std::to_string(i));
    nl.mark_output(z[i]);
  }
  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("Z", z);
  return nl;
}

/// Evaluates a WordFunction at named word inputs.
inline Gf2k::Elem eval_word_function(
    const WordFunction& fn, const Gf2k& field,
    const std::map<std::string, Gf2k::Elem>& inputs) {
  return fn.g.eval([&](VarId v) {
    auto it = inputs.find(fn.pool.name(v));
    if (it == inputs.end()) return field.zero();
    return it->second;
  });
}

}  // namespace gfa::test
