// Tests for the process-isolation layer (src/worker/): the length-prefixed
// frame protocol and its JSON codecs, supervised forked runs, termination
// classification (clean exit, injected crash, real SIGKILL, hang past the
// wall clock), retry-with-backoff, and the portfolio falling through a
// crashed isolated attempt. The CI job runs this under ASan+UBSan: every
// fork/kill path must stay clean.

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/parser.h"
#include "engine/registry.h"
#include "util/fault_inject.h"
#include "worker/harness.h"
#include "worker/protocol.h"
#include "worker/retry.h"

namespace gfa::worker {
namespace {

/// Disarms on scope exit so a failing assertion cannot poison later tests.
struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

/// The Mastrovito/Montgomery pair for F_2^k written under a fresh temp
/// directory, plus a request pointing at the files.
struct Instance {
  std::string dir;
  WorkerRequest req;
};

Instance make_instance(unsigned k) {
  Instance inst;
  std::string tmpl = ::testing::TempDir() + "gfa_worker_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  inst.dir = dir;
  const Gf2k field = Gf2k::make(k);
  write_netlist_file(make_mastrovito_multiplier(field),
                     inst.dir + "/spec.net");
  write_netlist_file(make_montgomery_multiplier_flat(field),
                     inst.dir + "/impl.net");
  inst.req.spec_path = inst.dir + "/spec.net";
  inst.req.impl_path = inst.dir + "/impl.net";
  inst.req.k = k;
  return inst;
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(WorkerProtocol, RequestCodecRoundTrips) {
  WorkerRequest req;
  req.spec_path = "/tmp/a \"quoted\".net";
  req.impl_path = "/tmp/b.net";
  req.k = 163;
  req.engine = "portfolio";
  req.timeout_seconds = 12.5;
  req.sat_conflict_limit = 1000;
  req.bdd_node_limit = 2000;
  req.max_terms = 3000;
  req.gb_max_reductions = 4000;
  req.gb_max_poly_terms = 5000;
  req.memory_budget_bytes = std::uint64_t{3} << 30;
  req.attempt_timeout_seconds = 1.25;
  req.portfolio_engines = {"abstraction", "sat"};
  req.portfolio_race = false;
  req.checkpoint_dir = "/tmp/ck";
  req.checkpoint_interval = 500;
  req.checkpoint_resume = true;
  req.simulate_crash = false;
  req.simulate_hang = true;
  const Result<WorkerRequest> back = decode_request(encode_request(req));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->spec_path, req.spec_path);
  EXPECT_EQ(back->impl_path, req.impl_path);
  EXPECT_EQ(back->k, req.k);
  EXPECT_EQ(back->engine, req.engine);
  EXPECT_EQ(back->timeout_seconds, req.timeout_seconds);
  EXPECT_EQ(back->sat_conflict_limit, req.sat_conflict_limit);
  EXPECT_EQ(back->bdd_node_limit, req.bdd_node_limit);
  EXPECT_EQ(back->max_terms, req.max_terms);
  EXPECT_EQ(back->gb_max_reductions, req.gb_max_reductions);
  EXPECT_EQ(back->gb_max_poly_terms, req.gb_max_poly_terms);
  EXPECT_EQ(back->memory_budget_bytes, req.memory_budget_bytes);
  EXPECT_EQ(back->attempt_timeout_seconds, req.attempt_timeout_seconds);
  EXPECT_EQ(back->portfolio_engines, req.portfolio_engines);
  EXPECT_EQ(back->checkpoint_dir, req.checkpoint_dir);
  EXPECT_EQ(back->checkpoint_interval, req.checkpoint_interval);
  EXPECT_TRUE(back->checkpoint_resume);
  EXPECT_FALSE(back->simulate_crash);
  EXPECT_TRUE(back->simulate_hang);
}

TEST(WorkerProtocol, RequestDecodeRejectsMissingPathsAndBadK) {
  WorkerRequest req;
  req.spec_path = "";
  req.impl_path = "/tmp/b.net";
  req.k = 8;
  EXPECT_FALSE(decode_request(encode_request(req)).ok());
  req.spec_path = "/tmp/a.net";
  req.k = 1;
  EXPECT_FALSE(decode_request(encode_request(req)).ok());
  EXPECT_FALSE(decode_request("not json").ok());
}

TEST(WorkerProtocol, ResponseCodecRoundTrips) {
  WorkerResponse resp;
  resp.status = Status::resource_exhausted("out of terms");
  resp.verdict = engine::Verdict::kNotEquivalent;
  resp.detail = "counterexample at A=3";
  resp.stats["substitutions"] = 123.0;
  resp.stats["peak_terms"] = 456.0;
  resp.resumed = true;
  resp.wall_ms = 78.5;
  resp.budget_limit_bytes = 1u << 20;
  resp.budget_peak_bytes = 1234;
  engine::AttemptRecord a;
  a.engine = "abstraction";
  a.status = Status::worker_crashed("signal 11");
  a.detail = "attempt 1/2";
  a.wall_ms = 3.5;
  resp.attempts.push_back(a);
  engine::AttemptRecord b;
  b.engine = "sat";
  b.skipped = true;
  b.detail = "already decided";
  resp.attempts.push_back(b);
  const Result<WorkerResponse> back = decode_response(encode_response(resp));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(back->status.message(), "out of terms");
  EXPECT_EQ(back->verdict, engine::Verdict::kNotEquivalent);
  EXPECT_EQ(back->detail, resp.detail);
  EXPECT_EQ(back->stats, resp.stats);
  EXPECT_TRUE(back->resumed);
  EXPECT_EQ(back->wall_ms, resp.wall_ms);
  EXPECT_EQ(back->budget_limit_bytes, resp.budget_limit_bytes);
  EXPECT_EQ(back->budget_peak_bytes, resp.budget_peak_bytes);
  ASSERT_EQ(back->attempts.size(), 2u);
  EXPECT_EQ(back->attempts[0].engine, "abstraction");
  EXPECT_EQ(back->attempts[0].status.code(), StatusCode::kWorkerCrashed);
  EXPECT_FALSE(back->attempts[0].skipped);
  EXPECT_TRUE(back->attempts[1].skipped);
  EXPECT_EQ(back->attempts[1].detail, "already decided");
}

TEST(WorkerProtocol, FramesCrossAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string payload = "{\"hello\": \"world\"}";
  ASSERT_TRUE(write_frame(fds[1], payload).ok());
  const Result<std::string> got = read_frame(fds[0], Deadline::infinite());
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(*got, payload);
  close(fds[0]);
  close(fds[1]);
}

TEST(WorkerProtocol, ClosedPipeReadsAsWorkerCrashed) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[1]);  // writer gone before any frame
  const Result<std::string> got = read_frame(fds[0], Deadline::infinite());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kWorkerCrashed);
  close(fds[0]);
}

TEST(WorkerProtocol, OversizedLengthPrefixIsProtocolCorruption) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  unsigned char header[4] = {
      static_cast<unsigned char>(huge & 0xFF),
      static_cast<unsigned char>((huge >> 8) & 0xFF),
      static_cast<unsigned char>((huge >> 16) & 0xFF),
      static_cast<unsigned char>((huge >> 24) & 0xFF)};
  ASSERT_EQ(write(fds[1], header, 4), 4);
  const Result<std::string> got = read_frame(fds[0], Deadline::infinite());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  close(fds[0]);
  close(fds[1]);
}

TEST(WorkerProtocol, FramesSurviveASignalStorm) {
  // Regression for the EINTR/partial-I/O hardening: a megabyte frame pushed
  // through a socketpair whose buffers hold only a few kilobytes forces many
  // partial read()/write() rounds, while a third thread storms both
  // endpoints with SIGUSR1 registered *without* SA_RESTART — so the
  // syscalls genuinely return EINTR instead of resuming silently. The frame
  // must round-trip intact; before the hardening this lost bytes mid-frame.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int tiny = 4096;
  setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
  setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));

  struct sigaction storm_action {};
  storm_action.sa_handler = [](int) {};
  sigemptyset(&storm_action.sa_mask);
  storm_action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old_action {};
  ASSERT_EQ(sigaction(SIGUSR1, &storm_action, &old_action), 0);

  std::string payload(1 << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>('a' + i % 23);

  Status write_status;
  std::thread writer([&] { write_status = write_frame(sv[0], payload); });
  const pthread_t writer_tid = writer.native_handle();
  const pthread_t reader_tid = pthread_self();
  std::atomic<bool> done{false};
  std::thread storm([&] {
    while (!done.load()) {
      pthread_kill(writer_tid, SIGUSR1);
      pthread_kill(reader_tid, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const Result<std::string> got = read_frame(sv[1], Deadline::after(60.0));
  writer.join();
  done.store(true);
  storm.join();
  ASSERT_EQ(sigaction(SIGUSR1, &old_action, nullptr), 0);

  ASSERT_TRUE(write_status.ok()) << write_status.to_string();
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(*got, payload);
  close(sv[0]);
  close(sv[1]);
}

TEST(WorkerProtocol, TelemetryRequestFieldsRoundTrip) {
  WorkerRequest req;
  req.spec_path = "/tmp/a.net";
  req.impl_path = "/tmp/b.net";
  req.k = 8;
  req.heartbeat_interval_seconds = 0.25;
  req.stall_timeout_seconds = 7.5;
  req.trace = true;
  const Result<WorkerRequest> back = decode_request(encode_request(req));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->heartbeat_interval_seconds, 0.25);
  EXPECT_EQ(back->stall_timeout_seconds, 7.5);
  EXPECT_TRUE(back->trace);
}

TEST(WorkerProtocol, ResponsePeakRssRoundTrips) {
  WorkerResponse resp;
  resp.status = Status();
  resp.peak_rss_bytes = std::uint64_t{123} << 20;
  const Result<WorkerResponse> back = decode_response(encode_response(resp));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->peak_rss_bytes, resp.peak_rss_bytes);
}

TEST(WorkerProtocol, FrameKindDiscriminatesTheStream) {
  const auto kind_of = [](std::string_view json) {
    const Result<JsonValue> doc = parse_json(json);
    EXPECT_TRUE(doc.ok());
    return frame_kind(*doc);
  };
  EXPECT_EQ(kind_of("{\"frame\": \"telemetry\"}"), FrameKind::kTelemetry);
  EXPECT_EQ(kind_of("{\"frame\": \"trace\"}"), FrameKind::kTrace);
  EXPECT_EQ(kind_of("{\"frame\": \"flight\"}"), FrameKind::kFlight);
  EXPECT_EQ(kind_of("{\"frame\": \"response\"}"), FrameKind::kResponse);
  // The legacy single-frame protocol has no "frame" key at all.
  EXPECT_EQ(kind_of("{\"status\": \"kOk\"}"), FrameKind::kResponse);
  EXPECT_EQ(kind_of("{\"frame\": \"???\"}"), FrameKind::kResponse);
}

TEST(WorkerProtocol, TelemetryFrameCodecRoundTrips) {
  TelemetryFrame t;
  t.seq = 17;
  t.phase = "reduction_chain";
  t.step = 1234;
  t.total = 5000;
  t.terms = 98765;
  t.budget_bytes = std::uint64_t{1} << 30;
  t.rss_bytes = std::uint64_t{2} << 30;
  t.metrics["reduction_steps"] = 4321;
  t.metrics["rewriter.substitution_us.p99"] = 127;
  const Result<JsonValue> doc = parse_json(encode_telemetry_frame(t));
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(frame_kind(*doc), FrameKind::kTelemetry);
  const Result<TelemetryFrame> back = decode_telemetry_frame(*doc);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->seq, t.seq);
  EXPECT_EQ(back->phase, t.phase);
  EXPECT_EQ(back->step, t.step);
  EXPECT_EQ(back->total, t.total);
  EXPECT_EQ(back->terms, t.terms);
  EXPECT_EQ(back->budget_bytes, t.budget_bytes);
  EXPECT_EQ(back->rss_bytes, t.rss_bytes);
  EXPECT_EQ(back->metrics, t.metrics);
}

TEST(WorkerProtocol, TraceFrameCodecRoundTrips) {
  TraceFramePayload payload;
  payload.epoch_us = 99887766;
  obs::TraceEvent e;
  e.name = "reduction_chain";
  e.category = "abstraction";
  e.start_us = 100;
  e.duration_us = 250;
  e.tid = 3;
  payload.events.push_back(e);
  e.name = "case2_lift";
  e.start_us = 400;
  payload.events.push_back(e);
  const Result<JsonValue> doc = parse_json(encode_trace_frame(payload));
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(frame_kind(*doc), FrameKind::kTrace);
  const Result<TraceFramePayload> back = decode_trace_frame(*doc);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->epoch_us, payload.epoch_us);
  ASSERT_EQ(back->events.size(), 2u);
  EXPECT_EQ(back->events[0].name, "reduction_chain");
  EXPECT_STREQ(back->events[0].category, "abstraction");
  EXPECT_EQ(back->events[0].start_us, 100u);
  EXPECT_EQ(back->events[0].duration_us, 250u);
  EXPECT_EQ(back->events[0].tid, 3u);
  EXPECT_EQ(back->events[1].name, "case2_lift");
}

TEST(WorkerProtocol, FlightDumpFrameDecodesWhatTheHandlerEmits) {
  // dump_frame is the hand-rolled async-signal-safe encoder the crash
  // handler runs; decode_flight_frame must parse exactly what it writes.
  obs::flight::clear();
  obs::flight::note("worker:start", 163);
  obs::flight::note("reduction_chain", 42, 98765);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  obs::flight::dump_frame(fds[1]);
  const Result<std::string> raw = read_frame(fds[0], Deadline::infinite());
  close(fds[0]);
  close(fds[1]);
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  const Result<JsonValue> doc = parse_json(*raw);
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(frame_kind(*doc), FrameKind::kFlight);
  const Result<std::vector<obs::flight::Event>> events =
      decode_flight_frame(*doc);
  ASSERT_TRUE(events.ok()) << events.status().to_string();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_STREQ((*events)[0].tag, "worker:start");
  EXPECT_EQ((*events)[0].a, 163u);
  EXPECT_STREQ((*events)[1].tag, "reduction_chain");
  EXPECT_EQ((*events)[1].a, 42u);
  EXPECT_EQ((*events)[1].b, 98765u);
  EXPECT_GT((*events)[1].seq, (*events)[0].seq);
  obs::flight::clear();
}

// ---------------------------------------------------------------------------
// Retry policy.

TEST(RetryPolicy, DelaysAreDeterministicBoundedAndClamped) {
  RetryPolicy p;
  p.backoff_seconds = 0.1;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 0.35;
  p.jitter_seed = 42;
  const double d2 = p.delay_before_attempt(2);
  const double d3 = p.delay_before_attempt(3);
  const double d4 = p.delay_before_attempt(4);
  // Same seed, same attempt -> same delay; jitter stays within [0.75, 1.25).
  EXPECT_EQ(d2, p.delay_before_attempt(2));
  EXPECT_GE(d2, 0.1 * 0.75);
  EXPECT_LT(d2, 0.1 * 1.25);
  EXPECT_GE(d3, 0.2 * 0.75);
  EXPECT_LT(d3, 0.2 * 1.25);
  // 0.4 clamps to 0.35 before jitter.
  EXPECT_LT(d4, 0.35 * 1.25);
  RetryPolicy other = p;
  other.jitter_seed = 43;
  EXPECT_NE(p.delay_before_attempt(2), other.delay_before_attempt(2));
}

TEST(RetryPolicy, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(RetryPolicy::retryable(StatusCode::kWorkerCrashed));
  EXPECT_TRUE(RetryPolicy::retryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(RetryPolicy::retryable(StatusCode::kInternal));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kParseError));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kUnsupported));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kCancelled));
}

// ---------------------------------------------------------------------------
// Supervised forked runs.

TEST(WorkerHarness, CleanIsolatedRunDecidesEquivalent) {
  const Instance inst = make_instance(8);
  const engine::EngineRun run = run_in_worker(inst.req);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_EQ(run.verdict, engine::Verdict::kEquivalent);
  EXPECT_GT(run.wall_ms, 0.0);
  EXPECT_GT(run.stats.at("spec_substitutions"), 0.0);
}

TEST(WorkerHarness, MissingCircuitFileFailsInsideTheSandbox) {
  Instance inst = make_instance(4);
  inst.req.spec_path = inst.dir + "/no_such_file.net";
  const engine::EngineRun run = run_in_worker(inst.req);
  ASSERT_FALSE(run.status.ok());
  // The child reports its own parse failure over the pipe — this is the
  // engine's status, not a supervisor crash classification.
  EXPECT_NE(run.status.code(), StatusCode::kWorkerCrashed);
  EXPECT_FALSE(RetryPolicy::retryable(run.status.code()));
}

TEST(WorkerHarness, InjectedCrashClassifiesAsWorkerCrashedExit71) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(8);
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  const engine::EngineRun run = run_in_worker(inst.req);
  EXPECT_TRUE(fault::fired());
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed);
  EXPECT_EQ(exit_code_for(run.status.code()), 71);
}

TEST(WorkerHarness, RealSigkillMidRunIsWorkerCrashed) {
  const Instance inst = make_instance(32);
  WorkerConfig config;
  config.on_spawn = [](pid_t pid) { kill(pid, SIGKILL); };
  const engine::EngineRun run = run_in_worker(inst.req, config);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed);
  EXPECT_NE(run.status.message().find("signal 9"), std::string::npos)
      << run.status.message();
}

TEST(WorkerHarness, HangingWorkerIsKilledAtTheWallClock) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  Instance inst = make_instance(8);
  inst.req.timeout_seconds = 0.3;
  ASSERT_TRUE(fault::arm("worker:hang", 1).ok());
  WorkerConfig config;
  config.kill_grace_seconds = 0.2;  // the hang ignores SIGTERM; SIGKILL wins
  const engine::EngineRun run = run_in_worker(inst.req, config);
  EXPECT_TRUE(fault::fired());
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kDeadlineExceeded)
      << run.status.to_string();
  EXPECT_LT(run.wall_ms, 10000.0);
}

TEST(WorkerHarness, RetryRecoversFromAnInjectedCrash) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(8);
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_seconds = 0.01;  // keep the test fast
  const engine::EngineRun run = run_isolated_with_retry(inst.req, policy);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_EQ(run.verdict, engine::Verdict::kEquivalent);
  EXPECT_EQ(run.stats.at("worker_attempts"), 2.0);
  ASSERT_EQ(run.attempts.size(), 2u);
  EXPECT_EQ(run.attempts[0].status.code(), StatusCode::kWorkerCrashed);
  EXPECT_TRUE(run.attempts[1].status.ok());
}

TEST(WorkerHarness, CrashWithoutRetriesStaysFailed) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(8);
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  RetryPolicy policy;  // max_attempts = 1: never retry
  const engine::EngineRun run = run_isolated_with_retry(inst.req, policy);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed);
}

TEST(WorkerHarness, NonRetryableFailureRunsExactlyOnce) {
  Instance inst = make_instance(4);
  inst.req.spec_path = inst.dir + "/no_such_file.net";
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_seconds = 0.01;
  const engine::EngineRun run = run_isolated_with_retry(inst.req, policy);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.stats.at("worker_attempts"), 1.0);
}

// ---------------------------------------------------------------------------
// Telemetry across the worker boundary.

TEST(WorkerHarness, CleanIsolatedRunCarriesTelemetry) {
  Instance inst = make_instance(8);
  inst.req.heartbeat_interval_seconds = 0.01;
  const engine::EngineRun run = run_in_worker(inst.req);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  // Phase changes flush a frame immediately, so even a run far shorter than
  // the heartbeat interval reports its progression.
  EXPECT_GE(run.heartbeats, 1u);
  EXPECT_FALSE(run.last_phase.empty());
  EXPECT_GT(run.peak_rss_bytes, 0u);
}

TEST(WorkerHarness, HeartbeatZeroIsTheDarkBaseline) {
  Instance inst = make_instance(8);
  inst.req.heartbeat_interval_seconds = 0.0;
  const engine::EngineRun run = run_in_worker(inst.req);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_EQ(run.heartbeats, 0u);
  EXPECT_TRUE(run.last_phase.empty());
}

TEST(WorkerHarness, CrashReportCarriesTheFlightRecorderTail) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(8);
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  RetryPolicy policy;  // max_attempts = 1: the crash is the outcome
  const engine::EngineRun run = run_isolated_with_retry(inst.req, policy);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed);
  // The child's SIGABRT handler dumped the ring over the pipe before dying.
  ASSERT_FALSE(run.flight_events.empty());
  bool saw_start = false;
  for (const std::string& line : run.flight_events)
    if (line.find("worker:start") != std::string::npos) saw_start = true;
  EXPECT_TRUE(saw_start) << run.flight_events.front();
  // Even a lone failed attempt appears in the per-attempt history.
  ASSERT_EQ(run.attempts.size(), 1u);
  EXPECT_EQ(run.attempts[0].status.code(), StatusCode::kWorkerCrashed);
}

TEST(WorkerHarness, StallDetectorFiresBeforeTheWallClock) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  Instance inst = make_instance(8);
  inst.req.timeout_seconds = 30.0;  // the wall alone would wait far longer
  inst.req.heartbeat_interval_seconds = 0.05;
  inst.req.stall_timeout_seconds = 0.4;
  ASSERT_TRUE(fault::arm("worker:hang", 1).ok());
  WorkerConfig config;
  config.kill_grace_seconds = 0.2;  // the hang ignores SIGTERM; SIGKILL wins
  const auto t0 = std::chrono::steady_clock::now();
  const engine::EngineRun run = run_in_worker(inst.req, config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(fault::fired());
  ASSERT_FALSE(run.status.ok());
  // A stall is a crash-class (retryable) failure, not kDeadlineExceeded.
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed)
      << run.status.to_string();
  EXPECT_NE(run.status.message().find("stalled"), std::string::npos)
      << run.status.message();
  EXPECT_EQ(run.stats.at("worker_stalled"), 1.0);
  EXPECT_LT(elapsed, 10.0) << "stall detector should beat the 30s wall";
}

TEST(WorkerHarness, ChildTraceEventsMergeOntoTheParentTimeline) {
  const bool was_enabled = obs::trace_enabled();
  obs::set_trace_enabled(true);
  obs::Tracer::instance().clear();
  Instance inst = make_instance(8);
  inst.req.heartbeat_interval_seconds = 0.01;
  const engine::EngineRun run = run_in_worker(inst.req);
  const std::vector<obs::TraceEvent> events = obs::Tracer::instance().events();
  obs::Tracer::instance().clear();
  obs::set_trace_enabled(was_enabled);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  bool parent_event = false;
  bool child_event = false;
  for (const obs::TraceEvent& e : events) {
    if (e.pid == 0) parent_event = true;  // the supervisor's own spans
    else child_event = true;              // re-stamped spans from the child
  }
  EXPECT_TRUE(parent_event);
  EXPECT_TRUE(child_event);
}

// ---------------------------------------------------------------------------
// Portfolio over isolated attempts.

TEST(WorkerHarness, PortfolioFallsThroughACrashedIsolatedAttempt) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(4);
  const Gf2k field = Gf2k::make(4);
  const Result<Netlist> spec = try_read_netlist_file(inst.req.spec_path);
  const Result<Netlist> impl = try_read_netlist_file(inst.req.impl_path);
  ASSERT_TRUE(spec.ok() && impl.ok());
  engine::RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.isolate_attempts = true;
  options.worker_spec_path = inst.req.spec_path;
  options.worker_impl_path = inst.req.impl_path;
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  const Result<engine::VerifyResult> r =
      engine::EngineRegistry::global().find("portfolio")->verify(
          *spec, *impl, field, options);
  EXPECT_TRUE(fault::fired());
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, engine::Verdict::kEquivalent);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_EQ(r->attempts[0].status.code(), StatusCode::kWorkerCrashed);
  EXPECT_TRUE(r->attempts[1].status.ok());
}

TEST(WorkerHarness, RaceRejectsIsolatedAttempts) {
  const Instance inst = make_instance(4);
  const Gf2k field = Gf2k::make(4);
  const Result<Netlist> spec = try_read_netlist_file(inst.req.spec_path);
  const Result<Netlist> impl = try_read_netlist_file(inst.req.impl_path);
  ASSERT_TRUE(spec.ok() && impl.ok());
  engine::RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.isolate_attempts = true;
  options.portfolio_race = true;
  options.worker_spec_path = inst.req.spec_path;
  options.worker_impl_path = inst.req.impl_path;
  const Result<engine::VerifyResult> r =
      engine::EngineRegistry::global().find("portfolio")->verify(
          *spec, *impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkerHarness, IsolatedAttemptsNeedTheCircuitPaths) {
  const Instance inst = make_instance(4);
  const Gf2k field = Gf2k::make(4);
  const Result<Netlist> spec = try_read_netlist_file(inst.req.spec_path);
  const Result<Netlist> impl = try_read_netlist_file(inst.req.impl_path);
  ASSERT_TRUE(spec.ok() && impl.ok());
  engine::RunOptions options;
  options.isolate_attempts = true;  // but no worker_*_path
  const Result<engine::VerifyResult> r =
      engine::EngineRegistry::global().find("portfolio")->verify(
          *spec, *impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gfa::worker
