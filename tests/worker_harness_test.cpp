// Tests for the process-isolation layer (src/worker/): the length-prefixed
// frame protocol and its JSON codecs, supervised forked runs, termination
// classification (clean exit, injected crash, real SIGKILL, hang past the
// wall clock), retry-with-backoff, and the portfolio falling through a
// crashed isolated attempt. The CI job runs this under ASan+UBSan: every
// fork/kill path must stay clean.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/parser.h"
#include "engine/registry.h"
#include "util/fault_inject.h"
#include "worker/harness.h"
#include "worker/protocol.h"
#include "worker/retry.h"

namespace gfa::worker {
namespace {

/// Disarms on scope exit so a failing assertion cannot poison later tests.
struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

/// The Mastrovito/Montgomery pair for F_2^k written under a fresh temp
/// directory, plus a request pointing at the files.
struct Instance {
  std::string dir;
  WorkerRequest req;
};

Instance make_instance(unsigned k) {
  Instance inst;
  std::string tmpl = ::testing::TempDir() + "gfa_worker_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  inst.dir = dir;
  const Gf2k field = Gf2k::make(k);
  write_netlist_file(make_mastrovito_multiplier(field),
                     inst.dir + "/spec.net");
  write_netlist_file(make_montgomery_multiplier_flat(field),
                     inst.dir + "/impl.net");
  inst.req.spec_path = inst.dir + "/spec.net";
  inst.req.impl_path = inst.dir + "/impl.net";
  inst.req.k = k;
  return inst;
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(WorkerProtocol, RequestCodecRoundTrips) {
  WorkerRequest req;
  req.spec_path = "/tmp/a \"quoted\".net";
  req.impl_path = "/tmp/b.net";
  req.k = 163;
  req.engine = "portfolio";
  req.timeout_seconds = 12.5;
  req.sat_conflict_limit = 1000;
  req.bdd_node_limit = 2000;
  req.max_terms = 3000;
  req.gb_max_reductions = 4000;
  req.gb_max_poly_terms = 5000;
  req.memory_budget_bytes = std::uint64_t{3} << 30;
  req.attempt_timeout_seconds = 1.25;
  req.portfolio_engines = {"abstraction", "sat"};
  req.portfolio_race = false;
  req.checkpoint_dir = "/tmp/ck";
  req.checkpoint_interval = 500;
  req.checkpoint_resume = true;
  req.simulate_crash = false;
  req.simulate_hang = true;
  const Result<WorkerRequest> back = decode_request(encode_request(req));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->spec_path, req.spec_path);
  EXPECT_EQ(back->impl_path, req.impl_path);
  EXPECT_EQ(back->k, req.k);
  EXPECT_EQ(back->engine, req.engine);
  EXPECT_EQ(back->timeout_seconds, req.timeout_seconds);
  EXPECT_EQ(back->sat_conflict_limit, req.sat_conflict_limit);
  EXPECT_EQ(back->bdd_node_limit, req.bdd_node_limit);
  EXPECT_EQ(back->max_terms, req.max_terms);
  EXPECT_EQ(back->gb_max_reductions, req.gb_max_reductions);
  EXPECT_EQ(back->gb_max_poly_terms, req.gb_max_poly_terms);
  EXPECT_EQ(back->memory_budget_bytes, req.memory_budget_bytes);
  EXPECT_EQ(back->attempt_timeout_seconds, req.attempt_timeout_seconds);
  EXPECT_EQ(back->portfolio_engines, req.portfolio_engines);
  EXPECT_EQ(back->checkpoint_dir, req.checkpoint_dir);
  EXPECT_EQ(back->checkpoint_interval, req.checkpoint_interval);
  EXPECT_TRUE(back->checkpoint_resume);
  EXPECT_FALSE(back->simulate_crash);
  EXPECT_TRUE(back->simulate_hang);
}

TEST(WorkerProtocol, RequestDecodeRejectsMissingPathsAndBadK) {
  WorkerRequest req;
  req.spec_path = "";
  req.impl_path = "/tmp/b.net";
  req.k = 8;
  EXPECT_FALSE(decode_request(encode_request(req)).ok());
  req.spec_path = "/tmp/a.net";
  req.k = 1;
  EXPECT_FALSE(decode_request(encode_request(req)).ok());
  EXPECT_FALSE(decode_request("not json").ok());
}

TEST(WorkerProtocol, ResponseCodecRoundTrips) {
  WorkerResponse resp;
  resp.status = Status::resource_exhausted("out of terms");
  resp.verdict = engine::Verdict::kNotEquivalent;
  resp.detail = "counterexample at A=3";
  resp.stats["substitutions"] = 123.0;
  resp.stats["peak_terms"] = 456.0;
  resp.resumed = true;
  resp.wall_ms = 78.5;
  resp.budget_limit_bytes = 1u << 20;
  resp.budget_peak_bytes = 1234;
  engine::AttemptRecord a;
  a.engine = "abstraction";
  a.status = Status::worker_crashed("signal 11");
  a.detail = "attempt 1/2";
  a.wall_ms = 3.5;
  resp.attempts.push_back(a);
  engine::AttemptRecord b;
  b.engine = "sat";
  b.skipped = true;
  b.detail = "already decided";
  resp.attempts.push_back(b);
  const Result<WorkerResponse> back = decode_response(encode_response(resp));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(back->status.message(), "out of terms");
  EXPECT_EQ(back->verdict, engine::Verdict::kNotEquivalent);
  EXPECT_EQ(back->detail, resp.detail);
  EXPECT_EQ(back->stats, resp.stats);
  EXPECT_TRUE(back->resumed);
  EXPECT_EQ(back->wall_ms, resp.wall_ms);
  EXPECT_EQ(back->budget_limit_bytes, resp.budget_limit_bytes);
  EXPECT_EQ(back->budget_peak_bytes, resp.budget_peak_bytes);
  ASSERT_EQ(back->attempts.size(), 2u);
  EXPECT_EQ(back->attempts[0].engine, "abstraction");
  EXPECT_EQ(back->attempts[0].status.code(), StatusCode::kWorkerCrashed);
  EXPECT_FALSE(back->attempts[0].skipped);
  EXPECT_TRUE(back->attempts[1].skipped);
  EXPECT_EQ(back->attempts[1].detail, "already decided");
}

TEST(WorkerProtocol, FramesCrossAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string payload = "{\"hello\": \"world\"}";
  ASSERT_TRUE(write_frame(fds[1], payload).ok());
  const Result<std::string> got = read_frame(fds[0], Deadline::infinite());
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(*got, payload);
  close(fds[0]);
  close(fds[1]);
}

TEST(WorkerProtocol, ClosedPipeReadsAsWorkerCrashed) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[1]);  // writer gone before any frame
  const Result<std::string> got = read_frame(fds[0], Deadline::infinite());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kWorkerCrashed);
  close(fds[0]);
}

TEST(WorkerProtocol, OversizedLengthPrefixIsProtocolCorruption) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  unsigned char header[4] = {
      static_cast<unsigned char>(huge & 0xFF),
      static_cast<unsigned char>((huge >> 8) & 0xFF),
      static_cast<unsigned char>((huge >> 16) & 0xFF),
      static_cast<unsigned char>((huge >> 24) & 0xFF)};
  ASSERT_EQ(write(fds[1], header, 4), 4);
  const Result<std::string> got = read_frame(fds[0], Deadline::infinite());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Retry policy.

TEST(RetryPolicy, DelaysAreDeterministicBoundedAndClamped) {
  RetryPolicy p;
  p.backoff_seconds = 0.1;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 0.35;
  p.jitter_seed = 42;
  const double d2 = p.delay_before_attempt(2);
  const double d3 = p.delay_before_attempt(3);
  const double d4 = p.delay_before_attempt(4);
  // Same seed, same attempt -> same delay; jitter stays within [0.75, 1.25).
  EXPECT_EQ(d2, p.delay_before_attempt(2));
  EXPECT_GE(d2, 0.1 * 0.75);
  EXPECT_LT(d2, 0.1 * 1.25);
  EXPECT_GE(d3, 0.2 * 0.75);
  EXPECT_LT(d3, 0.2 * 1.25);
  // 0.4 clamps to 0.35 before jitter.
  EXPECT_LT(d4, 0.35 * 1.25);
  RetryPolicy other = p;
  other.jitter_seed = 43;
  EXPECT_NE(p.delay_before_attempt(2), other.delay_before_attempt(2));
}

TEST(RetryPolicy, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(RetryPolicy::retryable(StatusCode::kWorkerCrashed));
  EXPECT_TRUE(RetryPolicy::retryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(RetryPolicy::retryable(StatusCode::kInternal));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kParseError));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kUnsupported));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(RetryPolicy::retryable(StatusCode::kCancelled));
}

// ---------------------------------------------------------------------------
// Supervised forked runs.

TEST(WorkerHarness, CleanIsolatedRunDecidesEquivalent) {
  const Instance inst = make_instance(8);
  const engine::EngineRun run = run_in_worker(inst.req);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_EQ(run.verdict, engine::Verdict::kEquivalent);
  EXPECT_GT(run.wall_ms, 0.0);
  EXPECT_GT(run.stats.at("spec_substitutions"), 0.0);
}

TEST(WorkerHarness, MissingCircuitFileFailsInsideTheSandbox) {
  Instance inst = make_instance(4);
  inst.req.spec_path = inst.dir + "/no_such_file.net";
  const engine::EngineRun run = run_in_worker(inst.req);
  ASSERT_FALSE(run.status.ok());
  // The child reports its own parse failure over the pipe — this is the
  // engine's status, not a supervisor crash classification.
  EXPECT_NE(run.status.code(), StatusCode::kWorkerCrashed);
  EXPECT_FALSE(RetryPolicy::retryable(run.status.code()));
}

TEST(WorkerHarness, InjectedCrashClassifiesAsWorkerCrashedExit71) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(8);
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  const engine::EngineRun run = run_in_worker(inst.req);
  EXPECT_TRUE(fault::fired());
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed);
  EXPECT_EQ(exit_code_for(run.status.code()), 71);
}

TEST(WorkerHarness, RealSigkillMidRunIsWorkerCrashed) {
  const Instance inst = make_instance(32);
  WorkerConfig config;
  config.on_spawn = [](pid_t pid) { kill(pid, SIGKILL); };
  const engine::EngineRun run = run_in_worker(inst.req, config);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed);
  EXPECT_NE(run.status.message().find("signal 9"), std::string::npos)
      << run.status.message();
}

TEST(WorkerHarness, HangingWorkerIsKilledAtTheWallClock) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  Instance inst = make_instance(8);
  inst.req.timeout_seconds = 0.3;
  ASSERT_TRUE(fault::arm("worker:hang", 1).ok());
  WorkerConfig config;
  config.kill_grace_seconds = 0.2;  // the hang ignores SIGTERM; SIGKILL wins
  const engine::EngineRun run = run_in_worker(inst.req, config);
  EXPECT_TRUE(fault::fired());
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kDeadlineExceeded)
      << run.status.to_string();
  EXPECT_LT(run.wall_ms, 10000.0);
}

TEST(WorkerHarness, RetryRecoversFromAnInjectedCrash) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(8);
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_seconds = 0.01;  // keep the test fast
  const engine::EngineRun run = run_isolated_with_retry(inst.req, policy);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_EQ(run.verdict, engine::Verdict::kEquivalent);
  EXPECT_EQ(run.stats.at("worker_attempts"), 2.0);
  ASSERT_EQ(run.attempts.size(), 2u);
  EXPECT_EQ(run.attempts[0].status.code(), StatusCode::kWorkerCrashed);
  EXPECT_TRUE(run.attempts[1].status.ok());
}

TEST(WorkerHarness, CrashWithoutRetriesStaysFailed) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(8);
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  RetryPolicy policy;  // max_attempts = 1: never retry
  const engine::EngineRun run = run_isolated_with_retry(inst.req, policy);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kWorkerCrashed);
}

TEST(WorkerHarness, NonRetryableFailureRunsExactlyOnce) {
  Instance inst = make_instance(4);
  inst.req.spec_path = inst.dir + "/no_such_file.net";
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_seconds = 0.01;
  const engine::EngineRun run = run_isolated_with_retry(inst.req, policy);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.stats.at("worker_attempts"), 1.0);
}

// ---------------------------------------------------------------------------
// Portfolio over isolated attempts.

TEST(WorkerHarness, PortfolioFallsThroughACrashedIsolatedAttempt) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Instance inst = make_instance(4);
  const Gf2k field = Gf2k::make(4);
  const Result<Netlist> spec = try_read_netlist_file(inst.req.spec_path);
  const Result<Netlist> impl = try_read_netlist_file(inst.req.impl_path);
  ASSERT_TRUE(spec.ok() && impl.ok());
  engine::RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.isolate_attempts = true;
  options.worker_spec_path = inst.req.spec_path;
  options.worker_impl_path = inst.req.impl_path;
  ASSERT_TRUE(fault::arm("worker:crash", 1).ok());
  const Result<engine::VerifyResult> r =
      engine::EngineRegistry::global().find("portfolio")->verify(
          *spec, *impl, field, options);
  EXPECT_TRUE(fault::fired());
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->verdict, engine::Verdict::kEquivalent);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_EQ(r->attempts[0].status.code(), StatusCode::kWorkerCrashed);
  EXPECT_TRUE(r->attempts[1].status.ok());
}

TEST(WorkerHarness, RaceRejectsIsolatedAttempts) {
  const Instance inst = make_instance(4);
  const Gf2k field = Gf2k::make(4);
  const Result<Netlist> spec = try_read_netlist_file(inst.req.spec_path);
  const Result<Netlist> impl = try_read_netlist_file(inst.req.impl_path);
  ASSERT_TRUE(spec.ok() && impl.ok());
  engine::RunOptions options;
  options.portfolio_engines = {"abstraction", "sat"};
  options.isolate_attempts = true;
  options.portfolio_race = true;
  options.worker_spec_path = inst.req.spec_path;
  options.worker_impl_path = inst.req.impl_path;
  const Result<engine::VerifyResult> r =
      engine::EngineRegistry::global().find("portfolio")->verify(
          *spec, *impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkerHarness, IsolatedAttemptsNeedTheCircuitPaths) {
  const Instance inst = make_instance(4);
  const Gf2k field = Gf2k::make(4);
  const Result<Netlist> spec = try_read_netlist_file(inst.req.spec_path);
  const Result<Netlist> impl = try_read_netlist_file(inst.req.impl_path);
  ASSERT_TRUE(spec.ok() && impl.ok());
  engine::RunOptions options;
  options.isolate_attempts = true;  // but no worker_*_path
  const Result<engine::VerifyResult> r =
      engine::EngineRegistry::global().find("portfolio")->verify(
          *spec, *impl, field, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gfa::worker
