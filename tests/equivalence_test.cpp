#include "abstraction/equivalence.h"

#include <gtest/gtest.h>

#include "abstraction/hierarchy.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

class EquivalenceSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(EquivalenceSizes, MastrovitoEquivalentToMontgomery) {
  // The paper's headline verification problem at laptop ladder sizes.
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  const EquivalenceResult res = check_equivalence(spec, impl, field);
  EXPECT_TRUE(res.equivalent) << res.difference;
  EXPECT_TRUE(res.difference.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, EquivalenceSizes,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(Equivalence, DetectsInjectedBug) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist montgomery = make_montgomery_multiplier_flat(field);
  const NetId target = montgomery.find_net("bm_t3_0");
  ASSERT_NE(target, kNoNet);
  BugDescription desc;
  const Netlist impl =
      inject_gate_type_bug(montgomery, target, GateType::kOr, &desc);
  const EquivalenceResult res = check_equivalence(spec, impl, field);
  EXPECT_FALSE(res.equivalent);
  EXPECT_FALSE(res.difference.empty());
  EXPECT_NE(res.difference.find("coefficients differ"), std::string::npos);
}

TEST(Equivalence, BugDetectionAgreesWithSimulationSweep) {
  // Property: for each injected bug, canonical-form inequality must coincide
  // with an actual behavioural difference found by exhaustive simulation.
  const Gf2k field = Gf2k::make(3);
  const Netlist spec = make_mastrovito_multiplier(field);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    BugDescription desc;
    const Netlist impl = inject_random_bug(spec, seed, &desc);
    const EquivalenceResult res = check_equivalence(spec, impl, field);

    bool behaviour_differs = false;
    for (std::uint64_t a = 0; a < 8 && !behaviour_differs; ++a)
      for (std::uint64_t b = 0; b < 8 && !behaviour_differs; ++b) {
        const auto za = simulate_words(
            spec, *spec.find_word("Z"),
            {{spec.find_word("A"), {field.from_bits(a)}},
             {spec.find_word("B"), {field.from_bits(b)}}})[0];
        const auto zb = simulate_words(
            impl, *impl.find_word("Z"),
            {{impl.find_word("A"), {field.from_bits(a)}},
             {impl.find_word("B"), {field.from_bits(b)}}})[0];
        behaviour_differs = za != zb;
      }
    EXPECT_EQ(!res.equivalent, behaviour_differs)
        << "seed=" << seed << " bug=" << desc.text;
  }
}

TEST(Equivalence, HierarchicalAgainstFlatSpec) {
  // Verify the hierarchical Montgomery against the flattened Mastrovito the
  // way the paper's §6 flow does: per-block abstraction + word composition,
  // then coefficient matching.
  const Gf2k field = Gf2k::make(16);
  const WordFunction spec =
      extract_word_function(make_mastrovito_multiplier(field), field);
  const HierarchicalAbstraction impl =
      abstract_montgomery(make_montgomery_hierarchy(field), field);
  // Word names differ (spec Z vs composed G), but input words are both A, B.
  std::string why;
  EXPECT_TRUE(same_word_function(spec, impl.composed, &why)) << why;
}

TEST(Equivalence, DifferentInputWordsAreIncomparable) {
  const Gf2k field = Gf2k::make(2);
  const Netlist mul = test::make_fig2_multiplier();
  // A squaring-like circuit with a single word input A.
  Netlist sq("sq");
  const NetId a0 = sq.add_input("a0");
  const NetId a1 = sq.add_input("a1");
  const NetId z0 = sq.add_gate(GateType::kBuf, {a0}, "z0");
  const NetId z1 = sq.add_gate(GateType::kBuf, {a1}, "z1");
  sq.mark_output(z0);
  sq.mark_output(z1);
  sq.declare_word("A", {a0, a1});
  sq.declare_word("Z", {z0, z1});
  const EquivalenceResult res = check_equivalence(mul, sq, field);
  EXPECT_FALSE(res.equivalent);
  EXPECT_NE(res.difference.find("input word names differ"), std::string::npos);
}

TEST(Equivalence, SameWordFunctionAcrossPoolPermutations) {
  // f1 and f2 built with different interning orders must still compare equal.
  const Gf2k field = Gf2k::make(2);
  WordFunction f1, f2;
  f1.input_words = {"A", "B"};
  f2.input_words = {"B", "A"};
  const VarId a1 = f1.pool.intern("A", VarKind::kWord);
  const VarId b1 = f1.pool.intern("B", VarKind::kWord);
  const VarId b2 = f2.pool.intern("B", VarKind::kWord);
  const VarId a2 = f2.pool.intern("A", VarKind::kWord);
  f1.g = MPoly::variable(&field, a1) * MPoly::variable(&field, b1);
  f2.g = MPoly::variable(&field, a2) * MPoly::variable(&field, b2);
  EXPECT_TRUE(same_word_function(f1, f2));
  // And a real difference is reported.
  f2.g += MPoly::constant(&field, field.one());
  std::string why;
  EXPECT_FALSE(same_word_function(f1, f2, &why));
  EXPECT_FALSE(why.empty());
}

}  // namespace
}  // namespace gfa
