#include "circuit/simplify.h"

#include <gtest/gtest.h>

#include "circuit/montgomery.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

// Checks behavioural equality on 64 random vectors per word-input batch.
void expect_equivalent(const Netlist& a, const Netlist& b, const Gf2k& field,
                       std::uint64_t seed) {
  test::Rng rng(seed);
  std::vector<std::pair<const Word*, std::vector<Gf2Poly>>> in_a, in_b;
  for (const Word& w : a.words()) {
    bool is_input = true;
    for (NetId bit : w.bits)
      if (a.gate(bit).type != GateType::kInput) is_input = false;
    if (!is_input) continue;
    std::vector<Gf2Poly> vals;
    for (int i = 0; i < 64; ++i) vals.push_back(rng.elem(field));
    in_a.emplace_back(&w, vals);
    in_b.emplace_back(b.find_word(w.name), std::move(vals));
  }
  const auto za = simulate_words(a, *a.find_word("Z"), in_a);
  const auto zb = simulate_words(b, *b.find_word("Z"), in_b);
  EXPECT_EQ(za, zb);
}

TEST(Simplify, ConstantFoldsAndGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId one = nl.add_const(true);
  const NetId zero = nl.add_const(false);
  const NetId g1 = nl.add_gate(GateType::kAnd, {a, one}, "g1");   // = a
  const NetId g2 = nl.add_gate(GateType::kAnd, {a, zero}, "g2");  // = 0
  const NetId g3 = nl.add_gate(GateType::kOr, {g1, g2}, "g3");    // = a
  nl.mark_output(g3);
  SimplifyStats stats;
  const Netlist out = simplify(nl, &stats);
  EXPECT_EQ(out.num_logic_gates(), 0u);
  EXPECT_EQ(out.gate(out.outputs()[0]).type, GateType::kInput);
  EXPECT_GT(stats.gates_before, stats.gates_after);
}

TEST(Simplify, XorIdentities) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId one = nl.add_const(true);
  const NetId x1 = nl.add_gate(GateType::kXor, {a, a}, "x1");   // = 0
  const NetId x2 = nl.add_gate(GateType::kXor, {a, one}, "x2"); // = ¬a
  const NetId x3 = nl.add_gate(GateType::kXor, {x1, b}, "x3");  // = b
  nl.mark_output(x2);
  nl.mark_output(x3);
  const Netlist out = simplify(nl, nullptr);
  // x2 becomes an inverter of a; x3 becomes b directly.
  EXPECT_EQ(out.gate(out.outputs()[0]).type, GateType::kNot);
  EXPECT_EQ(out.gate(out.outputs()[1]).type, GateType::kInput);
}

TEST(Simplify, ComplementCancellation) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n = nl.add_gate(GateType::kNot, {a}, "n");
  const NetId g = nl.add_gate(GateType::kAnd, {a, n}, "g");  // a·¬a = 0
  const NetId h = nl.add_gate(GateType::kOr, {a, n}, "h");   // a+¬a = 1
  nl.mark_output(g);
  nl.mark_output(h);
  const Netlist out = simplify(nl, nullptr);
  EXPECT_EQ(out.gate(out.outputs()[0]).type, GateType::kConst0);
  EXPECT_EQ(out.gate(out.outputs()[1]).type, GateType::kConst1);
}

TEST(Simplify, DoubleNegationCollapses) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_gate(GateType::kNot, {a}, "n1");
  const NetId n2 = nl.add_gate(GateType::kNot, {n1}, "n2");
  const NetId n3 = nl.add_gate(GateType::kBuf, {n2}, "n3");
  nl.mark_output(n3);
  const Netlist out = simplify(nl, nullptr);
  EXPECT_EQ(out.num_logic_gates(), 0u);
}

TEST(Simplify, PreservesRandomCircuitBehaviour) {
  const Gf2k field = Gf2k::make(4);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist nl = test::make_random_word_circuit(4, seed, 40);
    const Netlist out = simplify(nl, nullptr);
    EXPECT_TRUE(out.validate().empty());
    expect_equivalent(nl, out, field, seed * 31);
  }
}

TEST(Simplify, MontgomeryConstantBlockShrinks) {
  const Gf2k field = Gf2k::make(8);
  // Generic block vs the same block with a constant operand folded.
  const Netlist generic = make_montmul_block(field, "generic");
  const Netlist folded =
      make_montmul_block(field, "folded", field.alpha_pow(16));
  EXPECT_LT(folded.num_logic_gates(), generic.num_logic_gates());
  EXPECT_GT(folded.num_logic_gates(), 0u);
}

TEST(Simplify, IsIdempotent) {
  const Gf2k field = Gf2k::make(4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Netlist once = simplify(test::make_random_word_circuit(4, seed, 40));
    const Netlist twice = simplify(once);
    EXPECT_EQ(twice.num_logic_gates(), once.num_logic_gates()) << seed;
    expect_equivalent(once, twice, field, seed * 97);
  }
}

TEST(Simplify, KeepsWordStructure) {
  const Gf2k field = Gf2k::make(4);
  const Netlist nl = test::make_random_word_circuit(4, 3, 30);
  const Netlist out = simplify(nl, nullptr);
  for (const char* w : {"A", "B", "Z"}) {
    ASSERT_NE(out.find_word(w), nullptr) << w;
    EXPECT_EQ(out.find_word(w)->bits.size(), 4u);
  }
  EXPECT_EQ(out.outputs().size(), nl.outputs().size());
}

}  // namespace
}  // namespace gfa
