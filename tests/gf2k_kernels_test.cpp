// Differential tests pinning the tiered fast kernels (gf/gf2k_kernels.h)
// against the generic Gf2Poly path: every tier — table (k <= 16), single-word
// (k <= 64), sparse-modulus fold (NIST sizes) — must agree with schoolbook
// multiply + long division on random elements, including the 16->17 and
// 64->65 tier boundaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gf/gf2k.h"
#include "gf/gf2k_kernels.h"
#include "gf2/irreducible.h"

namespace gfa {
namespace {

/// Deterministic pseudo-random canonical element (splitmix-style).
Gf2Poly pseudo_elem(unsigned k, std::uint64_t& state) {
  Gf2Poly p;
  for (unsigned base = 0; base < k; base += 64) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    const unsigned bits = k - base < 64 ? k - base : 64;
    for (unsigned i = 0; i < bits; ++i)
      if ((z >> i) & 1) p.set_coeff(base + i, true);
  }
  return p;
}

class KernelDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(KernelDifferential, MulSquareInvMatchGenericPath) {
  const unsigned k = GetParam();
  const Gf2k field = Gf2k::make(k);
  const Gf2Poly& m = field.modulus();
  std::uint64_t state = 0xC0FFEE ^ k;
  const int rounds = k > 128 ? 40 : 200;
  for (int i = 0; i < rounds; ++i) {
    const Gf2Poly a = pseudo_elem(k, state);
    const Gf2Poly b = pseudo_elem(k, state);
    ASSERT_EQ(field.mul(a, b), Gf2Poly::mulmod(a, b, m))
        << "mul mismatch at k=" << k << " round " << i;
    ASSERT_EQ(field.square(a), a.squared().mod(m))
        << "square mismatch at k=" << k << " round " << i;
    if (!a.is_zero()) {
      const Gf2Poly ia = field.inv(a);
      EXPECT_EQ(Gf2Poly::mulmod(a, ia, m), Gf2Poly::one())
          << "inv not an inverse at k=" << k << " round " << i;
      Gf2Poly::ExtGcd eg = Gf2Poly::ext_gcd(a, m);
      ASSERT_EQ(ia, eg.s.mod(m)) << "inv mismatch at k=" << k;
    }
  }
}

TEST_P(KernelDifferential, AlphaPowMatchesFrobeniusLadder) {
  const unsigned k = GetParam();
  const Gf2k field = Gf2k::make(k);
  const Gf2Poly& m = field.modulus();
  const Gf2Poly x = Gf2Poly::monomial(1).mod(m);
  // alpha^e against iterated generic mulmod for small e, and against the
  // generic square-and-multiply for exponents around the group order.
  Gf2Poly cur = Gf2Poly::one();
  for (std::uint64_t e = 0; e < 40; ++e) {
    ASSERT_EQ(field.alpha_pow(e), cur) << "alpha^" << e << " at k=" << k;
    cur = Gf2Poly::mulmod(cur, x, m);
  }
  if (k <= 63) {
    // alpha^(2^k - 1) = 1 and the cycle wraps.
    const std::uint64_t n = (std::uint64_t{1} << k) - 1;
    EXPECT_EQ(field.alpha_pow(n), Gf2Poly::one());
    EXPECT_EQ(field.alpha_pow(n + 7), field.alpha_pow(std::uint64_t{7}));
  }
}

TEST_P(KernelDifferential, MulHandlesNonCanonicalOperands) {
  const unsigned k = GetParam();
  const Gf2k field = Gf2k::make(k);
  std::uint64_t state = 0xDECAF ^ k;
  const Gf2Poly a = pseudo_elem(k, state).shifted_up(k + 3);  // degree >= k
  const Gf2Poly b = pseudo_elem(k, state);
  EXPECT_EQ(field.mul(a, b), Gf2Poly::mulmod(a, b, field.modulus()));
  EXPECT_EQ(field.square(a), a.squared().mod(field.modulus()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelDifferential,
                         ::testing::Values(4u, 8u, 16u, 17u, 32u, 63u, 64u,
                                           65u, 163u, 233u, 571u));

TEST(KernelTier, SelectionMatchesFieldSize) {
  EXPECT_EQ(Gf2k::make(8).kernel_tier(), KernelTier::kTable);
  EXPECT_EQ(Gf2k::make(16).kernel_tier(), KernelTier::kTable);
  EXPECT_EQ(Gf2k::make(17).kernel_tier(), KernelTier::kSingleWord);
  EXPECT_EQ(Gf2k::make(64).kernel_tier(), KernelTier::kSingleWord);
  EXPECT_EQ(Gf2k::make(65).kernel_tier(), KernelTier::kSparseMod);
  EXPECT_EQ(Gf2k::make(571).kernel_tier(), KernelTier::kSparseMod);
}

TEST(KernelTier, DenseModulusFallsBackToGeneric) {
  // A dense irreducible of degree 65+ would be needed to hit kGeneric via
  // weight; easier to exercise the tier dispatch through a dense modulus of
  // weight > 16. Build one: x^80 + (random dense tail), irreducibility not
  // required for arithmetic consistency of mul (mod is well-defined).
  Gf2Poly m = Gf2Poly::monomial(80);
  for (unsigned i = 0; i < 40; ++i) m.set_coeff(2 * i + 1, true);
  m.set_coeff(0, true);
  const Gf2k field{m};
  EXPECT_EQ(field.kernel_tier(), KernelTier::kGeneric);
  std::uint64_t state = 99;
  const Gf2Poly a = pseudo_elem(80, state), b = pseudo_elem(80, state);
  EXPECT_EQ(field.mul(a, b), Gf2Poly::mulmod(a, b, m));
}

TEST(KernelTier, TableMulMatchesBruteForceExhaustively) {
  // k = 4: check the whole multiplication table against the generic path.
  const Gf2k field = Gf2k::make(4);
  const Gf2Poly& m = field.modulus();
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b) {
      const Gf2Poly pa = Gf2Poly::from_bits(a), pb = Gf2Poly::from_bits(b);
      ASSERT_EQ(field.mul(pa, pb), Gf2Poly::mulmod(pa, pb, m))
          << "a=" << a << " b=" << b;
    }
}

TEST(Gf2kConstruction, ReducibleModulusThrows) {
  // x^4 + 1 = (x + 1)^4 over GF(2).
  EXPECT_THROW(Gf2k(Gf2Poly::from_exponents({4, 0}), /*check_irreducible=*/true),
               std::invalid_argument);
  // x^2 + x = x(x + 1).
  EXPECT_THROW(Gf2k(Gf2Poly::from_exponents({2, 1}), true),
               std::invalid_argument);
  // Degenerate modulus (degree < 1) throws regardless of the check flag.
  EXPECT_THROW(Gf2k(Gf2Poly::one()), std::invalid_argument);
  EXPECT_THROW(Gf2k(Gf2Poly{}), std::invalid_argument);
  // An irreducible modulus passes the check.
  EXPECT_NO_THROW(Gf2k(Gf2Poly::from_exponents({4, 1, 0}), true));
}

}  // namespace
}  // namespace gfa
