#include "abstraction/f4_reduction.h"

#include <gtest/gtest.h>

#include "circuit/karatsuba.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "test_util.h"

namespace gfa {
namespace {

class F4Engines : public ::testing::TestWithParam<unsigned> {};

TEST_P(F4Engines, AgreesWithIndexedRewriterOnMultipliers) {
  // Both evaluation strategies of the guided reduction compute the same
  // canonical polynomial (they realize the same Gröbner reduction chain).
  const Gf2k field = Gf2k::make(GetParam());
  for (const Netlist& nl : {make_mastrovito_multiplier(field),
                            make_montgomery_multiplier_flat(field),
                            make_karatsuba_multiplier(field)}) {
    const WordFunction a = extract_word_function(nl, field);
    const WordFunction b = extract_word_function_f4(nl, field);
    EXPECT_EQ(a.g, b.g) << nl.name();
    EXPECT_EQ(b.stats.remainder_terms, a.stats.remainder_terms) << nl.name();
  }
}

TEST_P(F4Engines, AgreesOnRandomCircuits) {
  const Gf2k field = Gf2k::make(GetParam());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Netlist nl = test::make_random_word_circuit(GetParam(), seed, 40);
    const WordFunction a = extract_word_function(nl, field);
    const WordFunction b = extract_word_function_f4(nl, field);
    EXPECT_EQ(a.g, b.g) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, F4Engines, ::testing::Values(2, 3, 4, 8, 16));

TEST(F4Reduction, PaperExample51Buggy) {
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const WordFunction fn =
      extract_word_function_f4(test::make_fig2_multiplier(true), field);
  EXPECT_EQ(fn.g.num_terms(), 4u);  // the buggy quartic polynomial
}

TEST(F4Reduction, Case1Constant) {
  const Gf2k field = Gf2k::make(3);
  Netlist nl("c");
  std::vector<NetId> a(3), z(3);
  for (unsigned i = 0; i < 3; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < 3; ++i) {
    z[i] = nl.add_const(i == 1, "z" + std::to_string(i));
    nl.mark_output(z[i]);
  }
  nl.declare_word("A", a);
  nl.declare_word("Z", z);
  const WordFunction fn = extract_word_function_f4(nl, field);
  EXPECT_TRUE(fn.stats.case1);
  EXPECT_EQ(fn.g, MPoly::constant(&field, field.alpha()));
}

TEST(F4Reduction, BudgetTrips) {
  const Gf2k field = Gf2k::make(8);
  ExtractionOptions opts;
  opts.max_terms = 5;
  EXPECT_THROW(
      extract_word_function_f4(make_mastrovito_multiplier(field), field, opts),
      ExtractionBudgetExceeded);
}

TEST(F4Reduction, RejectsMultiOutputAndMissingWords) {
  const Gf2k field = Gf2k::make(2);
  Netlist nl;
  nl.add_input("a0");
  EXPECT_THROW(extract_word_function_f4(nl, field), std::invalid_argument);
}

}  // namespace
}  // namespace gfa
