// Tests for util/json_reader.h: the strict recursive-descent parser behind
// the worker wire protocol. Round-trips against json_writer output, escape
// and surrogate-pair decoding, number edge cases, the nesting-depth cap, and
// rejection of trailing garbage.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/json_reader.h"
#include "util/json_writer.h"

namespace gfa {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_EQ(parse_json("42")->as_number(), 42.0);
  EXPECT_EQ(parse_json("-3.5e2")->as_number(), -350.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
  EXPECT_EQ(parse_json("  0.125  ")->as_number(), 0.125);
}

TEST(JsonReader, ParsesObjectsKeepingMemberOrder) {
  const Result<JsonValue> v =
      parse_json("{\"b\": 1, \"a\": [2, {\"c\": null}], \"d\": \"x\"}");
  ASSERT_TRUE(v.ok()) << v.status().to_string();
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "b");
  EXPECT_EQ(v->members()[1].first, "a");
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 2u);
  EXPECT_EQ(a->items()[0].as_number(), 2.0);
  EXPECT_TRUE(a->items()[1].find("c")->is_null());
  EXPECT_EQ(v->find("nope"), nullptr);
}

TEST(JsonReader, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(parse_json("\"a\\\\b\\\"c\\n\\t\\u0041\"")->as_string(),
            "a\\b\"c\n\tA");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json("\"\\uD83D\\uDE00\"")->as_string(),
            "\xF0\x9F\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(parse_json("\"\\uD83D\"").ok());
  EXPECT_FALSE(parse_json("\"\\q\"").ok());
}

TEST(JsonReader, TypedGettersFallBackOnAbsenceOrWrongType) {
  const Result<JsonValue> v =
      parse_json("{\"n\": 7, \"s\": \"x\", \"b\": true}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->number_or("n", -1), 7.0);
  EXPECT_EQ(v->number_or("s", -1), -1.0);
  EXPECT_EQ(v->number_or("missing", -1), -1.0);
  EXPECT_EQ(v->u64_or("n", 0), 7u);
  EXPECT_EQ(v->string_or("s", "d"), "x");
  EXPECT_EQ(v->string_or("n", "d"), "d");
  EXPECT_TRUE(v->bool_or("b", false));
  EXPECT_TRUE(v->bool_or("missing", true));
}

TEST(JsonReader, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "   ", "{", "[1, 2", "{\"a\": }", "{\"a\" 1}", "nul",
        "01", "1.", "+1", "\"unterminated", "{\"a\": 1,}", "[1,]",
        "1 2", "{} []", "{\"a\": 1} x"}) {
    EXPECT_FALSE(parse_json(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonReader, CapsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).ok());
  std::string ok(40, '[');
  ok += std::string(40, ']');
  EXPECT_TRUE(parse_json(ok).ok());
}

TEST(JsonReader, RoundTripsJsonWriterOutput) {
  std::ostringstream out;
  {
    JsonWriter w(out);
    w.begin_object();
    w.member("name", std::string("line1\nline2\t\"quoted\""));
    w.member("count", 12345);
    w.member("ratio", 0.25);
    w.member("flag", true);
    w.key("list");
    w.begin_array();
    for (int i = 0; i < 3; ++i) w.value(i);
    w.end_array();
    w.end_object();
  }
  const Result<JsonValue> v = parse_json(out.str());
  ASSERT_TRUE(v.ok()) << v.status().to_string() << " for " << out.str();
  EXPECT_EQ(v->string_or("name", ""), "line1\nline2\t\"quoted\"");
  EXPECT_EQ(v->u64_or("count", 0), 12345u);
  EXPECT_EQ(v->number_or("ratio", 0), 0.25);
  EXPECT_TRUE(v->bool_or("flag", false));
  ASSERT_EQ(v->find("list")->items().size(), 3u);
}

}  // namespace
}  // namespace gfa
