#include "baselines/aig/aig.h"

#include <gtest/gtest.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa::aig {
namespace {

TEST(Aig, ConstantFolding) {
  Aig g;
  const Lit x = make_lit(g.add_input(), false);
  EXPECT_EQ(g.land(x, kConst0), kConst0);
  EXPECT_EQ(g.land(x, kConst1), x);
  EXPECT_EQ(g.land(x, x), x);
  EXPECT_EQ(g.land(x, neg(x)), kConst0);
  EXPECT_EQ(g.lxor(x, x), kConst0);
  EXPECT_EQ(g.lxor(x, kConst0), x);
  EXPECT_EQ(g.lxor(x, kConst1), neg(x));
  EXPECT_EQ(g.lor(x, kConst1), kConst1);
}

TEST(Aig, StructuralHashing) {
  Aig g;
  const Lit x = make_lit(g.add_input(), false);
  const Lit y = make_lit(g.add_input(), false);
  EXPECT_EQ(g.land(x, y), g.land(y, x));
  const std::uint32_t before = g.num_vars();
  (void)g.land(x, y);
  EXPECT_EQ(g.num_vars(), before);  // no new node
  EXPECT_NE(g.land(x, neg(y)), g.land(x, y));
}

TEST(Aig, SimulationMatchesSemantics) {
  Aig g;
  const Lit x = make_lit(g.add_input(), false);
  const Lit y = make_lit(g.add_input(), false);
  const Lit f_and = g.land(x, y);
  const Lit f_xor = g.lxor(x, y);
  const auto v = g.simulate({0b0011, 0b0101});
  auto lit_val = [&](Lit l) {
    return (phase_of(l) ? ~v[var_of(l)] : v[var_of(l)]) & 0b1111;
  };
  EXPECT_EQ(lit_val(f_and), 0b0001u);
  EXPECT_EQ(lit_val(f_xor), 0b0110u);
}

TEST(Aig, ImportAgreesWithNetlistSimulation) {
  const Netlist nl = test::make_random_word_circuit(3, 11, 30);
  Aig g;
  std::vector<Lit> input_lits;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    input_lits.push_back(make_lit(g.add_input(), false));
  const std::vector<Lit> lits = g.import(nl, input_lits);

  test::Rng rng(77);
  std::vector<std::uint64_t> words(nl.inputs().size());
  for (auto& w : words) w = rng.next();
  const auto netv = simulate(nl, words);
  const auto aigv = g.simulate(words);
  for (NetId n : nl.outputs()) {
    const Lit l = lits[n];
    const std::uint64_t got = phase_of(l) ? ~aigv[var_of(l)] : aigv[var_of(l)];
    EXPECT_EQ(got, netv[n]);
  }
}

class FraigSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(FraigSizes, ProvesMultiplierEquivalence) {
  const Gf2k field = Gf2k::make(GetParam());
  const FraigResult res = fraig_equivalence_check(
      make_mastrovito_multiplier(field), make_montgomery_multiplier_flat(field));
  EXPECT_EQ(res.status, FraigResult::Status::kEquivalent);
}

TEST_P(FraigSizes, IdenticalCircuitsCloseStructurally) {
  // Same netlist twice: strashing alone must close the miter (0 SAT calls).
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_mastrovito_multiplier(field);
  const FraigResult res = fraig_equivalence_check(nl, nl);
  EXPECT_EQ(res.status, FraigResult::Status::kEquivalent);
  EXPECT_EQ(res.sat_calls, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FraigSizes, ::testing::Values(2, 3, 4, 5));

TEST(Fraig, FindsCounterexampleForBugs) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  int found = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    BugDescription desc;
    const Netlist impl = inject_random_bug(spec, seed, &desc);
    const FraigResult res = fraig_equivalence_check(spec, impl);
    if (res.status == FraigResult::Status::kEquivalent) continue;  // benign bug
    ASSERT_EQ(res.status, FraigResult::Status::kNotEquivalent) << desc.text;
    ++found;
    // Validate the counterexample by simulation: outputs must differ.
    std::vector<std::uint64_t> words(spec.inputs().size());
    for (std::size_t i = 0; i < words.size(); ++i)
      words[i] = res.counterexample[i] ? 1 : 0;
    const auto v1 = simulate(spec, words);
    const auto v2 = simulate(impl, words);
    bool differs = false;
    const Word* z1 = spec.find_word("Z");
    const Word* z2 = impl.find_word("Z");
    for (std::size_t i = 0; i < z1->bits.size(); ++i)
      if ((v1[z1->bits[i]] & 1) != (v2[z2->bits[i]] & 1)) differs = true;
    EXPECT_TRUE(differs) << "bogus counterexample for " << desc.text;
  }
  EXPECT_GT(found, 0);
}

TEST(Fraig, MergesInternalEquivalencesOnSimilarCircuits) {
  // Mastrovito vs a gate-identical copy with shuffled gate creation order:
  // fraiging should prove equivalence with internal merges, cheaply.
  const Gf2k field = Gf2k::make(5);
  const Netlist a = make_mastrovito_multiplier(field);
  // A structurally similar variant: same function, rebuilt via parser
  // round-trip (different net order, same gates).
  const Netlist b = make_mastrovito_multiplier(field);
  const FraigResult res = fraig_equivalence_check(a, b);
  EXPECT_EQ(res.status, FraigResult::Status::kEquivalent);
}

TEST(Fraig, DissimilarCircuitsHitTheBudgetWall) {
  // The paper's point: with a tiny final budget, the structurally dissimilar
  // miter is not provable — fraiging finds too few internal equivalences.
  const Gf2k field = Gf2k::make(8);
  FraigOptions options;
  options.per_query_conflicts = 100;
  options.final_conflicts = 200;
  const FraigResult res = fraig_equivalence_check(
      make_mastrovito_multiplier(field), make_montgomery_multiplier_flat(field),
      options);
  EXPECT_EQ(res.status, FraigResult::Status::kUnknown);
}

}  // namespace
}  // namespace gfa::aig
