// End-to-end reproductions of the paper's worked examples (Fig. 2,
// Example 4.2, Example 5.1) through the *full* pipeline: circuit ideal,
// abstraction term orders, the guided S-polynomial reduction, and the lift.

#include <gtest/gtest.h>

#include "abstraction/equivalence.h"
#include "abstraction/rato.h"
#include "circuit/gate_poly.h"
#include "circuit/sim.h"
#include "poly/groebner.h"
#include "test_util.h"

namespace gfa {
namespace {

class PaperExamples : public ::testing::Test {
 protected:
  PaperExamples() : field_(Gf2Poly::from_bits(0b111)) {}  // F_4, P = x²+x+1
  Gf2k field_;
};

TEST_F(PaperExamples, Example42CircuitIdealPolynomials) {
  // The generators f_1 … f_10 of Example 4.2 (word polynomials f_1..f_3 and
  // gate polynomials f_4..f_10).
  const Netlist nl = test::make_fig2_multiplier();
  const CircuitIdeal ci = circuit_ideal(nl, &field_);
  EXPECT_EQ(ci.gate_polys.size(), 7u);   // s0..s3, r0, z0, z1
  EXPECT_EQ(ci.word_polys.size(), 3u);   // A, B, Z

  // f_4 : s0 + a0·b0.
  const VarId s0 = ci.pool.id("s0");
  const VarId a0 = ci.pool.id("a0");
  const VarId b0 = ci.pool.id("b0");
  MPoly f4 = MPoly::variable(&field_, s0);
  f4.add_term(Monomial::from_pairs({{a0, BigUint(1)}, {b0, BigUint(1)}}),
              field_.one());
  EXPECT_EQ(ci.gate_polys[0], f4);

  // f_3 : a0 + a1·α + A.
  MPoly f3 = MPoly::variable(&field_, ci.pool.id("A"));
  f3.add_term(Monomial(ci.pool.id("a0"), BigUint(1)), field_.one());
  f3.add_term(Monomial(ci.pool.id("a1"), BigUint(1)), field_.alpha());
  EXPECT_EQ(ci.word_polys[0], f3);
}

TEST_F(PaperExamples, Example42GroebnerBasisContainsG7) {
  // "The polynomial g7 : Z + AB describes Z = AB as the canonical polynomial
  // function implemented by the circuit."
  const Netlist nl = test::make_fig2_multiplier();
  const CircuitIdeal ci = circuit_ideal(nl, &field_);
  const TermOrder order = make_rato_order(nl, ci);

  std::vector<MPoly> gens = ci.all_generators();
  std::vector<VarId> all_vars;
  for (std::size_t v = 0; v < ci.pool.size(); ++v)
    all_vars.push_back(static_cast<VarId>(v));
  for (MPoly& p : vanishing_polynomials(&field_, ci.pool, all_vars))
    gens.push_back(std::move(p));

  const auto res = buchberger(gens, order);
  ASSERT_TRUE(res.completed);
  // Z + AB must reduce to zero modulo the basis (it lies in J + J_0)...
  MPoly z_plus_ab = MPoly::variable(&field_, ci.pool.id("Z"));
  z_plus_ab.add_term(
      Monomial::from_pairs(
          {{ci.pool.id("A"), BigUint(1)}, {ci.pool.id("B"), BigUint(1)}}),
      field_.one());
  EXPECT_TRUE(normal_form(z_plus_ab, res.basis, order).is_zero());
  // ...and the reduced basis contains it as the unique Z-leading polynomial.
  const auto reduced = reduce_basis(res.basis, order);
  int z_leading = 0;
  for (const MPoly& g : reduced) {
    if (g.leading_term(order).mono == Monomial(ci.pool.id("Z"), BigUint(1))) {
      ++z_leading;
      EXPECT_EQ(g, z_plus_ab) << g.to_string(ci.pool);
    }
  }
  EXPECT_EQ(z_leading, 1);  // Corollary 4.1
}

TEST_F(PaperExamples, Example51CorrectCircuitRemainder) {
  // "Computing Spoly(f_1, f_9) ->+ r, we find that r = Z + A·B."
  const WordFunction fn =
      extract_word_function(test::make_fig2_multiplier(), field_);
  EXPECT_EQ(fn.g.num_terms(), 1u);
  const MPoly ab = MPoly::variable(&field_, fn.pool.id("A")) *
                   MPoly::variable(&field_, fn.pool.id("B"));
  EXPECT_EQ(fn.g, ab);
}

TEST_F(PaperExamples, Example51BuggyCircuitPolynomial) {
  // "We find the polynomial Z + α·A²B² + A²B + (α+1)·AB² + (α+1)·AB ... which
  // is indeed the polynomial representation of the buggy circuit!"
  const WordFunction fn =
      extract_word_function(test::make_fig2_multiplier(true), field_);
  const VarId a = fn.pool.id("A"), b = fn.pool.id("B");
  auto m = [&](std::uint64_t ea, std::uint64_t eb) {
    return Monomial::from_pairs({{a, BigUint(ea)}, {b, BigUint(eb)}});
  };
  const auto alpha = field_.alpha();
  const auto alpha1 = field_.add(alpha, field_.one());
  EXPECT_EQ(fn.g.num_terms(), 4u);
  EXPECT_EQ(fn.g.coeff(m(2, 2)), alpha);
  EXPECT_EQ(fn.g.coeff(m(2, 1)), field_.one());
  EXPECT_EQ(fn.g.coeff(m(1, 2)), alpha1);
  EXPECT_EQ(fn.g.coeff(m(1, 1)), alpha1);

  // And the buggy polynomial is the true function of the buggy circuit:
  // evaluate against simulation over all 16 points.
  const Netlist buggy = test::make_fig2_multiplier(true);
  for (std::uint64_t av = 0; av < 4; ++av)
    for (std::uint64_t bv = 0; bv < 4; ++bv) {
      const auto sim = simulate_words(
          buggy, *buggy.find_word("Z"),
          {{buggy.find_word("A"), {field_.from_bits(av)}},
           {buggy.find_word("B"), {field_.from_bits(bv)}}})[0];
      EXPECT_EQ(test::eval_word_function(
                    fn, field_,
                    {{"A", field_.from_bits(av)}, {"B", field_.from_bits(bv)}}),
                sim);
    }
}

TEST_F(PaperExamples, VerificationProblemStatement) {
  // "Prove whether or not C1, C2 implement the same function over F_2k" —
  // the correct and buggy Fig. 2 circuits must be told apart.
  const EquivalenceResult eq = check_equivalence(
      test::make_fig2_multiplier(), test::make_fig2_multiplier(), field_);
  EXPECT_TRUE(eq.equivalent);
  const EquivalenceResult neq = check_equivalence(
      test::make_fig2_multiplier(), test::make_fig2_multiplier(true), field_);
  EXPECT_FALSE(neq.equivalent);
}

TEST_F(PaperExamples, RatoMakesGatePolysLeadWithOutputs) {
  // Under RATO, every gate polynomial's leading term is its output variable,
  // and all leading terms are pairwise relatively prime (the Lemma 5.1 setup).
  const Netlist nl = test::make_fig2_multiplier();
  const CircuitIdeal ci = circuit_ideal(nl, &field_);
  const TermOrder order = make_rato_order(nl, ci);
  std::vector<Monomial> lms;
  for (const MPoly& f : ci.gate_polys) {
    const Monomial lm = f.leading_term(order).mono;
    EXPECT_EQ(lm.num_vars(), 1u);
    lms.push_back(lm);
  }
  for (std::size_t i = 0; i < lms.size(); ++i)
    for (std::size_t j = i + 1; j < lms.size(); ++j)
      EXPECT_TRUE(Monomial::relatively_prime(lms[i], lms[j]));
}

}  // namespace
}  // namespace gfa
