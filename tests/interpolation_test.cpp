#include "baselines/interpolation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gfa {
namespace {

TEST(Interpolation, AllFieldElementsEnumerates) {
  const Gf2k f = Gf2k::make(3);
  const auto elems = all_field_elements(f);
  EXPECT_EQ(elems.size(), 8u);
  // Distinct and reduced.
  for (std::size_t i = 0; i < elems.size(); ++i) {
    EXPECT_TRUE(f.is_canonical(elems[i]));
    for (std::size_t j = i + 1; j < elems.size(); ++j)
      EXPECT_NE(elems[i], elems[j]);
  }
}

TEST(Interpolation, IdentityFunction) {
  const Gf2k f = Gf2k::make(4);
  VarPool pool;
  const VarId x = pool.intern("X", VarKind::kWord);
  const MPoly p = interpolate_univariate(f, x, [](const Gf2k::Elem& a) { return a; });
  EXPECT_EQ(p, MPoly::variable(&f, x));
}

TEST(Interpolation, ConstantFunction) {
  const Gf2k f = Gf2k::make(3);
  VarPool pool;
  const VarId x = pool.intern("X", VarKind::kWord);
  const MPoly p = interpolate_univariate(
      f, x, [&](const Gf2k::Elem&) { return f.alpha(); });
  EXPECT_EQ(p, MPoly::constant(&f, f.alpha()));
}

TEST(Interpolation, SquareIsFrobeniusPolynomial) {
  const Gf2k f = Gf2k::make(4);
  VarPool pool;
  const VarId x = pool.intern("X", VarKind::kWord);
  const MPoly p = interpolate_univariate(
      f, x, [&](const Gf2k::Elem& a) { return f.square(a); });
  MPoly expect(&f);
  expect.add_term(Monomial(x, BigUint(2)), f.one());
  EXPECT_EQ(p, expect);
}

TEST(Interpolation, InverseFunctionIsPowerQMinus2) {
  // a -> a^{-1} (with 0 -> 0) is X^{q-2} over F_q.
  const Gf2k f = Gf2k::make(3);
  VarPool pool;
  const VarId x = pool.intern("X", VarKind::kWord);
  const MPoly p = interpolate_univariate(f, x, [&](const Gf2k::Elem& a) {
    return a.is_zero() ? f.zero() : f.inv(a);
  });
  MPoly expect(&f);
  expect.add_term(Monomial(x, BigUint(6)), f.one());  // q - 2 = 6
  EXPECT_EQ(p, expect);
}

TEST(Interpolation, InterpolantMatchesFunctionPointwise) {
  // Random function: build the canonical polynomial and re-evaluate.
  const Gf2k f = Gf2k::make(3);
  VarPool pool;
  const VarId x = pool.intern("X", VarKind::kWord);
  test::Rng rng(31);
  std::vector<Gf2k::Elem> table;
  for (int i = 0; i < 8; ++i) table.push_back(rng.elem(f));
  auto fun = [&](const Gf2k::Elem& a) {
    std::uint64_t idx = 0;
    for (unsigned i = 0; i < 3; ++i)
      if (a.coeff(i)) idx |= 1u << i;
    return table[idx];
  };
  const MPoly p = interpolate_univariate(f, x, fun);
  for (const auto& a : all_field_elements(f))
    EXPECT_EQ(p.eval([&](VarId) { return a; }), fun(a));
  // Canonical: degree < q.
  for (const auto& [mono, c] : p.terms())
    EXPECT_LT(mono.exponent(x), BigUint(8));
}

TEST(Interpolation, BivariateMultiplication) {
  const Gf2k f = Gf2k::make(3);
  VarPool pool;
  const VarId x = pool.intern("X", VarKind::kWord);
  const VarId y = pool.intern("Y", VarKind::kWord);
  const MPoly p = interpolate_bivariate(
      f, x, y, [&](const Gf2k::Elem& a, const Gf2k::Elem& b) { return f.mul(a, b); });
  EXPECT_EQ(p, MPoly::variable(&f, x) * MPoly::variable(&f, y));
}

TEST(Interpolation, BivariateRandomPointwise) {
  const Gf2k f = Gf2k::make(2);
  VarPool pool;
  const VarId x = pool.intern("X", VarKind::kWord);
  const VarId y = pool.intern("Y", VarKind::kWord);
  test::Rng rng(5);
  std::vector<Gf2k::Elem> table;
  for (int i = 0; i < 16; ++i) table.push_back(rng.elem(f));
  auto fun = [&](const Gf2k::Elem& a, const Gf2k::Elem& b) {
    std::uint64_t idx = 0;
    if (a.coeff(0)) idx |= 1;
    if (a.coeff(1)) idx |= 2;
    if (b.coeff(0)) idx |= 4;
    if (b.coeff(1)) idx |= 8;
    return table[idx];
  };
  const MPoly p = interpolate_bivariate(f, x, y, fun);
  for (const auto& a : all_field_elements(f))
    for (const auto& b : all_field_elements(f))
      EXPECT_EQ(p.eval([&](VarId v) { return v == x ? a : b; }), fun(a, b));
}

}  // namespace
}  // namespace gfa
