#include "circuit/sim.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gfa {
namespace {

TEST(Simulate, GateSemantics) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g_and = nl.add_gate(GateType::kAnd, {a, b});
  const NetId g_or = nl.add_gate(GateType::kOr, {a, b});
  const NetId g_xor = nl.add_gate(GateType::kXor, {a, b});
  const NetId g_nand = nl.add_gate(GateType::kNand, {a, b});
  const NetId g_nor = nl.add_gate(GateType::kNor, {a, b});
  const NetId g_xnor = nl.add_gate(GateType::kXnor, {a, b});
  const NetId g_not = nl.add_gate(GateType::kNot, {a});
  const NetId g_buf = nl.add_gate(GateType::kBuf, {b});
  const NetId c0 = nl.add_const(false);
  const NetId c1 = nl.add_const(true);

  // Lanes: a = 0011, b = 0101 (bit i = lane i).
  const auto v = simulate(nl, {0b0011, 0b0101});
  const std::uint64_t mask = 0b1111;
  EXPECT_EQ(v[g_and] & mask, 0b0001u);
  EXPECT_EQ(v[g_or] & mask, 0b0111u);
  EXPECT_EQ(v[g_xor] & mask, 0b0110u);
  EXPECT_EQ(v[g_nand] & mask, 0b1110u);
  EXPECT_EQ(v[g_nor] & mask, 0b1000u);
  EXPECT_EQ(v[g_xnor] & mask, 0b1001u);
  EXPECT_EQ(v[g_not] & mask, 0b1100u);
  EXPECT_EQ(v[g_buf] & mask, 0b0101u);
  EXPECT_EQ(v[c0] & mask, 0b0000u);
  EXPECT_EQ(v[c1] & mask, 0b1111u);
}

TEST(Simulate, NaryGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId g_and = nl.add_gate(GateType::kAnd, {a, b, c});
  const NetId g_xor = nl.add_gate(GateType::kXor, {a, b, c});
  const auto v = simulate(nl, {0b00001111, 0b00110011, 0b01010101});
  const std::uint64_t mask = 0xFF;
  EXPECT_EQ(v[g_and] & mask, 0b00000001u);
  EXPECT_EQ(v[g_xor] & mask, 0b01101001u);
}

TEST(SimulateWords, Fig2MultiplierMatchesFieldMul) {
  const Gf2k field(Gf2Poly::from_bits(0b111));  // F_4
  const Netlist nl = test::make_fig2_multiplier();
  std::vector<Gf2Poly> as, bs, expect;
  for (std::uint64_t a = 0; a < 4; ++a)
    for (std::uint64_t b = 0; b < 4; ++b) {
      as.push_back(field.from_bits(a));
      bs.push_back(field.from_bits(b));
      expect.push_back(field.mul(field.from_bits(a), field.from_bits(b)));
    }
  const auto got = simulate_words(
      nl, *nl.find_word("Z"),
      {{nl.find_word("A"), as}, {nl.find_word("B"), bs}});
  EXPECT_EQ(got, expect);
}

TEST(SimulateWords, RejectsBadLaneCounts) {
  const Netlist nl = test::make_fig2_multiplier();
  const Gf2k field(Gf2Poly::from_bits(0b111));
  std::vector<Gf2Poly> two{field.one(), field.one()};
  std::vector<Gf2Poly> three{field.one(), field.one(), field.one()};
  EXPECT_THROW(simulate_words(nl, *nl.find_word("Z"),
                              {{nl.find_word("A"), two},
                               {nl.find_word("B"), three}}),
               std::invalid_argument);
  EXPECT_THROW(
      simulate_words(nl, *nl.find_word("Z"), {{nl.find_word("A"), {}}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace gfa
