// Verdict certification (src/certify/): deterministic witness search,
// simulator replay, the per-engine guarantee that every kNotEquivalent
// verdict ships a replayed counterexample, the post-kEquivalent simulation
// cross-check (and its injected certify:mismatch failure -> exit 73 with a
// flight-recorder dump), and the wire carriage of counterexamples.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "abstraction/equivalence.h"
#include "abstraction/extractor.h"
#include "certify/certify.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "circuit/sim.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "test_util.h"
#include "util/fault_inject.h"
#include "util/json_reader.h"
#include "worker/protocol.h"

namespace gfa::certify {
namespace {

struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

/// A mutated Mastrovito multiplier whose non-equivalence to the original is
/// established by the abstraction check itself (ground truth, not a guess
/// about seeds).
Netlist make_verified_mutant(const Netlist& spec, const Gf2k& field) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Netlist cand = inject_random_bug(spec, seed);
    const Result<EquivalenceResult> check =
        try_check_equivalence(spec, cand, field);
    if (check.ok() && !check->equivalent) return cand;
  }
  ADD_FAILURE() << "no functionally distinct mutation found for k="
                << field.k();
  return spec;
}

// ---------------------------------------------------------------------------
// The random-point stream.

TEST(ElemRng, DeterministicAndReduced) {
  for (const unsigned k : {8u, 163u}) {
    const Gf2k field = Gf2k::make(k);
    ElemRng a(42), b(42);
    for (int i = 0; i < 64; ++i) {
      const Gf2k::Elem ea = a.next_elem(field);
      EXPECT_EQ(ea, b.next_elem(field));
      EXPECT_LT(ea.degree(), static_cast<int>(k));
    }
  }
}

TEST(ElemRng, DifferentSeedsDiverge) {
  const Gf2k field = Gf2k::make(32);
  ElemRng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 32; ++i)
    if (a.next_elem(field) == b.next_elem(field)) ++same;
  EXPECT_LT(same, 4);
}

// ---------------------------------------------------------------------------
// Witness plumbing.

TEST(Witness, FromBitsGroupsWordCoordinatesLsbFirst) {
  const Netlist nl = test::make_fig2_multiplier();
  // inputs() order is a0 a1 b0 b1; set a1 and b0.
  const Witness w = witness_from_bits(nl, {false, true, true, false});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.at("A"), Gf2Poly::from_bits(0b10));
  EXPECT_EQ(w.at("B"), Gf2Poly::from_bits(0b01));
}

TEST(Witness, FromBitsRejectsShortAssignments) {
  const Netlist nl = test::make_fig2_multiplier();
  EXPECT_THROW(witness_from_bits(nl, {true}), std::invalid_argument);
}

TEST(Witness, ReplayDistinguishesThePaperBug) {
  const Gf2k field = Gf2k::make(2);
  const Netlist good = test::make_fig2_multiplier(false);
  const Netlist bad = test::make_fig2_multiplier(true);

  const std::optional<Witness> w = find_simulation_witness(good, bad, field);
  ASSERT_TRUE(w.has_value());  // 4 input bits: exhaustively enumerated
  const Counterexample cx = replay_witness(good, bad, field, *w);
  EXPECT_TRUE(cx.replayed);
  EXPECT_EQ(cx.output_word, "Z");
  EXPECT_NE(cx.expected, cx.actual);
  EXPECT_EQ(cx.inputs.size(), 2u);
}

TEST(Witness, SimulationSearchFindsNothingOnEquivalentPair) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  EXPECT_FALSE(find_simulation_witness(spec, impl, field, 8).has_value());
}

TEST(Witness, WordFunctionSearchFindsSchwartzZippelPoint) {
  const Gf2k field = Gf2k::make(2);
  const Netlist good = test::make_fig2_multiplier(false);
  const Netlist bad = test::make_fig2_multiplier(true);
  const Result<WordFunction> good_fn = try_extract_word_function(good, field);
  const Result<WordFunction> bad_fn = try_extract_word_function(bad, field);
  ASSERT_TRUE(good_fn.ok() && bad_fn.ok());

  const std::optional<Witness> w =
      find_word_function_witness(*good_fn, *bad_fn, field);
  ASSERT_TRUE(w.has_value());
  EXPECT_NE(eval_word_function(*good_fn, field, *w),
            eval_word_function(*bad_fn, field, *w));
  // The word-level witness replays at the gate level: the two layers agree
  // on what the bug does.
  EXPECT_TRUE(replay_witness(good, bad, field, *w).replayed);
}

// ---------------------------------------------------------------------------
// The kEquivalent cross-check.

TEST(Certify, EquivalentPairPassesAndCountsPoints) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  const CertifyOutcome out = certify_equivalence(spec, impl, field);
  EXPECT_TRUE(out.status.ok()) << out.status.to_string();
  EXPECT_EQ(out.points, 256u);  // 4 rounds x 64 lanes
}

TEST(Certify, RealBugFailsTheCrossCheck) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist bug = make_verified_mutant(spec, field);
  const CertifyOutcome out = certify_equivalence(spec, bug, field);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kCertificationFailed);
  EXPECT_NE(out.status.message().find("cross-check disagreed"),
            std::string::npos);
}

TEST(Certify, InjectedMismatchFailsLoudlyWithFlightDump) {
  Disarmer disarm;
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);

  ASSERT_TRUE(fault::arm_spec("certify:mismatch").ok());
  engine::RunOptions options;
  options.certify = true;
  const engine::EngineRun run = engine::run_engine(
      *engine::EngineRegistry::global().find("abstraction"), spec, impl,
      field, options);
  EXPECT_TRUE(fault::fired());
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kCertificationFailed);
  EXPECT_NE(run.detail.find("injected via certify:mismatch"),
            std::string::npos);
  // The flight recorder captured the offending point for the post-mortem.
  ASSERT_FALSE(run.flight_events.empty());
  bool noted = false;
  for (const std::string& line : run.flight_events)
    if (line.find("certify:mismatch") != std::string::npos) noted = true;
  EXPECT_TRUE(noted);
  // The report never prints a verdict for a failed run: a certification
  // failure can never read as a wrong answer.
  std::ostringstream json;
  engine::write_run_report(json, "verify", 8, {run});
  EXPECT_EQ(json.str().find("\"verdict\""), std::string::npos);
  EXPECT_NE(json.str().find("kCertificationFailed"), std::string::npos);
}

TEST(Certify, StatusCodeMapsToExit73AndRoundTrips) {
  EXPECT_EQ(exit_code_for(StatusCode::kCertificationFailed), 73);
  EXPECT_STREQ(status_code_name(StatusCode::kCertificationFailed),
               "kCertificationFailed");
  const Result<StatusCode> back = status_code_from_name("kCertificationFailed");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, StatusCode::kCertificationFailed);
}

TEST(Certify, CertifyOffLeavesEquivalentRunsUntouched) {
  Disarmer disarm;
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  // Armed but never consumed: without options.certify the site is not hit.
  ASSERT_TRUE(fault::arm_spec("certify:mismatch").ok());
  const engine::EngineRun run = engine::run_engine(
      *engine::EngineRegistry::global().find("abstraction"), spec, impl,
      field, engine::RunOptions{});
  EXPECT_TRUE(run.status.ok());
  EXPECT_EQ(run.verdict, engine::Verdict::kEquivalent);
  EXPECT_FALSE(fault::fired());
}

// ---------------------------------------------------------------------------
// Every engine's kNotEquivalent verdict carries a replayed counterexample.

class EngineCounterexamples : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineCounterexamples, EveryDefinitiveRefutationIsReplayed) {
  const unsigned k = GetParam();
  const Gf2k field = Gf2k::make(k);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist bug = make_verified_mutant(spec, field);

  engine::RunOptions options;
  // Search budgets: engines that run dry report Ok(kUnknown) and are skipped
  // below — the contract under test is "definitive refutation => witness",
  // not "every baseline scales to k=32".
  options.sat_conflict_limit = 50000;
  options.bdd_node_limit = 500000;
  options.gb_max_reductions = k >= 16 ? 200 : 2000;
  options.gb_max_poly_terms = 2000;

  bool refuted = false;
  for (const engine::EquivEngine* eng :
       engine::EngineRegistry::global().engines()) {
    const engine::EngineRun run =
        engine::run_engine(*eng, spec, bug, field, options);
    if (!run.status.ok() || run.verdict != engine::Verdict::kNotEquivalent)
      continue;
    refuted = true;
    EXPECT_FALSE(run.counterexample.empty())
        << eng->name() << " refuted without a counterexample at k=" << k;
    EXPECT_TRUE(run.counterexample.replayed)
        << eng->name() << " counterexample did not replay at k=" << k;
    EXPECT_FALSE(run.counterexample.inputs.empty()) << eng->name();
    EXPECT_NE(run.counterexample.expected, run.counterexample.actual)
        << eng->name();
  }
  // At every size at least the abstraction engine must have refuted.
  EXPECT_TRUE(refuted) << "no engine refuted the mutant at k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineCounterexamples,
                         ::testing::Values(8u, 16u, 32u));

// ---------------------------------------------------------------------------
// Wire carriage.

TEST(CertifyWire, WorkerResponseRoundTripsCounterexample) {
  worker::WorkerResponse resp;
  resp.verdict = engine::Verdict::kNotEquivalent;
  resp.counterexample.inputs["A"] = "α^3 + 1";
  resp.counterexample.inputs["B"] = "α";
  resp.counterexample.output_word = "Z";
  resp.counterexample.expected = "α^2";
  resp.counterexample.actual = "α^2 + 1";
  resp.counterexample.replayed = true;
  const Result<worker::WorkerResponse> back =
      worker::decode_response(worker::encode_response(resp));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->counterexample.inputs, resp.counterexample.inputs);
  EXPECT_EQ(back->counterexample.output_word, "Z");
  EXPECT_EQ(back->counterexample.expected, "α^2");
  EXPECT_EQ(back->counterexample.actual, "α^2 + 1");
  EXPECT_TRUE(back->counterexample.replayed);
}

TEST(CertifyWire, RunReportEmitsTypedCounterexampleJson) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist bug = make_verified_mutant(spec, field);
  const engine::EngineRun run = engine::run_engine(
      *engine::EngineRegistry::global().find("abstraction"), spec, bug, field,
      engine::RunOptions{});
  ASSERT_TRUE(run.status.ok());
  ASSERT_EQ(run.verdict, engine::Verdict::kNotEquivalent);

  std::ostringstream out;
  engine::write_run_report(out, "verify", 8, {run});
  const Result<JsonValue> doc = parse_json(out.str());
  ASSERT_TRUE(doc.ok()) << out.str();
  const JsonValue* runs = doc->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items().size(), 1u);
  const JsonValue* cx = runs->items()[0].find("counterexample");
  ASSERT_NE(cx, nullptr) << out.str();
  EXPECT_TRUE(cx->bool_or("replayed", false));
  EXPECT_EQ(cx->string_or("output_word", ""), "Z");
  EXPECT_NE(cx->string_or("expected", ""), cx->string_or("actual", ""));
  const JsonValue* inputs = cx->find("inputs");
  ASSERT_NE(inputs, nullptr);
  EXPECT_EQ(inputs->members().size(), 2u);
}

}  // namespace
}  // namespace gfa::certify
