#include "circuit/arith_extras.h"

#include <gtest/gtest.h>

#include "abstraction/extractor.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

class ArithExtras : public ::testing::TestWithParam<unsigned> {};

TEST_P(ArithExtras, SquarerComputesSquare) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_squarer(field);
  EXPECT_TRUE(nl.validate().empty());
  test::Rng rng(GetParam() + 50);
  std::vector<Gf2Poly> as, expect;
  for (int i = 0; i < 32; ++i) {
    as.push_back(rng.elem(field));
    expect.push_back(field.square(as.back()));
  }
  EXPECT_EQ(simulate_words(nl, *nl.find_word("Z"), {{nl.find_word("A"), as}}),
            expect);
}

TEST_P(ArithExtras, MacComputesABplusC) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_multiply_accumulate(field);
  EXPECT_TRUE(nl.validate().empty());
  test::Rng rng(GetParam() + 60);
  std::vector<Gf2Poly> as, bs, cs, expect;
  for (int i = 0; i < 32; ++i) {
    as.push_back(rng.elem(field));
    bs.push_back(rng.elem(field));
    cs.push_back(rng.elem(field));
    expect.push_back(field.add(field.mul(as.back(), bs.back()), cs.back()));
  }
  EXPECT_EQ(simulate_words(nl, *nl.find_word("Z"),
                           {{nl.find_word("A"), as},
                            {nl.find_word("B"), bs},
                            {nl.find_word("C"), cs}}),
            expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArithExtras,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

TEST(ArithExtras, SquarerAbstractsToFrobenius) {
  for (unsigned k : {3u, 8u, 16u}) {
    const Gf2k field = Gf2k::make(k);
    const WordFunction fn = extract_word_function(make_squarer(field), field);
    MPoly expect(&field);
    expect.add_term(Monomial(fn.pool.id("A"), BigUint(2)), field.one());
    EXPECT_EQ(fn.g, expect) << "k=" << k;
  }
}

TEST(ArithExtras, AdderAbstractsToSum) {
  const Gf2k field = Gf2k::make(16);
  const WordFunction fn = extract_word_function(make_adder(field), field);
  const MPoly expect = MPoly::variable(&field, fn.pool.id("A")) +
                       MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, expect);
}

TEST(ArithExtras, MacAbstractsToThreeOperandPolynomial) {
  // The paper's "trivially extends to multiple word-level inputs" claim:
  // Z = F(A, B, C) = A·B + C extracted from gates.
  for (unsigned k : {3u, 8u, 16u}) {
    const Gf2k field = Gf2k::make(k);
    const WordFunction fn =
        extract_word_function(make_multiply_accumulate(field), field);
    MPoly expect = MPoly::variable(&field, fn.pool.id("A")) *
                       MPoly::variable(&field, fn.pool.id("B")) +
                   MPoly::variable(&field, fn.pool.id("C"));
    EXPECT_EQ(fn.g, expect) << "k=" << k << ": " << fn.g.to_string(fn.pool);
    EXPECT_EQ(fn.input_words.size(), 3u);
  }
}

TEST(ArithExtras, FrobeniusPowerAbstracts) {
  const Gf2k field = Gf2k::make(8);
  for (unsigned e : {1u, 2u, 3u}) {
    const Netlist nl = make_frobenius_power(field, e);
    const WordFunction fn = extract_word_function(nl, field);
    MPoly expect(&field);
    expect.add_term(Monomial(fn.pool.id("A"), BigUint::pow2(e)), field.one());
    EXPECT_EQ(fn.g, expect) << "e=" << e;
  }
}

TEST(ArithExtras, FrobeniusFullOrbitIsIdentity) {
  // A^{2^k} = A: the cascade of k squarers abstracts to the identity — the
  // vanishing-ideal exponent reduction in action.
  const Gf2k field = Gf2k::make(4);
  const Netlist nl = make_frobenius_power(field, 4);
  const WordFunction fn = extract_word_function(nl, field);
  EXPECT_EQ(fn.g, MPoly::variable(&field, fn.pool.id("A")))
      << fn.g.to_string(fn.pool);
}

TEST(ArithExtras, BuggyMacDetected) {
  const Gf2k field = Gf2k::make(4);
  const Netlist good = make_multiply_accumulate(field);
  const WordFunction ref = extract_word_function(good, field);
  // Flip the s0 accumulation XOR (p0_0 ⊕ c0) into an OR: polynomial changes.
  Netlist bad = good;
  const NetId s0 = good.find_net("s0");
  ASSERT_NE(s0, kNoNet);
  ASSERT_EQ(good.gate(s0).type, GateType::kXor);
  bad.mutable_gate(s0).type = GateType::kOr;
  const WordFunction fn = extract_word_function(bad, field);
  EXPECT_NE(fn.g, ref.g);
}

}  // namespace
}  // namespace gfa
