// Tests for util/resource_budget.h: accounting, limits, rollback on trip,
// lease RAII, byte-size flag parsing, and the end-to-end path where
// run_engine() installs a budget from RunOptions::memory_budget_bytes and the
// engine unwinds with kResourceExhausted plus a recorded peak.

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "util/exec_control.h"
#include "util/parse_number.h"
#include "util/resource_budget.h"

namespace gfa {
namespace {

TEST(ResourceBudget, ChargesReleasesAndRetainsPeak) {
  ResourceBudget budget(1000);
  budget.charge(BudgetSite::kMpolyTerms, 400);
  budget.charge(BudgetSite::kPairQueue, 200);
  EXPECT_EQ(budget.used_bytes(), 600u);
  EXPECT_EQ(budget.peak_bytes(), 600u);
  EXPECT_EQ(budget.site_used_bytes(BudgetSite::kMpolyTerms), 400u);
  budget.release(BudgetSite::kMpolyTerms, 400);
  EXPECT_EQ(budget.used_bytes(), 200u);
  EXPECT_EQ(budget.peak_bytes(), 600u);  // peak survives release
  EXPECT_EQ(budget.site_peak_bytes(BudgetSite::kMpolyTerms), 400u);
  EXPECT_EQ(budget.charge_calls(), 2u);
}

TEST(ResourceBudget, TrippingTheLimitThrowsAndRollsBack) {
  ResourceBudget budget(100);
  budget.charge(BudgetSite::kBddNodes, 80);
  try {
    budget.charge(BudgetSite::kBddNodes, 50);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(e.status.message().find("bdd.nodes"), std::string::npos);
  }
  // The failed charge must not stick...
  EXPECT_EQ(budget.used_bytes(), 80u);
  // ...but the attempted high-water mark is retained for the report.
  EXPECT_GE(budget.peak_bytes(), 100u);
  // The budget stays usable below the limit.
  budget.charge(BudgetSite::kBddNodes, 10);
  EXPECT_EQ(budget.used_bytes(), 90u);
}

TEST(ResourceBudget, PerSiteLimitTripsBeforeTheTotal) {
  ResourceBudget budget(1 << 20);
  budget.set_site_limit(BudgetSite::kSatClauses, 64);
  budget.charge(BudgetSite::kRewriterTerms, 1000);  // other sites unaffected
  EXPECT_THROW(budget.charge(BudgetSite::kSatClauses, 65), StatusError);
  budget.charge(BudgetSite::kSatClauses, 64);  // exactly at the cap is fine
}

TEST(ResourceBudget, ZeroLimitAccountsButNeverTrips) {
  ResourceBudget budget;  // limit 0 = measure only
  budget.charge(BudgetSite::kMpolyTerms, std::size_t{1} << 40);
  EXPECT_EQ(budget.peak_bytes(), std::size_t{1} << 40);
}

TEST(ResourceBudget, ReleaseClampsAtZero) {
  ResourceBudget budget(100);
  budget.charge(BudgetSite::kPairQueue, 10);
  budget.release(BudgetSite::kPairQueue, 999);  // over-release must not wrap
  EXPECT_EQ(budget.used_bytes(), 0u);
}

TEST(ResourceBudget, SiteNamesAreCanonical) {
  EXPECT_STREQ(budget_site_name(BudgetSite::kMpolyTerms), "mpoly.terms");
  EXPECT_STREQ(budget_site_name(BudgetSite::kPairQueue), "pair.queue");
  EXPECT_STREQ(budget_site_name(BudgetSite::kBddNodes), "bdd.nodes");
  EXPECT_STREQ(budget_site_name(BudgetSite::kSatClauses), "sat.clauses");
  EXPECT_STREQ(budget_site_name(BudgetSite::kRewriterTerms), "rewriter.terms");
}

TEST(BudgetLease, NullBudgetIsANoOp) {
  BudgetLease lease(nullptr, BudgetSite::kMpolyTerms);
  EXPECT_FALSE(lease.active());
  lease.set_bytes(1 << 20);  // all no-ops, nothing to trip
  lease.add(5);
  lease.sub(3);
  EXPECT_EQ(lease.held_bytes(), 0u);
}

TEST(BudgetLease, TracksAContainerThatGrowsAndShrinks) {
  ResourceBudget budget(1000);
  {
    BudgetLease lease(&budget, BudgetSite::kRewriterTerms);
    lease.set_bytes(600);
    EXPECT_EQ(budget.used_bytes(), 600u);
    lease.set_bytes(200);  // shrink releases the delta
    EXPECT_EQ(budget.used_bytes(), 200u);
    lease.add(100);
    lease.sub(50);
    EXPECT_EQ(lease.held_bytes(), 250u);
    EXPECT_EQ(budget.used_bytes(), 250u);
  }
  // Destruction releases whatever was still held.
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 600u);
}

TEST(BudgetLease, FailedChargeLeavesTheLeaseConsistent) {
  ResourceBudget budget(100);
  BudgetLease lease(&budget, BudgetSite::kMpolyTerms);
  lease.set_bytes(90);
  EXPECT_THROW(lease.set_bytes(200), StatusError);
  EXPECT_EQ(lease.held_bytes(), 90u);  // unchanged: unwind releases 90
  EXPECT_EQ(budget.used_bytes(), 90u);
}

TEST(ParseByteSize, AcceptsPlainAndSuffixedForms) {
  EXPECT_EQ(*parse_byte_size("1048576"), 1048576u);
  EXPECT_EQ(*parse_byte_size("64K"), 64u * 1024);
  EXPECT_EQ(*parse_byte_size("64k"), 64u * 1024);
  EXPECT_EQ(*parse_byte_size("512M"), 512ull << 20);
  EXPECT_EQ(*parse_byte_size("2G"), 2ull << 30);
  EXPECT_EQ(*parse_byte_size("1T"), 1ull << 40);
}

TEST(ParseByteSize, RejectsGarbageAndOverflow) {
  EXPECT_FALSE(parse_byte_size("").ok());
  EXPECT_FALSE(parse_byte_size("G").ok());
  EXPECT_FALSE(parse_byte_size("12Q").ok());
  EXPECT_FALSE(parse_byte_size("-5").ok());
  EXPECT_FALSE(parse_byte_size("99999999999G").ok());  // would overflow u64
}

// ---------------------------------------------------------------------------
// End to end through the engine layer.

TEST(EngineMemoryBudget, StarvedRunIsResourceExhaustedWithPeakInTheReport) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  engine::RunOptions options;
  options.memory_budget_bytes = 4 * 1024;  // nowhere near enough at k = 8
  const engine::EngineRun run = engine::run_engine(
      *engine::EngineRegistry::global().find("abstraction"), spec, impl, field,
      options);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(run.budget_limit_bytes, 4u * 1024);
  EXPECT_GT(run.budget_peak_bytes, 0u);

  std::ostringstream out;
  engine::write_run_report(out, "verify", 8, {run});
  EXPECT_NE(out.str().find("budget_peak_bytes"), std::string::npos);
}

TEST(EngineMemoryBudget, AmpleBudgetSucceedsAndRecordsThePeak) {
  const Gf2k field = Gf2k::make(8);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  engine::RunOptions options;
  options.memory_budget_bytes = std::size_t{1} << 30;
  const engine::EngineRun run = engine::run_engine(
      *engine::EngineRegistry::global().find("abstraction"), spec, impl, field,
      options);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_EQ(run.verdict, engine::Verdict::kEquivalent);
  EXPECT_GT(run.budget_peak_bytes, 0u);
  EXPECT_LT(run.budget_peak_bytes, std::size_t{1} << 30);
}

TEST(EngineMemoryBudget, CallerInstalledBudgetIsRespectedNotReplaced) {
  const Gf2k field = Gf2k::make(4);
  const Netlist spec = make_mastrovito_multiplier(field);
  const Netlist impl = make_montgomery_multiplier_flat(field);
  ResourceBudget mine;  // measure-only
  engine::RunOptions options;
  options.control.budget = &mine;
  options.memory_budget_bytes = 1;  // must NOT shadow the caller's budget
  const engine::EngineRun run = engine::run_engine(
      *engine::EngineRegistry::global().find("abstraction"), spec, impl, field,
      options);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_GT(mine.peak_bytes(), 0u);  // charges landed in the caller's budget
}

}  // namespace
}  // namespace gfa
