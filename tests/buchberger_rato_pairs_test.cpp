// Validates the paper's §5 scalability argument with the Buchberger pair
// counters: under the RATO term order every gate polynomial's leading term is
// its own output variable, so the leading monomials of any two generators are
// relatively prime and the product criterion (Lemma 5.1) prunes their
// critical pair. Empirically exactly ONE pair survives pruning and gets an
// S-polynomial reduction — the circuit ideal is (essentially) already a
// Gröbner basis, which is why the guided flow skips Buchberger entirely and
// reduces the spec by a single normal-form chain.
//
// The test asserts the invariant both through BuchbergerResult and through
// the obs metrics counters, pinning the two reporting paths to each other.

#include <gtest/gtest.h>

#include <vector>

#include "abstraction/rato.h"
#include "circuit/gate_poly.h"
#include "circuit/mastrovito.h"
#include "obs/metrics.h"
#include "poly/groebner.h"

namespace gfa {
namespace {

class BuchbergerRatoPairs : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { metrics_was_ = obs::metrics_enabled(); }
  void TearDown() override {
    obs::set_metrics_enabled(metrics_was_);
    obs::Metrics::instance().reset_all();
  }

 private:
  bool metrics_was_ = false;
};

TEST_P(BuchbergerRatoPairs, ProductCriterionLeavesExactlyOneReducedPair) {
  const unsigned k = GetParam();
  const Gf2k field = Gf2k::make(k);
  const Netlist netlist = make_mastrovito_multiplier(field);
  CircuitIdeal ideal = circuit_ideal(netlist, &field);
  const TermOrder order = make_rato_order(netlist, ideal);

  obs::set_metrics_enabled(true);
  obs::Metrics::instance().reset_all();
  const obs::MetricsSnapshot before = obs::Metrics::instance().snapshot();

  const BuchbergerResult br = buchberger(ideal.all_generators(), order);

  ASSERT_TRUE(br.completed);
  // The §5 claim: all but one critical pair pruned, one S-poly reduction.
  EXPECT_EQ(br.reductions, 1u) << "k=" << k;

  const obs::MetricsSnapshot d = obs::Metrics::instance().delta(before);
  EXPECT_EQ(d.at("buchberger.pairs_reduced"), 1u);
  EXPECT_EQ(d.at("buchberger.pairs_generated"),
            d.at("buchberger.pairs_skipped") + 1);
  // Counters must agree with the result struct's own bookkeeping.
  EXPECT_EQ(d.at("buchberger.pairs_reduced"), br.reductions);
  EXPECT_EQ(d.at("buchberger.pairs_skipped"), br.pairs_skipped);
}

TEST_P(BuchbergerRatoPairs, WithoutTheCriterionEveryPairIsReduced) {
  // Control: switching the product criterion off forces a reduction per
  // generated pair — the pruning, not luck, is what makes RATO cheap.
  const unsigned k = GetParam();
  const Gf2k field = Gf2k::make(k);
  const Netlist netlist = make_mastrovito_multiplier(field);
  CircuitIdeal ideal = circuit_ideal(netlist, &field);
  const TermOrder order = make_rato_order(netlist, ideal);

  obs::set_metrics_enabled(true);
  obs::Metrics::instance().reset_all();
  const obs::MetricsSnapshot before = obs::Metrics::instance().snapshot();

  BuchbergerOptions options;
  options.use_product_criterion = false;
  const BuchbergerResult br =
      buchberger(ideal.all_generators(), order, options);

  ASSERT_TRUE(br.completed);
  EXPECT_EQ(br.pairs_skipped, 0u);
  EXPECT_GT(br.reductions, 1u);

  const obs::MetricsSnapshot d = obs::Metrics::instance().delta(before);
  EXPECT_EQ(d.at("buchberger.pairs_skipped"), 0u);
  EXPECT_EQ(d.at("buchberger.pairs_reduced"), d.at("buchberger.pairs_generated"));
}

INSTANTIATE_TEST_SUITE_P(SmallMultipliers, BuchbergerRatoPairs,
                         ::testing::Values(2u, 3u));

}  // namespace
}  // namespace gfa
