#include "circuit/verilog.h"

#include <gtest/gtest.h>

#include "abstraction/equivalence.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

constexpr const char* kMul2Verilog = R"(
// The paper's Fig. 2 multiplier, ANSI-style header.
module mul2 (input [1:0] A, input [1:0] B, output [1:0] Z);
  wire s0, s1, s2, s3, r0;
  and g0 (s0, A[0], B[0]);
  and g1 (s1, A[0], B[1]);
  and g2 (s2, A[1], B[0]);
  and g3 (s3, A[1], B[1]);
  xor g4 (r0, s1, s2);
  xor g5 (Z[0], s0, s3);
  xor g6 (Z[1], r0, s3);
endmodule
)";

TEST(Verilog, ParsesAnsiModule) {
  const Netlist nl = parse_verilog(kMul2Verilog);
  EXPECT_EQ(nl.name(), "mul2");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.num_logic_gates(), 7u);
  ASSERT_NE(nl.find_word("A"), nullptr);
  ASSERT_NE(nl.find_word("Z"), nullptr);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Verilog, ParsedFig2AbstractsToAB) {
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const WordFunction fn = extract_word_function(parse_verilog(kMul2Verilog), field);
  const MPoly ab = MPoly::variable(&field, fn.pool.id("A")) *
                   MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, ab);
}

TEST(Verilog, NonAnsiPortsAndAssigns) {
  const Netlist nl = parse_verilog(R"(
    module m (a, b, y, z);
      input a, b;
      output y;
      output z;
      wire t;
      assign t = a & ~b;
      assign y = t ^ b | a;
      assign z = 1'b1;
    endmodule
  )");
  EXPECT_TRUE(nl.validate().empty());
  // Exhaustive behavioural check of the expression tree.
  const auto v = simulate(nl, {0b0011, 0b0101});
  const NetId y = nl.find_net("y"), z = nl.find_net("z");
  for (int m = 0; m < 4; ++m) {
    const bool a = (0b0011 >> m) & 1, b = (0b0101 >> m) & 1;
    const bool expect_y = ((a && !b) != b) || a;  // (a & ~b) ^ b | a
    EXPECT_EQ((v[y] >> m) & 1, expect_y ? 1u : 0u) << m;
    EXPECT_EQ((v[z] >> m) & 1, 1u);
  }
}

TEST(Verilog, CommentsAndOutOfOrderBodies) {
  const Netlist nl = parse_verilog(
      "module m (input a, output z); /* block\ncomment */\n"
      "  xor (z, t, a); // uses t before its driver\n"
      "  not (t, a);\n"
      "endmodule\n");
  EXPECT_TRUE(nl.validate().empty());
  const auto v = simulate(nl, {0b01});
  EXPECT_EQ(v[nl.find_net("z")] & 0b11, 0b11u);  // a ^ ~a = 1
}

TEST(Verilog, RejectsBadInput) {
  EXPECT_THROW(parse_verilog("module m (input a, output z);\n"), VerilogError);
  EXPECT_THROW(parse_verilog("module m (input a, output z);"
                             " always @(posedge a) z = 1; endmodule"),
               VerilogError);
  EXPECT_THROW(parse_verilog("module m (input a, output z);"
                             " and (z, a); endmodule"),
               VerilogError);  // arity
  EXPECT_THROW(parse_verilog("module m (input a, output z);"
                             " buf (z, a); buf (z, a); endmodule"),
               VerilogError);  // multiple drivers
  EXPECT_THROW(parse_verilog("module m (input [1:0] a, output z);"
                             " buf (z, a); endmodule"),
               VerilogError);  // vector without index
  EXPECT_THROW(parse_verilog("module m (input [1:0] a, output z);"
                             " buf (z, a[5]); endmodule"),
               VerilogError);  // out of range
  EXPECT_THROW(parse_verilog("module m (input a, output z);"
                             " buf (z, ghost); endmodule"),
               VerilogError);  // undriven
  EXPECT_THROW(parse_verilog("module m (input a, output z);"
                             " and (x, z, a); and (z, x, a); endmodule"),
               VerilogError);  // cycle
}

TEST(Verilog, ErrorCarriesLineNumber) {
  try {
    parse_verilog("module m (input a, output z);\n\n  frobnicate;\nendmodule");
    FAIL();
  } catch (const VerilogError& e) {
    EXPECT_EQ(e.line_number, 3u);
  }
}

class VerilogRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(VerilogRoundTrip, MultiplierSurvivesWriteParse) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist original = make_montgomery_multiplier_flat(field);
  const Netlist back = parse_verilog(write_verilog(original));
  EXPECT_TRUE(back.validate().empty());
  ASSERT_NE(back.find_word("A"), nullptr);
  ASSERT_NE(back.find_word("Z"), nullptr);
  // Functional equality via canonical polynomials.
  const EquivalenceResult eq = check_equivalence(original, back, field);
  EXPECT_TRUE(eq.equivalent) << eq.difference;
}

INSTANTIATE_TEST_SUITE_P(Sizes, VerilogRoundTrip, ::testing::Values(2, 4, 8));

TEST(Verilog, WriterHandlesConstantsAndNots) {
  Netlist nl("consts");
  const NetId a = nl.add_input("a");
  const NetId c1 = nl.add_const(true, "one");
  const NetId n = nl.add_gate(GateType::kNot, {a}, "na");
  const NetId z = nl.add_gate(GateType::kAnd, {n, c1}, "z");
  nl.mark_output(z);
  const Netlist back = parse_verilog(write_verilog(nl));
  EXPECT_TRUE(back.validate().empty());
  const auto v = simulate(back, {0b01});
  EXPECT_EQ(v[back.outputs()[0]] & 0b11, 0b10u);  // ~a & 1
}

TEST(Verilog, FileRoundTrip) {
  const Netlist nl = parse_verilog(kMul2Verilog);
  const std::string path = ::testing::TempDir() + "/mul2.v";
  write_verilog_file(nl, path);
  const Netlist back = read_verilog_file(path);
  EXPECT_EQ(back.num_logic_gates(), nl.num_logic_gates());
  EXPECT_THROW(read_verilog_file("/nonexistent/x.v"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Hardening found by tools/fuzz_parser: pathological-but-cheap inputs must
// produce a line-numbered VerilogError (or parse fine), never a crash.

TEST(Verilog, DeepReversedAssignChainDoesNotOverflowTheStack) {
  const int depth = 50000;
  std::string text = "module deep (input a, output z);\n";
  text += "  wire";
  for (int d = 0; d < depth; ++d)
    text += (d ? ", c" : " c") + std::to_string(d);
  text += ";\n";
  // Deepest-first: emitting z pulls the entire chain through the emitter.
  text += "  assign z = c" + std::to_string(depth - 1) + ";\n";
  for (int d = depth - 1; d >= 1; --d)
    text += "  assign c" + std::to_string(d) + " = ~c" +
            std::to_string(d - 1) + ";\n";
  text += "  assign c0 = ~a;\nendmodule\n";
  const Netlist nl = parse_verilog(text);
  EXPECT_GE(nl.num_logic_gates(), static_cast<std::size_t>(depth));
}

TEST(Verilog, HugeVectorWidthIsRejectedNotAllocated) {
  const Result<Netlist> r = try_parse_verilog(
      "module m (input a, output z);\n  wire [1048577:0] h;\n"
      "  assign z = a;\nendmodule\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Verilog, OverflowingIndexLiteralIsAParseErrorNotUb) {
  const Result<Netlist> r = try_parse_verilog(
      "module m (input a, output z);\n"
      "  wire [99999999999999999999:0] h;\n  assign z = a;\nendmodule\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Verilog, ModeratelyNestedParensParse) {
  std::string expr(64, '(');
  expr += "a";
  expr.append(64, ')');
  const Netlist nl = parse_verilog("module m (input a, output z);\n  assign z = " +
                                   expr + ";\nendmodule\n");
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Verilog, RunawayExpressionNestingIsRejected) {
  std::string expr(1000, '(');
  expr += "a";
  expr.append(1000, ')');
  const Result<Netlist> r = try_parse_verilog(
      "module m (input a, output z);\n  assign z = " + expr +
      ";\nendmodule\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("nest"), std::string::npos);
}

}  // namespace
}  // namespace gfa
