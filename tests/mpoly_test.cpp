#include "poly/mpoly.h"

#include <gtest/gtest.h>

#include "baselines/interpolation.h"
#include "test_util.h"

namespace gfa {
namespace {

class MPolyTest : public ::testing::Test {
 protected:
  MPolyTest() : field_(Gf2k::make(4)) {
    x_ = pool_.intern("x", VarKind::kWord);
    y_ = pool_.intern("y", VarKind::kWord);
    b_ = pool_.intern("b", VarKind::kBit);
  }
  MPoly var(VarId v) { return MPoly::variable(&field_, v); }
  MPoly con(std::uint64_t bits) {
    return MPoly::constant(&field_, field_.from_bits(bits));
  }
  Gf2k field_;
  VarPool pool_;
  VarId x_, y_, b_;
};

TEST_F(MPolyTest, AddCancelsInCharTwo) {
  MPoly p = var(x_) + var(y_);
  EXPECT_EQ(p.num_terms(), 2u);
  p += var(x_);
  EXPECT_EQ(p.num_terms(), 1u);
  EXPECT_EQ(p, var(y_));
  EXPECT_TRUE((p + p).is_zero());
}

TEST_F(MPolyTest, MultiplicationExpands) {
  // (x + 1)(x + 1) = x^2 + 1 over char 2.
  MPoly xp1 = var(x_) + con(1);
  MPoly sq = xp1 * xp1;
  EXPECT_EQ(sq.num_terms(), 2u);
  EXPECT_EQ(sq.coeff(Monomial(x_, BigUint(2))), field_.one());
  EXPECT_EQ(sq.coeff(Monomial()), field_.one());
  // (x + y)^2 = x^2 + y^2.
  MPoly s2 = (var(x_) + var(y_)) * (var(x_) + var(y_));
  EXPECT_EQ(s2, var(x_) * var(x_) + var(y_) * var(y_));
}

TEST_F(MPolyTest, CoefficientArithmetic) {
  // α·x + α·x = 0 ; α·x + (α+1)·x = x.
  const auto alpha = field_.alpha();
  MPoly p(&field_);
  p.add_term(Monomial(x_, BigUint(1)), alpha);
  p.add_term(Monomial(x_, BigUint(1)), field_.add(alpha, field_.one()));
  EXPECT_EQ(p, var(x_));
}

TEST_F(MPolyTest, LeadingTermDependsOnOrder) {
  MPoly p = var(x_) + var(y_) * var(y_);
  const TermOrder lex_xy(TermOrder::Type::kLex, {x_, y_});
  const TermOrder lex_yx(TermOrder::Type::kLex, {y_, x_});
  EXPECT_EQ(p.leading_term(lex_xy).mono, Monomial(x_, BigUint(1)));
  EXPECT_EQ(p.leading_term(lex_yx).mono, Monomial(y_, BigUint(2)));
}

TEST_F(MPolyTest, MonicDividesByLeadingCoeff) {
  const auto alpha = field_.alpha();
  MPoly p = var(x_).scaled(alpha) + con(1);
  const TermOrder o = TermOrder::lex_by_id(pool_.size());
  const MPoly m = p.monic(o);
  EXPECT_EQ(m.leading_term(o).coeff, field_.one());
  EXPECT_EQ(m.coeff(Monomial()), field_.inv(alpha));
}

TEST_F(MPolyTest, NormalizedVanishingBitVariable) {
  // b^5 -> b for a bit variable.
  MPoly p = MPoly::term(&field_, field_.one(), Monomial(b_, BigUint(5)));
  EXPECT_EQ(p.normalized_vanishing(pool_), var(b_));
  // b^2 + b -> 0.
  MPoly q = MPoly::term(&field_, field_.one(), Monomial(b_, BigUint(2))) + var(b_);
  EXPECT_TRUE(q.normalized_vanishing(pool_).is_zero());
}

TEST_F(MPolyTest, NormalizedVanishingWordVariable) {
  // q = 16: x^16 -> x, x^17 -> x^2, x^15 stays.
  auto term = [&](std::uint64_t e) {
    return MPoly::term(&field_, field_.one(), Monomial(x_, BigUint(e)));
  };
  EXPECT_EQ(term(16).normalized_vanishing(pool_), term(1));
  EXPECT_EQ(term(17).normalized_vanishing(pool_), term(2));
  EXPECT_EQ(term(15).normalized_vanishing(pool_), term(15));
}

TEST_F(MPolyTest, EvalMatchesStructure) {
  // p = α·x·y + y + 1 at x = α, y = α+1.
  const auto alpha = field_.alpha();
  MPoly p(&field_);
  p.add_term(Monomial::from_pairs({{x_, BigUint(1)}, {y_, BigUint(1)}}), alpha);
  p.add_term(Monomial(y_, BigUint(1)), field_.one());
  p.add_term(Monomial(), field_.one());
  const auto xval = alpha;
  const auto yval = field_.add(alpha, field_.one());
  const auto expect = field_.add(
      field_.add(field_.mul(alpha, field_.mul(xval, yval)), yval), field_.one());
  EXPECT_EQ(p.eval([&](VarId v) { return v == x_ ? xval : yval; }), expect);
}

TEST_F(MPolyTest, SubstituteVariableByPolynomial) {
  // p = x^2 + y; x := y + 1 gives y^2 + y + 1 + y = y^2 + 1.
  MPoly p = var(x_) * var(x_) + var(y_);
  MPoly r = p.substituted(x_, var(y_) + con(1), pool_);
  EXPECT_EQ(r, var(y_) * var(y_) + con(1) + var(y_) + var(y_) + var(y_));
}

TEST_F(MPolyTest, SubstituteLargeExponentUsesVanishing) {
  // x^16 with x := y must give y (vanishing normalizes x^16 -> x first/after).
  MPoly p = MPoly::term(&field_, field_.one(), Monomial(x_, BigUint(16)));
  EXPECT_EQ(p.substituted(x_, var(y_), pool_), var(y_));
}

TEST_F(MPolyTest, MentionsAndVariables) {
  MPoly p = var(x_) * var(y_) + con(3);
  EXPECT_TRUE(p.mentions(x_));
  EXPECT_TRUE(p.mentions(y_));
  EXPECT_FALSE(p.mentions(b_));
  EXPECT_EQ(p.variables(), (std::vector<VarId>{x_, y_}));
}

TEST_F(MPolyTest, ToStringReadable) {
  const auto alpha = field_.alpha();
  MPoly p(&field_);
  p.add_term(Monomial::from_pairs({{x_, BigUint(1)}, {y_, BigUint(1)}}),
             field_.add(alpha, field_.one()));
  p.add_term(Monomial(), field_.one());
  EXPECT_EQ(p.to_string(pool_), "(α + 1)*x*y + 1");
}

TEST_F(MPolyTest, NormalFormSingleDivisor) {
  // Divide x^2 y by {x y + 1} under lex x > y: remainder is x·(−1)·... = x.
  const TermOrder o(TermOrder::Type::kLex, {x_, y_});
  MPoly f = var(x_) * var(x_) * var(y_);
  MPoly g = var(x_) * var(y_) + con(1);
  const MPoly r = normal_form(f, {g}, o);
  EXPECT_EQ(r, var(x_));
}

TEST_F(MPolyTest, NormalFormIsZeroForMultiples) {
  const TermOrder o(TermOrder::Type::kLex, {x_, y_});
  MPoly g = var(x_) + var(y_) * var(y_);
  MPoly f = g * (var(x_) * var(y_) + con(7));
  EXPECT_TRUE(normal_form(f, {g}, o).is_zero());
}

TEST_F(MPolyTest, NormalFormRemainderNotDivisible) {
  const TermOrder o(TermOrder::Type::kLex, {x_, y_});
  test::Rng rng(17);
  // Random f against two divisors; every remainder term must be reduced.
  for (int t = 0; t < 20; ++t) {
    MPoly f(&field_);
    for (int term = 0; term < 6; ++term)
      f.add_term(Monomial::from_pairs({{x_, BigUint(rng.below(4))},
                                       {y_, BigUint(rng.below(4))}}),
                 rng.elem(field_));
    MPoly g1 = var(x_) * var(y_) + var(y_);
    MPoly g2 = var(y_) * var(y_) + con(2);
    const MPoly r = normal_form(f, {g1, g2}, o);
    for (const auto& [mono, c] : r.terms()) {
      EXPECT_FALSE(g1.leading_term(o).mono.divides(mono));
      EXPECT_FALSE(g2.leading_term(o).mono.divides(mono));
    }
  }
}

TEST_F(MPolyTest, SpolyCancelsLeadingTerms) {
  const TermOrder o(TermOrder::Type::kLex, {x_, y_});
  MPoly f = var(x_) * var(x_) + var(y_);       // lt x^2
  MPoly g = var(x_) * var(y_) + con(1);        // lt x y
  const MPoly s = spoly(f, g, o);
  // Spoly = y·f + x·g = y^2 + x (char 2).
  EXPECT_EQ(s, var(y_) * var(y_) + var(x_));
}

TEST_F(MPolyTest, DefaultConstructedIsPlaceholder) {
  MPoly p;
  EXPECT_TRUE(p.is_zero());
  p = MPoly::constant(&field_, field_.one());
  EXPECT_FALSE(p.is_zero());
}

}  // namespace
}  // namespace gfa
