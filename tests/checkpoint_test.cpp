// Tests for checkpoint/resume of the reduction chain (src/worker/checkpoint.h
// + the extractor's plumbing): serialization round-trips, every documented
// integrity failure (missing file, truncation, flipped bytes, version skew,
// injected CRC corruption) loading as kInvalidArgument, and — the acceptance
// bar — a resumed k=64 extraction producing the bit-identical canonical
// polynomial of a fresh run. A damaged or mismatched checkpoint may cost
// time, never correctness.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "abstraction/extractor.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "util/fault_inject.h"
#include "worker/checkpoint.h"

namespace gfa::worker {
namespace {

struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "gfa_ckpt_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Serializes `cp` in the legacy v2 layout (fixed-width u32 ids, u64 word
// counts — see checkpoint.h). The v3 writer can no longer produce these
// bytes, so the reader's compatibility path needs its own encoder here.
std::string v2_bytes(const ReductionCheckpoint& cp) {
  std::string buf = "GFA_CKPT";
  const auto u32 = [&buf](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf += static_cast<char>((v >> (8 * i)) & 0xFF);
  };
  const auto u64 = [&buf](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf += static_cast<char>((v >> (8 * i)) & 0xFF);
  };
  u32(2);  // the version this encoder speaks
  u32(cp.k);
  u64(cp.circuit_hash);
  u32(static_cast<std::uint32_t>(cp.word.size()));
  buf += cp.word;
  u64(cp.step);
  u64(cp.terms.size());
  for (const auto& [mono, coeff] : cp.terms) {
    u32(static_cast<std::uint32_t>(mono.size()));
    for (VarId v : mono) u32(v);
    const std::vector<std::uint64_t>& words = coeff.words();
    u64(words.size());
    for (std::uint64_t w : words) u64(w);
  }
  u32(crc32(buf.data(), buf.size()));
  return buf;
}

ReductionCheckpoint sample_checkpoint() {
  ReductionCheckpoint cp;
  cp.k = 8;
  cp.circuit_hash = 0xDEADBEEFCAFEF00Dull;
  cp.word = "Z";
  cp.step = 42;
  Gf2Poly c1;
  c1.set_coeff(0, true);
  c1.set_coeff(7, true);
  Gf2Poly c2;
  c2.set_coeff(3, true);
  cp.terms.emplace_back(BitMono{}, c1);          // constant term
  cp.terms.emplace_back(BitMono{1, 4, 9}, c2);   // a_1·a_4·a_9
  return cp;
}

TEST(Crc32, MatchesTheReferenceVector) {
  // The classic IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(ContentHash, SeparatesCircuitsAndIsStable) {
  const Gf2k field = Gf2k::make(8);
  const Netlist mastro = make_mastrovito_multiplier(field);
  const Netlist mont = make_montgomery_multiplier_flat(field);
  EXPECT_EQ(netlist_content_hash(mastro), netlist_content_hash(mastro));
  EXPECT_NE(netlist_content_hash(mastro), netlist_content_hash(mont));
}

TEST(CheckpointPath, KeyedByHashAndWord) {
  const std::string a = checkpoint_path("/tmp/ck", 1, "Z");
  const std::string b = checkpoint_path("/tmp/ck", 2, "Z");
  const std::string c = checkpoint_path("/tmp/ck", 1, "X3");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  // Hostile word names cannot escape the directory.
  const std::string evil = checkpoint_path("/tmp/ck", 1, "../../etc/passwd");
  EXPECT_EQ(evil.find("/tmp/ck/"), 0u);
  EXPECT_EQ(evil.find("..", 8), std::string::npos);
}

TEST(Checkpoint, RoundTrips) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/a.ckpt";
  const ReductionCheckpoint cp = sample_checkpoint();
  ASSERT_TRUE(save_checkpoint(path, cp).ok());
  const Result<ReductionCheckpoint> back = load_checkpoint(path);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->k, cp.k);
  EXPECT_EQ(back->circuit_hash, cp.circuit_hash);
  EXPECT_EQ(back->word, cp.word);
  EXPECT_EQ(back->step, cp.step);
  ASSERT_EQ(back->terms.size(), cp.terms.size());
  for (std::size_t i = 0; i < cp.terms.size(); ++i) {
    EXPECT_EQ(back->terms[i].first, cp.terms[i].first);
    EXPECT_EQ(back->terms[i].second, cp.terms[i].second);
  }
}

TEST(Checkpoint, MissingFileIsInvalidArgument) {
  const Result<ReductionCheckpoint> r =
      load_checkpoint(make_temp_dir() + "/nope.ckpt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/t.ckpt";
  ASSERT_TRUE(save_checkpoint(path, sample_checkpoint()).ok());
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16u);
  // Chop anywhere: header-only, mid-terms, and missing trailer must all fail.
  for (const std::size_t keep :
       {std::size_t{5}, bytes.size() / 2, bytes.size() - 2}) {
    write_file(path, bytes.substr(0, keep));
    const Result<ReductionCheckpoint> r = load_checkpoint(path);
    ASSERT_FALSE(r.ok()) << "kept " << keep << " of " << bytes.size();
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Checkpoint, FlippedByteIsRejectedByTheCrc) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/f.ckpt";
  ASSERT_TRUE(save_checkpoint(path, sample_checkpoint()).ok());
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(path, bytes);
  const Result<ReductionCheckpoint> r = load_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Checkpoint, VersionSkewIsRejected) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/v.ckpt";
  ASSERT_TRUE(save_checkpoint(path, sample_checkpoint()).ok());
  std::string bytes = read_file(path);
  // Bump the version field (right after the 8-byte magic) and re-seal the
  // CRC so only the version check can object.
  bytes[8] = static_cast<char>(kCheckpointVersion + 1);
  const std::uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  write_file(path, bytes);
  const Result<ReductionCheckpoint> r = load_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version"), std::string::npos)
      << r.status().message();
}

TEST(Checkpoint, LegacyV2BytesLoadThroughTheCurrentLoader) {
  // The current build writes only v3 but must keep reading v2: snapshots
  // left by the previous release resume under this one. Encode the sample
  // in the legacy layout by hand and check the loader reproduces it field
  // for field, term for term.
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/legacy.ckpt";
  const ReductionCheckpoint cp = sample_checkpoint();
  write_file(path, v2_bytes(cp));
  const Result<ReductionCheckpoint> back = load_checkpoint(path);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->k, cp.k);
  EXPECT_EQ(back->circuit_hash, cp.circuit_hash);
  EXPECT_EQ(back->word, cp.word);
  EXPECT_EQ(back->step, cp.step);
  ASSERT_EQ(back->terms.size(), cp.terms.size());
  for (std::size_t i = 0; i < cp.terms.size(); ++i) {
    EXPECT_EQ(back->terms[i].first, cp.terms[i].first);
    EXPECT_EQ(back->terms[i].second, cp.terms[i].second);
  }
}

TEST(Checkpoint, TruncatedV2FileIsRejected) {
  // The compatibility path validates as strictly as the native one.
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/legacy_t.ckpt";
  const std::string bytes = v2_bytes(sample_checkpoint());
  for (const std::size_t keep :
       {std::size_t{10}, bytes.size() / 2, bytes.size() - 2}) {
    write_file(path, bytes.substr(0, keep));
    const Result<ReductionCheckpoint> r = load_checkpoint(path);
    ASSERT_FALSE(r.ok()) << "kept " << keep << " of " << bytes.size();
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Checkpoint, PreVersion2IsRejected) {
  // kMinReadableCheckpointVersion = 2: a v1 file (or any earlier layout) is
  // version skew, not a parse attempt.
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/v1.ckpt";
  std::string bytes = v2_bytes(sample_checkpoint());
  bytes[8] = 1;
  const std::uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  write_file(path, bytes);
  const Result<ReductionCheckpoint> r = load_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version"), std::string::npos)
      << r.status().message();
}

TEST(Checkpoint, InjectedCorruptionIsCaughtOnLoad) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/c.ckpt";
  ASSERT_TRUE(fault::arm("checkpoint:corrupt", 1).ok());
  ASSERT_TRUE(save_checkpoint(path, sample_checkpoint()).ok());
  EXPECT_TRUE(fault::fired());
  const Result<ReductionCheckpoint> r = load_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Extractor integration: interrupt, resume, compare against a fresh run.

TEST(CheckpointResume, ResumedK64ExtractionMatchesTheFreshPolynomial) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  const Gf2k field = Gf2k::make(64);
  const Netlist nl = make_mastrovito_multiplier(field);

  const WordFunction fresh = extract_word_function(nl, field);
  const std::string fresh_poly = fresh.g.to_string(fresh.pool);

  const std::string dir = make_temp_dir();
  ExtractionCheckpoint ck;
  ck.directory = dir;
  ck.interval = 500;
  ExecControl control;  // non-null so the cancel fault point is polled
  ExtractionOptions options;
  options.control = &control;
  options.checkpoint = &ck;

  // Kill the chain partway through: the cancel unwinds cleanly and leaves
  // the last periodic checkpoint behind.
  ASSERT_TRUE(fault::arm("cancel:checkpoint", 2000).ok());
  const Result<WordFunction> interrupted =
      try_extract_word_function(nl, field, options);
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled);
  const std::string path =
      checkpoint_path(dir, netlist_content_hash(nl), "Z");
  EXPECT_TRUE(load_checkpoint(path).ok())
      << "no checkpoint survived the interruption";
  fault::disarm();

  ck.resume = true;
  const Result<WordFunction> resumed =
      try_extract_word_function(nl, field, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_TRUE(resumed->stats.resumed);
  // Fewer substitutions than the full chain: the skipped prefix was real.
  EXPECT_LT(resumed->stats.substitutions, fresh.stats.substitutions);
  EXPECT_EQ(resumed->g.to_string(resumed->pool), fresh_poly);
  // A finished run cleans up after itself.
  EXPECT_FALSE(load_checkpoint(path).ok());
}

TEST(CheckpointResume, CommittedV2FixtureResumesBitIdentically) {
  // tests/data/mastrovito_k64_step1200.v2.ckpt is a frozen v2-format
  // snapshot of the k=64 Mastrovito reduction chain at step 1200, committed
  // so the v2→v3 upgrade path is pinned against real bytes, not bytes this
  // build generated for itself. Resuming from it must reproduce the fresh
  // extraction's canonical polynomial bit for bit.
#ifndef GFA_TEST_DATA_DIR
  GTEST_SKIP() << "GFA_TEST_DATA_DIR is not defined";
#else
  const std::string fixture =
      std::string(GFA_TEST_DATA_DIR) + "/mastrovito_k64_step1200.v2.ckpt";
  const std::string bytes = read_file(fixture);
  ASSERT_FALSE(bytes.empty()) << "missing fixture " << fixture;
  ASSERT_EQ(bytes.compare(0, 8, "GFA_CKPT"), 0);
  EXPECT_EQ(bytes[8], 2) << "fixture is no longer v2-format";

  const Gf2k field = Gf2k::make(64);
  const Netlist nl = make_mastrovito_multiplier(field);
  const std::uint64_t hash = netlist_content_hash(nl);

  // Guard against a stale fixture: its state is only sound for the netlist
  // whose content hash it recorded. If circuit construction ever changes,
  // this assertion says "regenerate the fixture", not "resume is broken".
  const std::string dir = make_temp_dir();
  const std::string path = checkpoint_path(dir, hash, "Z");
  write_file(path, bytes);
  const Result<ReductionCheckpoint> loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded->circuit_hash, hash)
      << "fixture was generated from a different k=64 Mastrovito netlist";
  EXPECT_EQ(loaded->k, 64u);
  EXPECT_EQ(loaded->word, "Z");
  EXPECT_EQ(loaded->step, 1200u);

  ExtractionCheckpoint ck;
  ck.directory = dir;
  ck.resume = true;
  ExtractionOptions options;
  options.checkpoint = &ck;
  const Result<WordFunction> resumed =
      try_extract_word_function(nl, field, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_TRUE(resumed->stats.resumed);

  const WordFunction fresh = extract_word_function(nl, field);
  // The fixture's 1200-step prefix was skipped, not replayed.
  EXPECT_LT(resumed->stats.substitutions, fresh.stats.substitutions);
  EXPECT_EQ(resumed->g, fresh.g);
  EXPECT_EQ(resumed->g.to_string(resumed->pool), fresh.g.to_string(fresh.pool));
#endif
}

TEST(CheckpointResume, MismatchedCheckpointFallsBackToAFreshStart) {
  const Gf2k field = Gf2k::make(16);
  const Netlist nl = make_mastrovito_multiplier(field);
  const std::string dir = make_temp_dir();
  const std::uint64_t hash = netlist_content_hash(nl);
  // A checkpoint at the right path but written for a different field: the
  // validator must ignore it rather than seed the rewriter with alien state.
  ReductionCheckpoint bogus;
  bogus.k = 8;  // != 16
  bogus.circuit_hash = hash;
  bogus.word = "Z";
  bogus.step = 7;
  Gf2Poly c;
  c.set_coeff(0, true);
  bogus.terms.emplace_back(BitMono{0}, c);
  ASSERT_TRUE(
      save_checkpoint(checkpoint_path(dir, hash, "Z"), bogus).ok());

  ExtractionCheckpoint ck;
  ck.directory = dir;
  ck.resume = true;
  ExtractionOptions options;
  options.checkpoint = &ck;
  const Result<WordFunction> r = try_extract_word_function(nl, field, options);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_FALSE(r->stats.resumed);
  const WordFunction fresh = extract_word_function(nl, field);
  EXPECT_EQ(r->g.to_string(r->pool), fresh.g.to_string(fresh.pool));
}

}  // namespace
}  // namespace gfa::worker
