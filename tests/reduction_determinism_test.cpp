// Determinism suite for the parallel sharded reduction chain (rewriter.h):
// the extracted canonical polynomial must be bit-identical at every pool
// width, for both the chunked substitution inside one chain and the seed
// sharding across sub-chains — including when a mid-chain fault unwinds a
// run, and when a checkpoint saved at one thread count is resumed at
// another. "Identical" here is exact: the same term set with the same
// GF(2^k) coefficients, compared both structurally and via to_string.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "abstraction/extractor.h"
#include "abstraction/rewriter.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "util/fault_inject.h"
#include "util/parallel_for.h"
#include "worker/checkpoint.h"

namespace gfa {
namespace {

struct Disarmer {
  ~Disarmer() { fault::disarm(); }
};

/// Restores the pool width the test found, however the test exits.
struct WidthGuard {
  unsigned before = parallel_thread_count();
  ~WidthGuard() { set_parallel_thread_count(before); }
};

std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "gfa_det_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

WordFunction extract_at(unsigned threads, const Netlist& nl, const Gf2k& field,
                        const ExtractionOptions& options = {}) {
  set_parallel_thread_count(threads);
  return extract_word_function(nl, field, options);
}

/// Extracts at 1/2/8 threads and asserts every result is bit-identical to
/// the 1-thread chain.
void expect_width_invariant(const Netlist& nl, const Gf2k& field) {
  WidthGuard guard;
  const WordFunction ref = extract_at(1, nl, field);
  const std::string ref_poly = ref.g.to_string(ref.pool);
  for (unsigned threads : {2u, 8u}) {
    const WordFunction fn = extract_at(threads, nl, field);
    EXPECT_TRUE(fn.g == ref.g) << "k=" << field.k() << " threads=" << threads;
    EXPECT_EQ(fn.g.to_string(fn.pool), ref_poly)
        << "k=" << field.k() << " threads=" << threads;
    // The chain does the same work regardless of how it is sharded.
    EXPECT_EQ(fn.stats.substitutions, ref.stats.substitutions);
  }
}

TEST(ReductionDeterminism, MastrovitoIsBitIdenticalAcrossThreadCounts) {
  for (unsigned k : {8u, 32u, 64u}) {
    const Gf2k field = Gf2k::make(k);
    expect_width_invariant(make_mastrovito_multiplier(field), field);
  }
}

TEST(ReductionDeterminism, MontgomeryFlatIsBitIdenticalAcrossThreadCounts) {
  for (unsigned k : {8u, 32u, 64u}) {
    const Gf2k field = Gf2k::make(k);
    expect_width_invariant(make_montgomery_multiplier_flat(field), field);
  }
}

TEST(ReductionDeterminism, ExplicitShardCountsAgreeWithTheSerialChain) {
  // chain_shards overrides the auto width: 1 forces the serial chain, larger
  // values force more sub-chains than the seed-capped auto choice would pick.
  WidthGuard guard;
  set_parallel_thread_count(4);
  const Gf2k field = Gf2k::make(32);
  const Netlist nl = make_mastrovito_multiplier(field);
  ExtractionOptions options;
  options.chain_shards = 1;
  const WordFunction serial = extract_word_function(nl, field, options);
  for (unsigned shards : {2u, 3u, 7u, 32u}) {
    options.chain_shards = shards;
    const WordFunction fn = extract_word_function(nl, field, options);
    EXPECT_TRUE(fn.g == serial.g) << "chain_shards=" << shards;
  }
}

TEST(ReductionDeterminism, ChunkedSubstitutionMatchesTheSerialExpansion) {
  // Drive one substitution through the chunked path directly: enough pending
  // terms to clear kChunkedSubstitutionMin, a multi-term tail, and
  // coefficients chosen so cross-shard XOR cancellation actually happens.
  WidthGuard guard;
  const Gf2k field = Gf2k::make(16);
  const unsigned n = 3 * kChunkedSubstitutionMin;  // 384 pending terms
  const VarId v = 0;
  std::vector<bool> substitutable(n + 8, true);

  const auto fill = [&](BackwardRewriter& rw) {
    for (unsigned i = 0; i < n; ++i) {
      // {v, x_i} and a v-free sibling {x_i, y_j} (BitMonos are strictly
      // increasing, so y lives above every x); alpha powers cycle so
      // coefficients exercise the full field, not just 1.
      rw.add({v, VarId(4 + i)}, field.alpha_pow(i % 13 + 1));
      rw.add({VarId(4 + i), VarId(n + 4 + i % 4)}, field.one());
    }
    // A few terms designed to cancel against expansion products.
    for (unsigned i = 0; i < n; i += 2)
      rw.add({VarId(1), VarId(4 + i)}, field.alpha_pow(i % 13 + 1));
  };
  const BitPoly tail = [&]() {
    BitPoly t(&field);
    t.add_term({VarId(1)}, field.one());
    t.add_term({VarId(2)}, field.alpha());
    t.add_term({VarId(2), VarId(3)}, field.alpha_pow(5));
    t.add_term({}, field.one());
    return t;
  }();

  set_parallel_thread_count(1);
  BackwardRewriter serial(field, substitutable);
  fill(serial);
  serial.substitute(v, tail);

  set_parallel_thread_count(4);
  BackwardRewriter chunked(field, substitutable);
  fill(chunked);
  ASSERT_GE(chunked.occurrences(v), kChunkedSubstitutionMin);
  chunked.substitute(v, tail);

  EXPECT_EQ(chunked.num_terms(), serial.num_terms());
  EXPECT_TRUE(chunked.terms() == serial.terms());
}

TEST(ReductionDeterminism, CleanRerunAfterMidChainFaultIsIdentical) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  WidthGuard guard;
  const Gf2k field = Gf2k::make(32);
  const Netlist nl = make_mastrovito_multiplier(field);
  const WordFunction ref = extract_at(1, nl, field);

  for (unsigned threads : {2u, 8u}) {
    set_parallel_thread_count(threads);
    // Kill the chain partway through (the 400th add lands mid-substitution);
    // the failure must unwind as a clean status, and a rerun in the same
    // process must not be perturbed by the aborted shards.
    ASSERT_TRUE(fault::arm("oom:rewriter.add", 400).ok());
    const Result<WordFunction> interrupted =
        try_extract_word_function(nl, field);
    EXPECT_TRUE(fault::fired()) << "threads=" << threads;
    ASSERT_FALSE(interrupted.ok()) << "threads=" << threads;
    EXPECT_EQ(interrupted.status().code(), StatusCode::kResourceExhausted);
    fault::disarm();

    const WordFunction rerun = extract_word_function(nl, field);
    EXPECT_TRUE(rerun.g == ref.g) << "threads=" << threads;
    EXPECT_EQ(rerun.g.to_string(rerun.pool), ref.g.to_string(ref.pool));
  }
}

TEST(ReductionDeterminism, ResumeOnADifferentThreadCountMatches) {
  if (!fault::compiled_in()) GTEST_SKIP() << "GFA_FAULT_INJECTION is off";
  Disarmer disarm;
  WidthGuard guard;
  const Gf2k field = Gf2k::make(64);
  const Netlist nl = make_mastrovito_multiplier(field);
  const WordFunction ref = extract_at(1, nl, field);
  const std::string ref_poly = ref.g.to_string(ref.pool);

  const std::string dir = make_temp_dir();
  ExtractionCheckpoint ck;
  ck.directory = dir;
  ck.interval = 100;
  ExecControl control;  // non-null so the cancel fault point is polled
  ExtractionOptions options;
  options.control = &control;
  options.checkpoint = &ck;

  // Save under a 2-thread chain (snapshots only happen at merge barriers,
  // where the sharded state equals the serial state)... The sharded chain
  // polls the cancel point once per shard per segment rather than per gate,
  // so the skip count is small: ~30 polls lands a few thousand gates in,
  // after many barrier saves but far from the chain's end.
  set_parallel_thread_count(2);
  ASSERT_TRUE(fault::arm("cancel:checkpoint", 30).ok());
  const Result<WordFunction> interrupted =
      try_extract_word_function(nl, field, options);
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled);
  fault::disarm();
  const std::string path =
      worker::checkpoint_path(dir, worker::netlist_content_hash(nl), "Z");
  ASSERT_TRUE(worker::load_checkpoint(path).ok())
      << "no checkpoint survived the interruption";

  // ...and resume under an 8-thread chain: the loaded terms are re-sharded
  // round-robin, so the partition differs from the one that saved — the
  // polynomial must not.
  set_parallel_thread_count(8);
  ck.resume = true;
  const Result<WordFunction> resumed =
      try_extract_word_function(nl, field, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_TRUE(resumed->stats.resumed);
  EXPECT_LT(resumed->stats.substitutions, ref.stats.substitutions);
  EXPECT_TRUE(resumed->g == ref.g);
  EXPECT_EQ(resumed->g.to_string(resumed->pool), ref_poly);
}

}  // namespace
}  // namespace gfa
