// Units for the library-wide error model (util/status.h), the deadline /
// cancellation plumbing (util/exec_control.h), and the validated numeric
// parsing that replaced atoi in the CLI and env handling
// (util/parse_number.h).

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "util/exec_control.h"
#include "util/parse_number.h"
#include "util/status.h"

namespace gfa {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::invalid_argument("bad k").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::parse_error("junk").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::deadline_exceeded().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::cancelled().code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::unsupported("no words").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::resource_exhausted("terms").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::internal("oops").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::parse_error("junk").message(), "junk");
}

TEST(Status, ToStringPrependsCodeName) {
  EXPECT_EQ(Status::parse_error("line 3").to_string(), "kParseError: line 3");
  EXPECT_EQ(Status::deadline_exceeded().to_string(),
            "kDeadlineExceeded: deadline exceeded");
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "kOk");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "kInvalidArgument");
  EXPECT_STREQ(status_code_name(StatusCode::kParseError), "kParseError");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded),
               "kDeadlineExceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "kCancelled");
  EXPECT_STREQ(status_code_name(StatusCode::kUnsupported), "kUnsupported");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted),
               "kResourceExhausted");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "kInternal");
}

TEST(Status, DocumentedExitCodes) {
  EXPECT_EQ(exit_code_for(StatusCode::kOk), 0);
  EXPECT_EQ(exit_code_for(StatusCode::kInternal), 2);
  EXPECT_EQ(exit_code_for(StatusCode::kParseError), 65);
  EXPECT_EQ(exit_code_for(StatusCode::kInvalidArgument), 66);
  EXPECT_EQ(exit_code_for(StatusCode::kUnsupported), 69);
  EXPECT_EQ(exit_code_for(StatusCode::kResourceExhausted), 70);
  EXPECT_EQ(exit_code_for(StatusCode::kCancelled), 74);
  EXPECT_EQ(exit_code_for(StatusCode::kDeadlineExceeded), 75);
}

TEST(Status, Equality) {
  EXPECT_EQ(Status(), Status());
  EXPECT_EQ(Status::parse_error("x"), Status::parse_error("x"));
  EXPECT_FALSE(Status::parse_error("x") == Status::parse_error("y"));
  EXPECT_FALSE(Status::parse_error("x") == Status::internal("x"));
}

TEST(Result, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  *r += 1;
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::unsupported("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(CaptureResult, WrapsReturnValue) {
  const Result<int> r = capture_result([] { return 5; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(CaptureResult, StatusErrorPassesThroughItsPayload) {
  const Result<int> r = capture_result(
      []() -> int { throw StatusError(Status::deadline_exceeded()); });
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CaptureResult, InvalidArgumentMapsToKInvalidArgument) {
  const Result<int> r = capture_result(
      []() -> int { throw std::invalid_argument("bad word width"); });
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(), "bad word width");
}

TEST(CaptureResult, OtherExceptionsMapToKInternal) {
  const Result<int> r =
      capture_result([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Deadline / CancelToken / ExecControl

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e9);
}

TEST(Deadline, AfterZeroIsAlreadyExpired) {
  const Deadline d = Deadline::after(0.0);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_seconds(), 0.0);
}

TEST(Deadline, AfterLongIsNotYetExpired) {
  const Deadline d = Deadline::after(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
}

TEST(CancelToken, CopiesShareTheFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(b.cancelled());
  a.request_cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(ExecControl, OkWhileNeitherFired) {
  ExecControl control;
  EXPECT_TRUE(control.check().ok());
  EXPECT_FALSE(control.should_stop());
  EXPECT_NO_THROW(throw_if_stopped(&control));
}

TEST(ExecControl, ExpiredDeadlineIsDeadlineExceeded) {
  ExecControl control;
  control.deadline = Deadline::after(0.0);
  EXPECT_EQ(control.check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(control.should_stop());
}

TEST(ExecControl, CancellationWinsOverDeadline) {
  ExecControl control;
  control.deadline = Deadline::after(0.0);
  control.cancel.request_cancel();
  EXPECT_EQ(control.check().code(), StatusCode::kCancelled);
}

TEST(ExecControl, ThrowIfStoppedIsNoopOnNull) {
  EXPECT_NO_THROW(throw_if_stopped(nullptr));
}

TEST(ExecControl, ThrowIfStoppedUnwindsViaStatusError) {
  ExecControl control;
  control.deadline = Deadline::after(0.0);
  try {
    throw_if_stopped(&control);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status.code(), StatusCode::kDeadlineExceeded);
  }
}

// ---------------------------------------------------------------------------
// parse_number

TEST(ParseNumber, ParsesPlainUnsigned) {
  const Result<unsigned> r = parse_unsigned("163", 2, 100000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 163u);
}

TEST(ParseNumber, RejectsGarbage) {
  EXPECT_EQ(parse_unsigned("abc").status().code(), StatusCode::kParseError);
  EXPECT_EQ(parse_unsigned("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(parse_unsigned("12x").status().code(), StatusCode::kParseError);
  EXPECT_EQ(parse_unsigned(" 12").status().code(), StatusCode::kParseError);
  EXPECT_EQ(parse_unsigned("-5").status().code(), StatusCode::kParseError);
}

TEST(ParseNumber, EnforcesRange) {
  EXPECT_EQ(parse_unsigned("1", 2, 8).status().code(), StatusCode::kParseError);
  EXPECT_EQ(parse_unsigned("9", 2, 8).status().code(), StatusCode::kParseError);
  EXPECT_TRUE(parse_unsigned("8", 2, 8).ok());
}

TEST(ParseNumber, U64HandlesLargeValuesAndOverflow) {
  const Result<std::uint64_t> big = parse_u64("18446744073709551615");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big, UINT64_MAX);
  EXPECT_EQ(parse_u64("18446744073709551616").status().code(),
            StatusCode::kParseError);
}

TEST(ParseNumber, ParsesDouble) {
  const Result<double> r = parse_double("0.001", 0.0, 1e9);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.001);
  EXPECT_EQ(parse_double("nan", 0.0, 1.0).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(parse_double("1e99", 0.0, 1.0).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(parse_double("zero", 0.0, 1.0).status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace gfa
