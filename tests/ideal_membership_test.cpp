#include "baselines/ideal_membership.h"

#include <gtest/gtest.h>

#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/mutate.h"
#include "test_util.h"

namespace gfa {
namespace {

class IdealMembershipSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(IdealMembershipSizes, CorrectMultipliersAreMembers) {
  const Gf2k field = Gf2k::make(GetParam());
  const auto mast =
      verify_multiplier_by_ideal_membership(make_mastrovito_multiplier(field), field);
  EXPECT_TRUE(mast.is_member);
  EXPECT_EQ(mast.residual_terms, 0u);
  const auto mont = verify_multiplier_by_ideal_membership(
      make_montgomery_multiplier_flat(field), field);
  EXPECT_TRUE(mont.is_member);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IdealMembershipSizes,
                         ::testing::Values(2, 3, 4, 8, 16, 32));

TEST(IdealMembership, BuggyCircuitIsNotMember) {
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const auto res = verify_multiplier_by_ideal_membership(
      test::make_fig2_multiplier(/*with_bug=*/true), field);
  EXPECT_FALSE(res.is_member);
  EXPECT_GT(res.residual_terms, 0u);
}

TEST(IdealMembership, WrongSpecIsRejected) {
  // Test the Mastrovito multiplier against the spec Z = A·B² — not a member.
  const Gf2k field = Gf2k::make(4);
  const auto res = verify_by_ideal_membership(
      make_mastrovito_multiplier(field), field,
      [](const Gf2k* f, VarPool& pool) {
        return MPoly::term(
            f, f->one(),
            Monomial::from_pairs(
                {{pool.id("A"), BigUint(1)}, {pool.id("B"), BigUint(2)}}));
      });
  EXPECT_FALSE(res.is_member);
}

TEST(IdealMembership, SquaredSpecAgainstComposedSquarer) {
  // Spec with exponent 2 exercises the Frobenius-linear word power expansion.
  const Gf2k field = Gf2k::make(3);
  // Circuit: Z = A² built as Mastrovito(A, A) is not expressible here (two
  // distinct words), so verify A·B against spec (A·B)^8 = A^8·B^8 reduced:
  // over F_8, X^8 = X, so A^8·B^8 = A·B — still the multiplier spec.
  const auto res = verify_by_ideal_membership(
      make_mastrovito_multiplier(field), field,
      [](const Gf2k* f, VarPool& pool) {
        return MPoly::term(
            f, f->one(),
            Monomial::from_pairs(
                {{pool.id("A"), BigUint(8)}, {pool.id("B"), BigUint(8)}}));
      });
  EXPECT_TRUE(res.is_member);
}

TEST(IdealMembership, StatsArePopulated) {
  const Gf2k field = Gf2k::make(8);
  const auto res = verify_multiplier_by_ideal_membership(
      make_mastrovito_multiplier(field), field);
  EXPECT_GT(res.substitutions, 0u);
  EXPECT_GT(res.peak_terms, 64u);  // both sides carry ~k² terms
}

}  // namespace
}  // namespace gfa
