#include "abstraction/extractor.h"

#include <gtest/gtest.h>

#include "abstraction/rato.h"
#include "baselines/interpolation.h"
#include "circuit/mastrovito.h"
#include "circuit/montgomery.h"
#include "circuit/sim.h"
#include "test_util.h"

namespace gfa {
namespace {

TEST(Rato, ClassifiesWords) {
  const Netlist nl = test::make_fig2_multiplier();
  const auto ins = input_words(nl);
  ASSERT_EQ(ins.size(), 2u);
  EXPECT_EQ(ins[0]->name, "A");
  EXPECT_EQ(ins[1]->name, "B");
  ASSERT_NE(output_word(nl), nullptr);
  EXPECT_EQ(output_word(nl)->name, "Z");
}

TEST(Rato, NetOrderEliminatesFanoutsFirst) {
  const Netlist nl = test::make_fig2_multiplier();
  const auto order = rato_net_order(nl);
  std::vector<std::size_t> pos(nl.num_nets());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  // Every gate comes before its fanins (outputs toward inputs).
  for (NetId n = 0; n < nl.num_nets(); ++n)
    for (NetId f : nl.gate(n).fanins) EXPECT_LT(pos[n], pos[f]);
}

TEST(Extractor, Fig2MultiplierYieldsZEqualsAB) {
  // Paper Example 4.2 / 5.1 correct case: r = Z + A·B.
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const WordFunction fn = extract_word_function(test::make_fig2_multiplier(), field);
  const MPoly ab = MPoly::variable(&field, fn.pool.id("A")) *
                   MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, ab) << fn.g.to_string(fn.pool);
  EXPECT_EQ(fn.output_word, "Z");
  EXPECT_EQ(fn.input_words, (std::vector<std::string>{"A", "B"}));
  EXPECT_FALSE(fn.stats.case1);
  EXPECT_EQ(fn.stats.substitutions, 7u);
}

TEST(Extractor, PaperExample51BuggyPolynomial) {
  // Example 5.1: with the r0 bug, the canonical polynomial is
  //   Z = α·A²B² + A²B + (α+1)·A·B² + (α+1)·A·B.
  const Gf2k field(Gf2Poly::from_bits(0b111));
  const WordFunction fn =
      extract_word_function(test::make_fig2_multiplier(/*with_bug=*/true), field);
  const VarId a = fn.pool.id("A"), b = fn.pool.id("B");
  const auto alpha = field.alpha();
  const auto alpha1 = field.add(alpha, field.one());
  MPoly expect(&field);
  expect.add_term(Monomial::from_pairs({{a, BigUint(2)}, {b, BigUint(2)}}), alpha);
  expect.add_term(Monomial::from_pairs({{a, BigUint(2)}, {b, BigUint(1)}}),
                  field.one());
  expect.add_term(Monomial::from_pairs({{a, BigUint(1)}, {b, BigUint(2)}}), alpha1);
  expect.add_term(Monomial::from_pairs({{a, BigUint(1)}, {b, BigUint(1)}}), alpha1);
  EXPECT_EQ(fn.g, expect) << fn.g.to_string(fn.pool);
}

class ExtractorVsOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExtractorVsOracle, MastrovitoIsAB) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_mastrovito_multiplier(field);
  const WordFunction fn = extract_word_function(nl, field);
  const MPoly ab = MPoly::variable(&field, fn.pool.id("A")) *
                   MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, ab);
  // The remainder is the k² bilinear Mastrovito form.
  EXPECT_EQ(fn.stats.remainder_degree, 2u);
}

TEST_P(ExtractorVsOracle, MontgomeryFlatIsAB) {
  const Gf2k field = Gf2k::make(GetParam());
  const Netlist nl = make_montgomery_multiplier_flat(field);
  const WordFunction fn = extract_word_function(nl, field);
  const MPoly ab = MPoly::variable(&field, fn.pool.id("A")) *
                   MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, ab);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExtractorVsOracle,
                         ::testing::Values(2, 3, 4, 5, 8, 11, 16, 24, 32));

TEST(Extractor, RandomCircuitsMatchInterpolationOracle) {
  // The extracted polynomial must equal the exhaustive Lagrange interpolation
  // of the simulated function — for arbitrary (non-arithmetic) circuits.
  for (unsigned k = 2; k <= 4; ++k) {
    const Gf2k field = Gf2k::make(k);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Netlist nl = test::make_random_word_circuit(k, seed);
      const WordFunction fn = extract_word_function(nl, field);
      const MPoly oracle = interpolate_bivariate(
          field, fn.pool.id("A"), fn.pool.id("B"),
          [&](const Gf2k::Elem& a, const Gf2k::Elem& b) {
            return simulate_words(nl, *nl.find_word("Z"),
                                  {{nl.find_word("A"), {a}},
                                   {nl.find_word("B"), {b}}})[0];
          });
      EXPECT_EQ(fn.g, oracle) << "k=" << k << " seed=" << seed << "\n got "
                              << fn.g.to_string(fn.pool);
    }
  }
}

TEST(Extractor, SquarerIsFrobenius) {
  // A squarer circuit implements Z = A², a linear polynomial over F_2.
  const Gf2k field = Gf2k::make(5);
  Netlist nl("squarer");
  std::vector<NetId> a(5);
  for (unsigned i = 0; i < 5; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  // z_j = Σ bits of α^{2i} expansion: square via the linear map.
  std::vector<std::vector<NetId>> zin(5);
  for (unsigned i = 0; i < 5; ++i) {
    const auto alpha2i = field.alpha_pow(std::uint64_t{2} * i);
    for (unsigned j = 0; j < 5; ++j)
      if (alpha2i.coeff(j)) zin[j].push_back(a[i]);
  }
  std::vector<NetId> z(5);
  for (unsigned j = 0; j < 5; ++j) {
    if (zin[j].empty()) {
      z[j] = nl.add_const(false, "z" + std::to_string(j));
    } else if (zin[j].size() == 1) {
      z[j] = nl.add_gate(GateType::kBuf, {zin[j][0]}, "z" + std::to_string(j));
    } else {
      NetId acc = zin[j][0];
      for (std::size_t t = 1; t < zin[j].size(); ++t)
        acc = nl.add_gate(GateType::kXor, {acc, zin[j][t]},
                          t + 1 == zin[j].size() ? "z" + std::to_string(j) : "");
      z[j] = acc;
    }
    nl.mark_output(z[j]);
  }
  nl.declare_word("A", a);
  nl.declare_word("Z", z);

  const WordFunction fn = extract_word_function(nl, field);
  MPoly expect(&field);
  expect.add_term(Monomial(fn.pool.id("A"), BigUint(2)), field.one());
  EXPECT_EQ(fn.g, expect) << fn.g.to_string(fn.pool);
}

TEST(Extractor, ConstantCircuitIsCase1) {
  const Gf2k field = Gf2k::make(3);
  Netlist nl("constant");
  std::vector<NetId> a(3), z(3);
  for (unsigned i = 0; i < 3; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  // Z = α (constant 0b010), independent of A.
  z[0] = nl.add_const(false, "z0");
  z[1] = nl.add_const(true, "z1");
  z[2] = nl.add_const(false, "z2");
  for (NetId n : z) nl.mark_output(n);
  nl.declare_word("A", a);
  nl.declare_word("Z", z);
  const WordFunction fn = extract_word_function(nl, field);
  EXPECT_TRUE(fn.stats.case1);
  EXPECT_EQ(fn.g, MPoly::constant(&field, field.alpha()));
}

TEST(Extractor, IdentityAndAdderCircuits) {
  const Gf2k field = Gf2k::make(4);
  // Z = A + B: bitwise XOR.
  Netlist nl("adder");
  std::vector<NetId> a(4), b(4), z(4);
  for (unsigned i = 0; i < 4; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < 4; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  for (unsigned i = 0; i < 4; ++i) {
    z[i] = nl.add_gate(GateType::kXor, {a[i], b[i]}, "z" + std::to_string(i));
    nl.mark_output(z[i]);
  }
  nl.declare_word("A", a);
  nl.declare_word("B", b);
  nl.declare_word("Z", z);
  const WordFunction fn = extract_word_function(nl, field);
  const MPoly expect = MPoly::variable(&field, fn.pool.id("A")) +
                       MPoly::variable(&field, fn.pool.id("B"));
  EXPECT_EQ(fn.g, expect);
  EXPECT_EQ(fn.stats.remainder_degree, 1u);  // linear circuit
}

TEST(Extractor, ExtractionEvaluatesLikeSimulation) {
  // Property check on larger k where interpolation is infeasible: evaluate
  // the canonical polynomial on random points against the simulator.
  const Gf2k field = Gf2k::make(16);
  const Netlist nl = make_mastrovito_multiplier(field);
  const WordFunction fn = extract_word_function(nl, field);
  test::Rng rng(161);
  for (int t = 0; t < 20; ++t) {
    const auto a = rng.elem(field), b = rng.elem(field);
    const auto sim = simulate_words(
        nl, *nl.find_word("Z"),
        {{nl.find_word("A"), {a}}, {nl.find_word("B"), {b}}})[0];
    EXPECT_EQ(test::eval_word_function(fn, field, {{"A", a}, {"B", b}}), sim);
  }
}

TEST(Extractor, BudgetExceededThrows) {
  const Gf2k field = Gf2k::make(8);
  const Netlist nl = make_mastrovito_multiplier(field);
  ExtractionOptions opts;
  opts.max_terms = 10;
  EXPECT_THROW(extract_word_function(nl, field, opts), ExtractionBudgetExceeded);
}

TEST(Extractor, MissingWordsAreRejected) {
  const Gf2k field = Gf2k::make(2);
  Netlist nl;
  const NetId a0 = nl.add_input("a0");
  const NetId a1 = nl.add_input("a1");
  const NetId g = nl.add_gate(GateType::kAnd, {a0, a1}, "g");
  nl.mark_output(g);
  EXPECT_THROW(extract_word_function(nl, field), std::invalid_argument);
  nl.declare_word("A", {a0, a1});
  EXPECT_THROW(extract_word_function(nl, field), std::invalid_argument);
}

TEST(Extractor, UncoveredInputIsRejected) {
  const Gf2k field = Gf2k::make(2);
  Netlist nl;
  const NetId a0 = nl.add_input("a0");
  const NetId a1 = nl.add_input("a1");
  const NetId c = nl.add_input("stray");
  const NetId z0 = nl.add_gate(GateType::kAnd, {a0, c}, "z0");
  const NetId z1 = nl.add_gate(GateType::kBuf, {a1}, "z1");
  nl.mark_output(z0);
  nl.mark_output(z1);
  nl.declare_word("A", {a0, a1});
  nl.declare_word("Z", {z0, z1});
  EXPECT_THROW(extract_word_function(nl, field), std::invalid_argument);
}

TEST(Extractor, WidthMismatchIsRejected) {
  const Gf2k field = Gf2k::make(3);  // k = 3, but words are 2 bits
  const Netlist nl = test::make_fig2_multiplier();
  EXPECT_THROW(extract_word_function(nl, field), std::invalid_argument);
}

}  // namespace
}  // namespace gfa
