file(REMOVE_RECURSE
  "CMakeFiles/ecc_point_double.dir/ecc_point_double.cpp.o"
  "CMakeFiles/ecc_point_double.dir/ecc_point_double.cpp.o.d"
  "ecc_point_double"
  "ecc_point_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_point_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
