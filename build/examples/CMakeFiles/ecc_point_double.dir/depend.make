# Empty dependencies file for ecc_point_double.
# This may be replaced when dependencies are built.
