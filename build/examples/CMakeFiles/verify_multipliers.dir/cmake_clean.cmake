file(REMOVE_RECURSE
  "CMakeFiles/verify_multipliers.dir/verify_multipliers.cpp.o"
  "CMakeFiles/verify_multipliers.dir/verify_multipliers.cpp.o.d"
  "verify_multipliers"
  "verify_multipliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_multipliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
