# Empty dependencies file for verify_multipliers.
# This may be replaced when dependencies are built.
