file(REMOVE_RECURSE
  "CMakeFiles/invert_via_hierarchy.dir/invert_via_hierarchy.cpp.o"
  "CMakeFiles/invert_via_hierarchy.dir/invert_via_hierarchy.cpp.o.d"
  "invert_via_hierarchy"
  "invert_via_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invert_via_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
