# Empty compiler generated dependencies file for invert_via_hierarchy.
# This may be replaced when dependencies are built.
