file(REMOVE_RECURSE
  "CMakeFiles/gfa_tool.dir/gfa_tool.cpp.o"
  "CMakeFiles/gfa_tool.dir/gfa_tool.cpp.o.d"
  "gfa_tool"
  "gfa_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfa_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
