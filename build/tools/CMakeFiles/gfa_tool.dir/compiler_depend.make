# Empty compiler generated dependencies file for gfa_tool.
# This may be replaced when dependencies are built.
