file(REMOVE_RECURSE
  "CMakeFiles/itoh_tsujii_test.dir/itoh_tsujii_test.cpp.o"
  "CMakeFiles/itoh_tsujii_test.dir/itoh_tsujii_test.cpp.o.d"
  "itoh_tsujii_test"
  "itoh_tsujii_test.pdb"
  "itoh_tsujii_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itoh_tsujii_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
