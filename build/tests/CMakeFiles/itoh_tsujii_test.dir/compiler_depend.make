# Empty compiler generated dependencies file for itoh_tsujii_test.
# This may be replaced when dependencies are built.
