# Empty compiler generated dependencies file for f4_reduction_test.
# This may be replaced when dependencies are built.
