file(REMOVE_RECURSE
  "CMakeFiles/f4_reduction_test.dir/f4_reduction_test.cpp.o"
  "CMakeFiles/f4_reduction_test.dir/f4_reduction_test.cpp.o.d"
  "f4_reduction_test"
  "f4_reduction_test.pdb"
  "f4_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
