# Empty dependencies file for full_gb_test.
# This may be replaced when dependencies are built.
