file(REMOVE_RECURSE
  "CMakeFiles/full_gb_test.dir/full_gb_test.cpp.o"
  "CMakeFiles/full_gb_test.dir/full_gb_test.cpp.o.d"
  "full_gb_test"
  "full_gb_test.pdb"
  "full_gb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_gb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
