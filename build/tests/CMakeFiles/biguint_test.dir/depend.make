# Empty dependencies file for biguint_test.
# This may be replaced when dependencies are built.
