file(REMOVE_RECURSE
  "CMakeFiles/mpoly_test.dir/mpoly_test.cpp.o"
  "CMakeFiles/mpoly_test.dir/mpoly_test.cpp.o.d"
  "mpoly_test"
  "mpoly_test.pdb"
  "mpoly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpoly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
