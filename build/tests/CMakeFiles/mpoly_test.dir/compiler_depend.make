# Empty compiler generated dependencies file for mpoly_test.
# This may be replaced when dependencies are built.
