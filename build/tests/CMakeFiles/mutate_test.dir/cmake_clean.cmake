file(REMOVE_RECURSE
  "CMakeFiles/mutate_test.dir/mutate_test.cpp.o"
  "CMakeFiles/mutate_test.dir/mutate_test.cpp.o.d"
  "mutate_test"
  "mutate_test.pdb"
  "mutate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
