file(REMOVE_RECURSE
  "CMakeFiles/arith_extras_test.dir/arith_extras_test.cpp.o"
  "CMakeFiles/arith_extras_test.dir/arith_extras_test.cpp.o.d"
  "arith_extras_test"
  "arith_extras_test.pdb"
  "arith_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
