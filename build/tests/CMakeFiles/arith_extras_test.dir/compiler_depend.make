# Empty compiler generated dependencies file for arith_extras_test.
# This may be replaced when dependencies are built.
