file(REMOVE_RECURSE
  "CMakeFiles/irreducible_test.dir/irreducible_test.cpp.o"
  "CMakeFiles/irreducible_test.dir/irreducible_test.cpp.o.d"
  "irreducible_test"
  "irreducible_test.pdb"
  "irreducible_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irreducible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
