file(REMOVE_RECURSE
  "CMakeFiles/gf2k_test.dir/gf2k_test.cpp.o"
  "CMakeFiles/gf2k_test.dir/gf2k_test.cpp.o.d"
  "gf2k_test"
  "gf2k_test.pdb"
  "gf2k_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf2k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
