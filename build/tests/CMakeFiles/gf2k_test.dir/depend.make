# Empty dependencies file for gf2k_test.
# This may be replaced when dependencies are built.
