file(REMOVE_RECURSE
  "CMakeFiles/ideal_membership_test.dir/ideal_membership_test.cpp.o"
  "CMakeFiles/ideal_membership_test.dir/ideal_membership_test.cpp.o.d"
  "ideal_membership_test"
  "ideal_membership_test.pdb"
  "ideal_membership_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ideal_membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
