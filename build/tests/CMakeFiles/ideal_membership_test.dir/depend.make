# Empty dependencies file for ideal_membership_test.
# This may be replaced when dependencies are built.
