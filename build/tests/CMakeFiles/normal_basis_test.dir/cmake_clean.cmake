file(REMOVE_RECURSE
  "CMakeFiles/normal_basis_test.dir/normal_basis_test.cpp.o"
  "CMakeFiles/normal_basis_test.dir/normal_basis_test.cpp.o.d"
  "normal_basis_test"
  "normal_basis_test.pdb"
  "normal_basis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normal_basis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
