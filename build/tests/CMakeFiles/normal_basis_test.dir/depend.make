# Empty dependencies file for normal_basis_test.
# This may be replaced when dependencies are built.
