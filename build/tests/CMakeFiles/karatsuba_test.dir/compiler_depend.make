# Empty compiler generated dependencies file for karatsuba_test.
# This may be replaced when dependencies are built.
