file(REMOVE_RECURSE
  "CMakeFiles/karatsuba_test.dir/karatsuba_test.cpp.o"
  "CMakeFiles/karatsuba_test.dir/karatsuba_test.cpp.o.d"
  "karatsuba_test"
  "karatsuba_test.pdb"
  "karatsuba_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/karatsuba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
