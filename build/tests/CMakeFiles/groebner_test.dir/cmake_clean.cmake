file(REMOVE_RECURSE
  "CMakeFiles/groebner_test.dir/groebner_test.cpp.o"
  "CMakeFiles/groebner_test.dir/groebner_test.cpp.o.d"
  "groebner_test"
  "groebner_test.pdb"
  "groebner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groebner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
