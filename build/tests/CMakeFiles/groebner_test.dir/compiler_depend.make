# Empty compiler generated dependencies file for groebner_test.
# This may be replaced when dependencies are built.
