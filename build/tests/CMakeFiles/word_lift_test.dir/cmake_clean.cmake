file(REMOVE_RECURSE
  "CMakeFiles/word_lift_test.dir/word_lift_test.cpp.o"
  "CMakeFiles/word_lift_test.dir/word_lift_test.cpp.o.d"
  "word_lift_test"
  "word_lift_test.pdb"
  "word_lift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_lift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
