# Empty dependencies file for word_lift_test.
# This may be replaced when dependencies are built.
