# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bitpoly_test.
