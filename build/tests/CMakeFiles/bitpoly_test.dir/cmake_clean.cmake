file(REMOVE_RECURSE
  "CMakeFiles/bitpoly_test.dir/bitpoly_test.cpp.o"
  "CMakeFiles/bitpoly_test.dir/bitpoly_test.cpp.o.d"
  "bitpoly_test"
  "bitpoly_test.pdb"
  "bitpoly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitpoly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
