# Empty compiler generated dependencies file for bitpoly_test.
# This may be replaced when dependencies are built.
