# Empty compiler generated dependencies file for bench_fullgb_baseline.
# This may be replaced when dependencies are built.
