file(REMOVE_RECURSE
  "CMakeFiles/bench_fullgb_baseline.dir/bench_fullgb_baseline.cpp.o"
  "CMakeFiles/bench_fullgb_baseline.dir/bench_fullgb_baseline.cpp.o.d"
  "bench_fullgb_baseline"
  "bench_fullgb_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fullgb_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
