file(REMOVE_RECURSE
  "CMakeFiles/bench_ideal_membership.dir/bench_ideal_membership.cpp.o"
  "CMakeFiles/bench_ideal_membership.dir/bench_ideal_membership.cpp.o.d"
  "bench_ideal_membership"
  "bench_ideal_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ideal_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
