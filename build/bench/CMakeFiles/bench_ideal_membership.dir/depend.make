# Empty dependencies file for bench_ideal_membership.
# This may be replaced when dependencies are built.
