file(REMOVE_RECURSE
  "CMakeFiles/bench_gf_micro.dir/bench_gf_micro.cpp.o"
  "CMakeFiles/bench_gf_micro.dir/bench_gf_micro.cpp.o.d"
  "bench_gf_micro"
  "bench_gf_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gf_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
