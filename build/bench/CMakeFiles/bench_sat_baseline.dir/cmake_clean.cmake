file(REMOVE_RECURSE
  "CMakeFiles/bench_sat_baseline.dir/bench_sat_baseline.cpp.o"
  "CMakeFiles/bench_sat_baseline.dir/bench_sat_baseline.cpp.o.d"
  "bench_sat_baseline"
  "bench_sat_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sat_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
