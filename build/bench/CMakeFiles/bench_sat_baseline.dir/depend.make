# Empty dependencies file for bench_sat_baseline.
# This may be replaced when dependencies are built.
