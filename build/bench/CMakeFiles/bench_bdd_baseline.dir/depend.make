# Empty dependencies file for bench_bdd_baseline.
# This may be replaced when dependencies are built.
