file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_montgomery.dir/bench_table2_montgomery.cpp.o"
  "CMakeFiles/bench_table2_montgomery.dir/bench_table2_montgomery.cpp.o.d"
  "bench_table2_montgomery"
  "bench_table2_montgomery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_montgomery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
