file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mastrovito.dir/bench_table1_mastrovito.cpp.o"
  "CMakeFiles/bench_table1_mastrovito.dir/bench_table1_mastrovito.cpp.o.d"
  "bench_table1_mastrovito"
  "bench_table1_mastrovito.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mastrovito.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
