# Empty dependencies file for bench_table1_mastrovito.
# This may be replaced when dependencies are built.
