file(REMOVE_RECURSE
  "libgfabstract.a"
)
