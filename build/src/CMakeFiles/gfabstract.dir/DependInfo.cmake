
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abstraction/bitpoly.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/bitpoly.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/bitpoly.cpp.o.d"
  "/root/repo/src/abstraction/equivalence.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/equivalence.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/equivalence.cpp.o.d"
  "/root/repo/src/abstraction/extractor.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/extractor.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/extractor.cpp.o.d"
  "/root/repo/src/abstraction/f4_reduction.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/f4_reduction.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/f4_reduction.cpp.o.d"
  "/root/repo/src/abstraction/hierarchy.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/hierarchy.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/hierarchy.cpp.o.d"
  "/root/repo/src/abstraction/rato.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/rato.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/rato.cpp.o.d"
  "/root/repo/src/abstraction/rewriter.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/rewriter.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/rewriter.cpp.o.d"
  "/root/repo/src/abstraction/word_lift.cpp" "src/CMakeFiles/gfabstract.dir/abstraction/word_lift.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/abstraction/word_lift.cpp.o.d"
  "/root/repo/src/baselines/aig/aig.cpp" "src/CMakeFiles/gfabstract.dir/baselines/aig/aig.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/baselines/aig/aig.cpp.o.d"
  "/root/repo/src/baselines/bdd/bdd.cpp" "src/CMakeFiles/gfabstract.dir/baselines/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/baselines/bdd/bdd.cpp.o.d"
  "/root/repo/src/baselines/full_gb.cpp" "src/CMakeFiles/gfabstract.dir/baselines/full_gb.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/baselines/full_gb.cpp.o.d"
  "/root/repo/src/baselines/ideal_membership.cpp" "src/CMakeFiles/gfabstract.dir/baselines/ideal_membership.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/baselines/ideal_membership.cpp.o.d"
  "/root/repo/src/baselines/interpolation.cpp" "src/CMakeFiles/gfabstract.dir/baselines/interpolation.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/baselines/interpolation.cpp.o.d"
  "/root/repo/src/baselines/miter.cpp" "src/CMakeFiles/gfabstract.dir/baselines/miter.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/baselines/miter.cpp.o.d"
  "/root/repo/src/baselines/sat/solver.cpp" "src/CMakeFiles/gfabstract.dir/baselines/sat/solver.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/baselines/sat/solver.cpp.o.d"
  "/root/repo/src/circuit/arith_extras.cpp" "src/CMakeFiles/gfabstract.dir/circuit/arith_extras.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/arith_extras.cpp.o.d"
  "/root/repo/src/circuit/ecc.cpp" "src/CMakeFiles/gfabstract.dir/circuit/ecc.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/ecc.cpp.o.d"
  "/root/repo/src/circuit/gate_poly.cpp" "src/CMakeFiles/gfabstract.dir/circuit/gate_poly.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/gate_poly.cpp.o.d"
  "/root/repo/src/circuit/itoh_tsujii.cpp" "src/CMakeFiles/gfabstract.dir/circuit/itoh_tsujii.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/itoh_tsujii.cpp.o.d"
  "/root/repo/src/circuit/karatsuba.cpp" "src/CMakeFiles/gfabstract.dir/circuit/karatsuba.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/karatsuba.cpp.o.d"
  "/root/repo/src/circuit/massey_omura.cpp" "src/CMakeFiles/gfabstract.dir/circuit/massey_omura.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/massey_omura.cpp.o.d"
  "/root/repo/src/circuit/mastrovito.cpp" "src/CMakeFiles/gfabstract.dir/circuit/mastrovito.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/mastrovito.cpp.o.d"
  "/root/repo/src/circuit/montgomery.cpp" "src/CMakeFiles/gfabstract.dir/circuit/montgomery.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/montgomery.cpp.o.d"
  "/root/repo/src/circuit/mutate.cpp" "src/CMakeFiles/gfabstract.dir/circuit/mutate.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/mutate.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/gfabstract.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/CMakeFiles/gfabstract.dir/circuit/parser.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/parser.cpp.o.d"
  "/root/repo/src/circuit/sim.cpp" "src/CMakeFiles/gfabstract.dir/circuit/sim.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/sim.cpp.o.d"
  "/root/repo/src/circuit/simplify.cpp" "src/CMakeFiles/gfabstract.dir/circuit/simplify.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/simplify.cpp.o.d"
  "/root/repo/src/circuit/verilog.cpp" "src/CMakeFiles/gfabstract.dir/circuit/verilog.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/circuit/verilog.cpp.o.d"
  "/root/repo/src/gf/biguint.cpp" "src/CMakeFiles/gfabstract.dir/gf/biguint.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/gf/biguint.cpp.o.d"
  "/root/repo/src/gf/gf2k.cpp" "src/CMakeFiles/gfabstract.dir/gf/gf2k.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/gf/gf2k.cpp.o.d"
  "/root/repo/src/gf/normal_basis.cpp" "src/CMakeFiles/gfabstract.dir/gf/normal_basis.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/gf/normal_basis.cpp.o.d"
  "/root/repo/src/gf2/gf2_poly.cpp" "src/CMakeFiles/gfabstract.dir/gf2/gf2_poly.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/gf2/gf2_poly.cpp.o.d"
  "/root/repo/src/gf2/irreducible.cpp" "src/CMakeFiles/gfabstract.dir/gf2/irreducible.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/gf2/irreducible.cpp.o.d"
  "/root/repo/src/poly/groebner.cpp" "src/CMakeFiles/gfabstract.dir/poly/groebner.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/poly/groebner.cpp.o.d"
  "/root/repo/src/poly/monomial.cpp" "src/CMakeFiles/gfabstract.dir/poly/monomial.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/poly/monomial.cpp.o.d"
  "/root/repo/src/poly/mpoly.cpp" "src/CMakeFiles/gfabstract.dir/poly/mpoly.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/poly/mpoly.cpp.o.d"
  "/root/repo/src/poly/varpool.cpp" "src/CMakeFiles/gfabstract.dir/poly/varpool.cpp.o" "gcc" "src/CMakeFiles/gfabstract.dir/poly/varpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
