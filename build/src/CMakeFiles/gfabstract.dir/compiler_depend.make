# Empty compiler generated dependencies file for gfabstract.
# This may be replaced when dependencies are built.
