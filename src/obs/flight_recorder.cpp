#include "obs/flight_recorder.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace gfa::obs::flight {

namespace {

/// Ring slot with atomic fields: note() may race tail() (pool threads vs.
/// the heartbeat thread) and, after a wrap, another note(). seq is stored
/// last with release ordering, so a reader that observes a slot's seq also
/// observes the fields written before it; a torn slot mid-overwrite shows
/// its old seq or the new one, never a mix that passes the range filter
/// with garbage annotations. Tag bytes are relaxed atomic chars purely so
/// the benign byte races are defined behavior.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> t_us{0};
  std::atomic<char> tag[kTagBytes] = {};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
};

Slot g_ring[kRingSize];
std::atomic<std::uint64_t> g_next_seq{0};
std::atomic<int> g_crash_fd{-1};

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool tag_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == ':' || c == '_' || c == '.' ||
         c == '-' || c == '/';
}

/// Reads one slot into a plain Event; returns false for empty slots.
bool load_slot(const Slot& s, Event& out) {
  out.seq = s.seq.load(std::memory_order_acquire);
  if (out.seq == 0) return false;
  out.t_us = s.t_us.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kTagBytes; ++i)
    out.tag[i] = s.tag[i].load(std::memory_order_relaxed);
  out.tag[kTagBytes - 1] = '\0';
  for (char& c : out.tag) {
    if (c == '\0') break;
    if (!tag_char_ok(c)) c = '?';
  }
  out.a = s.a.load(std::memory_order_relaxed);
  out.b = s.b.load(std::memory_order_relaxed);
  return true;
}

// ---- async-signal-safe formatting into a static buffer -------------------

/// 4 bytes of length prefix + up to kRingSize events of bounded JSON.
char g_dump_buf[4 + kRingSize * 176 + 64];
Event g_dump_events[kRingSize];  // static scratch: no allocation in handler

std::size_t put_str(char* dst, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') {
    dst[n] = s[n];
    ++n;
  }
  return n;
}

std::size_t put_u64(char* dst, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) dst[i] = tmp[n - 1 - i];
  return n;
}

/// Formats the ring tail as one length-prefixed flight frame in g_dump_buf;
/// returns the total byte count (prefix included). Only loads, stores into
/// the static buffers, and integer arithmetic — safe inside a handler.
std::size_t format_dump_frame() {
  // Snapshot the ring, oldest first.
  const std::uint64_t last = g_next_seq.load(std::memory_order_acquire);
  std::size_t count = 0;
  for (std::size_t i = 0; i < kRingSize; ++i) {
    Event e;
    if (!load_slot(g_ring[i], e)) continue;
    if (e.seq > last || e.seq + kRingSize <= last) continue;  // mid-overwrite
    g_dump_events[count++] = e;
  }
  // Insertion sort by seq (bounded at kRingSize; no allocation, no libc).
  for (std::size_t i = 1; i < count; ++i) {
    Event key = g_dump_events[i];
    std::size_t j = i;
    while (j > 0 && g_dump_events[j - 1].seq > key.seq) {
      g_dump_events[j] = g_dump_events[j - 1];
      --j;
    }
    g_dump_events[j] = key;
  }

  char* p = g_dump_buf + 4;  // length prefix patched in at the end
  p += put_str(p, "{\"frame\":\"flight\",\"events\":[");
  for (std::size_t i = 0; i < count; ++i) {
    const Event& e = g_dump_events[i];
    if (i != 0) *p++ = ',';
    p += put_str(p, "{\"seq\":");
    p += put_u64(p, e.seq);
    p += put_str(p, ",\"t_us\":");
    p += put_u64(p, e.t_us);
    p += put_str(p, ",\"tag\":\"");
    p += put_str(p, e.tag);  // sanitized by load_slot: no escapes needed
    p += put_str(p, "\",\"a\":");
    p += put_u64(p, e.a);
    p += put_str(p, ",\"b\":");
    p += put_u64(p, e.b);
    *p++ = '}';
  }
  p += put_str(p, "]}");
  const std::size_t payload =
      static_cast<std::size_t>(p - g_dump_buf) - 4;
  g_dump_buf[0] = static_cast<char>(payload & 0xff);
  g_dump_buf[1] = static_cast<char>((payload >> 8) & 0xff);
  g_dump_buf[2] = static_cast<char>((payload >> 16) & 0xff);
  g_dump_buf[3] = static_cast<char>((payload >> 24) & 0xff);
  return payload + 4;
}

void write_all(int fd, const char* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, buf + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // dead pipe; nothing a crash handler can do about it
  }
}

void crash_handler(int sig) {
  const int fd = g_crash_fd.load(std::memory_order_relaxed);
  if (fd >= 0) dump_frame(fd);
  // Restore the default action and re-raise: the signal stays pending while
  // blocked in the handler and kills the process (with the original signal
  // number, preserving the parent's WTERMSIG classification) on return.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void note(const char* tag, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t seq =
      g_next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = g_ring[(seq - 1) % kRingSize];
  s.seq.store(0, std::memory_order_relaxed);  // invalidate during overwrite
  s.t_us.store(steady_now_us(), std::memory_order_relaxed);
  std::size_t i = 0;
  for (; i + 1 < kTagBytes && tag[i] != '\0'; ++i)
    s.tag[i].store(tag[i], std::memory_order_relaxed);
  for (; i < kTagBytes; ++i) s.tag[i].store('\0', std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
}

std::vector<Event> tail() {
  const std::uint64_t last = g_next_seq.load(std::memory_order_acquire);
  std::vector<Event> out;
  out.reserve(kRingSize);
  for (std::size_t i = 0; i < kRingSize; ++i) {
    Event e;
    if (!load_slot(g_ring[i], e)) continue;
    if (e.seq > last || e.seq + kRingSize <= last) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

void clear() {
  for (Slot& s : g_ring) s.seq.store(0, std::memory_order_relaxed);
  g_next_seq.store(0, std::memory_order_relaxed);
}

std::string format(const Event& e) {
  std::string out = "t=";
  out += std::to_string(e.t_us);
  out += "us ";
  out += e.tag;
  out += " a=";
  out += std::to_string(e.a);
  out += " b=";
  out += std::to_string(e.b);
  return out;
}

void install_crash_handler(int fd) {
  g_crash_fd.store(fd, std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

void dump_frame(int fd) {
  const std::size_t len = format_dump_frame();
  write_all(fd, g_dump_buf, len);
}

}  // namespace gfa::obs::flight
