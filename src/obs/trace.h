#pragma once
// Phase-scoped tracing in the Chrome trace-event format.
//
// Engine phases (parse → gate-poly build → RATO sort → reduction chain →
// Case-2 lift → coefficient match, and the baselines' equivalents) open an
// RAII TraceSpan; completed spans accumulate in a process-wide buffer that
// serializes to a chrome://tracing- / Perfetto-loadable JSON document
// ({"traceEvents": [{"ph": "X", ...}]}) via util/json_writer.
//
// Like the metrics registry, tracing is off by default: a disabled TraceSpan
// constructor is one relaxed atomic load. Enabled spans cost one
// steady_clock read at open and a mutex-guarded append at close — they are
// placed around *phases* (hundreds per run), never inner loops.
//
// Enablement: GFA_TRACE=1 in the environment or set_trace_enabled(true)
// (wired to `gfa_tool --trace=<file>`). aggregate() folds the buffer into
// per-phase totals for bench reporters (BENCH_*.json per-phase columns).

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace gfa::obs {

/// Global on/off switch; one relaxed load, safe from any thread.
bool trace_enabled();
void set_trace_enabled(bool enabled);

struct TraceEvent {
  std::string name;
  const char* category;     // interned string, e.g. "engine", "abstraction"
  std::uint64_t start_us;   // since process trace epoch
  std::uint64_t duration_us;
  std::uint32_t tid;        // small dense thread id
  std::uint32_t pid = 0;    // 0 = this process; set on imported child events
};

/// Returns a stable, process-lifetime pointer for `category`. Literal
/// categories pass through TraceSpan untouched; this exists for events
/// deserialized from worker telemetry frames, whose category strings arrive
/// dynamically but must outlive the buffer (storage is leaked by design).
const char* intern_category(std::string_view category);

/// Absolute steady-clock microseconds of this process's trace epoch (the
/// zero point of every TraceEvent::start_us). steady_clock is
/// CLOCK_MONOTONIC — shared across processes on Linux — so a parent aligns a
/// child's events onto its own timeline from the two epochs alone:
/// offset = child_epoch_us - parent_epoch_us.
std::uint64_t trace_epoch_us();

struct PhaseTotal {
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Appends one complete event (called by ~TraceSpan). The calling thread's
  /// dense tid is stamped here — at span *close* — so an event always lands
  /// in the lane of the thread that actually ran the work.
  void record(std::string name, const char* category, std::uint64_t start_us,
              std::uint64_t duration_us);

  /// Appends pre-stamped events (worker spans re-based onto this process's
  /// epoch by the harness supervisor). tid/pid are taken as given.
  void import_events(std::vector<TraceEvent> events);

  /// Writes the whole buffer as a Chrome trace-event JSON document. Events
  /// with pid 0 report this process's real pid, so merged parent/child
  /// buffers render as separate process groups.
  void write_chrome_trace(std::ostream& out) const;

  /// Per-phase totals (by event name), for bench reporters.
  std::map<std::string, PhaseTotal> aggregate() const;

  std::vector<TraceEvent> events() const;
  void clear();

 private:
  Tracer() = default;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, std::uint32_t> tids_;
};

/// RAII phase scope. The span is recorded iff tracing was enabled when the
/// scope opened. Name may be dynamic (e.g. "verify:abstraction").
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, const char* category = "phase");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace gfa::obs
