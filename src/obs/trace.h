#pragma once
// Phase-scoped tracing in the Chrome trace-event format.
//
// Engine phases (parse → gate-poly build → RATO sort → reduction chain →
// Case-2 lift → coefficient match, and the baselines' equivalents) open an
// RAII TraceSpan; completed spans accumulate in a process-wide buffer that
// serializes to a chrome://tracing- / Perfetto-loadable JSON document
// ({"traceEvents": [{"ph": "X", ...}]}) via util/json_writer.
//
// Like the metrics registry, tracing is off by default: a disabled TraceSpan
// constructor is one relaxed atomic load. Enabled spans cost one
// steady_clock read at open and a mutex-guarded append at close — they are
// placed around *phases* (hundreds per run), never inner loops.
//
// Enablement: GFA_TRACE=1 in the environment or set_trace_enabled(true)
// (wired to `gfa_tool --trace=<file>`). aggregate() folds the buffer into
// per-phase totals for bench reporters (BENCH_*.json per-phase columns).

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace gfa::obs {

/// Global on/off switch; one relaxed load, safe from any thread.
bool trace_enabled();
void set_trace_enabled(bool enabled);

struct TraceEvent {
  std::string name;
  const char* category;     // static string, e.g. "engine", "abstraction"
  std::uint64_t start_us;   // since process trace epoch
  std::uint64_t duration_us;
  std::uint32_t tid;        // small dense thread id
};

struct PhaseTotal {
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Appends one complete event (called by ~TraceSpan).
  void record(std::string name, const char* category, std::uint64_t start_us,
              std::uint64_t duration_us);

  /// Writes the whole buffer as a Chrome trace-event JSON document.
  void write_chrome_trace(std::ostream& out) const;

  /// Per-phase totals (by event name), for bench reporters.
  std::map<std::string, PhaseTotal> aggregate() const;

  std::vector<TraceEvent> events() const;
  void clear();

 private:
  Tracer() = default;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, std::uint32_t> tids_;
};

/// RAII phase scope. The span is recorded iff tracing was enabled when the
/// scope opened. Name may be dynamic (e.g. "verify:abstraction").
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, const char* category = "phase");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace gfa::obs
