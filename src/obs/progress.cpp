#include "obs/progress.h"

#include <atomic>
#include <mutex>
#include <utility>

namespace gfa::obs {

namespace {

std::atomic<bool> g_progress_active{false};
std::mutex g_sink_mutex;
std::function<void(const Progress&)>& sink_slot() {
  static std::function<void(const Progress&)> sink;
  return sink;
}

}  // namespace

bool progress_active() {
  return g_progress_active.load(std::memory_order_relaxed);
}

void set_progress_sink(std::function<void(const Progress&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_slot() = std::move(sink);
  g_progress_active.store(static_cast<bool>(sink_slot()),
                          std::memory_order_relaxed);
}

void report_progress(const Progress& p) {
  // Copy the callback out under the lock so a concurrent
  // set_progress_sink(nullptr) can't destroy it mid-call.
  std::function<void(const Progress&)> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = sink_slot();
  }
  if (sink) sink(p);
}

}  // namespace gfa::obs
