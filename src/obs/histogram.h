#pragma once
// Fixed-bucket log2 latency/size histogram for the metrics registry.
//
// Same discipline as Metric (metrics.h): recording is a handful of relaxed
// atomic adds with no locks, instrumentation sites go through GFA_HISTOGRAM
// which tests one relaxed bool before touching anything, and the registry
// reference behind the macro is a function-local static resolved once per
// call site. Concurrent record() calls from parallel_for workers therefore
// sum exactly — no sample is lost or double-counted — at the cost of the
// buckets, count, and sum not being mutually consistent at any single
// instant (each is individually exact once writers quiesce, which is when
// snapshots are taken).
//
// Buckets are powers of two: bucket b holds values in [2^(b-1), 2^b - 1]
// (bucket 0 holds exactly 0), i.e. bucket_of(v) = bit_width(v). 65 buckets
// cover the full uint64 range, so a histogram is ~1.5 KiB and needs no
// configuration — log2 resolution is plenty for the long-tailed latencies
// and merge sizes it records. percentile() reports the inclusive upper
// bound of the bucket containing the requested rank, so p50/p90/p99 are
// upper bounds tight to a factor of two.

#include <atomic>
#include <cstdint>

namespace gfa::obs {

class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// log2 bucket index: 0 for 0, otherwise bit_width(v) (1..64).
  static unsigned bucket_of(std::uint64_t v) {
    return v == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(v));
  }

  /// Inclusive upper bound of bucket `b` (what percentile() reports).
  static std::uint64_t bucket_upper(unsigned b) {
    return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(unsigned b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the sample of rank ceil(p * count),
  /// for p in (0, 1]; 0 when the histogram is empty. An upper bound on the
  /// true percentile, within 2x of it.
  std::uint64_t percentile(double p) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    const double exact = p * static_cast<double>(n);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact) ++rank;  // ceil
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      seen += bucket(b);
      if (seen >= rank) return bucket_upper(b);
    }
    return bucket_upper(kBuckets - 1);  // racing writers; report the tail
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace gfa::obs
