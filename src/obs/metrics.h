#pragma once
// Low-overhead process-wide metrics registry.
//
// The verification engines' internal dynamics — reduction steps, critical
// pairs, SAT conflicts, BDD nodes — are what the paper's scalability tables
// actually measure, so every hot path exports named counters here. Design
// constraints, in order:
//
//  1. Near-zero cost when disabled. Instrumentation sites go through the
//     GFA_COUNT / GFA_GAUGE_MAX macros, which first test one relaxed atomic
//     bool (metrics_enabled()); the registry lookup behind it is a
//     function-local static resolved once per call site.
//  2. Exactly-correct under concurrency. Counters are relaxed atomic adds, so
//     increments from parallel_for workers sum without locks; max-gauges use
//     a compare-exchange max loop.
//  3. Stable schema. Every domain metric is pre-registered (see metrics.cpp),
//     so a snapshot always carries the full name set — run reports and
//     BENCH_*.json trajectories keep their columns even on runs that never
//     touch an engine. DESIGN.md "Observability" documents each name.
//
// Enablement: GFA_METRICS=1 in the environment, or set_metrics_enabled(true)
// (the `gfa_tool --metrics` flag).
//
// Snapshots are plain name→value maps. For per-run deltas (engine run
// reports), take a snapshot before and after and call Metrics::delta():
// counters subtract; max-gauges report the "after" value (a process-lifetime
// peak — the per-run exact peaks stay in each engine's own stats).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace gfa::obs {

enum class MetricKind { kCounter, kGauge };

class Metric {
 public:
  explicit Metric(MetricKind kind) : kind_(kind) {}

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if larger (atomic max).
  void record_max(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  MetricKind kind() const { return kind_; }

 private:
  std::atomic<std::uint64_t> value_{0};
  MetricKind kind_;
};

/// Global on/off switch; one relaxed load, safe to call from any thread.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Samples resident-set size from /proc/self/statm, folds it into the
/// process-lifetime peak (always — the peak is tracked even with metrics
/// disabled, so crash reports carry it), raises the process.peak_rss_bytes
/// gauge when metrics are enabled, and returns the current RSS in bytes.
/// Returns 0 on platforms without /proc. Called at phase boundaries, not in
/// hot loops (one small read() + parse per call).
std::uint64_t sample_rss_bytes();

/// Largest RSS sample seen so far (bytes); 0 before the first sample.
std::uint64_t peak_rss_bytes();

using MetricsSnapshot = std::map<std::string, std::uint64_t>;

class Metrics {
 public:
  /// The process-wide registry. First use also honours GFA_METRICS=1.
  static Metrics& instance();

  /// Returns the named metric, creating it on first use. The reference stays
  /// valid for the process lifetime, so hot paths cache it in a static local.
  /// Requesting an existing name with a different kind keeps the original.
  Metric& counter(std::string_view name) { return get(name, MetricKind::kCounter); }
  Metric& gauge(std::string_view name) { return get(name, MetricKind::kGauge); }

  /// Returns the named histogram, creating it on first use. Same lifetime
  /// contract as counter()/gauge(): the reference is stable for the process,
  /// so GFA_HISTOGRAM caches it in a function-local static.
  Histogram& histogram(std::string_view name);

  /// All registered metrics (the pre-registered schema plus any ad-hoc names
  /// touched so far), name → current value. Histograms with at least one
  /// sample fold in as synthesized scalar keys — `<name>.count`, `<name>.p50`,
  /// `.p90`, `.p99` — so reports and `--metrics` need no separate path.
  MetricsSnapshot snapshot() const;

  /// Per-run view: counters report `after - before` (missing in `before`
  /// means 0); gauges report their `after` value. Synthesized histogram keys
  /// follow the same split: `.count` subtracts, the percentile keys report
  /// the current (process-lifetime) distribution, gauge-style.
  MetricsSnapshot delta(const MetricsSnapshot& before) const;

  /// Zeroes every metric and histogram (tests and bench warm-up isolation).
  void reset_all();

 private:
  Metrics();
  Metric& get(std::string_view name, MetricKind kind);
  void fold_histograms(MetricsSnapshot& out) const;

  mutable std::mutex mutex_;
  std::map<std::string, Metric, std::less<>> metrics_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace gfa::obs

/// Adds `n` to counter `name` iff metrics are enabled. `name` must be a
/// literal (or otherwise identical on every visit of this call site).
#define GFA_COUNT(name, n)                                                  \
  do {                                                                      \
    if (::gfa::obs::metrics_enabled()) {                                    \
      static ::gfa::obs::Metric& gfa_metric_ =                              \
          ::gfa::obs::Metrics::instance().counter(name);                    \
      gfa_metric_.add(static_cast<std::uint64_t>(n));                       \
    }                                                                       \
  } while (0)

/// Raises max-gauge `name` to `v` iff metrics are enabled.
#define GFA_GAUGE_MAX(name, v)                                              \
  do {                                                                      \
    if (::gfa::obs::metrics_enabled()) {                                    \
      static ::gfa::obs::Metric& gfa_metric_ =                              \
          ::gfa::obs::Metrics::instance().gauge(name);                      \
      gfa_metric_.record_max(static_cast<std::uint64_t>(v));                \
    }                                                                       \
  } while (0)

/// Records sample `v` into histogram `name` iff metrics are enabled. Same
/// one-branch-when-disabled shape as GFA_COUNT; when enabled the record is a
/// few relaxed atomic adds. IMPORTANT: `v` must be side-effect free — it is
/// not evaluated when metrics are off.
#define GFA_HISTOGRAM(name, v)                                              \
  do {                                                                      \
    if (::gfa::obs::metrics_enabled()) {                                    \
      static ::gfa::obs::Histogram& gfa_hist_ =                             \
          ::gfa::obs::Metrics::instance().histogram(name);                  \
      gfa_hist_.record(static_cast<std::uint64_t>(v));                      \
    }                                                                       \
  } while (0)
