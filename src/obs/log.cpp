#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace gfa::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mutex;

int level_from_env() {
  const char* env = std::getenv("GFA_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  const Result<LogLevel> parsed = parse_log_level(env);
  if (!parsed.ok()) {
    std::fprintf(stderr,
                 "GFA_LOG must be one of error|warn|info|debug, got '%s'\n",
                 env);
    std::exit(2);
  }
  return static_cast<int>(*parsed);
}

void ensure_env_applied() {
  static const bool applied = [] {
    g_level.store(level_from_env(), std::memory_order_relaxed);
    return true;
  }();
  (void)applied;
}

/// Seconds since the first log call, for the t= field.
double uptime_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

Result<LogLevel> parse_log_level(std::string_view text) {
  if (text == "error") return LogLevel::kError;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "info") return LogLevel::kInfo;
  if (text == "debug") return LogLevel::kDebug;
  return Status::invalid_argument("unknown log level '" + std::string(text) +
                                  "' (expected error|warn|info|debug)");
}

LogLevel log_level() {
  ensure_env_applied();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  ensure_env_applied();  // keep env parsing strict even when overridden
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) { return level <= log_level(); }

void log_message(LogLevel level, std::string_view component,
                 std::string_view msg) {
  // logfmt-style: quotes and backslashes inside msg escaped.
  std::string escaped;
  escaped.reserve(msg.size());
  for (char c : msg) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped.push_back(c);
  }
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "t=%.3f level=%s comp=%.*s msg=\"%s\"\n",
               uptime_seconds(), log_level_name(level),
               static_cast<int>(component.size()), component.data(),
               escaped.c_str());
}

}  // namespace gfa::obs
