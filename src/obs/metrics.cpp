#include "obs/metrics.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>

namespace gfa::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Process-lifetime RSS high-water mark, tracked unconditionally so crash
/// and worker reports carry it even when the metrics registry is off.
std::atomic<std::uint64_t> g_peak_rss_bytes{0};

/// Every domain metric the engines export, pre-registered so snapshots carry
/// a stable schema. Kept in sync with the DESIGN.md "Observability" table.
struct KnownMetric {
  const char* name;
  MetricKind kind;
};

constexpr KnownMetric kKnownMetrics[] = {
    // Gröbner reduction steps across every flow: one per gate-tail
    // substitution of the RATO backward-rewriting chain (abstraction,
    // ideal-membership) and one per division step inside normal_form.
    {"reduction_steps", MetricKind::kCounter},
    // normal_form (poly/mpoly.cpp)
    {"normal_form.calls", MetricKind::kCounter},
    {"normal_form.peak_terms", MetricKind::kGauge},
    // Buchberger (poly/groebner.cpp) — pairs_skipped counts product-criterion
    // prunes; pairs_reduced is the paper's §5 "one critical pair" claim.
    {"buchberger.pairs_generated", MetricKind::kCounter},
    {"buchberger.pairs_skipped", MetricKind::kCounter},
    {"buchberger.pairs_reduced", MetricKind::kCounter},
    {"buchberger.basis_added", MetricKind::kCounter},
    {"buchberger.max_poly_terms", MetricKind::kGauge},
    // Extractor (abstraction/extractor.cpp)
    {"extract.words", MetricKind::kCounter},
    {"extract.substitutions", MetricKind::kCounter},
    {"extract.peak_terms", MetricKind::kGauge},
    // Chunked substitution (abstraction/rewriter.cpp): shards dispatched and
    // terms XOR-merged back from shard-local maps.
    {"rewriter.shards", MetricKind::kCounter},
    {"rewriter.merge_terms", MetricKind::kCounter},
    // Canonical-form equivalence (abstraction/equivalence.cpp)
    {"equivalence.checks", MetricKind::kCounter},
    // Ideal-membership baseline (baselines/ideal_membership.cpp)
    {"ideal_membership.runs", MetricKind::kCounter},
    // CDCL SAT (baselines/sat/solver.cpp), flushed once per solve().
    {"sat.solves", MetricKind::kCounter},
    {"sat.decisions", MetricKind::kCounter},
    {"sat.propagations", MetricKind::kCounter},
    {"sat.conflicts", MetricKind::kCounter},
    {"sat.restarts", MetricKind::kCounter},
    {"sat.learned", MetricKind::kCounter},
    // BDD (baselines/bdd/bdd.cpp), flushed per netlist build / final check.
    {"bdd.nodes_allocated", MetricKind::kCounter},
    {"bdd.cache_lookups", MetricKind::kCounter},
    {"bdd.cache_hits", MetricKind::kCounter},
    // Fraig sweeping (baselines/aig/aig.cpp)
    {"fraig.merges", MetricKind::kCounter},
    {"fraig.sat_calls", MetricKind::kCounter},
    {"fraig.refinements", MetricKind::kCounter},
    // Thread pool (util/parallel_for.cpp) — worker vs caller chunk counts
    // give a crude utilization ratio.
    {"parallel.loops", MetricKind::kCounter},
    {"parallel.serial_loops", MetricKind::kCounter},
    {"parallel.items", MetricKind::kCounter},
    {"parallel.caller_chunks", MetricKind::kCounter},
    {"parallel.worker_chunks", MetricKind::kCounter},
    // Resident-set high-water mark sampled from /proc/self/statm at phase
    // boundaries (see sample_rss_bytes) — the "actual" memory column next to
    // the byte-accounted budget_peak in reports and BENCH JSON.
    {"process.peak_rss_bytes", MetricKind::kGauge},
    // Verification service (src/service/service.cpp): job admission and
    // outcome counters, plus the canonical-form cache's hit/miss/corruption
    // tallies (src/service/canon_cache.cpp).
    {"service.jobs_accepted", MetricKind::kCounter},
    {"service.jobs_completed", MetricKind::kCounter},
    {"service.jobs_rejected", MetricKind::kCounter},
    {"service.jobs_failed", MetricKind::kCounter},
    {"service.cache_hits", MetricKind::kCounter},
    {"service.cache_misses", MetricKind::kCounter},
    {"service.cache_corrupt_dropped", MetricKind::kCounter},
    {"service.cache_evictions", MetricKind::kCounter},
    // Verdict certification + poison-job quarantine (src/service/service.cpp):
    // failed equivalence cross-checks, per-fingerprint crash strikes,
    // fingerprints that tripped the strike limit, and jobs answered from
    // quarantine without forking a worker.
    {"service.certify_failed", MetricKind::kCounter},
    {"service.quarantined.strikes", MetricKind::kCounter},
    {"service.quarantined.tripped", MetricKind::kCounter},
    {"service.quarantined.fast_fail", MetricKind::kCounter},
};

/// Histograms pre-registered alongside the scalar schema. Each contributes
/// `<name>.count/.p50/.p90/.p99` keys to snapshots once it has samples.
constexpr const char* kKnownHistograms[] = {
    // Latency of one gate-tail substitution in the serial reduction chain
    // (microseconds; sampled, not exhaustive — see extractor.cpp).
    "rewriter.substitution_us",
    // Terms drained from one shard-local map at a chunked-substitution merge.
    "rewriter.merge_shard_terms",
    // Linear-probe chain length of sampled packed term-map lookups.
    "rewriter.probe_len",
    // Wall time of one isolated-worker attempt (milliseconds).
    "worker.attempt_wall_ms",
    // End-to-end wall time of one service job, queue wait included
    // (milliseconds).
    "service.job_wall_ms",
};

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t sample_rss_bytes() {
  // Field 2 of /proc/self/statm is resident pages. Raw read + hand parse:
  // this is also called from worker heartbeat paths where iostreams would be
  // disproportionate, and the file is a dozen bytes.
  char buf[128];
  const int fd = ::open("/proc/self/statm", O_RDONLY);
  if (fd < 0) return 0;
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  const char* p = buf;
  while (*p >= '0' && *p <= '9') ++p;  // skip field 1 (total program size)
  while (*p == ' ') ++p;
  std::uint64_t pages = 0;
  while (*p >= '0' && *p <= '9') pages = pages * 10 + (*p++ - '0');
  static const std::uint64_t kPage =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t rss = pages * kPage;
  std::uint64_t cur = g_peak_rss_bytes.load(std::memory_order_relaxed);
  while (cur < rss && !g_peak_rss_bytes.compare_exchange_weak(
                          cur, rss, std::memory_order_relaxed)) {
  }
  GFA_GAUGE_MAX("process.peak_rss_bytes", rss);
  return rss;
}

std::uint64_t peak_rss_bytes() {
  return g_peak_rss_bytes.load(std::memory_order_relaxed);
}

Metrics& Metrics::instance() {
  static Metrics metrics;
  return metrics;
}

Metrics::Metrics() {
  for (const KnownMetric& m : kKnownMetrics)
    metrics_.try_emplace(m.name, m.kind);
  for (const char* name : kKnownHistograms)
    histograms_.try_emplace(name);
  if (const char* env = std::getenv("GFA_METRICS")) {
    if (env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
      set_metrics_enabled(true);
  }
}

Metric& Metrics::get(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end())
    it = metrics_.try_emplace(std::string(name), kind).first;
  return it->second;
}

Histogram& Metrics::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.try_emplace(std::string(name)).first;
  return it->second;
}

void Metrics::fold_histograms(MetricsSnapshot& out) const {
  for (const auto& [name, hist] : histograms_) {
    if (hist.count() == 0) continue;  // keep empty histograms off reports
    out.emplace(name + ".count", hist.count());
    out.emplace(name + ".p50", hist.percentile(0.50));
    out.emplace(name + ".p90", hist.percentile(0.90));
    out.emplace(name + ".p99", hist.percentile(0.99));
  }
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, metric] : metrics_) out.emplace(name, metric.value());
  fold_histograms(out);
  return out;
}

MetricsSnapshot Metrics::delta(const MetricsSnapshot& before) const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, metric] : metrics_) {
    const std::uint64_t now = metric.value();
    if (metric.kind() == MetricKind::kGauge) {
      out.emplace(name, now);
      continue;
    }
    const auto it = before.find(name);
    const std::uint64_t base = it == before.end() ? 0 : it->second;
    out.emplace(name, now >= base ? now - base : 0);
  }
  fold_histograms(out);
  // Histogram .count keys subtract like counters; percentiles stay as folded
  // (current distribution — per-run percentile subtraction is meaningless).
  for (auto& [name, value] : out) {
    constexpr std::string_view kCount = ".count";
    if (name.size() > kCount.size() &&
        std::string_view(name).substr(name.size() - kCount.size()) == kCount) {
      const auto it = before.find(name);
      if (it != before.end()) value = value >= it->second ? value - it->second : 0;
    }
  }
  return out;
}

void Metrics::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : metrics_) metric.reset();
  for (auto& [name, hist] : histograms_) hist.reset();
}

}  // namespace gfa::obs
