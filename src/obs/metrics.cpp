#include "obs/metrics.h"

#include <cstdlib>

namespace gfa::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Every domain metric the engines export, pre-registered so snapshots carry
/// a stable schema. Kept in sync with the DESIGN.md "Observability" table.
struct KnownMetric {
  const char* name;
  MetricKind kind;
};

constexpr KnownMetric kKnownMetrics[] = {
    // Gröbner reduction steps across every flow: one per gate-tail
    // substitution of the RATO backward-rewriting chain (abstraction,
    // ideal-membership) and one per division step inside normal_form.
    {"reduction_steps", MetricKind::kCounter},
    // normal_form (poly/mpoly.cpp)
    {"normal_form.calls", MetricKind::kCounter},
    {"normal_form.peak_terms", MetricKind::kGauge},
    // Buchberger (poly/groebner.cpp) — pairs_skipped counts product-criterion
    // prunes; pairs_reduced is the paper's §5 "one critical pair" claim.
    {"buchberger.pairs_generated", MetricKind::kCounter},
    {"buchberger.pairs_skipped", MetricKind::kCounter},
    {"buchberger.pairs_reduced", MetricKind::kCounter},
    {"buchberger.basis_added", MetricKind::kCounter},
    {"buchberger.max_poly_terms", MetricKind::kGauge},
    // Extractor (abstraction/extractor.cpp)
    {"extract.words", MetricKind::kCounter},
    {"extract.substitutions", MetricKind::kCounter},
    {"extract.peak_terms", MetricKind::kGauge},
    // Chunked substitution (abstraction/rewriter.cpp): shards dispatched and
    // terms XOR-merged back from shard-local maps.
    {"rewriter.shards", MetricKind::kCounter},
    {"rewriter.merge_terms", MetricKind::kCounter},
    // Canonical-form equivalence (abstraction/equivalence.cpp)
    {"equivalence.checks", MetricKind::kCounter},
    // Ideal-membership baseline (baselines/ideal_membership.cpp)
    {"ideal_membership.runs", MetricKind::kCounter},
    // CDCL SAT (baselines/sat/solver.cpp), flushed once per solve().
    {"sat.solves", MetricKind::kCounter},
    {"sat.decisions", MetricKind::kCounter},
    {"sat.propagations", MetricKind::kCounter},
    {"sat.conflicts", MetricKind::kCounter},
    {"sat.restarts", MetricKind::kCounter},
    {"sat.learned", MetricKind::kCounter},
    // BDD (baselines/bdd/bdd.cpp), flushed per netlist build / final check.
    {"bdd.nodes_allocated", MetricKind::kCounter},
    {"bdd.cache_lookups", MetricKind::kCounter},
    {"bdd.cache_hits", MetricKind::kCounter},
    // Fraig sweeping (baselines/aig/aig.cpp)
    {"fraig.merges", MetricKind::kCounter},
    {"fraig.sat_calls", MetricKind::kCounter},
    {"fraig.refinements", MetricKind::kCounter},
    // Thread pool (util/parallel_for.cpp) — worker vs caller chunk counts
    // give a crude utilization ratio.
    {"parallel.loops", MetricKind::kCounter},
    {"parallel.serial_loops", MetricKind::kCounter},
    {"parallel.items", MetricKind::kCounter},
    {"parallel.caller_chunks", MetricKind::kCounter},
    {"parallel.worker_chunks", MetricKind::kCounter},
};

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Metrics& Metrics::instance() {
  static Metrics metrics;
  return metrics;
}

Metrics::Metrics() {
  for (const KnownMetric& m : kKnownMetrics)
    metrics_.try_emplace(m.name, m.kind);
  if (const char* env = std::getenv("GFA_METRICS")) {
    if (env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
      set_metrics_enabled(true);
  }
}

Metric& Metrics::get(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end())
    it = metrics_.try_emplace(std::string(name), kind).first;
  return it->second;
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, metric] : metrics_) out.emplace(name, metric.value());
  return out;
}

MetricsSnapshot Metrics::delta(const MetricsSnapshot& before) const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, metric] : metrics_) {
    const std::uint64_t now = metric.value();
    if (metric.kind() == MetricKind::kGauge) {
      out.emplace(name, now);
      continue;
    }
    const auto it = before.find(name);
    const std::uint64_t base = it == before.end() ? 0 : it->second;
    out.emplace(name, now >= base ? now - base : 0);
  }
  return out;
}

void Metrics::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : metrics_) metric.reset();
}

}  // namespace gfa::obs
