#pragma once
// Process-wide progress sink: the bridge between the extractor's reduction
// chain and whatever wants live progress (today: the isolated worker's
// heartbeat telemetry; tomorrow: the gfa_serve daemon's per-job status).
//
// Discipline mirrors metrics/tracing: progress_active() is one relaxed
// atomic load, and instrumentation sites test it before building a Progress
// record, so with no sink installed the cost is a single predictable branch.
// Reports happen at phase boundaries and checkpoint-cadence segment ends
// (thousands per run at most), never inner loops, so the mutex inside
// report_progress is uncontended noise.
//
// The sink callback may be invoked concurrently (extract_all_word_functions
// runs words on the pool) and must be thread-safe; the installer
// (worker/harness.cpp's child telemetry) serializes pipe writes behind its
// own mutex anyway.

#include <cstdint>
#include <functional>

namespace gfa::obs {

/// One progress observation from a long-running phase.
struct Progress {
  const char* phase = "";       // e.g. "reduction_chain", "case2_lift"
  std::uint64_t step = 0;       // units of `phase` completed (RATO gates)
  std::uint64_t total = 0;      // total units, 0 when unknown
  std::uint64_t terms = 0;      // live rewriter term count, 0 when n/a
  std::uint64_t budget_bytes = 0;  // accounted bytes in use, 0 when unbudgeted
};

/// True iff a sink is installed; one relaxed load.
bool progress_active();

/// Installs (or, with nullptr/empty fn, removes) the process-wide sink.
void set_progress_sink(std::function<void(const Progress&)> sink);

/// Delivers `p` to the sink, if any. Safe to call from any thread.
void report_progress(const Progress& p);

}  // namespace gfa::obs
