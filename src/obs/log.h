#pragma once
// Leveled structured logging for the library and tools.
//
// Replaces ad-hoc stderr prints: every message carries a level, a component
// tag, and a monotonic timestamp, in a grep-friendly logfmt line on stderr:
//
//   t=12.345 level=warn comp=engine msg="report file not writable" path=...
//
// Level resolution (first hit wins): set_log_level() (the `gfa_tool
// --log-level=<level>` flag), the GFA_LOG environment variable
// (error|warn|info|debug), default kWarn. A malformed GFA_LOG value is
// rejected with a diagnostic and exit(2) — the same strictness policy as
// GFA_THREADS and GFA_BENCH_MAX_K.
//
// The GFA_LOG_* macros evaluate their stream expression only when the level
// is enabled, so debug formatting is free in production runs.

#include <sstream>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gfa::obs {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

const char* log_level_name(LogLevel level);

/// "error" | "warn" | "info" | "debug" (case-sensitive); anything else is
/// kInvalidArgument.
Result<LogLevel> parse_log_level(std::string_view text);

/// Current threshold: messages at or below it are emitted.
LogLevel log_level();
void set_log_level(LogLevel level);

bool log_enabled(LogLevel level);

/// Emits one line to stderr (thread-safe). `msg` lands in msg="..." with
/// quotes escaped; `component` should be a short static tag ("engine",
/// "parallel_for", "bench").
void log_message(LogLevel level, std::string_view component,
                 std::string_view msg);

}  // namespace gfa::obs

#define GFA_LOG_AT(level, component, stream_expr)                        \
  do {                                                                   \
    if (::gfa::obs::log_enabled(level)) {                                \
      std::ostringstream gfa_log_oss_;                                   \
      gfa_log_oss_ << stream_expr;                                       \
      ::gfa::obs::log_message(level, component, gfa_log_oss_.str());     \
    }                                                                    \
  } while (0)

#define GFA_LOG_ERROR(component, stream_expr) \
  GFA_LOG_AT(::gfa::obs::LogLevel::kError, component, stream_expr)
#define GFA_LOG_WARN(component, stream_expr) \
  GFA_LOG_AT(::gfa::obs::LogLevel::kWarn, component, stream_expr)
#define GFA_LOG_INFO(component, stream_expr) \
  GFA_LOG_AT(::gfa::obs::LogLevel::kInfo, component, stream_expr)
#define GFA_LOG_DEBUG(component, stream_expr) \
  GFA_LOG_AT(::gfa::obs::LogLevel::kDebug, component, stream_expr)
