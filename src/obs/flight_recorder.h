#pragma once
// Crash flight recorder: a preallocated, signal-safe ring of the last ~256
// annotated events (phase transitions, checkpoint saves, budget high-water
// marks), dumped from a SIGSEGV/SIGABRT handler so every exit-71 worker
// report carries the event tail leading up to death.
//
// Everything is static and lock-free by construction:
//   * note() claims a slot with one fetch_add and fills fixed-size fields —
//     no allocation, no locks, safe from any thread (and, incidentally, from
//     signal handlers, though nothing notes from one today).
//   * The ring, the formatting scratch buffer, and the handler's output fd
//     are all preallocated statics, so the SIGSEGV path performs only
//     loads, integer formatting into the static buffer, and raw write()s —
//     every call async-signal-safe per POSIX.
//   * Event tags are fixed 23-char labels; the two u64 annotation slots
//     carry step counts / byte counts / whatever the tag defines.
//
// The dump is one standard length-prefixed pipe frame (worker/protocol.h)
// whose JSON the handler formats by hand — the parent's frame loop needs no
// special case to receive a crash dump vs. a live telemetry frame. After
// dumping, the handler restores SIG_DFL and re-raises, so the kernel still
// reports the original signal and classify_termination still says
// kWorkerCrashed.

#include <cstdint>
#include <string>
#include <vector>

namespace gfa::obs::flight {

inline constexpr std::size_t kRingSize = 256;
inline constexpr std::size_t kTagBytes = 24;  // 23 chars + NUL

struct Event {
  std::uint64_t seq = 0;   // global sequence number (1-based; 0 = empty slot)
  std::uint64_t t_us = 0;  // absolute monotonic-clock microseconds
  char tag[kTagBytes] = {};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Appends an event to the ring. Lock- and allocation-free; callable from
/// any thread. Tags longer than 23 chars are truncated.
void note(const char* tag, std::uint64_t a = 0, std::uint64_t b = 0);

/// The ring contents, oldest first. Not signal-safe (allocates); for tests
/// and the child's orderly shutdown paths.
std::vector<Event> tail();

/// Empties the ring (the forked child drops inherited parent events).
void clear();

/// Human-readable one-liner for report JSON: "t=<us> <tag> a=<a> b=<b>".
std::string format(const Event& e);

/// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump the ring as
/// one length-prefixed flight frame to `fd`, then restore SIG_DFL and
/// re-raise. Call once in the worker child, after clear().
void install_crash_handler(int fd);

/// Writes the ring to `fd` as the same length-prefixed flight frame the
/// crash handler emits. Async-signal-safe; also used by the child's
/// catch-all exception path just before _exit.
void dump_frame(int fd);

}  // namespace gfa::obs::flight
