#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>

#include "util/json_writer.h"

namespace gfa::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

bool init_from_env() {
  if (const char* env = std::getenv("GFA_TRACE")) {
    if (env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
      g_trace_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}

using Clock = std::chrono::steady_clock;

/// The process trace epoch — fixed at first use.
const Clock::time_point& trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Microseconds since the process trace epoch.
std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            trace_epoch())
          .count());
}

}  // namespace

std::uint64_t trace_epoch_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          trace_epoch().time_since_epoch())
          .count());
}

const char* intern_category(std::string_view category) {
  static std::mutex mutex;
  static std::set<std::string, std::less<>>* interned =
      new std::set<std::string, std::less<>>();  // leaked: lifetime = process
  std::lock_guard<std::mutex> lock(mutex);
  auto it = interned->find(category);
  if (it == interned->end()) it = interned->emplace(category).first;
  return it->c_str();
}

bool trace_enabled() {
  static const bool initialized = init_from_env();
  (void)initialized;
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record(std::string name, const char* category,
                    std::uint64_t start_us, std::uint64_t duration_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      tids_.try_emplace(std::this_thread::get_id(),
                        static_cast<std::uint32_t>(tids_.size()));
  events_.push_back(
      {std::move(name), category, start_us, duration_us, it->second, 0});
}

void Tracer::import_events(std::vector<TraceEvent> events) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (TraceEvent& e : events) events_.push_back(std::move(e));
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::vector<TraceEvent> events = this->events();
  const std::uint32_t self = static_cast<std::uint32_t>(::getpid());
  JsonWriter w(out);
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.category);
    w.member("ph", "X");
    w.member("ts", e.start_us);
    w.member("dur", e.duration_us);
    w.member("pid", e.pid != 0 ? e.pid : self);
    w.member("tid", e.tid);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

std::map<std::string, PhaseTotal> Tracer::aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, PhaseTotal> out;
  for (const TraceEvent& e : events_) {
    PhaseTotal& t = out[e.name];
    ++t.count;
    t.total_ms += static_cast<double>(e.duration_us) / 1000.0;
  }
  return out;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

TraceSpan::TraceSpan(std::string name, const char* category)
    : name_(std::move(name)), category_(category) {
  if (!trace_enabled()) return;
  active_ = true;
  start_us_ = now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t end = now_us();
  Tracer::instance().record(std::move(name_), category_, start_us_,
                            end - start_us_);
}

}  // namespace gfa::obs
