#pragma once
// A reduced ordered BDD package (the canonical-DAG baseline of paper §2).
//
// Classic Bryant architecture: strong canonical form through a unique table,
// recursive ITE with a computed table, no complement edges (clarity over
// constant factors — the baseline's point is the exponential node growth of
// multiplier functions, which no constant factor fixes).

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "circuit/netlist.h"
#include "util/exec_control.h"

namespace gfa::bdd {

using NodeRef = std::uint32_t;
inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

struct BddBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Manager {
 public:
  /// `node_limit` = 0 means unlimited; otherwise operations throw
  /// BddBudgetExceeded once the table grows past the limit (the benches'
  /// memory-explosion stand-in).
  explicit Manager(std::size_t node_limit = 0);

  /// Returns any bytes charged against the control's ResourceBudget.
  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Installs a deadline/cancellation source polled every few hundred node
  /// allocations; expiry unwinds via StatusError. Pass nullptr to detach.
  /// The Manager does not own `control`; it must outlive all operations.
  void set_exec_control(const ExecControl* control) { control_ = control; }

  /// The projection function of variable `index` (lower index = nearer root).
  NodeRef var(unsigned index);

  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);
  NodeRef bdd_not(NodeRef f) { return ite(f, kFalse, kTrue); }
  NodeRef bdd_and(NodeRef f, NodeRef g) { return ite(f, g, kFalse); }
  NodeRef bdd_or(NodeRef f, NodeRef g) { return ite(f, kTrue, g); }
  NodeRef bdd_xor(NodeRef f, NodeRef g) { return ite(f, bdd_not(g), g); }

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Computed-table (ITE memoization) statistics since construction.
  std::size_t cache_lookups() const { return cache_lookups_; }
  std::size_t cache_hits() const { return cache_hits_; }

  /// Nodes in the DAG rooted at f (terminals included).
  std::size_t count_nodes(NodeRef f) const;

  /// Evaluates under a variable assignment (indexed by variable index).
  bool eval(NodeRef f, const std::vector<bool>& assignment) const;

  /// A satisfying assignment of f (indexed by variable index, length
  /// `num_vars`; variables off the chosen path default to false). Requires
  /// f != kFalse — without complement edges every other node reaches kTrue.
  std::vector<bool> satisfying_assignment(NodeRef f, unsigned num_vars) const;

 private:
  struct Node {
    unsigned var;
    NodeRef lo, hi;
  };
  struct Key {
    unsigned var;
    NodeRef lo, hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = k.var;
      h = h * 1000003u ^ k.lo;
      h = h * 1000003u ^ k.hi;
      return h;
    }
  };
  struct IteKey {
    NodeRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::size_t x = k.f;
      x = x * 1000003u ^ k.g;
      x = x * 1000003u ^ k.h;
      return x;
    }
  };

  NodeRef make(unsigned var, NodeRef lo, NodeRef hi);
  unsigned top_var(NodeRef f) const;
  NodeRef cofactor(NodeRef f, unsigned var, bool positive) const;

  std::vector<Node> nodes_;
  std::unordered_map<Key, NodeRef, KeyHash> unique_;
  std::unordered_map<IteKey, NodeRef, IteKeyHash> computed_;
  std::size_t node_limit_;
  const ExecControl* control_ = nullptr;
  std::size_t allocations_ = 0;  // make() calls, for periodic control polls
  std::size_t charged_bytes_ = 0;  // owed back to the budget on destruction
  std::size_t cache_lookups_ = 0;
  std::size_t cache_hits_ = 0;
};

/// Builds the BDDs of every net (terminal-driven in topological order);
/// `input_vars[i]` is the BDD variable index of the i-th primary input.
/// Returns one NodeRef per net.
std::vector<NodeRef> build_netlist_bdds(Manager& manager, const Netlist& netlist,
                                        const std::vector<unsigned>& input_vars);

}  // namespace gfa::bdd
