#include "baselines/bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gfa::bdd {

namespace {
constexpr unsigned kTerminalVar = std::numeric_limits<unsigned>::max();
}

Manager::Manager(std::size_t node_limit) : node_limit_(node_limit) {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0: false terminal
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1: true terminal
}

Manager::~Manager() {
  if (ResourceBudget* b = budget_of(control_))
    b->release(BudgetSite::kBddNodes, charged_bytes_);
}

NodeRef Manager::make(unsigned var, NodeRef lo, NodeRef hi) {
  if ((++allocations_ & 255u) == 0) throw_if_stopped(control_);
  if (lo == hi) return lo;  // reduction rule
  const Key key{var, lo, hi};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (node_limit_ && nodes_.size() >= node_limit_)
    throw BddBudgetExceeded("BDD node budget exceeded");
  GFA_FAULT_POINT("oom:bdd.make");
  if (ResourceBudget* b = budget_of(control_)) {
    b->charge(BudgetSite::kBddNodes, kBddNodeBytes);
    charged_bytes_ += kBddNodeBytes;
  }
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

NodeRef Manager::var(unsigned index) { return make(index, kFalse, kTrue); }

unsigned Manager::top_var(NodeRef f) const { return nodes_[f].var; }

NodeRef Manager::cofactor(NodeRef f, unsigned v, bool positive) const {
  if (nodes_[f].var != v) return f;
  return positive ? nodes_[f].hi : nodes_[f].lo;
}

NodeRef Manager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  ++cache_lookups_;
  if (auto it = computed_.find(key); it != computed_.end()) {
    ++cache_hits_;
    return it->second;
  }

  const unsigned v =
      std::min({top_var(f), top_var(g), top_var(h)});
  const NodeRef lo =
      ite(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const NodeRef hi =
      ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const NodeRef result = make(v, lo, hi);
  if (ResourceBudget* b = budget_of(control_)) {
    b->charge(BudgetSite::kBddNodes, kBddCacheEntryBytes);
    charged_bytes_ += kBddCacheEntryBytes;
  }
  computed_.emplace(key, result);
  return result;
}

std::size_t Manager::count_nodes(NodeRef f) const {
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    const NodeRef n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second || n <= kTrue) continue;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  return seen.size();
}

bool Manager::eval(NodeRef f, const std::vector<bool>& assignment) const {
  while (f > kTrue) {
    const Node& n = nodes_[f];
    assert(n.var < assignment.size());
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::vector<bool> Manager::satisfying_assignment(NodeRef f,
                                                 unsigned num_vars) const {
  assert(f != kFalse && "kFalse has no satisfying assignment");
  std::vector<bool> assignment(num_vars, false);
  // Reduction guarantees lo != hi, so at least one branch of every internal
  // node avoids kFalse; following it must reach kTrue.
  while (f > kTrue) {
    const Node& n = nodes_[f];
    assert(n.var < num_vars);
    if (n.hi != kFalse) {
      assignment[n.var] = true;
      f = n.hi;
    } else {
      f = n.lo;
    }
  }
  assert(f == kTrue);
  return assignment;
}

std::vector<NodeRef> build_netlist_bdds(Manager& manager, const Netlist& netlist,
                                        const std::vector<unsigned>& input_vars) {
  const obs::TraceSpan span("bdd_build", "bdd");
  const std::size_t nodes_before = manager.num_nodes();
  const std::size_t lookups_before = manager.cache_lookups();
  const std::size_t hits_before = manager.cache_hits();
  assert(input_vars.size() == netlist.inputs().size());
  std::vector<NodeRef> value(netlist.num_nets(), kFalse);
  for (std::size_t i = 0; i < netlist.inputs().size(); ++i)
    value[netlist.inputs()[i]] = manager.var(input_vars[i]);

  for (NetId n : netlist.topological_order()) {
    const Netlist::Gate& g = netlist.gate(n);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        value[n] = kFalse;
        break;
      case GateType::kConst1:
        value[n] = kTrue;
        break;
      case GateType::kBuf:
        value[n] = value[g.fanins[0]];
        break;
      case GateType::kNot:
        value[n] = manager.bdd_not(value[g.fanins[0]]);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        NodeRef v = kTrue;
        for (NetId f : g.fanins) v = manager.bdd_and(v, value[f]);
        value[n] = g.type == GateType::kNand ? manager.bdd_not(v) : v;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        NodeRef v = kFalse;
        for (NetId f : g.fanins) v = manager.bdd_or(v, value[f]);
        value[n] = g.type == GateType::kNor ? manager.bdd_not(v) : v;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        NodeRef v = kFalse;
        for (NetId f : g.fanins) v = manager.bdd_xor(v, value[f]);
        value[n] = g.type == GateType::kXnor ? manager.bdd_not(v) : v;
        break;
      }
    }
  }
  GFA_COUNT("bdd.nodes_allocated", manager.num_nodes() - nodes_before);
  GFA_COUNT("bdd.cache_lookups", manager.cache_lookups() - lookups_before);
  GFA_COUNT("bdd.cache_hits", manager.cache_hits() - hits_before);
  return value;
}

}  // namespace gfa::bdd
