#include "baselines/aig/aig.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "abstraction/rato.h"
#include "baselines/sat/solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gfa::aig {

Aig::Aig() {
  fanin0_.push_back(kConst1);  // var 0: constant TRUE
  fanin1_.push_back(kConst1);
}

std::uint32_t Aig::add_input() {
  assert(fanin0_.size() == std::size_t{num_inputs_} + 1 &&
         "inputs must be created before AND nodes");
  fanin0_.push_back(kConst1);
  fanin1_.push_back(kConst1);
  return ++num_inputs_;
}

Lit Aig::land(Lit a, Lit b) {
  if (a > b) std::swap(a, b);
  if (a == kConst0 || b == kConst0 || a == neg(b)) return kConst0;
  if (a == kConst1) return b;
  if (a == b) return a;
  const std::uint64_t key = (std::uint64_t{a} << 32) | b;
  if (auto it = strash_.find(key); it != strash_.end())
    return make_lit(it->second, false);
  const std::uint32_t v = static_cast<std::uint32_t>(fanin0_.size());
  fanin0_.push_back(a);
  fanin1_.push_back(b);
  strash_.emplace(key, v);
  return make_lit(v, false);
}

Lit Aig::lxor(Lit a, Lit b) {
  return neg(land(neg(land(a, neg(b))), neg(land(neg(a), b))));
}

std::vector<Lit> Aig::import(const Netlist& netlist,
                             const std::vector<Lit>& input_lits) {
  assert(input_lits.size() == netlist.inputs().size());
  std::vector<Lit> lit(netlist.num_nets(), kConst0);
  for (std::size_t i = 0; i < netlist.inputs().size(); ++i)
    lit[netlist.inputs()[i]] = input_lits[i];

  for (NetId n : netlist.topological_order()) {
    const Netlist::Gate& g = netlist.gate(n);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        lit[n] = kConst0;
        break;
      case GateType::kConst1:
        lit[n] = kConst1;
        break;
      case GateType::kBuf:
        lit[n] = lit[g.fanins[0]];
        break;
      case GateType::kNot:
        lit[n] = neg(lit[g.fanins[0]]);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        Lit acc = kConst1;
        for (NetId f : g.fanins) acc = land(acc, lit[f]);
        lit[n] = g.type == GateType::kNand ? neg(acc) : acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        Lit acc = kConst0;
        for (NetId f : g.fanins) acc = lor(acc, lit[f]);
        lit[n] = g.type == GateType::kNor ? neg(acc) : acc;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        Lit acc = kConst0;
        for (NetId f : g.fanins) acc = lxor(acc, lit[f]);
        lit[n] = g.type == GateType::kXnor ? neg(acc) : acc;
        break;
      }
    }
  }
  return lit;
}

std::vector<std::uint64_t> Aig::simulate(
    const std::vector<std::uint64_t>& input_words) const {
  assert(input_words.size() == num_inputs_);
  std::vector<std::uint64_t> value(num_vars());
  value[0] = ~std::uint64_t{0};  // constant TRUE
  for (std::uint32_t i = 0; i < num_inputs_; ++i) value[i + 1] = input_words[i];
  auto lit_value = [&](Lit l) {
    return phase_of(l) ? ~value[var_of(l)] : value[var_of(l)];
  };
  for (std::uint32_t v = num_inputs_ + 1; v < num_vars(); ++v)
    value[v] = lit_value(fanin0_[v]) & lit_value(fanin1_[v]);
  return value;
}

namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Union-find over AIG literals: proven-equivalent nodes point at an earlier
/// representative literal.
class LitUnion {
 public:
  explicit LitUnion(std::uint32_t num_vars) : repr_(num_vars) {
    for (std::uint32_t v = 0; v < num_vars; ++v) repr_[v] = make_lit(v, false);
  }
  Lit resolve(Lit l) {
    const std::uint32_t v = var_of(l);
    if (var_of(repr_[v]) == v) return phase_of(l) ? neg(repr_[v]) : repr_[v];
    const Lit root = resolve(repr_[v]);
    repr_[v] = root;  // path compression
    return phase_of(l) ? neg(root) : root;
  }
  /// Merges var v into literal `target` (already resolved, var < v).
  void merge(std::uint32_t v, Lit target) { repr_[v] = target; }

 private:
  std::vector<Lit> repr_;
};

/// Tseitin-encodes the merged cones of the given root literals into a fresh
/// solver; returns the DIMACS literal for each root.
class ConeEncoder {
 public:
  ConeEncoder(const Aig& aig, LitUnion& uf, sat::Solver& solver)
      : aig_(aig), uf_(uf), solver_(solver), dimacs_(aig.num_vars(), 0) {}

  int encode(Lit root) {
    const Lit r = uf_.resolve(root);
    const int base = encode_var(var_of(r));
    return phase_of(r) ? -base : base;
  }

 private:
  int encode_var(std::uint32_t v) {
    if (dimacs_[v] != 0) return dimacs_[v];
    const int dv = ++next_var_;
    dimacs_[v] = dv;
    if (v == 0) {
      solver_.add_clause({dv});  // constant TRUE
    } else if (aig_.is_and(v)) {
      const int a = encode(aig_.fanin0(v));
      const int b = encode(aig_.fanin1(v));
      solver_.add_clause({-dv, a});
      solver_.add_clause({-dv, b});
      solver_.add_clause({dv, -a, -b});
    }
    // Inputs are free variables.
    return dv;
  }

 public:
  /// Maps an input variable to its DIMACS variable (0 if not in the cone).
  int input_dimacs(std::uint32_t input_var) const { return dimacs_[input_var]; }

 private:
  const Aig& aig_;
  LitUnion& uf_;
  sat::Solver& solver_;
  std::vector<int> dimacs_;
  int next_var_ = 0;
};

}  // namespace

FraigResult fraig_equivalence_check(const Netlist& c1, const Netlist& c2,
                                    const FraigOptions& options) {
  const obs::TraceSpan span("fraig_sweep", "fraig");
  FraigResult result;
  // Flush the sweep counters into the global metrics on every exit path
  // (there are several returns, plus StatusError unwinds on deadlines).
  struct Flush {
    const FraigResult* r;
    ~Flush() {
      GFA_COUNT("fraig.merges", r->merges);
      GFA_COUNT("fraig.sat_calls", r->sat_calls);
      GFA_COUNT("fraig.refinements", r->refinements);
    }
  } flush{&result};
  Aig aig;

  // Shared inputs, matched by input-word names (as in make_miter).
  const std::vector<const Word*> in1 = input_words(c1);
  std::vector<Lit> lits1(c1.inputs().size(), kConst0);
  std::vector<Lit> lits2(c2.inputs().size(), kConst0);
  auto input_pos = [](const Netlist& nl, NetId n) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      if (nl.inputs()[i] == n) return i;
    throw std::invalid_argument("word bit is not an input");
  };
  for (const Word* w : in1) {
    const Word* w2 = c2.find_word(w->name);
    if (w2 == nullptr || w2->bits.size() != w->bits.size())
      throw std::invalid_argument("input word mismatch");
    for (std::size_t i = 0; i < w->bits.size(); ++i) {
      const Lit l = make_lit(aig.add_input(), false);
      lits1[input_pos(c1, w->bits[i])] = l;
      lits2[input_pos(c2, w2->bits[i])] = l;
    }
  }
  const std::vector<Lit> net1 = aig.import(c1, lits1);
  const std::vector<Lit> net2 = aig.import(c2, lits2);
  const Word* z1 = output_word(c1);
  const Word* z2 = output_word(c2);
  if (z1 == nullptr || z2 == nullptr)
    throw std::invalid_argument("both circuits need a single output word");
  Lit miter = kConst0;
  for (std::size_t i = 0; i < z1->bits.size(); ++i)
    miter = aig.lor(miter, aig.lxor(net1[z1->bits[i]], net2[z2->bits[i]]));

  if (miter == kConst0) {  // structural hashing already closed it
    result.status = FraigResult::Status::kEquivalent;
    return result;
  }

  LitUnion uf(aig.num_vars());

  // Simulation state: `sims[w][v]` = word w of var v's signature.
  std::uint64_t rng = options.seed;
  std::vector<std::vector<std::uint64_t>> sims;
  auto add_random_word = [&]() {
    std::vector<std::uint64_t> inputs(aig.num_inputs());
    for (auto& w : inputs) w = splitmix(rng);
    sims.push_back(aig.simulate(inputs));
  };
  for (unsigned w = 0; w < options.sim_words; ++w) add_random_word();

  auto signature_key = [&](std::uint32_t v, bool* phase) {
    *phase = sims[0][v] & 1u;  // normalize so bit 0 is 0
    std::uint64_t h = 14695981039346656037ull;
    for (const auto& word : sims) {
      h ^= *phase ? ~word[v] : word[v];
      h *= 1099511628211ull;
    }
    return h;
  };

  // key -> (representative var, representative phase)
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, bool>> classes;
  std::vector<std::uint32_t> reps;
  auto rebuild_classes = [&]() {
    classes.clear();
    for (std::uint32_t r : reps) {
      bool phase = false;
      const std::uint64_t key = signature_key(r, &phase);
      classes.emplace(key, std::make_pair(r, phase));
    }
  };

  auto prove = [&](Lit a, Lit b, std::uint64_t budget) -> sat::Result {
    sat::Solver solver;
    ConeEncoder enc(aig, uf, solver);
    const int da = enc.encode(a);
    const int db = enc.encode(b);
    // Assert a != b.
    solver.add_clause({da, db});
    solver.add_clause({-da, -db});
    ++result.sat_calls;
    const sat::Result res = solver.solve(budget, options.control);
    if (res == sat::Result::kSat) {
      // Fold the counterexample into the simulation: lane 0 carries the
      // distinguishing pattern, the other 63 lanes are random variations.
      std::vector<std::uint64_t> inputs(aig.num_inputs());
      for (std::uint32_t i = 0; i < aig.num_inputs(); ++i) {
        const int dv = enc.input_dimacs(i + 1);
        const bool bit = dv != 0 && solver.model_value(dv);
        inputs[i] = (splitmix(rng) & ~std::uint64_t{1}) | (bit ? 1 : 0);
      }
      sims.push_back(aig.simulate(inputs));
      ++result.refinements;
      rebuild_classes();
    }
    return res;
  };

  // Sweep AND nodes in topological (index) order.
  for (std::uint32_t v = aig.num_inputs() + 1; v < aig.num_vars(); ++v) {
    if ((v & 255u) == 0) throw_if_stopped(options.control);
    if (var_of(uf.resolve(make_lit(v, false))) != v) continue;  // already merged
    bool phase_v = false;
    const std::uint64_t key = signature_key(v, &phase_v);
    auto it = classes.find(key);
    if (it == classes.end()) {
      classes.emplace(key, std::make_pair(v, phase_v));
      reps.push_back(v);
      continue;
    }
    const auto [r, phase_r] = it->second;
    // Candidate: lit(v) == lit(r) ^ (phase_v ^ phase_r).
    const Lit lv = make_lit(v, false);
    const Lit lr = make_lit(r, phase_v ^ phase_r);
    const sat::Result res = prove(lv, lr, options.per_query_conflicts);
    if (res == sat::Result::kUnsat) {
      uf.merge(v, uf.resolve(lr));
      ++result.merges;
    } else {
      // Refuted or unknown: v anchors its own (possibly re-keyed) class.
      bool phase2 = false;
      const std::uint64_t key2 = signature_key(v, &phase2);
      classes.emplace(key2, std::make_pair(v, phase2));
      reps.push_back(v);
    }
  }

  // Final query on the merged graph.
  const Lit m = uf.resolve(miter);
  if (m == kConst0) {
    result.status = FraigResult::Status::kEquivalent;
    return result;
  }
  if (m == kConst1) {
    result.status = FraigResult::Status::kNotEquivalent;
    result.counterexample.assign(aig.num_inputs(), false);
    return result;
  }
  sat::Solver solver;
  ConeEncoder enc(aig, uf, solver);
  const int dm = enc.encode(m);
  solver.add_clause({dm});
  ++result.sat_calls;
  const sat::Result res = solver.solve(options.final_conflicts, options.control);
  result.final_conflicts = solver.stats().conflicts;
  if (res == sat::Result::kUnsat) {
    result.status = FraigResult::Status::kEquivalent;
  } else if (res == sat::Result::kSat) {
    result.status = FraigResult::Status::kNotEquivalent;
    result.counterexample.resize(aig.num_inputs());
    for (std::uint32_t i = 0; i < aig.num_inputs(); ++i) {
      const int dv = enc.input_dimacs(i + 1);
      result.counterexample[i] = dv != 0 && solver.model_value(dv);
    }
  } else {
    result.status = FraigResult::Status::kUnknown;
  }
  return result;
}

}  // namespace gfa::aig
