#pragma once
// And-Inverter Graphs with structural hashing, plus fraig-style combinational
// equivalence checking — the faithful analogue of the paper's "[4] AIG-based
// reductions" baseline (Mishchenko et al.'s improvements to CEC, as in ABC).
//
// The CEC flow: build one AIG holding both circuits over shared inputs;
// random-simulate to group nodes into candidate-equivalence classes by
// signature; walk the graph in topological order proving candidates
// equivalent with a conflict-limited SAT query (merging them on success,
// refining the simulation with the counterexample on failure); finally ask
// SAT whether any miter output can differ, on the merged graph.
//
// The experiment this supports (paper §6): on structurally *similar* circuits
// fraiging discovers internal equivalences and the final query is easy; on
// Mastrovito-vs-Montgomery miters there is almost nothing to merge, the whole
// burden lands on one exponential SAT query, and the method dies by ~16 bits.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "circuit/netlist.h"
#include "util/exec_control.h"

namespace gfa::aig {

/// Literal: 2*var + phase (phase 1 = complemented). Var 0 is constant TRUE,
/// so lit 0 = const1 and lit 1 = const0.
using Lit = std::uint32_t;
inline constexpr Lit kConst1 = 0;
inline constexpr Lit kConst0 = 1;
inline Lit make_lit(std::uint32_t var, bool phase) { return 2 * var + (phase ? 1 : 0); }
inline Lit neg(Lit l) { return l ^ 1u; }
inline std::uint32_t var_of(Lit l) { return l >> 1; }
inline bool phase_of(Lit l) { return l & 1u; }

class Aig {
 public:
  Aig();

  /// Creates a primary input variable.
  std::uint32_t add_input();

  /// Structural-hashed AND with constant folding and the trivial identities
  /// (x·x = x, x·¬x = 0).
  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b) { return neg(land(neg(a), neg(b))); }
  Lit lxor(Lit a, Lit b);

  /// Imports a netlist; `input_lits[i]` drives the i-th primary input.
  /// Returns the literal of every net.
  std::vector<Lit> import(const Netlist& netlist, const std::vector<Lit>& input_lits);

  std::uint32_t num_vars() const { return static_cast<std::uint32_t>(fanin0_.size()); }
  std::uint32_t num_inputs() const { return num_inputs_; }
  bool is_input(std::uint32_t var) const { return var >= 1 && var <= num_inputs_; }
  bool is_and(std::uint32_t var) const { return var > num_inputs_; }
  Lit fanin0(std::uint32_t var) const { return fanin0_[var]; }
  Lit fanin1(std::uint32_t var) const { return fanin1_[var]; }

  /// 64-lane simulation of every variable; `input_words[i]` drives the i-th
  /// primary input (0-based). Returns one word per variable.
  std::vector<std::uint64_t> simulate(const std::vector<std::uint64_t>& input_words) const;

 private:
  // fanin0_[v], fanin1_[v] for AND vars; inputs/const use kConst1 dummies.
  std::vector<Lit> fanin0_, fanin1_;
  std::uint32_t num_inputs_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

struct FraigOptions {
  std::uint64_t per_query_conflicts = 2000;   // candidate-merge budget
  std::uint64_t final_conflicts = 0;          // 0 = unlimited final query
  unsigned sim_words = 4;                     // 256 random patterns initially
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  /// Deadline/cancellation, checkpointed per sweep candidate and inside
  /// every SAT query; expiry unwinds via StatusError.
  const ExecControl* control = nullptr;
};

struct FraigResult {
  enum class Status { kEquivalent, kNotEquivalent, kUnknown };
  Status status = Status::kUnknown;
  std::size_t merges = 0;          // internal equivalences proven
  std::size_t sat_calls = 0;
  std::size_t refinements = 0;     // counterexamples folded into simulation
  std::uint64_t final_conflicts = 0;
  /// Input assignment exposing the difference (when kNotEquivalent).
  std::vector<bool> counterexample;
};

/// Fraig-based CEC of two netlists with matching input words (as make_miter).
FraigResult fraig_equivalence_check(const Netlist& c1, const Netlist& c2,
                                    const FraigOptions& options = {});

}  // namespace gfa::aig
