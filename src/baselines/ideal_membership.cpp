#include "baselines/ideal_membership.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "abstraction/rato.h"
#include "abstraction/rewriter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gfa {

namespace {

/// Bit-blasts one word variable raised to exponent e: (Σ_i α^i·w_i)^e over
/// the multilinear engine. Squaring is Frobenius-linear modulo J_0, so the
/// square-and-multiply chain stays polynomial-sized for practical specs.
BitPoly word_power_bits(const Gf2k& field, const Word& word, const BigUint& e) {
  BitPoly lin(&field);
  for (std::size_t i = 0; i < word.bits.size(); ++i)
    lin.add_term(BitMono{word.bits[i]},
                 field.alpha_pow(static_cast<std::uint64_t>(i)));
  BitPoly result = BitPoly::constant(&field, field.one());
  for (int i = e.bit_length(); i >= 0; --i) {
    result = result * result;  // cross terms cancel in char 2
    if (e.bit(static_cast<unsigned>(i))) result = result * lin;
  }
  return result;
}

}  // namespace

IdealMembershipResult verify_by_ideal_membership(
    const Netlist& circuit, const Gf2k& field,
    const std::function<MPoly(const Gf2k* field, VarPool& pool)>& spec_builder,
    const IdealMembershipOptions& options) {
  const obs::TraceSpan span("ideal_membership", "baseline");
  GFA_COUNT("ideal_membership.runs", 1);
  const Word* out_word = output_word(circuit);
  if (out_word == nullptr) throw std::invalid_argument("no output word declared");

  VarPool pool;
  std::unordered_map<VarId, const Word*> word_of_var;
  for (const Word& w : circuit.words()) {
    const VarId v = pool.intern(w.name, VarKind::kWord);
    word_of_var.emplace(v, &w);
  }
  const MPoly g = spec_builder(&field, pool);

  std::vector<bool> substitutable(circuit.num_nets());
  for (NetId n = 0; n < circuit.num_nets(); ++n)
    substitutable[n] = circuit.gate(n).type != GateType::kInput;

  IdealMembershipResult res;
  BackwardRewriter rw(field, std::move(substitutable), options.max_terms,
                      options.control);

  // Miter polynomial f : Z + G(A, B, …), bit-blasted on both sides.
  for (std::size_t j = 0; j < out_word->bits.size(); ++j)
    rw.add(BitMono{out_word->bits[j]},
           field.alpha_pow(static_cast<std::uint64_t>(j)));
  for (const auto& [mono, coeff] : g.terms()) {
    throw_if_stopped(options.control);
    BitPoly expanded = BitPoly::constant(&field, coeff);
    for (const auto& [v, e] : mono.factors()) {
      auto it = word_of_var.find(v);
      if (it == word_of_var.end())
        throw std::invalid_argument("spec mentions a non-word variable");
      expanded = expanded * word_power_bits(field, *it->second, e);
    }
    rw.add(expanded);
  }
  res.peak_terms = rw.num_terms();

  // Division chain: substitute every gate tail in RATO order.
  {
    const obs::TraceSpan chain_span("reduction_chain", "baseline");
    for (NetId n : rato_net_order(circuit)) {
      if (circuit.gate(n).type == GateType::kInput) continue;
      throw_if_stopped(options.control);
      rw.substitute(n, gate_tail_bitpoly(field, circuit.gate(n)));
      ++res.substitutions;
      res.peak_terms = std::max(res.peak_terms, rw.num_terms());
    }
  }
  GFA_COUNT("reduction_steps", res.substitutions);

  res.residual_terms = rw.num_terms();
  res.is_member = rw.terms().empty();
  return res;
}

IdealMembershipResult verify_multiplier_by_ideal_membership(
    const Netlist& circuit, const Gf2k& field,
    const IdealMembershipOptions& options) {
  return verify_by_ideal_membership(
      circuit, field,
      [](const Gf2k* f, VarPool& pool) {
        return MPoly::term(
            f, f->one(),
            Monomial::from_pairs(
                {{pool.id("A"), BigUint(1)}, {pool.id("B"), BigUint(1)}}));
      },
      options);
}

}  // namespace gfa
