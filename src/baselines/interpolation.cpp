#include "baselines/interpolation.h"

#include <cassert>
#include <vector>

namespace gfa {

namespace {

using Dense = std::vector<Gf2k::Elem>;  // coefficient of X^i at index i

/// The indicator polynomial 1 + (X + a)^{q-1}, dense of degree q-1.
Dense indicator(const Gf2k& field, const Gf2k::Elem& a, std::size_t q) {
  Dense p{field.one()};  // running (X + a)^t
  p.reserve(q);
  for (std::size_t t = 1; t < q; ++t) {
    // p *= (X + a)
    Dense next(p.size() + 1);
    for (std::size_t i = 0; i < p.size(); ++i) {
      next[i + 1] += p[i];
      if (!a.is_zero()) next[i] += field.mul(p[i], a);
    }
    p = std::move(next);
  }
  p.resize(q);
  p[0] += field.one();  // 1 + (X+a)^{q-1}
  return p;
}

}  // namespace

std::vector<Gf2k::Elem> all_field_elements(const Gf2k& field) {
  assert(field.k() <= 20 && "field too large to enumerate");
  const std::size_t q = std::size_t{1} << field.k();
  std::vector<Gf2k::Elem> out;
  out.reserve(q);
  for (std::size_t bits = 0; bits < q; ++bits)
    out.push_back(field.from_bits(bits));
  return out;
}

MPoly interpolate_univariate(
    const Gf2k& field, VarId x,
    const std::function<Gf2k::Elem(const Gf2k::Elem&)>& f) {
  const std::vector<Gf2k::Elem> elems = all_field_elements(field);
  const std::size_t q = elems.size();
  Dense acc(q);
  for (const Gf2k::Elem& a : elems) {
    const Gf2k::Elem fa = f(a);
    if (fa.is_zero()) continue;
    const Dense ind = indicator(field, a, q);
    for (std::size_t i = 0; i < q; ++i)
      if (!ind[i].is_zero()) acc[i] += field.mul(fa, ind[i]);
  }
  MPoly out(&field);
  for (std::size_t i = 0; i < q; ++i)
    out.add_term(Monomial(x, BigUint(i)), acc[i]);
  return out;
}

MPoly interpolate_bivariate(
    const Gf2k& field, VarId x, VarId y,
    const std::function<Gf2k::Elem(const Gf2k::Elem&, const Gf2k::Elem&)>& f) {
  const std::vector<Gf2k::Elem> elems = all_field_elements(field);
  const std::size_t q = elems.size();
  std::vector<Dense> ind;
  ind.reserve(q);
  for (const Gf2k::Elem& a : elems) ind.push_back(indicator(field, a, q));

  // acc[i][j] = coefficient of X^i·Y^j.
  std::vector<Dense> acc(q, Dense(q));
  for (std::size_t ai = 0; ai < q; ++ai) {
    for (std::size_t bi = 0; bi < q; ++bi) {
      const Gf2k::Elem v = f(elems[ai], elems[bi]);
      if (v.is_zero()) continue;
      for (std::size_t i = 0; i < q; ++i) {
        if (ind[ai][i].is_zero()) continue;
        const Gf2k::Elem vi = field.mul(v, ind[ai][i]);
        for (std::size_t j = 0; j < q; ++j)
          if (!ind[bi][j].is_zero()) acc[i][j] += field.mul(vi, ind[bi][j]);
      }
    }
  }
  MPoly out(&field);
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < q; ++j)
      out.add_term(Monomial::from_pairs({{x, BigUint(i)}, {y, BigUint(j)}}),
                   acc[i][j]);
  return out;
}

}  // namespace gfa
