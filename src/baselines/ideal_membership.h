#pragma once
// The Lv–Kalla–Enescu [5] verification baseline: ideal-membership testing.
//
// Unlike the abstraction approach, this method must be *given* the
// specification polynomial F. Verification asks whether the miter polynomial
// f : Z + F(A, B, …) belongs to J + J_0; by the Strong Nullstellensatz this
// holds iff the circuit implements Z = F. The test is a chain of divisions of
// f modulo the circuit polynomials under RATO — realized here, like the
// extractor, as backward substitution, but starting from *both* sides: the
// circuit's output combination and the bit-blasted spec. Membership holds iff
// the final remainder is identically zero.
//
// This is the "complexity moved entirely into polynomial division" method the
// paper contrasts with (its Table I/II discussion: feasible to 163 bits).

#include <functional>

#include "circuit/netlist.h"
#include "poly/mpoly.h"
#include "util/exec_control.h"

namespace gfa {

struct IdealMembershipOptions {
  /// Abort when the intermediate polynomial exceeds this many terms
  /// (0 = unlimited). Tripping raises RewriteBudgetExceeded.
  std::size_t max_terms = 0;
  /// Deadline/cancellation, checkpointed per gate substitution in the
  /// division chain; expiry unwinds via StatusError.
  const ExecControl* control = nullptr;
};

struct IdealMembershipResult {
  bool is_member = false;       // true => circuit implements the spec
  std::size_t substitutions = 0;
  std::size_t peak_terms = 0;
  std::size_t residual_terms = 0;  // non-zero on failure
};

/// Verifies `circuit` against the spec polynomial G (so spec is Z = G). The
/// builder receives a pool pre-loaded with the circuit's word variables (by
/// word name, kind kWord) and returns G over those variables. Word-variable
/// exponents in G must fit in 64 bits (true of any practical spec).
IdealMembershipResult verify_by_ideal_membership(
    const Netlist& circuit, const Gf2k& field,
    const std::function<MPoly(const Gf2k* field, VarPool& pool)>& spec_builder,
    const IdealMembershipOptions& options = {});

/// Convenience: the multiplication spec G = A·B.
IdealMembershipResult verify_multiplier_by_ideal_membership(
    const Netlist& circuit, const Gf2k& field,
    const IdealMembershipOptions& options = {});

}  // namespace gfa
