#include "baselines/miter.h"

#include <cassert>
#include <stdexcept>
#include <string>

#include "abstraction/rato.h"
#include "circuit/montgomery.h"

namespace gfa {

Netlist make_miter(const Netlist& c1, const Netlist& c2) {
  const std::vector<const Word*> in1 = input_words(c1);
  const Word* out1 = output_word(c1);
  const Word* out2 = output_word(c2);
  if (out1 == nullptr || out2 == nullptr)
    throw std::invalid_argument("both circuits need an output word");
  if (out1->bits.size() != out2->bits.size())
    throw std::invalid_argument("output widths differ");

  Netlist miter("miter_" + c1.name() + "_" + c2.name());
  std::vector<std::pair<std::string, std::vector<NetId>>> bindings;
  for (const Word* w : in1) {
    const Word* w2 = c2.find_word(w->name);
    if (w2 == nullptr || w2->bits.size() != w->bits.size())
      throw std::invalid_argument("input word '" + w->name + "' mismatch");
    std::vector<NetId> bits;
    bits.reserve(w->bits.size());
    for (std::size_t i = 0; i < w->bits.size(); ++i)
      bits.push_back(miter.add_input(w->name + "_" + std::to_string(i)));
    miter.declare_word(w->name, bits);
    bindings.emplace_back(w->name, std::move(bits));
  }

  const std::vector<NetId> z1 =
      instantiate_block(miter, c1, "s_", bindings, out1->name);
  const std::vector<NetId> z2 =
      instantiate_block(miter, c2, "i_", bindings, out2->name);

  std::vector<NetId> diffs;
  diffs.reserve(z1.size());
  for (std::size_t i = 0; i < z1.size(); ++i)
    diffs.push_back(miter.add_gate(GateType::kXor, {z1[i], z2[i]},
                                   "diff" + std::to_string(i)));
  while (diffs.size() > 1) {
    std::vector<NetId> next;
    next.reserve((diffs.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < diffs.size(); i += 2)
      next.push_back(miter.add_gate(GateType::kOr, {diffs[i], diffs[i + 1]}));
    if (diffs.size() % 2) next.push_back(diffs.back());
    diffs = std::move(next);
  }
  const NetId out = diffs.size() == 1
                        ? miter.add_gate(GateType::kBuf, {diffs[0]}, "miter")
                        : miter.add_const(false, "miter");
  miter.mark_output(out);
  return miter;
}

Cnf tseitin_encode(const Netlist& netlist, NetId assert_net) {
  Cnf cnf;
  cnf.num_vars = static_cast<int>(netlist.num_nets());
  auto var = [](NetId n) { return static_cast<int>(n) + 1; };

  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Netlist::Gate& g = netlist.gate(n);
    const int z = var(n);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        cnf.clauses.push_back({-z});
        break;
      case GateType::kConst1:
        cnf.clauses.push_back({z});
        break;
      case GateType::kBuf:
      case GateType::kNot: {
        const int y = g.type == GateType::kBuf ? var(g.fanins[0])
                                               : -var(g.fanins[0]);
        cnf.clauses.push_back({-z, y});
        cnf.clauses.push_back({z, -y});
        break;
      }
      case GateType::kAnd:
      case GateType::kNand: {
        const int t = g.type == GateType::kAnd ? z : -z;
        std::vector<int> big{t};
        for (NetId f : g.fanins) {
          cnf.clauses.push_back({-t, var(f)});
          big.push_back(-var(f));
        }
        cnf.clauses.push_back(std::move(big));
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        const int t = g.type == GateType::kOr ? z : -z;
        std::vector<int> big{-t};
        for (NetId f : g.fanins) {
          cnf.clauses.push_back({t, -var(f)});
          big.push_back(var(f));
        }
        cnf.clauses.push_back(std::move(big));
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // z = y1 ⊕ y2 ⊕ … encoded pairwise through helper variables.
        int acc = 0;  // 0 = "constant false so far"
        bool invert = g.type == GateType::kXnor;
        for (std::size_t fi = 0; fi < g.fanins.size(); ++fi) {
          const int y = var(g.fanins[fi]);
          if (acc == 0) {
            acc = y;
            continue;
          }
          int fresh;
          const bool last = fi + 1 == g.fanins.size();
          if (last) {
            fresh = invert ? -z : z;
          } else {
            fresh = ++cnf.num_vars;
          }
          // fresh = acc ⊕ y
          cnf.clauses.push_back({-fresh, acc, y});
          cnf.clauses.push_back({-fresh, -acc, -y});
          cnf.clauses.push_back({fresh, -acc, y});
          cnf.clauses.push_back({fresh, acc, -y});
          acc = fresh;
        }
        if (acc == 0) {
          cnf.clauses.push_back({invert ? z : -z});  // empty XOR = 0
        } else if (g.fanins.size() == 1) {
          const int t = invert ? -z : z;
          cnf.clauses.push_back({-t, acc});
          cnf.clauses.push_back({t, -acc});
        }
        break;
      }
    }
  }
  if (assert_net != kNoNet) cnf.clauses.push_back({var(assert_net)});
  return cnf;
}

}  // namespace gfa
