#pragma once
// A compact CDCL SAT solver (the circuit-SAT equivalence baseline).
//
// Standard architecture: two-watched-literal propagation, first-UIP conflict
// analysis with clause learning and recursive-free minimization, VSIDS
// activity with a decision heap, phase saving, geometric restarts. The point
// of this baseline is behavioural, not competitive: resolution-based solvers
// hit an exponential wall on structurally dissimilar multiplier miters, which
// is the paper's motivation for word-level abstraction.

#include <cstdint>
#include <vector>

#include "util/exec_control.h"

namespace gfa::sat {

enum class Result { kSat, kUnsat, kUnknown };

struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;
};

class Solver {
 public:
  /// Adds a clause of DIMACS literals (±var, vars >= 1). Empty clause makes
  /// the instance trivially unsat. Duplicate and tautological literals are
  /// normalized away.
  void add_clause(std::vector<int> lits);

  /// Solves; `conflict_limit` = 0 means no limit, otherwise returns kUnknown
  /// once exceeded (the benches' 24-hour-timeout stand-in). `control` is
  /// polled every few hundred search-loop iterations; expiry unwinds via
  /// StatusError (kUnknown is reserved for the conflict budget).
  Result solve(std::uint64_t conflict_limit = 0,
               const ExecControl* control = nullptr);

  /// Value of a variable in the model (valid after kSat).
  bool model_value(int var) const;

  const SolverStats& stats() const { return stats_; }

 private:
  // Literal encoding: lit = 2*var + (negative ? 1 : 0), vars 0-based inside.
  using L = std::uint32_t;
  static L encode(int dimacs) {
    const std::uint32_t v = static_cast<std::uint32_t>(dimacs > 0 ? dimacs : -dimacs) - 1;
    return (v << 1) | (dimacs < 0 ? 1u : 0u);
  }
  static L neg(L l) { return l ^ 1u; }
  static std::uint32_t var_of(L l) { return l >> 1; }

  struct Clause {
    std::vector<L> lits;
    bool learned = false;
  };
  struct Watcher {
    std::uint32_t clause;
    L blocker;
  };

  void ensure_var(std::uint32_t v);
  bool value_is_true(L l) const;
  bool value_is_false(L l) const;
  bool is_unassigned(L l) const;
  void enqueue(L l, std::int32_t reason);
  std::int32_t propagate();  // returns conflicting clause index or -1
  void analyze(std::int32_t conflict, std::vector<L>* learned_out,
               std::uint32_t* backtrack_level);
  void backtrack(std::uint32_t level);
  void attach(std::uint32_t ci);
  L pick_branch();
  void bump(std::uint32_t v);
  void decay() { var_inc_ /= 0.95; }
  void rescale();
  // Decision heap (max-heap on activity).
  void heap_insert(std::uint32_t v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  std::uint32_t heap_pop();

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<std::int8_t> assign_;            // per var: 0 unset, 1 true, -1 false
  std::vector<std::uint32_t> level_;           // per var
  std::vector<std::int32_t> reason_;           // per var: clause index or -1
  std::vector<L> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<std::uint32_t> heap_;      // binary max-heap of vars
  std::vector<std::int32_t> heap_pos_;   // var -> heap index, -1 if absent
  std::vector<std::int8_t> phase_;       // saved phase per var
  std::vector<std::uint8_t> seen_;       // scratch for analyze
  bool unsat_ = false;
  SolverStats stats_;
};

}  // namespace gfa::sat
