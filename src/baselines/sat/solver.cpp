#include "baselines/sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gfa::sat {

void Solver::ensure_var(std::uint32_t v) {
  if (v < assign_.size()) return;
  const std::uint32_t n = v + 1;
  assign_.resize(n, 0);
  level_.resize(n, 0);
  reason_.resize(n, -1);
  activity_.resize(n, 0.0);
  phase_.resize(n, -1);  // default polarity: false
  seen_.resize(n, 0);
  heap_pos_.resize(n, -1);
  watches_.resize(2 * n);
  for (std::uint32_t w = static_cast<std::uint32_t>(heap_.size()); w < n; ++w)
    heap_insert(w);
}

bool Solver::value_is_true(L l) const {
  const std::int8_t a = assign_[var_of(l)];
  return a != 0 && (a > 0) == ((l & 1u) == 0);
}

bool Solver::value_is_false(L l) const {
  const std::int8_t a = assign_[var_of(l)];
  return a != 0 && (a > 0) == ((l & 1u) != 0);
}

bool Solver::is_unassigned(L l) const { return assign_[var_of(l)] == 0; }

void Solver::add_clause(std::vector<int> lits) {
  if (unsat_) return;
  std::sort(lits.begin(), lits.end(), [](int a, int b) {
    return std::abs(a) != std::abs(b) ? std::abs(a) < std::abs(b) : a < b;
  });
  std::vector<L> c;
  c.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i > 0 && lits[i] == lits[i - 1]) continue;            // duplicate
    if (i > 0 && lits[i] == -lits[i - 1]) return;             // tautology
    ensure_var(static_cast<std::uint32_t>(std::abs(lits[i])) - 1);
    c.push_back(encode(lits[i]));
  }
  if (c.empty()) {
    unsat_ = true;
    return;
  }
  if (c.size() == 1) {
    // Root-level unit; enqueue immediately (conflicts surface in solve()).
    if (value_is_false(c[0])) {
      unsat_ = true;
    } else if (is_unassigned(c[0])) {
      enqueue(c[0], -1);
    }
    return;
  }
  const std::uint32_t ci = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back(Clause{std::move(c), false});
  attach(ci);
}

void Solver::attach(std::uint32_t ci) {
  const Clause& c = clauses_[ci];
  watches_[neg(c.lits[0])].push_back({ci, c.lits[1]});
  watches_[neg(c.lits[1])].push_back({ci, c.lits[0]});
}

void Solver::enqueue(L l, std::int32_t reason) {
  const std::uint32_t v = var_of(l);
  assert(assign_[v] == 0);
  assign_[v] = (l & 1u) ? -1 : 1;
  level_[v] = static_cast<std::uint32_t>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

std::int32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const L l = trail_[qhead_++];
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[l];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      const Watcher w = ws[wi];
      if (value_is_true(w.blocker)) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Normalize so lits[0] is the other watched literal.
      const L falsified = neg(l);
      if (c.lits[0] == falsified) std::swap(c.lits[0], c.lits[1]);
      if (value_is_true(c.lits[0])) {
        ws[keep++] = {w.clause, c.lits[0]};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t i = 2; i < c.lits.size(); ++i) {
        if (!value_is_false(c.lits[i])) {
          std::swap(c.lits[1], c.lits[i]);
          watches_[neg(c.lits[1])].push_back({w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = w;
      if (value_is_false(c.lits[0])) {
        // Conflict: keep the remaining watchers, then report.
        for (std::size_t rest = wi + 1; rest < ws.size(); ++rest)
          ws[keep++] = ws[rest];
        ws.resize(keep);
        qhead_ = trail_.size();
        return static_cast<std::int32_t>(w.clause);
      }
      enqueue(c.lits[0], static_cast<std::int32_t>(w.clause));
    }
    ws.resize(keep);
  }
  return -1;
}

void Solver::bump(std::uint32_t v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) rescale();
  if (heap_pos_[v] >= 0) heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
}

void Solver::rescale() {
  for (double& a : activity_) a *= 1e-100;
  var_inc_ *= 1e-100;
}

void Solver::analyze(std::int32_t conflict, std::vector<L>* learned_out,
                     std::uint32_t* backtrack_level) {
  learned_out->clear();
  learned_out->push_back(0);  // slot for the asserting literal
  const std::uint32_t current_level =
      static_cast<std::uint32_t>(trail_lim_.size());
  std::size_t index = trail_.size();
  std::uint32_t counter = 0;
  L p = UINT32_MAX;
  std::int32_t reason = conflict;

  for (;;) {
    assert(reason >= 0);
    const Clause& c = clauses_[static_cast<std::uint32_t>(reason)];
    for (const L q : c.lits) {
      if (p != UINT32_MAX && q == p) continue;
      const std::uint32_t v = var_of(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      bump(v);
      if (level_[v] == current_level) {
        ++counter;
      } else {
        learned_out->push_back(q);
      }
    }
    // Walk back the trail to the next marked literal.
    while (!seen_[var_of(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    seen_[var_of(p)] = 0;
    if (--counter == 0) break;
    reason = reason_[var_of(p)];
  }
  (*learned_out)[0] = neg(p);

  // Cheap clause minimization: drop literals whose reason clause is fully
  // subsumed by the learned clause's marked set.
  std::vector<L>& out = *learned_out;
  std::vector<std::uint32_t> to_clear;
  to_clear.reserve(out.size());
  for (std::size_t i = 1; i < out.size(); ++i) to_clear.push_back(var_of(out[i]));
  std::size_t kept = 1;
  for (std::size_t i = 1; i < out.size(); ++i) {
    const std::uint32_t v = var_of(out[i]);
    const std::int32_t r = reason_[v];
    bool redundant = r >= 0;
    if (redundant) {
      for (const L q : clauses_[static_cast<std::uint32_t>(r)].lits) {
        const std::uint32_t qv = var_of(q);
        if (qv == v) continue;
        if (!seen_[qv] && level_[qv] != 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) out[kept++] = out[i];
  }
  out.resize(kept);

  // Backtrack level = second-highest level in the clause.
  *backtrack_level = 0;
  if (out.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out.size(); ++i)
      if (level_[var_of(out[i])] > level_[var_of(out[max_i])]) max_i = i;
    std::swap(out[1], out[max_i]);
    *backtrack_level = level_[var_of(out[1])];
  }
  for (std::uint32_t v : to_clear) seen_[v] = 0;
}

void Solver::backtrack(std::uint32_t target) {
  if (trail_lim_.size() <= target) return;
  const std::size_t bound = trail_lim_[target];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const std::uint32_t v = var_of(trail_[i]);
    phase_[v] = assign_[v];
    assign_[v] = 0;
    reason_[v] = -1;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target);
  qhead_ = bound;
}

void Solver::heap_insert(std::uint32_t v) {
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  const std::uint32_t v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const std::uint32_t v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

std::uint32_t Solver::heap_pop() {
  const std::uint32_t top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

Solver::L Solver::pick_branch() {
  while (!heap_.empty()) {
    const std::uint32_t v = heap_pop();
    if (assign_[v] == 0)
      return (v << 1) | (phase_[v] < 0 ? 1u : 0u);
  }
  return UINT32_MAX;
}

Result Solver::solve(std::uint64_t conflict_limit, const ExecControl* control) {
  const obs::TraceSpan span("sat_solve", "sat");
  // Flush the per-solve stats delta into the global metrics on every exit
  // path (stats_ itself accumulates across repeated solve() calls).
  const SolverStats before = stats_;
  struct Flush {
    const Solver* solver;
    SolverStats before;
    ~Flush() {
      const SolverStats& now = solver->stats();
      GFA_COUNT("sat.solves", 1);
      GFA_COUNT("sat.conflicts", now.conflicts - before.conflicts);
      GFA_COUNT("sat.decisions", now.decisions - before.decisions);
      GFA_COUNT("sat.propagations", now.propagations - before.propagations);
      GFA_COUNT("sat.restarts", now.restarts - before.restarts);
      GFA_COUNT("sat.learned", now.learned - before.learned);
    }
  } flush{this, before};

  // Charge the clause arena (problem clauses up front, learned clauses as
  // they arrive) against the run's memory budget; everything charged is
  // released when solve() unwinds, however it unwinds.
  struct BudgetGuard {
    ResourceBudget* budget;
    std::size_t held = 0;
    void add(std::size_t bytes) {
      if (budget == nullptr) return;
      budget->charge(BudgetSite::kSatClauses, bytes);
      held += bytes;
    }
    ~BudgetGuard() {
      if (budget != nullptr) budget->release(BudgetSite::kSatClauses, held);
    }
  } budget_guard{budget_of(control)};
  const auto clause_bytes = [](const std::vector<L>& lits) {
    return kSatClauseOverheadBytes + lits.size() * kSatLiteralBytes;
  };
  if (budget_guard.budget != nullptr) {
    std::size_t arena = 0;
    for (const Clause& c : clauses_) arena += clause_bytes(c.lits);
    budget_guard.add(arena);
  }

  if (unsat_) return Result::kUnsat;
  std::uint64_t restart_threshold = 100;
  std::uint64_t conflicts_since_restart = 0;
  std::uint64_t loops = 0;
  std::vector<L> learned;

  for (;;) {
    if ((++loops & 255u) == 0) throw_if_stopped(control);
    const std::int32_t conflict = propagate();
    if (conflict >= 0) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) return Result::kUnsat;
      std::uint32_t bt = 0;
      analyze(conflict, &learned, &bt);
      backtrack(bt);
      if (learned.size() == 1) {
        if (value_is_false(learned[0])) return Result::kUnsat;
        if (is_unassigned(learned[0])) enqueue(learned[0], -1);
      } else {
        GFA_FAULT_POINT("oom:sat.learn");
        budget_guard.add(clause_bytes(learned));
        const std::uint32_t ci = static_cast<std::uint32_t>(clauses_.size());
        clauses_.push_back(Clause{learned, true});
        attach(ci);
        ++stats_.learned;
        enqueue(learned[0], static_cast<std::int32_t>(ci));
      }
      decay();
      if (conflict_limit && stats_.conflicts >= conflict_limit)
        return Result::kUnknown;
      continue;
    }
    if (conflicts_since_restart >= restart_threshold) {
      conflicts_since_restart = 0;
      restart_threshold = restart_threshold + restart_threshold / 2;
      ++stats_.restarts;
      backtrack(0);
      continue;
    }
    const L decision = pick_branch();
    if (decision == UINT32_MAX) return Result::kSat;
    ++stats_.decisions;
    trail_lim_.push_back(trail_.size());
    enqueue(decision, -1);
  }
}

bool Solver::model_value(int var) const {
  const std::uint32_t v = static_cast<std::uint32_t>(var) - 1;
  if (v >= assign_.size()) return false;
  return assign_[v] > 0;
}

}  // namespace gfa::sat
