#pragma once
// Miter construction and Tseitin CNF encoding — the front end of the
// "contemporary equivalence checking" baseline (paper §6: AIG/SAT methods
// cannot prove Mastrovito ≡ Montgomery beyond 16-bit within 24 h).
//
// The miter drives both circuits from shared primary inputs (matched by
// input-word names), XORs corresponding output-word bits and ORs the
// disagreement bits into the single output net "miter": the circuits are
// equivalent iff "miter" is unsatisfiable (never 1).

#include <vector>

#include "circuit/netlist.h"

namespace gfa {

/// Builds the miter of two circuits with identical input/output word shapes.
Netlist make_miter(const Netlist& c1, const Netlist& c2);

/// CNF in DIMACS conventions: variables 1..num_vars, literals ±var.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

/// Tseitin-encodes the netlist; net n gets variable n+1. When `assert_net` is
/// not kNoNet, a unit clause asserts that net to 1 (e.g. the miter output).
Cnf tseitin_encode(const Netlist& netlist, NetId assert_net = kNoNet);

}  // namespace gfa
