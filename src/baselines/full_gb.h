#pragma once
// Unguided full-Gröbner-basis abstraction baseline (paper §6).
//
// The direct realization of Theorem 4.2: generate the whole ideal J + J_0
// (gate polynomials, word definitions, and a vanishing polynomial for every
// variable) and run Buchberger's algorithm under an elimination order, then
// pick the polynomial Z + G(A, …) out of the reduced basis. This is what the
// paper tried first with SINGULAR's slimgb: it explodes beyond 32-bit
// circuits, which motivates the RATO-guided extractor. Budgets report the
// explosion instead of hanging.

#include "circuit/netlist.h"
#include "poly/groebner.h"

namespace gfa {

struct FullGbResult {
  bool completed = false;   // Buchberger ran to fixpoint within budget
  bool found = false;       // a Z + G(A,…) polynomial was isolated
  MPoly g;                  // G over the input word variables (valid if found)
  VarPool pool;             // the circuit ideal's variables
  std::size_t basis_size = 0;
  std::size_t reductions = 0;
  std::size_t max_terms_seen = 0;

  explicit FullGbResult(const Gf2k* field) : g(field) {}
};

/// Runs Buchberger on J + J_0 with the given refinement of the abstraction
/// order (`use_rato` = false gives the arbitrary circuit-variable order of
/// Definition 4.2) and extracts the word-level polynomial from the reduced
/// basis.
FullGbResult abstract_by_full_groebner(const Netlist& netlist, const Gf2k& field,
                                       const BuchbergerOptions& options = {},
                                       bool use_rato = true);

}  // namespace gfa
