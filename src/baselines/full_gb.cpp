#include "baselines/full_gb.h"

#include <algorithm>

#include "abstraction/rato.h"
#include "circuit/gate_poly.h"

namespace gfa {

FullGbResult abstract_by_full_groebner(const Netlist& netlist, const Gf2k& field,
                                       const BuchbergerOptions& options,
                                       bool use_rato) {
  CircuitIdeal ideal = circuit_ideal(netlist, &field);
  const TermOrder order = use_rato ? make_rato_order(netlist, ideal)
                                   : make_abstraction_order(netlist, ideal);

  // J + J_0: circuit generators plus a vanishing polynomial per variable.
  std::vector<MPoly> gens = ideal.all_generators();
  std::vector<VarId> all_vars;
  for (std::size_t v = 0; v < ideal.pool.size(); ++v)
    all_vars.push_back(static_cast<VarId>(v));
  for (MPoly& p : vanishing_polynomials(&field, ideal.pool, all_vars))
    gens.push_back(std::move(p));

  BuchbergerResult br = buchberger(std::move(gens), order, options);

  FullGbResult res(&field);
  res.pool = ideal.pool;
  res.completed = br.completed;
  res.reductions = br.reductions;
  res.max_terms_seen = br.max_terms_seen;
  res.basis_size = br.basis.size();
  if (!br.completed) return res;

  const std::vector<MPoly> reduced = reduce_basis(std::move(br.basis), order);
  res.basis_size = reduced.size();

  // Find the unique polynomial with leading term Z (Corollary 4.1).
  const Word* out = output_word(netlist);
  if (out == nullptr) return res;
  const VarId z = ideal.word_var.at(out->name);
  const Monomial z_mono(z, BigUint(1));
  for (const MPoly& p : reduced) {
    if (p.is_zero()) continue;
    if (p.leading_term(order).mono == z_mono) {
      // p = Z + G  =>  G = p + Z (char 2).
      MPoly g = p;
      g.add_term(z_mono, field.one());
      res.g = std::move(g);
      res.found = true;
      break;
    }
  }
  return res;
}

}  // namespace gfa
