#pragma once
// Lagrange interpolation over F_q (paper §1 and §2 "Polynomial
// Interpolation").
//
// The canonical polynomial of any function f : F_q → F_q can be computed
// exhaustively with the point-indicator identity  1_{X=a} = 1 + (X + a)^{q-1}
// (char 2), so  F(X) = Σ_a f(a)·(1 + (X+a)^{q-1}).  This is Θ(q³) field work
// for one variable and Θ(q⁴)-ish for two — the infeasible-beyond-tiny-fields
// baseline the paper contrasts against, and our *oracle*: on small fields the
// abstraction engine's output must match the interpolated polynomial exactly.

#include <functional>

#include "poly/mpoly.h"

namespace gfa {

/// Every element of F_{2^k}, in counting order of coordinate bits (k <= 20).
std::vector<Gf2k::Elem> all_field_elements(const Gf2k& field);

/// Canonical univariate polynomial of f (degree <= q-1) in variable x.
MPoly interpolate_univariate(const Gf2k& field, VarId x,
                             const std::function<Gf2k::Elem(const Gf2k::Elem&)>& f);

/// Canonical bivariate polynomial of f in variables x, y.
MPoly interpolate_bivariate(
    const Gf2k& field, VarId x, VarId y,
    const std::function<Gf2k::Elem(const Gf2k::Elem&, const Gf2k::Elem&)>& f);

}  // namespace gfa
