#include "gf/gf2k_kernels.h"

#include <bit>
#include <cassert>

#if defined(__PCLMUL__) && defined(__SSE2__)
#include <wmmintrin.h>
#define GFA_HAVE_PCLMUL 1
#else
#define GFA_HAVE_PCLMUL 0
#endif

namespace gfa {

namespace {

constexpr unsigned kTableMaxK = 16;
constexpr unsigned kSingleWordMaxK = 64;
/// Sparse tier limits: fold cost scales with the modulus weight, and the
/// multiply scratch lives on the stack. Dense or enormous moduli fall back to
/// the generic path.
constexpr std::size_t kMaxFoldTails = 16;
constexpr std::size_t kMaxElemWords = 32;             // k <= 2048
constexpr std::size_t kScratchWords = 2 * kMaxElemWords + 2;

/// 64x64 -> 128 carry-less multiply.
inline void clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t& lo,
                    std::uint64_t& hi) {
#if GFA_HAVE_PCLMUL
  const __m128i p = _mm_clmulepi64_si128(
      _mm_cvtsi64_si128(static_cast<long long>(a)),
      _mm_cvtsi64_si128(static_cast<long long>(b)), 0x00);
  lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(p));
  hi = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(p, p)));
#else
  lo = hi = 0;
  while (b != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(b));
    b &= b - 1;
    lo ^= i ? (a << i) : a;
    if (i) hi ^= a >> (64 - i);
  }
#endif
}

/// Spreads the 32 low bits of v to the even bit positions (squaring over
/// GF(2) interleaves zeros).
inline std::uint64_t spread32(std::uint32_t v) {
  std::uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

inline std::uint64_t low_word(const Gf2Poly& p) {
  return p.words().empty() ? 0 : p.words()[0];
}

std::vector<std::uint32_t> prime_factors_u32(std::uint32_t n) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

}  // namespace

const char* to_string(KernelTier tier) {
  switch (tier) {
    case KernelTier::kTable:
      return "table";
    case KernelTier::kSingleWord:
      return "single-word";
    case KernelTier::kSparseMod:
      return "sparse-mod";
    case KernelTier::kGeneric:
      return "generic";
  }
  return "?";
}

Gf2kKernels::Gf2kKernels(const Gf2Poly& modulus) : modulus_(modulus) {
  const int deg = modulus_.degree();
  assert(deg >= 1 && "kernel modulus must have degree >= 1");
  k_ = static_cast<unsigned>(deg);
  for (int i = deg - 1; i >= 0; --i)
    if (modulus_.coeff(static_cast<unsigned>(i)))
      tails_.push_back(static_cast<unsigned>(i));
  elem_words_ = (k_ + 63) / 64;

  if (k_ >= 2 && k_ <= kTableMaxK) {
    tier_ = KernelTier::kTable;
  } else if (k_ <= kSingleWordMaxK) {
    tier_ = KernelTier::kSingleWord;
  } else if (tails_.size() <= kMaxFoldTails && elem_words_ <= kMaxElemWords) {
    tier_ = KernelTier::kSparseMod;
  } else {
    tier_ = KernelTier::kGeneric;
  }

  if (tier_ != KernelTier::kTable) return;

  // Build the discrete-log tables over a generator g of the multiplicative
  // group: g is found by checking g^(N/p) != 1 for every prime p | N.
  order_n_ = (std::uint32_t{1} << k_) - 1;
  const std::vector<std::uint32_t> primes = prime_factors_u32(order_n_);
  auto pow_bits = [&](std::uint64_t base, std::uint32_t e) {
    std::uint64_t r = 1;
    while (e != 0) {
      if (e & 1) r = mul_u64(r, base);
      base = mul_u64(base, base);
      e >>= 1;
    }
    return r;
  };
  std::uint64_t g = 2;  // the residue of x; often already primitive
  for (;; ++g) {
    bool primitive = true;
    for (std::uint32_t p : primes) {
      if (pow_bits(g, order_n_ / p) == 1) {
        primitive = false;
        break;
      }
    }
    if (primitive) break;
    assert(g < order_n_ && "no generator found; modulus not irreducible?");
  }

  log_.assign(std::size_t{1} << k_, 0);
  antilog_.assign(std::size_t{2} * order_n_, 0);
  std::uint64_t cur = 1;
  for (std::uint32_t i = 0; i < order_n_; ++i) {
    antilog_[i] = static_cast<std::uint32_t>(cur);
    antilog_[i + order_n_] = static_cast<std::uint32_t>(cur);
    log_[cur] = i;
    cur = mul_u64(cur, g);
  }
  assert(cur == 1 && "generator order mismatch");
  log_alpha_ = log_[2];
}

std::uint64_t Gf2kKernels::reduce_u128(std::uint64_t lo, std::uint64_t hi) const {
  if (k_ == 64) {
    while (hi != 0) {
      const std::uint64_t h = hi;
      hi = 0;
      for (unsigned t : tails_) {
        lo ^= t ? (h << t) : h;
        if (t) hi ^= h >> (64 - t);
      }
    }
    return lo;
  }
  const std::uint64_t mask = (std::uint64_t{1} << k_) - 1;
  for (;;) {
    // Inputs have degree <= 2k-2, so the overflow part always fits one word.
    const std::uint64_t h = (hi << (64 - k_)) | (lo >> k_);
    if (h == 0) return lo;
    hi = 0;
    lo &= mask;
    for (unsigned t : tails_) {
      lo ^= t ? (h << t) : h;
      if (t) hi ^= h >> (64 - t);
    }
  }
}

std::uint64_t Gf2kKernels::mul_u64(std::uint64_t a, std::uint64_t b) const {
  std::uint64_t lo, hi;
  clmul64(a, b, lo, hi);
  return reduce_u128(lo, hi);
}

std::uint64_t Gf2kKernels::square_u64(std::uint64_t a) const {
  return reduce_u128(spread32(static_cast<std::uint32_t>(a)),
                     spread32(static_cast<std::uint32_t>(a >> 32)));
}

std::uint64_t Gf2kKernels::inv_u64(std::uint64_t a) const {
  assert(a != 0 && "zero has no multiplicative inverse");
  // Fermat: a^(2^k - 2); the exponent has bits k-1 … 1 set.
  std::uint64_t result = 1;
  for (int i = static_cast<int>(k_) - 1; i >= 0; --i) {
    result = square_u64(result);
    if (i >= 1) result = mul_u64(result, a);
  }
  return result;
}

void Gf2kKernels::fold_in_place(std::uint64_t* buf, std::size_t nwords) const {
  const unsigned kw = k_ / 64, ks = k_ % 64;
  const std::size_t first_full = kw + (ks ? 1 : 0);
  bool again = true;
  while (again) {
    again = false;
    // Full words at or above x^k, top down: bit 0 of word i sits at x^(64i),
    // and x^(64i + j) folds to x^(64i + j - k + t) for every tail t.
    for (std::size_t i = nwords; i-- > first_full;) {
      const std::uint64_t w = buf[i];
      if (w == 0) continue;
      buf[i] = 0;
      const std::size_t base = i * 64 - k_;
      for (unsigned t : tails_) {
        const std::size_t pos = base + t;
        const unsigned sh = pos % 64;
        buf[pos / 64] ^= sh ? (w << sh) : w;
        if (sh) buf[pos / 64 + 1] ^= w >> (64 - sh);
      }
    }
    // Leftover bits >= k inside the boundary word.
    if (ks) {
      const std::uint64_t w = buf[kw] >> ks;
      if (w != 0) {
        buf[kw] &= (std::uint64_t{1} << ks) - 1;
        for (unsigned t : tails_) {
          const unsigned sh = t % 64;
          buf[t / 64] ^= sh ? (w << sh) : w;
          if (sh) buf[t / 64 + 1] ^= w >> (64 - sh);
        }
      }
    }
    // Large tails can push bits back above x^k; sweep again until clean.
    for (std::size_t i = first_full; i < nwords; ++i) {
      if (buf[i] != 0) {
        again = true;
        break;
      }
    }
    if (!again && ks != 0 && (buf[kw] >> ks) != 0) again = true;
  }
}

Gf2Poly Gf2kKernels::mul_sparse(const Gf2Poly& a, const Gf2Poly& b) const {
  if (a.is_zero() || b.is_zero()) return {};
  const std::vector<std::uint64_t>& aw = a.words();
  const std::vector<std::uint64_t>& bw = b.words();
  std::uint64_t buf[kScratchWords] = {0};
  const std::size_t nw = aw.size() + bw.size() + 1;
  assert(nw <= kScratchWords);
#if GFA_HAVE_PCLMUL
  for (std::size_t i = 0; i < aw.size(); ++i) {
    if (aw[i] == 0) continue;
    for (std::size_t j = 0; j < bw.size(); ++j) {
      std::uint64_t lo, hi;
      clmul64(aw[i], bw[j], lo, hi);
      buf[i + j] ^= lo;
      buf[i + j + 1] ^= hi;
    }
  }
#else
  for (std::size_t i = 0; i < aw.size(); ++i) {
    std::uint64_t ai = aw[i];
    while (ai != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(ai));
      ai &= ai - 1;
      for (std::size_t j = 0; j < bw.size(); ++j) {
        const std::uint64_t w = bw[j];
        buf[i + j] ^= bit ? (w << bit) : w;
        if (bit) buf[i + j + 1] ^= w >> (64 - bit);
      }
    }
  }
#endif
  fold_in_place(buf, nw);
  return Gf2Poly::from_words(buf, elem_words_);
}

Gf2Poly Gf2kKernels::square_sparse(const Gf2Poly& a) const {
  if (a.is_zero()) return {};
  const std::vector<std::uint64_t>& aw = a.words();
  std::uint64_t buf[kScratchWords] = {0};
  const std::size_t nw = 2 * aw.size() + 1;
  assert(nw <= kScratchWords);
  for (std::size_t i = 0; i < aw.size(); ++i) {
    buf[2 * i] = spread32(static_cast<std::uint32_t>(aw[i]));
    buf[2 * i + 1] = spread32(static_cast<std::uint32_t>(aw[i] >> 32));
  }
  fold_in_place(buf, nw);
  return Gf2Poly::from_words(buf, elem_words_);
}

Gf2Poly Gf2kKernels::mul(const Gf2Poly& a, const Gf2Poly& b) const {
  switch (tier_) {
    case KernelTier::kTable: {
      const std::uint64_t ab = low_word(a), bb = low_word(b);
      if (ab == 0 || bb == 0) return {};
      return Gf2Poly::from_bits(antilog_[log_[ab] + log_[bb]]);
    }
    case KernelTier::kSingleWord:
      return Gf2Poly::from_bits(mul_u64(low_word(a), low_word(b)));
    case KernelTier::kSparseMod:
      return mul_sparse(a, b);
    case KernelTier::kGeneric:
      break;
  }
  return (a * b).mod(modulus_);
}

Gf2Poly Gf2kKernels::square(const Gf2Poly& a) const {
  switch (tier_) {
    case KernelTier::kTable: {
      const std::uint64_t ab = low_word(a);
      if (ab == 0) return {};
      return Gf2Poly::from_bits(antilog_[std::size_t{2} * log_[ab]]);
    }
    case KernelTier::kSingleWord:
      return Gf2Poly::from_bits(square_u64(low_word(a)));
    case KernelTier::kSparseMod:
      return square_sparse(a);
    case KernelTier::kGeneric:
      break;
  }
  return a.squared().mod(modulus_);
}

Gf2Poly Gf2kKernels::inv(const Gf2Poly& a) const {
  assert(!a.is_zero() && "zero has no multiplicative inverse");
  switch (tier_) {
    case KernelTier::kTable:
      return Gf2Poly::from_bits(antilog_[order_n_ - log_[low_word(a)]]);
    case KernelTier::kSingleWord:
      return Gf2Poly::from_bits(inv_u64(low_word(a)));
    case KernelTier::kSparseMod:
    case KernelTier::kGeneric:
      break;
  }
  Gf2Poly::ExtGcd eg = Gf2Poly::ext_gcd(a, modulus_);
  assert(eg.g.is_one() && "modulus not irreducible or element not reduced");
  return eg.s.mod(modulus_);
}

Gf2Poly Gf2kKernels::alpha_pow(std::uint64_t e) const {
  if (tier_ == KernelTier::kTable) {
    const std::uint64_t em = e % order_n_;
    return Gf2Poly::from_bits(antilog_[(em * log_alpha_) % order_n_]);
  }
  const Gf2Poly base = Gf2Poly::monomial(1).mod(modulus_);
  if (e == 0) return Gf2Poly::one();
  Gf2Poly result = Gf2Poly::one();
  for (int i = 63 - std::countl_zero(e); i >= 0; --i) {
    result = square(result);
    if ((e >> i) & 1) result = mul(result, base);
  }
  return result;
}

}  // namespace gfa
