#pragma once
// Normal bases of F_{2^k}.
//
// A normal basis is {β, β², β⁴, …, β^{2^{k-1}}} for a *normal element* β:
// the Frobenius orbit of β spans the field as an F_2 vector space. Hardware
// loves normal bases because squaring is a cyclic shift of the coordinate
// word. NIST standardizes both polynomial- and normal-basis representations
// for the ECC fields, and real designs mix them — which is why the word-level
// abstraction is parameterized by the basis (see extractor.h): a circuit's
// bits are interpreted as coordinates over *its* basis, and the canonical
// polynomial that comes out is basis-independent, so a polynomial-basis
// Mastrovito multiplier can be checked against a normal-basis Massey–Omura
// multiplier directly.

#include <cstdint>
#include <optional>
#include <vector>

#include "gf/gf2k.h"

namespace gfa {

class NormalBasis {
 public:
  /// Builds the basis of the Frobenius orbit of `beta`; returns nullopt if
  /// beta is not normal (orbit not linearly independent).
  static std::optional<NormalBasis> from_element(const Gf2k& field,
                                                 const Gf2k::Elem& beta);

  /// Finds a normal element deterministically (seeded search; every F_{2^k}
  /// has one by the normal basis theorem).
  static NormalBasis find(const Gf2k& field, std::uint64_t seed = 1);

  const Gf2k::Elem& beta() const { return basis_[0]; }

  /// basis()[i] = β^{2^i}; the word interpretation is A = Σ a_i·basis()[i].
  const std::vector<Gf2k::Elem>& basis() const { return basis_; }

  /// Coordinates of an element over this basis (bit i of the result is a_i).
  Gf2Poly to_coords(const Gf2k::Elem& a) const;

  /// Element from coordinate bits.
  Gf2k::Elem from_coords(const Gf2Poly& coords) const;

  /// The multiplication (λ) matrix of the basis: λ[i][j] bit l set iff the
  /// normal coordinates of basis[i]·basis[j] have bit l — the bilinear form
  /// realized by a Massey–Omura multiplier.
  const std::vector<std::vector<Gf2Poly>>& lambda() const { return lambda_; }

 private:
  NormalBasis(const Gf2k* field, std::vector<Gf2k::Elem> basis,
              std::vector<Gf2Poly> inverse_rows);
  const Gf2k* field_;
  std::vector<Gf2k::Elem> basis_;
  // Row i of the GF(2) inverse coordinate matrix, packed as bit rows: the
  // normal coordinate a_i of x is <inverse_rows_[i], polycoords(x)>.
  std::vector<Gf2Poly> inverse_rows_;
  std::vector<std::vector<Gf2Poly>> lambda_;
};

}  // namespace gfa
