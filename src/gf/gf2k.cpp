#include "gf/gf2k.h"

#include <cassert>
#include <stdexcept>

#include "gf2/irreducible.h"

namespace gfa {

Gf2k::Gf2k(Gf2Poly modulus, bool check_irreducible) : modulus_(std::move(modulus)) {
  const int deg = modulus_.degree();
  if (deg < 1)
    throw std::invalid_argument("field modulus must have degree >= 1");
  if (check_irreducible && !is_irreducible(modulus_)) {
    throw std::invalid_argument("field modulus " + modulus_.to_string() +
                                " is reducible");
  }
  k_ = static_cast<unsigned>(deg);
  kernels_ = std::make_shared<const Gf2kKernels>(modulus_);
}

Gf2k Gf2k::make(unsigned k) { return Gf2k(default_irreducible(k)); }

Result<Gf2k> Gf2k::try_make(unsigned k) {
  // default_irreducible asserts k >= 2 (release builds would misbehave), so
  // validate here rather than rely on the assert.
  if (k < 2)
    return Status::invalid_argument("field size k must be >= 2, got " +
                                    std::to_string(k));
  auto modulus = nist_polynomial(k);
  if (!modulus) modulus = find_low_weight_irreducible(k);
  if (!modulus)
    return Status::invalid_argument("no low-weight irreducible of degree " +
                                    std::to_string(k) + " found");
  try {
    return Gf2k(std::move(*modulus));
  } catch (...) {
    return status_from_current_exception();
  }
}

Gf2k::Elem Gf2k::from_bits(std::uint64_t bits) const {
  return Gf2Poly::from_bits(bits).mod(modulus_);
}

Gf2k::Elem Gf2k::mul(const Elem& a, const Elem& b) const {
  if (is_canonical(a) && is_canonical(b)) return kernels_->mul(a, b);
  return (a * b).mod(modulus_);
}

Gf2k::Elem Gf2k::square(const Elem& a) const {
  if (is_canonical(a)) return kernels_->square(a);
  return a.squared().mod(modulus_);
}

Gf2k::Elem Gf2k::inv(const Elem& a) const {
  assert(!a.is_zero() && "zero has no multiplicative inverse");
  if (is_canonical(a)) return kernels_->inv(a);
  Gf2Poly::ExtGcd eg = Gf2Poly::ext_gcd(a, modulus_);
  assert(eg.g.is_one() && "modulus not irreducible or element not reduced");
  return eg.s.mod(modulus_);
}

Gf2k::Elem Gf2k::pow(const Elem& a, const BigUint& e) const {
  if (e.is_zero()) return one();
  Elem base = reduce(a);
  Elem result = one();
  const int bits = e.bit_length();
  for (int i = bits; i >= 0; --i) {
    result = square(result);
    if (e.bit(static_cast<unsigned>(i))) result = mul(result, base);
  }
  return result;
}

Gf2k::Elem Gf2k::alpha_pow(std::uint64_t e) const { return kernels_->alpha_pow(e); }

Gf2k::Elem Gf2k::alpha_pow(const BigUint& e) const {
  if (e.fits_u64()) return kernels_->alpha_pow(e.low_u64());
  return pow(alpha(), e);
}

Gf2k::Elem Gf2k::frobenius(const Elem& a, unsigned j) const {
  Elem out = reduce(a);
  for (unsigned i = 0; i < j; ++i) out = square(out);
  return out;
}

BigUint Gf2k::reduce_exponent(const BigUint& e) const {
  if (e.is_zero()) return e;
  const BigUint qm1 = order() - BigUint(1);
  if (e <= qm1) return e;  // already in [1, q-1]
  return ((e - BigUint(1)) % qm1) + BigUint(1);
}

std::string Gf2k::to_string(const Elem& a) const {
  if (a.is_zero()) return "0";
  std::string out;
  for (int i = a.degree(); i >= 0; --i) {
    if (!a.coeff(static_cast<unsigned>(i))) continue;
    if (!out.empty()) out += " + ";
    if (i == 0)
      out += "1";
    else if (i == 1)
      out += "α";
    else
      out += "α^" + std::to_string(i);
  }
  return out;
}

}  // namespace gfa
