#include "gf/biguint.h"

#include <bit>
#include <cassert>

namespace gfa {

namespace {
constexpr unsigned kWordBits = 64;
}

void BigUint::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) words_.push_back(v);
}

BigUint BigUint::from_words(std::vector<std::uint64_t> words) {
  BigUint out;
  out.words_ = std::move(words);
  out.trim();
  return out;
}

BigUint BigUint::pow2(unsigned e) {
  BigUint out;
  out.words_.assign(e / kWordBits + 1, 0);
  out.words_.back() = std::uint64_t{1} << (e % kWordBits);
  return out;
}

int BigUint::bit_length() const {
  if (words_.empty()) return -1;
  return static_cast<int>((words_.size() - 1) * kWordBits +
                          (kWordBits - 1 - std::countl_zero(words_.back())));
}

bool BigUint::bit(unsigned i) const {
  const std::size_t w = i / kWordBits;
  if (w >= words_.size()) return false;
  return (words_[w] >> (i % kWordBits)) & 1u;
}

BigUint BigUint::operator+(const BigUint& rhs) const {
  BigUint out = *this;
  out += rhs;
  return out;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  if (rhs.words_.size() > words_.size()) words_.resize(rhs.words_.size(), 0);
  unsigned char carry = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t r = i < rhs.words_.size() ? rhs.words_[i] : 0;
    std::uint64_t sum = words_[i] + r;
    const unsigned char c1 = sum < words_[i] ? 1 : 0;
    sum += carry;
    const unsigned char c2 = (carry != 0 && sum == 0) ? 1 : 0;
    words_[i] = sum;
    carry = static_cast<unsigned char>(c1 | c2);
  }
  if (carry) words_.push_back(1);
  return *this;
}

BigUint BigUint::operator-(const BigUint& rhs) const {
  assert(*this >= rhs && "BigUint subtraction underflow");
  BigUint out = *this;
  unsigned char borrow = 0;
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    const std::uint64_t r = i < rhs.words_.size() ? rhs.words_[i] : 0;
    const std::uint64_t before = out.words_[i];
    std::uint64_t diff = before - r;
    const unsigned char b1 = before < r ? 1 : 0;
    const std::uint64_t before2 = diff;
    diff -= borrow;
    const unsigned char b2 = before2 < static_cast<std::uint64_t>(borrow) ? 1 : 0;
    out.words_[i] = diff;
    borrow = static_cast<unsigned char>(b1 | b2);
  }
  assert(borrow == 0);
  out.trim();
  return out;
}

BigUint BigUint::operator*(const BigUint& rhs) const {
  if (is_zero() || rhs.is_zero()) return {};
  BigUint out;
  out.words_.assign(words_.size() + rhs.words_.size(), 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.words_.size(); ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(words_[i]) * rhs.words_[j] +
          out.words_[i + j] + carry;
      out.words_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.words_[i + rhs.words_.size()] += carry;
  }
  out.trim();
  return out;
}

BigUint BigUint::operator<<(unsigned n) const {
  if (is_zero() || n == 0) return *this;
  const unsigned ws = n / kWordBits, bs = n % kWordBits;
  BigUint out;
  out.words_.assign(words_.size() + ws + 1, 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i + ws] |= bs ? (words_[i] << bs) : words_[i];
    if (bs != 0) out.words_[i + ws + 1] |= words_[i] >> (kWordBits - bs);
  }
  out.trim();
  return out;
}

BigUint::DivMod BigUint::divmod(const BigUint& divisor) const {
  assert(!divisor.is_zero() && "BigUint division by zero");
  DivMod dm;
  if (*this < divisor) {
    dm.remainder = *this;
    return dm;
  }
  // Binary shift-subtract long division; operand sizes here are tiny
  // (exponents of a handful of 64-bit words), so simplicity wins.
  const int shift = bit_length() - divisor.bit_length();
  BigUint cur = divisor << static_cast<unsigned>(shift);
  dm.remainder = *this;
  for (int s = shift; s >= 0; --s) {
    if (dm.remainder >= cur) {
      dm.remainder = dm.remainder - cur;
      dm.quotient += BigUint::pow2(static_cast<unsigned>(s));
    }
    if (s > 0) {
      // cur >>= 1
      BigUint next;
      next.words_.assign(cur.words_.size(), 0);
      for (std::size_t i = 0; i < cur.words_.size(); ++i) {
        next.words_[i] = cur.words_[i] >> 1;
        if (i + 1 < cur.words_.size())
          next.words_[i] |= cur.words_[i + 1] << (kWordBits - 1);
      }
      next.trim();
      cur = std::move(next);
    }
  }
  return dm;
}

BigUint BigUint::operator%(const BigUint& divisor) const {
  return divmod(divisor).remainder;
}

std::strong_ordering BigUint::operator<=>(const BigUint& rhs) const {
  if (words_.size() != rhs.words_.size())
    return words_.size() <=> rhs.words_.size();
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != rhs.words_[i]) return words_[i] <=> rhs.words_[i];
  }
  return std::strong_ordering::equal;
}

std::string BigUint::to_string() const {
  if (is_zero()) return "0";
  if (fits_u64()) return std::to_string(words_[0]);
  // Repeated division by 10^19 (largest power of ten in a word).
  constexpr std::uint64_t kChunk = 10000000000000000000ull;
  std::string out;
  BigUint v = *this;
  while (!v.is_zero()) {
    DivMod dm = v.divmod(BigUint(kChunk));
    std::string part = std::to_string(dm.remainder.low_u64());
    if (!dm.quotient.is_zero())
      part.insert(0, 19 - part.size(), '0');
    out.insert(0, part);
    v = std::move(dm.quotient);
  }
  return out;
}

std::size_t BigUint::hash() const {
  std::size_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace gfa
