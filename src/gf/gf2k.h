#pragma once
// The binary extension field F_{2^k} = GF(2)[x] / P(x).
//
// A Gf2k is the field context: the degree k and the irreducible P(x). Field
// elements are canonical residues — Gf2Poly values of degree < k — passed to
// the context's operations. Keeping elements as bare Gf2Poly (rather than a
// handle-carrying class) matters because the abstraction engine stores
// millions of coefficients; the context is threaded explicitly instead.
//
// α denotes the residue of x, i.e. a fixed root of P: P(α) = 0. Every element
// is a_0 + a_1·α + … + a_{k-1}·α^{k-1} with a_i ∈ GF(2), which is exactly the
// bit-vector (word) interpretation used by the paper: a k-bit circuit word
// {a_0, …, a_{k-1}} *is* the field element with those coordinates.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gf/biguint.h"
#include "gf/gf2k_kernels.h"
#include "gf2/gf2_poly.h"
#include "util/status.h"

namespace gfa {

class Gf2k {
 public:
  using Elem = Gf2Poly;

  /// Field with the given irreducible modulus (degree >= 1, else throws
  /// std::invalid_argument). When `check_irreducible` is set, throws
  /// std::invalid_argument if the modulus is reducible; large NIST moduli are
  /// trusted by default since the Rabin test at k = 571 is itself costly.
  explicit Gf2k(Gf2Poly modulus, bool check_irreducible = false);

  /// Field F_{2^k} with the default (NIST or lowest-weight) modulus.
  static Gf2k make(unsigned k);

  /// Non-throwing variant: k < 2 (no field) or k with no known low-weight
  /// irreducible maps to kInvalidArgument instead of an assert/throw.
  static Result<Gf2k> try_make(unsigned k);

  unsigned k() const { return k_; }
  const Gf2Poly& modulus() const { return modulus_; }

  /// Which fast-arithmetic tier serves this field (see gf/gf2k_kernels.h).
  KernelTier kernel_tier() const { return kernels_->tier(); }

  /// Field order as a BigUint: q = 2^k.
  BigUint order() const { return BigUint::pow2(k_); }

  Elem zero() const { return {}; }
  Elem one() const { return Gf2Poly::one(); }
  /// The residue of x: a fixed root of the modulus.
  Elem alpha() const { return Gf2Poly::monomial(1).mod(modulus_); }

  /// Element with coordinate bits taken from `bits` (bit i -> coefficient of
  /// α^i); requires k <= 64 to be lossless, otherwise only the low 64
  /// coordinates are set.
  Elem from_bits(std::uint64_t bits) const;

  /// Reduce an arbitrary GF(2)[x] polynomial into the field.
  Elem reduce(const Gf2Poly& p) const { return p.mod(modulus_); }

  bool is_canonical(const Elem& a) const { return a.degree() < static_cast<int>(k_); }

  /// Addition = subtraction = XOR.
  Elem add(const Elem& a, const Elem& b) const { return a + b; }
  /// Product/square in the field, dispatched to the fast kernel tier.
  /// Non-canonical operands (degree >= k) take the generic reduce path.
  Elem mul(const Elem& a, const Elem& b) const;
  Elem square(const Elem& a) const;

  /// Multiplicative inverse of a non-zero element (extended Euclid).
  Elem inv(const Elem& a) const;

  /// a^e by square-and-multiply; 0^0 = 1 by convention.
  Elem pow(const Elem& a, const BigUint& e) const;

  /// α^e.
  Elem alpha_pow(std::uint64_t e) const;
  Elem alpha_pow(const BigUint& e) const;

  /// Frobenius: a^(2^j).
  Elem frobenius(const Elem& a, unsigned j) const;

  /// Canonical exponent reduction for the vanishing ideal X^q - X:
  /// e = 0 stays 0; otherwise e -> ((e - 1) mod (q - 1)) + 1, so the result
  /// lies in [1, q - 1] and X^e defines the same function on F_q.
  BigUint reduce_exponent(const BigUint& e) const;

  /// Rendering as a polynomial in α, e.g. "α^3 + α + 1"; "0" for zero.
  std::string to_string(const Elem& a) const;

 private:
  Gf2Poly modulus_;
  unsigned k_;
  /// Shared so field copies stay cheap (the table tier carries ~0.5 MB).
  std::shared_ptr<const Gf2kKernels> kernels_;
};

}  // namespace gfa
