#include "gf/normal_basis.h"

#include <cassert>

namespace gfa {

namespace {

/// Inverts a k×k GF(2) matrix given as bit rows (bit j of rows[i] = M[i][j]).
/// Returns empty when singular.
std::vector<Gf2Poly> invert_gf2(std::vector<Gf2Poly> rows, unsigned k) {
  std::vector<Gf2Poly> inv(k);
  for (unsigned i = 0; i < k; ++i) inv[i] = Gf2Poly::monomial(i);
  for (unsigned col = 0; col < k; ++col) {
    unsigned pivot = col;
    while (pivot < k && !rows[pivot].coeff(col)) ++pivot;
    if (pivot == k) return {};
    std::swap(rows[pivot], rows[col]);
    std::swap(inv[pivot], inv[col]);
    for (unsigned r = 0; r < k; ++r) {
      if (r != col && rows[r].coeff(col)) {
        rows[r] += rows[col];
        inv[r] += inv[col];
      }
    }
  }
  return inv;
}

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

NormalBasis::NormalBasis(const Gf2k* field, std::vector<Gf2k::Elem> basis,
                         std::vector<Gf2Poly> inverse_rows)
    : field_(field), basis_(std::move(basis)), inverse_rows_(std::move(inverse_rows)) {
  const unsigned k = field_->k();
  lambda_.assign(k, std::vector<Gf2Poly>(k));
  for (unsigned i = 0; i < k; ++i)
    for (unsigned j = 0; j < k; ++j)
      lambda_[i][j] = to_coords(field_->mul(basis_[i], basis_[j]));
}

std::optional<NormalBasis> NormalBasis::from_element(const Gf2k& field,
                                                     const Gf2k::Elem& beta) {
  const unsigned k = field.k();
  std::vector<Gf2k::Elem> basis(k);
  basis[0] = field.reduce(beta);
  for (unsigned i = 1; i < k; ++i) basis[i] = field.square(basis[i - 1]);

  // Coordinate matrix: row i = polynomial coordinates of β^{2^i}. Normal
  // coordinates a satisfy  polycoords(x) = Mᵀ·a, i.e. a = (Mᵀ)⁻¹·polycoords.
  // Build Mᵀ rows directly: row r, bit i = coefficient of α^r in basis[i].
  std::vector<Gf2Poly> mt(k);
  for (unsigned r = 0; r < k; ++r)
    for (unsigned i = 0; i < k; ++i)
      if (basis[i].coeff(r)) mt[r].set_coeff(i, true);
  std::vector<Gf2Poly> inv = invert_gf2(std::move(mt), k);
  if (inv.empty()) return std::nullopt;
  return NormalBasis(&field, std::move(basis), std::move(inv));
}

NormalBasis NormalBasis::find(const Gf2k& field, std::uint64_t seed) {
  std::uint64_t state = seed;
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Gf2Poly candidate;
    for (unsigned i = 0; i < field.k(); ++i)
      if (splitmix(state) & 1u) candidate.set_coeff(i, true);
    if (candidate.is_zero()) continue;
    if (auto nb = from_element(field, candidate)) return *std::move(nb);
  }
  assert(false && "no normal element found (should be impossible)");
  return *from_element(field, field.one());  // unreachable
}

Gf2Poly NormalBasis::to_coords(const Gf2k::Elem& a) const {
  // a_i = <inverse_rows_[i], polycoords(a)> over GF(2).
  Gf2Poly out;
  for (unsigned i = 0; i < field_->k(); ++i) {
    const Gf2Poly dot = inverse_rows_[i];
    // Parity of the AND of the two bit vectors.
    int parity = 0;
    const auto& aw = a.words();
    const auto& dw = dot.words();
    const std::size_t n = std::min(aw.size(), dw.size());
    for (std::size_t w = 0; w < n; ++w)
      parity ^= __builtin_parityll(aw[w] & dw[w]);
    if (parity) out.set_coeff(i, true);
  }
  return out;
}

Gf2k::Elem NormalBasis::from_coords(const Gf2Poly& coords) const {
  Gf2k::Elem out;
  for (unsigned i = 0; i < field_->k(); ++i)
    if (coords.coeff(i)) out += basis_[i];
  return out;
}

}  // namespace gfa
