#pragma once
// Arbitrary-precision unsigned integers.
//
// Used for monomial exponents in the word-level polynomial ring over F_{2^k}:
// the canonical representation of a function over F_q has monomial degrees up
// to q - 1 = 2^k - 1, which for the NIST field k = 571 far exceeds any machine
// word. Values are little-endian vectors of 64-bit words with no trailing zero
// words (canonical form), so equality is a plain vector compare.

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace gfa {

class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// Value of a machine word.
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// 2^e.
  static BigUint pow2(unsigned e);

  bool is_zero() const { return words_.empty(); }
  bool is_one() const { return words_.size() == 1 && words_[0] == 1; }

  /// True iff the value fits in a single 64-bit word.
  bool fits_u64() const { return words_.size() <= 1; }

  /// The low 64 bits (the full value when fits_u64()).
  std::uint64_t low_u64() const { return words_.empty() ? 0 : words_[0]; }

  /// Position of the highest set bit, or -1 for zero.
  int bit_length() const;

  bool bit(unsigned i) const;

  BigUint operator+(const BigUint& rhs) const;
  BigUint& operator+=(const BigUint& rhs);

  /// Subtraction; requires *this >= rhs.
  BigUint operator-(const BigUint& rhs) const;

  BigUint operator*(const BigUint& rhs) const;

  /// Quotient and remainder (divisor non-zero).
  struct DivMod;  // defined after the class (holds BigUint values)
  DivMod divmod(const BigUint& divisor) const;
  BigUint operator%(const BigUint& divisor) const;

  BigUint operator<<(unsigned n) const;

  std::strong_ordering operator<=>(const BigUint& rhs) const;
  bool operator==(const BigUint& rhs) const = default;

  /// Decimal string.
  std::string to_string() const;

  /// The canonical little-endian word storage (no trailing zero words; empty
  /// for zero). Serialization layers (checkpoints, the canonical-form cache)
  /// persist exponents through this.
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Rebuilds a value from little-endian words; trailing zero words are
  /// trimmed, so any word vector round-trips to canonical form.
  static BigUint from_words(std::vector<std::uint64_t> words);

  std::size_t hash() const;

 private:
  void trim();
  std::vector<std::uint64_t> words_;  // little-endian, canonical
};

struct BigUint::DivMod {
  BigUint quotient;
  BigUint remainder;
};

}  // namespace gfa
