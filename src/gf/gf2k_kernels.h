#pragma once
// Tiered fast-arithmetic kernels behind Gf2k (see gf/gf2k.h).
//
// Every coefficient operation of the abstraction engine — the RATO
// substitution chain, the O(k³) Frobenius basis-change transforms of the word
// lift, the Gauss–Jordan inversion — bottoms out in F_{2^k} multiplication.
// The generic path (schoolbook carry-less multiply followed by long division
// in Gf2Poly) allocates on every step; at the NIST sizes that is millions of
// heap round-trips on the critical path. This module replaces it with three
// specialized tiers, selected once per field at construction:
//
//   kTable      k <= 16   log/antilog tables over a generator of F_{2^k}^*:
//                         mul/square/inv/alpha_pow are O(1) lookups.
//   kSingleWord k <= 64   elements live in one uint64_t; carry-less multiply
//                         (PCLMUL intrinsic when compiled in, portable
//                         shift-XOR otherwise) plus a fold reduction driven
//                         by the modulus tail exponents.
//   kSparseMod  k  > 64   multi-word elements; schoolbook/CLMUL multiply into
//                         a stack scratch buffer, then an in-place word-level
//                         shift-XOR fold: x^k ≡ Σ x^{t_i} for the tail
//                         exponents t_i of the (trinomial/pentanomial)
//                         modulus. No per-step allocation, no long division.
//   kGeneric    fallback  dense or oversized moduli: Gf2Poly mul + mod.
//
// All kernels are pure w.r.t. the object state after construction, so one
// Gf2kKernels may be shared by any number of threads (the scratch buffers are
// stack-allocated per call).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf2/gf2_poly.h"

namespace gfa {

enum class KernelTier { kTable, kSingleWord, kSparseMod, kGeneric };

const char* to_string(KernelTier tier);

class Gf2kKernels {
 public:
  /// Builds the best tier for the modulus (degree k >= 1, assumed
  /// irreducible — Gf2k validates that separately).
  explicit Gf2kKernels(const Gf2Poly& modulus);

  KernelTier tier() const { return tier_; }
  unsigned k() const { return k_; }

  /// All inputs must be canonical residues (degree < k); Gf2k dispatches
  /// non-canonical operands to the generic path before calling these.
  Gf2Poly mul(const Gf2Poly& a, const Gf2Poly& b) const;
  Gf2Poly square(const Gf2Poly& a) const;
  /// Multiplicative inverse of a non-zero canonical element.
  Gf2Poly inv(const Gf2Poly& a) const;
  /// α^e for the residue α of x.
  Gf2Poly alpha_pow(std::uint64_t e) const;

 private:
  // Single-word helpers (shared by the table builder).
  std::uint64_t mul_u64(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t square_u64(std::uint64_t a) const;
  std::uint64_t inv_u64(std::uint64_t a) const;
  std::uint64_t reduce_u128(std::uint64_t lo, std::uint64_t hi) const;

  // Sparse multi-word helpers.
  Gf2Poly mul_sparse(const Gf2Poly& a, const Gf2Poly& b) const;
  Gf2Poly square_sparse(const Gf2Poly& a) const;
  void fold_in_place(std::uint64_t* buf, std::size_t nwords) const;

  unsigned k_ = 0;
  Gf2Poly modulus_;
  KernelTier tier_ = KernelTier::kGeneric;

  /// Exponents of the modulus strictly below k, descending (the tail T in
  /// P = x^k + T): folding one overflow word is one shift-XOR per entry.
  std::vector<unsigned> tails_;
  std::size_t elem_words_ = 0;  // ceil(k / 64), kSparseMod only

  // kTable state: N = 2^k - 1; antilog_[i] = g^i for a fixed generator g,
  // doubled to 2N entries so sums of two logs index without a modulo;
  // log_[bits] inverts it on [1, 2^k).
  std::uint32_t order_n_ = 0;
  std::uint32_t log_alpha_ = 0;
  std::vector<std::uint32_t> log_;
  std::vector<std::uint32_t> antilog_;
};

}  // namespace gfa
