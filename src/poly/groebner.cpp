#include "poly/groebner.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gfa {

BuchbergerResult buchberger(std::vector<MPoly> generators, const TermOrder& order,
                            const BuchbergerOptions& options) {
  const obs::TraceSpan span("buchberger", "groebner");
  BuchbergerResult res;
  res.basis.reserve(generators.size());
  for (MPoly& g : generators) {
    if (!g.is_zero()) res.basis.push_back(std::move(g));
  }
  std::deque<std::pair<std::size_t, std::size_t>> pairs;
  // The O(n²)-and-growing pair queue is unguided Buchberger's first blow-up;
  // charge its size against the run's memory budget at every checkpoint.
  BudgetLease pair_lease(budget_of(options.control), BudgetSite::kPairQueue);
  for (std::size_t i = 0; i < res.basis.size(); ++i) {
    throw_if_stopped(options.control);  // pair enumeration is O(n²) itself
    for (std::size_t j = i + 1; j < res.basis.size(); ++j) pairs.emplace_back(i, j);
    pair_lease.set_bytes(pairs.size() * kPairEntryBytes);
  }
  GFA_COUNT("buchberger.pairs_generated", pairs.size());

  while (!pairs.empty()) {
    throw_if_stopped(options.control);
    pair_lease.set_bytes(pairs.size() * kPairEntryBytes);
    auto [i, j] = pairs.front();
    pairs.pop_front();
    const MPoly& f = res.basis[i];
    const MPoly& g = res.basis[j];
    if (options.use_product_criterion &&
        Monomial::relatively_prime(f.leading_term(order).mono,
                                   g.leading_term(order).mono)) {
      ++res.pairs_skipped;
      GFA_COUNT("buchberger.pairs_skipped", 1);
      continue;
    }
    MPoly r = normal_form(spoly(f, g, order), res.basis, order, options.control);
    ++res.reductions;
    GFA_COUNT("buchberger.pairs_reduced", 1);
    res.max_terms_seen = std::max(res.max_terms_seen, r.num_terms());
    if (!r.is_zero()) {
      const std::size_t n = res.basis.size();
      for (std::size_t t = 0; t < n; ++t) pairs.emplace_back(t, n);
      GFA_COUNT("buchberger.pairs_generated", n);
      GFA_COUNT("buchberger.basis_added", 1);
      res.basis.push_back(std::move(r));
    }
    if ((options.max_basis_size && res.basis.size() > options.max_basis_size) ||
        (options.max_poly_terms && res.max_terms_seen > options.max_poly_terms) ||
        (options.max_reductions && res.reductions >= options.max_reductions)) {
      GFA_GAUGE_MAX("buchberger.max_poly_terms", res.max_terms_seen);
      return res;  // budget tripped; completed stays false
    }
  }
  res.completed = true;
  GFA_GAUGE_MAX("buchberger.max_poly_terms", res.max_terms_seen);
  return res;
}

std::vector<MPoly> reduce_basis(std::vector<MPoly> basis, const TermOrder& order) {
  // Drop polynomials whose leading monomial is divisible by another's.
  std::vector<MPoly> minimal;
  for (std::size_t i = 0; i < basis.size(); ++i) {
    if (basis[i].is_zero()) continue;
    const Monomial lm_i = basis[i].leading_term(order).mono;
    bool redundant = false;
    for (std::size_t j = 0; j < basis.size(); ++j) {
      if (i == j || basis[j].is_zero()) continue;
      const Monomial lm_j = basis[j].leading_term(order).mono;
      if (lm_j.divides(lm_i) && !(lm_i == lm_j && j > i)) {
        if (!(lm_i == lm_j) || j < i) {
          redundant = true;
          break;
        }
      }
    }
    if (!redundant) minimal.push_back(basis[i].monic(order));
  }
  // Fully reduce each polynomial against the others.
  std::vector<MPoly> reduced;
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    std::vector<MPoly> others;
    others.reserve(minimal.size() - 1);
    for (std::size_t j = 0; j < minimal.size(); ++j)
      if (j != i) others.push_back(minimal[j]);
    MPoly r = normal_form(minimal[i], others, order);
    if (!r.is_zero()) reduced.push_back(r.monic(order));
  }
  std::sort(reduced.begin(), reduced.end(), [&](const MPoly& a, const MPoly& b) {
    return order.greater(a.leading_term(order).mono, b.leading_term(order).mono);
  });
  return reduced;
}

std::vector<MPoly> elimination_subset(const std::vector<MPoly>& basis,
                                      const std::vector<VarId>& allowed) {
  std::vector<MPoly> out;
  for (const MPoly& g : basis) {
    bool ok = true;
    for (VarId v : g.variables()) {
      if (std::find(allowed.begin(), allowed.end(), v) == allowed.end()) {
        ok = false;
        break;
      }
    }
    if (ok && !g.is_zero()) out.push_back(g);
  }
  return out;
}

std::vector<MPoly> vanishing_polynomials(const Gf2k* field, const VarPool& pool,
                                         const std::vector<VarId>& vars) {
  std::vector<MPoly> out;
  out.reserve(vars.size());
  for (VarId v : vars) {
    MPoly p(field);
    const BigUint q = pool.kind(v) == VarKind::kBit ? BigUint(2) : field->order();
    p.add_term(Monomial(v, q), field->one());
    p.add_term(Monomial(v, BigUint(1)), field->one());
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace gfa
