#include "poly/varpool.h"

#include <cassert>

namespace gfa {

VarId VarPool::intern(std::string_view name, VarKind kind) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    assert(kinds_[it->second] == kind && "variable re-interned with different kind");
    return it->second;
  }
  const VarId v = static_cast<VarId>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  index_.emplace(names_.back(), v);
  return v;
}

VarId VarPool::id(std::string_view name) const {
  auto it = index_.find(std::string(name));
  assert(it != index_.end() && "unknown variable");
  return it->second;
}

bool VarPool::contains(std::string_view name) const {
  return index_.find(std::string(name)) != index_.end();
}

}  // namespace gfa
