#pragma once
// Sparse monomials with arbitrary-precision exponents, and term orders.
//
// A Monomial is a power product x_{v1}^{e1} · … · x_{vt}^{et}, stored as
// (VarId, BigUint) pairs sorted by VarId. Exponents are BigUint because
// canonical word-level monomials over F_{2^k} carry degrees up to 2^k - 1.
//
// Term orders compare monomials under a *variable priority*: a permutation of
// the variables where earlier (lower rank) means "larger" variable. The
// paper's abstraction term order (Definition 4.2) and its RATO refinement
// (Definition 5.1) are both lex orders with specific priorities: circuit
// variables (reverse-topologically ranked for RATO) > Z > word inputs.

#include <functional>
#include <string>
#include <vector>

#include "gf/biguint.h"
#include "poly/varpool.h"

namespace gfa {

class Monomial {
 public:
  /// The monomial 1.
  Monomial() = default;

  /// Single-variable monomial v^e (e may be zero, yielding 1).
  Monomial(VarId v, BigUint e);

  /// From (var, exp) pairs in any order; exponents of repeated vars add.
  static Monomial from_pairs(std::vector<std::pair<VarId, BigUint>> pairs);

  bool is_one() const { return factors_.empty(); }

  /// Exponent of variable v (zero if absent).
  const BigUint& exponent(VarId v) const;

  /// Total degree (sum of exponents).
  BigUint total_degree() const;

  std::size_t num_vars() const { return factors_.size(); }
  const std::vector<std::pair<VarId, BigUint>>& factors() const { return factors_; }

  Monomial operator*(const Monomial& rhs) const;

  /// True iff this monomial divides rhs.
  bool divides(const Monomial& rhs) const;

  /// rhs / *this; requires divides(rhs).
  Monomial divide_into(const Monomial& rhs) const;

  static Monomial lcm(const Monomial& a, const Monomial& b);

  /// gcd(a, b) == 1, i.e. disjoint variable support — Buchberger's product
  /// criterion test (Lemma 5.1 of the paper).
  static bool relatively_prime(const Monomial& a, const Monomial& b);

  /// Canonical (order-independent) comparison for use as container keys.
  std::strong_ordering operator<=>(const Monomial& rhs) const;
  bool operator==(const Monomial& rhs) const = default;

  std::size_t hash() const;

  std::string to_string(const VarPool& pool) const;

 private:
  void canonicalize();
  std::vector<std::pair<VarId, BigUint>> factors_;  // sorted by VarId, exps > 0
};

struct MonomialHash {
  std::size_t operator()(const Monomial& m) const { return m.hash(); }
};

/// A term order over monomials. Rank is a permutation value per variable:
/// rank 0 is the *largest* variable. Variables absent from the rank table are
/// ranked after all ranked ones, by ascending VarId.
class TermOrder {
 public:
  enum class Type { kLex, kGrLex };

  TermOrder(Type type, std::vector<VarId> priority_high_to_low);

  /// Lex order with variables prioritized by ascending VarId (x0 > x1 > ...).
  static TermOrder lex_by_id(std::size_t num_vars);

  Type type() const { return type_; }

  /// Three-way compare: positive if a > b under this order.
  int compare(const Monomial& a, const Monomial& b) const;

  bool greater(const Monomial& a, const Monomial& b) const { return compare(a, b) > 0; }

  std::size_t rank(VarId v) const;

 private:
  Type type_;
  std::vector<std::size_t> rank_;  // indexed by VarId; SIZE_MAX = unranked
};

}  // namespace gfa
