#pragma once
// Sparse multivariate polynomials over F_{2^k}, with multivariate division.
//
// This is the general ("textbook") engine of the paper's §3.1: it carries
// arbitrary monomials under arbitrary term orders and implements the division
// algorithm f ->_F r. It powers the worked examples, the small-field
// cross-checks, the hierarchical word-level composition, and the unguided
// full-Gröbner-basis baseline. The abstraction hot path uses the specialized
// multilinear engine in src/abstraction/bitpoly.h instead.
//
// Terms are kept in a std::map under the canonical (order-independent)
// monomial comparison; leading terms w.r.t. a TermOrder are found by scan.
// Polynomials at this layer stay small, so clarity beats asymptotics.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gf/gf2k.h"
#include "poly/monomial.h"
#include "poly/varpool.h"
#include "util/exec_control.h"

namespace gfa {

class MPoly {
 public:
  using Elem = Gf2k::Elem;
  struct Term {
    Monomial mono;
    Elem coeff;
  };

  /// Placeholder polynomial with no ring attached: only assignment (from a
  /// real MPoly) and is_zero() are meaningful. Exists so result structs can
  /// be built field-first and filled in.
  MPoly() : field_(nullptr) {}

  /// Zero polynomial in the given field's ring.
  explicit MPoly(const Gf2k* field) : field_(field) {}

  static MPoly constant(const Gf2k* field, Elem c);
  static MPoly variable(const Gf2k* field, VarId v);
  static MPoly term(const Gf2k* field, Elem c, Monomial m);

  const Gf2k& field() const { return *field_; }

  bool is_zero() const { return terms_.empty(); }
  std::size_t num_terms() const { return terms_.size(); }

  /// Coefficient of a monomial (zero if absent).
  Elem coeff(const Monomial& m) const;

  /// Adds c * m into the polynomial (cancels if the sum is zero).
  void add_term(const Monomial& m, const Elem& c);

  MPoly operator+(const MPoly& rhs) const;
  MPoly& operator+=(const MPoly& rhs);
  MPoly operator*(const MPoly& rhs) const;

  /// Product with a single term.
  MPoly mul_term(const Elem& c, const Monomial& m) const;

  /// Scales every coefficient by c.
  MPoly scaled(const Elem& c) const;

  /// Leading term under the order (polynomial must be non-zero).
  Term leading_term(const TermOrder& order) const;

  /// Divides every coefficient by the leading coefficient.
  MPoly monic(const TermOrder& order) const;

  /// Reduces exponents by the vanishing ideal: bit variables x^e -> x (e>=1),
  /// word variables X^e -> X^{((e-1) mod (q-1)) + 1}. This maps a polynomial
  /// to the canonical representative of the same *function* on F_q points.
  MPoly normalized_vanishing(const VarPool& pool) const;

  /// Substitutes `v` by `replacement` (exponentiation by square-and-multiply;
  /// each partial product is vanishing-normalized to keep degrees canonical).
  MPoly substituted(VarId v, const MPoly& replacement, const VarPool& pool) const;

  /// Evaluates at a point; `point` maps every variable occurring in the
  /// polynomial to a field element.
  Elem eval(const std::function<Elem(VarId)>& point) const;

  /// True iff any term mentions variable v.
  bool mentions(VarId v) const;

  /// All variables occurring in the polynomial (sorted, unique).
  std::vector<VarId> variables() const;

  const std::map<Monomial, Elem>& terms() const { return terms_; }

  bool operator==(const MPoly& rhs) const { return terms_ == rhs.terms_; }

  /// Rendering with terms sorted descending by `order` (or canonical order if
  /// omitted), e.g. "Z + (α+1)*A*B".
  std::string to_string(const VarPool& pool) const;
  std::string to_string(const VarPool& pool, const TermOrder& order) const;

 private:
  const Gf2k* field_;
  std::map<Monomial, Elem> terms_;
};

/// One step chain of the division algorithm: the remainder of f divided by the
/// set F under `order` (f ->_F+ r); no term of r is divisible by any lm(f_i).
/// `control` is polled periodically; expiry unwinds via StatusError.
MPoly normal_form(const MPoly& f, const std::vector<MPoly>& basis,
                  const TermOrder& order, const ExecControl* control = nullptr);

/// S-polynomial Spoly(f, g) = (L / lt(f))·f - (L / lt(g))·g, L = lcm of the
/// leading monomials. Over characteristic 2 the minus is a plus.
MPoly spoly(const MPoly& f, const MPoly& g, const TermOrder& order);

}  // namespace gfa
