#include "poly/monomial.h"

#include <algorithm>
#include <cassert>

namespace gfa {

namespace {
const BigUint kZero{};
}

Monomial::Monomial(VarId v, BigUint e) {
  if (!e.is_zero()) factors_.emplace_back(v, std::move(e));
}

Monomial Monomial::from_pairs(std::vector<std::pair<VarId, BigUint>> pairs) {
  Monomial m;
  m.factors_ = std::move(pairs);
  m.canonicalize();
  return m;
}

void Monomial::canonicalize() {
  std::sort(factors_.begin(), factors_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<VarId, BigUint>> out;
  out.reserve(factors_.size());
  for (auto& f : factors_) {
    if (!out.empty() && out.back().first == f.first)
      out.back().second += f.second;
    else
      out.push_back(std::move(f));
  }
  std::erase_if(out, [](const auto& f) { return f.second.is_zero(); });
  factors_ = std::move(out);
}

const BigUint& Monomial::exponent(VarId v) const {
  auto it = std::lower_bound(
      factors_.begin(), factors_.end(), v,
      [](const auto& f, VarId x) { return f.first < x; });
  if (it != factors_.end() && it->first == v) return it->second;
  return kZero;
}

BigUint Monomial::total_degree() const {
  BigUint d;
  for (const auto& [v, e] : factors_) d += e;
  return d;
}

Monomial Monomial::operator*(const Monomial& rhs) const {
  Monomial out;
  out.factors_.reserve(factors_.size() + rhs.factors_.size());
  auto i = factors_.begin();
  auto j = rhs.factors_.begin();
  while (i != factors_.end() || j != rhs.factors_.end()) {
    if (j == rhs.factors_.end() || (i != factors_.end() && i->first < j->first)) {
      out.factors_.push_back(*i++);
    } else if (i == factors_.end() || j->first < i->first) {
      out.factors_.push_back(*j++);
    } else {
      out.factors_.emplace_back(i->first, i->second + j->second);
      ++i;
      ++j;
    }
  }
  return out;
}

bool Monomial::divides(const Monomial& rhs) const {
  for (const auto& [v, e] : factors_) {
    if (rhs.exponent(v) < e) return false;
  }
  return true;
}

Monomial Monomial::divide_into(const Monomial& rhs) const {
  assert(divides(rhs));
  Monomial out;
  auto i = factors_.begin();
  for (const auto& [v, e] : rhs.factors_) {
    while (i != factors_.end() && i->first < v) ++i;  // cannot happen if divides
    if (i != factors_.end() && i->first == v) {
      BigUint diff = e - i->second;
      if (!diff.is_zero()) out.factors_.emplace_back(v, std::move(diff));
      ++i;
    } else {
      out.factors_.emplace_back(v, e);
    }
  }
  return out;
}

Monomial Monomial::lcm(const Monomial& a, const Monomial& b) {
  Monomial out;
  auto i = a.factors_.begin();
  auto j = b.factors_.begin();
  while (i != a.factors_.end() || j != b.factors_.end()) {
    if (j == b.factors_.end() || (i != a.factors_.end() && i->first < j->first)) {
      out.factors_.push_back(*i++);
    } else if (i == a.factors_.end() || j->first < i->first) {
      out.factors_.push_back(*j++);
    } else {
      out.factors_.emplace_back(i->first, std::max(i->second, j->second));
      ++i;
      ++j;
    }
  }
  return out;
}

bool Monomial::relatively_prime(const Monomial& a, const Monomial& b) {
  auto i = a.factors_.begin();
  auto j = b.factors_.begin();
  while (i != a.factors_.end() && j != b.factors_.end()) {
    if (i->first == j->first) return false;
    if (i->first < j->first)
      ++i;
    else
      ++j;
  }
  return true;
}

std::strong_ordering Monomial::operator<=>(const Monomial& rhs) const {
  const std::size_t n = std::min(factors_.size(), rhs.factors_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (auto c = factors_[i].first <=> rhs.factors_[i].first; c != 0) return c;
    if (auto c = factors_[i].second <=> rhs.factors_[i].second; c != 0) return c;
  }
  return factors_.size() <=> rhs.factors_.size();
}

std::size_t Monomial::hash() const {
  std::size_t h = 14695981039346656037ull;
  for (const auto& [v, e] : factors_) {
    h ^= v;
    h *= 1099511628211ull;
    h ^= e.hash();
    h *= 1099511628211ull;
  }
  return h;
}

std::string Monomial::to_string(const VarPool& pool) const {
  if (is_one()) return "1";
  std::string out;
  for (const auto& [v, e] : factors_) {
    if (!out.empty()) out += "*";
    out += pool.name(v);
    if (!e.is_one()) out += "^" + e.to_string();
  }
  return out;
}

TermOrder::TermOrder(Type type, std::vector<VarId> priority_high_to_low)
    : type_(type) {
  for (std::size_t i = 0; i < priority_high_to_low.size(); ++i) {
    const VarId v = priority_high_to_low[i];
    if (v >= rank_.size()) rank_.resize(v + 1, SIZE_MAX);
    rank_[v] = i;
  }
}

TermOrder TermOrder::lex_by_id(std::size_t num_vars) {
  std::vector<VarId> prio(num_vars);
  for (std::size_t i = 0; i < num_vars; ++i) prio[i] = static_cast<VarId>(i);
  return TermOrder(Type::kLex, std::move(prio));
}

std::size_t TermOrder::rank(VarId v) const {
  if (v < rank_.size() && rank_[v] != SIZE_MAX) return rank_[v];
  // Unranked variables come after all ranked ones, ordered by id.
  return rank_.size() + v;
}

int TermOrder::compare(const Monomial& a, const Monomial& b) const {
  if (type_ == Type::kGrLex) {
    const BigUint da = a.total_degree();
    const BigUint db = b.total_degree();
    if (auto c = da <=> db; c != 0) return c > 0 ? 1 : -1;
  }
  // Lex under priority: walk both factor lists in increasing rank.
  std::vector<std::pair<std::size_t, const BigUint*>> fa, fb;
  fa.reserve(a.factors().size());
  fb.reserve(b.factors().size());
  for (const auto& [v, e] : a.factors()) fa.emplace_back(rank(v), &e);
  for (const auto& [v, e] : b.factors()) fb.emplace_back(rank(v), &e);
  auto by_rank = [](const auto& x, const auto& y) { return x.first < y.first; };
  std::sort(fa.begin(), fa.end(), by_rank);
  std::sort(fb.begin(), fb.end(), by_rank);
  auto i = fa.begin();
  auto j = fb.begin();
  while (i != fa.end() || j != fb.end()) {
    // The variable of smaller rank that one side has and the other lacks makes
    // that side larger (it has a positive exponent on a higher variable).
    if (j == fb.end() || (i != fa.end() && i->first < j->first)) return 1;
    if (i == fa.end() || j->first < i->first) return -1;
    if (auto c = *i->second <=> *j->second; c != 0) return c > 0 ? 1 : -1;
    ++i;
    ++j;
  }
  return 0;
}

}  // namespace gfa
