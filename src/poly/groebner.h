#pragma once
// Buchberger's algorithm (paper Algorithm 1), reduced Gröbner bases, and
// elimination-ideal helpers.
//
// Used for the worked examples, small-field cross-validation of the
// abstraction engine, and the "full Gröbner basis with an elimination order"
// baseline whose blow-up (paper §6: SINGULAR slimgb infeasible beyond 32-bit
// circuits) motivates the RATO-guided approach.

#include <cstddef>
#include <vector>

#include "poly/mpoly.h"

namespace gfa {

struct BuchbergerOptions {
  /// Apply the product criterion (Lemma 5.1): skip pairs whose leading
  /// monomials are relatively prime.
  bool use_product_criterion = true;
  /// Abort when the basis grows past this many polynomials (0 = unlimited).
  std::size_t max_basis_size = 0;
  /// Abort when any single polynomial exceeds this many terms (0 = unlimited).
  std::size_t max_poly_terms = 0;
  /// Abort after this many S-polynomial reductions (0 = unlimited).
  std::size_t max_reductions = 0;
  /// Deadline/cancellation checkpointed per critical pair and inside every
  /// normal-form division; expiry unwinds via StatusError (the budgets above
  /// instead end the run gracefully with completed = false).
  const ExecControl* control = nullptr;
};

struct BuchbergerResult {
  std::vector<MPoly> basis;
  bool completed = false;          // false when a budget tripped
  std::size_t reductions = 0;      // S-poly reductions performed
  std::size_t pairs_skipped = 0;   // pairs discarded by the product criterion
  std::size_t max_terms_seen = 0;  // largest intermediate polynomial
};

/// Computes a Gröbner basis of <generators> under `order`.
BuchbergerResult buchberger(std::vector<MPoly> generators, const TermOrder& order,
                            const BuchbergerOptions& options = {});

/// Interreduces a Gröbner basis into the reduced Gröbner basis: every
/// polynomial is monic and no term of any polynomial is divisible by the
/// leading monomial of another.
std::vector<MPoly> reduce_basis(std::vector<MPoly> basis, const TermOrder& order);

/// The subset of G lying in F_q[allowed] — with G a Gröbner basis under an
/// elimination order this is a Gröbner basis of the elimination ideal
/// (Theorem 4.1 of the paper).
std::vector<MPoly> elimination_subset(const std::vector<MPoly>& basis,
                                      const std::vector<VarId>& allowed);

/// The vanishing polynomials of J_0 for the given variables: x^2 + x for bit
/// variables and X^q + X for word variables (char 2: minus = plus).
std::vector<MPoly> vanishing_polynomials(const Gf2k* field, const VarPool& pool,
                                         const std::vector<VarId>& vars);

}  // namespace gfa
