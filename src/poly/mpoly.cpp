#include "poly/mpoly.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace gfa {

MPoly MPoly::constant(const Gf2k* field, Elem c) {
  MPoly p(field);
  p.add_term(Monomial(), c);
  return p;
}

MPoly MPoly::variable(const Gf2k* field, VarId v) {
  MPoly p(field);
  p.add_term(Monomial(v, BigUint(1)), field->one());
  return p;
}

MPoly MPoly::term(const Gf2k* field, Elem c, Monomial m) {
  MPoly p(field);
  p.add_term(m, c);
  return p;
}

MPoly::Elem MPoly::coeff(const Monomial& m) const {
  auto it = terms_.find(m);
  return it == terms_.end() ? field_->zero() : it->second;
}

void MPoly::add_term(const Monomial& m, const Elem& c) {
  if (c.is_zero()) return;
  auto [it, inserted] = terms_.emplace(m, c);
  if (!inserted) {
    it->second = field_->add(it->second, c);
    if (it->second.is_zero()) terms_.erase(it);
  }
}

MPoly MPoly::operator+(const MPoly& rhs) const {
  MPoly out = *this;
  out += rhs;
  return out;
}

MPoly& MPoly::operator+=(const MPoly& rhs) {
  for (const auto& [m, c] : rhs.terms_) add_term(m, c);
  return *this;
}

MPoly MPoly::operator*(const MPoly& rhs) const {
  MPoly out(field_);
  for (const auto& [ma, ca] : terms_)
    for (const auto& [mb, cb] : rhs.terms_)
      out.add_term(ma * mb, field_->mul(ca, cb));
  return out;
}

MPoly MPoly::mul_term(const Elem& c, const Monomial& m) const {
  MPoly out(field_);
  if (c.is_zero()) return out;
  for (const auto& [mt, ct] : terms_) out.add_term(mt * m, field_->mul(ct, c));
  return out;
}

MPoly MPoly::scaled(const Elem& c) const { return mul_term(c, Monomial()); }

MPoly::Term MPoly::leading_term(const TermOrder& order) const {
  assert(!is_zero() && "leading term of zero polynomial");
  auto best = terms_.begin();
  for (auto it = std::next(terms_.begin()); it != terms_.end(); ++it) {
    if (order.greater(it->first, best->first)) best = it;
  }
  return {best->first, best->second};
}

MPoly MPoly::monic(const TermOrder& order) const {
  if (is_zero()) return *this;
  const Elem lc = leading_term(order).coeff;
  if (lc.is_one()) return *this;
  return scaled(field_->inv(lc));
}

MPoly MPoly::normalized_vanishing(const VarPool& pool) const {
  MPoly out(field_);
  for (const auto& [m, c] : terms_) {
    std::vector<std::pair<VarId, BigUint>> pairs;
    pairs.reserve(m.factors().size());
    for (const auto& [v, e] : m.factors()) {
      if (pool.kind(v) == VarKind::kBit) {
        pairs.emplace_back(v, BigUint(1));  // x^e = x for e >= 1 on {0,1}
      } else {
        pairs.emplace_back(v, field_->reduce_exponent(e));
      }
    }
    out.add_term(Monomial::from_pairs(std::move(pairs)), c);
  }
  return out;
}

MPoly MPoly::substituted(VarId v, const MPoly& replacement,
                         const VarPool& pool) const {
  // Cache powers of the replacement keyed by exponent to avoid recomputation
  // across terms; exponentiate by square-and-multiply over the BigUint bits.
  auto pow_of = [&](const BigUint& e) {
    MPoly result = MPoly::constant(field_, field_->one());
    MPoly base = replacement;
    const int bits = e.bit_length();
    for (int i = bits; i >= 0; --i) {
      result = (result * result).normalized_vanishing(pool);
      if (e.bit(static_cast<unsigned>(i)))
        result = (result * base).normalized_vanishing(pool);
    }
    return result;
  };
  MPoly out(field_);
  for (const auto& [m, c] : terms_) {
    const BigUint& e = m.exponent(v);
    if (e.is_zero()) {
      out.add_term(m, c);
      continue;
    }
    std::vector<std::pair<VarId, BigUint>> rest;
    for (const auto& [w, ew] : m.factors())
      if (w != v) rest.emplace_back(w, ew);
    MPoly expanded =
        pow_of(e).mul_term(c, Monomial::from_pairs(std::move(rest)));
    out += expanded;
  }
  return out.normalized_vanishing(pool);
}

MPoly::Elem MPoly::eval(const std::function<Elem(VarId)>& point) const {
  Elem sum = field_->zero();
  for (const auto& [m, c] : terms_) {
    Elem prod = c;
    for (const auto& [v, e] : m.factors())
      prod = field_->mul(prod, field_->pow(point(v), e));
    sum = field_->add(sum, prod);
  }
  return sum;
}

bool MPoly::mentions(VarId v) const {
  for (const auto& [m, c] : terms_) {
    if (!m.exponent(v).is_zero()) return true;
  }
  return false;
}

std::vector<VarId> MPoly::variables() const {
  std::vector<VarId> vars;
  for (const auto& [m, c] : terms_)
    for (const auto& [v, e] : m.factors()) vars.push_back(v);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

namespace {

std::string term_to_string(const Gf2k& field, const VarPool& pool,
                           const Monomial& m, const Gf2k::Elem& c) {
  const bool coeff_is_sum = c.weight() > 1;
  std::string cs = field.to_string(c);
  if (m.is_one()) return coeff_is_sum ? "(" + cs + ")" : cs;
  std::string ms = m.to_string(pool);
  if (c.is_one()) return ms;
  if (coeff_is_sum) cs = "(" + cs + ")";
  return cs + "*" + ms;
}

}  // namespace

std::string MPoly::to_string(const VarPool& pool) const {
  return to_string(pool, TermOrder::lex_by_id(pool.size()));
}

std::string MPoly::to_string(const VarPool& pool, const TermOrder& order) const {
  if (is_zero()) return "0";
  std::vector<const std::pair<const Monomial, Elem>*> sorted;
  sorted.reserve(terms_.size());
  for (const auto& t : terms_) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(), [&](const auto* a, const auto* b) {
    return order.greater(a->first, b->first);
  });
  std::string out;
  for (const auto* t : sorted) {
    if (!out.empty()) out += " + ";
    out += term_to_string(*field_, pool, t->first, t->second);
  }
  return out;
}

MPoly normal_form(const MPoly& f, const std::vector<MPoly>& basis,
                  const TermOrder& order, const ExecControl* control) {
  // Leading terms of the basis are fixed throughout the division; compute
  // them (and the inverses of their coefficients) once instead of rescanning
  // every divisor on every reduction step.
  struct Divisor {
    const MPoly* g;
    Monomial lm;
    Gf2k::Elem inv_lc;
  };
  std::vector<Divisor> divisors;
  divisors.reserve(basis.size());
  for (const MPoly& g : basis) {
    if (g.is_zero()) continue;
    MPoly::Term lt = g.leading_term(order);
    divisors.push_back(
        {&g, std::move(lt.mono), f.field().inv(lt.coeff)});
  }

  // Keep the working polynomial in a map sorted descending by the term
  // order: the leading term is begin() (O(log n)) rather than a full scan,
  // which kept the whole division quadratic in the number of terms.
  auto greater = [&order](const Monomial& a, const Monomial& b) {
    return order.greater(a, b);
  };
  std::map<Monomial, Gf2k::Elem, decltype(greater)> work(greater);
  for (const auto& [m, c] : f.terms()) work.emplace(m, c);

  MPoly r(&f.field());
  const bool measured = obs::metrics_enabled();
  std::size_t peak_terms = work.size();
  std::size_t steps = 0;
  // Memory accounting rides the existing checkpoint cadence: the working
  // map is the structure that explodes on non-RATO orders, so its size —
  // times a per-node estimate — is what the budget bounds.
  BudgetLease lease(budget_of(control), BudgetSite::kMpolyTerms);
  lease.set_bytes(work.size() * kMPolyTermBytes);
  while (!work.empty()) {
    if ((++steps & 63u) == 0) {
      throw_if_stopped(control);
      lease.set_bytes(work.size() * kMPolyTermBytes);
    }
    if (measured) peak_terms = std::max(peak_terms, work.size());
    const auto head = work.begin();
    const Monomial mono = head->first;
    const Gf2k::Elem coeff = head->second;
    work.erase(head);
    const Divisor* hit = nullptr;
    for (const Divisor& d : divisors) {
      if (d.lm.divides(mono)) {
        hit = &d;
        break;
      }
    }
    if (hit == nullptr) {
      r.add_term(mono, coeff);
      continue;
    }
    // p -= (lt(p) / lm(g)) * g ; over char 2, minus is plus. The leading
    // term of the product cancels `mono` exactly, so only the divisor's
    // trailing terms enter the working map (all smaller under the order).
    const Monomial q = hit->lm.divide_into(mono);
    const Gf2k::Elem c = f.field().mul(coeff, hit->inv_lc);
    for (const auto& [gm, gc] : hit->g->terms()) {
      if (gm == hit->lm) continue;
      auto [it, inserted] = work.emplace(gm * q, f.field().mul(c, gc));
      if (!inserted) {
        it->second = f.field().add(it->second, f.field().mul(c, gc));
        if (it->second.is_zero()) work.erase(it);
      }
    }
  }
  GFA_COUNT("normal_form.calls", 1);
  GFA_COUNT("reduction_steps", steps);
  GFA_GAUGE_MAX("normal_form.peak_terms", peak_terms);
  return r;
}

MPoly spoly(const MPoly& f, const MPoly& g, const TermOrder& order) {
  assert(!f.is_zero() && !g.is_zero());
  const MPoly::Term ltf = f.leading_term(order);
  const MPoly::Term ltg = g.leading_term(order);
  const Monomial l = Monomial::lcm(ltf.mono, ltg.mono);
  const Gf2k& field = f.field();
  MPoly a = f.mul_term(field.inv(ltf.coeff), ltf.mono.divide_into(l));
  MPoly b = g.mul_term(field.inv(ltg.coeff), ltg.mono.divide_into(l));
  return a + b;  // char 2: a - b == a + b
}

}  // namespace gfa
