#pragma once
// Variable registry for the multivariate polynomial ring.
//
// The abstraction works in the mixed ring F_{2^k}[x_1, …, x_d, Z, A, …]: the
// x_i are *bit-level* circuit signals (subject to the vanishing polynomial
// x² - x), the Z/A/… are *word-level* variables (subject to X^q - X). The pool
// interns names, assigns dense ids, and records which kind each variable is so
// polynomial normalization can apply the right vanishing rule.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gfa {

using VarId = std::uint32_t;

enum class VarKind : std::uint8_t {
  kBit,   // Boolean circuit signal; vanishing polynomial x^2 - x
  kWord,  // word-level F_{2^k} variable; vanishing polynomial X^q - X
};

class VarPool {
 public:
  /// Interns `name` with the given kind; returns the existing id if already
  /// present (the kind must then match).
  VarId intern(std::string_view name, VarKind kind);

  /// Id of an existing variable; aborts if absent.
  VarId id(std::string_view name) const;

  bool contains(std::string_view name) const;

  const std::string& name(VarId v) const { return names_.at(v); }
  VarKind kind(VarId v) const { return kinds_.at(v); }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<VarKind> kinds_;
  std::unordered_map<std::string, VarId> index_;
};

}  // namespace gfa
