#include "worker/protocol.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <unistd.h>

#include "util/json_reader.h"
#include "util/json_writer.h"

namespace gfa::worker {

namespace {

/// Shared JSON spellings: requests and responses use kebab-free snake_case
/// keys matching the RunOptions/EngineRun field names where one exists.

void write_attempt(JsonWriter& w, const engine::AttemptRecord& a) {
  w.begin_object();
  w.member("engine", a.engine);
  w.member("skipped", a.skipped);
  w.member("status", status_code_name(a.status.code()));
  w.member("message", a.status.ok() ? "" : a.status.message());
  w.member("verdict", engine::verdict_name(a.verdict));
  w.member("detail", a.detail);
  w.member("wall_ms", a.wall_ms);
  w.member("budget_peak_bytes",
           static_cast<std::uint64_t>(a.budget_peak_bytes));
  w.member("heartbeats", a.heartbeats);
  w.member("last_phase", a.last_phase);
  w.member("last_step", a.last_step);
  w.end_object();
}

Result<engine::AttemptRecord> read_attempt(const JsonValue& v) {
  engine::AttemptRecord a;
  a.engine = v.string_or("engine", "");
  a.skipped = v.bool_or("skipped", false);
  const Result<StatusCode> code =
      status_code_from_name(v.string_or("status", "kOk"));
  if (!code.ok()) return code.status();
  if (*code != StatusCode::kOk)
    a.status = Status::with_code(*code, v.string_or("message", ""));
  const Result<engine::Verdict> verdict =
      engine::verdict_from_name(v.string_or("verdict", "unknown"));
  if (!verdict.ok()) return verdict.status();
  a.verdict = *verdict;
  a.detail = v.string_or("detail", "");
  a.wall_ms = v.number_or("wall_ms", 0.0);
  a.budget_peak_bytes =
      static_cast<std::size_t>(v.u64_or("budget_peak_bytes", 0));
  a.heartbeats = v.u64_or("heartbeats", 0);
  a.last_phase = v.string_or("last_phase", "");
  a.last_step = v.u64_or("last_step", 0);
  return a;
}

}  // namespace

std::string encode_request(const WorkerRequest& req) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("spec_path", req.spec_path);
  w.member("impl_path", req.impl_path);
  w.member("k", req.k);
  w.member("engine", req.engine);
  w.member("timeout_seconds", req.timeout_seconds);
  w.member("sat_conflict_limit", req.sat_conflict_limit);
  w.member("bdd_node_limit", req.bdd_node_limit);
  w.member("max_terms", req.max_terms);
  w.member("gb_max_reductions", req.gb_max_reductions);
  w.member("gb_max_poly_terms", req.gb_max_poly_terms);
  w.member("memory_budget_bytes", req.memory_budget_bytes);
  w.member("attempt_timeout_seconds", req.attempt_timeout_seconds);
  w.key("portfolio_engines");
  w.begin_array();
  for (const std::string& name : req.portfolio_engines) w.value(name);
  w.end_array();
  w.member("portfolio_race", req.portfolio_race);
  w.member("checkpoint_dir", req.checkpoint_dir);
  w.member("checkpoint_interval", req.checkpoint_interval);
  w.member("checkpoint_resume", req.checkpoint_resume);
  w.member("simulate_crash", req.simulate_crash);
  w.member("simulate_hang", req.simulate_hang);
  w.member("heartbeat_interval_seconds", req.heartbeat_interval_seconds);
  w.member("stall_timeout_seconds", req.stall_timeout_seconds);
  w.member("trace", req.trace);
  w.member("export_canonical", req.export_canonical);
  w.member("certify", req.certify);
  w.end_object();
  return out.str();
}

Result<WorkerRequest> decode_request(std::string_view json) {
  Result<JsonValue> doc = parse_json(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object())
    return Status::invalid_argument("worker request is not a JSON object");
  WorkerRequest req;
  req.spec_path = doc->string_or("spec_path", "");
  req.impl_path = doc->string_or("impl_path", "");
  req.k = static_cast<unsigned>(doc->u64_or("k", 0));
  req.engine = doc->string_or("engine", "abstraction");
  req.timeout_seconds = doc->number_or("timeout_seconds", 0.0);
  req.sat_conflict_limit = doc->u64_or("sat_conflict_limit", 0);
  req.bdd_node_limit = doc->u64_or("bdd_node_limit", 0);
  req.max_terms = doc->u64_or("max_terms", 0);
  req.gb_max_reductions = doc->u64_or("gb_max_reductions", 0);
  req.gb_max_poly_terms = doc->u64_or("gb_max_poly_terms", 0);
  req.memory_budget_bytes = doc->u64_or("memory_budget_bytes", 0);
  req.attempt_timeout_seconds = doc->number_or("attempt_timeout_seconds", 0.0);
  if (const JsonValue* engines = doc->find("portfolio_engines");
      engines != nullptr && engines->is_array()) {
    for (const JsonValue& item : engines->items())
      if (item.is_string()) req.portfolio_engines.push_back(item.as_string());
  }
  req.portfolio_race = doc->bool_or("portfolio_race", false);
  req.checkpoint_dir = doc->string_or("checkpoint_dir", "");
  req.checkpoint_interval = doc->u64_or("checkpoint_interval", 0);
  req.checkpoint_resume = doc->bool_or("checkpoint_resume", false);
  req.simulate_crash = doc->bool_or("simulate_crash", false);
  req.simulate_hang = doc->bool_or("simulate_hang", false);
  req.heartbeat_interval_seconds =
      doc->number_or("heartbeat_interval_seconds", 1.0);
  req.stall_timeout_seconds = doc->number_or("stall_timeout_seconds", 0.0);
  req.trace = doc->bool_or("trace", false);
  req.export_canonical = doc->bool_or("export_canonical", false);
  req.certify = doc->bool_or("certify", false);
  if (req.spec_path.empty() || req.impl_path.empty())
    return Status::invalid_argument("worker request is missing circuit paths");
  if (req.k < 2)
    return Status::invalid_argument("worker request carries k < 2");
  return req;
}

std::string encode_response(const WorkerResponse& resp) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("status", status_code_name(resp.status.code()));
  w.member("message", resp.status.ok() ? "" : resp.status.message());
  w.member("verdict", engine::verdict_name(resp.verdict));
  w.member("detail", resp.detail);
  if (!resp.counterexample.empty()) {
    w.key("counterexample");
    w.begin_object();
    w.key("inputs");
    w.begin_object();
    for (const auto& [name, elem] : resp.counterexample.inputs)
      w.member(name, elem);
    w.end_object();
    w.member("output_word", resp.counterexample.output_word);
    w.member("expected", resp.counterexample.expected);
    w.member("actual", resp.counterexample.actual);
    w.member("replayed", resp.counterexample.replayed);
    w.end_object();
  }
  w.key("stats");
  w.begin_object();
  for (const auto& [key, value] : resp.stats) w.member(key, value);
  w.end_object();
  w.key("attempts");
  w.begin_array();
  for (const engine::AttemptRecord& a : resp.attempts) write_attempt(w, a);
  w.end_array();
  w.member("resumed", resp.resumed);
  w.member("wall_ms", resp.wall_ms);
  w.member("budget_limit_bytes", resp.budget_limit_bytes);
  w.member("budget_peak_bytes", resp.budget_peak_bytes);
  w.member("peak_rss_bytes", resp.peak_rss_bytes);
  if (!resp.canonical_spec.empty())
    w.member("canonical_spec", resp.canonical_spec);
  if (!resp.canonical_impl.empty())
    w.member("canonical_impl", resp.canonical_impl);
  w.end_object();
  return out.str();
}

Result<WorkerResponse> decode_response(std::string_view json) {
  Result<JsonValue> doc = parse_json(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object())
    return Status::invalid_argument("worker response is not a JSON object");
  WorkerResponse resp;
  const Result<StatusCode> code =
      status_code_from_name(doc->string_or("status", ""));
  if (!code.ok()) return code.status();
  if (*code != StatusCode::kOk)
    resp.status = Status::with_code(*code, doc->string_or("message", ""));
  const Result<engine::Verdict> verdict =
      engine::verdict_from_name(doc->string_or("verdict", "unknown"));
  if (!verdict.ok()) return verdict.status();
  resp.verdict = *verdict;
  resp.detail = doc->string_or("detail", "");
  if (const JsonValue* cx = doc->find("counterexample");
      cx != nullptr && cx->is_object()) {
    if (const JsonValue* inputs = cx->find("inputs");
        inputs != nullptr && inputs->is_object()) {
      for (const auto& [name, value] : inputs->members())
        if (value.is_string())
          resp.counterexample.inputs[name] = value.as_string();
    }
    resp.counterexample.output_word = cx->string_or("output_word", "");
    resp.counterexample.expected = cx->string_or("expected", "");
    resp.counterexample.actual = cx->string_or("actual", "");
    resp.counterexample.replayed = cx->bool_or("replayed", false);
  }
  if (const JsonValue* stats = doc->find("stats");
      stats != nullptr && stats->is_object()) {
    for (const auto& [key, value] : stats->members())
      if (value.is_number()) resp.stats[key] = value.as_number();
  }
  if (const JsonValue* attempts = doc->find("attempts");
      attempts != nullptr && attempts->is_array()) {
    for (const JsonValue& item : attempts->items()) {
      Result<engine::AttemptRecord> a = read_attempt(item);
      if (!a.ok()) return a.status();
      resp.attempts.push_back(std::move(*a));
    }
  }
  resp.resumed = doc->bool_or("resumed", false);
  resp.wall_ms = doc->number_or("wall_ms", 0.0);
  resp.budget_limit_bytes = doc->u64_or("budget_limit_bytes", 0);
  resp.budget_peak_bytes = doc->u64_or("budget_peak_bytes", 0);
  resp.peak_rss_bytes = doc->u64_or("peak_rss_bytes", 0);
  resp.canonical_spec = doc->string_or("canonical_spec", "");
  resp.canonical_impl = doc->string_or("canonical_impl", "");
  return resp;
}

FrameKind frame_kind(const JsonValue& doc) {
  if (!doc.is_object()) return FrameKind::kResponse;
  const std::string kind = doc.string_or("frame", "response");
  if (kind == "telemetry") return FrameKind::kTelemetry;
  if (kind == "trace") return FrameKind::kTrace;
  if (kind == "flight") return FrameKind::kFlight;
  return FrameKind::kResponse;
}

std::string encode_telemetry_frame(const TelemetryFrame& t) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("frame", "telemetry");
  w.member("seq", t.seq);
  w.member("phase", t.phase);
  w.member("step", t.step);
  w.member("total", t.total);
  w.member("terms", t.terms);
  w.member("budget_bytes", t.budget_bytes);
  w.member("rss_bytes", t.rss_bytes);
  w.key("metrics");
  w.begin_object();
  for (const auto& [name, value] : t.metrics) w.member(name, value);
  w.end_object();
  w.end_object();
  return out.str();
}

Result<TelemetryFrame> decode_telemetry_frame(const JsonValue& doc) {
  if (!doc.is_object())
    return Status::invalid_argument("telemetry frame is not a JSON object");
  TelemetryFrame t;
  t.seq = doc.u64_or("seq", 0);
  t.phase = doc.string_or("phase", "");
  t.step = doc.u64_or("step", 0);
  t.total = doc.u64_or("total", 0);
  t.terms = doc.u64_or("terms", 0);
  t.budget_bytes = doc.u64_or("budget_bytes", 0);
  t.rss_bytes = doc.u64_or("rss_bytes", 0);
  if (const JsonValue* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_object()) {
    for (const auto& [name, value] : metrics->members())
      if (value.is_number())
        t.metrics[name] = static_cast<std::uint64_t>(value.as_number());
  }
  return t;
}

std::string encode_trace_frame(const TraceFramePayload& t) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.member("frame", "trace");
  w.member("epoch_us", t.epoch_us);
  w.key("events");
  w.begin_array();
  for (const obs::TraceEvent& e : t.events) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.category);
    w.member("ts", e.start_us);
    w.member("dur", e.duration_us);
    w.member("tid", e.tid);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

Result<TraceFramePayload> decode_trace_frame(const JsonValue& doc) {
  if (!doc.is_object())
    return Status::invalid_argument("trace frame is not a JSON object");
  TraceFramePayload t;
  t.epoch_us = doc.u64_or("epoch_us", 0);
  if (const JsonValue* events = doc.find("events");
      events != nullptr && events->is_array()) {
    for (const JsonValue& item : events->items()) {
      if (!item.is_object()) continue;
      obs::TraceEvent e;
      e.name = item.string_or("name", "");
      e.category = obs::intern_category(item.string_or("cat", "worker"));
      e.start_us = item.u64_or("ts", 0);
      e.duration_us = item.u64_or("dur", 0);
      e.tid = static_cast<std::uint32_t>(item.u64_or("tid", 0));
      t.events.push_back(std::move(e));
    }
  }
  return t;
}

Result<std::vector<obs::flight::Event>> decode_flight_frame(
    const JsonValue& doc) {
  if (!doc.is_object())
    return Status::invalid_argument("flight frame is not a JSON object");
  std::vector<obs::flight::Event> out;
  if (const JsonValue* events = doc.find("events");
      events != nullptr && events->is_array()) {
    for (const JsonValue& item : events->items()) {
      if (!item.is_object()) continue;
      obs::flight::Event e;
      e.seq = item.u64_or("seq", 0);
      e.t_us = item.u64_or("t_us", 0);
      const std::string tag = item.string_or("tag", "");
      const std::size_t n =
          std::min(tag.size(), obs::flight::kTagBytes - 1);
      std::memcpy(e.tag, tag.data(), n);
      e.tag[n] = '\0';
      e.a = item.u64_or("a", 0);
      e.b = item.u64_or("b", 0);
      out.push_back(e);
    }
  }
  return out;
}

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    return Status::invalid_argument("frame payload exceeds 64 MiB");
  unsigned char header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<unsigned char>((len >> (8 * i)) & 0xFF);
  std::string buf(reinterpret_cast<const char*>(header), 4);
  buf.append(payload);
  // Short writes and signal interruptions are routine here: frames cross
  // pipes *and* sockets, SIGTERM-driven drain delivers signals mid-frame,
  // and a socket send buffer can fill under concurrent clients. Every such
  // partial transfer resumes at the current offset — only a real error or a
  // closed peer ends the loop, so an interrupted frame can never be garbled
  // into a spurious kWorkerCrashed.
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking (or send-buffer-full) fd: wait for writability, then
        // retry from the same offset. poll() failing with EINTR just loops.
        struct pollfd pfd {fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 100);
        continue;
      }
      if (errno == EPIPE)
        return Status::worker_crashed(
            "peer closed the pipe before the frame was written");
      return Status::internal(std::string("frame write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status();
}

namespace {

/// Reads exactly `n` bytes, polling against the deadline between reads.
Status read_exact(int fd, char* out, std::size_t n, const Deadline& deadline) {
  std::size_t off = 0;
  while (off < n) {
    if (!deadline.is_infinite()) {
      const double remaining = deadline.remaining_seconds();
      if (remaining <= 0) return Status::deadline_exceeded();
      struct pollfd pfd {fd, POLLIN, 0};
      const int timeout_ms =
          static_cast<int>(std::min(remaining * 1000.0, 2147483000.0)) + 1;
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Status::internal(std::string("poll failed: ") +
                                std::strerror(errno));
      }
      if (pr == 0) return Status::deadline_exceeded();
    }
    const ssize_t r = ::read(fd, out + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A non-blocking fd with no data yet: wait briefly for readability
        // and retry at the same offset (the deadline poll above governs
        // bounded reads; this covers the infinite-deadline path).
        struct pollfd pfd {fd, POLLIN, 0};
        (void)::poll(&pfd, 1, 100);
        continue;
      }
      return Status::internal(std::string("frame read failed: ") +
                              std::strerror(errno));
    }
    if (r == 0)
      return Status::worker_crashed(
          off == 0 ? "pipe closed before a frame arrived"
                   : "pipe closed mid-frame");
    off += static_cast<std::size_t>(r);
  }
  return Status();
}

}  // namespace

Result<std::string> read_frame(int fd, const Deadline& deadline) {
  char header[4];
  if (Status s = read_exact(fd, header, 4, deadline); !s.ok()) return s;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[i]))
           << (8 * i);
  if (len > kMaxFrameBytes)
    return Status::invalid_argument("frame length " + std::to_string(len) +
                                    " exceeds the 64 MiB cap (corrupt "
                                    "prefix?)");
  std::string payload(len, '\0');
  if (len > 0) {
    if (Status s = read_exact(fd, payload.data(), len, deadline); !s.ok())
      return s;
  }
  return payload;
}

}  // namespace gfa::worker
