#pragma once
// Retry policy for isolated worker runs.
//
// A crashed worker (kWorkerCrashed), an OOM-killed one surfacing as
// kResourceExhausted, or an unexpected internal error are all transient from
// the supervisor's point of view: the same request may well succeed on a
// clean re-fork — especially with a little more memory. This policy decides
// how many times to try, how long to sleep between attempts (exponential
// backoff with deterministic jitter, so test runs are reproducible given a
// seed), and whether to escalate the memory budget per retry.

#include <cstdint>

#include "util/status.h"

namespace gfa::worker {

struct RetryPolicy {
  /// Total attempts, including the first (1 = never retry). The CLI's
  /// --retries=N maps to max_attempts = N + 1.
  unsigned max_attempts = 1;
  /// Base backoff before the first retry; doubles per further retry.
  double backoff_seconds = 0.25;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;
  /// Seed for the deterministic jitter below. The same seed always yields
  /// the same delays, so tests never flake on timing.
  std::uint64_t jitter_seed = 0;
  /// Per-retry multiplier on the worker's memory budget (1.0 = none): a
  /// mem-killed attempt retries with budget * escalation, then * escalation²…
  double budget_escalation = 1.0;

  /// Sleep before attempt `attempt` (2-based: there is no delay before the
  /// first attempt). Exponential in the retry index, clamped to
  /// max_backoff_seconds, then scaled by a jitter factor in [0.75, 1.25)
  /// derived from jitter_seed and the attempt number (splitmix64).
  double delay_before_attempt(unsigned attempt) const;

  /// Codes worth re-forking for. Deterministic failures (bad arguments,
  /// parse errors, unsupported instances) and explicit stops (deadline,
  /// cancel) are not retried; kUnknown verdicts are Ok and never reach this.
  static bool retryable(StatusCode code);
};

}  // namespace gfa::worker
