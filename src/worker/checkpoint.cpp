#include "worker/checkpoint.h"

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/fault_inject.h"

namespace gfa::worker {

namespace {

constexpr char kMagic[8] = {'G', 'F', 'A', '_', 'C', 'K', 'P', 'T'};

/// Little-endian append helpers over a byte buffer; the buffer is the unit
/// the trailing CRC covers.
void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf += static_cast<char>((v >> (8 * i)) & 0xFF);
}

/// LEB128: 7 data bits per byte, high bit = continuation.
void put_varint(std::string& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  buf += static_cast<char>(v);
}

/// Bounded little-endian reads; `pos` advances, failure = past the end.
struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  bool read_u32(std::uint32_t& v) {
    if (pos + 4 > buf.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    pos += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (pos + 8 > buf.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    pos += 8;
    return true;
  }

  bool read_bytes(std::string& out, std::size_t n) {
    if (pos + n > buf.size()) return false;
    out.assign(buf, pos, n);
    pos += n;
    return true;
  }

  /// Rejects truncation and overlong (> 10 byte) encodings.
  bool read_varint(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      if (pos >= buf.size()) return false;
      const auto b = static_cast<unsigned char>(buf[pos++]);
      if (shift == 63 && (b & 0x7E) != 0) return false;  // overflows u64
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return true;
    }
    return false;
  }
};

Status damaged(const std::string& path, const std::string& why) {
  return Status::invalid_argument("checkpoint '" + path + "': " + why);
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  h = fnv1a_u64(h, s.size());
  return fnv1a(h, s.data(), s.size());
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t netlist_content_hash(const Netlist& netlist) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a_u64(h, netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Netlist::Gate& g = netlist.gate(n);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(g.type));
    h = fnv1a_str(h, g.name);
    h = fnv1a_u64(h, g.fanins.size());
    for (NetId f : g.fanins) h = fnv1a_u64(h, f);
  }
  h = fnv1a_u64(h, netlist.outputs().size());
  for (NetId n : netlist.outputs()) h = fnv1a_u64(h, n);
  h = fnv1a_u64(h, netlist.words().size());
  for (const Word& w : netlist.words()) {
    h = fnv1a_str(h, w.name);
    h = fnv1a_u64(h, w.bits.size());
    for (NetId b : w.bits) h = fnv1a_u64(h, b);
  }
  return h;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t circuit_hash,
                            const std::string& word) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(circuit_hash));
  std::string name = word;
  // Word names come from netlist files; keep the file name shell-safe.
  for (char& c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-'))
      c = '_';
  return dir + "/" + hex + "." + name + ".ckpt";
}

Status ensure_directory(const std::string& dir) {
  if (dir.empty())
    return Status::invalid_argument("directory path is empty");
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode))
      return Status::invalid_argument("'" + dir +
                                      "' exists but is not a directory");
  } else if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (errno == ENOENT || errno == ENOTDIR) {
      std::string parent = dir;
      if (const std::size_t slash = parent.find_last_of('/');
          slash != std::string::npos)
        parent.resize(slash == 0 ? 1 : slash);
      else
        parent = ".";
      return Status::invalid_argument(
          "cannot create directory '" + dir + "': parent '" + parent +
          "' does not exist or is not a directory");
    }
    return Status::invalid_argument("cannot create directory '" + dir +
                                    "': " + std::strerror(errno));
  }
  if (::access(dir.c_str(), W_OK | X_OK) != 0)
    return Status::invalid_argument("directory '" + dir +
                                    "' is not writable: " +
                                    std::strerror(errno));
  return Status();
}

Status save_checkpoint(const std::string& path, const ReductionCheckpoint& cp) {
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  put_u32(buf, kCheckpointVersion);
  put_u32(buf, cp.k);
  put_u64(buf, cp.circuit_hash);
  put_u32(buf, static_cast<std::uint32_t>(cp.word.size()));
  buf += cp.word;
  put_u64(buf, cp.step);
  put_u64(buf, cp.terms.size());
  for (const auto& [mono, coeff] : cp.terms) {
    // v3 term encoding: monomial ids are strictly increasing, so after the
    // first id only the (≥ 1) deltas are stored, as varints.
    put_varint(buf, mono.size());
    VarId prev = 0;
    bool first = true;
    for (VarId v : mono) {
      put_varint(buf, first ? v : v - prev);
      prev = v;
      first = false;
    }
    const std::vector<std::uint64_t>& words = coeff.words();
    put_varint(buf, words.size());
    for (std::uint64_t w : words) put_u64(buf, w);
  }
  std::uint32_t crc = crc32(buf.data(), buf.size());
  if (fault::consume("checkpoint:corrupt")) crc ^= 0xDEADBEEFu;
  put_u32(buf, crc);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::internal("cannot write checkpoint '" + tmp + "'");
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out.flush())
      return Status::internal("short write to checkpoint '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::internal("cannot rename checkpoint into '" + path + "'");
  }
  return Status();
}

Result<ReductionCheckpoint> load_checkpoint(const std::string& path) {
  std::string buf;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return damaged(path, "no checkpoint (cannot open)");
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    buf = std::move(data);
  }
  if (buf.size() < sizeof(kMagic) + 4 + 4)
    return damaged(path, "truncated (shorter than the header)");
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0)
    return damaged(path, "bad magic (not a checkpoint file)");
  // CRC covers everything except its own trailing 4 bytes.
  std::uint32_t stored_crc = 0;
  {
    Reader tail{buf, buf.size() - 4};
    tail.read_u32(stored_crc);
  }
  const std::uint32_t computed = crc32(buf.data(), buf.size() - 4);
  if (stored_crc != computed)
    return damaged(path, "CRC mismatch (file is corrupt or truncated)");

  Reader r{buf, sizeof(kMagic)};
  ReductionCheckpoint cp;
  std::uint32_t version = 0;
  if (!r.read_u32(version)) return damaged(path, "truncated version");
  if (version < kMinReadableCheckpointVersion || version > kCheckpointVersion)
    return damaged(path, "version skew (file v" + std::to_string(version) +
                             ", this build reads v" +
                             std::to_string(kMinReadableCheckpointVersion) +
                             "–v" + std::to_string(kCheckpointVersion) + ")");
  std::uint32_t word_len = 0;
  if (!r.read_u32(cp.k) || !r.read_u64(cp.circuit_hash) ||
      !r.read_u32(word_len) || !r.read_bytes(cp.word, word_len) ||
      !r.read_u64(cp.step))
    return damaged(path, "truncated header");
  std::uint64_t num_terms = 0;
  if (!r.read_u64(num_terms)) return damaged(path, "truncated term count");
  cp.terms.reserve(static_cast<std::size_t>(num_terms));
  std::vector<VarId> ids;
  for (std::uint64_t t = 0; t < num_terms; ++t) {
    std::uint64_t mono_len = 0;
    if (version == 2) {
      std::uint32_t len32 = 0;
      if (!r.read_u32(len32)) return damaged(path, "truncated monomial");
      mono_len = len32;
    } else if (!r.read_varint(mono_len)) {
      return damaged(path, "truncated monomial");
    }
    // A monomial longer than the remaining payload cannot be real; bail
    // before reserving absurd amounts for a corrupt length.
    if (mono_len > buf.size() - r.pos)
      return damaged(path, "monomial length exceeds the file");
    ids.clear();
    ids.reserve(static_cast<std::size_t>(mono_len));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < mono_len; ++i) {
      std::uint64_t v = 0;
      if (version == 2) {
        std::uint32_t v32 = 0;
        if (!r.read_u32(v32)) return damaged(path, "truncated monomial");
        v = v32;
      } else {
        std::uint64_t delta = 0;
        if (!r.read_varint(delta)) return damaged(path, "truncated monomial");
        if (i > 0 && delta == 0)
          return damaged(path, "monomial ids not strictly increasing");
        v = i == 0 ? delta : prev + delta;
      }
      if (i > 0 && v <= prev)
        return damaged(path, "monomial ids not strictly increasing");
      if (v > UINT32_MAX) return damaged(path, "monomial id out of range");
      ids.push_back(static_cast<VarId>(v));
      prev = v;
    }
    std::uint64_t num_words = 0;
    if (version == 2 ? !r.read_u64(num_words) : !r.read_varint(num_words))
      return damaged(path, "truncated coefficient");
    if (num_words > (buf.size() - r.pos) / 8 + 1)
      return damaged(path, "coefficient length exceeds the file");
    std::vector<std::uint64_t> words(static_cast<std::size_t>(num_words));
    for (std::uint64_t i = 0; i < num_words; ++i)
      if (!r.read_u64(words[i])) return damaged(path, "truncated coefficient");
    cp.terms.emplace_back(BitMono::from_sorted(ids.data(), ids.size()),
                          Gf2Poly::from_words(words.data(), words.size()));
  }
  if (r.pos != buf.size() - 4)
    return damaged(path, "trailing bytes after the last term");
  return cp;
}

void remove_checkpoint(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace gfa::worker
