#include "worker/retry.h"

#include <algorithm>

namespace gfa::worker {

namespace {

/// splitmix64: tiny, well-mixed, and stateless — ideal for turning
/// (seed, attempt) into a reproducible jitter factor.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::delay_before_attempt(unsigned attempt) const {
  if (attempt <= 1) return 0.0;
  double delay = backoff_seconds;
  for (unsigned i = 2; i < attempt; ++i) delay *= backoff_multiplier;
  delay = std::min(delay, max_backoff_seconds);
  const std::uint64_t bits = splitmix64(jitter_seed ^ (attempt * 0x9E37ull));
  const double frac =
      static_cast<double>(bits >> 11) / 9007199254740992.0;  // [0, 1)
  return delay * (0.75 + 0.5 * frac);
}

bool RetryPolicy::retryable(StatusCode code) {
  switch (code) {
    case StatusCode::kWorkerCrashed:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace gfa::worker
