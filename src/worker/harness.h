#pragma once
// Process-isolated engine execution with crash recovery.
//
// run_in_worker() forks a child, hands it a WorkerRequest over a pipe (see
// protocol.h), and supervises: the child applies hard setrlimit caps
// (RLIMIT_AS from the memory budget, RLIMIT_CPU from the deadline), resolves
// the engine from the registry, runs it, and streams the result back as one
// response frame. The parent classifies every way the child can end:
//
//   termination                    -> Status
//   -------------------------------------------------------------------
//   valid response frame              the response's own status
//   clean exit, no/garbled frame      kWorkerCrashed ("protocol corruption")
//   nonzero exit                      kWorkerCrashed (exit code in message)
//   SIGSEGV / SIGABRT / SIGKILL / …   kWorkerCrashed (signal in message)
//   SIGXCPU (RLIMIT_CPU tripped)      kDeadlineExceeded
//   wall-clock overrun                SIGTERM, grace, SIGKILL;
//                                     kDeadlineExceeded
//   silent past the stall timeout     kWorkerCrashed ("worker stalled...");
//                                     stats carries worker_stalled = 1
//
// kWorkerCrashed maps to exit code 71, so scripts can tell "the engine said
// not-equivalent" from "the engine process died".
//
// While a worker runs, the supervisor drains its telemetry frame stream
// (protocol.h): heartbeat/progress frames feed the stall detector and the
// (heartbeats, last_phase, last_step) triple on the run record, trace frames
// are re-stamped and merged into the parent's trace buffer, and a crash
// flight-recorder frame (dumped by the child's signal handler) becomes the
// report's "flight_recorder" event tail.
//
// run_isolated_with_retry() wraps run_in_worker() in a RetryPolicy: crashed
// (or mem-killed) attempts re-fork after an exponential backoff, optionally
// with an escalated memory budget, and every attempt is recorded in the
// returned EngineRun's attempts array — the JSON report shows the crash
// history next to the final verdict.

#include <functional>
#include <sys/types.h>

#include "engine/report.h"
#include "worker/protocol.h"
#include "worker/retry.h"

namespace gfa::worker {

struct WorkerConfig {
  /// Grace between SIGTERM and SIGKILL when the parent ends an overrunning
  /// or abandoned worker.
  double kill_grace_seconds = 2.0;
  /// RLIMIT_CPU slack added on top of the wall-clock timeout, so the
  /// cooperative deadline (which unwinds cleanly) fires first and SIGXCPU is
  /// the backstop for a compute loop that stopped polling.
  unsigned cpu_rlimit_slack_seconds = 5;
  /// RLIMIT_AS = memory_budget_bytes * this factor + a fixed base, leaving
  /// headroom for code, stacks, and allocator slack above the counted
  /// budget. The cooperative ResourceBudget still trips first in the common
  /// case; the rlimit catches what it cannot see. Skipped entirely under
  /// AddressSanitizer (shadow memory needs the full address space).
  double address_space_headroom = 8.0;
  /// Test hook, called in the parent right after fork() with the child pid —
  /// crash-recovery tests use it to SIGKILL the worker mid-run.
  std::function<void(pid_t)> on_spawn;
};

/// Runs one request in one freshly forked worker. The returned EngineRun
/// carries the response (engine name, status, verdict, stats, resumed flag)
/// or the supervisor's classification of the child's death; wall_ms is the
/// parent-observed wall clock. Consumes the "worker:crash" / "worker:hang"
/// fault sites parent-side before forking, so an armed site fires in exactly
/// one attempt even across retries.
engine::EngineRun run_in_worker(const WorkerRequest& request,
                                const WorkerConfig& config = {});

/// run_in_worker() under a RetryPolicy: retries retryable failures (worker
/// crashes, resource exhaustion, internal errors) up to policy.max_attempts
/// total attempts, sleeping policy.delay_before_attempt() between them and
/// multiplying the memory budget by policy.budget_escalation per retry. The
/// attempts array records every try; stats gains "worker_attempts".
engine::EngineRun run_isolated_with_retry(WorkerRequest request,
                                          const RetryPolicy& policy,
                                          const WorkerConfig& config = {});

/// The child side, exposed for the harness only: reads one request frame
/// from in_fd, runs it, writes one response frame to out_fd. Never returns —
/// _exit(0) on a delivered response, _exit(3) on a protocol error, _exit(4)
/// on an exception that escaped the engine boundary.
[[noreturn]] void worker_child_main(int in_fd, int out_fd,
                                    const WorkerConfig& config = {});

}  // namespace gfa::worker
