#include "worker/harness.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "circuit/parser.h"
#include "circuit/verilog.h"
#include "engine/registry.h"
#include "obs/log.h"
#include "util/fault_inject.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GFA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GFA_ASAN 1
#endif

namespace gfa::worker {

namespace {

/// A worker child dying mid-conversation must surface as a classified
/// Status, not kill the supervisor with SIGPIPE.
void ignore_sigpipe_once() {
  static std::once_flag flag;
  std::call_once(flag, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<Netlist> load_circuit(const std::string& path) {
  return has_suffix(path, ".v") ? try_read_verilog_file(path)
                                : try_read_netlist_file(path);
}

/// Hard caps applied inside the child, between the handshake and the run.
/// These are the last line of defense behind the cooperative budget and
/// deadline: a loop that stops polling still cannot outlive RLIMIT_CPU, and
/// an allocation path the byte accounting cannot see still hits RLIMIT_AS.
void apply_child_rlimits(const WorkerRequest& req,
                         const WorkerConfig& config) {
#if !defined(GFA_ASAN)
  if (req.memory_budget_bytes != 0) {
    // Headroom over the counted budget for code, stacks, and allocator
    // slack; the cooperative ResourceBudget is expected to trip first.
    const double want =
        static_cast<double>(req.memory_budget_bytes) *
            config.address_space_headroom +
        256.0 * 1024 * 1024;
    struct rlimit as_limit;
    as_limit.rlim_cur = static_cast<rlim_t>(
        std::min(want, 9.0e18));
    as_limit.rlim_max = as_limit.rlim_cur;
    (void)setrlimit(RLIMIT_AS, &as_limit);  // best effort
  }
#else
  (void)config;
#endif
  if (req.timeout_seconds > 0) {
    struct rlimit cpu_limit;
    cpu_limit.rlim_cur = static_cast<rlim_t>(req.timeout_seconds) + 1 +
                         config.cpu_rlimit_slack_seconds;
    cpu_limit.rlim_max = cpu_limit.rlim_cur + 5;
    (void)setrlimit(RLIMIT_CPU, &cpu_limit);
  }
}

engine::RunOptions run_options_of(const WorkerRequest& req) {
  engine::RunOptions options;
  if (req.timeout_seconds > 0)
    options.control.deadline = Deadline::after(req.timeout_seconds);
  options.sat_conflict_limit = req.sat_conflict_limit;
  options.bdd_node_limit = static_cast<std::size_t>(req.bdd_node_limit);
  options.max_terms = static_cast<std::size_t>(req.max_terms);
  options.gb_max_reductions = static_cast<std::size_t>(req.gb_max_reductions);
  options.gb_max_poly_terms = static_cast<std::size_t>(req.gb_max_poly_terms);
  options.memory_budget_bytes =
      static_cast<std::size_t>(req.memory_budget_bytes);
  options.attempt_timeout_seconds = req.attempt_timeout_seconds;
  options.portfolio_engines = req.portfolio_engines;
  options.portfolio_race = req.portfolio_race;
  options.checkpoint_dir = req.checkpoint_dir;
  options.checkpoint_interval = req.checkpoint_interval;
  options.checkpoint_resume = req.checkpoint_resume;
  return options;
}

/// The child's engine run, already flattened into a response.
WorkerResponse execute_request(const WorkerRequest& req) {
  WorkerResponse resp;
  const Result<Netlist> spec = load_circuit(req.spec_path);
  if (!spec.ok()) {
    resp.status = spec.status();
    return resp;
  }
  const Result<Netlist> impl = load_circuit(req.impl_path);
  if (!impl.ok()) {
    resp.status = impl.status();
    return resp;
  }
  const Result<Gf2k> field = Gf2k::try_make(req.k);
  if (!field.ok()) {
    resp.status = field.status();
    return resp;
  }
  const Result<const engine::EquivEngine*> eng =
      engine::EngineRegistry::global().require(req.engine);
  if (!eng.ok()) {
    resp.status = eng.status();
    return resp;
  }
  const engine::EngineRun run =
      engine::run_engine(**eng, *spec, *impl, *field, run_options_of(req));
  resp.status = run.status;
  resp.verdict = run.verdict;
  resp.detail = run.detail;
  resp.stats = run.stats;
  resp.attempts = run.attempts;
  resp.resumed = run.resumed;
  resp.wall_ms = run.wall_ms;
  resp.budget_limit_bytes = run.budget_limit_bytes;
  resp.budget_peak_bytes = run.budget_peak_bytes;
  return resp;
}

/// Reaps the child, escalating SIGTERM -> (grace) -> SIGKILL if it is still
/// alive. Returns the raw waitpid status.
int reap_child(pid_t pid, double grace_seconds) {
  int wstatus = 0;
  pid_t r = waitpid(pid, &wstatus, WNOHANG);
  if (r == pid) return wstatus;
  kill(pid, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(grace_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    r = waitpid(pid, &wstatus, WNOHANG);
    if (r == pid) return wstatus;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill(pid, SIGKILL);
  while (waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  return wstatus;
}

/// Maps the child's raw termination status to a supervisor Status; only
/// consulted when no valid response frame arrived.
Status classify_termination(int wstatus, const Status& read_status) {
  if (WIFEXITED(wstatus)) {
    const int code = WEXITSTATUS(wstatus);
    if (code == 0)
      return Status::worker_crashed(
          "worker exited cleanly without a valid response frame (protocol "
          "corruption: " +
          read_status.message() + ")");
    return Status::worker_crashed("worker exited with status " +
                                  std::to_string(code) +
                                  " without a response (" +
                                  read_status.message() + ")");
  }
  if (WIFSIGNALED(wstatus)) {
    const int sig = WTERMSIG(wstatus);
    if (sig == SIGXCPU)
      return Status::deadline_exceeded(
          "worker exceeded its CPU rlimit (SIGXCPU)");
    const char* name = strsignal(sig);
    return Status::worker_crashed(
        "worker killed by signal " + std::to_string(sig) + " (" +
        (name != nullptr ? name : "?") +
        (sig == SIGKILL ? "; possibly the kernel OOM killer or an external "
                          "kill"
                        : "") +
        ")");
  }
  return Status::worker_crashed("worker ended with unrecognized wait status " +
                                std::to_string(wstatus));
}

}  // namespace

void worker_child_main(int in_fd, int out_fd, const WorkerConfig& config) {
  WorkerRequest req;
  {
    // The request follows the fork immediately; EOF here means the parent
    // died, and anything unparseable is a protocol bug worth a loud exit.
    Result<std::string> frame = read_frame(in_fd, Deadline::infinite());
    if (!frame.ok()) _exit(3);
    Result<WorkerRequest> decoded = decode_request(*frame);
    if (!decoded.ok()) _exit(3);
    req = std::move(*decoded);
  }
  if (req.simulate_crash) {
    // Injected "worker:crash": die the way a heap-corruption abort would.
    std::abort();
  }
  if (req.simulate_hang) {
    // Injected "worker:hang": stop cooperating entirely — ignore SIGTERM so
    // only the supervisor's SIGKILL escalation can end this process.
    std::signal(SIGTERM, SIG_IGN);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  apply_child_rlimits(req, config);
  try {
    const WorkerResponse resp = execute_request(req);
    const std::string payload = encode_response(resp);
    if (!write_frame(out_fd, payload).ok()) _exit(3);
  } catch (...) {
    _exit(4);
  }
  _exit(0);
}

engine::EngineRun run_in_worker(const WorkerRequest& request,
                                const WorkerConfig& config) {
  ignore_sigpipe_once();
  engine::EngineRun run;
  run.engine = request.engine;

  // Consume caller-enacted fault sites in the parent: forked children
  // inherit the armed one-shot state, so firing them child-side would
  // re-trigger on every retry. Consuming here disarms before fork() and
  // relays the fault through the request instead.
  WorkerRequest req = request;
  if (fault::consume("worker:crash")) req.simulate_crash = true;
  if (fault::consume("worker:hang")) req.simulate_hang = true;

  int to_child[2];   // parent writes request
  int from_child[2]; // child writes response
  if (pipe(to_child) != 0) {
    run.status = Status::internal(std::string("pipe failed: ") +
                                  std::strerror(errno));
    run.detail = run.status.message();
    return run;
  }
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    run.status = Status::internal(std::string("pipe failed: ") +
                                  std::strerror(errno));
    run.detail = run.status.message();
    return run;
  }

  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      close(fd);
    run.status = Status::internal(std::string("fork failed: ") +
                                  std::strerror(errno));
    run.detail = run.status.message();
    return run;
  }
  if (pid == 0) {
    close(to_child[1]);
    close(from_child[0]);
    worker_child_main(to_child[0], from_child[1], config);  // never returns
  }
  close(to_child[0]);
  close(from_child[1]);
  if (config.on_spawn) config.on_spawn(pid);

  GFA_LOG_INFO("worker", "spawned worker " << pid << " for engine "
                                           << req.engine);

  Status outcome;
  WorkerResponse resp;
  bool have_response = false;
  {
    const Status sent = write_frame(to_child[1], encode_request(req));
    // An EPIPE here means the child is already dead; fall through to the
    // read (immediate EOF) so the crash is classified off waitpid.
    if (!sent.ok() && sent.code() != StatusCode::kWorkerCrashed)
      outcome = sent;
  }
  close(to_child[1]);

  if (outcome.ok()) {
    // Wall-clock supervision: the child's own deadline should end the run
    // cleanly first; the extra grace covers serialization and scheduling.
    const Deadline wait_deadline =
        req.timeout_seconds > 0
            ? Deadline::after(req.timeout_seconds +
                              config.kill_grace_seconds + 1.0)
            : Deadline::infinite();
    Result<std::string> frame = read_frame(from_child[0], wait_deadline);
    if (frame.ok()) {
      Result<WorkerResponse> decoded = decode_response(*frame);
      if (decoded.ok()) {
        resp = std::move(*decoded);
        have_response = true;
      } else {
        outcome = Status::worker_crashed("worker response unparseable: " +
                                         decoded.status().message());
      }
    } else {
      outcome = frame.status();
    }
  }
  close(from_child[0]);

  const int wstatus = reap_child(pid, config.kill_grace_seconds);
  const auto end = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();

  if (have_response) {
    run.status = resp.status;
    run.verdict = resp.verdict;
    run.detail = resp.status.ok() ? resp.detail : resp.status.message();
    run.stats = std::move(resp.stats);
    run.attempts = std::move(resp.attempts);
    run.resumed = resp.resumed;
    run.budget_limit_bytes =
        static_cast<std::size_t>(resp.budget_limit_bytes);
    run.budget_peak_bytes = static_cast<std::size_t>(resp.budget_peak_bytes);
    return run;
  }
  run.status = outcome.code() == StatusCode::kDeadlineExceeded
                   ? Status::deadline_exceeded(
                         "worker exceeded the wall clock; terminated "
                         "(SIGTERM, then SIGKILL after " +
                         std::to_string(config.kill_grace_seconds) + "s)")
                   : classify_termination(wstatus, outcome);
  run.detail = run.status.message();
  GFA_LOG_WARN("worker", "worker " << pid << " failed: "
                                   << run.status.to_string());
  return run;
}

engine::EngineRun run_isolated_with_retry(WorkerRequest request,
                                          const RetryPolicy& policy,
                                          const WorkerConfig& config) {
  const unsigned max_attempts = std::max(1u, policy.max_attempts);
  std::vector<engine::AttemptRecord> history;
  engine::EngineRun run;
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    const double delay = policy.delay_before_attempt(attempt);
    if (delay > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    run = run_in_worker(request, config);

    engine::AttemptRecord record;
    record.engine = request.engine;
    record.status = run.status;
    record.verdict = run.verdict;
    record.wall_ms = run.wall_ms;
    record.budget_peak_bytes = run.budget_peak_bytes;
    record.detail = "attempt " + std::to_string(attempt) + "/" +
                    std::to_string(max_attempts) +
                    (run.detail.empty() ? "" : ": " + run.detail);
    history.push_back(std::move(record));

    if (run.status.ok() || !RetryPolicy::retryable(run.status.code())) break;
    if (attempt < max_attempts) {
      GFA_LOG_WARN("worker", "attempt " << attempt << " failed ("
                                        << run.status.to_string()
                                        << "), retrying");
      if (policy.budget_escalation > 1.0 && request.memory_budget_bytes != 0)
        request.memory_budget_bytes = static_cast<std::uint64_t>(
            static_cast<double>(request.memory_budget_bytes) *
            policy.budget_escalation);
    }
  }
  run.stats["worker_attempts"] = static_cast<double>(history.size());
  // With retries in play the crash/retry history is the interesting attempt
  // story; a single clean attempt keeps whatever the engine itself reported
  // (e.g. portfolio attempts from inside the worker).
  if (history.size() > 1) run.attempts = std::move(history);
  return run;
}

}  // namespace gfa::worker
