#include "worker/harness.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include <condition_variable>
#include <cstdint>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "circuit/parser.h"
#include "circuit/verilog.h"
#include "engine/registry.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/fault_inject.h"
#include "util/json_reader.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GFA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GFA_ASAN 1
#endif

namespace gfa::worker {

namespace {

/// A worker child dying mid-conversation must surface as a classified
/// Status, not kill the supervisor with SIGPIPE.
void ignore_sigpipe_once() {
  static std::once_flag flag;
  std::call_once(flag, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<Netlist> load_circuit(const std::string& path) {
  return has_suffix(path, ".v") ? try_read_verilog_file(path)
                                : try_read_netlist_file(path);
}

/// Hard caps applied inside the child, between the handshake and the run.
/// These are the last line of defense behind the cooperative budget and
/// deadline: a loop that stops polling still cannot outlive RLIMIT_CPU, and
/// an allocation path the byte accounting cannot see still hits RLIMIT_AS.
void apply_child_rlimits(const WorkerRequest& req,
                         const WorkerConfig& config) {
#if !defined(GFA_ASAN)
  if (req.memory_budget_bytes != 0) {
    // Headroom over the counted budget for code, stacks, and allocator
    // slack; the cooperative ResourceBudget is expected to trip first.
    const double want =
        static_cast<double>(req.memory_budget_bytes) *
            config.address_space_headroom +
        256.0 * 1024 * 1024;
    struct rlimit as_limit;
    as_limit.rlim_cur = static_cast<rlim_t>(
        std::min(want, 9.0e18));
    as_limit.rlim_max = as_limit.rlim_cur;
    (void)setrlimit(RLIMIT_AS, &as_limit);  // best effort
  }
#else
  (void)config;
#endif
  if (req.timeout_seconds > 0) {
    struct rlimit cpu_limit;
    cpu_limit.rlim_cur = static_cast<rlim_t>(req.timeout_seconds) + 1 +
                         config.cpu_rlimit_slack_seconds;
    cpu_limit.rlim_max = cpu_limit.rlim_cur + 5;
    (void)setrlimit(RLIMIT_CPU, &cpu_limit);
  }
}

engine::RunOptions run_options_of(const WorkerRequest& req) {
  engine::RunOptions options;
  if (req.timeout_seconds > 0)
    options.control.deadline = Deadline::after(req.timeout_seconds);
  options.sat_conflict_limit = req.sat_conflict_limit;
  options.bdd_node_limit = static_cast<std::size_t>(req.bdd_node_limit);
  options.max_terms = static_cast<std::size_t>(req.max_terms);
  options.gb_max_reductions = static_cast<std::size_t>(req.gb_max_reductions);
  options.gb_max_poly_terms = static_cast<std::size_t>(req.gb_max_poly_terms);
  options.memory_budget_bytes =
      static_cast<std::size_t>(req.memory_budget_bytes);
  options.attempt_timeout_seconds = req.attempt_timeout_seconds;
  options.portfolio_engines = req.portfolio_engines;
  options.portfolio_race = req.portfolio_race;
  options.checkpoint_dir = req.checkpoint_dir;
  options.checkpoint_interval = req.checkpoint_interval;
  options.checkpoint_resume = req.checkpoint_resume;
  options.export_canonical = req.export_canonical;
  options.certify = req.certify;
  return options;
}

/// The child's engine run, already flattened into a response.
WorkerResponse execute_request(const WorkerRequest& req) {
  WorkerResponse resp;
  const Result<Netlist> spec = load_circuit(req.spec_path);
  if (!spec.ok()) {
    resp.status = spec.status();
    return resp;
  }
  const Result<Netlist> impl = load_circuit(req.impl_path);
  if (!impl.ok()) {
    resp.status = impl.status();
    return resp;
  }
  const Result<Gf2k> field = Gf2k::try_make(req.k);
  if (!field.ok()) {
    resp.status = field.status();
    return resp;
  }
  const Result<const engine::EquivEngine*> eng =
      engine::EngineRegistry::global().require(req.engine);
  if (!eng.ok()) {
    resp.status = eng.status();
    return resp;
  }
  const engine::EngineRun run =
      engine::run_engine(**eng, *spec, *impl, *field, run_options_of(req));
  resp.status = run.status;
  resp.verdict = run.verdict;
  resp.detail = run.detail;
  resp.counterexample = run.counterexample;
  resp.stats = run.stats;
  resp.attempts = run.attempts;
  resp.resumed = run.resumed;
  resp.wall_ms = run.wall_ms;
  resp.budget_limit_bytes = run.budget_limit_bytes;
  resp.budget_peak_bytes = run.budget_peak_bytes;
  resp.canonical_spec = run.canonical_spec;
  resp.canonical_impl = run.canonical_impl;
  return resp;
}

/// Child-side telemetry pump. While active it owns the process-wide progress
/// sink and a heartbeat timer thread; every frame written to the pipe —
/// telemetry, trace slices, the final response (written by the caller after
/// stop()) — is serialized behind one mutex so the stream stays framed.
/// With heartbeat_interval_seconds == 0 this is entirely inert: no sink, no
/// thread, no frames — the dark baseline the overhead bound is measured
/// against.
class ChildTelemetry {
 public:
  ChildTelemetry(int fd, const WorkerRequest& req)
      : fd_(fd),
        interval_(req.heartbeat_interval_seconds),
        trace_(req.trace) {
    if (interval_ <= 0) return;
    active_ = true;
    if (obs::metrics_enabled())
      last_metrics_ = obs::Metrics::instance().snapshot();
    obs::set_progress_sink(
        [this](const obs::Progress& p) { on_progress(p); });
    thread_ = std::thread([this] { heartbeat_loop(); });
  }

  ~ChildTelemetry() { stop(); }

  ChildTelemetry(const ChildTelemetry&) = delete;
  ChildTelemetry& operator=(const ChildTelemetry&) = delete;

  /// Uninstalls the sink, joins the timer thread, and flushes the remaining
  /// trace slice. After stop() the pipe is quiet: the caller may write the
  /// response frame without racing a heartbeat.
  void stop() {
    if (!active_) return;
    obs::set_progress_sink(nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      flush_trace_locked();
    }
    active_ = false;
  }

 private:
  /// Progress callbacks arrive from whatever thread runs the phase (pool
  /// threads included). A phase change is sent immediately — phase
  /// boundaries are the frames the supervisor's forensics care most about —
  /// and same-phase progress is rate-limited to the heartbeat interval.
  void on_progress(const obs::Progress& p) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool phase_change =
        std::strcmp(p.phase, last_.phase) != 0;
    last_ = p;
    const auto now = std::chrono::steady_clock::now();
    if (!phase_change &&
        std::chrono::duration<double>(now - last_send_).count() < interval_)
      return;
    send_locked(now);
  }

  void heartbeat_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_));
      if (stopping_) break;
      send_locked(std::chrono::steady_clock::now());
      flush_trace_locked();
    }
  }

  void send_locked(std::chrono::steady_clock::time_point now) {
    TelemetryFrame t;
    t.seq = ++seq_;
    t.phase = last_.phase;
    t.step = last_.step;
    t.total = last_.total;
    t.terms = last_.terms;
    t.budget_bytes = last_.budget_bytes;
    t.rss_bytes = obs::sample_rss_bytes();
    if (obs::metrics_enabled()) {
      t.metrics = obs::Metrics::instance().delta(last_metrics_);
      last_metrics_ = obs::Metrics::instance().snapshot();
    }
    if (t.budget_bytes > budget_hwm_) {
      budget_hwm_ = t.budget_bytes;
      obs::flight::note("budget:hwm", budget_hwm_, t.rss_bytes);
    }
    (void)write_frame(fd_, encode_telemetry_frame(t));
    last_send_ = now;
  }

  /// Streams the not-yet-sent tail of the trace buffer, so all spans closed
  /// before the last heartbeat survive a later crash.
  void flush_trace_locked() {
    if (!trace_ || !obs::trace_enabled()) return;
    std::vector<obs::TraceEvent> events = obs::Tracer::instance().events();
    if (events.size() <= trace_sent_) return;
    TraceFramePayload payload;
    payload.epoch_us = obs::trace_epoch_us();
    payload.events.assign(events.begin() + static_cast<std::ptrdiff_t>(trace_sent_),
                          events.end());
    trace_sent_ = events.size();
    (void)write_frame(fd_, encode_trace_frame(payload));
  }

  const int fd_;
  const double interval_;
  const bool trace_;
  bool active_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
  obs::Progress last_;
  std::chrono::steady_clock::time_point last_send_{};
  obs::MetricsSnapshot last_metrics_;
  std::uint64_t seq_ = 0;
  std::uint64_t budget_hwm_ = 0;
  std::size_t trace_sent_ = 0;
};

/// Reaps the child, escalating SIGTERM -> (grace) -> SIGKILL if it is still
/// alive. Returns the raw waitpid status.
int reap_child(pid_t pid, double grace_seconds) {
  int wstatus = 0;
  pid_t r = waitpid(pid, &wstatus, WNOHANG);
  if (r == pid) return wstatus;
  kill(pid, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(grace_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    r = waitpid(pid, &wstatus, WNOHANG);
    if (r == pid) return wstatus;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill(pid, SIGKILL);
  while (waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  return wstatus;
}

/// Maps the child's raw termination status to a supervisor Status; only
/// consulted when no valid response frame arrived.
Status classify_termination(int wstatus, const Status& read_status) {
  if (WIFEXITED(wstatus)) {
    const int code = WEXITSTATUS(wstatus);
    if (code == 0)
      return Status::worker_crashed(
          "worker exited cleanly without a valid response frame (protocol "
          "corruption: " +
          read_status.message() + ")");
    return Status::worker_crashed("worker exited with status " +
                                  std::to_string(code) +
                                  " without a response (" +
                                  read_status.message() + ")");
  }
  if (WIFSIGNALED(wstatus)) {
    const int sig = WTERMSIG(wstatus);
    if (sig == SIGXCPU)
      return Status::deadline_exceeded(
          "worker exceeded its CPU rlimit (SIGXCPU)");
    const char* name = strsignal(sig);
    return Status::worker_crashed(
        "worker killed by signal " + std::to_string(sig) + " (" +
        (name != nullptr ? name : "?") +
        (sig == SIGKILL ? "; possibly the kernel OOM killer or an external "
                          "kill"
                        : "") +
        ")");
  }
  return Status::worker_crashed("worker ended with unrecognized wait status " +
                                std::to_string(wstatus));
}

}  // namespace

void worker_child_main(int in_fd, int out_fd, const WorkerConfig& config) {
  // Shed the parent's signal dispositions first: a service parent routes
  // SIGTERM/SIGINT into a self-pipe drain handler, and that handler — run in
  // a forked child that shares the pipe — would both neuter the supervisor's
  // SIGTERM escalation and inject a spurious drain into the parent.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  WorkerRequest req;
  {
    // The request follows the fork immediately; EOF here means the parent
    // died, and anything unparseable is a protocol bug worth a loud exit.
    Result<std::string> frame = read_frame(in_fd, Deadline::infinite());
    if (!frame.ok()) _exit(3);
    Result<WorkerRequest> decoded = decode_request(*frame);
    if (!decoded.ok()) _exit(3);
    req = std::move(*decoded);
  }
  // Drop observability state inherited from the parent's address space —
  // the child's trace buffer and flight ring must tell only its own story —
  // then arm the crash path before anything else can die.
  obs::Tracer::instance().clear();
  obs::flight::clear();
  obs::flight::note("worker:start", req.k);
  obs::flight::install_crash_handler(out_fd);
  if (req.trace) obs::set_trace_enabled(true);
  if (req.simulate_crash) {
    // Injected "worker:crash": die the way a heap-corruption abort would.
    // The crash handler dumps the flight ring over the pipe first.
    std::abort();
  }
  if (req.simulate_hang) {
    // Injected "worker:hang": stop cooperating entirely — no frames, ignore
    // SIGTERM — so only the parent's stall detector (and ultimately its
    // SIGKILL escalation) can classify and end this process.
    std::signal(SIGTERM, SIG_IGN);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  apply_child_rlimits(req, config);
  try {
    ChildTelemetry telemetry(out_fd, req);
    WorkerResponse resp = execute_request(req);
    telemetry.stop();
    obs::sample_rss_bytes();
    resp.peak_rss_bytes = obs::peak_rss_bytes();
    const std::string payload = encode_response(resp);
    if (!write_frame(out_fd, payload).ok()) _exit(3);
  } catch (...) {
    // The engine boundary catches everything in practice; if something still
    // escapes, ship the flight tail so the exit-4 report has forensics.
    obs::set_progress_sink(nullptr);
    obs::flight::dump_frame(out_fd);
    _exit(4);
  }
  _exit(0);
}

engine::EngineRun run_in_worker(const WorkerRequest& request,
                                const WorkerConfig& config) {
  ignore_sigpipe_once();
  // A parent-side span around the whole supervision: fork, frame loop, reap.
  // Also guarantees every merged --trace file has at least one event from
  // the supervisor's pid next to the imported worker events.
  const obs::TraceSpan supervise_span("worker:supervise", "worker");
  engine::EngineRun run;
  run.engine = request.engine;

  // Consume caller-enacted fault sites in the parent: forked children
  // inherit the armed one-shot state, so firing them child-side would
  // re-trigger on every retry. Consuming here disarms before fork() and
  // relays the fault through the request instead.
  WorkerRequest req = request;
  if (fault::consume("worker:crash")) req.simulate_crash = true;
  if (fault::consume("worker:hang")) req.simulate_hang = true;
  // Child trace streaming follows the parent's tracing state.
  req.trace = obs::trace_enabled();

  int to_child[2];   // parent writes request
  int from_child[2]; // child writes response
  if (pipe(to_child) != 0) {
    run.status = Status::internal(std::string("pipe failed: ") +
                                  std::strerror(errno));
    run.detail = run.status.message();
    return run;
  }
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    run.status = Status::internal(std::string("pipe failed: ") +
                                  std::strerror(errno));
    run.detail = run.status.message();
    return run;
  }

  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      close(fd);
    run.status = Status::internal(std::string("fork failed: ") +
                                  std::strerror(errno));
    run.detail = run.status.message();
    return run;
  }
  if (pid == 0) {
    close(to_child[1]);
    close(from_child[0]);
    worker_child_main(to_child[0], from_child[1], config);  // never returns
  }
  close(to_child[0]);
  close(from_child[1]);
  if (config.on_spawn) config.on_spawn(pid);

  GFA_LOG_INFO("worker", "spawned worker " << pid << " for engine "
                                           << req.engine);

  Status outcome;
  WorkerResponse resp;
  bool have_response = false;
  {
    const Status sent = write_frame(to_child[1], encode_request(req));
    // An EPIPE here means the child is already dead; fall through to the
    // read (immediate EOF) so the crash is classified off waitpid.
    if (!sent.ok() && sent.code() != StatusCode::kWorkerCrashed)
      outcome = sent;
  }
  close(to_child[1]);

  // Frame-stream supervision. Telemetry/trace/flight frames accumulate into
  // the run record and refresh the stall detector; the response frame (or a
  // failure) ends the loop. Two clocks bound each read: the wall deadline
  // (the child's own deadline should end the run cleanly first; the extra
  // grace covers serialization and scheduling) and, when configured, the
  // stall timeout since the last frame — a worker silent past it is
  // classified distinctly from a wall overrun, and retryably.
  const Deadline wall_deadline =
      req.timeout_seconds > 0
          ? Deadline::after(req.timeout_seconds +
                            config.kill_grace_seconds + 1.0)
          : Deadline::infinite();
  const bool stall_active =
      req.stall_timeout_seconds > 0 && req.heartbeat_interval_seconds > 0;
  auto last_frame_time = std::chrono::steady_clock::now();
  bool stalled = false;
  std::uint64_t heartbeats = 0;
  std::string last_phase;
  std::uint64_t last_step = 0;
  std::uint64_t child_rss = 0;
  std::vector<std::string> flight_events;
  std::vector<obs::TraceEvent> child_events;
  std::uint64_t child_epoch_us = 0;
  while (outcome.ok() && !have_response) {
    Deadline read_deadline = wall_deadline;
    double stall_remaining = 0.0;
    if (stall_active) {
      const double since_last =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        last_frame_time)
              .count();
      stall_remaining = req.stall_timeout_seconds - since_last;
      if (stall_remaining <= 0.001) stall_remaining = 0.001;
      if (wall_deadline.is_infinite() ||
          stall_remaining < wall_deadline.remaining_seconds())
        read_deadline = Deadline::after(stall_remaining);
    }
    Result<std::string> frame = read_frame(from_child[0], read_deadline);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded &&
          stall_active && !wall_deadline.expired()) {
        stalled = true;
        outcome = Status::worker_crashed(
            "worker stalled: no telemetry frame for " +
            std::to_string(req.stall_timeout_seconds) +
            "s (stall timeout; wall deadline not reached)");
      } else {
        outcome = frame.status();
      }
      break;
    }
    last_frame_time = std::chrono::steady_clock::now();
    Result<JsonValue> doc = parse_json(*frame);
    if (!doc.ok()) {
      outcome = Status::worker_crashed("worker frame unparseable: " +
                                       doc.status().message());
      break;
    }
    switch (frame_kind(*doc)) {
      case FrameKind::kTelemetry: {
        Result<TelemetryFrame> t = decode_telemetry_frame(*doc);
        if (t.ok()) {
          ++heartbeats;
          if (!t->phase.empty()) last_phase = t->phase;
          last_step = t->step;
          child_rss = std::max(child_rss, t->rss_bytes);
        }
        break;
      }
      case FrameKind::kTrace: {
        Result<TraceFramePayload> t = decode_trace_frame(*doc);
        if (t.ok()) {
          child_epoch_us = t->epoch_us;
          child_events.insert(child_events.end(),
                              std::make_move_iterator(t->events.begin()),
                              std::make_move_iterator(t->events.end()));
        }
        break;
      }
      case FrameKind::kFlight: {
        Result<std::vector<obs::flight::Event>> events =
            decode_flight_frame(*doc);
        if (events.ok()) {
          flight_events.clear();
          for (const obs::flight::Event& e : *events)
            flight_events.push_back(obs::flight::format(e));
        }
        break;
      }
      case FrameKind::kResponse: {
        Result<WorkerResponse> decoded = decode_response(*frame);
        if (decoded.ok()) {
          resp = std::move(*decoded);
          have_response = true;
        } else {
          outcome = Status::worker_crashed("worker response unparseable: " +
                                           decoded.status().message());
        }
        break;
      }
    }
  }
  // The crash handler's flight frame may still sit in the pipe buffer after
  // an EOF-classified death mid-stream never delivered it to the loop (the
  // handler can race a heartbeat write and garble one frame). Best effort:
  // nothing further to read once the loop ended.
  close(from_child[0]);

  const int wstatus = reap_child(pid, config.kill_grace_seconds);
  const auto end = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();

  // Fold the accumulated telemetry into the record regardless of outcome —
  // for a dead worker the (last phase, last step, heartbeat count) triple is
  // exactly the forensic story the report needs.
  run.heartbeats = heartbeats;
  run.last_phase = last_phase;
  run.last_step = last_step;
  run.flight_events = std::move(flight_events);
  obs::sample_rss_bytes();  // parent-side boundary sample
  run.peak_rss_bytes = std::max(child_rss, resp.peak_rss_bytes);

  // Merge the child's trace spans into the parent buffer: re-base their
  // timestamps from the child's trace epoch onto ours (both are offsets of
  // the same CLOCK_MONOTONIC) and stamp the worker's real pid so the merged
  // --trace file renders the fork as its own process group.
  if (!child_events.empty() && obs::trace_enabled()) {
    const std::int64_t offset = static_cast<std::int64_t>(child_epoch_us) -
                                static_cast<std::int64_t>(obs::trace_epoch_us());
    for (obs::TraceEvent& e : child_events) {
      const std::int64_t ts = static_cast<std::int64_t>(e.start_us) + offset;
      e.start_us = ts > 0 ? static_cast<std::uint64_t>(ts) : 0;
      e.pid = static_cast<std::uint32_t>(pid);
    }
    obs::Tracer::instance().import_events(std::move(child_events));
  }

  if (have_response) {
    run.status = resp.status;
    run.verdict = resp.verdict;
    run.detail = resp.status.ok() ? resp.detail : resp.status.message();
    run.counterexample = std::move(resp.counterexample);
    run.stats = std::move(resp.stats);
    run.attempts = std::move(resp.attempts);
    run.resumed = resp.resumed;
    run.budget_limit_bytes =
        static_cast<std::size_t>(resp.budget_limit_bytes);
    run.budget_peak_bytes = static_cast<std::size_t>(resp.budget_peak_bytes);
    run.canonical_spec = std::move(resp.canonical_spec);
    run.canonical_impl = std::move(resp.canonical_impl);
    return run;
  }
  if (stalled) {
    run.status = outcome;
    run.stats["worker_stalled"] = 1.0;
  } else {
    run.status = outcome.code() == StatusCode::kDeadlineExceeded
                     ? Status::deadline_exceeded(
                           "worker exceeded the wall clock; terminated "
                           "(SIGTERM, then SIGKILL after " +
                           std::to_string(config.kill_grace_seconds) + "s)")
                     : classify_termination(wstatus, outcome);
  }
  run.detail = run.status.message();
  GFA_LOG_WARN("worker", "worker " << pid << " failed: "
                                   << run.status.to_string());
  return run;
}

engine::EngineRun run_isolated_with_retry(WorkerRequest request,
                                          const RetryPolicy& policy,
                                          const WorkerConfig& config) {
  const unsigned max_attempts = std::max(1u, policy.max_attempts);
  std::vector<engine::AttemptRecord> history;
  std::vector<std::string> last_flight;
  engine::EngineRun run;
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    const double delay = policy.delay_before_attempt(attempt);
    if (delay > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    run = run_in_worker(request, config);
    GFA_HISTOGRAM("worker.attempt_wall_ms",
                  static_cast<std::uint64_t>(run.wall_ms));
    if (!run.flight_events.empty()) last_flight = run.flight_events;

    engine::AttemptRecord record;
    record.engine = request.engine;
    record.status = run.status;
    record.verdict = run.verdict;
    record.wall_ms = run.wall_ms;
    record.budget_peak_bytes = run.budget_peak_bytes;
    record.heartbeats = run.heartbeats;
    record.last_phase = run.last_phase;
    record.last_step = run.last_step;
    record.detail = "attempt " + std::to_string(attempt) + "/" +
                    std::to_string(max_attempts) +
                    (run.detail.empty() ? "" : ": " + run.detail);
    history.push_back(std::move(record));

    if (run.status.ok() || !RetryPolicy::retryable(run.status.code())) break;
    if (attempt < max_attempts) {
      GFA_LOG_WARN("worker", "attempt " << attempt << " failed ("
                                        << run.status.to_string()
                                        << "), retrying");
      if (policy.budget_escalation > 1.0 && request.memory_budget_bytes != 0)
        request.memory_budget_bytes = static_cast<std::uint64_t>(
            static_cast<double>(request.memory_budget_bytes) *
            policy.budget_escalation);
    }
  }
  run.stats["worker_attempts"] = static_cast<double>(history.size());
  // A failed final attempt without its own flight dump (e.g. a SIGKILLed
  // hang) still reports the most recent tail from an earlier crashed fork.
  if (!run.status.ok() && run.flight_events.empty())
    run.flight_events = std::move(last_flight);
  // With retries in play the crash/retry history is the interesting attempt
  // story; a single clean attempt keeps whatever the engine itself reported
  // (e.g. portfolio attempts from inside the worker). A single *failed*
  // attempt has no engine-side story to preserve — record it, so a crash
  // report always carries the attempt's telemetry triple.
  if (history.size() > 1 || (!run.status.ok() && run.attempts.empty()))
    run.attempts = std::move(history);
  return run;
}

}  // namespace gfa::worker
