#pragma once
// The supervisor <-> worker wire protocol.
//
// A worker child and its supervising parent talk over two pipes, one frame
// each way. A frame is a 32-bit little-endian payload length followed by that
// many bytes of JSON (written by util/json_writer.h, parsed by
// util/json_reader.h). The request carries everything the child needs to
// reconstruct the job — circuit file paths, the field degree, the engine
// name, and the ExecControl-shaped limits — because the child re-reads the
// circuits itself rather than inheriting parent memory it cannot trust after
// a crashy run. The response is the flattened run outcome: a Status in wire
// form (code name + message), the verdict, detail, stats, and the portfolio
// attempt history when the isolated engine was itself a portfolio.
//
// Frames are capped at 64 MiB: a length prefix beyond that is treated as
// protocol corruption, not an allocation request.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "util/exec_control.h"
#include "util/status.h"

namespace gfa::worker {

inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

struct WorkerRequest {
  std::string spec_path;
  std::string impl_path;
  unsigned k = 0;
  std::string engine = "abstraction";
  /// Wall-clock limit the child turns into its own Deadline (0 = none). The
  /// parent enforces the same limit externally with SIGTERM-then-SIGKILL.
  double timeout_seconds = 0.0;
  // RunOptions limits, mirrored field-for-field (see engine/engine.h).
  std::uint64_t sat_conflict_limit = 0;
  std::uint64_t bdd_node_limit = 0;
  std::uint64_t max_terms = 0;
  std::uint64_t gb_max_reductions = 0;
  std::uint64_t gb_max_poly_terms = 0;
  std::uint64_t memory_budget_bytes = 0;
  double attempt_timeout_seconds = 0.0;
  std::vector<std::string> portfolio_engines;
  bool portfolio_race = false;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_interval = 0;
  bool checkpoint_resume = false;
  /// Fault-injection relays: the parent consumes "worker:crash" /
  /// "worker:hang" (see fault::consume) and sets these so exactly one
  /// attempt misbehaves even across retries of forked children.
  bool simulate_crash = false;
  bool simulate_hang = false;
};

struct WorkerResponse {
  /// The engine's own outcome (kOk with a verdict, or why it failed).
  /// Supervisor-detected failures (crashes, timeouts) never appear here —
  /// they are synthesized parent-side from the child's termination.
  Status status;
  engine::Verdict verdict = engine::Verdict::kUnknown;
  std::string detail;
  std::map<std::string, double> stats;
  std::vector<engine::AttemptRecord> attempts;
  bool resumed = false;
  double wall_ms = 0.0;
  std::uint64_t budget_limit_bytes = 0;
  std::uint64_t budget_peak_bytes = 0;
};

std::string encode_request(const WorkerRequest& req);
Result<WorkerRequest> decode_request(std::string_view json);

std::string encode_response(const WorkerResponse& resp);
Result<WorkerResponse> decode_response(std::string_view json);

/// Writes one length-prefixed frame, retrying short writes. EPIPE (the child
/// died before reading) is kWorkerCrashed; other write errors kInternal.
Status write_frame(int fd, std::string_view payload);

/// Reads one frame, polling against `deadline` (infinite = block forever).
/// kDeadlineExceeded on timeout, kWorkerCrashed on EOF/short frame, and
/// kInvalidArgument on an oversized length prefix.
Result<std::string> read_frame(int fd, const Deadline& deadline);

}  // namespace gfa::worker
