#pragma once
// The supervisor <-> worker wire protocol.
//
// A worker child and its supervising parent talk over two pipes. A frame is
// a 32-bit little-endian payload length followed by that many bytes of JSON
// (written by util/json_writer.h, parsed by util/json_reader.h). The request
// carries everything the child needs to reconstruct the job — circuit file
// paths, the field degree, the engine name, and the ExecControl-shaped
// limits — because the child re-reads the circuits itself rather than
// inheriting parent memory it cannot trust after a crashy run.
//
// The child-to-parent direction is a frame *stream*, discriminated by a
// top-level "frame" key:
//   * "telemetry" — periodic heartbeat/progress (phase, RATO step/total,
//     term count, budget bytes, RSS, metrics delta);
//   * "trace"     — a slice of the child's Chrome trace buffer plus the
//     child's trace epoch, for parent-side re-stamping and merging;
//   * "flight"    — the crash flight-recorder ring, emitted by the child's
//     SIGSEGV/SIGABRT handler (hand-formatted there — keep the schema in
//     sync with obs/flight_recorder.cpp) or its catch-all exception path;
//   * absent / "response" — the final WorkerResponse, which ends the stream.
// A pre-telemetry parent still works: it blocks on the one frame the old
// protocol had, and a pre-telemetry child simply never sends the new kinds.
//
// The response is the flattened run outcome: a Status in wire form (code
// name + message), the verdict, detail, stats, and the portfolio attempt
// history when the isolated engine was itself a portfolio.
//
// Frames are capped at 64 MiB: a length prefix beyond that is treated as
// protocol corruption, not an allocation request.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/exec_control.h"
#include "util/json_reader.h"
#include "util/status.h"

namespace gfa::worker {

inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

struct WorkerRequest {
  std::string spec_path;
  std::string impl_path;
  unsigned k = 0;
  std::string engine = "abstraction";
  /// Wall-clock limit the child turns into its own Deadline (0 = none). The
  /// parent enforces the same limit externally with SIGTERM-then-SIGKILL.
  double timeout_seconds = 0.0;
  // RunOptions limits, mirrored field-for-field (see engine/engine.h).
  std::uint64_t sat_conflict_limit = 0;
  std::uint64_t bdd_node_limit = 0;
  std::uint64_t max_terms = 0;
  std::uint64_t gb_max_reductions = 0;
  std::uint64_t gb_max_poly_terms = 0;
  std::uint64_t memory_budget_bytes = 0;
  double attempt_timeout_seconds = 0.0;
  std::vector<std::string> portfolio_engines;
  bool portfolio_race = false;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_interval = 0;
  bool checkpoint_resume = false;
  /// Fault-injection relays: the parent consumes "worker:crash" /
  /// "worker:hang" (see fault::consume) and sets these so exactly one
  /// attempt misbehaves even across retries of forked children.
  bool simulate_crash = false;
  bool simulate_hang = false;
  /// Heartbeat cadence for the child's telemetry frames; 0 disables
  /// telemetry entirely (no frames, no progress sink — the dark baseline).
  double heartbeat_interval_seconds = 1.0;
  /// Parent-side stall detector: a worker silent (no frame of any kind) for
  /// this long is classified kWorkerCrashed("worker stalled...") — distinct
  /// from a wall-clock overrun — before the wall deadline fires. 0 disables.
  /// Meaningless without heartbeats; the tool rejects that combination.
  double stall_timeout_seconds = 0.0;
  /// Child trace-buffer streaming: set iff the parent has tracing enabled.
  bool trace = false;
  /// Ask the child to ship the extracted canonical forms back in the
  /// response (abstraction engine only — see RunOptions::export_canonical).
  /// Set by the verification service so a cache miss's extraction work can
  /// be stored for the next identical circuit.
  bool export_canonical = false;
  /// Cross-check a kEquivalent verdict by random simulation in the child
  /// (RunOptions::certify); a disagreement comes back as
  /// kCertificationFailed.
  bool certify = false;
};

struct WorkerResponse {
  /// The engine's own outcome (kOk with a verdict, or why it failed).
  /// Supervisor-detected failures (crashes, timeouts) never appear here —
  /// they are synthesized parent-side from the child's termination.
  Status status;
  engine::Verdict verdict = engine::Verdict::kUnknown;
  std::string detail;
  /// Typed simulator-replayed witness for kNotEquivalent (see
  /// certify/counterexample.h); empty otherwise.
  certify::Counterexample counterexample;
  std::map<std::string, double> stats;
  std::vector<engine::AttemptRecord> attempts;
  bool resumed = false;
  double wall_ms = 0.0;
  std::uint64_t budget_limit_bytes = 0;
  std::uint64_t budget_peak_bytes = 0;
  /// Child's /proc-sampled peak resident set (bytes), next to the
  /// byte-accounted budget peak; 0 when never sampled.
  std::uint64_t peak_rss_bytes = 0;
  /// Serialized canonical forms (abstraction/canon_serial.h) when the
  /// request asked for them and the engine produced a verdict; empty
  /// otherwise. These ride the response frame, bounded by kMaxFrameBytes.
  std::string canonical_spec;
  std::string canonical_impl;
};

/// Discriminates the child-to-parent frame stream (see header comment).
enum class FrameKind { kResponse, kTelemetry, kTrace, kFlight };

/// Classifies a parsed frame by its top-level "frame" key; absent or
/// unrecognized values mean kResponse (the legacy single-frame protocol).
FrameKind frame_kind(const JsonValue& doc);

/// One heartbeat/progress observation from the child.
struct TelemetryFrame {
  std::uint64_t seq = 0;
  std::string phase;
  std::uint64_t step = 0;
  std::uint64_t total = 0;
  std::uint64_t terms = 0;
  std::uint64_t budget_bytes = 0;
  std::uint64_t rss_bytes = 0;
  /// Metrics-registry delta since the previous frame (counters; gauges carry
  /// their current value). Empty when the child runs with metrics disabled.
  std::map<std::string, std::uint64_t> metrics;
};

/// A slice of the child's trace buffer. Events carry child-local timestamps
/// (relative to `epoch_us`, the child's absolute trace epoch) and child
/// tids; the supervisor re-stamps both bases onto its own timeline.
struct TraceFramePayload {
  std::uint64_t epoch_us = 0;
  std::vector<obs::TraceEvent> events;
};

std::string encode_request(const WorkerRequest& req);
Result<WorkerRequest> decode_request(std::string_view json);

std::string encode_response(const WorkerResponse& resp);
Result<WorkerResponse> decode_response(std::string_view json);

std::string encode_telemetry_frame(const TelemetryFrame& t);
Result<TelemetryFrame> decode_telemetry_frame(const JsonValue& doc);

std::string encode_trace_frame(const TraceFramePayload& t);
Result<TraceFramePayload> decode_trace_frame(const JsonValue& doc);

/// The flight frame's encoder lives in obs/flight_recorder.cpp (it must be
/// async-signal-safe); this decodes what it emits.
Result<std::vector<obs::flight::Event>> decode_flight_frame(
    const JsonValue& doc);

/// Writes one length-prefixed frame, retrying short writes. EPIPE (the child
/// died before reading) is kWorkerCrashed; other write errors kInternal.
Status write_frame(int fd, std::string_view payload);

/// Reads one frame, polling against `deadline` (infinite = block forever).
/// kDeadlineExceeded on timeout, kWorkerCrashed on EOF/short frame, and
/// kInvalidArgument on an oversized length prefix.
Result<std::string> read_frame(int fd, const Deadline& deadline);

}  // namespace gfa::worker
