#pragma once
// Checkpoint/resume for the abstraction engine's reduction chain.
//
// A SIGKILLed (or OOM-killed, or crashed) isolated worker loses hours of
// backward rewriting at large k. The extractor can periodically serialize its
// progress — how many substitution steps are done and the accumulated
// intermediate polynomial — so a re-invocation with --resume picks the chain
// up where it stopped instead of starting over. Because the substitution
// order (RATO) is a pure function of the netlist, the pair (circuit content
// hash, step count) identifies the exact prefix of the reduction chain that
// has been applied; resuming is sound iff the hash matches.
//
// File layout (little-endian, CRC-guarded):
//
//   magic   8 bytes  "GFA_CKPT"
//   u32     version  (kCheckpointVersion)
//   u32     k        field degree
//   u64     circuit_hash  (netlist_content_hash of the abstracted circuit)
//   u32     word-name length, then that many bytes
//   u64     step     substitutions already applied
//   u64     term count, then per term (version-dependent, below)
//   u32     CRC-32 of everything above
//
// Term encodings:
//
//   v2 (read-only): u32 monomial length, then that many u32 net ids;
//     u64 coefficient word count, then that many u64s (Gf2Poly::words()).
//   v3 (written): varint monomial length; the ids delta-encoded — the first
//     id as a varint, each later one as the varint difference to its
//     predecessor (ids are strictly increasing, so every delta is ≥ 1);
//     varint coefficient word count, then that many raw u64s. Varints are
//     LEB128 (7 data bits per byte, high bit = continuation). Net ids in a
//     monomial are near-neighbors in practice, so a term costs a couple of
//     bytes instead of 4 per id.
//
// The loader accepts both versions; the writer emits only v3. Writes are
// atomic (tmp file + rename), so a crash mid-save leaves the previous
// checkpoint intact. Any damage — truncation, a flipped bit, a version from
// another build, non-increasing ids — loads as kInvalidArgument; callers
// treat that as "no checkpoint" and start fresh, never as data.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "abstraction/bitpoly.h"
#include "circuit/netlist.h"
#include "gf2/gf2_poly.h"
#include "util/status.h"

namespace gfa::worker {

// Version 3: varint/delta term encoding (see the layout comment). Version 2
// files — fixed-width ids, snapshots already barrier-paced — are still read;
// anything older is rejected.
inline constexpr std::uint32_t kCheckpointVersion = 3;
inline constexpr std::uint32_t kMinReadableCheckpointVersion = 2;

/// CRC-32 (IEEE 802.3, reflected) of `n` bytes.
std::uint32_t crc32(const void* data, std::size_t n);

/// FNV-1a content hash over everything that determines the reduction chain:
/// gate types, fanins, net names, word declarations, and outputs. Two
/// netlists hash equal iff resuming one's checkpoint in the other is sound.
std::uint64_t netlist_content_hash(const Netlist& netlist);

/// One word's reduction-chain state at `step` substitutions.
struct ReductionCheckpoint {
  std::uint32_t k = 0;
  std::uint64_t circuit_hash = 0;
  std::string word;   // output word being abstracted
  std::uint64_t step = 0;
  /// The intermediate polynomial, monomials sorted so the serialization is
  /// deterministic for a given state.
  std::vector<std::pair<BitMono, Gf2Poly>> terms;
};

/// The per-(circuit, word) file inside `dir`, named by the content hash so
/// distinct circuits sharing a directory never collide.
std::string checkpoint_path(const std::string& dir, std::uint64_t circuit_hash,
                            const std::string& word);

/// Makes sure `dir` exists and is writable, creating the final path component
/// if needed. A missing parent, a non-directory in the way, or a directory
/// this process cannot write into are all kInvalidArgument with the concrete
/// reason — callers surface that instead of the cryptic open error a later
/// save would produce. Used for both checkpoint and canonical-cache
/// directories before the first write.
Status ensure_directory(const std::string& dir);

/// Atomically writes `cp` to `path` (tmp + rename). Consumes the
/// "checkpoint:corrupt" fault site: when armed, the stored CRC is flipped so
/// integrity tests can prove a damaged file is rejected on load.
Status save_checkpoint(const std::string& path, const ReductionCheckpoint& cp);

/// Loads and validates a checkpoint. Truncation, a CRC mismatch, bad magic,
/// or a version skew are kInvalidArgument (with the reason); a missing file
/// is kInvalidArgument too, with "no checkpoint" in the message.
Result<ReductionCheckpoint> load_checkpoint(const std::string& path);

/// Best-effort unlink (success after a completed run).
void remove_checkpoint(const std::string& path);

}  // namespace gfa::worker
