// The portfolio meta-engine: graceful degradation across the registry.
//
// The built-in engines fail in complementary ways — abstraction blows up on
// non-RATO-friendly netlists where SAT or BDDs survive, SAT dies at word
// sizes abstraction shrugs off — so a portfolio that walks an ordered list
// (default: abstraction → ideal-membership → sat) with a fresh per-attempt
// memory budget and deadline turns "my one engine mem-ed out" into "a later
// engine still produced the verdict". Every attempt — run, failed, or
// skipped — is recorded in VerifyResult::attempts and lands in the JSON run
// report, so callers can see which engine decided and why the others did not.
//
// Policy semantics (kept in sync with DESIGN.md "Robustness & fault
// tolerance"):
//  - A definitive verdict (equivalent / not-equivalent) ends the run; the
//    remaining engines are recorded as skipped.
//  - Ok(kUnknown) and attempt-local failures (mem-out, attempt timeout,
//    unsupported instance) fall through to the next engine.
//  - The *overall* control firing (deadline/cancel) aborts the whole
//    portfolio with that status — attempt history goes into the message.
//  - Racing mode runs the attempts concurrently via parallel_for; the first
//    definitive verdict by list position wins and cancels the rest.

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/portfolio.h"
#include "engine/registry.h"
#include "engine/report.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/parallel_for.h"
#include "worker/harness.h"

namespace gfa::engine {

namespace {

bool definitive(const EngineRun& run) {
  return run.status.ok() && run.verdict != Verdict::kUnknown;
}

AttemptRecord record_of(const EngineRun& run) {
  AttemptRecord a;
  a.engine = run.engine;
  a.status = run.status;
  a.verdict = run.verdict;
  a.detail = run.detail;
  a.wall_ms = run.wall_ms;
  a.budget_peak_bytes = run.budget_peak_bytes;
  return a;
}

AttemptRecord skipped_record(std::string engine, std::string why) {
  AttemptRecord a;
  a.engine = std::move(engine);
  a.skipped = true;
  a.detail = std::move(why);
  return a;
}

/// One line per attempt, for failure-status messages (the Result<T> error
/// path cannot carry the structured attempt array).
std::string summarize(const std::vector<AttemptRecord>& attempts) {
  std::string out;
  for (const AttemptRecord& a : attempts) {
    if (!out.empty()) out += "; ";
    out += a.engine + ": ";
    if (a.skipped)
      out += "skipped (" + a.detail + ")";
    else if (!a.status.ok())
      out += a.status.to_string();
    else
      out += verdict_name(a.verdict);
  }
  return out;
}

class PortfolioEngine final : public EquivEngine {
 public:
  std::string name() const override { return "portfolio"; }
  std::string description() const override {
    return "ordered (or racing) fallback across the other engines with "
           "per-attempt time/memory budgets; first definitive verdict wins";
  }
  bool manages_budget() const override { return true; }

  Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field,
                              const RunOptions& options) const override {
    static const std::vector<std::string> kDefaultOrder = {
        "abstraction", "ideal-membership", "sat"};
    const std::vector<std::string>& names =
        options.portfolio_engines.empty() ? kDefaultOrder
                                          : options.portfolio_engines;
    std::vector<const EquivEngine*> engines;
    engines.reserve(names.size());
    for (const std::string& n : names) {
      Result<const EquivEngine*> e = EngineRegistry::global().require(n);
      if (!e.ok()) return e.status();
      if (*e == static_cast<const EquivEngine*>(this))
        return Status::invalid_argument(
            "the portfolio cannot contain itself");
      engines.push_back(*e);
    }
    if (options.isolate_attempts) {
      if (options.portfolio_race)
        return Status::invalid_argument(
            "--race cannot be combined with isolated attempts (forking from "
            "pool threads is not supported); drop one of the two");
      if (options.worker_spec_path.empty() || options.worker_impl_path.empty())
        return Status::invalid_argument(
            "isolated portfolio attempts need the circuit file paths "
            "(worker_spec_path / worker_impl_path)");
    }
    GFA_COUNT("portfolio.runs", 1);
    return options.portfolio_race
               ? race(engines, names, spec, impl, field, options)
               : escalate(engines, names, spec, impl, field, options);
  }

 private:
  /// Per-attempt options: the parent's cancel token and deadline (tightened
  /// by attempt_timeout_seconds), a budget slot run_engine() will fill from
  /// memory_budget_bytes, and no portfolio recursion.
  static RunOptions attempt_options(const RunOptions& options) {
    RunOptions ao = options;
    ao.portfolio_engines.clear();
    ao.portfolio_race = false;
    ao.control.budget = nullptr;  // run_engine installs a fresh one
    if (options.attempt_timeout_seconds > 0.0) {
      const Deadline local = Deadline::after(options.attempt_timeout_seconds);
      if (local.when() < ao.control.deadline.when())
        ao.control.deadline = local;
    }
    return ao;
  }

  /// Builds the worker request for one isolated attempt: the attempt's
  /// engine plus the shared limits; the wall clock is the tighter of the
  /// per-attempt timeout and what remains of the overall deadline.
  static worker::WorkerRequest worker_request_of(const RunOptions& options,
                                                 const std::string& engine,
                                                 unsigned k) {
    worker::WorkerRequest req;
    req.spec_path = options.worker_spec_path;
    req.impl_path = options.worker_impl_path;
    req.k = k;
    req.engine = engine;
    double timeout = options.attempt_timeout_seconds;
    if (!options.control.deadline.is_infinite()) {
      const double left =
          std::max(0.001, options.control.deadline.remaining_seconds());
      timeout = timeout > 0 ? std::min(timeout, left) : left;
    }
    req.timeout_seconds = timeout;
    req.sat_conflict_limit = options.sat_conflict_limit;
    req.bdd_node_limit = options.bdd_node_limit;
    req.max_terms = options.max_terms;
    req.gb_max_reductions = options.gb_max_reductions;
    req.gb_max_poly_terms = options.gb_max_poly_terms;
    req.memory_budget_bytes = options.memory_budget_bytes;
    req.checkpoint_dir = options.checkpoint_dir;
    req.checkpoint_interval = options.checkpoint_interval;
    req.checkpoint_resume = options.checkpoint_resume;
    return req;
  }

  Result<VerifyResult> escalate(const std::vector<const EquivEngine*>& engines,
                                const std::vector<std::string>& names,
                                const Netlist& spec, const Netlist& impl,
                                const Gf2k& field,
                                const RunOptions& options) const {
    VerifyResult out;
    std::size_t ran = 0;
    std::size_t leaked_bytes = 0;
    for (std::size_t i = 0; i < engines.size(); ++i) {
      if (options.control.should_stop()) {
        Status stop = options.control.check();
        for (std::size_t j = i; j < engines.size(); ++j)
          out.attempts.push_back(skipped_record(names[j], stop.to_string()));
        return Status::with_code(stop.code(), stop.message() + " after " +
                                       std::to_string(ran) + " attempt(s) [" +
                                       summarize(out.attempts) + "]");
      }
      EngineRun run;
      if (options.isolate_attempts) {
        // A forked worker owns its whole address space; a crash (or rlimit
        // trip) in one engine is an attempt-local kWorkerCrashed that falls
        // through to the next, exactly like a mem-out does in-process.
        run = worker::run_in_worker(worker_request_of(options, names[i],
                                                      field.k()));
      } else {
        // The portfolio owns each attempt's budget (rather than letting
        // run_engine wrap one) so it can verify the attempt released every
        // lease — a leak here would silently starve later attempts if the
        // budget were ever shared.
        RunOptions ao = attempt_options(options);
        std::optional<ResourceBudget> attempt_budget;
        if (options.memory_budget_bytes != 0) {
          attempt_budget.emplace(options.memory_budget_bytes);
          ao.control.budget = &*attempt_budget;
        }
        run = run_engine(*engines[i], spec, impl, field, ao);
        if (attempt_budget) leaked_bytes += attempt_budget->used_bytes();
      }
      ++ran;
      if (run.resumed) out.resumed = true;
      out.attempts.push_back(record_of(run));
      if (definitive(run)) {
        GFA_COUNT("portfolio.attempts", ran);
        for (std::size_t j = i + 1; j < engines.size(); ++j)
          out.attempts.push_back(skipped_record(
              names[j], names[i] + " already produced a verdict"));
        out.verdict = run.verdict;
        out.detail = names[i] + (run.detail.empty() ? "" : ": " + run.detail);
        finish_stats(out, ran, leaked_bytes);
        return out;
      }
      // Ok(kUnknown) and attempt-local failures both fall through; a parent
      // deadline/cancel surfaces as should_stop() on the next iteration
      // (top of loop) and aborts the whole portfolio there.
      GFA_LOG_INFO("portfolio",
                   names[i] << " did not decide ("
                            << (run.status.ok() ? verdict_name(run.verdict)
                                                : run.status.to_string())
                            << "), " << (i + 1 < engines.size()
                                             ? "trying next engine"
                                             : "no engines left"));
    }
    return conclude_undecided(std::move(out), ran, leaked_bytes, options);
  }

  Result<VerifyResult> race(const std::vector<const EquivEngine*>& engines,
                            const std::vector<std::string>& names,
                            const Netlist& spec, const Netlist& impl,
                            const Gf2k& field,
                            const RunOptions& options) const {
    // Every attempt shares one race token: the first definitive finisher
    // fires it and the rest unwind as kCancelled at their next checkpoint.
    // Attempts still observe the parent deadline (copied into their
    // control); a parent *cancel* fired mid-attempt is observed between
    // attempts/chunks, not inside a running one — an accepted limitation of
    // carrying a single token per control.
    CancelToken race_cancel;
    if (options.control.cancel.cancelled()) race_cancel.request_cancel();
    std::vector<std::optional<EngineRun>> runs(engines.size());
    // Loser hygiene: every attempt gets its own budget, created and checked
    // on the attempt's thread. A cancelled loser unwinds through its
    // BudgetLease destructors before run_engine returns, so by the time the
    // winner is reported no loser may still hold leased bytes — any residue
    // is surfaced in budget_leaked_bytes instead of silently vanishing with
    // the budget object.
    std::atomic<std::size_t> leaked{0};
    try {
      parallel_for(
          engines.size(),
          [&](std::size_t i) {
            if (race_cancel.cancelled() || options.control.should_stop())
              return;  // a winner (or the parent) already ended the race
            RunOptions ao = attempt_options(options);
            ao.control.cancel = race_cancel;
            std::optional<ResourceBudget> attempt_budget;
            if (options.memory_budget_bytes != 0) {
              attempt_budget.emplace(options.memory_budget_bytes);
              ao.control.budget = &*attempt_budget;
            }
            runs[i] = run_engine(*engines[i], spec, impl, field, ao);
            if (attempt_budget)
              leaked.fetch_add(attempt_budget->used_bytes(),
                               std::memory_order_relaxed);
            if (definitive(*runs[i])) race_cancel.request_cancel();
          },
          &options.control);
    } catch (const StatusError& e) {
      // The parent control fired between chunks; drain what we have.
      race_cancel.request_cancel();
      std::vector<AttemptRecord> attempts;
      for (std::size_t i = 0; i < engines.size(); ++i)
        attempts.push_back(runs[i] ? record_of(*runs[i])
                                   : skipped_record(names[i],
                                                    e.status.to_string()));
      return Status::with_code(e.status.code(), e.status.message() +
                                         " during portfolio race [" +
                                         summarize(attempts) + "]");
    }
    VerifyResult out;
    std::size_t ran = 0;
    std::size_t winner = engines.size();
    for (std::size_t i = 0; i < engines.size(); ++i) {
      if (runs[i]) {
        ++ran;
        out.attempts.push_back(record_of(*runs[i]));
        if (winner == engines.size() && definitive(*runs[i])) winner = i;
      } else {
        out.attempts.push_back(
            skipped_record(names[i], "race decided before this engine ran"));
      }
    }
    for (const std::optional<EngineRun>& r : runs)
      if (r && r->resumed) out.resumed = true;
    if (winner < engines.size()) {
      const EngineRun& run = *runs[winner];
      out.verdict = run.verdict;
      out.detail =
          names[winner] + (run.detail.empty() ? "" : ": " + run.detail);
      finish_stats(out, ran, leaked.load(std::memory_order_relaxed));
      return out;
    }
    if (options.control.should_stop()) {
      const Status stop = options.control.check();
      return Status::with_code(stop.code(), stop.message() + " during portfolio race [" +
                                     summarize(out.attempts) + "]");
    }
    return conclude_undecided(std::move(out), ran,
                              leaked.load(std::memory_order_relaxed), options);
  }

  /// Shared no-winner ending: any Ok(kUnknown) attempt means the portfolio
  /// itself is Ok(kUnknown); all-failed composes a status from the attempts
  /// (most severe code wins so a mem-out is not masked by an unsupported).
  static Result<VerifyResult> conclude_undecided(VerifyResult out,
                                                 std::size_t ran,
                                                 std::size_t leaked_bytes,
                                                 const RunOptions& options) {
    GFA_COUNT("portfolio.attempts", ran);
    GFA_COUNT("portfolio.undecided", 1);
    const bool any_unknown =
        std::any_of(out.attempts.begin(), out.attempts.end(),
                    [](const AttemptRecord& a) {
                      return !a.skipped && a.status.ok();
                    });
    if (any_unknown) {
      out.verdict = Verdict::kUnknown;
      out.detail = "no engine was definitive [" + summarize(out.attempts) + "]";
      finish_stats(out, ran, leaked_bytes);
      return out;
    }
    if (options.control.should_stop()) {
      const Status stop = options.control.check();
      return Status::with_code(stop.code(), stop.message() + " after " +
                                     std::to_string(ran) + " attempt(s) [" +
                                     summarize(out.attempts) + "]");
    }
    // All attempts failed on their own; report the last failure's code with
    // the whole history in the message.
    StatusCode code = StatusCode::kInternal;
    for (const AttemptRecord& a : out.attempts)
      if (!a.skipped && !a.status.ok()) code = a.status.code();
    return Status::with_code(code, "all " + std::to_string(ran) +
                            " portfolio attempt(s) failed [" +
                            summarize(out.attempts) + "]");
  }

  /// `leaked_bytes` sums each finished attempt's ResourceBudget::used_bytes()
  /// at retirement — bytes an attempt still held leased after its run ended.
  /// Always emitted (0 when budgets were off) so tests can assert losers
  /// released everything.
  static void finish_stats(VerifyResult& out, std::size_t ran,
                           std::size_t leaked_bytes) {
    out.stats["attempts_run"] = static_cast<double>(ran);
    out.stats["attempts_total"] = static_cast<double>(out.attempts.size());
    out.stats["budget_leaked_bytes"] = static_cast<double>(leaked_bytes);
  }
};

}  // namespace

std::unique_ptr<EquivEngine> make_portfolio_engine() {
  return std::make_unique<PortfolioEngine>();
}

}  // namespace gfa::engine
