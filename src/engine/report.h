#pragma once
// Structured run reports for the engine layer.
//
// run_engine() executes one engine under wall-clock timing and flattens the
// outcome — Status, verdict, detail, stats — into an EngineRun record;
// write_run_report() serializes a batch of records as JSON (via
// util/json_writer.h), the format shared by `gfa_tool verify --report` and
// `gfa_tool compare --report`.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace gfa::engine {

struct EngineRun {
  std::string engine;
  /// OK when the engine produced a verdict (including kUnknown); otherwise
  /// why it failed (kDeadlineExceeded, kResourceExhausted, …).
  Status status;
  /// Meaningful only when status.ok().
  Verdict verdict = Verdict::kUnknown;
  std::string detail;
  /// Typed witness for kNotEquivalent (simulator-replayed; see
  /// certify/counterexample.h), emitted as "counterexample" in JSON reports.
  certify::Counterexample counterexample;
  std::map<std::string, double> stats;
  double wall_ms = 0.0;
  /// Per-run delta of the global metrics registry (src/obs/metrics.h):
  /// counters are this run's increments, max-gauges the process peak so far.
  /// Empty unless metrics were enabled while the engine ran.
  std::map<std::string, std::uint64_t> metrics;
  /// Memory accounting when a ResourceBudget governed the run (both 0 when
  /// none did): the configured cap and the peak bytes charged against it —
  /// recorded on success *and* on a kResourceExhausted unwind.
  std::size_t budget_limit_bytes = 0;
  std::size_t budget_peak_bytes = 0;
  /// Portfolio attempt history (empty for ordinary engines) — or, for
  /// isolated runs under a retry policy, the per-fork attempt history.
  std::vector<AttemptRecord> attempts;
  /// True when the run continued from a reduction-chain checkpoint; emitted
  /// as "resumed": true in the JSON report.
  bool resumed = false;
  /// Worker telemetry for isolated runs (see worker/harness.h): heartbeat
  /// frames received and the last phase/step reported. Zero/empty for
  /// in-process runs or when heartbeats were disabled.
  std::uint64_t heartbeats = 0;
  std::string last_phase;
  std::uint64_t last_step = 0;
  /// /proc-sampled peak resident set (max of parent samples and what the
  /// worker reported), next to the byte-accounted budget peak; 0 = never
  /// sampled.
  std::uint64_t peak_rss_bytes = 0;
  /// Crash flight-recorder tail (obs/flight_recorder.h, pre-formatted via
  /// flight::format), from the worker's signal handler. Non-empty only when
  /// a worker died with a dump on the pipe; emitted as "flight_recorder".
  std::vector<std::string> flight_events;
  /// Serialized canonical forms when the run exported them (see
  /// engine/engine.h RunOptions::export_canonical). Carried on the record —
  /// and over the worker wire — for the service's cache; never serialized
  /// into JSON reports (they can be large and are an internal format).
  std::string canonical_spec;
  std::string canonical_impl;
  /// Cache disposition for service-run jobs: "hit", "miss", or "stored"
  /// (miss whose forms were added to the cache). Empty for non-service runs;
  /// emitted as "cache" in JSON reports when non-empty.
  std::string cache_outcome;
};

/// Runs `engine` on the instance, timing the call. Never throws: failures are
/// reported through EngineRun::status. When options.memory_budget_bytes is
/// set and no budget is installed yet (and the engine does not manage its
/// own), the run executes under a fresh ResourceBudget whose peak lands in
/// the record.
///
/// Verdict certification (src/certify/) runs here, after the engine:
///  * kNotEquivalent without an engine-supplied counterexample triggers a
///    simulation witness search, and any witness is simulator-replayed.
///  * kEquivalent with options.certify set is cross-checked by random
///    simulation; a disagreement rewrites the run's status to
///    kCertificationFailed with the flight-recorder tail attached.
EngineRun run_engine(const EquivEngine& engine, const Netlist& spec,
                     const Netlist& impl, const Gf2k& field,
                     const RunOptions& options);

/// Writes the batch as a JSON document:
///   {"tool": <tool>, "k": <k>, "runs": [{"engine", "status", "verdict",
///    "detail", "wall_ms", "stats": {...}}, ...]}
void write_run_report(std::ostream& out, const std::string& tool, unsigned k,
                      const std::vector<EngineRun>& runs);

}  // namespace gfa::engine
