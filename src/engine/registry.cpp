#include "engine/registry.h"

#include <cassert>
#include <utility>

namespace gfa::engine {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kEquivalent:
      return "equivalent";
    case Verdict::kNotEquivalent:
      return "not-equivalent";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

Result<Verdict> verdict_from_name(std::string_view name) {
  for (Verdict v :
       {Verdict::kEquivalent, Verdict::kNotEquivalent, Verdict::kUnknown}) {
    if (name == verdict_name(v)) return v;
  }
  return Status::invalid_argument("unknown verdict '" + std::string(name) +
                                  "'");
}

const EngineRegistry& EngineRegistry::global() {
  static const EngineRegistry* instance = [] {
    auto* r = new EngineRegistry();
    register_builtin_engines(*r);
    return r;
  }();
  return *instance;
}

const EquivEngine* EngineRegistry::find(std::string_view name) const {
  for (const auto& e : engines_) {
    if (e->name() == name) return e.get();
  }
  return nullptr;
}

Result<const EquivEngine*> EngineRegistry::require(std::string_view name) const {
  if (const EquivEngine* e = find(name)) return e;
  std::string known;
  for (const auto& e : engines_) {
    if (!known.empty()) known += ", ";
    known += e->name();
  }
  return Status::invalid_argument("unknown engine '" + std::string(name) +
                                  "' (known: " + known + ")");
}

std::vector<const EquivEngine*> EngineRegistry::engines() const {
  std::vector<const EquivEngine*> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e.get());
  return out;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e->name());
  return out;
}

void EngineRegistry::add(std::unique_ptr<EquivEngine> engine) {
  assert(engine != nullptr);
  assert(find(engine->name()) == nullptr && "duplicate engine name");
  engines_.push_back(std::move(engine));
}

}  // namespace gfa::engine
