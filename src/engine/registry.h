#pragma once
// Name-keyed registry of every built-in verification engine.
//
// The global() registry is constructed once, on first use, with the seven
// built-ins: abstraction (the paper's flow), sat, fraig, bdd, full-gb, and
// ideal-membership. Front ends resolve `--engine=<name>` through require();
// tests and benches iterate engines() to run the whole fleet.

#include <memory>
#include <string_view>
#include <vector>

#include "engine/engine.h"

namespace gfa::engine {

class EngineRegistry {
 public:
  /// The process-wide registry holding the built-in engines. Thread-safe
  /// (constructed under the C++ static-initialization guarantee, immutable
  /// afterwards).
  static const EngineRegistry& global();

  /// The engine registered under `name`, or nullptr.
  const EquivEngine* find(std::string_view name) const;

  /// Like find(), but an unknown name becomes kInvalidArgument with a message
  /// listing every registered engine.
  Result<const EquivEngine*> require(std::string_view name) const;

  /// All engines, in registration order (abstraction first).
  std::vector<const EquivEngine*> engines() const;

  /// Registration-ordered names, e.g. for usage strings.
  std::vector<std::string> names() const;

  /// Adds an engine (takes ownership). The name must be unique.
  void add(std::unique_ptr<EquivEngine> engine);

 private:
  std::vector<std::unique_ptr<EquivEngine>> engines_;
};

/// Installs the built-in engines — six concrete methods plus the portfolio
/// meta-engine — into `registry` (called by global();
/// exposed for tests that want a private registry).
void register_builtin_engines(EngineRegistry& registry);

}  // namespace gfa::engine
