#pragma once
// Factory for the portfolio meta-engine (see portfolio.cpp for the policy
// semantics). Registered alongside the six concrete engines by
// register_builtin_engines().

#include <memory>

#include "engine/engine.h"

namespace gfa::engine {

std::unique_ptr<EquivEngine> make_portfolio_engine();

}  // namespace gfa::engine
