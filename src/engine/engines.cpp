// The six concrete built-in EquivEngine adapters (the portfolio meta-engine
// lives in portfolio.cpp). Each wraps one of the repository's
// verification methods behind the uniform verify() contract (see engine.h for
// the Status-vs-Unknown semantics) and threads RunOptions::control into the
// method's deep loops.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "abstraction/canon_serial.h"
#include "abstraction/equivalence.h"
#include "abstraction/extractor.h"
#include "abstraction/rato.h"
#include "abstraction/rewriter.h"
#include "baselines/aig/aig.h"
#include "certify/certify.h"
#include "baselines/bdd/bdd.h"
#include "baselines/full_gb.h"
#include "baselines/ideal_membership.h"
#include "baselines/miter.h"
#include "baselines/sat/solver.h"
#include "engine/portfolio.h"
#include "engine/registry.h"
#include "worker/checkpoint.h"

namespace gfa::engine {

namespace {

/// Remaps `g` (over `from` variable ids) into `to` ids by variable name.
/// Throws std::invalid_argument when a name is missing from `to`.
MPoly remap_by_name(const MPoly& g, const VarPool& from, VarPool& to) {
  MPoly out(&g.field());
  for (const auto& [mono, coeff] : g.terms()) {
    std::vector<std::pair<VarId, BigUint>> pairs;
    pairs.reserve(mono.factors().size());
    for (const auto& [v, e] : mono.factors()) {
      const std::string& name = from.name(v);
      if (!to.contains(name))
        throw std::invalid_argument("implementation declares no word named '" +
                                    name + "'");
      pairs.emplace_back(to.id(name), e);
    }
    out.add_term(Monomial::from_pairs(std::move(pairs)), coeff);
  }
  return out;
}

/// Replays a machine witness and attaches the typed counterexample.
/// Best-effort: a failure to replay leaves the result untouched, and
/// run_engine() backfills by simulation search.
void attach_witness(VerifyResult& out, const Netlist& spec,
                    const Netlist& impl, const Gf2k& field,
                    const certify::Witness& witness) {
  try {
    out.counterexample = certify::replay_witness(spec, impl, field, witness);
  } catch (...) {
  }
}

/// Groups a miter-input bit assignment (SAT model, BDD path, fraig vector
/// re-expanded over the miter) into a witness and attaches it.
void attach_bit_witness(VerifyResult& out, const Netlist& spec,
                        const Netlist& impl, const Gf2k& field,
                        const Netlist& miter, const std::vector<bool>& bits) {
  try {
    attach_witness(out, spec, impl, field,
                   certify::witness_from_bits(miter, bits));
  } catch (...) {
  }
}

// ---------------------------------------------------------------------------
// abstraction — the paper's flow: RATO-guided reduction + Frobenius lift,
// then coefficient matching of the two canonical polynomials.

class AbstractionEngine final : public EquivEngine {
 public:
  std::string name() const override { return "abstraction"; }
  std::string description() const override {
    return "word-level abstraction via guided Groebner bases (the paper's "
           "method); canonical-form coefficient matching";
  }
  Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field,
                              const RunOptions& options) const override {
    ExtractionOptions eo;
    eo.max_terms = options.max_terms;
    eo.control = &options.control;
    ExtractionCheckpoint ck;
    if (!options.checkpoint_dir.empty()) {
      // Fail fast with the concrete path problem instead of letting every
      // periodic save die with a cryptic open error.
      if (Status s = worker::ensure_directory(options.checkpoint_dir);
          !s.ok())
        return s;
      ck.directory = options.checkpoint_dir;
      if (options.checkpoint_interval != 0)
        ck.interval = options.checkpoint_interval;
      ck.resume = options.checkpoint_resume;
      eo.checkpoint = &ck;
    }
    Result<EquivalenceResult> r = try_check_equivalence(spec, impl, field, eo);
    if (!r.ok()) return r.status();
    VerifyResult out;
    if (options.export_canonical) {
      out.canonical_spec = encode_canon_form(r->spec);
      out.canonical_impl = encode_canon_form(r->impl);
    }
    out.verdict =
        r->equivalent ? Verdict::kEquivalent : Verdict::kNotEquivalent;
    out.detail = r->difference;
    if (out.verdict == Verdict::kNotEquivalent) {
      // Schwartz–Zippel on the two canonical polynomials: they differ as
      // functions, so a random point separates them with high probability.
      try {
        if (const auto w =
                certify::find_word_function_witness(r->spec, r->impl, field))
          attach_witness(out, spec, impl, field, *w);
      } catch (...) {
      }
    }
    out.resumed = r->spec.stats.resumed || r->impl.stats.resumed;
    out.stats["spec_substitutions"] =
        static_cast<double>(r->spec.stats.substitutions);
    out.stats["impl_substitutions"] =
        static_cast<double>(r->impl.stats.substitutions);
    out.stats["spec_peak_terms"] = static_cast<double>(r->spec.stats.peak_terms);
    out.stats["impl_peak_terms"] = static_cast<double>(r->impl.stats.peak_terms);
    return out;
  }
};

// ---------------------------------------------------------------------------
// sat — Tseitin-encoded miter handed to the in-tree CDCL solver.

class SatEngine final : public EquivEngine {
 public:
  std::string name() const override { return "sat"; }
  std::string description() const override {
    return "CDCL SAT on the Tseitin-encoded miter (contemporary CEC baseline)";
  }
  Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field,
                              const RunOptions& options) const override {
    try {
      const Netlist miter = make_miter(spec, impl);
      const Cnf cnf = tseitin_encode(miter, miter.outputs()[0]);
      sat::Solver solver;
      for (const auto& clause : cnf.clauses) solver.add_clause(clause);
      const sat::Result res =
          solver.solve(options.sat_conflict_limit, &options.control);
      VerifyResult out;
      const sat::SolverStats& st = solver.stats();
      out.stats["conflicts"] = static_cast<double>(st.conflicts);
      out.stats["decisions"] = static_cast<double>(st.decisions);
      out.stats["propagations"] = static_cast<double>(st.propagations);
      out.stats["clauses"] = static_cast<double>(cnf.clauses.size());
      switch (res) {
        case sat::Result::kUnsat:
          out.verdict = Verdict::kEquivalent;
          break;
        case sat::Result::kSat: {
          out.verdict = Verdict::kNotEquivalent;
          out.detail = "miter satisfiable: some input distinguishes the circuits";
          // Tseitin gives net n the variable n+1, so the model projects
          // straight onto the miter's (shared, word-grouped) inputs.
          std::vector<bool> bits(miter.inputs().size());
          for (std::size_t i = 0; i < bits.size(); ++i)
            bits[i] =
                solver.model_value(static_cast<int>(miter.inputs()[i]) + 1);
          attach_bit_witness(out, spec, impl, field, miter, bits);
          break;
        }
        case sat::Result::kUnknown:
          out.verdict = Verdict::kUnknown;
          out.detail = "conflict budget (" +
                       std::to_string(options.sat_conflict_limit) +
                       ") exhausted";
          break;
      }
      return out;
    } catch (...) {
      return status_from_current_exception();
    }
  }
};

// ---------------------------------------------------------------------------
// fraig — AIG sweeping with SAT-backed merging, then one final miter query.

class FraigEngine final : public EquivEngine {
 public:
  std::string name() const override { return "fraig"; }
  std::string description() const override {
    return "AIG fraiging: simulate, merge SAT-proven internal equivalences, "
           "final miter SAT query";
  }
  Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field,
                              const RunOptions& options) const override {
    try {
      aig::FraigOptions fo;
      fo.final_conflicts = options.sat_conflict_limit;
      fo.control = &options.control;
      const aig::FraigResult r = aig::fraig_equivalence_check(spec, impl, fo);
      VerifyResult out;
      out.stats["merges"] = static_cast<double>(r.merges);
      out.stats["sat_calls"] = static_cast<double>(r.sat_calls);
      out.stats["refinements"] = static_cast<double>(r.refinements);
      out.stats["final_conflicts"] = static_cast<double>(r.final_conflicts);
      switch (r.status) {
        case aig::FraigResult::Status::kEquivalent:
          out.verdict = Verdict::kEquivalent;
          break;
        case aig::FraigResult::Status::kNotEquivalent: {
          out.verdict = Verdict::kNotEquivalent;
          out.detail = "counterexample found over " +
                       std::to_string(r.counterexample.size()) + " inputs";
          // The AIG's inputs were created word-major over input_words(spec)
          // with each word LSB-first, so the refinement vector slices
          // directly into word coordinates.
          try {
            certify::Witness w;
            std::size_t at = 0;
            for (const Word* word : input_words(spec)) {
              Gf2Poly elem;
              for (std::size_t b = 0; b < word->bits.size(); ++b, ++at)
                if (at < r.counterexample.size() && r.counterexample[at])
                  elem.set_coeff(static_cast<unsigned>(b), true);
              w[word->name] = std::move(elem);
            }
            attach_witness(out, spec, impl, field, w);
          } catch (...) {
          }
          break;
        }
        case aig::FraigResult::Status::kUnknown:
          out.verdict = Verdict::kUnknown;
          out.detail = "conflict budget (" +
                       std::to_string(options.sat_conflict_limit) +
                       ") exhausted";
          break;
      }
      return out;
    } catch (...) {
      return status_from_current_exception();
    }
  }
};

// ---------------------------------------------------------------------------
// bdd — the miter output's ROBDD must be the false terminal.

class BddEngine final : public EquivEngine {
 public:
  std::string name() const override { return "bdd"; }
  std::string description() const override {
    return "ROBDD of the miter output (canonical-DAG baseline); equivalent "
           "iff it is the false terminal";
  }
  Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field,
                              const RunOptions& options) const override {
    try {
      const Netlist miter = make_miter(spec, impl);
      bdd::Manager manager(options.bdd_node_limit);
      manager.set_exec_control(&options.control);
      std::vector<unsigned> vars(miter.inputs().size());
      for (unsigned i = 0; i < vars.size(); ++i) vars[i] = i;
      const std::vector<bdd::NodeRef> refs =
          build_netlist_bdds(manager, miter, vars);
      const bdd::NodeRef out_ref = refs[miter.outputs()[0]];
      VerifyResult out;
      out.stats["nodes"] = static_cast<double>(manager.num_nodes());
      out.stats["miter_nodes"] = static_cast<double>(manager.count_nodes(out_ref));
      out.stats["cache_lookups"] = static_cast<double>(manager.cache_lookups());
      out.stats["cache_hits"] = static_cast<double>(manager.cache_hits());
      if (manager.cache_lookups() > 0)
        out.stats["cache_hit_rate"] = static_cast<double>(manager.cache_hits()) /
                                      static_cast<double>(manager.cache_lookups());
      out.verdict = out_ref == bdd::kFalse ? Verdict::kEquivalent
                                           : Verdict::kNotEquivalent;
      if (out.verdict == Verdict::kNotEquivalent) {
        out.detail = "miter BDD is not the false terminal";
        // Variable i is miter input i, so a satisfying path through the
        // miter's BDD is exactly a distinguishing input assignment.
        attach_bit_witness(
            out, spec, impl, field, miter,
            manager.satisfying_assignment(
                out_ref, static_cast<unsigned>(vars.size())));
      }
      return out;
    } catch (const bdd::BddBudgetExceeded& e) {
      return Status::resource_exhausted(e.what());
    } catch (...) {
      return status_from_current_exception();
    }
  }
};

// ---------------------------------------------------------------------------
// full-gb — unguided Buchberger on J + J_0 for both circuits, then compare
// the extracted word polynomials.

class FullGbEngine final : public EquivEngine {
 public:
  std::string name() const override { return "full-gb"; }
  std::string description() const override {
    return "unguided Buchberger over the full circuit ideal (the paper's "
           "slimgb baseline); compares the two extracted word polynomials";
  }
  Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field,
                              const RunOptions& options) const override {
    try {
      BuchbergerOptions bo;
      bo.max_reductions = options.gb_max_reductions;
      bo.max_poly_terms = options.gb_max_poly_terms;
      bo.control = &options.control;
      const FullGbResult rs = abstract_by_full_groebner(spec, field, bo);
      const FullGbResult ri = abstract_by_full_groebner(impl, field, bo);
      VerifyResult out;
      out.stats["spec_reductions"] = static_cast<double>(rs.reductions);
      out.stats["impl_reductions"] = static_cast<double>(ri.reductions);
      out.stats["spec_basis_size"] = static_cast<double>(rs.basis_size);
      out.stats["impl_basis_size"] = static_cast<double>(ri.basis_size);
      if (!rs.completed || !ri.completed || !rs.found || !ri.found) {
        out.verdict = Verdict::kUnknown;
        out.detail = "Buchberger budget exhausted before a word polynomial "
                     "was isolated";
        return out;
      }
      VarPool pool = rs.pool;
      const MPoly gi = remap_by_name(ri.g, ri.pool, pool);
      out.verdict =
          rs.g == gi ? Verdict::kEquivalent : Verdict::kNotEquivalent;
      if (out.verdict == Verdict::kNotEquivalent)
        out.detail = "extracted word polynomials differ";
      return out;
    } catch (...) {
      return status_from_current_exception();
    }
  }
};

// ---------------------------------------------------------------------------
// ideal-membership — Lv et al.: the method needs the spec *polynomial*, so
// this adapter first abstracts the spec circuit (the cheap, guided flow),
// then tests Z + G_spec ∈ J(impl) + J_0 by backward division.

class IdealMembershipEngine final : public EquivEngine {
 public:
  std::string name() const override { return "ideal-membership"; }
  std::string description() const override {
    return "Lv-Kalla-Enescu ideal-membership test of the miter polynomial "
           "against the implementation's circuit ideal";
  }
  Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                              const Gf2k& field,
                              const RunOptions& options) const override {
    ExtractionOptions eo;
    eo.max_terms = options.max_terms;
    eo.control = &options.control;
    Result<WordFunction> spec_fn = try_extract_word_function(spec, field, eo);
    if (!spec_fn.ok()) return spec_fn.status();
    try {
      IdealMembershipOptions io;
      io.max_terms = options.max_terms;
      io.control = &options.control;
      const IdealMembershipResult r = verify_by_ideal_membership(
          impl, field,
          [&](const Gf2k*, VarPool& pool) {
            return remap_by_name(spec_fn->g, spec_fn->pool, pool);
          },
          io);
      VerifyResult out;
      out.stats["substitutions"] = static_cast<double>(r.substitutions);
      out.stats["peak_terms"] = static_cast<double>(r.peak_terms);
      out.stats["residual_terms"] = static_cast<double>(r.residual_terms);
      out.verdict =
          r.is_member ? Verdict::kEquivalent : Verdict::kNotEquivalent;
      if (out.verdict == Verdict::kNotEquivalent)
        out.detail = "miter polynomial leaves a residual of " +
                     std::to_string(r.residual_terms) + " term(s)";
      return out;
    } catch (const RewriteBudgetExceeded& e) {
      return Status::resource_exhausted(e.what());
    } catch (...) {
      return status_from_current_exception();
    }
  }
};

}  // namespace

void register_builtin_engines(EngineRegistry& registry) {
  registry.add(std::make_unique<AbstractionEngine>());
  registry.add(std::make_unique<SatEngine>());
  registry.add(std::make_unique<FraigEngine>());
  registry.add(std::make_unique<BddEngine>());
  registry.add(std::make_unique<FullGbEngine>());
  registry.add(std::make_unique<IdealMembershipEngine>());
  registry.add(make_portfolio_engine());
}

}  // namespace gfa::engine
