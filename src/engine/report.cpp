#include "engine/report.h"

#include <chrono>
#include <optional>

#include "certify/certify.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/parallel_for.h"

namespace gfa::engine {

namespace {

/// Backfills a missing kNotEquivalent witness by simulation search and
/// replay. Best-effort: instances without the word structure the simulator
/// needs (or a witness evading the random search) leave the record as-is.
void backfill_counterexample(EngineRun& run, const Netlist& spec,
                             const Netlist& impl, const Gf2k& field) {
  try {
    const std::optional<certify::Witness> w =
        certify::find_simulation_witness(spec, impl, field);
    if (!w) return;
    run.counterexample = certify::replay_witness(spec, impl, field, *w);
  } catch (...) {
    // Witness search is a certification extra, never a reason to fail a
    // run that already has its verdict.
  }
}

/// Cross-checks a kEquivalent verdict by random simulation. A disagreement
/// (or the injected certify:mismatch fault) rewrites the run's status to
/// kCertificationFailed and attaches the flight-recorder tail.
void certify_run(EngineRun& run, const Netlist& spec, const Netlist& impl,
                 const Gf2k& field) {
  certify::CertifyOutcome outcome;
  try {
    outcome = certify::certify_equivalence(spec, impl, field);
  } catch (...) {
    return;  // malformed word structure: nothing to cross-check
  }
  run.stats["certify_points"] = static_cast<double>(outcome.points);
  if (outcome.status.ok()) return;
  run.status = outcome.status;
  run.detail = outcome.status.message();
  for (const obs::flight::Event& e : obs::flight::tail())
    run.flight_events.push_back(obs::flight::format(e));
  GFA_LOG_ERROR("engine", "certification failed for " << run.engine << ": "
                                                      << run.detail);
}

}  // namespace

EngineRun run_engine(const EquivEngine& engine, const Netlist& spec,
                     const Netlist& impl, const Gf2k& field,
                     const RunOptions& original_options) {
  EngineRun run;
  run.engine = engine.name();
  // Install a fresh ResourceBudget for this run when one was requested and
  // nothing upstream (a portfolio attempt, a caller-owned budget) provides
  // it. `options` aliases either the original or the budgeted copy.
  RunOptions budgeted;
  std::optional<ResourceBudget> local_budget;
  const bool wrap = original_options.memory_budget_bytes != 0 &&
                    original_options.control.budget == nullptr &&
                    !engine.manages_budget();
  if (wrap) {
    budgeted = original_options;
    local_budget.emplace(original_options.memory_budget_bytes);
    budgeted.control.budget = &*local_budget;
  }
  const RunOptions& options = wrap ? budgeted : original_options;
  GFA_LOG_INFO("engine", "running " << run.engine << " (k=" << field.k()
                                    << ", spec " << spec.num_logic_gates()
                                    << " gates, impl "
                                    << impl.num_logic_gates() << " gates)");
  const bool measured = obs::metrics_enabled();
  const obs::MetricsSnapshot before =
      measured ? obs::Metrics::instance().snapshot() : obs::MetricsSnapshot{};
  if (measured) obs::sample_rss_bytes();
  const auto start = std::chrono::steady_clock::now();
  Result<VerifyResult> r = [&]() -> Result<VerifyResult> {
    const obs::TraceSpan span("verify:" + run.engine, "engine");
    try {
      return engine.verify(spec, impl, field, options);
    } catch (...) {
      // Engines return Status rather than throw, but a belt-and-braces
      // boundary keeps one misbehaving engine from killing a compare batch.
      return status_from_current_exception();
    }
  }();
  const auto end = std::chrono::steady_clock::now();
  run.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  if (measured) {
    obs::sample_rss_bytes();
    run.metrics = obs::Metrics::instance().delta(before);
    run.peak_rss_bytes = obs::peak_rss_bytes();
  }
  if (const ResourceBudget* b = options.control.budget) {
    run.budget_limit_bytes = b->limit_bytes();
    run.budget_peak_bytes = b->peak_bytes();
  }
  if (r.ok()) {
    run.verdict = r->verdict;
    run.detail = std::move(r->detail);
    run.counterexample = std::move(r->counterexample);
    run.stats = std::move(r->stats);
    run.attempts = std::move(r->attempts);
    run.resumed = r->resumed;
    run.canonical_spec = std::move(r->canonical_spec);
    run.canonical_impl = std::move(r->canonical_impl);
    if (run.verdict == Verdict::kNotEquivalent &&
        !run.counterexample.replayed) {
      backfill_counterexample(run, spec, impl, field);
    } else if (run.verdict == Verdict::kEquivalent && options.certify) {
      certify_run(run, spec, impl, field);
    }
  } else {
    run.status = r.status();
    run.detail = r.status().message();
  }
  GFA_LOG_INFO("engine",
               run.engine << " finished: "
                          << (run.status.ok() ? verdict_name(run.verdict)
                                              : run.status.to_string())
                          << " in " << run.wall_ms << " ms");
  return run;
}

void write_run_report(std::ostream& out, const std::string& tool, unsigned k,
                      const std::vector<EngineRun>& runs) {
  JsonWriter w(out);
  w.begin_object();
  w.member("tool", tool);
  w.member("k", k);
  w.member("threads", parallel_thread_count());
  w.key("runs");
  w.begin_array();
  for (const EngineRun& run : runs) {
    w.begin_object();
    w.member("engine", run.engine);
    w.member("status", status_code_name(run.status.code()));
    if (run.status.ok()) w.member("verdict", verdict_name(run.verdict));
    w.member("detail", run.detail);
    if (!run.counterexample.empty()) {
      w.key("counterexample");
      w.begin_object();
      w.key("inputs");
      w.begin_object();
      for (const auto& [name, elem] : run.counterexample.inputs)
        w.member(name, elem);
      w.end_object();
      w.member("output_word", run.counterexample.output_word);
      w.member("expected", run.counterexample.expected);
      w.member("actual", run.counterexample.actual);
      w.member("replayed", run.counterexample.replayed);
      w.end_object();
    }
    w.member("wall_ms", run.wall_ms);
    if (run.resumed) w.member("resumed", true);
    if (!run.cache_outcome.empty()) w.member("cache", run.cache_outcome);
    w.key("stats");
    w.begin_object();
    for (const auto& [key, value] : run.stats) w.member(key, value);
    w.end_object();
    if (!run.metrics.empty()) {
      w.key("metrics");
      w.begin_object();
      for (const auto& [key, value] : run.metrics) w.member(key, value);
      w.end_object();
    }
    if (run.budget_limit_bytes != 0 || run.budget_peak_bytes != 0) {
      w.member("budget_limit_bytes",
               static_cast<std::uint64_t>(run.budget_limit_bytes));
      w.member("budget_peak_bytes",
               static_cast<std::uint64_t>(run.budget_peak_bytes));
    }
    if (run.peak_rss_bytes != 0)
      w.member("peak_rss_bytes", run.peak_rss_bytes);
    if (run.heartbeats != 0) {
      w.key("telemetry");
      w.begin_object();
      w.member("heartbeats", run.heartbeats);
      w.member("last_phase", run.last_phase);
      w.member("last_step", run.last_step);
      w.end_object();
    }
    if (!run.flight_events.empty()) {
      w.key("flight_recorder");
      w.begin_array();
      for (const std::string& line : run.flight_events) w.value(line);
      w.end_array();
    }
    if (!run.attempts.empty()) {
      w.key("attempts");
      w.begin_array();
      for (const AttemptRecord& a : run.attempts) {
        w.begin_object();
        w.member("engine", a.engine);
        if (a.skipped) {
          w.member("skipped", true);
        } else {
          w.member("status", status_code_name(a.status.code()));
          if (a.status.ok()) w.member("verdict", verdict_name(a.verdict));
          w.member("wall_ms", a.wall_ms);
          if (a.budget_peak_bytes != 0)
            w.member("budget_peak_bytes",
                     static_cast<std::uint64_t>(a.budget_peak_bytes));
          if (a.heartbeats != 0) {
            w.member("heartbeats", a.heartbeats);
            w.member("last_phase", a.last_phase);
            w.member("last_step", a.last_step);
          }
        }
        w.member("detail", a.detail);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace gfa::engine
