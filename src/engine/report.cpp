#include "engine/report.h"

#include <chrono>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"

namespace gfa::engine {

EngineRun run_engine(const EquivEngine& engine, const Netlist& spec,
                     const Netlist& impl, const Gf2k& field,
                     const RunOptions& options) {
  EngineRun run;
  run.engine = engine.name();
  GFA_LOG_INFO("engine", "running " << run.engine << " (k=" << field.k()
                                    << ", spec " << spec.num_logic_gates()
                                    << " gates, impl "
                                    << impl.num_logic_gates() << " gates)");
  const bool measured = obs::metrics_enabled();
  const obs::MetricsSnapshot before =
      measured ? obs::Metrics::instance().snapshot() : obs::MetricsSnapshot{};
  const auto start = std::chrono::steady_clock::now();
  Result<VerifyResult> r = [&]() -> Result<VerifyResult> {
    const obs::TraceSpan span("verify:" + run.engine, "engine");
    try {
      return engine.verify(spec, impl, field, options);
    } catch (...) {
      // Engines return Status rather than throw, but a belt-and-braces
      // boundary keeps one misbehaving engine from killing a compare batch.
      return status_from_current_exception();
    }
  }();
  const auto end = std::chrono::steady_clock::now();
  run.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  if (measured) run.metrics = obs::Metrics::instance().delta(before);
  if (r.ok()) {
    run.verdict = r->verdict;
    run.detail = std::move(r->detail);
    run.stats = std::move(r->stats);
  } else {
    run.status = r.status();
    run.detail = r.status().message();
  }
  GFA_LOG_INFO("engine",
               run.engine << " finished: "
                          << (run.status.ok() ? verdict_name(run.verdict)
                                              : run.status.to_string())
                          << " in " << run.wall_ms << " ms");
  return run;
}

void write_run_report(std::ostream& out, const std::string& tool, unsigned k,
                      const std::vector<EngineRun>& runs) {
  JsonWriter w(out);
  w.begin_object();
  w.member("tool", tool);
  w.member("k", k);
  w.key("runs");
  w.begin_array();
  for (const EngineRun& run : runs) {
    w.begin_object();
    w.member("engine", run.engine);
    w.member("status", status_code_name(run.status.code()));
    if (run.status.ok()) w.member("verdict", verdict_name(run.verdict));
    w.member("detail", run.detail);
    w.member("wall_ms", run.wall_ms);
    w.key("stats");
    w.begin_object();
    for (const auto& [key, value] : run.stats) w.member(key, value);
    w.end_object();
    if (!run.metrics.empty()) {
      w.key("metrics");
      w.begin_object();
      for (const auto& [key, value] : run.metrics) w.member(key, value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace gfa::engine
