#pragma once
// The unified verification-engine interface.
//
// Every way this repository can decide "spec ≡ impl over F_{2^k}" — the
// paper's canonical abstraction, and the SAT / fraig / BDD / full-GB /
// ideal-membership baselines it is measured against — implements EquivEngine,
// so the CLI, the benches, and the cross-engine tests drive them through one
// name-keyed registry (see registry.h) instead of six ad-hoc call sites.
//
// Error-reporting contract:
//  - verify() returns a non-OK Status for *failures*: malformed instances
//    (kInvalidArgument / kUnsupported), representation explosions past a hard
//    budget (kResourceExhausted), an expired deadline (kDeadlineExceeded), or
//    cancellation (kCancelled).
//  - A *search-effort* budget running dry (SAT conflict limits, Buchberger
//    reduction caps, fraig query budgets) is not a failure: the engine ran to
//    plan and simply does not know — that is Ok(Verdict::kUnknown).

#include <cstdint>
#include <map>
#include <string>

#include "circuit/netlist.h"
#include "gf/gf2k.h"
#include "util/exec_control.h"
#include "util/status.h"

namespace gfa::engine {

enum class Verdict {
  kEquivalent,
  kNotEquivalent,
  kUnknown,  // a search budget ran dry before a proof either way
};

/// Canonical lowercase spelling: "equivalent" / "not-equivalent" / "unknown".
const char* verdict_name(Verdict v);

struct RunOptions {
  /// Deadline and cancellation, threaded into every engine's deep loops.
  ExecControl control;
  /// CDCL conflict budget for the sat and fraig engines (0 = unlimited).
  std::uint64_t sat_conflict_limit = 0;
  /// Hard node-table cap for the bdd engine (0 = unlimited); tripping it is
  /// kResourceExhausted.
  std::size_t bdd_node_limit = 0;
  /// Intermediate-polynomial term cap for the abstraction and
  /// ideal-membership engines (0 = unlimited); tripping it is
  /// kResourceExhausted.
  std::size_t max_terms = 0;
  /// S-polynomial reduction budget for the full-gb engine (0 = unlimited);
  /// running dry is Ok(kUnknown).
  std::size_t gb_max_reductions = 0;
  /// Per-polynomial term cap for the full-gb engine (0 = unlimited); running
  /// dry is Ok(kUnknown) — Buchberger ends gracefully rather than unwinding.
  std::size_t gb_max_poly_terms = 0;
};

struct VerifyResult {
  Verdict verdict = Verdict::kUnknown;
  /// Human-readable context: the coefficient diff for abstraction, a
  /// counterexample sketch for SAT-backed engines, the dry budget for
  /// kUnknown. Empty when there is nothing to add.
  std::string detail;
  /// Engine-specific counters (substitutions, conflicts, nodes, …), flat for
  /// direct serialization into run reports.
  std::map<std::string, double> stats;
};

class EquivEngine {
 public:
  virtual ~EquivEngine() = default;

  /// Registry key, e.g. "abstraction", "sat", "bdd".
  virtual std::string name() const = 0;

  /// One-line description for `gfa_tool engines` listings.
  virtual std::string description() const = 0;

  /// Decides spec ≡ impl. Both netlists must declare matching input words of
  /// width field.k(). Thread-compatible: engines hold no mutable state, so
  /// one instance may serve concurrent verify() calls.
  virtual Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                                      const Gf2k& field,
                                      const RunOptions& options) const = 0;
};

}  // namespace gfa::engine
