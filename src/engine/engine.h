#pragma once
// The unified verification-engine interface.
//
// Every way this repository can decide "spec ≡ impl over F_{2^k}" — the
// paper's canonical abstraction, and the SAT / fraig / BDD / full-GB /
// ideal-membership baselines it is measured against — implements EquivEngine,
// so the CLI, the benches, and the cross-engine tests drive them through one
// name-keyed registry (see registry.h) instead of ad-hoc call sites.
//
// Error-reporting contract:
//  - verify() returns a non-OK Status for *failures*: malformed instances
//    (kInvalidArgument / kUnsupported), representation explosions past a hard
//    budget (kResourceExhausted), an expired deadline (kDeadlineExceeded), or
//    cancellation (kCancelled).
//  - A *search-effort* budget running dry (SAT conflict limits, Buchberger
//    reduction caps, fraig query budgets) is not a failure: the engine ran to
//    plan and simply does not know — that is Ok(Verdict::kUnknown).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "certify/counterexample.h"
#include "circuit/netlist.h"
#include "gf/gf2k.h"
#include "util/exec_control.h"
#include "util/status.h"

namespace gfa::engine {

enum class Verdict {
  kEquivalent,
  kNotEquivalent,
  kUnknown,  // a search budget ran dry before a proof either way
};

/// Canonical lowercase spelling: "equivalent" / "not-equivalent" / "unknown".
const char* verdict_name(Verdict v);

/// Inverse of verdict_name(); unknown spellings are kInvalidArgument. Used by
/// the worker protocol (src/worker/) to decode a verdict off the wire.
Result<Verdict> verdict_from_name(std::string_view name);

struct RunOptions {
  /// Deadline and cancellation, threaded into every engine's deep loops.
  ExecControl control;
  /// CDCL conflict budget for the sat and fraig engines (0 = unlimited).
  std::uint64_t sat_conflict_limit = 0;
  /// Hard node-table cap for the bdd engine (0 = unlimited); tripping it is
  /// kResourceExhausted.
  std::size_t bdd_node_limit = 0;
  /// Intermediate-polynomial term cap for the abstraction and
  /// ideal-membership engines (0 = unlimited); tripping it is
  /// kResourceExhausted.
  std::size_t max_terms = 0;
  /// S-polynomial reduction budget for the full-gb engine (0 = unlimited);
  /// running dry is Ok(kUnknown).
  std::size_t gb_max_reductions = 0;
  /// Per-polynomial term cap for the full-gb engine (0 = unlimited); running
  /// dry is Ok(kUnknown) — Buchberger ends gracefully rather than unwinding.
  std::size_t gb_max_poly_terms = 0;
  /// Byte cap on the counted allocation hot spots (0 = unbounded). When set
  /// and control.budget is null, run_engine() installs a fresh
  /// ResourceBudget for the run; the portfolio engine instead gives every
  /// attempt its own budget of this size. Tripping it is kResourceExhausted.
  std::size_t memory_budget_bytes = 0;
  /// Per-attempt wall-clock cap for the portfolio engine, seconds (0 = only
  /// the overall control.deadline applies). An attempt that times out is a
  /// local failure — the portfolio moves on; the overall deadline still
  /// bounds the whole run.
  double attempt_timeout_seconds = 0.0;
  /// Ordered engine names the portfolio engine tries (empty = the default
  /// abstraction → ideal-membership → sat escalation).
  std::vector<std::string> portfolio_engines;
  /// Portfolio mode: false = try engines in order, falling through on
  /// failure/unknown; true = race them via parallel_for, first definitive
  /// verdict (lowest index on ties) wins and cancels the rest.
  bool portfolio_race = false;
  /// Portfolio: run every attempt in a forked worker process (see
  /// src/worker/harness.h), so one engine segfaulting or tripping an rlimit
  /// becomes a fall-through instead of taking the portfolio down. Requires
  /// the circuits to be reachable as files (worker_spec_path/worker_impl_path
  /// below); incompatible with portfolio_race (forking from pool threads is
  /// rejected as kInvalidArgument).
  bool isolate_attempts = false;
  /// Circuit files backing spec/impl for isolate_attempts: the worker child
  /// re-reads them rather than inheriting in-memory netlists. Both must be
  /// set when isolate_attempts is.
  std::string worker_spec_path;
  std::string worker_impl_path;
  /// Checkpoint/resume for the abstraction engine's reduction chain (see
  /// src/worker/checkpoint.h). Empty directory = no checkpointing.
  std::string checkpoint_dir;
  /// Save every N substitution steps (0 = the extractor's default cadence).
  std::uint64_t checkpoint_interval = 0;
  /// Resume from a matching checkpoint in checkpoint_dir when one exists.
  bool checkpoint_resume = false;
  /// Ask the abstraction engine to serialize the extracted canonical forms
  /// into VerifyResult::canonical_spec/_impl (see abstraction/canon_serial.h).
  /// The verification service sets this so a forked worker's extraction work
  /// can be stored in the content-addressed cache; other engines ignore it.
  bool export_canonical = false;
  /// Cross-check a kEquivalent verdict by random simulation of both circuits
  /// (src/certify/certify.h) after the engine returns. A disagreement is
  /// kCertificationFailed (exit 73) — a loud internal error, never a silent
  /// wrong answer. Enacted by run_engine(), not by individual engines.
  bool certify = false;
};

/// One portfolio attempt, embedded in VerifyResult/EngineRun and serialized
/// into the JSON report's "attempts" array so a caller can see which engine
/// produced the verdict and why the others were skipped or failed.
struct AttemptRecord {
  std::string engine;
  /// OK when the attempt produced a verdict; otherwise why it failed.
  Status status;
  Verdict verdict = Verdict::kUnknown;  // meaningful only when status.ok()
  std::string detail;
  double wall_ms = 0.0;
  /// Peak bytes charged against the attempt's ResourceBudget (0 = none).
  std::size_t budget_peak_bytes = 0;
  /// True when the attempt never ran (an earlier attempt was definitive, or
  /// the overall control fired first); `detail` says why.
  bool skipped = false;
  /// Worker telemetry, filled for isolated attempts whose child ran with
  /// heartbeats on: frames received, and the last phase/step the worker
  /// reported before finishing (or dying — the crash-forensics triple).
  std::uint64_t heartbeats = 0;
  std::string last_phase;
  std::uint64_t last_step = 0;
};

struct VerifyResult {
  Verdict verdict = Verdict::kUnknown;
  /// Human-readable context: the coefficient diff for abstraction, the dry
  /// budget for kUnknown. Empty when there is nothing to add.
  std::string detail;
  /// Typed witness for kNotEquivalent: the distinguishing input as field
  /// elements, replayed through the bit-parallel simulator. Engines with a
  /// native witness (abstraction's Schwartz–Zippel point, SAT/BDD/fraig
  /// models) fill it directly; run_engine() backfills the rest by
  /// simulation search. Empty otherwise.
  certify::Counterexample counterexample;
  /// Engine-specific counters (substitutions, conflicts, nodes, …), flat for
  /// direct serialization into run reports.
  std::map<std::string, double> stats;
  /// Per-attempt history; only the portfolio engine fills this in.
  std::vector<AttemptRecord> attempts;
  /// True when the run continued from a reduction-chain checkpoint instead
  /// of starting fresh (abstraction engine with RunOptions::checkpoint_*).
  bool resumed = false;
  /// Serialized canonical forms (abstraction/canon_serial.h), filled only by
  /// the abstraction engine when RunOptions::export_canonical is set. Empty
  /// otherwise.
  std::string canonical_spec;
  std::string canonical_impl;
};

class EquivEngine {
 public:
  virtual ~EquivEngine() = default;

  /// Registry key, e.g. "abstraction", "sat", "bdd".
  virtual std::string name() const = 0;

  /// One-line description for `gfa_tool engines` listings.
  virtual std::string description() const = 0;

  /// Decides spec ≡ impl. Both netlists must declare matching input words of
  /// width field.k(). Thread-compatible: engines hold no mutable state, so
  /// one instance may serve concurrent verify() calls.
  virtual Result<VerifyResult> verify(const Netlist& spec, const Netlist& impl,
                                      const Gf2k& field,
                                      const RunOptions& options) const = 0;

  /// True for engines (the portfolio) that install their own per-attempt
  /// ResourceBudgets; run_engine() then leaves RunOptions::memory_budget_bytes
  /// to the engine instead of wrapping the whole run in one budget.
  virtual bool manages_budget() const { return false; }
};

}  // namespace gfa::engine
