#include "abstraction/rato.h"

#include <algorithm>
#include <cassert>

namespace gfa {

std::vector<const Word*> input_words(const Netlist& netlist) {
  std::vector<const Word*> out;
  for (const Word& w : netlist.words()) {
    bool all_inputs = true;
    for (NetId b : w.bits) {
      if (netlist.gate(b).type != GateType::kInput) {
        all_inputs = false;
        break;
      }
    }
    if (all_inputs) out.push_back(&w);
  }
  return out;
}

std::vector<const Word*> output_words(const Netlist& netlist) {
  std::vector<const Word*> out;
  for (const Word& w : netlist.words()) {
    bool all_inputs = true;
    for (NetId b : w.bits) {
      if (netlist.gate(b).type != GateType::kInput) {
        all_inputs = false;
        break;
      }
    }
    if (!all_inputs) out.push_back(&w);
  }
  return out;
}

const Word* output_word(const Netlist& netlist) {
  const std::vector<const Word*> outs = output_words(netlist);
  return outs.size() == 1 ? outs[0] : nullptr;
}

std::vector<NetId> rato_net_order(const Netlist& netlist) {
  const std::vector<unsigned> level = netlist.reverse_topological_levels();
  std::vector<NetId> order(netlist.num_nets());
  for (NetId n = 0; n < order.size(); ++n) order[n] = n;
  std::stable_sort(order.begin(), order.end(), [&](NetId a, NetId b) {
    return level[a] < level[b];
  });
  return order;
}

namespace {

TermOrder make_order(const Netlist& netlist, const CircuitIdeal& ideal,
                     const std::vector<NetId>& bit_order) {
  std::vector<VarId> priority;
  priority.reserve(ideal.pool.size());
  for (NetId n : bit_order) priority.push_back(ideal.net_var[n]);
  for (const Word* w : output_words(netlist))
    priority.push_back(ideal.word_var.at(w->name));
  for (const Word* w : input_words(netlist))
    priority.push_back(ideal.word_var.at(w->name));
  return TermOrder(TermOrder::Type::kLex, std::move(priority));
}

}  // namespace

TermOrder make_rato_order(const Netlist& netlist, const CircuitIdeal& ideal) {
  return make_order(netlist, ideal, rato_net_order(netlist));
}

TermOrder make_abstraction_order(const Netlist& netlist,
                                 const CircuitIdeal& ideal) {
  std::vector<NetId> bit_order(netlist.num_nets());
  for (NetId n = 0; n < bit_order.size(); ++n) bit_order[n] = n;
  return make_order(netlist, ideal, bit_order);
}

}  // namespace gfa
