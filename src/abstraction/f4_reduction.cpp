#include "abstraction/f4_reduction.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "abstraction/bitpoly.h"
#include "abstraction/rato.h"
#include "abstraction/rewriter.h"
#include "abstraction/word_lift.h"

namespace gfa {

WordFunction extract_word_function_f4(const Netlist& netlist, const Gf2k& field,
                                      const ExtractionOptions& options) {
  const unsigned k = field.k();
  const std::vector<const Word*> outs = output_words(netlist);
  if (outs.size() != 1)
    throw std::invalid_argument("f4 extraction expects a single output word");
  const Word* out_word = outs[0];
  const std::vector<const Word*> in_words = input_words(netlist);
  if (in_words.empty()) throw std::invalid_argument("no input words declared");
  if (out_word->bits.size() != k)
    throw std::invalid_argument("output word width != k");
  for (const Word* w : in_words)
    if (w->bits.size() != k) throw std::invalid_argument("input word width != k");
  if (options.basis != nullptr && options.basis->size() != k)
    throw std::invalid_argument("word basis must have k elements");
  auto basis_elem = [&](unsigned j) {
    return options.basis != nullptr ? (*options.basis)[j]
                                    : field.alpha_pow(std::uint64_t{j});
  };

  std::vector<bool> is_input(netlist.num_nets(), false);
  for (NetId n : netlist.inputs()) is_input[n] = true;
  const std::vector<unsigned> level = netlist.reverse_topological_levels();
  unsigned max_level = 0;
  for (NetId n = 0; n < netlist.num_nets(); ++n)
    if (!is_input[n]) max_level = std::max(max_level, level[n]);

  // Memoized gate tails.
  std::vector<BitPoly> tails;
  tails.reserve(netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n)
    tails.push_back(is_input[n] ? BitPoly(&field)
                                : gate_tail_bitpoly(field, netlist.gate(n)));

  ExtractionStats stats;
  BitPoly::TermMap r;
  for (unsigned j = 0; j < k; ++j) {
    const Gf2k::Elem c = basis_elem(j);
    if (c.is_zero()) continue;
    auto [it, inserted] = r.try_emplace(BitMono{out_word->bits[j]}, c);
    if (!inserted) {
      it->second += c;
      if (it->second.is_zero()) r.erase(it);
    }
  }
  stats.peak_terms = r.size();

  // Level-synchronous batch reduction: at each level, every term reduces
  // against all of the level's gate polynomials in one pass.
  for (unsigned lv = 0; lv <= max_level; ++lv) {
    BitPoly::TermMap next;
    next.reserve(r.size());
    auto emit = [&](const BitMono& mono, const Gf2k::Elem& coeff) {
      if (coeff.is_zero()) return;
      auto [it, inserted] = next.try_emplace(mono, coeff);
      if (!inserted) {
        it->second += coeff;
        if (it->second.is_zero()) next.erase(it);
      }
    };
    std::vector<VarId> rest_ids;
    std::vector<VarId> batch;  // this level's gate variables in the monomial
    for (const auto& [mono, coeff] : r) {
      rest_ids.clear();
      batch.clear();
      for (VarId v : mono) {
        if (!is_input[v] && level[v] == lv)
          batch.push_back(v);
        else
          rest_ids.push_back(v);
      }
      if (batch.empty()) {
        emit(mono, coeff);
        continue;
      }
      ++stats.substitutions;
      // Expand the product of the batch's tails onto `rest` (the split loop
      // preserved the sorted order, so from_sorted applies directly).
      BitPoly acc(&field);
      acc.add_term(BitMono::from_sorted(rest_ids.data(), rest_ids.size()),
                   coeff);
      for (VarId v : batch) acc = acc * tails[v];
      for (const auto& [m, c] : acc.terms()) emit(m, c);
    }
    r = std::move(next);
    stats.peak_terms = std::max(stats.peak_terms, r.size());
    if (options.max_terms && r.size() > options.max_terms)
      throw ExtractionBudgetExceeded("f4 reduction term budget exceeded");
  }

  // Remainder post-processing: identical to the default extractor.
  stats.remainder_terms = r.size();
  bool any_bits = false;
  for (const auto& [m, c] : r) {
    stats.remainder_degree = std::max(stats.remainder_degree, m.size());
    if (!m.empty()) any_bits = true;
  }
  stats.case1 = !any_bits;

  WordFunction result{VarPool{}, MPoly(&field), out_word->name, {}, {}};
  std::vector<WordLift::WordBinding> bindings;
  std::vector<VarId> net_to_var(netlist.num_nets(), UINT32_MAX);
  for (const Word* w : in_words) {
    WordLift::WordBinding b;
    for (NetId bit : w->bits) {
      const VarId v = result.pool.intern(netlist.gate(bit).name, VarKind::kBit);
      net_to_var[bit] = v;
      b.bit_vars.push_back(v);
    }
    b.word_var = result.pool.intern(w->name, VarKind::kWord);
    bindings.push_back(std::move(b));
    result.input_words.push_back(w->name);
  }
  BitPoly remainder(&field);
  remainder.reserve(r.size());
  std::vector<VarId> mapped;
  for (const auto& [m, c] : r) {
    mapped.clear();
    mapped.reserve(m.size());
    for (VarId v : m) {
      if (net_to_var[v] == UINT32_MAX)
        throw std::invalid_argument("primary input '" + netlist.gate(v).name +
                                    "' is not part of any word");
      mapped.push_back(net_to_var[v]);
    }
    std::sort(mapped.begin(), mapped.end());
    remainder.add_term(BitMono::from_sorted(mapped.data(), mapped.size()), c);
  }
  if (stats.case1) {
    result.g = MPoly::constant(&field, remainder.coeff(BitMono{}));
  } else if (options.shared_lift != nullptr) {
    result.g = options.shared_lift->lift(remainder, bindings, result.pool);
  } else {
    const WordLift lift(&field, options.basis);
    result.g = lift.lift(remainder, bindings, result.pool);
  }
  result.stats = stats;
  return result;
}

}  // namespace gfa
