#include "abstraction/bitpoly.h"

#include <algorithm>
#include <cassert>

namespace gfa {

LegacyBitMono bitmono_mul(const LegacyBitMono& a, const LegacyBitMono& b) {
  LegacyBitMono out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::size_t BitRepr<LegacyBitMono>::map_bytes(const TermMap& t) {
  return t.size() * 96;  // kRewriterTermBytes: node + monomial buffer + coeff
}

template <class M>
typename BasicBitPoly<M>::Elem BasicBitPoly<M>::eval(
    const std::vector<bool>& assignment) const {
  Elem sum = field_->zero();
  for (const auto& [m, c] : terms_) {
    bool all = true;
    for (VarId v : m) {
      assert(v < assignment.size());
      if (!assignment[v]) {
        all = false;
        break;
      }
    }
    if (all) sum += c;
  }
  return sum;
}

template <class M>
std::string BasicBitPoly<M>::to_string(const VarPool& pool) const {
  if (is_zero()) return "0";
  // Deterministic rendering: sort by monomial (ids lexicographic; identical
  // order across representations, so packed and legacy renderings match).
  std::vector<const typename TermMap::value_type*> sorted;
  sorted.reserve(terms_.size());
  for (const auto& t : terms_) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->first < b->first;
  });
  std::string out;
  for (const auto* t : sorted) {
    if (!out.empty()) out += " + ";
    const bool coeff_is_sum = t->second.weight() > 1;
    std::string cs = field_->to_string(t->second);
    if (coeff_is_sum) cs = "(" + cs + ")";
    if (t->first.empty()) {
      out += cs;
      continue;
    }
    std::string ms;
    for (VarId v : t->first) {
      if (!ms.empty()) ms += "*";
      ms += pool.name(v);
    }
    out += t->second.is_one() ? ms : cs + "*" + ms;
  }
  return out;
}

template class BasicBitPoly<PackedMono>;
template class BasicBitPoly<LegacyBitMono>;

}  // namespace gfa
