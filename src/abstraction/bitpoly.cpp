#include "abstraction/bitpoly.h"

#include <algorithm>
#include <cassert>

namespace gfa {

BitMono bitmono_mul(const BitMono& a, const BitMono& b) {
  BitMono out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

BitPoly BitPoly::constant(const Gf2k* field, Elem c) {
  BitPoly p(field);
  p.add_term(BitMono{}, c);
  return p;
}

BitPoly BitPoly::variable(const Gf2k* field, VarId v) {
  BitPoly p(field);
  p.add_term(BitMono{v}, field->one());
  return p;
}

void BitPoly::add_term(const BitMono& m, const Elem& c) {
  if (c.is_zero()) return;
  auto [it, inserted] = terms_.try_emplace(m, c);
  if (!inserted) {
    it->second += c;  // field add == GF(2)[x] XOR
    if (it->second.is_zero()) terms_.erase(it);
  }
}

void BitPoly::add_term(BitMono&& m, const Elem& c) {
  if (c.is_zero()) return;
  auto [it, inserted] = terms_.try_emplace(std::move(m), c);
  if (!inserted) {
    it->second += c;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

BitPoly::Elem BitPoly::coeff(const BitMono& m) const {
  auto it = terms_.find(m);
  return it == terms_.end() ? field_->zero() : it->second;
}

BitPoly BitPoly::operator+(const BitPoly& rhs) const {
  BitPoly out = *this;
  out += rhs;
  return out;
}

BitPoly& BitPoly::operator+=(const BitPoly& rhs) {
  for (const auto& [m, c] : rhs.terms_) add_term(m, c);
  return *this;
}

BitPoly BitPoly::operator*(const BitPoly& rhs) const {
  BitPoly out(field_);
  for (const auto& [ma, ca] : terms_)
    for (const auto& [mb, cb] : rhs.terms_)
      out.add_term(bitmono_mul(ma, mb), field_->mul(ca, cb));
  return out;
}

BitPoly BitPoly::scaled(const Elem& c) const {
  BitPoly out(field_);
  if (c.is_zero()) return out;
  for (const auto& [m, coeff] : terms_) out.add_term(m, field_->mul(coeff, c));
  return out;
}

std::size_t BitPoly::max_monomial_size() const {
  std::size_t mx = 0;
  for (const auto& [m, c] : terms_) mx = std::max(mx, m.size());
  return mx;
}

BitPoly::Elem BitPoly::eval(const std::vector<bool>& assignment) const {
  Elem sum = field_->zero();
  for (const auto& [m, c] : terms_) {
    bool all = true;
    for (VarId v : m) {
      assert(v < assignment.size());
      if (!assignment[v]) {
        all = false;
        break;
      }
    }
    if (all) sum += c;
  }
  return sum;
}

std::string BitPoly::to_string(const VarPool& pool) const {
  if (is_zero()) return "0";
  // Deterministic rendering: sort by monomial (size, then ids).
  std::vector<const std::pair<const BitMono, Elem>*> sorted;
  sorted.reserve(terms_.size());
  for (const auto& t : terms_) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->first < b->first;
  });
  std::string out;
  for (const auto* t : sorted) {
    if (!out.empty()) out += " + ";
    const bool coeff_is_sum = t->second.weight() > 1;
    std::string cs = field_->to_string(t->second);
    if (coeff_is_sum) cs = "(" + cs + ")";
    if (t->first.empty()) {
      out += cs;
      continue;
    }
    std::string ms;
    for (VarId v : t->first) {
      if (!ms.empty()) ms += "*";
      ms += pool.name(v);
    }
    out += t->second.is_one() ? ms : cs + "*" + ms;
  }
  return out;
}

}  // namespace gfa
