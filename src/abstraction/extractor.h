#pragma once
// Word-level abstraction of a gate-level circuit (paper §4–§5).
//
// extract_word_function() computes the unique canonical polynomial F with
// Z = F(A, B, …) implemented by the circuit, via the paper's guided
// Gröbner-basis computation:
//
//   1. Impose RATO. The only critical pair with non-relatively-prime leading
//      terms is (f_w, f_g): the word-output definition z_0 + z_1α + … + Z
//      against the gate driving z_0. Spoly(f_w, f_g) followed by reduction
//      modulo {gate polynomials} ∪ J_0 is realized as *backward substitution*:
//      starting from Σ z_jα^j, every gate-output variable is replaced by its
//      tail, in reverse-topological order, in the multilinear BitPoly engine
//      (x² → x applied eagerly). The result is the remainder r over primary
//      input bits only.
//   2. Case 1: r is constant — done. Case 2: lift the input bits to word
//      variables with the Frobenius basis change (see word_lift.h), the
//      reduced-Gröbner-basis step of §5 3(b).
//
// The returned polynomial G satisfies: the Gröbner basis of J + J_0 under the
// abstraction order contains exactly Z + G (Theorem 4.2 / Corollary 4.1), so
// two circuits are equivalent iff their G's match coefficient-wise.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "abstraction/bitpoly.h"
#include "circuit/netlist.h"
#include "poly/mpoly.h"
#include "util/exec_control.h"
#include "util/status.h"

namespace gfa {

class WordLift;

/// Checkpoint/resume of the backward-rewriting chain (storage format and
/// integrity rules in src/worker/checkpoint.h). Progress is saved every
/// `interval` substitution steps under `directory`, keyed by the circuit's
/// content hash and the output word, and removed after a completed
/// extraction. With `resume` set, a matching checkpoint seeds the rewriter
/// and the first `step` substitutions are skipped; a missing, damaged, or
/// mismatched (different circuit/k/word) checkpoint falls back to a fresh
/// start — a stale file can cost time, never correctness.
struct ExtractionCheckpoint {
  std::string directory;
  std::uint64_t interval = 1000;
  bool resume = false;
};

struct ExtractionOptions {
  /// Abort when the intermediate polynomial exceeds this many terms
  /// (0 = unlimited). Tripping raises ExtractionBudgetExceeded.
  std::size_t max_terms = 0;
  /// Reuse a precomputed Frobenius basis-change (see word_lift.h). Building
  /// it is O(k³) field operations, so callers abstracting several circuits
  /// over one field (the hierarchical flow, the benches) share one. Must have
  /// been built for the same word basis as `basis` below.
  const WordLift* shared_lift = nullptr;
  /// The basis interpreting every word's bits: A = Σ a_i·basis[i]. Null means
  /// the polynomial basis {α^i}; pass a NormalBasis::basis() for circuits
  /// whose words are normal-basis coordinates (e.g. Massey–Omura multipliers).
  const std::vector<Gf2k::Elem>* basis = nullptr;
  /// Deadline/cancellation, checkpointed per gate substitution in the
  /// backward-rewriting loop, inside the Frobenius lift, and per chunk of any
  /// internal parallel_for. Expiry unwinds via StatusError; the try_* entry
  /// points below convert it to a Status.
  const ExecControl* control = nullptr;
  /// Periodic reduction-chain checkpointing (null = off; see above).
  const ExtractionCheckpoint* checkpoint = nullptr;
  /// Sub-chains the reduction chain is split into (seed sharding — see
  /// ShardedRewriter in rewriter.h; the extracted polynomial is bit-identical
  /// for every value). 0 = auto: the pool width, capped by the seed size.
  /// 1 forces the serial chain.
  unsigned chain_shards = 0;
  /// Monomial tier the reduction chain runs on (see bitpoly.h). kPacked is
  /// the production default; kVector selects the legacy vector/unordered_map
  /// representation for differential testing and the --poly-repr ablation.
  /// The extracted polynomial is bit-identical either way — only speed and
  /// memory differ. The word-level endgame (lift, equivalence) is unaffected:
  /// it always runs on the generic MPoly ring.
  PolyRepr poly_repr = PolyRepr::kPacked;
};

struct ExtractionStats {
  std::size_t substitutions = 0;     // gate tails substituted
  std::size_t peak_terms = 0;        // largest intermediate polynomial
  std::size_t remainder_terms = 0;   // |r| before the word lift
  std::size_t remainder_degree = 0;  // largest monomial (bit count) in r
  bool case1 = false;                // remainder had no input bits
  bool resumed = false;              // continued from a reduction checkpoint
};

/// A circuit's function at word level: Z = g(input words).
struct WordFunction {
  VarPool pool;          // word variables (and input-bit variables, unused in g)
  MPoly g;               // canonical polynomial over the input word variables
  std::string output_word;
  std::vector<std::string> input_words;  // names, in netlist declaration order
  ExtractionStats stats;
};

struct ExtractionBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Abstracts the circuit. Requirements: exactly one output word; every
/// primary input belongs to exactly one input word; all words are k bits wide
/// with k = field.k().
WordFunction extract_word_function(const Netlist& netlist, const Gf2k& field,
                                   const ExtractionOptions& options = {});

/// Abstracts one named output word of a circuit that may declare several
/// (e.g. the X3/Z3 words of an ECC point operation).
WordFunction extract_word_function_for(const Netlist& netlist, const Gf2k& field,
                                       std::string_view output_word_name,
                                       const ExtractionOptions& options = {});

/// Abstracts every output word; one WordFunction per word, in declaration
/// order. The Frobenius basis change is built once and shared.
std::vector<WordFunction> extract_all_word_functions(
    const Netlist& netlist, const Gf2k& field,
    const ExtractionOptions& options = {});

/// Non-throwing entry points: malformed circuits map to kInvalidArgument,
/// a tripped max_terms budget to kResourceExhausted, and an expired
/// ExtractionOptions::control to kDeadlineExceeded / kCancelled.
Result<WordFunction> try_extract_word_function(
    const Netlist& netlist, const Gf2k& field,
    const ExtractionOptions& options = {});
Result<std::vector<WordFunction>> try_extract_all_word_functions(
    const Netlist& netlist, const Gf2k& field,
    const ExtractionOptions& options = {});

}  // namespace gfa
