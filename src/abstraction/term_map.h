#pragma once
// Open-addressing term map keyed by PackedMono: the arena half of the packed
// polynomial tier. The generic unordered_map paid one node allocation plus a
// pointer chase per term; here every (monomial, coefficient) pair lives in a
// single contiguous slot array — the arena — probed linearly from the
// monomial's own full-avalanche hash. Growth doubles the arena and rehashes;
// erasure leaves a tombstone, and the next growth-check purges tombstones by
// rehashing in place when live terms are the minority.
//
// Semantics intentionally mirror the std::unordered_map subset the
// polynomial layer uses (try_emplace / find / at / erase(iterator) /
// iteration / operator==), so BasicBitPoly templates over either map. Two
// deliberate differences:
//   * try_emplace takes the key by value (a PackedMono move is two words);
//   * drain() replaces node-handle extraction for the deterministic shard
//     merges — it moves every pair out in slot order and leaves the map
//     empty. Slot order is unspecified, which is fine everywhere it is used:
//     XOR-merging coefficients in F_{2^k} is commutative and exact.
//
// allocated_bytes() is exact (capacity × slot footprint), which the rewriter
// reports to the rewriter.terms ResourceBudget site instead of the per-entry
// estimate the legacy representation needs.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "abstraction/packed_mono.h"

namespace gfa {

template <class V>
class PackedTermMap {
 public:
  using key_type = PackedMono;
  using mapped_type = V;
  using value_type = std::pair<PackedMono, V>;

  PackedTermMap() = default;
  PackedTermMap(PackedTermMap&& o) noexcept { swap(o); }
  PackedTermMap& operator=(PackedTermMap&& o) noexcept {
    if (this != &o) {
      PackedTermMap tmp(std::move(o));
      swap(tmp);
    }
    return *this;
  }
  PackedTermMap(const PackedTermMap& o) {
    reserve(o.size_);
    for (std::size_t i = 0; i < o.cap_; ++i)
      if (o.ctrl_[i] == kFull) try_emplace(o.slots_[i].first, o.slots_[i].second);
  }
  PackedTermMap& operator=(const PackedTermMap& o) {
    if (this != &o) {
      PackedTermMap tmp(o);
      swap(tmp);
    }
    return *this;
  }

  template <bool Const>
  class iter {
   public:
    using value_type = typename PackedTermMap::value_type;
    using Map = std::conditional_t<Const, const PackedTermMap, PackedTermMap>;
    using Value = std::conditional_t<Const, const value_type, value_type>;
    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;
    using pointer = Value*;
    using reference = Value&;

    iter() = default;
    iter(Map* m, std::size_t i) : m_(m), i_(i) {}
    /// iterator -> const_iterator.
    template <bool C = Const, class = std::enable_if_t<C>>
    iter(const iter<false>& o) : m_(o.map()), i_(o.index()) {}

    Value& operator*() const { return m_->slots_[i_]; }
    Value* operator->() const { return &m_->slots_[i_]; }
    iter& operator++() {
      i_ = m_->next_full(i_ + 1);
      return *this;
    }
    iter operator++(int) {
      iter c = *this;
      ++*this;
      return c;
    }
    template <bool C>
    bool operator==(const iter<C>& o) const {
      return i_ == o.index();
    }
    template <bool C>
    bool operator!=(const iter<C>& o) const {
      return i_ != o.index();
    }

    Map* map() const { return m_; }
    std::size_t index() const { return i_; }

   private:
    Map* m_ = nullptr;
    std::size_t i_ = 0;
  };
  using iterator = iter<false>;
  using const_iterator = iter<true>;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  iterator begin() { return {this, next_full(0)}; }
  iterator end() { return {this, cap_}; }
  const_iterator begin() const { return {this, next_full(0)}; }
  const_iterator end() const { return {this, cap_}; }

  iterator find(const PackedMono& key) { return {this, find_index(key)}; }
  const_iterator find(const PackedMono& key) const {
    return {this, find_index(key)};
  }

  /// Warms the cache lines a find/try_emplace of `key` will touch first.
  /// The reduction chain's probes are independent random accesses into a
  /// table far larger than L2; issuing the next term's prefetch before
  /// processing the current one overlaps the memory latency instead of
  /// serializing it. Purely advisory — no observable state changes.
  void prefetch(const PackedMono& key) const {
    if (cap_ == 0) return;
    const std::size_t i = key.hash() & (cap_ - 1);
    __builtin_prefetch(ctrl_.get() + i, 0, 1);
    __builtin_prefetch(slots_.get() + i, 0, 1);
  }

  V& at(const PackedMono& key) {
    const std::size_t i = find_index(key);
    if (i == cap_) throw std::out_of_range("PackedTermMap::at: no such key");
    return slots_[i].second;
  }
  const V& at(const PackedMono& key) const {
    return const_cast<PackedTermMap*>(this)->at(key);
  }

  /// Inserts (key, V(args...)) unless the key is present; mirrors
  /// unordered_map::try_emplace but takes the key by value (two-word move).
  template <class... Args>
  std::pair<iterator, bool> try_emplace(PackedMono key, Args&&... args) {
    if (cap_ == 0) rehash(kMinCapacity);
    std::size_t tomb = npos;
    std::size_t i = probe(key, tomb);
    if (i != npos) return {iterator{this, i}, false};
    if ((used_ + 1) * 4 > cap_ * 3) {
      // Grow when live terms dominate, purge tombstones in place otherwise.
      rehash((size_ + 1) * 2 > cap_ ? cap_ * 2 : cap_);
      tomb = npos;
      i = probe(key, tomb);
    }
    std::size_t target = tomb;
    if (target == npos) {
      target = free_;  // the empty slot probe() stopped at
      ++used_;
    }
    slots_[target].first = std::move(key);
    slots_[target].second = V(std::forward<Args>(args)...);
    ctrl_[target] = kFull;
    ++size_;
    return {iterator{this, target}, true};
  }

  void erase(iterator it) {
    const std::size_t i = it.index();
    slots_[i] = value_type();
    ctrl_[i] = kTomb;
    --size_;
  }

  std::size_t erase(const PackedMono& key) {
    const std::size_t i = find_index(key);
    if (i == cap_) return 0;
    erase(iterator{this, i});
    return 1;
  }

  void clear() {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (ctrl_[i] == kFull) slots_[i] = value_type();
      ctrl_[i] = kEmpty;
    }
    size_ = used_ = 0;
  }

  /// Moves every (key, value) out through `fn` in slot order and empties the
  /// map. The replacement for unordered_map node extraction in the fixed
  /// shard-order merges; see the header comment on ordering.
  template <class Fn>
  void drain(Fn&& fn) {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (ctrl_[i] != kFull) continue;
      fn(std::move(slots_[i].first), std::move(slots_[i].second));
      slots_[i] = value_type();
      ctrl_[i] = kEmpty;
    }
    size_ = used_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (n * 4 > want * 3) want *= 2;
    if (want > cap_) rehash(want);
  }

  /// Exact arena footprint: slots plus one control byte per slot.
  std::size_t allocated_bytes() const {
    return cap_ * (sizeof(value_type) + 1);
  }

  /// Number of slots a find(key) walks before terminating (hit or empty
  /// slot), counting the final one — so a first-slot hit is 1. Observability
  /// re-walk for the rewriter.probe_len histogram; never called on the hot
  /// probe itself.
  std::size_t probe_length(const PackedMono& key) const {
    if (cap_ == 0) return 0;
    std::size_t i = key.hash() & (cap_ - 1);
    std::size_t steps = 1;
    while (true) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty || (c == kFull && slots_[i].first == key)) return steps;
      i = (i + 1) & (cap_ - 1);
      ++steps;
    }
  }

  /// Unordered (set) equality, as unordered_map defines it.
  bool operator==(const PackedTermMap& o) const {
    if (size_ != o.size_) return false;
    for (std::size_t i = 0; i < cap_; ++i) {
      if (ctrl_[i] != kFull) continue;
      const std::size_t j = o.find_index(slots_[i].first);
      if (j == o.cap_ || !(o.slots_[j].second == slots_[i].second))
        return false;
    }
    return true;
  }
  bool operator!=(const PackedTermMap& o) const { return !(*this == o); }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::uint8_t kEmpty = 0, kFull = 1, kTomb = 2;

  void swap(PackedTermMap& o) noexcept {
    std::swap(slots_, o.slots_);
    std::swap(ctrl_, o.ctrl_);
    std::swap(cap_, o.cap_);
    std::swap(size_, o.size_);
    std::swap(used_, o.used_);
    std::swap(free_, o.free_);
  }

  std::size_t next_full(std::size_t i) const {
    while (i < cap_ && ctrl_[i] != kFull) ++i;
    return i;
  }

  /// Index of `key`, or cap_ (== end) when absent.
  std::size_t find_index(const PackedMono& key) const {
    if (cap_ == 0) return cap_;
    std::size_t i = key.hash() & (cap_ - 1);
    while (true) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty) return cap_;
      if (c == kFull && slots_[i].first == key) return i;
      i = (i + 1) & (cap_ - 1);
    }
  }

  /// Probes for `key`: returns its index when present (npos otherwise),
  /// records the first tombstone seen in `tomb`, and leaves the terminating
  /// empty slot in free_ for the insert that follows a miss.
  std::size_t probe(const PackedMono& key, std::size_t& tomb) {
    std::size_t i = key.hash() & (cap_ - 1);
    while (true) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty) {
        free_ = i;
        return npos;
      }
      if (c == kTomb) {
        if (tomb == npos) tomb = i;
      } else if (slots_[i].first == key) {
        return i;
      }
      i = (i + 1) & (cap_ - 1);
    }
  }

  void rehash(std::size_t new_cap) {
    auto slots = std::make_unique<value_type[]>(new_cap);
    auto ctrl = std::make_unique<std::uint8_t[]>(new_cap);  // zero == kEmpty
    // Entries scatter into the new arrays at random; a large table's rehash
    // is therefore one cold miss per entry if placed naively. The hashes are
    // all known up front, so run a small window ahead of the placements and
    // prefetch each entry's home line before it is needed. Placement order
    // (old-slot order) is unchanged — the window only warms lines.
    constexpr std::size_t kWindow = 8;
    std::size_t look = 0;  // next old slot to prefetch
    std::size_t in_flight = 0;
    for (std::size_t i = 0; i < cap_; ++i) {
      if (ctrl_[i] != kFull) continue;
      while (in_flight < kWindow && look < cap_) {
        if (ctrl_[look] == kFull) {
          const std::size_t h = slots_[look].first.hash() & (new_cap - 1);
          __builtin_prefetch(ctrl.get() + h, 1, 1);
          __builtin_prefetch(slots.get() + h, 1, 1);
          ++in_flight;
        }
        ++look;
      }
      if (in_flight > 0) --in_flight;
      std::size_t j = slots_[i].first.hash() & (new_cap - 1);
      while (ctrl[j] == kFull) j = (j + 1) & (new_cap - 1);
      slots[j] = std::move(slots_[i]);
      ctrl[j] = kFull;
    }
    slots_ = std::move(slots);
    ctrl_ = std::move(ctrl);
    cap_ = new_cap;
    used_ = size_;
  }

  std::unique_ptr<value_type[]> slots_;
  std::unique_ptr<std::uint8_t[]> ctrl_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live + tombstones (probe-chain occupancy)
  std::size_t free_ = 0;  // scratch: empty slot the last failed probe hit
};

}  // namespace gfa
