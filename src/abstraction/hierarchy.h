#pragma once
// Hierarchical abstraction (paper §6, Table 2 flow).
//
// When the implementation is an interconnection of blocks (the Montgomery
// multiplier of Fig. 1), each block is abstracted gate-level → word-level
// separately, and the block polynomials are then composed *at word level*:
// every word signal of the hierarchy gets a polynomial over the primary word
// inputs by substituting driver polynomials into block polynomials — the
// paper's "approach re-applied at word level (solved trivially in < 1 s)".

#include <string>
#include <vector>

#include "abstraction/extractor.h"
#include "circuit/montgomery.h"
#include "circuit/netlist.h"

namespace gfa {

/// A dataflow of word-level signals through blocks. Signals are identified by
/// name; `inputs` binds each block input word to a driving signal.
struct WordSignalGraph {
  struct Instance {
    const Netlist* block;
    std::string name;  // for reporting
    std::vector<std::pair<std::string, std::string>> inputs;  // block word -> signal
    std::string output_signal;
  };
  std::vector<std::string> primary_inputs;
  std::vector<Instance> instances;  // in dataflow order
  std::string output_signal;
};

struct HierarchicalAbstraction {
  WordFunction composed;  // Z = g(primary inputs)
  std::vector<std::pair<std::string, WordFunction>> blocks;  // per-block results
};

/// Abstracts every block, then composes along the graph.
HierarchicalAbstraction abstract_hierarchy(const WordSignalGraph& graph,
                                           const Gf2k& field,
                                           const ExtractionOptions& options = {});

/// The Fig. 1 Montgomery hierarchy: AR = a(A), BR = b(B), T = mid(AR, BR),
/// Z = out(T); returns the composed polynomial (A·B for a correct design).
HierarchicalAbstraction abstract_montgomery(const MontgomeryHierarchy& h,
                                            const Gf2k& field,
                                            const ExtractionOptions& options = {});

}  // namespace gfa
