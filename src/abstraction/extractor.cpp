#include "abstraction/extractor.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <stdexcept>

#include "abstraction/bitpoly.h"
#include "abstraction/rato.h"
#include "abstraction/rewriter.h"
#include "abstraction/word_lift.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/parallel_for.h"
#include "worker/checkpoint.h"

namespace gfa {

namespace {

/// Reports a phase boundary / segment end to the progress sink (the isolated
/// worker's heartbeat channel) and drops a phase-transition breadcrumb into
/// the crash flight recorder. One branch when neither consumer is active.
void report_phase(const char* phase, std::uint64_t step, std::uint64_t total,
                  std::uint64_t terms, const ExecControl* control) {
  if (obs::progress_active()) {
    obs::Progress p;
    p.phase = phase;
    p.step = step;
    p.total = total;
    p.terms = terms;
    if (const ResourceBudget* b = budget_of(control))
      p.budget_bytes = b->used_bytes();
    obs::report_progress(p);
    obs::flight::note(phase, step, terms);
  }
}

/// Resolved checkpoint plumbing for one extract_for_word call: the file this
/// (circuit, word) pair maps to, plus the saved state when resuming.
struct CheckpointPlan {
  bool active = false;
  std::uint64_t interval = 0;
  std::string path;
  std::uint64_t circuit_hash = 0;
  /// Non-empty terms + step > 0 when a valid matching checkpoint was loaded.
  std::uint64_t resume_step = 0;
  std::vector<std::pair<BitMono, Gf2Poly>> resume_terms;
  bool resumed = false;
};

CheckpointPlan plan_checkpoint(const Netlist& netlist, unsigned k,
                               const Word* out_word,
                               const ExtractionOptions& options) {
  CheckpointPlan plan;
  const ExtractionCheckpoint* ck = options.checkpoint;
  if (ck == nullptr || ck->directory.empty()) return plan;
  plan.active = true;
  plan.interval = ck->interval == 0 ? 1000 : ck->interval;
  plan.circuit_hash = worker::netlist_content_hash(netlist);
  plan.path =
      worker::checkpoint_path(ck->directory, plan.circuit_hash, out_word->name);
  if (!ck->resume) return plan;
  Result<worker::ReductionCheckpoint> loaded =
      worker::load_checkpoint(plan.path);
  if (!loaded.ok()) {
    GFA_LOG_WARN("extract", "cannot resume: " << loaded.status().message()
                                              << "; starting fresh");
    return plan;
  }
  if (loaded->k != k || loaded->circuit_hash != plan.circuit_hash ||
      loaded->word != out_word->name) {
    GFA_LOG_WARN("extract",
                 "checkpoint '" << plan.path
                                << "' was written for a different "
                                   "circuit/field/word; starting fresh");
    return plan;
  }
  plan.resume_step = loaded->step;
  plan.resume_terms = std::move(loaded->terms);
  plan.resumed = true;
  GFA_LOG_INFO("extract", "resuming word '" << out_word->name << "' at step "
                                            << plan.resume_step);
  return plan;
}

/// Snapshots the rewriter's term map in a deterministic (sorted) order and
/// writes it. The file format stores packed monomials whichever tier the
/// chain runs on, so checkpoints transfer across --poly-repr settings. Save
/// failures are logged, not fatal — checkpointing is an optimization, never
/// a correctness dependency.
template <class M>
void save_progress(const CheckpointPlan& plan, const Word* out_word,
                   unsigned k, std::uint64_t step,
                   const typename BitRepr<M>::TermMap& terms) {
  worker::ReductionCheckpoint cp;
  cp.k = k;
  cp.circuit_hash = plan.circuit_hash;
  cp.word = out_word->name;
  cp.step = step;
  cp.terms.reserve(terms.size());
  for (const auto& [mono, coeff] : terms)
    cp.terms.emplace_back(BitRepr<M>::to_packed(mono), coeff);
  std::sort(cp.terms.begin(), cp.terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (const Status s = worker::save_checkpoint(plan.path, cp); !s.ok())
    GFA_LOG_WARN("extract", "checkpoint save failed: " << s.message());
}

template <class M>
WordFunction extract_for_word_impl(const Netlist& netlist, const Gf2k& field,
                                   const Word* out_word,
                                   const ExtractionOptions& options) {
  const obs::TraceSpan extract_span("extract_word", "abstraction");
  report_phase("extract_word", 0, 0, 0, options.control);
  const unsigned k = field.k();
  const std::vector<const Word*> in_words = input_words(netlist);
  if (in_words.empty()) throw std::invalid_argument("no input words declared");
  if (out_word->bits.size() != k)
    throw std::invalid_argument("output word width != k");
  for (const Word* w : in_words)
    if (w->bits.size() != k) throw std::invalid_argument("input word width != k");

  std::vector<bool> is_input(netlist.num_nets(), false);
  for (NetId n : netlist.inputs()) is_input[n] = true;

  WordFunction result{VarPool{}, MPoly(&field), out_word->name, {}, {}};

  // Step 1: r := Σ_j α^j · z_j, i.e. Spoly(f_w, f_g) ->+ r realized as
  // backward rewriting of the word-output combination.
  std::vector<bool> substitutable(netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n) substitutable[n] = !is_input[n];
  if (options.basis != nullptr && options.basis->size() != k)
    throw std::invalid_argument("word basis must have k elements");
  auto basis_elem = [&](unsigned j) {
    return options.basis != nullptr ? (*options.basis)[j]
                                    : field.alpha_pow(std::uint64_t{j});
  };

  ExtractionStats stats;
  CheckpointPlan ckpt = plan_checkpoint(netlist, k, out_word, options);
  stats.resumed = ckpt.resumed;
  // Seed sharding: the chain is linear in the seed polynomial, so S
  // sub-chains over a partition of the seeds XOR-merge to the serial result
  // at every step (ShardedRewriter). A checkpoint's terms re-shard on resume
  // the same way — any partition is valid — so a run saved at one thread
  // count resumes at another.
  const std::size_t seed_count =
      ckpt.resumed ? ckpt.resume_terms.size() : k;
  unsigned shards = options.chain_shards != 0 ? options.chain_shards
                                              : parallel_available_width();
  if (seed_count > 0 && shards > seed_count)
    shards = static_cast<unsigned>(seed_count);
  BasicShardedRewriter<M> chain(field, std::move(substitutable), shards,
                                options.max_terms, options.control);
  try {
    std::vector<NetId> rato;
    {
      // The paper's RATO: the reverse-topological order that makes backward
      // substitution *be* the Gröbner reduction chain.
      const obs::TraceSpan sort_span("rato_sort", "abstraction");
      report_phase("rato_sort", 0, 0, 0, options.control);
      rato = rato_net_order(netlist);
    }
    const obs::TraceSpan chain_span("reduction_chain", "abstraction");
    if (ckpt.resumed) {
      // Seed the shards with the checkpointed intermediate polynomial (the
      // occurrence indexes rebuild through add()); the first resume_step
      // substitutions of the deterministic RATO chain are already folded in.
      for (auto& [mono, coeff] : ckpt.resume_terms)
        chain.seed(BitRepr<M>::from_packed(std::move(mono)), coeff);
      ckpt.resume_terms.clear();
    } else {
      for (unsigned j = 0; j < k; ++j)
        chain.seed(M{out_word->bits[j]}, basis_elem(j));
    }
    std::vector<NetId> gates;
    gates.reserve(rato.size());
    for (NetId n : rato)
      if (!is_input[n]) gates.push_back(n);
    // The chain runs in segments of one checkpoint interval (the whole chain
    // when neither checkpointing nor a progress sink is active); every
    // segment end is a merge barrier where the XOR-merged polynomial equals
    // the serial state, so that is where snapshots — and heartbeat progress
    // reports — happen. A sink alone segments at the default checkpoint
    // cadence: run_segment carries no per-call merge cost, so segmentation
    // only bounds how stale a heartbeat's step count can get.
    const bool segmented = ckpt.active || obs::progress_active();
    const std::uint64_t interval =
        ckpt.active ? ckpt.interval : std::uint64_t{1000};
    std::uint64_t step = ckpt.resume_step;
    report_phase("reduction_chain", step, gates.size(), chain.num_terms(),
                 options.control);
    while (step < gates.size()) {
      const std::uint64_t end =
          segmented ? std::min<std::uint64_t>(step + interval, gates.size())
                    : gates.size();
      chain.run_segment(netlist, gates, step, end);
      stats.substitutions += end - step;
      step = end;
      if (ckpt.active && step < gates.size()) {
        save_progress<M>(ckpt, out_word, k, step, chain.merged());
        if (obs::progress_active())
          obs::flight::note("checkpoint:save", step, chain.num_terms());
      }
      report_phase("reduction_chain", step, gates.size(), chain.num_terms(),
                   options.control);
    }
    stats.peak_terms = chain.peak_terms();
  } catch (const RewriteBudgetExceeded& e) {
    throw ExtractionBudgetExceeded(e.what());
  }
  // The chain is done; a leftover checkpoint would only invite a pointless
  // (if harmless) resume of a finished run.
  if (ckpt.active) worker::remove_checkpoint(ckpt.path);
  GFA_COUNT("extract.words", 1);
  GFA_COUNT("extract.substitutions", stats.substitutions);
  GFA_COUNT("reduction_steps", stats.substitutions);
  GFA_GAUGE_MAX("extract.peak_terms", stats.peak_terms);

  // The remainder now mentions only primary-input bits.
  const typename BitRepr<M>::TermMap remainder = chain.take_merged();
  stats.remainder_terms = remainder.size();
  bool any_bits = false;
  for (const auto& [m, c] : remainder) {
    stats.remainder_degree = std::max(stats.remainder_degree, m.size());
    if (!m.empty()) any_bits = true;
    for ([[maybe_unused]] VarId v : m)
      assert(is_input[v] && "non-input variable survived the reduction");
  }
  stats.case1 = !any_bits;

  // Build the public variable pool: input bit variables then word variables.
  std::vector<WordLift::WordBinding> bindings;
  bindings.reserve(in_words.size());
  std::vector<VarId> net_to_var(netlist.num_nets(), UINT32_MAX);
  for (const Word* w : in_words) {
    WordLift::WordBinding b;
    b.bit_vars.reserve(w->bits.size());
    for (NetId bit : w->bits) {
      const VarId v =
          result.pool.intern(netlist.gate(bit).name, VarKind::kBit);
      net_to_var[bit] = v;
      b.bit_vars.push_back(v);
    }
    b.word_var = result.pool.intern(w->name, VarKind::kWord);
    bindings.push_back(std::move(b));
    result.input_words.push_back(w->name);
  }

  // Remap the remainder onto pool variable ids. Whichever tier the chain ran
  // on, the lift boundary takes the packed form — everything downstream of
  // here is representation-agnostic.
  BitPoly r(&field);
  r.reserve(remainder.size());
  std::vector<VarId> mapped;
  for (const auto& [m, c] : remainder) {
    mapped.clear();
    mapped.reserve(m.size());
    for (VarId v : m) {
      if (net_to_var[v] == UINT32_MAX)
        throw std::invalid_argument(
            "primary input '" + netlist.gate(v).name + "' is not part of any word");
      mapped.push_back(net_to_var[v]);
    }
    std::sort(mapped.begin(), mapped.end());
    r.add_term(BitMono::from_sorted(mapped.data(), mapped.size()), c);
  }

  // Step 2: the Case-2 lift (a no-op beyond copying constants for Case 1).
  const obs::TraceSpan lift_span("case2_lift", "abstraction");
  report_phase("case2_lift", 0, 0, r.num_terms(), options.control);
  if (stats.case1) {
    result.g = MPoly::constant(&field, r.coeff(BitMono{}));
  } else if (options.shared_lift != nullptr) {
    if (options.basis != nullptr &&
        options.shared_lift->basis() != *options.basis)
      throw std::invalid_argument("shared_lift built for a different basis");
    result.g = options.shared_lift->lift(r, bindings, result.pool,
                                         options.control);
  } else {
    const WordLift lift(&field, options.basis, options.control);
    result.g = lift.lift(r, bindings, result.pool, options.control);
  }
  result.stats = stats;
  return result;
}

/// Tier dispatch: the whole chain (rewriter, checkpoint snapshots, remainder
/// remap) is instantiated per monomial representation; the two instantiations
/// produce bit-identical WordFunctions.
WordFunction extract_for_word(const Netlist& netlist, const Gf2k& field,
                              const Word* out_word,
                              const ExtractionOptions& options) {
  return options.poly_repr == PolyRepr::kVector
             ? extract_for_word_impl<LegacyBitMono>(netlist, field, out_word,
                                                    options)
             : extract_for_word_impl<BitMono>(netlist, field, out_word,
                                              options);
}

}  // namespace

WordFunction extract_word_function(const Netlist& netlist, const Gf2k& field,
                                   const ExtractionOptions& options) {
  const std::vector<const Word*> outs = output_words(netlist);
  if (outs.size() != 1)
    throw std::invalid_argument(
        outs.empty() ? "no output word declared"
                     : "several output words; use extract_word_function_for");
  return extract_for_word(netlist, field, outs[0], options);
}

WordFunction extract_word_function_for(const Netlist& netlist, const Gf2k& field,
                                       std::string_view output_word_name,
                                       const ExtractionOptions& options) {
  for (const Word* w : output_words(netlist)) {
    if (w->name == output_word_name)
      return extract_for_word(netlist, field, w, options);
  }
  throw std::invalid_argument("no output word named '" +
                              std::string(output_word_name) + "'");
}

std::vector<WordFunction> extract_all_word_functions(
    const Netlist& netlist, const Gf2k& field, const ExtractionOptions& options) {
  ExtractionOptions local = options;
  std::optional<WordLift> owned_lift;
  if (local.shared_lift == nullptr) {
    owned_lift.emplace(&field, local.basis, local.control);
    local.shared_lift = &*owned_lift;
  }
  // Output words are independent once the lift is shared; abstract them
  // concurrently (each extraction builds its own rewriter and pool).
  const std::vector<const Word*> outs = output_words(netlist);
  std::vector<WordFunction> out(outs.size());
  parallel_for(outs.size(), [&](std::size_t i) {
    out[i] = extract_for_word(netlist, field, outs[i], local);
  }, local.control);
  return out;
}

Result<WordFunction> try_extract_word_function(
    const Netlist& netlist, const Gf2k& field,
    const ExtractionOptions& options) {
  try {
    return extract_word_function(netlist, field, options);
  } catch (const ExtractionBudgetExceeded& e) {
    return Status::resource_exhausted(e.what());
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<std::vector<WordFunction>> try_extract_all_word_functions(
    const Netlist& netlist, const Gf2k& field,
    const ExtractionOptions& options) {
  try {
    return extract_all_word_functions(netlist, field, options);
  } catch (const ExtractionBudgetExceeded& e) {
    return Status::resource_exhausted(e.what());
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace gfa
